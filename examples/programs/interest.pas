{ Fixed-point amortization in integer cents: a loan balance accruing
  monthly interest against a constant payment, with the loop guarded by
  both a payoff test and a hard month cap. }
program interest;
var balance, payment, month, accrued, totalint : integer;
begin
  balance := 1000000;   { 10,000.00 in cents }
  payment := 45000;     { 450.00 per month }
  totalint := 0;
  month := 0;
  while (balance > 0) and (month < 60) do begin
    accrued := balance * 7 div 1200;   { 7% APR, monthly accrual }
    totalint := totalint + accrued;
    balance := balance + accrued - payment;
    month := month + 1
  end;
  if balance < 0 then balance := 0;
  write(month);
  write(balance);
  write(totalint)
end.
