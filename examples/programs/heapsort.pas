{ Heapsort over a 1-based array: sift-down as a flagged while loop,
  shared between heap construction (downto) and extraction. }
program heapsort;
var a : array[1..24] of integer;
    n, i, k, child, t, limit : integer;
    sifting : boolean;

procedure siftdown;  { sift a[k] down within a[1..limit] }
begin
  sifting := true;
  while sifting and (2 * k <= limit) do begin
    child := 2 * k;
    if child < limit then
      if a[child + 1] > a[child] then child := child + 1;
    if a[child] > a[k] then begin
      t := a[k]; a[k] := a[child]; a[child] := t;
      k := child
    end else sifting := false
  end
end;

begin
  n := 24;
  for i := 1 to n do a[i] := (53 * i * i + 7 * i) mod 101 - 33;
  limit := n;
  for i := n div 2 downto 1 do begin
    k := i;
    siftdown
  end;
  i := n;
  while i > 1 do begin
    t := a[1]; a[1] := a[i]; a[i] := t;
    i := i - 1;
    limit := i;
    k := 1;
    siftdown
  end;
  for i := 1 to n do write(a[i])
end.
