{ Character/set workload: a generated letter sequence, vowel counting
  through a set (letters mapped into 0..25), a reversal with a rolling
  checksum, and a palindrome test over a mirrored word. }
program textwork;
var s, r : array[0..31] of char;
    vowels : set of 0..31;
    i, n, count, code : integer;
    pal : boolean;
begin
  n := 26;
  for i := 0 to n - 1 do s[i] := chr(97 + (i * 7 + 3) mod 26);
  include(vowels, 0);  include(vowels, 4);  include(vowels, 8);
  include(vowels, 14); include(vowels, 20);
  count := 0;
  for i := 0 to n - 1 do
    if (ord(s[i]) - 97) in vowels then count := count + 1;
  write(count);
  { reverse into r, then checksum the reversal }
  for i := 0 to n - 1 do r[i] := s[n - 1 - i];
  code := 0;
  for i := 0 to n - 1 do code := (code * 31 + ord(r[i])) mod 65521;
  write(code);
  { a mirrored word is a palindrome; an ascending one is not }
  for i := 0 to n - 1 do s[i] := chr(97 + min(i, n - 1 - i));
  pal := true;
  for i := 0 to n - 1 do
    if s[i] <> s[n - 1 - i] then pal := false;
  if pal then count := 1 else count := 0;
  write(count);
  for i := 0 to n - 1 do s[i] := chr(97 + i mod 26);
  pal := true;
  for i := 0 to n - 1 do
    if s[i] <> s[n - 1 - i] then pal := false;
  if pal then count := 1 else count := 0;
  write(count)
end.
