{ A two-stack precedence-climbing expression evaluator over
  int-encoded token arrays (operands are non-negative; -1 + , -2 - ,
  -3 * , -4 div, -5 ( , -6 ) , -7 end) — the stack-machine rendering of
  a recursive-descent parser, since procedures carry no parameters and
  may only be called from the main program. }
program expreval;
var toks : array[0..31] of integer;
    vals, ops : array[0..15] of integer;
    vsp, osp, ip, tok, res, lhs, rhs, op, p1, p2, pass : integer;
    reducing, ended : boolean;

procedure apply;  { pop one operator and two operands, push the result }
begin
  osp := osp - 1; op := ops[osp];
  vsp := vsp - 1; rhs := vals[vsp];
  vsp := vsp - 1; lhs := vals[vsp];
  if op = -1 then res := lhs + rhs
  else if op = -2 then res := lhs - rhs
  else if op = -3 then res := lhs * rhs
  else res := lhs div rhs;
  vals[vsp] := res;
  vsp := vsp + 1
end;

procedure precof;  { operator in op, precedence out in p1 }
begin
  if (op = -3) or (op = -4) then p1 := 2
  else if (op = -1) or (op = -2) then p1 := 1
  else p1 := 0
end;

begin
  { 7 + 3 * (10 - 4) div 2 - 5 = 11 }
  toks[0] := 7;  toks[1] := -1; toks[2] := 3;  toks[3] := -3;
  toks[4] := -5; toks[5] := 10; toks[6] := -2; toks[7] := 4;
  toks[8] := -6; toks[9] := -4; toks[10] := 2; toks[11] := -2;
  toks[12] := 5; toks[13] := -7;
  { ((8 + 2) * 6) div (9 - 4) = 12 }
  toks[14] := -5; toks[15] := -5; toks[16] := 8;  toks[17] := -1;
  toks[18] := 2;  toks[19] := -6; toks[20] := -3; toks[21] := 6;
  toks[22] := -6; toks[23] := -4; toks[24] := -5; toks[25] := 9;
  toks[26] := -2; toks[27] := 4;  toks[28] := -6; toks[29] := -7;
  ip := 0;
  for pass := 1 to 2 do begin
    vsp := 0; osp := 0;
    ended := false;
    while not ended do begin
      tok := toks[ip];
      if tok >= 0 then begin
        vals[vsp] := tok; vsp := vsp + 1
      end else if tok = -5 then begin
        ops[osp] := tok; osp := osp + 1
      end else if tok = -6 then begin
        while ops[osp - 1] <> -5 do apply;
        osp := osp - 1
      end else if tok = -7 then begin
        while osp > 0 do apply;
        ended := true
      end else begin
        op := tok; precof; p2 := p1;
        reducing := osp > 0;
        while reducing do begin
          op := ops[osp - 1]; precof;
          if p1 >= p2 then begin
            apply;
            reducing := osp > 0
          end else reducing := false
        end;
        ops[osp] := tok; osp := osp + 1
      end;
      ip := ip + 1
    end;
    write(vals[0])
  end
end.
