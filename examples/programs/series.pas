{ Real-arithmetic kernels: e by its factorial series, a geometric
  series at 1/2, and a fixed-step trapezoid integral of x*x on [0,2]. }
program series;
var sum, term, di, xv, px, step, area, prev, cur : real;
    i : integer;
begin
  { e = sum 1/k! to 12 terms }
  sum := 1.0; term := 1.0; di := 0.0;
  for i := 1 to 12 do begin
    di := di + 1.0;
    term := term / di;
    sum := sum + term
  end;
  write(sum);
  { sum (1/2)^k for k = 1..20 }
  xv := 0.5; px := 1.0; sum := 0.0;
  for i := 1 to 20 do begin
    px := px * xv;
    sum := sum + px
  end;
  write(sum);
  { trapezoid rule for x*x on [0,2], 40 panels }
  step := 0.05;
  xv := 0.0;
  prev := 0.0;
  area := 0.0;
  for i := 1 to 40 do begin
    xv := xv + step;
    cur := xv * xv;
    area := area + (prev + cur) * 0.5 * step;
    prev := cur
  end;
  write(area)
end.
