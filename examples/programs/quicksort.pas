{ Iterative quicksort: Lomuto partition with an explicit segment stack
  (procedures take no parameters in this subset, so the pending-range
  stack replaces recursion). }
program quicksort;
var a : array[0..31] of integer;
    stlo, sthi : array[0..39] of integer;
    sp, lo, hi, i, j, pivot, t, n : integer;
begin
  n := 31;
  for i := 0 to n do a[i] := (171 * i + 55) mod 127 - 40;
  stlo[0] := 0;
  sthi[0] := n;
  sp := 1;
  while sp > 0 do begin
    sp := sp - 1;
    lo := stlo[sp];
    hi := sthi[sp];
    if lo < hi then begin
      pivot := a[hi];
      i := lo - 1;
      for j := lo to hi - 1 do
        if a[j] <= pivot then begin
          i := i + 1;
          t := a[i]; a[i] := a[j]; a[j] := t
        end;
      t := a[i + 1]; a[i + 1] := a[hi]; a[hi] := t;
      i := i + 1;
      stlo[sp] := lo;    sthi[sp] := i - 1; sp := sp + 1;
      stlo[sp] := i + 1; sthi[sp] := hi;    sp := sp + 1
    end
  end;
  for i := 0 to n do write(a[i])
end.
