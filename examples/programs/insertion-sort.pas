{ Insertion sort over a 16-element array seeded from a linear
  congruence, with a boolean flag instead of a short-circuit guard so
  no subscript is ever evaluated out of bounds. }
program insertsort;
var a : array[0..15] of integer;
    i, j, key, n : integer;
    placed : boolean;
begin
  n := 15;
  for i := 0 to n do a[i] := (83 * i + 29) mod 61 - 17;
  for i := 1 to n do begin
    key := a[i];
    j := i;
    placed := false;
    while (j > 0) and not placed do begin
      if a[j - 1] > key then begin
        a[j] := a[j - 1];
        j := j - 1
      end else placed := true
    end;
    a[j] := key
  end;
  for i := 0 to n do write(a[i])
end.
