{ Integer number theory: square-and-multiply modular exponentiation,
  Euclid's gcd, and a divisor-sum probe of the perfect number 496. }
program numtheory;
var base, e, m, power, x, y, t, sum, d, n : integer;
begin
  { 7^20 mod 1009 }
  base := 7; e := 20; m := 1009;
  power := 1;
  x := base mod m;
  while e > 0 do begin
    if odd(e) then power := power * x mod m;
    x := x * x mod m;
    e := e div 2
  end;
  write(power);
  { gcd(3528, 3780) }
  x := 3528; y := 3780;
  while y <> 0 do begin
    t := x mod y;
    x := y;
    y := t
  end;
  write(x);
  { sum of proper divisors of 496 (a perfect number) }
  n := 496;
  sum := 0;
  for d := 1 to 248 do
    if n mod d = 0 then sum := sum + d;
  write(sum)
end.
