(* Retargeting by specification (paper section 6): "retargetting the code
   generator merely requires a rewriting of the templates associated with
   productions".

   Two demonstrations over the same source program and the same front
   end/shaper:

   1. WITHIN one machine: code generators built from four Amdahl grammars
      of decreasing complexity (full addressing-mode redundancy down to a
      minimal register-register core).  The emitted code changes — fused
      memory operands disappear, more loads appear — but every variant
      computes the same answer.

   2. ACROSS machines: the code generator rebuilt from every registered
      target's specification (Amdahl 470 two-address CISC vs RISC-32
      three-address load/store).  Nothing above the spec changes; the
      listing shape follows the grammar, and both backends print the same
      answer.

     dune exec examples/retarget.exe *)

let program =
  {|
program demo;
var a, b, c, x : integer;
begin
  a := 21; b := 4; c := 100;
  x := (a * b + c) div (b + 1);
  write(x)
end.
|}

let () =
  let spec = Util_ex.amdahl_spec () in
  List.iter
    (fun lvl ->
      let sub = Cogg.Spec_subset.filter lvl spec in
      match Cogg.Cogg_build.build sub with
      | Error es ->
          Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
          exit 1
      | Ok tables -> (
          Fmt.pr "================ grammar: %-8s (%d productions, %d states) ================@."
            (Cogg.Spec_subset.level_name lvl)
            tables.Cogg.Tables.n_user_prods
            (Cogg.Parse_table.n_states tables.Cogg.Tables.parse);
          match Pipeline.verify ~cse:false tables program with
          | Error m ->
              Fmt.epr "%s@." m;
              exit 1
          | Ok v ->
              (match Pipeline.compile ~cse:false tables program with
              | Ok c -> Fmt.pr "%s@." c.Pipeline.gen.Cogg.Codegen.listing
              | Error m -> Fmt.epr "%s@." m);
              Fmt.pr "result: %a   correct: %b@.@."
                Fmt.(list int)
                v.Pipeline.executed.Pipeline.written_ints v.Pipeline.agreed))
    Cogg.Spec_subset.all_levels;
  (* part 2: the same program through every registered target's full
     grammar — retargeting by swapping the specification file *)
  List.iter
    (fun name ->
      let target = Machine.Targets.find_exn name in
      let tables =
        match
          Cogg.Cogg_build.build_file ~target
            (Util_ex.spec_path
               (Filename.basename target.Machine.Target.spec_file))
        with
        | Ok t -> t
        | Error es ->
            Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
            exit 1
      in
      Fmt.pr
        "================ target: %-9s (%d productions, %d states) \
         ================@."
        name tables.Cogg.Tables.n_user_prods
        (Cogg.Parse_table.n_states tables.Cogg.Tables.parse);
      match Pipeline.verify ~cse:false tables program with
      | Error m ->
          Fmt.epr "%s@." m;
          exit 1
      | Ok v ->
          (match Pipeline.compile ~cse:false tables program with
          | Ok c -> Fmt.pr "%s@." c.Pipeline.gen.Cogg.Codegen.listing
          | Error m -> Fmt.epr "%s@." m);
          Fmt.pr "result: %a   correct: %b@.@."
            Fmt.(list int)
            v.Pipeline.executed.Pipeline.written_ints v.Pipeline.agreed)
    Machine.Targets.names
