(* Allocation smoke test:
     dune build @perf-smoke
   runs one metered warm compile of the appendix-1 equation and fails if
   the minor-heap allocation per compile exceeds the checked-in budget
   (bench/perf_budget.txt, passed as argv.(1)).  The budget is ~1.5x the
   measured steady-state figure, so drift — a new per-token allocation,
   a listing rendered through Format again — trips it long before it
   shows up as wall-clock noise. *)

let rec find_up ?(depth = 6) dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up ~depth:(depth - 1) (Filename.dirname dir) rel

let () =
  let budget_file =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else begin
      Fmt.epr "usage: perf_smoke <budget-file>@.";
      exit 2
    end
  in
  let budget =
    let ic = open_in budget_file in
    let line = String.trim (input_line ic) in
    close_in ic;
    match float_of_string_opt line with
    | Some b -> b
    | None ->
        Fmt.epr "%s: not a number: %S@." budget_file line;
        exit 2
  in
  let spec_file =
    match find_up (Sys.getcwd ()) "specs/amdahl470.cgg" with
    | Some p -> p
    | None ->
        Fmt.epr "cannot locate specs/amdahl470.cgg@.";
        exit 2
  in
  let spec =
    match Cogg.Spec_parse.of_file spec_file with
    | Ok s -> s
    | Error e ->
        Fmt.epr "%a@." Cogg.Spec_parse.pp_error e;
        exit 2
  in
  let tables =
    match Cogg.Cogg_build.build spec with
    | Ok t -> t
    | Error es ->
        Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
        exit 2
  in
  let tokens =
    match Pipeline.compile tables Pipeline.Programs.appendix1_equation with
    | Ok c -> c.Pipeline.tokens
    | Error m ->
        Fmt.epr "%s@." m;
        exit 2
  in
  (* warm up (interning tables, buffer growth, code paths), then meter *)
  for _ = 1 to 10 do
    ignore (Cogg.Codegen.generate tables tokens)
  done;
  let runs = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to runs do
    ignore (Cogg.Codegen.generate tables tokens)
  done;
  let per_compile = (Gc.minor_words () -. w0) /. float_of_int runs in
  Fmt.pr "perf-smoke: %.0f minor words/compile (budget %.0f)@." per_compile
    budget;
  if per_compile > budget then begin
    Fmt.epr
      "perf-smoke FAILED: %.0f minor words/compile exceeds the budget of \
       %.0f (bench/perf_budget.txt); the codegen hot path is allocating \
       more than it used to@."
      per_compile budget;
    exit 1
  end
