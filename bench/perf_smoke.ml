(* Allocation smoke test:
     dune build @perf-smoke
   runs one metered warm compile of the appendix-1 equation and fails if
   the minor-heap allocation per compile exceeds the checked-in budget
   (bench/perf_budget.txt, passed as argv.(1)).  The budget is ~1.5x the
   measured steady-state figure, so drift — a new per-token allocation,
   a listing rendered through Format again — trips it long before it
   shows up as wall-clock noise.

   The budget file holds one number per line: line 1 is the default
   (comb) dispatch budget, line 2 — optional — the hybrid-dispatch
   budget, metered against tables specialized with the checked-in
   bench/default.cogprof.  The hybrid pass is skipped when line 2 or the
   profile is absent. *)

let rec find_up ?(depth = 6) dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up ~depth:(depth - 1) (Filename.dirname dir) rel

let meter ~label ~budget tables tokens ~dispatch =
  (* warm up (interning tables, buffer growth, code paths), then meter *)
  for _ = 1 to 10 do
    ignore (Cogg.Codegen.generate ~dispatch tables tokens)
  done;
  let runs = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to runs do
    ignore (Cogg.Codegen.generate ~dispatch tables tokens)
  done;
  let per_compile = (Gc.minor_words () -. w0) /. float_of_int runs in
  Fmt.pr "perf-smoke[%s]: %.0f minor words/compile (budget %.0f)@." label
    per_compile budget;
  if per_compile > budget then begin
    Fmt.epr
      "perf-smoke[%s] FAILED: %.0f minor words/compile exceeds the budget \
       of %.0f (bench/perf_budget.txt); the codegen hot path is allocating \
       more than it used to@."
      label per_compile budget;
    exit 1
  end

let () =
  let budget_file =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else begin
      Fmt.epr "usage: perf_smoke <budget-file>@.";
      exit 2
    end
  in
  let budgets =
    let ic = open_in budget_file in
    let lines = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then lines := line :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    List.rev_map
      (fun line ->
        match float_of_string_opt line with
        | Some b -> b
        | None ->
            Fmt.epr "%s: not a number: %S@." budget_file line;
            exit 2)
      !lines
  in
  let comb_budget, hybrid_budget =
    match budgets with
    | [] ->
        Fmt.epr "%s: empty budget file@." budget_file;
        exit 2
    | [ c ] -> (c, None)
    | c :: h :: _ -> (c, Some h)
  in
  let spec_file =
    match find_up (Sys.getcwd ()) "specs/amdahl470.cgg" with
    | Some p -> p
    | None ->
        Fmt.epr "cannot locate specs/amdahl470.cgg@.";
        exit 2
  in
  let spec =
    match Cogg.Spec_parse.of_file spec_file with
    | Ok s -> s
    | Error e ->
        Fmt.epr "%a@." Cogg.Spec_parse.pp_error e;
        exit 2
  in
  let tables =
    match Cogg.Cogg_build.build spec with
    | Ok t -> t
    | Error es ->
        Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
        exit 2
  in
  let tokens =
    match Pipeline.compile tables Pipeline.Programs.appendix1_equation with
    | Ok c -> c.Pipeline.tokens
    | Error m ->
        Fmt.epr "%s@." m;
        exit 2
  in
  meter ~label:"comb" ~budget:comb_budget tables tokens
    ~dispatch:Cogg.Driver.Comb;
  match hybrid_budget with
  | None -> ()
  | Some budget -> (
      match find_up (Sys.getcwd ()) "bench/default.cogprof" with
      | None ->
          Fmt.pr "perf-smoke[hybrid]: skipped (no bench/default.cogprof)@."
      | Some prof_path -> (
          match Cogg.Cogprof.load prof_path with
          | Error m ->
              Fmt.epr "%s: %s@." prof_path m;
              exit 2
          | Ok profile -> (
              match Cogg.Cogg_build.build ~profile spec with
              | Error es ->
                  Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
                  exit 2
              | Ok ht ->
                  meter ~label:"hybrid" ~budget ht tokens
                    ~dispatch:Cogg.Driver.Hybrid)))
