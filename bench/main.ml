(* The evaluation harness: regenerates every table in the paper plus the
   ablations DESIGN.md calls out.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe table1          -- spec/table statistics
     dune exec bench/main.exe table2          -- artifact sizes (pages)
     dune exec bench/main.exe appendix1       -- code comparison vs baseline
     dune exec bench/main.exe ablation-grammar
     dune exec bench/main.exe ablation-regalloc
     dune exec bench/main.exe speed           -- Bechamel timings *)

let rec find_up ?(depth = 6) dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up ~depth:(depth - 1) (Filename.dirname dir) rel

let spec_path () =
  match find_up (Sys.getcwd ()) "specs/amdahl470.cgg" with
  | Some p -> p
  | None ->
      Fmt.epr "cannot locate specs/amdahl470.cgg@.";
      exit 1

let spec =
  lazy
    (match Cogg.Spec_parse.of_file (spec_path ()) with
    | Ok s -> s
    | Error e ->
        Fmt.epr "%a@." Cogg.Spec_parse.pp_error e;
        exit 1)

let tables =
  lazy
    (match Cogg.Cogg_build.build (Lazy.force spec) with
    | Ok t -> t
    | Error es ->
        Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
        exit 1)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Fmt.pr "@.== Table 1: code generator table statistics (paper vs measured) ==@.@.";
  Fmt.pr "%a@." Cogg.Stats.pp_table1
    (Cogg.Stats.table1 (Lazy.force spec) (Lazy.force tables));
  Fmt.pr
    "The measured grammar is smaller than the production PascalVS grammar@.\
     (199 vs 248 productions: strings, packed records and some conversions@.\
     are out of scope), so states/entries scale down proportionally; the@.\
     shape - hundreds of states, tens of thousands of entries, ~40-50%%@.\
     significant - matches the paper.@."

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  Fmt.pr "@.== Table 2: object module sizes in 4096-byte pages ==@.@.";
  let t = Lazy.force tables in
  let sizes = Cogg.Tables_io.sizes t in
  Fmt.pr "%-36s %10s %10s@." "" "paper" "measured";
  let row label paper bytes =
    Fmt.pr "%-36s %10s %10.1f@." label paper (Cogg.Tables_io.pages bytes)
  in
  row "i.   Template array" "8.5" sizes.Cogg.Tables_io.template_array;
  row "ii.  Compressed parse table" "32.7" sizes.Cogg.Tables_io.compressed_table;
  row "iii. Uncompressed parse table" "71.5" sizes.Cogg.Tables_io.uncompressed_table;
  Fmt.pr "%-36s %10s %s@." "iv.  Code generation routines" "7.5"
    "(~2.5k lines of runtime OCaml; see DESIGN.md)";
  Fmt.pr "@.Compression method ablation (paper: tables are \"by no means minimally compressed\"):@.";
  Fmt.pr "%-24s %12s %8s@." "method" "bytes" "pages";
  List.iter
    (fun (name, m) ->
      let c = Cogg.Compress.compress ~method_:m t.Cogg.Tables.parse in
      (match Cogg.Compress.verify c t.Cogg.Tables.parse with
      | Ok _ -> ()
      | Error e ->
          Fmt.epr "compression verification failed: %s@." e;
          exit 1);
      Fmt.pr "%-24s %12d %8.1f@." name c.Cogg.Compress.size_bytes
        (Cogg.Tables_io.pages c.Cogg.Compress.size_bytes))
    [
      ("none (flat)", Cogg.Compress.No_compression);
      ("default reductions", Cogg.Compress.Defaults_only);
      ("comb packing", Cogg.Compress.Comb_only);
      ("defaults + comb", Cogg.Compress.Defaults_and_comb);
    ]

(* ------------------------------------------------------------------ *)
(* Appendix 1: code comparison against the hand-written generator      *)
(* ------------------------------------------------------------------ *)

let count_insns (resolved : Cogg.Loader_gen.resolved) =
  Machine.Encode.decode_all resolved.Cogg.Loader_gen.code
    ~pos:resolved.Cogg.Loader_gen.entry
    ~len:
      (Bytes.length resolved.Cogg.Loader_gen.code
      - resolved.Cogg.Loader_gen.entry)
  |> List.length

let side_by_side left right =
  let l = String.split_on_char '\n' left in
  let r = String.split_on_char '\n' right in
  let n = max (List.length l) (List.length r) in
  let get xs i = try List.nth xs i with _ -> "" in
  for i = 0 to n - 1 do
    Fmt.pr "%-42s | %s@." (String.trim (get l i)) (String.trim (get r i))
  done

let appendix1_one name src =
  let t = Lazy.force tables in
  match (Pipeline.compile t src, Pipeline.compile_baseline src) with
  | Error m, _ | _, Error m ->
      Fmt.epr "%s@." m;
      exit 1
  | Ok c, Ok b ->
      let cogg_n = count_insns c.Pipeline.gen.Cogg.Codegen.resolved in
      let base_n = count_insns b.Pipeline.b_gen.Baseline.resolved in
      let cogg_bytes =
        Bytes.length c.Pipeline.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.code
      in
      let base_bytes =
        Bytes.length b.Pipeline.b_gen.Baseline.resolved.Cogg.Loader_gen.code
      in
      Fmt.pr "@.---- %s ----@.@." name;
      Fmt.pr "%-42s | %s@." "CoGG (table driven)" "hand written (PascalVS role)";
      Fmt.pr "%-42s-+-%s@." (String.make 42 '-') (String.make 30 '-');
      side_by_side c.Pipeline.gen.Cogg.Codegen.listing
        b.Pipeline.b_gen.Baseline.listing;
      Fmt.pr "@.instructions: CoGG %d vs hand-written %d;  bytes: %d vs %d@."
        cogg_n base_n cogg_bytes base_bytes;
      (* both must execute and agree *)
      (match (Pipeline.execute c, Pipeline.execute_baseline b) with
      | Ok x, Ok y when x.Pipeline.written_ints = y.Pipeline.written_ints ->
          Fmt.pr "outputs agree: %a@." Fmt.(list ~sep:sp int) x.Pipeline.written_ints
      | Ok _, Ok _ ->
          Fmt.epr "OUTPUT MISMATCH@.";
          exit 1
      | Error m, _ | _, Error m ->
          Fmt.epr "%s@." m;
          exit 1);
      (cogg_n, base_n)

let appendix1 () =
  Fmt.pr "@.== Appendix 1: emitted code, table-driven vs hand-written ==@.";
  let c1, b1 =
    appendix1_one "x[q] := a[i]+b[j]*(c[k]-d[l])+(e[m] div (f[n]+g[o]))*h[p]"
      Pipeline.Programs.appendix1_equation
  in
  let c2, b2 =
    appendix1_one "if flag then i := j-1 else i := z;  if p<>q then l := z"
      Pipeline.Programs.appendix1_branches
  in
  Fmt.pr
    "@.Paper's finding: the table-driven generator produces code \"as good@.\
     as\" the hand-crafted compiler.  Measured: %d vs %d and %d vs %d@.\
     instructions (ratios %.2f and %.2f).@."
    c1 b1 c2 b2
    (float_of_int c1 /. float_of_int b1)
    (float_of_int c2 /. float_of_int b2)

(* ------------------------------------------------------------------ *)
(* Ablation A: grammar size (paper section 6)                          *)
(* ------------------------------------------------------------------ *)

let ablation_grammar () =
  Fmt.pr "@.== Ablation: grammar size vs table size vs code quality ==@.@.";
  Fmt.pr
    "\"By reducing the number of productions in the grammar, the size of@.\
     the parse tables is also reduced ... without losing the guarantee of@.\
     generating correct code.\" (paper section 6)@.@.";
  Fmt.pr "%-10s %6s %7s %8s %11s %10s %10s %8s@." "grammar" "prods" "states"
    "entries" "compressed" "templates" "gcd-bytes" "correct";
  let full_spec = Lazy.force spec in
  List.iter
    (fun lvl ->
      let sub = Cogg.Spec_subset.filter lvl full_spec in
      match Cogg.Cogg_build.build sub with
      | Error es ->
          Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
          exit 1
      | Ok t ->
          let s1 = Cogg.Stats.table1 sub t in
          let sz = Cogg.Tables_io.sizes t in
          let code_bytes, correct =
            match Pipeline.verify ~cse:false t Pipeline.Programs.gcd with
            | Ok v ->
                ( (match Pipeline.compile ~cse:false t Pipeline.Programs.gcd with
                  | Ok c ->
                      Bytes.length
                        c.Pipeline.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.code
                  | Error _ -> -1),
                  v.Pipeline.agreed )
            | Error _ -> (-1, false)
          in
          Fmt.pr "%-10s %6d %7d %8d %11d %10d %10d %8b@."
            (Cogg.Spec_subset.level_name lvl)
            s1.Cogg.Stats.productions s1.Cogg.Stats.states s1.Cogg.Stats.entries
            sz.Cogg.Tables_io.compressed_table s1.Cogg.Stats.templates
            code_bytes correct)
    Cogg.Spec_subset.all_levels

(* ------------------------------------------------------------------ *)
(* Ablation B: register allocation strategy (paper section 4.1)        *)
(* ------------------------------------------------------------------ *)

let ablation_regalloc () =
  Fmt.pr "@.== Ablation: register allocation strategy ==@.@.";
  Fmt.pr
    "The paper allocates least-recently-used registers \"in an attempt to@.\
     reduce operand contention in the pipeline\".  Mean reuse distance (in@.\
     reductions) is the contention proxy: larger is better.@.@.";
  Fmt.pr "%-14s %-12s %8s %8s %10s %12s %8s@." "workload" "strategy" "allocs"
    "moves" "evictions" "mean-reuse" "correct";
  let t = Lazy.force tables in
  List.iter
    (fun (wname, src) ->
      List.iter
        (fun strategy ->
          match Pipeline.verify ~strategy t src with
          | Error m ->
              Fmt.epr "%s: %s@." wname m;
              exit 1
          | Ok v -> (
              match Pipeline.compile ~strategy t src with
              | Error _ -> assert false
              | Ok c ->
                  let st = c.Pipeline.gen.Cogg.Codegen.alloc_stats in
                  let reuse =
                    match st.Cogg.Regalloc.reuse_distances with
                    | [] -> 0.0
                    | ds ->
                        float_of_int (List.fold_left ( + ) 0 ds)
                        /. float_of_int (List.length ds)
                  in
                  Fmt.pr "%-14s %-12s %8d %8d %10d %12.1f %8b@." wname
                    (Cogg.Regalloc.strategy_name strategy)
                    st.Cogg.Regalloc.n_allocs st.Cogg.Regalloc.n_transfers
                    st.Cogg.Regalloc.n_evictions reuse v.Pipeline.agreed))
        Cogg.Regalloc.[ Lru; Round_robin; First_free ])
    [
      ("appendix1-eq", Pipeline.Programs.appendix1_equation);
      ("sieve", Pipeline.Programs.sieve);
      ("cse-demo", Pipeline.Programs.cse_demo);
    ]

(* ------------------------------------------------------------------ *)
(* Speed: Bechamel micro-benchmarks                                    *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON writer for the machine-readable perf trajectory; names
   contain only parentheses, letters and punctuation safe in a JSON
   string, but escape defensively anyway. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Reader for the same writer below: one "name": number pair per line.
   Used to merge a fresh run into the existing file so the perf
   trajectory accumulates across benchmarks that measure different row
   sets (e.g. a speed run without the batch rows must not erase them). *)
let read_speed_json path : (string * float) list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rows = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if String.length line > 1 && line.[0] = '"' then
           match String.index_opt (String.sub line 1 (String.length line - 1)) '"' with
           | None -> ()
           | Some i -> (
               let name = String.sub line 1 i in
               match String.index_opt line ':' with
               | None -> ()
               | Some c -> (
                   let v =
                     String.trim
                       (String.sub line (c + 1) (String.length line - c - 1))
                   in
                   let v =
                     if String.length v > 0 && v.[String.length v - 1] = ','
                     then String.sub v 0 (String.length v - 1)
                     else v
                   in
                   match float_of_string_opt v with
                   | Some f -> rows := (name, f) :: !rows
                   | None -> ()))
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !rows
  end

let write_speed_json path (rows : (string * float) list) =
  (* merge: existing rows keep their position (values refreshed when
     re-measured); genuinely new rows append in measurement order *)
  let existing = read_speed_json path in
  let merged =
    List.map
      (fun (name, v) ->
        (name, Option.value (List.assoc_opt name rows) ~default:v))
      existing
    @ List.filter (fun (name, _) -> not (List.mem_assoc name existing)) rows
  in
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  \"%s\": %.1f%s\n" (json_escape name) ns
        (if i = List.length merged - 1 then "" else ","))
    merged;
  output_string oc "}\n";
  close_out oc;
  Fmt.pr "@.wrote %s@." path

(* The 32-job batch the speed benchmark times; also the subject of the
   `fingerprint` subcommand, which digests every listing and object byte
   so refactors of the codegen core can prove byte-identical output. *)
let bench_batch () =
  let corpus = Pipeline.Programs.all in
  let n_corpus = List.length corpus in
  Array.init 32 (fun i ->
      let name, source = List.nth corpus (i mod n_corpus) in
      { Pipeline.Batch.name = Printf.sprintf "%s#%d" name i; source })

let fingerprint () =
  let t = Lazy.force tables in
  let fp = Pipeline.Batch.fingerprint (Pipeline.Batch.compile_all t (bench_batch ())) in
  Fmt.pr "batch fingerprint: %s@." fp

let speed ?(json = false) () =
  Fmt.pr "@.== Timings (Bechamel) ==@.@.";
  let open Bechamel in
  let open Toolkit in
  (* previous trajectory, read before measuring: the observability gate
     below compares fresh batch rows against it *)
  let prev = read_speed_json "BENCH_speed.json" in
  let t = Lazy.force tables in
  let full_spec = Lazy.force spec in
  let spec_file = spec_path () in
  (* warm the on-disk table cache so load-tables(cache) times the hit path *)
  (match Cogg.Tables_cache.build_file spec_file with
  | Ok _ -> ()
  | Error es ->
      Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
      exit 1);
  let tokens =
    match Pipeline.compile t Pipeline.Programs.appendix1_equation with
    | Ok c -> c.Pipeline.tokens
    | Error m ->
        Fmt.epr "%s@." m;
        exit 1
  in
  (* batch throughput: 32 jobs cycling the example corpus, all compiled
     against the one shared table bundle, sequentially vs on a pool of
     recommended_domain_count domains.  The JSON key stays the literal
     "Nx32" so the perf trajectory is comparable across machines; the
     actual N is printed alongside. *)
  let batch_m = 32 in
  let batch = bench_batch () in
  let n_domains = Domain.recommended_domain_count () in
  let pool = Cogg.Pool.create ~domains:n_domains () in
  (* determinism gate: the parallel batch must be byte-identical to the
     sequential one before its timing means anything *)
  let seq_fp = Pipeline.Batch.fingerprint (Pipeline.Batch.compile_all t batch) in
  let par_fp =
    Pipeline.Batch.fingerprint (Pipeline.Batch.compile_all ~pool t batch)
  in
  if seq_fp <> par_fp then begin
    Fmt.epr "batch determinism violation: parallel output != sequential@.";
    exit 1
  end;
  Fmt.pr "batch-compile: N = %d domain(s), %d jobs, parallel fingerprint ok@.@."
    n_domains batch_m;
  let tests =
    [
      Test.make ~name:"build-tables(full-spec)"
        (Staged.stage (fun () -> ignore (Cogg.Cogg_build.build full_spec)));
      Test.make ~name:"load-tables(cache)"
        (Staged.stage (fun () ->
             ignore (Cogg.Tables_cache.build_file spec_file)));
      Test.make ~name:"codegen(comb)"
        (Staged.stage (fun () ->
             ignore
               (Cogg.Codegen.generate ~dispatch:Cogg.Driver.Comb t tokens)));
      Test.make ~name:"codegen(flat)"
        (Staged.stage (fun () ->
             ignore
               (Cogg.Codegen.generate ~dispatch:Cogg.Driver.Flat t tokens)));
      Test.make ~name:"compress(defaults+comb)"
        (Staged.stage (fun () ->
             ignore (Cogg.Compress.compress t.Cogg.Tables.parse)));
      Test.make ~name:"compile+run(gcd)"
        (Staged.stage (fun () ->
             match Pipeline.compile t Pipeline.Programs.gcd with
             | Ok c -> ignore (Pipeline.execute c)
             | Error _ -> ()));
      Test.make ~name:"batch-compile(1x32)"
        (Staged.stage (fun () ->
             ignore (Pipeline.Batch.compile_all t batch)));
      Test.make ~name:"batch-compile(Nx32)"
        (Staged.stage (fun () ->
             ignore (Pipeline.Batch.compile_all ~pool t batch)));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              rows := (name, ns) :: !rows;
              Fmt.pr "%-34s %14.1f ns/run@." name ns
          | _ -> Fmt.pr "%-34s (no estimate)@." name)
        ols)
    tests;
  Cogg.Pool.shutdown pool;
  (* derived throughput for the batch rows *)
  List.iter
    (fun key ->
      match List.assoc_opt key !rows with
      | Some ns when ns > 0.0 ->
          Fmt.pr "%-34s %14.1f programs/sec@." key
            (float_of_int batch_m /. (ns /. 1e9))
      | _ -> ())
    [ "batch-compile(1x32)"; "batch-compile(Nx32)" ];
  (* derived rows: per-token codegen cost (the appendix-1 equation IF is
     the unit of work the comb row times) and the minor-heap allocation
     per warm compile, the budget @perf-smoke enforces *)
  let n_tokens = List.length tokens in
  (match List.assoc_opt "codegen(comb)" !rows with
  | Some ns when n_tokens > 0 ->
      let per = ns /. float_of_int n_tokens in
      Fmt.pr "%-34s %14.1f ns/token (%d tokens)@." "codegen.ns_per_token" per
        n_tokens;
      rows := ("codegen.ns_per_token", per) :: !rows
  | _ -> ());
  let minor_words_per_compile =
    for _ = 1 to 10 do
      ignore (Cogg.Codegen.generate t tokens)
    done;
    let w0 = Gc.minor_words () in
    for _ = 1 to 50 do
      ignore (Cogg.Codegen.generate t tokens)
    done;
    (Gc.minor_words () -. w0) /. 50.
  in
  Fmt.pr "%-34s %14.1f minor words/compile@." "gc.minor_words_per_compile"
    minor_words_per_compile;
  rows := ("gc.minor_words_per_compile", minor_words_per_compile) :: !rows;
  (* regression gate: the Trace/Metrics hooks sit disabled on the hot
     paths above, so the batch rows must stay within 2% of the recorded
     trajectory; the codegen core rows (time, per-token cost, allocation)
     are held to the same bar so hot-path regressions fail loudly.
     COGG_BENCH_NO_GATE=1 bypasses (noisy CI, different machine). *)
  let no_gate = Sys.getenv_opt "COGG_BENCH_NO_GATE" <> None in
  let violated = ref false in
  List.iter
    (fun key ->
      match (List.assoc_opt key !rows, List.assoc_opt key prev) with
      | Some fresh, Some old when old > 0.0 ->
          let ratio = fresh /. old in
          Fmt.pr "%-34s %14.3f x recorded%s@." (key ^ " [gate]") ratio
            (if ratio > 1.02 then "  ** >2% overhead **" else "");
          if ratio > 1.02 then violated := true
      | _ -> ())
    [
      "batch-compile(1x32)";
      "batch-compile(Nx32)";
      "codegen(comb)";
      "codegen.ns_per_token";
      "gc.minor_words_per_compile";
    ];
  if !violated && not no_gate then begin
    Fmt.epr
      "observability gate: a gated row regressed more than 2%% against \
       BENCH_speed.json (rerun on a quiet machine, or set \
       COGG_BENCH_NO_GATE=1 to bypass)@.";
    exit 1
  end;
  (* counter aggregates: one metrics-enabled sequential pass over the
     same batch, folded into the trajectory as counter.* rows so code
     shape drift (shifts, evictions, long branches, ...) is tracked
     alongside timings *)
  Cogg.Metrics.reset ();
  Cogg.Metrics.set_enabled true;
  ignore (Pipeline.Batch.compile_all t batch);
  let counters = Cogg.Metrics.snapshot () in
  Cogg.Metrics.set_enabled false;
  Cogg.Metrics.reset ();
  Fmt.pr "@.counter aggregates over batch(32):@.";
  List.iter
    (fun (name, v) ->
      if v <> 0 && not (String.length name > 6 && String.sub name 0 6 = "phase.")
      then begin
        Fmt.pr "  %-32s %14d@." name v;
        rows := ("counter." ^ name, float_of_int v) :: !rows
      end)
    counters;
  if json then write_speed_json "BENCH_speed.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)

let all ?json () =
  table1 ();
  table2 ();
  appendix1 ();
  ablation_grammar ();
  ablation_regalloc ();
  speed ?json ()

let () =
  (* `--json` (anywhere on the command line) makes `speed` also write
     BENCH_speed.json: name -> ns/run *)
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  match List.filter (fun a -> a <> "--json") args with
  | [] -> all ~json ()
  | args ->
      List.iter
        (function
          | "table1" -> table1 ()
          | "table2" -> table2 ()
          | "appendix1" -> appendix1 ()
          | "ablation-grammar" -> ablation_grammar ()
          | "ablation-regalloc" -> ablation_regalloc ()
          | "speed" -> speed ~json ()
          | "fingerprint" -> fingerprint ()
          | "all" -> all ~json ()
          | a ->
              Fmt.epr "unknown benchmark %s@." a;
              exit 1)
        args
