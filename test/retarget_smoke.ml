(* End-to-end retargeting smoke behind `dune build @retarget`: build the
   driving tables for BOTH registered targets from their specification
   files, verify the canonical corpus on each backend against the
   reference interpreter, then sweep a fixed-seed slice of generated
   programs through the cross-backend differential oracle.  Exits
   nonzero on any divergence.

   COGG_RETARGET_COUNT overrides the sweep size for longer local runs. *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("retarget_smoke: " ^ m);
      exit 1)
    fmt

let rec find_up depth dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up (depth - 1) (Filename.dirname dir) rel

let build name =
  let target = Machine.Targets.find_exn name in
  let rel = target.Machine.Target.spec_file in
  let path =
    match find_up 6 (Sys.getcwd ()) rel with
    | Some p -> p
    | None -> fail "cannot locate %s from %s" rel (Sys.getcwd ())
  in
  match Cogg.Cogg_build.build_file ~target path with
  | Ok t -> t
  | Error es ->
      fail "%s failed to build: %s" name
        (String.concat "; "
           (List.map (Fmt.str "%a" Cogg.Cogg_build.pp_error) es))

let () =
  let bundles = List.map build Machine.Targets.names in
  (* every canonical program, on every backend, machine vs interpreter *)
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (t : Cogg.Tables.t) ->
          let tn = t.Cogg.Tables.target.Machine.Target.name in
          match Pipeline.verify t src with
          | Ok v when v.Pipeline.agreed -> ()
          | Ok _ -> fail "%s: machine/interpreter disagree on %s" name tn
          | Error m -> fail "%s on %s: %s" name tn m)
        bundles)
    Pipeline.Programs.all;
  (* fixed-seed cross-backend differential sweep *)
  let amdahl, risc32 =
    match bundles with
    | [ a; b ] -> (a, b)
    | _ -> fail "expected exactly two registered targets"
  in
  let count =
    match
      Option.bind (Sys.getenv_opt "COGG_RETARGET_COUNT") int_of_string_opt
    with
    | Some n when n > 0 -> n
    | _ -> 48
  in
  let findings = ref 0 in
  for index = 0 to count - 1 do
    let rng = Fuzz.Rng.derive ~seed:11 ~index in
    let src = Fuzz.Gen_pascal.source rng (Fuzz.Profile.rotate index) in
    match Fuzz.Oracle.cross_backend amdahl risc32 src with
    | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
    | st ->
        incr findings;
        Fmt.epr "case %d: %a@.%s@." index Fuzz.Oracle.pp_status st src
  done;
  if !findings > 0 then fail "%d cross-backend divergences" !findings;
  Printf.printf
    "retarget: %d targets built from spec; corpus verified on each; %d \
     cross-backend cases, 0 divergences\n"
    (List.length bundles) count
