{ distilled corpus seed: guided-1-464 }
program fuzz;
var
  i0 : integer;
  i1 : integer;
  i2 : integer;
  z0 : 0..255;
  a0 : array[0..7] of integer;
  a1 : array[1..6] of -100..100;
  a2 : array[0..4] of boolean;
  k0 : integer;
  k1 : integer;
  k2 : integer;
begin
  for k0 := (-1) downto (-4) do
    begin
      k1 := 3;
      while (k1 > 0) do
        begin
          for k2 := (-6) to (-5) do
            begin
              z0 := (0 + abs((abs(abs(k1)) mod 256)));
              i2 := (-929);
              if ((true and false) and ((false and (k1 = k2)) and true)) then
                begin
                  a1[(1 + abs((k2 mod 6)))] := (max(succ((-412)), k2) mod 101)
                end
              else
                begin
                  i2 := (-206)
                end
            end;
          a1[4] := (abs(k2) mod 101);
          a0[(0 + abs((max((((-783) mod (1 + abs(((-945) mod 9)))) div (1 + abs((sqr(23) mod 9)))), min(k0, sqr(359))) mod 8)))] := (succ(abs((k1 + 76))) mod (1 + abs((((868 div (1 + abs((i0 mod 9)))) - ((-202) mod (1 + abs((k2 mod 9))))) mod 9))));
          k1 := (k1 - 1)
        end;
      case abs((a1[3] mod 3)) of
        0:
          begin
            z0 := (0 + abs((((-424) mod (1 + abs(((sqr(i2) div 9) mod 9)))) mod 256)));
            if (i0 < i1) then
              begin
                a1[(1 + abs((((-(-670)) + succ(770)) mod 6)))] := (96 mod 101);
                if false then
                  begin
                    i1 := (-(-max(k0, k2)));
                    z0 := 150;
                    i0 := (((-(813 mod 4)) div 1) mod 1)
                  end;
                if false then
                  begin
                    i2 := sqr((abs((-k2)) - ((-a1[2]) + succ((-865)))));
                    z0 := 131
                  end
              end
          end;
        1:
          begin
            a2[(0 + abs((sqr(sqr(83)) mod 5)))] := (((-6) + k1) <= succ(78))
          end;
        otherwise
          begin
            i2 := 427
          end
      end
    end;
  if (true and true) then
    begin
      if (false and true) then
        begin
          k0 := 6;
          while ((k0 > 0) and (true or false)) do
            begin
              i0 := ((z0 * i0) * (z0 div (1 + abs(((-106) mod 9)))));
              a0[1] := ((((z0 - i2) * (-z0)) div 2) - max(((-k1) * ((-892) div (1 + abs((k0 mod 9))))), 7));
              z0 := 221;
              k0 := (k0 - 1)
            end;
          a1[(1 + abs((((-362) - k0) mod 6)))] := ((a1[3] - k0) mod 101);
          if false then
            begin
              a0[(0 + abs((a0[7] mod 8)))] := (i2 + i1);
              z0 := (0 + abs((((a0[6] div (1 + abs(((k0 + i0) mod 9)))) + k0) mod 256)));
              z0 := 21
            end
          else
            begin
              z0 := (0 + abs((abs(sqr(max(427, (68 + z0)))) mod 256)))
            end
        end;
      case abs((z0 mod 4)) of
        0:
          begin
            a1[(1 + abs((((max((-i1), (-k0)) - (abs((-416)) - k0)) mod 8) mod 6)))] := (pred(i0) mod 101);
            for k0 := 12 downto 11 do
              begin
                i2 := (max(abs((i1 mod 6)), succ(abs(295))) - (-((-(-64)) - sqr(i1))));
                z0 := (0 + abs((min(i0, 537) mod 256)))
              end
          end;
        1:
          begin
            i2 := k2;
            a1[(1 + abs((((-sqr(i1)) div 6) mod 6)))] := ((-(a0[3] - k0)) mod 101)
          end;
        2:
          begin
            a1[(1 + abs(((a0[6] * succ((-abs(k0)))) mod 6)))] := (i0 mod 101)
          end;
        3:
          begin
            k0 := 4;
            while (k0 > 0) do
              begin
                a2[(0 + abs(((-min((59 * abs(a1[6])), pred((i2 - (-63))))) mod 5)))] := false;
                z0 := 174;
                k0 := (k0 - 1)
              end;
            a0[(0 + abs(((((39 div 9) div (1 + abs((succ(a1[4]) mod 9)))) + (abs(a1[3]) - (154 div 2))) mod 8)))] := (((i1 - k0) div (1 + abs(((k2 mod (1 + abs((457 mod 9)))) mod 9)))) + sqr(pred(i1)))
          end;
      end;
      if (abs(k1) <= a1[3]) then
        begin
          k0 := 2;
          while ((k0 > 0) and (not (true and true))) do
            begin
              i2 := (((923 mod (1 + abs(((-711) mod 9)))) + (a0[3] div 3)) * (pred(60) * pred(82)));
              if ((-571) = (pred(587) - (728 mod (1 + abs((i1 mod 9)))))) then
                begin
                  a1[6] := (abs(abs(a0[5])) mod 101);
                  a0[4] := succ(succ(k1));
                  i0 := (-135)
                end
              else
                begin
                  i2 := max(abs(i2), (k2 mod 5));
                  z0 := 3
                end;
              if (sqr(((i1 mod (1 + abs((z0 mod 9)))) div 5)) > succ(((-32) - abs(k0)))) then
                begin
                  a2[(0 + abs((pred((-68)) mod 5)))] := (min(k1, i0) = 61)
                end
              else
                begin
                  a2[(0 + abs(((abs((821 - 31)) * (-(64 div (1 + abs((566 mod 9)))))) mod 5)))] := (((-312) < a0[3]) and false)
                end;
              k0 := (k0 - 1)
            end
        end
    end
  else
    begin
      k0 := 3;
      while (k0 > 0) do
        begin
          for k1 := 4 to 9 do
            begin
              z0 := (0 + abs((sqr((i1 div (-8))) mod 256)));
              if false then
                begin
                  a2[4] := true;
                  a1[(1 + abs(((sqr(succ(max(z0, (-184)))) * 94) mod 6)))] := (((-(289 - k0)) - max((-k1), (-(-591)))) mod 101);
                  a1[(1 + abs((((-644) div 9) mod 6)))] := (sqr(573) mod 101)
                end;
              z0 := (0 + abs(((sqr((z0 - k1)) mod (1 + abs((((i2 div (1 + abs((z0 mod 9)))) div 8) mod 9)))) mod 256)))
            end;
          if odd((602 div 7)) then
            begin
              i0 := i0
            end;
          case abs(((z0 mod 5) mod 3)) of
            0:
              begin
                a2[2] := (z0 < z0);
                a1[6] := (148 mod 101)
              end;
            1:
              begin
                z0 := 26;
                a1[(1 + abs((max(i0, pred(239)) mod 6)))] := (82 mod 101)
              end;
            otherwise
              begin
                i1 := i1
              end
          end;
          k0 := (k0 - 1)
        end
    end;
  z0 := 198;
  k0 := 4;
  while (k0 > 0) do
    begin
      z0 := 149;
      i2 := (i1 * i2);
      k0 := (k0 - 1)
    end;
  for k0 := 7 to 14 do
    begin
      k1 := 6;
      while ((k1 > 0) and true) do
        begin
          z0 := 241;
          if false then
            begin
              if true then
                begin
                  a0[7] := ((-809) - abs((94 - a1[5])))
                end
            end;
          k1 := (k1 - 1)
        end;
      z0 := (0 + abs((sqr((i2 div (1 + abs(((3 div (1 + abs((i0 mod 9)))) mod 9))))) mod 256)));
      z0 := (0 + abs((i0 mod 256)))
    end;
  case abs((succ(abs(max(k2, k1))) mod 3)) of
    0:
      begin
        k0 := 2;
        while (k0 > 0) do
          begin
            i0 := a0[0];
            z0 := 79;
            k0 := (k0 - 1)
          end
      end;
    1:
      begin
        i1 := ((a1[3] mod 1) - (z0 mod (-8)))
      end;
    2:
      begin
        k0 := 1;
        while (k0 > 0) do
          begin
            for k1 := 0 to 1 do
              begin
                if false then
                  begin
                    i0 := sqr((abs(min(120, 655)) mod (-7)));
                    i2 := (-504);
                    a2[(0 + abs((abs(((a1[4] * 637) + (-i2))) mod 5)))] := ((false and (k0 = (-208))) or ((7 * k0) > (169 * a0[3])))
                  end
                else
                  begin
                    a2[3] := false;
                    a1[(1 + abs((k2 mod 6)))] := (abs((k2 + abs((i0 + 186)))) mod 101)
                  end
              end;
            k1 := 0;
            repeat
              if false then
                begin
                  i1 := abs(abs(k0))
                end;
              a0[(0 + abs(((k1 mod (1 + abs(((-906) mod 9)))) mod 8)))] := k2;
              if (a1[2] <> k2) then
                begin
                  a1[(1 + abs((abs((sqr(i0) - ((-133) mod 4))) mod 6)))] := (succ((sqr(204) + (a1[4] mod 8))) mod 101)
                end;
              k1 := (k1 + 1)
            until (k1 >= 1);
            k0 := (k0 - 1)
          end;
        if (true and true) then
          begin
            i0 := k0;
            i2 := sqr(abs((sqr((-49)) mod (1 + abs((min(k1, a1[5]) mod 9))))));
            a0[1] := sqr(z0)
          end
        else
          begin
            z0 := 118;
            a0[(0 + abs(((((-(k0 + 718)) mod (1 + abs((((245 * i2) + k0) mod 9)))) - abs(succ(abs((-235))))) mod 8)))] := k1
          end
      end;
  end;
  i2 := 482;
  if ((z0 mod (1 + abs(((i1 div (1 + abs((a1[3] mod 9)))) mod 9)))) >= ((k2 + (-738)) div (1 + abs(((-987) mod 9))))) then
    begin
      if (true or true) then
        begin
          k0 := 0;
          repeat
            if (not (true or true)) then
              begin
                i2 := (-i2);
                i0 := abs(a0[1])
              end
            else
              begin
                a0[(0 + abs(((k2 div 6) mod 8)))] := (sqr(260) * (k0 - a0[7]));
                i1 := (sqr((-830)) div (1 + abs(((a1[3] div (-1)) mod 9))))
              end;
            if (abs(abs((-888))) <> (-806)) then
              begin
                a0[(0 + abs((pred(k1) mod 8)))] := i2;
                i0 := pred((((-170) + sqr(k0)) - z0));
                z0 := 132
              end
            else
              begin
                a1[5] := (i1 mod 101);
                i2 := (z0 div 3)
              end;
            k0 := (k0 + 1)
          until (k0 >= 3);
          i0 := (84 mod 2);
          if false then
            begin
              if (sqr(abs((-267))) = (-((-753) + succ(878)))) then
                begin
                  i2 := 241;
                  a0[0] := (-782)
                end
            end
          else
            begin
              i1 := pred(348)
            end
        end
      else
        begin
          case abs((z0 mod 4)) of
            0:
              begin
                i0 := (-(-(((-114) mod (1 + abs((k1 mod 9)))) div (1 + abs((min(487, i2) mod 9))))))
              end;
            1:
              begin
                if (not (z0 >= a1[6])) then
                  begin
                    a2[4] := true;
                    a0[2] := sqr((-(((-250) div 2) * pred(i1))))
                  end
              end;
            2:
              begin
                a0[(0 + abs((((-(-798)) div (1 + abs((abs(k0) mod 9)))) mod 8)))] := succ((succ(565) + (-i1)))
              end;
            3:
              begin
                z0 := (0 + abs(((pred(sqr(max(k2, i2))) mod (-3)) mod 256)));
                a0[3] := i0
              end;
          end;
          if false then
            begin
              i1 := a1[4];
              a2[(0 + abs(((k1 + (-118)) mod 5)))] := ((not false) and true);
              i1 := max(abs(78), succ(39))
            end
        end
    end;
  for k0 := 4 downto (-1) do
    begin
      for k1 := 11 downto 3 do
        begin
          i0 := k0;
          z0 := 131
        end
    end;
  if true then
    begin
      a0[2] := z0
    end;
  z0 := 70;
  write(i0);
  write(i1);
  write(i2)
end.

