{ distilled corpus seed: sieve }

program sieve;
var i, j, count : integer;
    composite : array[2..120] of boolean;
begin
  count := 0;
  for i := 2 to 120 do composite[i] := false;
  for i := 2 to 120 do
    if not composite[i] then begin
      count := count + 1;
      j := i + i;
      while j <= 120 do begin
        composite[j] := true;
        j := j + i
      end
    end;
  write(count)
end.

