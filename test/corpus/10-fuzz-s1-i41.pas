{ distilled corpus seed: fuzz-s1-i41 }
program fuzz;
var
  i0 : integer;
  i1 : integer;
  p0 : boolean;
  p1 : boolean;
  p2 : boolean;
  s0 : set of 0..31;
  k0 : integer;
  k1 : integer;
  k2 : integer;
begin
  p0 := true;
  p1 := ((-((k0 mod (1 + abs(((-776) mod 9)))) div (1 + abs((sqr(45) mod 9))))) >= max((abs(i1) div (1 + abs(((110 + k1) mod 9)))), sqr(sqr(k0))));
  case abs((((318 * (-257)) - (i0 - k0)) mod 4)) of
    0:
      begin
        i1 := i1
      end;
    1:
      begin
        i1 := (-983)
      end;
    2:
      begin
        k0 := 0;
        repeat
          k1 := 5;
          while (k1 > 0) do
            begin
              if false then
                begin
                  i0 := (299 + 19)
                end
              else
                begin
                  p0 := ((-169) > (-848))
                end;
              if true then
                begin
                  i0 := (-525);
                  i1 := pred(min(abs(k1), sqr(i1)));
                  i0 := sqr(((-k2) * (924 + k1)))
                end
              else
                begin
                  exclude(s0, abs((((148 + i1) * sqr(169)) mod 32)));
                  i1 := (pred(((-760) * k1)) - (-483))
                end;
              k1 := (k1 - 1)
            end;
          i0 := abs(max((-405), i0));
          k0 := (k0 + 1)
        until (k0 >= 3)
      end;
    3:
      begin
        k0 := 3;
        while ((k0 > 0) and false) do
          begin
            i0 := ((abs((-171)) - (89 mod (1 + abs((k2 mod 9))))) mod (1 + abs((222 mod 9))));
            k1 := 0;
            repeat
              if (odd((-215)) and (p0 and true)) then
                begin
                  i1 := (-896)
                end;
              p2 := p2;
              k1 := (k1 + 1)
            until (k1 >= 2);
            p2 := (false = p2);
            k0 := (k0 - 1)
          end;
        k0 := 7;
        while (k0 > 0) do
          begin
            for k1 := 10 to 10 do
              begin
                i0 := (-(sqr((-858)) + k0));
                p2 := ((219 div (-8)) < ((-401) mod (1 + abs((k0 mod 9)))));
                i0 := (-402)
              end;
            if true then
              begin
                i0 := i0;
                i0 := ((abs(succ((-587))) * (((-851) mod 3) * (-629))) mod 1);
                i1 := k0
              end
            else
              begin
                i1 := i0;
                i0 := pred((-abs(k1)))
              end;
            for k1 := 10 downto 3 do
              begin
                if (min(846, 654) = (369 + 347)) then
                  begin
                    i1 := (i1 * (-302));
                    i0 := max(k1, 691);
                    i0 := max(455, (-469))
                  end
                else
                  begin
                    i0 := abs((k0 div (1 + abs((i0 mod 9)))))
                  end;
                include(s0, abs((((i1 mod (1 + abs(((-859) mod 9)))) * (505 div 7)) mod 32)));
                exclude(s0, abs((((k1 - 864) * (k2 * 607)) mod 32)))
              end;
            k0 := (k0 - 1)
          end
      end;
  end;
  i1 := k2;
  for k0 := 6 downto 1 do
    begin
      k1 := 3;
      while (k1 > 0) do
        begin
          i0 := (min(sqr((-251)), (-(-260))) + ((k0 - i1) * sqr(k0)));
          k1 := (k1 - 1)
        end;
      if (k0 <> i0) then
        begin
          i1 := k1;
          for k1 := 8 to 17 do
            begin
              i0 := min(i0, i1)
            end
        end
    end;
  k0 := 6;
  while (k0 > 0) do
    begin
      if ((i0 > k0) = p2) then
        begin
          k1 := 8;
          while ((k1 > 0) and p1) do
            begin
              p1 := ((((-400) * (-i1)) = ((k0 - (-426)) mod (1 + abs(((979 * k2) mod 9))))) or (((p2 and p1) and ((-748) <> 439)) or (odd((-929)) <> true)));
              exclude(s0, abs(((-(-(-147))) mod 32)));
              i1 := 258;
              k1 := (k1 - 1)
            end
        end;
      i0 := (k1 * 767);
      k1 := 5;
      while ((k1 > 0) and p1) do
        begin
          for k2 := 11 to 20 do
            begin
              if (((486 - k2) <= (k1 - 490)) or (not odd((-277)))) then
                begin
                  i0 := i0;
                  i1 := (k0 - k0);
                  i1 := 334
                end
            end;
          i1 := (i0 mod (1 + abs((abs((988 mod (1 + abs((k1 mod 9))))) mod 9))));
          k2 := 7;
          while ((k2 > 0) and (abs(((k2 + 332) mod 32)) in s0)) do
            begin
              if (min(k1, i0) >= max(163, k0)) then
                begin
                  p1 := ((((-534) mod 5) - (-919)) <> sqr(max(i1, (-265))));
                  p0 := (false = p0)
                end;
              if p0 then
                begin
                  i0 := (-((((-308) mod 8) * (-i0)) div (-5)));
                  i0 := 526;
                  i0 := (((-k1) mod 3) - (-k1))
                end
              else
                begin
                  i0 := 143
                end;
              i1 := k0;
              k2 := (k2 - 1)
            end;
          k1 := (k1 - 1)
        end;
      k0 := (k0 - 1)
    end;
  p1 := true;
  i0 := 658;
  include(s0, abs((pred(((-65) mod (-3))) mod 32)));
  write(i0);
  write(i1)
end.

