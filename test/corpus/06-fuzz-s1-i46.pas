{ distilled corpus seed: fuzz-s1-i46 }
program fuzz;
var
  i0 : integer;
  i1 : integer;
  p0 : boolean;
  p1 : boolean;
  p2 : boolean;
  s0 : set of 0..31;
  k0 : integer;
  k1 : integer;
  k2 : integer;
begin
  k0 := 3;
  while (k0 > 0) do
    begin
      i1 := k0;
      if (true or ((-(i0 div (-9))) >= i1)) then
        begin
          if (k0 < sqr((-850))) then
            begin
              i0 := (min(i1, k1) - succ(k0));
              i1 := (((901 + 713) mod (-9)) - (pred(k0) - 519))
            end
          else
            begin
              i1 := min(max(((989 - i0) + 975), sqr((-i1))), sqr(((-k1) div (1 + abs((succ(i1) mod 9))))));
              i1 := max(k0, 743)
            end;
          i1 := abs((-712))
        end
      else
        begin
          k1 := 8;
          while ((k1 > 0) and true) do
            begin
              p1 := (odd(((i1 - (-644)) - k1)) and (p1 or p2));
              i1 := (-i1);
              k1 := (k1 - 1)
            end
        end;
      k0 := (k0 - 1)
    end;
  if (832 <> i0) then
    begin
      i0 := 906;
      i0 := ((i1 mod 9) - k0)
    end
  else
    begin
      case abs((k1 mod 4)) of
        0:
          begin
            p2 := (true or false);
            case abs(((i0 + ((((-879) * k1) - (167 div 9)) * max(max(k0, (-184)), (k0 * 129)))) mod 2)) of
              0:
                begin
                  i0 := k2
                end;
              otherwise
                begin
                  if (true <> p1) then
                    begin
                      i1 := pred((i1 * k0));
                      i1 := (-(-(-k2)))
                    end
                end
            end
          end;
        1:
          begin
            k0 := 0;
            repeat
              p0 := (abs((k2 mod 32)) in s0);
              p2 := (false and true);
              i1 := (k0 - 696);
              k0 := (k0 + 1)
            until (k0 >= 6)
          end;
        2:
          begin
            i0 := min(min(abs((730 + i0)), (sqr(i1) mod 6)), abs((sqr(i0) div 2)));
            i1 := pred(((-abs(i1)) + 108))
          end;
        otherwise
          begin
            k0 := 5;
            while ((k0 > 0) and (abs(((i0 div (1 + abs(((-270) mod 9)))) mod 32)) in s0)) do
              begin
                i0 := (-67);
                k0 := (k0 - 1)
              end
          end
      end;
      for k0 := 2 downto 0 do
        begin
          p0 := (min(abs((-675)), ((-701) mod (1 + abs(((-893) mod 9))))) >= abs((-i1)))
        end
    end;
  i0 := (213 - (-17));
  for k0 := (-5) downto (-5) do
    begin
      i0 := k1
    end;
  if odd((i1 + k2)) then
    begin
      i1 := k2;
      k0 := 0;
      repeat
        k1 := 6;
        while ((k1 > 0) and ((k1 + (-84)) = (702 div 6))) do
          begin
            if (p2 or true) then
              begin
                p0 := ((abs((abs(k1) mod 32)) in s0) or (not (abs((k1 mod 32)) in s0)));
                i0 := i1;
                p2 := ((true and p1) = ((-806) < (-964)))
              end
            else
              begin
                p0 := (abs((((((-421) + (-272)) - k1) mod 7) mod 32)) in s0);
                i1 := (-429)
              end;
            k1 := (k1 - 1)
          end;
        case abs(((-succ(((k1 + i1) - sqr(k2)))) mod 3)) of
          0:
            begin
              if (abs((max(i1, (-325)) mod 32)) in s0) then
                begin
                  i0 := (k0 + (max(i0, 500) + (i0 * k1)))
                end
              else
                begin
                  exclude(s0, abs((((-581) + (k0 div (1 + abs((k0 mod 9))))) mod 32)));
                  i0 := sqr((k0 - 654))
                end
            end;
          1:
            begin
              i1 := (sqr(k1) + (-succ((-(-872)))));
              p2 := (p2 = (abs((i0 mod 32)) in s0))
            end;
          otherwise
            begin
              i0 := i1
            end
        end;
        k0 := (k0 + 1)
      until (k0 >= 6)
    end
  else
    begin
      if (false <> true) then
        begin
          p0 := ((i0 + (-951)) < (k0 + abs((-k1))))
        end;
      p2 := p2
    end;
  for k0 := 11 downto 11 do
    begin
      i0 := (((-908) mod (1 + abs((303 mod 9)))) * (-939))
    end;
  i0 := (-585);
  k0 := 0;
  repeat
    if (not ((false and true) or odd(k1))) then
      begin
        i0 := (((k0 mod (1 + abs(((-498) mod 9)))) mod 1) div (-1));
        for k1 := 10 to 10 do
          begin
            i1 := (-k1);
            i0 := ((-147) * k1);
            if (true and p2) then
              begin
                i1 := succ(pred((-723)));
                p2 := p2;
                i0 := (max(pred(385), abs((-733))) * ((k2 - (-103)) + ((-641) + i0)))
              end
          end
      end
    else
      begin
        i0 := i0;
        i0 := (max(316, ((-712) - 722)) * k0)
      end;
    if ((abs((((i1 mod 6) * k0) mod 32)) in s0) <> (abs(((((-770) - i0) + ((-215) + i0)) mod 32)) in s0)) then
      begin
        k1 := 5;
        while (k1 > 0) do
          begin
            if ((sqr(i1) * max(499, k2)) = (i0 div 4)) then
              begin
                p0 := (((-422) = 182) and (false or p0));
                p0 := false;
                i0 := 447
              end;
            k1 := (k1 - 1)
          end;
        if odd((i0 div 6)) then
          begin
            i1 := k1;
            p0 := p0;
            i1 := ((max((k1 mod (-7)), (-780)) div 5) mod (1 + abs(((pred(989) - (-664)) mod 9))))
          end
      end
    else
      begin
        for k1 := (-2) to (-1) do
          begin
            p2 := (abs(((-27) mod 32)) in s0);
            p2 := (not (not odd(k1)))
          end;
        k1 := 8;
        while (k1 > 0) do
          begin
            p2 := false;
            i1 := i0;
            if (max((-547), k2) > (83 + (-415))) then
              begin
                include(s0, abs(((-(i0 div (1 + abs((k0 mod 9))))) mod 32)));
                i0 := i1
              end
            else
              begin
                p1 := (pred((k1 div (-8))) = (((-713) + 206) mod 5));
                i1 := pred(i0)
              end;
            k1 := (k1 - 1)
          end
      end;
    k0 := (k0 + 1)
  until (k0 >= 2);
  write(i0);
  write(i1)
end.

