{ distilled corpus seed: pin_real_memops }
program pin; var r0, r1, r2 : real; begin r0 := 1.5; r1 := 2.25; r2 := (r0 + 1.0) - r1; r2 := (r2 * 2.0) + r1; r2 := (r2 / 2.0) * r1; r2 := (r0 - 1.0) / r1; write(r2) end.
