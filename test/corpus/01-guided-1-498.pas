{ distilled corpus seed: guided-1-498 }
program fuzz;
var
  i0 : integer;
  i1 : integer;
  i2 : integer;
  z0 : 0..500;
  p0 : boolean;
  p1 : boolean;
  c0 : char;
  c1 : char;
  r0 : real;
  r1 : real;
  a0 : array[0..7] of integer;
  s0 : set of 0..15;
  k0 : integer;
  k1 : integer;
  k2 : integer;
procedure q0;
begin
  a0[2] := ((-(i1 - i0)) mod (-4));
  c1 := 't';
  exclude(s0, abs((abs(k0) mod 16)));
  i0 := sqr((-704))
end;
procedure q1;
begin
  if p0 then
    begin
      a0[(0 + abs(((-a0[1]) mod 8)))] := a0[0]
    end
  else
    begin
      if ((p1 and false) and (a0[3] <= i1)) then
        begin
          a0[(0 + abs(((24 mod (1 + abs((a0[7] mod 9)))) mod 8)))] := (z0 + min(i0, a0[0]))
        end
      else
        begin
          include(s0, abs((i1 mod 16)))
        end
    end;
  if p0 then
    begin
      z0 := (0 + abs(((893 - a0[1]) mod 501)))
    end
  else
    begin
      include(s0, abs(((-((-924) div 6)) mod 16)));
      if p0 then
        begin
          if p0 then
            begin
              include(s0, abs((max(sqr(797), min(26, z0)) mod 16)));
              if (not (true or true)) then
                begin
                  p0 := p1
                end
            end;
          if p0 then
            begin
              if (abs((i1 mod 16)) in s0) then
                begin
                  r0 := ((-((-31.48) + (58.28 - r1))) + (-(r1 / 6.70)));
                  c1 := c0;
                  a0[(0 + abs((k2 mod 8)))] := (i2 + (-886))
                end
              else
                begin
                  a0[(0 + abs((sqr((i2 div (1 + abs((abs(z0) mod 9))))) mod 8)))] := i1;
                  i1 := ord(c0)
                end;
              i0 := abs(((-985) - 561));
              if odd((((k2 + z0) mod (1 + abs(((i1 - z0) mod 9)))) div (1 + abs((z0 mod 9))))) then
                begin
                  i1 := abs((i0 * k2));
                  i1 := (-max((ord(c0) - 493), sqr(a0[1])))
                end
            end
        end
      else
        begin
          i1 := k2;
          case abs(((((k0 + ord(c1)) div (-8)) * (sqr(ord(c1)) - max(a0[7], 449))) mod 2)) of
            0:
              begin
                if (not true) then
                  begin
                    a0[(0 + abs(((-833) mod 8)))] := abs((sqr(k1) div (1 + abs((((a0[0] div (1 + abs((a0[5] mod 9)))) div (1 + abs(((i1 + a0[2]) mod 9)))) mod 9)))));
                    exclude(s0, abs((succ((i0 - 2)) mod 16)))
                  end
              end;
            otherwise
              begin
                a0[0] := z0
              end
          end
        end
    end;
  exclude(s0, abs(((abs((-873)) - (a0[7] * 977)) mod 16)))
end;
begin
  case abs((899 mod 4)) of
    0:
      begin
        case abs(((-195) mod 2)) of
          0:
            begin
              case abs((sqr((-917)) mod 3)) of
                0:
                  begin
                    i2 := (-i1);
                    p1 := odd(sqr(ord(c1)))
                  end;
                1:
                  begin
                    r0 := (-r1);
                    if ((a0[3] div 3) <> (535 - i2)) then
                      begin
                        z0 := 255;
                        p1 := ((-952) = (((i2 - a0[5]) * (z0 * (-548))) + (i1 - (384 * 799))));
                        a0[4] := sqr(abs((sqr(100) div 4)))
                      end
                  end;
                2:
                  begin
                    if ((91.67 <= r1) and (not (abs(((a0[6] mod (1 + abs((k1 mod 9)))) mod 16)) in s0))) then
                      begin
                        p0 := ((-432) <> ord(c0));
                        i1 := ((i2 div (1 + abs((z0 mod 9)))) - ord(c1))
                      end
                    else
                      begin
                        c1 := chr((abs(((-(i1 - k0)) mod 90)) + 32));
                        i0 := abs(i2)
                      end
                  end;
              end;
              for k0 := 4 to 11 do
                begin
                  exclude(s0, abs((((a0[0] - a0[2]) + (k0 mod (1 + abs((998 mod 9))))) mod 16)));
                  i0 := (k0 div 5)
                end
            end;
          otherwise
            begin
              if (p1 and p0) then
                begin
                  r0 := r0;
                  if odd(pred(ord(c0))) then
                    begin
                      a0[(0 + abs((pred(338) mod 8)))] := (z0 div 4)
                    end
                  else
                    begin
                      r0 := (r0 * 68.65)
                    end
                end
              else
                begin
                  z0 := (0 + abs((succ(succ((993 + a0[0]))) mod 501)));
                  c0 := c1
                end
            end
        end;
        k0 := 0;
        repeat
          k1 := 0;
          repeat
            r0 := (-(((45.88 * 80.39) - (12.89 - r1)) * 40.45));
            r1 := 53.54;
            i2 := (-687);
            k1 := (k1 + 1)
          until (k1 >= 4);
          k1 := 7;
          while (k1 > 0) do
            begin
              c0 := 'h';
              i0 := k1;
              k1 := (k1 - 1)
            end;
          a0[1] := min((((a0[6] + a0[6]) + (k1 - (-567))) * 460), (((a0[2] + (-136)) div 7) * (-(a0[4] + a0[1]))));
          k0 := (k0 + 1)
        until (k0 >= 4)
      end;
    1:
      begin
        k0 := 3;
        while ((k0 > 0) and (not odd(247))) do
          begin
            if (not (not p0)) then
              begin
                if odd((a0[1] - z0)) then
                  begin
                    p1 := ((sqr((707 mod 6)) * sqr(i0)) < a0[3]);
                    a0[(0 + abs(((succ(ord(c1)) mod 7) mod 8)))] := min(21, z0);
                    r0 := (((96.52 + r0) * 79.88) + ((-70.21) * 74.78))
                  end
              end
            else
              begin
                p0 := p0;
                i0 := sqr((k1 - ((-ord(c1)) mod (1 + abs(((ord(c1) + k0) mod 9))))))
              end;
            p1 := p1;
            for k1 := 8 to 12 do
              begin
                if odd(sqr(i1)) then
                  begin
                    r0 := (-(r1 * 98.17));
                    r0 := (4.89 / 6.16);
                    i2 := min(ord(c1), i1)
                  end
                else
                  begin
                    a0[(0 + abs((k2 mod 8)))] := i2;
                    a0[(0 + abs((max((pred((ord(c0) div (1 + abs((i1 mod 9))))) - sqr((207 * i0))), ((sqr(a0[2]) + (ord(c0) + ord(c1))) * (((-961) - a0[0]) + sqr(k2)))) mod 8)))] := (568 mod (1 + abs(((-965) mod 9))))
                  end
              end;
            k0 := (k0 - 1)
          end;
        p0 := ((abs((min(a0[2], k2) mod 16)) in s0) or (abs((pred(ord(c0)) mod 16)) in s0))
      end;
    2:
      begin
        for k0 := 12 downto 8 do
          begin
            if false then
              begin
                r0 := (-54.91)
              end;
            r0 := r0;
            a0[(0 + abs(((ord(c1) div 7) mod 8)))] := max((k2 div 7), sqr((-335)))
          end;
        if (((-pred(ord(c1))) div 8) > ((succ(a0[7]) + ((-535) + 538)) mod (1 + abs((abs((k1 + (-242))) mod 9))))) then
          begin
            k0 := 0;
            repeat
              i0 := abs(a0[4]);
              k0 := (k0 + 1)
            until (k0 >= 3);
            i1 := (ord(c0) mod 9)
          end
        else
          begin
            z0 := 213;
            case abs((abs(z0) mod 3)) of
              0:
                begin
                  if (k1 >= ord(c1)) then
                    begin
                      i1 := abs((-min(969, z0)));
                      include(s0, abs((((i1 - k1) mod (-2)) mod 16)))
                    end;
                  p0 := ((((p1 or false) = ('h' < 'p')) and ((266 <= z0) or (true <> p0))) and odd((abs(ord(c0)) + succ(k0))))
                end;
              1:
                begin
                  r0 := 72.33
                end;
              otherwise
                begin
                  c0 := chr((abs((max(k0, abs(k2)) mod 90)) + 32))
                end
            end
          end
      end;
    otherwise
      begin
        case abs((sqr((-862)) mod 3)) of
          0:
            begin
              exclude(s0, abs((((ord(c0) * z0) mod (1 + abs((((-555) div 6) mod 9)))) mod 16)));
              a0[(0 + abs(((((-i2) + (z0 - ord(c1))) mod 2) mod 8)))] := ((-41) div (1 + abs((sqr(701) mod 9))))
            end;
          1:
            begin
              p1 := (p1 and p1);
              c0 := 'x'
            end;
          otherwise
            begin
              for k0 := 12 downto 6 do
                begin
                  exclude(s0, abs(((-(ord(c1) + (-800))) mod 16)))
                end
            end
        end
      end
  end;
  q1;
  r0 := (60.05 - 9.58);
  p0 := (((a0[7] - (a0[6] mod 5)) div (-2)) >= (-sqr((-z0))));
  z0 := 475;
  if p1 then
    begin
      z0 := (0 + abs(((abs(ord(c1)) * (a0[3] + i0)) mod 501)));
      k0 := 7;
      while (k0 > 0) do
        begin
          for k1 := 2 downto (-2) do
            begin
              i2 := sqr((abs(a0[0]) mod (1 + abs((succ(k1) mod 9)))));
              p1 := (z0 = (abs(a0[6]) * (-i0)));
              r0 := r1
            end;
          if (192 < succ((k1 mod (1 + abs((731 mod 9)))))) then
            begin
              if (succ('n') > chr((abs((i0 mod 90)) + 32))) then
                begin
                  a0[(0 + abs(((a0[1] div 2) mod 8)))] := i0
                end
              else
                begin
                  a0[(0 + abs(((-76) mod 8)))] := (z0 - k1)
                end;
              i2 := 485
            end
          else
            begin
              if (r0 > ((81.71 / 9.12) * 27.57)) then
                begin
                  i0 := (abs(a0[2]) * (a0[1] - k0));
                  a0[(0 + abs((ord(c0) mod 8)))] := max(i0, (-323))
                end
              else
                begin
                  z0 := 52;
                  i0 := k1
                end
            end;
          i0 := abs(((k0 + a0[3]) + abs((-442))));
          k0 := (k0 - 1)
        end
    end
  else
    begin
      z0 := 271;
      p0 := (not (sqr((-914)) = i1))
    end;
  k0 := 1;
  while ((k0 > 0) and ((i1 div (1 + abs((k2 mod 9)))) <= k1)) do
    begin
      z0 := (0 + abs(((ord(c0) - a0[1]) mod 501)));
      if (((88.07 + r1) + 14.25) < ((32.36 / 4.76) + 98.75)) then
        begin
          z0 := 403;
          for k1 := 9 downto 1 do
            begin
              if p0 then
                begin
                  z0 := (0 + abs(((((i2 + (-332)) * abs(ord(c1))) - abs((845 - a0[0]))) mod 501)))
                end
            end;
          if p1 then
            begin
              r1 := ((-97.33) * 25.33);
              z0 := 461
            end
          else
            begin
              c1 := 'g'
            end
        end;
      k1 := 0;
      repeat
        i0 := abs((-a0[0]));
        if (abs((k2 mod 16)) in s0) then
          begin
            i2 := (succ(z0) div (1 + abs((960 mod 9))));
            c1 := succ(chr((abs(((i0 div 6) mod 90)) + 32)));
            if (not (((z0 mod 9) > (256 * k1)) or odd(min(a0[1], z0)))) then
              begin
                r0 := ((r0 / 6.76) - r1);
                z0 := (0 + abs((((max(k1, 392) mod (1 + abs(((k2 - k1) mod 9)))) - abs((-k1))) mod 501)));
                include(s0, abs(((sqr(a0[5]) div (1 + abs((k2 mod 9)))) mod 16)))
              end
            else
              begin
                p0 := true;
                i2 := a0[4]
              end
          end;
        k1 := (k1 + 1)
      until (k1 >= 1);
      k0 := (k0 - 1)
    end;
  write(i0);
  write(i1);
  write(i2);
  write(r0);
  write(r1)
end.

