{ distilled corpus seed: newton }

program newton;
var x, estimate, previous : real;
    iterations : integer;
begin
  x := 1234.5;
  estimate := x / 2.0;
  previous := 0.0;
  iterations := 0;
  while abs(estimate - previous) > 0.0001 do begin
    previous := estimate;
    estimate := (estimate + x / estimate) / 2.0;
    iterations := iterations + 1
  end;
  write(estimate);
  write(iterations)
end.

