{ distilled corpus seed: guided-1-184 }
program fuzz;
var
  i0 : integer;
  i1 : integer;
  i2 : integer;
  z0 : 0..255;
  a0 : array[0..7] of integer;
  a1 : array[1..6] of -100..100;
  a2 : array[0..4] of boolean;
  k0 : integer;
  k1 : integer;
  k2 : integer;
begin
  k0 := 0;
  repeat
    k1 := 0;
    repeat
      case abs((i1 mod 4)) of
        0:
          begin
            a2[(0 + abs((min(succ((-924)), ((49 div 4) mod 7)) mod 5)))] := ((((-71) div (1 + abs((pred(k0) mod 9)))) * 551) > (((i2 - k2) - max(z0, (-317))) mod (-9)))
          end;
        1:
          begin
            i1 := (((a0[1] mod 2) * ((-125) * k1)) mod (1 + abs(((max(i1, k1) + pred(i0)) mod 9))))
          end;
        2:
          begin
            a2[(0 + abs((sqr((a0[3] div (-4))) mod 5)))] := ((((k0 * a1[1]) - sqr(k0)) - (i2 + ((-559) div (1 + abs(((-271) mod 9)))))) > min((-173), ((-i0) mod 1)));
            if (true or true) then
              begin
                z0 := 51
              end
          end;
        3:
          begin
            i2 := 68
          end;
      end;
      k1 := (k1 + 1)
    until (k1 >= 1);
    k0 := (k0 + 1)
  until (k0 >= 4);
  a2[(0 + abs((((-(-abs(299))) div (1 + abs(((-441) mod 9)))) mod 5)))] := true;
  k0 := 3;
  while (k0 > 0) do
    begin
      z0 := 48;
      case abs((((-269) * k1) mod 4)) of
        0:
          begin
            if true then
              begin
                i2 := abs(((-(-175)) mod (1 + abs((min(44, 9) mod 9)))))
              end;
            i2 := ((-225) div 8)
          end;
        1:
          begin
            if true then
              begin
                if false then
                  begin
                    a0[1] := (max(abs(((-757) mod (1 + abs((a0[3] mod 9))))), ((a1[5] div (1 + abs((i1 mod 9)))) div (1 + abs(((205 - (-588)) mod 9))))) - (173 + a0[3]));
                    i0 := i1
                  end
                else
                  begin
                    a1[(1 + abs(((abs((sqr(94) div (-1))) div (1 + abs(((-(444 mod (1 + abs((i1 mod 9))))) mod 9)))) mod 6)))] := (k2 mod 101);
                    a0[7] := (min(max((-535), k2), a0[7]) * ((-a1[4]) + a0[6]))
                  end
              end
            else
              begin
                i0 := a1[2];
                i1 := (k0 + (-934))
              end
          end;
        2:
          begin
            z0 := 235
          end;
        3:
          begin
            k1 := 1;
            while (k1 > 0) do
              begin
                z0 := 48;
                a1[(1 + abs((pred(((sqr(k1) mod (1 + abs((max(i1, z0) mod 9)))) * i1)) mod 6)))] := ((-22) mod 101);
                k1 := (k1 - 1)
              end
          end;
      end;
      k0 := (k0 - 1)
    end;
  z0 := 250;
  i1 := ((sqr((-924)) * sqr(k2)) * k0);
  a0[(0 + abs((184 mod 8)))] := ((i0 + 998) mod 9);
  if ((true or true) or (false and true)) then
    begin
      if true then
        begin
          i1 := (max(max(succ((-985)), sqr(a1[4])), sqr((6 * 590))) mod 6);
          a1[5] := ((((-598) - a1[1]) div (1 + abs(((988 mod 8) mod 9)))) mod 101)
        end;
      if false then
        begin
          for k0 := 0 to 2 do
            begin
              a0[(0 + abs(((234 - (i0 * a1[2])) mod 8)))] := abs((-sqr(i2)))
            end;
          for k0 := 2 downto 0 do
            begin
              i2 := min(succ(((k2 mod (-8)) mod (1 + abs((abs(110) mod 9))))), sqr(107));
              a0[(0 + abs((pred((max(i2, 262) mod (1 + abs(((a1[4] - i2) mod 9))))) mod 8)))] := k1;
              if false then
                begin
                  i2 := (sqr(((-483) * (-255))) mod (1 + abs((pred((i2 div 8)) mod 9))))
                end
            end;
          i0 := abs(k1)
        end
      else
        begin
          a2[(0 + abs((i1 mod 5)))] := (true and ((((-320) + i1) div (1 + abs(((i2 - k1) mod 9)))) = succ((k0 div 3))));
          for k0 := 1 to 10 do
            begin
              a0[(0 + abs(((-12) mod 8)))] := abs(z0);
              a2[(0 + abs((k0 mod 5)))] := odd((((k0 div (1 + abs((i2 mod 9)))) - k1) div (-3)))
            end
        end
    end
  else
    begin
      k0 := 2;
      while (k0 > 0) do
        begin
          z0 := (0 + abs((((-439) - 975) mod 256)));
          k1 := 4;
          while (k1 > 0) do
            begin
              z0 := 171;
              z0 := 141;
              if (true and true) then
                begin
                  a1[1] := ((sqr(179) - z0) mod 101);
                  a1[(1 + abs((k1 mod 6)))] := (50 mod 101)
                end;
              k1 := (k1 - 1)
            end;
          k0 := (k0 - 1)
        end;
      k0 := 0;
      repeat
        if false then
          begin
            a0[(0 + abs(((i2 - (-(k2 * 13))) mod 8)))] := (abs(k1) div 5)
          end
        else
          begin
            i1 := (-993);
            i0 := abs(((65 * a0[6]) - (i2 mod (1 + abs((234 mod 9))))))
          end;
        k0 := (k0 + 1)
      until (k0 >= 1)
    end;
  a0[1] := ((sqr(succ(120)) - pred(((-273) mod (1 + abs((z0 mod 9)))))) + a1[5]);
  for k0 := 2 to 9 do
    begin
      if false then
        begin
          if ((not (a1[5] <> 672)) and ((true and false) and false)) then
            begin
              if true then
                begin
                  i2 := (-min(k0, k1))
                end
              else
                begin
                  a1[(1 + abs(((abs((-462)) div (1 + abs(((a1[5] mod (-9)) mod 9)))) mod 6)))] := (pred(sqr((22 * 976))) mod 101);
                  a0[7] := abs((succ(k0) mod (1 + abs((((k1 mod (1 + abs(((-895) mod 9)))) - (-573)) mod 9)))))
                end
            end;
          if (not false) then
            begin
              if true then
                begin
                  z0 := 32;
                  a1[4] := (k0 mod 101)
                end;
              i0 := (-(-122))
            end
        end
      else
        begin
          a1[6] := (21 mod 101)
        end;
      k1 := 0;
      repeat
        for k2 := 8 downto 3 do
          begin
            i0 := abs((z0 + z0))
          end;
        k1 := (k1 + 1)
      until (k1 >= 4);
      i1 := 44
    end;
  write(i0);
  write(i1);
  write(i2)
end.

