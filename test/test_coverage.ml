(* Production-coverage report for specs/amdahl470.cgg, driven by the
   distilled corpus checked in under test/corpus/ (the greedy minimal
   seed set `pasc fuzz --distill` selects from the standard programs,
   the real-workload bank, the fixed fuzz slice and a guided run).

   Every production in the checked-in baseline
   (test/coverage_baseline.txt) must still fire when the corpus
   compiles: a drop means a template lost its exercise and the suite
   would no longer notice it breaking.  Regressions are reported by
   name and specification line, not as a bare count.

   Newly-covered productions are reported but do not fail the test; add
   them to the baseline to lock them in.

   Regenerate corpus and baseline with:
     dune exec bin/pasc.exe -- fuzz --distill test/corpus
     COGG_COVERAGE_WRITE=$PWD/test/coverage_baseline.txt \
       dune exec test/test_coverage.exe *)

let tables () = Lazy.force Util.amdahl_tables

let corpus_dir () =
  match Util.find_up (Sys.getcwd ()) "test/corpus" with
  | Some d -> d
  | None -> Alcotest.failf "cannot locate test/corpus from %s" (Sys.getcwd ())

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* the distilled seeds: Pascal sources and raw IF streams *)
let corpus () : (string * [ `Pascal | `If ] * string) list =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun f ->
         let path = Filename.concat dir f in
         if Filename.check_suffix f ".pas" then
           Some (f, `Pascal, read_file path)
         else if Filename.check_suffix f ".ifl" then
           Some (f, `If, read_file path)
         else None)

let record_corpus (t : Cogg.Tables.t) : (int, unit) Hashtbl.t =
  let fired = Hashtbl.create 256 in
  let on_reduce p =
    if Cogg.Tables.is_user_prod t p then Hashtbl.replace fired p ()
  in
  let seeds = corpus () in
  if seeds = [] then Alcotest.fail "test/corpus is empty";
  List.iter
    (fun (name, kind, text) ->
      match kind with
      | `Pascal ->
          (* capacity limits (register pressure on the big guided seeds)
             are fine here: the productions that fired before the limit
             still count, matching what distillation measured *)
          ignore (Pipeline.compile ~on_reduce t text)
      | `If -> (
          match Ifl.Reader.program_of_string text with
          | Error m -> Alcotest.failf "corpus seed %s failed to read: %s" name m
          | Ok toks -> ignore (Cogg.Codegen.generate ~on_reduce t toks)))
    seeds;
  fired

(* production render -> specification line, for naming regressions *)
let spec_lines (t : Cogg.Tables.t) : (string, int) Hashtbl.t =
  let g = t.Cogg.Tables.grammar in
  let m = Hashtbl.create 256 in
  for p = 0 to Cogg.Grammar.n_prods g - 1 do
    if Cogg.Tables.is_user_prod t p then
      let pr = Cogg.Grammar.prod g p in
      Hashtbl.replace m (Cogg.Grammar.prod_to_string g pr) pr.Cogg.Grammar.line
  done;
  m

let fired_names (t : Cogg.Tables.t) (fired : (int, unit) Hashtbl.t) :
    string list =
  let g = t.Cogg.Tables.grammar in
  Hashtbl.fold
    (fun p () acc -> Cogg.Grammar.prod_to_string g (Cogg.Grammar.prod g p) :: acc)
    fired []
  |> List.sort_uniq String.compare

let baseline_path () =
  match Util.find_up (Sys.getcwd ()) "test/coverage_baseline.txt" with
  | Some p -> p
  | None -> Alcotest.fail "cannot locate test/coverage_baseline.txt"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else String.trim line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_coverage_no_drop () =
  let t = tables () in
  let names = fired_names t (record_corpus t) in
  (match Sys.getenv_opt "COGG_COVERAGE_WRITE" with
  | Some path ->
      let oc = open_out path in
      List.iter (fun n -> output_string oc (n ^ "\n")) names;
      close_out oc;
      Fmt.epr "wrote %d covered productions to %s@." (List.length names) path
  | None -> ());
  let baseline = read_lines (baseline_path ()) in
  let missing = List.filter (fun b -> not (List.mem b names)) baseline in
  let fresh = List.filter (fun n -> not (List.mem n baseline)) names in
  if fresh <> [] then
    Fmt.epr "note: %d newly-covered productions not in the baseline:@.%a@."
      (List.length fresh)
      Fmt.(list ~sep:Fmt.cut (fmt "  %s"))
      fresh;
  if missing <> [] then begin
    let lines = spec_lines t in
    let located =
      List.map
        (fun b ->
          match Hashtbl.find_opt lines b with
          | Some l -> Fmt.str "%s  (spec line %d)" b l
          | None -> Fmt.str "%s  (no longer in the grammar)" b)
        missing
    in
    Alcotest.failf
      "production coverage dropped: %d baseline productions no longer fire:@.%a"
      (List.length missing)
      Fmt.(list ~sep:Fmt.cut (fmt "  %s"))
      located
  end

let test_distilled_budget () =
  (* the distillation acceptance bar: few seeds, broad coverage *)
  let t = tables () in
  let seeds = List.length (corpus ()) in
  let covered = Hashtbl.length (record_corpus t) in
  Fmt.epr "distilled corpus: %d seeds covering %d productions@." seeds covered;
  if seeds > 24 then
    Alcotest.failf "distilled corpus has %d seeds, budget is 24" seeds;
  if covered < 119 then
    Alcotest.failf "distilled corpus covers %d productions, expected >= 119"
      covered

(* the `coggc check --dead-templates` count, pinned per spec: renders
   are shared across backends, so both compare against the same
   baseline.  A rise means corpus coverage regressed; a drop means new
   templates came alive — lower the pin to lock the improvement in. *)
let dead_count (t : Cogg.Tables.t) : int =
  let covered = read_lines (baseline_path ()) in
  let covered_tbl = Hashtbl.create 256 in
  List.iter (fun l -> Hashtbl.replace covered_tbl l ()) covered;
  let g = t.Cogg.Tables.grammar in
  let dead = ref 0 in
  for p = 0 to t.Cogg.Tables.n_user_prods - 1 do
    let render = Cogg.Grammar.prod_to_string g (Cogg.Grammar.prod g p) in
    if not (Hashtbl.mem covered_tbl render) then incr dead
  done;
  !dead

let test_dead_templates_amdahl () =
  Alcotest.(check int)
    "dead templates (amdahl470)" 75
    (dead_count (Lazy.force Util.amdahl_tables))

let test_dead_templates_risc32 () =
  Alcotest.(check int)
    "dead templates (risc32)" 75
    (dead_count (Lazy.force Util.risc32_tables))

let test_coverage_fraction () =
  (* the corpus must keep exercising a healthy majority of the spec *)
  let t = tables () in
  let covered = Hashtbl.length (record_corpus t) in
  let total = t.Cogg.Tables.n_user_prods in
  Fmt.epr "coverage: %d of %d user productions fire across the corpus@." covered
    total;
  Alcotest.(check bool)
    (Fmt.str "at least half the productions fire (%d/%d)" covered total)
    true
    (2 * covered >= total)

let () =
  Alcotest.run "coverage"
    [
      ( "productions",
        [
          Alcotest.test_case "no drop against baseline" `Quick
            test_coverage_no_drop;
          Alcotest.test_case "distilled budget" `Quick test_distilled_budget;
          Alcotest.test_case "dead templates pinned (amdahl470)" `Quick
            test_dead_templates_amdahl;
          Alcotest.test_case "dead templates pinned (risc32)" `Quick
            test_dead_templates_risc32;
          Alcotest.test_case "overall fraction" `Quick test_coverage_fraction;
        ] );
    ]
