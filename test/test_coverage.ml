(* Production-coverage report for specs/amdahl470.cgg.

   Compiles the standard workload corpus (Pipeline.Programs) plus a
   fixed-seed fuzz corpus (Pascal programs across every profile, and raw
   IF streams including branch-heavy ones) with the Codegen [on_reduce]
   hook recording every user production that fires.  The set of fired
   productions must cover everything in the checked-in baseline
   (test/coverage_baseline.txt): a drop means a template lost its
   exercise and the suite would no longer notice it breaking.

   Newly-covered productions are reported but do not fail the test; add
   them to the baseline to lock them in.

   Regenerate the baseline with:
     COGG_COVERAGE_WRITE=$PWD/test/coverage_baseline.txt \
       dune exec test/test_coverage.exe *)

let tables () = Lazy.force Util.amdahl_tables

(* the corpus: every standard program + a fixed-seed fuzz slice *)
let fuzz_seed = 5
let fuzz_pascal_count = 72
let fuzz_if_count = 24

(* Deterministic pins for productions the seeded fuzz slice is not
   guaranteed to keep hitting as the generators evolve (RNG drift).
   These are coverage-only programs — deliberately NOT part of
   Pipeline.Programs, whose batch fingerprint is pinned elsewhere. *)
let pinned_programs =
  [
    ( "pin_real_memops",
      (* register-resident left operand, plain-variable right operand:
         forces the RX-form real productions over dblrealword memory *)
      "program pin; var r0, r1, r2 : real; begin r0 := 1.5; r1 := 2.25; r2 \
       := (r0 + 1.0) - r1; r2 := (r2 * 2.0) + r1; r2 := (r2 / 2.0) * r1; \
       r2 := (r0 - 1.0) / r1; write(r2) end." );
  ]

let record_corpus (t : Cogg.Tables.t) : (int, unit) Hashtbl.t =
  let fired = Hashtbl.create 256 in
  let on_reduce p =
    if Cogg.Tables.is_user_prod t p then Hashtbl.replace fired p ()
  in
  List.iter
    (fun (name, source) ->
      match Pipeline.compile ~on_reduce t source with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "corpus program %s failed to compile: %s" name m)
    (Pipeline.Programs.all @ pinned_programs);
  for i = 0 to fuzz_pascal_count - 1 do
    let rng = Fuzz.Rng.derive ~seed:fuzz_seed ~index:i in
    let source =
      Fuzz.Gen_pascal.source rng (Fuzz.Profile.rotate i)
    in
    (* capacity limits (register pressure on deep expressions) are fine
       here: the productions that fired before the limit still count *)
    match Pipeline.compile ~on_reduce t source with
    | Ok _ | Error _ -> ()
  done;
  for i = 0 to fuzz_if_count - 1 do
    let rng = Fuzz.Rng.derive ~seed:fuzz_seed ~index:(1000 + i) in
    let toks = Fuzz.Gen_if.program ~branch_heavy:(i mod 3 = 0) rng in
    match Cogg.Codegen.generate ~on_reduce t toks with
    | Ok _ | Error _ -> ()
  done;
  fired

let fired_names (t : Cogg.Tables.t) (fired : (int, unit) Hashtbl.t) :
    string list =
  let g = t.Cogg.Tables.grammar in
  Hashtbl.fold
    (fun p () acc -> Cogg.Grammar.prod_to_string g (Cogg.Grammar.prod g p) :: acc)
    fired []
  |> List.sort_uniq String.compare

let baseline_path () =
  match Util.find_up (Sys.getcwd ()) "test/coverage_baseline.txt" with
  | Some p -> p
  | None -> Alcotest.fail "cannot locate test/coverage_baseline.txt"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else String.trim line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_coverage_no_drop () =
  let t = tables () in
  let names = fired_names t (record_corpus t) in
  (match Sys.getenv_opt "COGG_COVERAGE_WRITE" with
  | Some path ->
      let oc = open_out path in
      List.iter (fun n -> output_string oc (n ^ "\n")) names;
      close_out oc;
      Fmt.epr "wrote %d covered productions to %s@." (List.length names) path
  | None -> ());
  let baseline = read_lines (baseline_path ()) in
  let missing = List.filter (fun b -> not (List.mem b names)) baseline in
  let fresh = List.filter (fun n -> not (List.mem n baseline)) names in
  if fresh <> [] then
    Fmt.epr "note: %d newly-covered productions not in the baseline:@.%a@."
      (List.length fresh)
      Fmt.(list ~sep:Fmt.cut (fmt "  %s"))
      fresh;
  if missing <> [] then
    Alcotest.failf
      "production coverage dropped: %d baseline productions no longer fire:@.%a"
      (List.length missing)
      Fmt.(list ~sep:Fmt.cut (fmt "  %s"))
      missing

let test_coverage_fraction () =
  (* the corpus must keep exercising a healthy majority of the spec *)
  let t = tables () in
  let covered = Hashtbl.length (record_corpus t) in
  let total = t.Cogg.Tables.n_user_prods in
  Fmt.epr "coverage: %d of %d user productions fire across the corpus@." covered
    total;
  Alcotest.(check bool)
    (Fmt.str "at least half the productions fire (%d/%d)" covered total)
    true
    (2 * covered >= total)

let () =
  Alcotest.run "coverage"
    [
      ( "productions",
        [
          Alcotest.test_case "no drop against baseline" `Quick
            test_coverage_no_drop;
          Alcotest.test_case "overall fraction" `Quick test_coverage_fraction;
        ] );
    ]
