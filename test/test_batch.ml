(* Determinism of the parallel engine: for any batch and any worker
   count, parallel compilation must be byte-identical to sequential —
   same listings, same object bytes, same error messages in the same
   positions — and parallel table construction must serialize to the
   same bundle as a sequential build.

   COGG_JOBS overrides the worker count exercised here: an integer, or
   "max" for Domain.recommended_domain_count.  The default of 4 makes
   the parallel paths run real domains even on single-core machines. *)

let jobs () =
  match Sys.getenv_opt "COGG_JOBS" with
  | Some "max" -> max 2 (Domain.recommended_domain_count ())
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

let tables () = Lazy.force Util.amdahl_tables

let corpus_batch () =
  Array.of_list
    (List.map
       (fun (name, source) -> { Pipeline.Batch.name; source })
       Pipeline.Programs.all)

let fingerprint ?pool batch =
  Pipeline.Batch.fingerprint (Pipeline.Batch.compile_all ?pool (tables ()) batch)

let test_corpus_parallel_equals_sequential () =
  let batch = corpus_batch () in
  let seq = fingerprint batch in
  Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
      Alcotest.(check string)
        "parallel == sequential" seq
        (fingerprint ~pool batch));
  (* a pool of one must add nothing either *)
  Cogg.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check string)
        "pool of one == sequential" seq
        (fingerprint ~pool batch))

let test_corpus_parallel_equals_sequential_no_cse () =
  let batch = corpus_batch () in
  let t = tables () in
  let fp ?pool () =
    Pipeline.Batch.fingerprint
      (Pipeline.Batch.compile_all ?pool ~cse:false ~checks:true t batch)
  in
  let seq = fp () in
  Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
      Alcotest.(check string) "option flags thread through" seq (fp ~pool ()))

let test_errors_land_in_place () =
  (* broken sources exercise the Error arm: failures must carry the same
     message and stay at their own index, never poison a neighbour *)
  let good = Pipeline.Programs.gcd in
  let batch =
    [|
      { Pipeline.Batch.name = "ok0"; source = good };
      { Pipeline.Batch.name = "bad1"; source = "program x; begin y := end." };
      { Pipeline.Batch.name = "ok2"; source = good };
      { Pipeline.Batch.name = "bad3"; source = "not pascal at all" };
      { Pipeline.Batch.name = "ok4"; source = good };
    |]
  in
  let t = tables () in
  let seq = Pipeline.Batch.compile_all t batch in
  let par =
    Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
        Pipeline.Batch.compile_all ~pool t batch)
  in
  Array.iteri
    (fun i r ->
      match (r, par.(i)) with
      | Ok a, Ok b ->
          Alcotest.(check string)
            (Printf.sprintf "job %d object bytes" i)
            (Pipeline.Batch.code_bytes a)
            (Pipeline.Batch.code_bytes b)
      | Error a, Error b ->
          Alcotest.(check string) (Printf.sprintf "job %d error" i) a b
      | _ -> Alcotest.failf "job %d: Ok/Error mismatch between runs" i)
    seq;
  Alcotest.(check bool) "good jobs compiled" true (Result.is_ok seq.(0));
  Alcotest.(check bool) "bad jobs failed" true (Result.is_error seq.(1))

(* ------------------------------------------------------------------ *)
(* Table construction                                                  *)
(* ------------------------------------------------------------------ *)

let amdahl_spec =
  lazy
    (match Cogg.Spec_parse.of_file (Util.spec_path "amdahl470.cgg") with
    | Ok s -> s
    | Error e -> Alcotest.failf "spec parse: %a" Cogg.Spec_parse.pp_error e)

let build_bundle ?pool () =
  match Cogg.Cogg_build.build ?pool (Lazy.force amdahl_spec) with
  | Ok t -> Cogg.Tables_io.write t
  | Error es ->
      Alcotest.failf "build failed: %a" (Fmt.list Cogg.Cogg_build.pp_error) es

let test_table_build_bytes_identical () =
  let seq = build_bundle () in
  Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
      let par = build_bundle ~pool () in
      Alcotest.(check int) "bundle length" (String.length seq)
        (String.length par);
      Alcotest.(check bool) "bundle bytes identical" true (String.equal seq par));
  Cogg.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check bool)
        "pool of one identical" true
        (String.equal seq (build_bundle ~pool ())))

(* ------------------------------------------------------------------ *)
(* Property: random batches                                            *)
(* ------------------------------------------------------------------ *)

(* Random batches of programs from the fuzz generators (lib/fuzz): each
   batch is a deterministic (seed, index) slice across every generation
   profile, so the property covers arrays, sets, reals, branches and
   procedure calls — not just straight-line integer code — and failures
   (register-pressure capacity errors) exercise the Error arm naturally.
   QCheck shrinking delegates to the fuzz shrinker, so a counterexample
   prints as a minimized batch instead of pages of programs. *)
let gen_programs : Pascal.Ast.program list QCheck.Gen.t =
  let open QCheck.Gen in
  map2
    (fun seed n ->
      List.init n (fun i ->
          let rng = Fuzz.Rng.derive ~seed ~index:i in
          Fuzz.Gen_pascal.program rng (Fuzz.Profile.rotate i)))
    (int_bound 1_000_000) (int_range 1 10)

let shrink_programs (ps : Pascal.Ast.program list) :
    Pascal.Ast.program list QCheck.Iter.t =
 fun yield ->
  (* drop one program, or shrink one program one step *)
  List.iteri
    (fun i _ ->
      let shorter = List.filteri (fun j _ -> j <> i) ps in
      if shorter <> [] then yield shorter)
    ps;
  List.iteri
    (fun i p ->
      Seq.iter
        (fun p' -> yield (List.mapi (fun j q -> if j = i then p' else q) ps))
        (Fuzz.Shrink.program_candidates p))
    ps

let batch_of_programs (ps : Pascal.Ast.program list) :
    Pipeline.Batch.job array =
  Array.of_list
    (List.mapi
       (fun i p ->
         {
           Pipeline.Batch.name = Printf.sprintf "rand%d" i;
           source = Fuzz.Gen_pascal.render p;
         })
       ps)

let prop_random_batches =
  QCheck.Test.make ~count:25 ~name:"random batches: parallel == sequential"
    (QCheck.make gen_programs ~shrink:shrink_programs ~print:(fun ps ->
         String.concat "\n---\n" (List.map Fuzz.Gen_pascal.render ps)))
    (fun ps ->
      let batch = batch_of_programs ps in
      let seq = fingerprint batch in
      let par =
        Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
            fingerprint ~pool batch)
      in
      if seq <> par then
        QCheck.Test.fail_reportf "fingerprints differ: %s vs %s" seq par;
      true)

let () =
  Alcotest.run "batch"
    [
      ( "determinism",
        [
          Alcotest.test_case "corpus: parallel == sequential" `Quick
            test_corpus_parallel_equals_sequential;
          Alcotest.test_case "corpus: options thread through" `Quick
            test_corpus_parallel_equals_sequential_no_cse;
          Alcotest.test_case "errors land in place" `Quick
            test_errors_land_in_place;
          Alcotest.test_case "table build bytes identical" `Quick
            test_table_build_bytes_identical;
          QCheck_alcotest.to_alcotest prop_random_batches;
        ] );
    ]
