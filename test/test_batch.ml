(* Determinism of the parallel engine: for any batch and any worker
   count, parallel compilation must be byte-identical to sequential —
   same listings, same object bytes, same error messages in the same
   positions — and parallel table construction must serialize to the
   same bundle as a sequential build.

   COGG_JOBS overrides the worker count exercised here: an integer, or
   "max" for Domain.recommended_domain_count.  The default of 4 makes
   the parallel paths run real domains even on single-core machines. *)

let jobs () =
  match Sys.getenv_opt "COGG_JOBS" with
  | Some "max" -> max 2 (Domain.recommended_domain_count ())
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

let tables () = Lazy.force Util.amdahl_tables

let corpus_batch () =
  Array.of_list
    (List.map
       (fun (name, source) -> { Pipeline.Batch.name; source })
       Pipeline.Programs.all)

let fingerprint ?pool batch =
  Pipeline.Batch.fingerprint (Pipeline.Batch.compile_all ?pool (tables ()) batch)

let test_corpus_parallel_equals_sequential () =
  let batch = corpus_batch () in
  let seq = fingerprint batch in
  Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
      Alcotest.(check string)
        "parallel == sequential" seq
        (fingerprint ~pool batch));
  (* a pool of one must add nothing either *)
  Cogg.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check string)
        "pool of one == sequential" seq
        (fingerprint ~pool batch))

let test_corpus_parallel_equals_sequential_no_cse () =
  let batch = corpus_batch () in
  let t = tables () in
  let fp ?pool () =
    Pipeline.Batch.fingerprint
      (Pipeline.Batch.compile_all ?pool ~cse:false ~checks:true t batch)
  in
  let seq = fp () in
  Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
      Alcotest.(check string) "option flags thread through" seq (fp ~pool ()))

let test_errors_land_in_place () =
  (* broken sources exercise the Error arm: failures must carry the same
     message and stay at their own index, never poison a neighbour *)
  let good = Pipeline.Programs.gcd in
  let batch =
    [|
      { Pipeline.Batch.name = "ok0"; source = good };
      { Pipeline.Batch.name = "bad1"; source = "program x; begin y := end." };
      { Pipeline.Batch.name = "ok2"; source = good };
      { Pipeline.Batch.name = "bad3"; source = "not pascal at all" };
      { Pipeline.Batch.name = "ok4"; source = good };
    |]
  in
  let t = tables () in
  let seq = Pipeline.Batch.compile_all t batch in
  let par =
    Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
        Pipeline.Batch.compile_all ~pool t batch)
  in
  Array.iteri
    (fun i r ->
      match (r, par.(i)) with
      | Ok a, Ok b ->
          Alcotest.(check string)
            (Printf.sprintf "job %d object bytes" i)
            (Pipeline.Batch.code_bytes a)
            (Pipeline.Batch.code_bytes b)
      | Error a, Error b ->
          Alcotest.(check string) (Printf.sprintf "job %d error" i) a b
      | _ -> Alcotest.failf "job %d: Ok/Error mismatch between runs" i)
    seq;
  Alcotest.(check bool) "good jobs compiled" true (Result.is_ok seq.(0));
  Alcotest.(check bool) "bad jobs failed" true (Result.is_error seq.(1))

(* ------------------------------------------------------------------ *)
(* Table construction                                                  *)
(* ------------------------------------------------------------------ *)

let amdahl_spec =
  lazy
    (match Cogg.Spec_parse.of_file (Util.spec_path "amdahl470.cgg") with
    | Ok s -> s
    | Error e -> Alcotest.failf "spec parse: %a" Cogg.Spec_parse.pp_error e)

let build_bundle ?pool () =
  match Cogg.Cogg_build.build ?pool (Lazy.force amdahl_spec) with
  | Ok t -> Cogg.Tables_io.write t
  | Error es ->
      Alcotest.failf "build failed: %a" (Fmt.list Cogg.Cogg_build.pp_error) es

let test_table_build_bytes_identical () =
  let seq = build_bundle () in
  Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
      let par = build_bundle ~pool () in
      Alcotest.(check int) "bundle length" (String.length seq)
        (String.length par);
      Alcotest.(check bool) "bundle bytes identical" true (String.equal seq par));
  Cogg.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check bool)
        "pool of one identical" true
        (String.equal seq (build_bundle ~pool ())))

(* ------------------------------------------------------------------ *)
(* Property: random batches                                            *)
(* ------------------------------------------------------------------ *)

(* Small straight-line integer programs; division only by non-zero
   constants.  Mixed with a chance of a syntactically broken body so the
   property also covers batches with failures. *)
let gen_source : string QCheck.Gen.t =
  let open QCheck.Gen in
  let var = map (fun i -> Printf.sprintf "v%d" i) (int_bound 3) in
  let lit = map string_of_int (int_range 0 99) in
  let rec expr depth =
    if depth = 0 then oneof [ lit; var ]
    else
      let sub = expr (depth - 1) in
      oneof
        [
          lit;
          var;
          map2 (Printf.sprintf "(%s + %s)") sub sub;
          map2 (Printf.sprintf "(%s - %s)") sub sub;
          map2 (Printf.sprintf "(%s * %s)") (expr 0) (expr 0);
          map2 (fun a d -> Printf.sprintf "(%s div %d)" a d) sub (int_range 1 9);
        ]
  in
  let assign = map2 (fun v e -> Printf.sprintf "%s := %s" v e) var (expr 2) in
  let body = map (String.concat "; ") (list_size (int_range 1 5) assign) in
  frequency
    [
      ( 9,
        map
          (Printf.sprintf
             "program rand; var v0, v1, v2, v3 : integer; begin %s end.")
          body );
      (1, map (Printf.sprintf "program rand; begin %s := ; end.") var);
    ]

let gen_batch : Pipeline.Batch.job array QCheck.Gen.t =
  let open QCheck.Gen in
  map
    (fun sources ->
      Array.of_list
        (List.mapi
           (fun i source ->
             { Pipeline.Batch.name = Printf.sprintf "rand%d" i; source })
           sources))
    (list_size (int_range 1 12) gen_source)

let prop_random_batches =
  QCheck.Test.make ~count:25 ~name:"random batches: parallel == sequential"
    (QCheck.make gen_batch ~print:(fun b ->
         String.concat "\n---\n"
           (Array.to_list (Array.map (fun j -> j.Pipeline.Batch.source) b))))
    (fun batch ->
      let seq = fingerprint batch in
      let par =
        Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
            fingerprint ~pool batch)
      in
      if seq <> par then
        QCheck.Test.fail_reportf "fingerprints differ: %s vs %s" seq par;
      true)

let () =
  Alcotest.run "batch"
    [
      ( "determinism",
        [
          Alcotest.test_case "corpus: parallel == sequential" `Quick
            test_corpus_parallel_equals_sequential;
          Alcotest.test_case "corpus: options thread through" `Quick
            test_corpus_parallel_equals_sequential_no_cse;
          Alcotest.test_case "errors land in place" `Quick
            test_errors_land_in_place;
          Alcotest.test_case "table build bytes identical" `Quick
            test_table_build_bytes_identical;
          QCheck_alcotest.to_alcotest prop_random_batches;
        ] );
    ]
