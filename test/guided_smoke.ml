(* Coverage-guided fuzzing oracle behind `dune build @guided` (run at
   COGG_JOBS=1 and COGG_JOBS=max by the alias):

   1. Strictness: at a fixed 512-case budget, the guided scheduler must
      cover strictly more distinct production bigrams than blind random
      generation at the same budget (and at least as many productions).
      Feedback has to earn its keep.

   2. Determinism: the same (seed, shard count) must produce the
      identical kept-seed pool (lineage for lineage) and the identical
      coverage map when the round batches are evaluated across
      COGG_JOBS domains as when they run fully sequentially.

   3. Lineage: every kept seed's replay line reconstructs the exact
      input bytes.

   COGG_GUIDED_BUDGET overrides the budget for longer local runs. *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("guided_smoke: " ^ m);
      exit 1)
    fmt

let rec find_up depth dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up (depth - 1) (Filename.dirname dir) rel

let jobs =
  (* floor "max" at 2 so the parallel evaluation path is exercised even
     on a single-core machine *)
  match Sys.getenv_opt "COGG_JOBS" with
  | Some "max" -> max 2 (Domain.recommended_domain_count ())
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
  | None -> max 2 (Domain.recommended_domain_count ())

let budget =
  match
    Option.bind (Sys.getenv_opt "COGG_GUIDED_BUDGET") int_of_string_opt
  with
  | Some n when n > 0 -> n
  | _ -> 512

let tables =
  let rel = "specs/amdahl470.cgg" in
  let path =
    match find_up 6 (Sys.getcwd ()) rel with
    | Some p -> p
    | None -> fail "cannot locate %s from %s" rel (Sys.getcwd ())
  in
  match Cogg.Cogg_build.build_file path with
  | Ok t -> t
  | Error es ->
      fail "amdahl470.cgg failed to build: %s"
        (String.concat "; "
           (List.map (Fmt.str "%a" Cogg.Cogg_build.pp_error) es))

let seed = 11

let guided ~jobs =
  Fuzz.Runner.run_guided tables
    {
      Fuzz.Runner.default_guided with
      Fuzz.Runner.g_seed = seed;
      g_budget = budget;
      g_jobs = jobs;
    }

let () =
  (* 1: guided strictly beats random on bigrams at the same budget *)
  let g = guided ~jobs in
  let gc = g.Fuzz.Runner.g_covmap in
  let rc = Fuzz.Runner.random_coverage tables ~seed ~count:budget in
  Printf.printf
    "guided:  %d cases, %d kept, %d productions, %d bigrams\n%!"
    g.Fuzz.Runner.g_cases
    (List.length g.Fuzz.Runner.g_kept)
    (Fuzz.Covmap.prods_covered gc)
    (Fuzz.Covmap.bigrams_covered gc);
  Printf.printf "random:  %d cases, %d productions, %d bigrams\n%!" budget
    (Fuzz.Covmap.prods_covered rc)
    (Fuzz.Covmap.bigrams_covered rc);
  if g.Fuzz.Runner.g_cases <> budget then
    fail "guided ran %d cases, wanted the exact %d budget"
      g.Fuzz.Runner.g_cases budget;
  if not (Fuzz.Covmap.bigrams_covered gc > Fuzz.Covmap.bigrams_covered rc)
  then
    fail "guided bigram coverage %d not strictly above random %d at %d cases"
      (Fuzz.Covmap.bigrams_covered gc)
      (Fuzz.Covmap.bigrams_covered rc)
      budget;
  if Fuzz.Covmap.prods_covered gc < Fuzz.Covmap.prods_covered rc then
    fail "guided production coverage %d below random %d"
      (Fuzz.Covmap.prods_covered gc)
      (Fuzz.Covmap.prods_covered rc);
  (* 2: same (seed, shard count) -> identical pool + map at -j1 vs -jN *)
  let g1 = guided ~jobs:1 in
  let lines (r : Fuzz.Runner.guided_report) =
    List.map
      (fun (k : Fuzz.Runner.kept) -> Fuzz.Runner.replay_line k.Fuzz.Runner.k_lineage)
      r.Fuzz.Runner.g_kept
  in
  if lines g <> lines g1 then
    fail "kept-seed pool diverges between -j%d and -j1 (%d vs %d seeds)" jobs
      (List.length (lines g))
      (List.length (lines g1));
  if not (Fuzz.Covmap.equal gc g1.Fuzz.Runner.g_covmap) then
    fail "coverage map diverges between -j%d and -j1 (%s vs %s)" jobs
      (Fuzz.Covmap.digest gc)
      (Fuzz.Covmap.digest g1.Fuzz.Runner.g_covmap);
  (* 3: every kept seed's lineage reconstructs the exact input bytes *)
  List.iter
    (fun (k : Fuzz.Runner.kept) ->
      let line = Fuzz.Runner.replay_line k.Fuzz.Runner.k_lineage in
      match Fuzz.Runner.parse_replay line with
      | Error m -> fail "kept seed %s does not parse back: %s" line m
      | Ok l ->
          let input, _ = Fuzz.Runner.input_of_lineage l in
          if
            Fuzz.Runner.render_input input
            <> Fuzz.Runner.render_input k.Fuzz.Runner.k_input
          then fail "kept seed %s does not replay to the same bytes" line)
    g.Fuzz.Runner.g_kept;
  Printf.printf
    "guided: deterministic at -j1/-j%d (map %s), %d kept lineages replay \
     byte-identically\n"
    jobs (Fuzz.Covmap.digest gc)
    (List.length g.Fuzz.Runner.g_kept)
