(* End-to-end tests of CoGG itself on small specifications, including the
   paper's introductory example (section 1). *)

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* The paper's section-1 artificial machine, completed with a return
   statement so generated programs can run on the simulator. *)
let intro_spec =
  {|
* The artificial machine of paper section 1.
$Non-terminals
 r = gpr
$Terminals
 d = displacement
$Operators
 word, iadd, store, ret
$Opcodes
 l, ar, st, bcr
$Constants
 fifteen = 15
$Productions
r.2 ::= word d.1
 using r.2
 l     r.2,d.1
r.1 ::= iadd r.1 r.2
 modifies r.1
 ar    r.1,r.2
lambda ::= store word d.1 r.2
 st    r.2,d.1
lambda ::= ret
 need r.14
 bcr   fifteen,r.14
|}

let build_intro () =
  match Cogg.Cogg_build.build_string intro_spec with
  | Ok t -> t
  | Error es ->
      Alcotest.failf "spec build failed: %a"
        (Fmt.list Cogg.Cogg_build.pp_error)
        es

let test_spec_parses () =
  match Cogg.Spec_parse.of_string intro_spec with
  | Error e -> Alcotest.failf "%a" Cogg.Spec_parse.pp_error e
  | Ok spec ->
      check_int "productions" 4 (List.length spec.Cogg.Spec_ast.productions);
      check_int "templates" 7 (Cogg.Spec_ast.n_templates spec);
      check_int "operators" 4 (List.length spec.Cogg.Spec_ast.operators)

let test_tables_build () =
  let t = build_intro () in
  check_int "user productions" 4 t.Cogg.Tables.n_user_prods;
  Alcotest.(check bool)
    "has states" true
    (Cogg.Parse_table.n_states t.Cogg.Tables.parse > 3)

(* A := A + B as in the paper; expect the four-instruction sequence. *)
let intro_if = "store word d:100 iadd word d:100 word d:104 ret"

let test_intro_codegen () =
  let t = build_intro () in
  match Cogg.Codegen.generate_string t intro_if with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let insns =
        Machine.Encode.decode_all r.Cogg.Codegen.resolved.Cogg.Loader_gen.code
          ~pos:r.Cogg.Codegen.resolved.Cogg.Loader_gen.entry
          ~len:(Bytes.length r.Cogg.Codegen.resolved.Cogg.Loader_gen.code)
      in
      let texts = List.map Machine.Insn.to_string insns in
      (* paper: Load R1,D.A; Load R2,D.B; Add R1,R2; Store R1,D.A *)
      check_int "five instructions (incl. return)" 5 (List.length texts);
      check_str "load A" "l     r1,100" (List.nth texts 0);
      check_str "load B" "l     r2,104" (List.nth texts 1);
      check_str "add" "ar    r1,r2" (List.nth texts 2);
      check_str "store A" "st    r1,100" (List.nth texts 3);
      check_str "return" "bcr   r15,r14" (List.nth texts 4)

let test_intro_executes () =
  let t = build_intro () in
  match Cogg.Codegen.generate_string t intro_if with
  | Error m -> Alcotest.fail m
  | Ok r -> (
      let sim = Machine.Sim.create () in
      match Machine.Objmod.load sim.Machine.Sim.mem ~at:0x10000 r.objmod with
      | Error m -> Alcotest.fail m
      | Ok entry ->
          Machine.Sim.store_w sim 100 7;
          Machine.Sim.store_w sim 104 35;
          Machine.Sim.set_reg sim 14 0;
          ignore (Machine.Sim.run sim ~entry);
          check_int "A := A + B executed" 42 (Machine.Sim.load_w sim 100))

let test_invalid_if_rejected () =
  let t = build_intro () in
  (* store with a missing operand: parser must block, not emit garbage *)
  match Cogg.Codegen.generate_string t "store word d:100 ret" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid IF accepted"

let test_unknown_symbol_rejected () =
  let t = build_intro () in
  match Cogg.Codegen.generate_string t "frobnicate ret" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown symbol accepted"

let test_value_kind_checked () =
  let t = build_intro () in
  (* d must carry an integer displacement, not a label *)
  let bad = [ Ifl.Token.op "store"; Ifl.Token.op "word"; Ifl.Token.label "d" 3 ] in
  match Cogg.Codegen.generate t bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mistyped token accepted"

(* -- loader fixpoint ------------------------------------------------------- *)

(* Widening one branch site must be able to push another site's target
   across the 4096-byte page boundary, forcing a further sizing pass:
   the classical span-dependent cascade.  Layout (short sizes, no pool):

     S1 @ 0     bc -> L1        L1 @ 4096  (just past the page)
     S2 @ 4     bc -> L2        L2 @ 4092  (just inside)
     1021 literal words of padding, L2, one more word, L1

   Pass 1 widens S1 (L1 > 4095); the pool word and long form shift L2 to
   4100, so pass 2 widens S2; pass 3 is stable — 3 iterations. *)
let test_loader_widening_cascade () =
  let open Cogg.Code_buffer in
  let buf = create () in
  add buf (Branch_site { mask = 15; lbl = User 1; idx = 1; x = 0 });
  add buf (Branch_site { mask = 15; lbl = User 2; idx = 1; x = 0 });
  for _ = 1 to 1021 do
    add buf (Word_lit 0)
  done;
  add buf (Label_def (User 2));
  add buf (Word_lit 0);
  add buf (Label_def (User 1));
  let r = Cogg.Loader_gen.resolve buf in
  check_int "both sites widened" 2 r.Cogg.Loader_gen.n_long;
  check_int "pool words" 2 r.Cogg.Loader_gen.pool_words;
  check_int "entry skips the pool" 8 r.Cogg.Loader_gen.entry;
  Alcotest.(check bool)
    "cascade took more than two sizing passes" true
    (r.Cogg.Loader_gen.iterations > 2);
  (* both labels resolved past the boundary, shifted by the 8-byte pool
     and the 4 extra bytes of each widened site before them *)
  check_int "L2 offset" (4092 + 8 + 8) (List.assoc (User 2) r.Cogg.Loader_gen.labels);
  check_int "L1 offset" (4096 + 8 + 8) (List.assoc (User 1) r.Cogg.Loader_gen.labels)

(* 1024 branch sites all forced long need 4096 pool bytes — past the
   4092-byte pool limit (the pool itself must stay inside page 0). *)
let test_loader_pool_overflow () =
  let open Cogg.Code_buffer in
  let buf = create () in
  for _ = 1 to 1024 do
    add buf (Branch_site { mask = 15; lbl = User 1; idx = 1; x = 0 })
  done;
  add buf (Label_def (User 1));
  match Cogg.Loader_gen.resolve buf with
  | _ -> Alcotest.fail "pool overflow not detected"
  | exception Cogg.Loader_gen.Resolve_error m ->
      Alcotest.(check bool)
        "mentions the literal pool" true
        (String.length m >= 21 && String.sub m 0 21 = "literal pool overflow")

(* -- typechecking of specs ------------------------------------------------- *)

let expect_build_error name spec =
  match Cogg.Cogg_build.build_string spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: bad spec accepted" name

let test_spec_type_errors () =
  expect_build_error "undeclared symbol in production"
    {|
$Non-terminals
 r = gpr
$Operators
 word
$Productions
r.1 ::= word zork.1
|};
  expect_build_error "opcode used but not declared"
    {|
$Non-terminals
 r = gpr
$Terminals
 d = displacement
$Operators
 word
$Productions
r.2 ::= word d.1
 l r.2,d.1
|};
  expect_build_error "unknown machine mnemonic"
    {|
$Non-terminals
 r = gpr
$Opcodes
 frob
$Operators
 word
$Productions
r.1 ::= word
 using r.1
|};
  expect_build_error "unbound template reference"
    {|
$Non-terminals
 r = gpr
$Terminals
 d = displacement
$Operators
 word
$Opcodes
 l
$Productions
r.2 ::= word d.1
 l r.2,d.9
|};
  expect_build_error "duplicate declaration"
    {|
$Non-terminals
 r = gpr
$Terminals
 r = displacement
|};
  expect_build_error "semantic operator misuse: valueless non-semantic constant"
    {|
$Non-terminals
 r = gpr
$Constants
 myconst
|};
  expect_build_error "too many instructions in a template"
    {|
$Non-terminals
 r = gpr
$Opcodes
 lr
$Operators
 w
$Productions
r.1 ::= w
 using r.1
 lr r.1,r.1
 lr r.1,r.1
 lr r.1,r.1
 lr r.1,r.1
 lr r.1,r.1
 lr r.1,r.1
 lr r.1,r.1
 lr r.1,r.1
 lr r.1,r.1
|}

(* -- parse table and compression ------------------------------------------- *)

let test_compression_roundtrip () =
  let t = build_intro () in
  let pt = t.Cogg.Tables.parse in
  List.iter
    (fun m ->
      let c = Cogg.Compress.compress ~method_:m pt in
      match Cogg.Compress.verify c pt with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "compression mismatch: %s" e)
    Cogg.Compress.
      [ No_compression; Defaults_only; Comb_only; Defaults_and_comb ]

let test_compression_shrinks () =
  let t = build_intro () in
  let pt = t.Cogg.Tables.parse in
  let unc = Cogg.Compress.uncompressed_bytes pt in
  let c = Cogg.Compress.compress ~method_:Cogg.Compress.Defaults_and_comb pt in
  Alcotest.(check bool)
    "compressed is smaller" true
    (c.Cogg.Compress.size_bytes < unc)

let test_slr_lalr_agree_on_intro () =
  (* for this simple grammar both constructions accept the same program *)
  match Cogg.Cogg_build.build_string ~mode:Cogg.Lookahead.Lalr intro_spec with
  | Error es ->
      Alcotest.failf "lalr build failed: %a"
        (Fmt.list Cogg.Cogg_build.pp_error)
        es
  | Ok t -> (
      match Cogg.Codegen.generate_string t intro_if with
      | Error m -> Alcotest.fail m
      (* 2 loads + iadd + store + ret user reductions, plus the three
         augmentation reductions (%stmts epsilon and two statements) *)
      | Ok r -> check_int "reductions" 8 r.Cogg.Codegen.outcome.Cogg.Driver.reductions)

let () =
  Alcotest.run "cogg-core"
    [
      ( "spec",
        [
          Alcotest.test_case "parses" `Quick test_spec_parses;
          Alcotest.test_case "tables build" `Quick test_tables_build;
          Alcotest.test_case "type errors rejected" `Quick test_spec_type_errors;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "paper intro example" `Quick test_intro_codegen;
          Alcotest.test_case "executes correctly" `Quick test_intro_executes;
          Alcotest.test_case "invalid IF rejected" `Quick test_invalid_if_rejected;
          Alcotest.test_case "unknown symbol rejected" `Quick test_unknown_symbol_rejected;
          Alcotest.test_case "value kinds checked" `Quick test_value_kind_checked;
        ] );
      ( "loader",
        [
          Alcotest.test_case "widening cascade re-iterates" `Quick
            test_loader_widening_cascade;
          Alcotest.test_case "literal pool overflow rejected" `Quick
            test_loader_pool_overflow;
        ] );
      ( "tables",
        [
          Alcotest.test_case "compression roundtrip" `Quick test_compression_roundtrip;
          Alcotest.test_case "compression shrinks" `Quick test_compression_shrinks;
          Alcotest.test_case "lalr mode works" `Quick test_slr_lalr_agree_on_intro;
        ] );
    ]
