(* The Domain worker pool: results land in input order regardless of
   scheduling, exceptions propagate to the caller and leave the pool
   reusable, and the degenerate shapes (empty input, size-1 pool) run
   inline on the calling domain. *)

let test_map_preserves_order () =
  Cogg.Pool.with_pool ~domains:4 (fun pool ->
      let n = 5000 in
      let input = Array.init n (fun i -> i) in
      let out = Cogg.Pool.map pool (fun x -> x * x) input in
      Alcotest.(check int) "length" n (Array.length out);
      Array.iteri
        (fun i y ->
          if y <> i * i then Alcotest.failf "out.(%d) = %d, want %d" i y (i * i))
        out)

let test_map_order_with_skewed_work () =
  (* uneven per-element cost shuffles completion order across domains;
     placement by input index must hide that entirely *)
  Cogg.Pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 257 (fun i -> i) in
      let out =
        Cogg.Pool.map pool
          (fun x ->
            let spin = if x mod 7 = 0 then 20_000 else 10 in
            let acc = ref x in
            for _ = 1 to spin do
              acc := (!acc * 31) land 0xffff
            done;
            (x, !acc land 0))
          input
      in
      Array.iteri
        (fun i (x, z) ->
          if x <> i || z <> 0 then Alcotest.failf "out.(%d) carries %d" i x)
        out)

exception Boom of int

let test_exception_propagates_and_pool_survives () =
  Cogg.Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 200 (fun i -> i) in
      (match
         Cogg.Pool.map pool (fun x -> if x = 37 then raise (Boom x) else x) input
       with
      | _ -> Alcotest.fail "expected Boom to reach the caller"
      | exception Boom 37 -> ());
      (* the failed region joined cleanly: the same pool keeps working *)
      let out = Cogg.Pool.map pool (fun x -> x + 1) input in
      Alcotest.(check int) "reused pool" 200 out.(199))

let test_empty_input () =
  Cogg.Pool.with_pool ~domains:4 (fun pool ->
      let out = Cogg.Pool.map pool (fun _ -> Alcotest.fail "called") [||] in
      Alcotest.(check int) "empty in, empty out" 0 (Array.length out))

let test_size_one_runs_inline () =
  Cogg.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Cogg.Pool.size pool);
      let me = (Domain.self () :> int) in
      let out =
        Cogg.Pool.map pool
          (fun () -> (Domain.self () :> int))
          (Array.make 8 ())
      in
      Array.iter
        (fun d ->
          Alcotest.(check int) "every element ran on the calling domain" me d)
        out)

let test_maybe_without_pool_is_sequential () =
  let out = Cogg.Pool.maybe None (fun x -> x * 2) [| 1; 2; 3 |] in
  Alcotest.(check (list int)) "fallback" [ 2; 4; 6 ] (Array.to_list out)

let test_run_parallel_runs_every_thunk () =
  Cogg.Pool.with_pool ~domains:4 (fun pool ->
      let hits = Array.make 16 0 in
      Cogg.Pool.run_parallel pool
        (Array.init 16 (fun i _slot -> hits.(i) <- hits.(i) + 1));
      Array.iteri
        (fun i h ->
          Alcotest.(check int) (Printf.sprintf "thunk %d ran once" i) 1 h)
        hits)

let test_worker_failed_is_descriptive () =
  (* the defensive guard for an abnormally terminated domain: the
     rendered exception must name the abandoned input index instead of
     the bare assert-false it replaced *)
  let s = Printexc.to_string (Cogg.Pool.Worker_failed 3) in
  Alcotest.(check bool) "names the failing component" true
    (Util.contains s "worker");
  Alcotest.(check bool) "names the abandoned input index" true
    (Util.contains s "input index 3")

let test_create_clamps () =
  let p = Cogg.Pool.create ~domains:0 () in
  Alcotest.(check int) "clamped up to 1" 1 (Cogg.Pool.size p);
  Cogg.Pool.shutdown p;
  (* shutdown is idempotent *)
  Cogg.Pool.shutdown p

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves input order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "order survives skewed work" `Quick
            test_map_order_with_skewed_work;
          Alcotest.test_case "exception propagates, pool survives" `Quick
            test_exception_propagates_and_pool_survives;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "size-1 pool runs inline" `Quick
            test_size_one_runs_inline;
          Alcotest.test_case "maybe None is sequential" `Quick
            test_maybe_without_pool_is_sequential;
          Alcotest.test_case "run_parallel covers every thunk" `Quick
            test_run_parallel_runs_every_thunk;
          Alcotest.test_case "Worker_failed is descriptive" `Quick
            test_worker_failed_is_descriptive;
          Alcotest.test_case "create clamps, shutdown idempotent" `Quick
            test_create_clamps;
        ] );
    ]
