(* The compile service end to end: a real serve_helper daemon process
   on a throwaway socket, driven through Serve.Client.  The properties:
   served batches are byte-identical to direct Pipeline compiles, cache
   hits are byte-identical to misses, admission control answers
   Overloaded deterministically, restarts are cold/warm equivalent, and
   concurrent clients all see the same bytes. *)

let helper_path () =
  let p =
    Filename.concat (Filename.dirname Sys.executable_name) "serve_helper.exe"
  in
  if Sys.file_exists p then p
  else Alcotest.failf "serve_helper.exe not found at %s" p

let with_daemon ?(args = []) (f : string -> 'a) : 'a =
  let sock = Filename.temp_file "pascd-test" ".sock" in
  Sys.remove sock;
  let helper = helper_path () in
  let argv = Array.of_list (helper :: "--socket" :: sock :: args) in
  let pid =
    Unix.create_process helper argv Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (match Serve.Client.connect sock with
      | Ok c ->
          ignore (Serve.Client.shutdown c);
          Serve.Client.close c
      | Error _ -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()));
      ignore (Unix.waitpid [] pid);
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f sock)

(* the daemon builds its tables before binding, so give it a while *)
let connect_retry sock =
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec go () =
    match Serve.Client.connect sock with
    | Ok c -> c
    | Error m ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "daemon did not come up: %s" m
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let with_client sock f =
  let c = connect_retry sock in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let sources () = Array.of_list (List.map snd Pipeline.Programs.all)

let jobs () =
  Array.of_list
    (List.map
       (fun (name, source) -> { Pipeline.Batch.name; source })
       Pipeline.Programs.all)

let direct_fingerprint =
  lazy
    (Pipeline.Batch.fingerprint
       (Pipeline.Batch.compile_all (Lazy.force Util.amdahl_tables) (jobs ())))

let batch c srcs =
  match Serve.Client.compile_batch c srcs with
  | Ok replies -> replies
  | Error m -> Alcotest.failf "batch failed: %s" m

let check_all_cached what expect replies =
  Array.iteri
    (fun i r ->
      match r with
      | Serve.Wire.Compiled { cached; _ } ->
          if cached <> expect then
            Alcotest.failf "%s: reply %d has cached=%b, wanted %b" what i
              cached expect
      | _ -> Alcotest.failf "%s: reply %d is not a compile result" what i)
    replies

(* (a) a served batch is byte-identical to compiling directly *)
let test_batch_matches_direct () =
  with_daemon (fun sock ->
      with_client sock (fun c ->
          let replies = batch c (sources ()) in
          check_all_cached "cold batch" false replies;
          Alcotest.(check string)
            "served fingerprint equals the direct Pipeline fingerprint"
            (Lazy.force direct_fingerprint)
            (Serve.Wire.fingerprint replies)))

(* (b) a cache hit serves exactly the bytes the miss produced — under
   Verify_always every hit recompiles and compares, so a single gate
   failure would surface in the stats *)
let test_hit_equals_miss () =
  with_daemon ~args:[ "--verify"; "always" ] (fun sock ->
      with_client sock (fun c ->
          let src = snd (List.hd Pipeline.Programs.all) in
          let miss =
            match Serve.Client.compile c src with
            | Ok r -> r
            | Error m -> Alcotest.failf "miss failed: %s" m
          in
          let hit =
            match Serve.Client.compile c src with
            | Ok r -> r
            | Error m -> Alcotest.failf "hit failed: %s" m
          in
          (match (miss, hit) with
          | ( Serve.Wire.Compiled { cached = false; outcome = o1; _ },
              Serve.Wire.Compiled { cached = true; outcome = o2; _ } ) ->
              Alcotest.(check bool)
                "hit outcome byte-identical to miss" true (o1 = o2)
          | _ -> Alcotest.fail "expected a miss then a hit");
          match Serve.Client.stats c with
          | Error m -> Alcotest.failf "stats failed: %s" m
          | Ok text ->
              Alcotest.(check bool)
                "determinism gate never failed" true
                (Util.contains text "gate_failures 0")))

(* (c) admission control: with the drain paused and a queue of two,
   exactly the first two of eight unique compiles are admitted and the
   other six are refused *)
let test_overloaded_backpressure () =
  with_daemon ~args:[ "--queue"; "2"; "--verify"; "never" ] (fun sock ->
      with_client sock (fun c ->
          (match Serve.Client.pause c 800 with
          | Ok () -> ()
          | Error m -> Alcotest.failf "pause failed: %s" m);
          let gcd = Pipeline.Programs.gcd in
          let unique =
            Array.init 8 (fun i -> Printf.sprintf "{ refusal %d }\n%s" i gcd)
          in
          let replies = batch c unique in
          Array.iteri
            (fun i r ->
              match r with
              | Serve.Wire.Compiled { cached = false; outcome = Ok _; _ }
                when i < 2 ->
                  ()
              | Serve.Wire.Overloaded _ when i >= 2 -> ()
              | Serve.Wire.Compiled _ when i < 2 ->
                  Alcotest.failf "admitted request %d did not compile" i
              | _ ->
                  Alcotest.failf
                    "request %d: wanted %s, got something else" i
                    (if i < 2 then "a compile" else "Overloaded"))
            replies;
          (* once the pause lapses and the queue drains, service resumes *)
          match Serve.Client.compile c gcd with
          | Ok (Serve.Wire.Compiled { outcome = Ok _; _ }) -> ()
          | Ok _ -> Alcotest.fail "post-pause compile was refused"
          | Error m -> Alcotest.failf "post-pause compile failed: %s" m))

(* (d) restart equivalence: a cold daemon, a warm cache, and a fresh
   daemon all produce the same fingerprint *)
let test_restart_cold_warm () =
  let first_cold, first_warm =
    with_daemon (fun sock ->
        with_client sock (fun c ->
            let cold = batch c (sources ()) in
            check_all_cached "cold" false cold;
            let warm = batch c (sources ()) in
            check_all_cached "warm" true warm;
            (Serve.Wire.fingerprint cold, Serve.Wire.fingerprint warm)))
  in
  Alcotest.(check string) "warm equals cold" first_cold first_warm;
  let second_cold =
    with_daemon (fun sock ->
        with_client sock (fun c ->
            let cold = batch c (sources ()) in
            check_all_cached "restarted cold" false cold;
            Serve.Wire.fingerprint cold))
  in
  Alcotest.(check string) "fresh daemon equals the old one" first_cold
    second_cold;
  Alcotest.(check string) "and both equal the direct pipeline"
    (Lazy.force direct_fingerprint) second_cold

(* (e) concurrent clients on their own connections all read identical
   bytes — the sharded cache and the pool never cross results *)
let test_concurrent_clients () =
  with_daemon ~args:[ "--jobs"; "2" ] (fun sock ->
      (* one pass to warm the cache so the racers mix hits and misses *)
      with_client sock (fun c -> ignore (batch c (sources ())));
      let n = 4 in
      let fingerprints = Array.make n "" in
      let racer i =
        with_client sock (fun c ->
            fingerprints.(i) <- Serve.Wire.fingerprint (batch c (sources ())))
      in
      let threads = Array.init n (fun i -> Thread.create racer i) in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i fp ->
          Alcotest.(check string)
            (Printf.sprintf "client %d matches the direct pipeline" i)
            (Lazy.force direct_fingerprint)
            fp)
        fingerprints)

let () =
  Alcotest.run "serve"
    [
      ( "service",
        [
          Alcotest.test_case "served batch matches direct compile" `Quick
            test_batch_matches_direct;
          Alcotest.test_case "cache hit equals miss byte-for-byte" `Quick
            test_hit_equals_miss;
          Alcotest.test_case "overload answers Overloaded" `Quick
            test_overloaded_backpressure;
          Alcotest.test_case "restart is cold/warm equivalent" `Quick
            test_restart_cold_warm;
          Alcotest.test_case "concurrent clients agree" `Quick
            test_concurrent_clients;
        ] );
    ]
