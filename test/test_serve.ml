(* The compile service end to end: a real serve_helper daemon process
   on a throwaway socket, driven through Serve.Client.  The properties:
   served batches are byte-identical to direct Pipeline compiles, cache
   hits are byte-identical to misses, admission control answers
   Overloaded deterministically, restarts are cold/warm equivalent, and
   concurrent clients all see the same bytes. *)

let helper_path () =
  let p =
    Filename.concat (Filename.dirname Sys.executable_name) "serve_helper.exe"
  in
  if Sys.file_exists p then p
  else Alcotest.failf "serve_helper.exe not found at %s" p

let with_daemon ?(args = []) (f : string -> 'a) : 'a =
  let sock = Filename.temp_file "pascd-test" ".sock" in
  Sys.remove sock;
  let helper = helper_path () in
  let argv = Array.of_list (helper :: "--socket" :: sock :: args) in
  let pid =
    Unix.create_process helper argv Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (match Serve.Client.connect sock with
      | Ok c ->
          ignore (Serve.Client.shutdown c);
          Serve.Client.close c
      | Error _ -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()));
      ignore (Unix.waitpid [] pid);
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f sock)

(* the daemon builds its tables before binding, so give it a while *)
let connect_retry sock =
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec go () =
    match Serve.Client.connect sock with
    | Ok c -> c
    | Error m ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "daemon did not come up: %s" m
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let with_client sock f =
  let c = connect_retry sock in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let sources () = Array.of_list (List.map snd Pipeline.Programs.all)

let jobs () =
  Array.of_list
    (List.map
       (fun (name, source) -> { Pipeline.Batch.name; source })
       Pipeline.Programs.all)

let direct_fingerprint =
  lazy
    (Pipeline.Batch.fingerprint
       (Pipeline.Batch.compile_all (Lazy.force Util.amdahl_tables) (jobs ())))

let batch c srcs =
  match Serve.Client.compile_batch c srcs with
  | Ok replies -> replies
  | Error m -> Alcotest.failf "batch failed: %s" m

let check_all_cached what expect replies =
  Array.iteri
    (fun i r ->
      match r with
      | Serve.Wire.Compiled { cached; _ } ->
          if cached <> expect then
            Alcotest.failf "%s: reply %d has cached=%b, wanted %b" what i
              cached expect
      | _ -> Alcotest.failf "%s: reply %d is not a compile result" what i)
    replies

(* (a) a served batch is byte-identical to compiling directly *)
let test_batch_matches_direct () =
  with_daemon (fun sock ->
      with_client sock (fun c ->
          let replies = batch c (sources ()) in
          check_all_cached "cold batch" false replies;
          Alcotest.(check string)
            "served fingerprint equals the direct Pipeline fingerprint"
            (Lazy.force direct_fingerprint)
            (Serve.Wire.fingerprint replies)))

(* (b) a cache hit serves exactly the bytes the miss produced — under
   Verify_always every hit recompiles and compares, so a single gate
   failure would surface in the stats *)
let test_hit_equals_miss () =
  with_daemon ~args:[ "--verify"; "always" ] (fun sock ->
      with_client sock (fun c ->
          let src = snd (List.hd Pipeline.Programs.all) in
          let miss =
            match Serve.Client.compile c src with
            | Ok r -> r
            | Error m -> Alcotest.failf "miss failed: %s" m
          in
          let hit =
            match Serve.Client.compile c src with
            | Ok r -> r
            | Error m -> Alcotest.failf "hit failed: %s" m
          in
          (match (miss, hit) with
          | ( Serve.Wire.Compiled { cached = false; outcome = o1; _ },
              Serve.Wire.Compiled { cached = true; outcome = o2; _ } ) ->
              Alcotest.(check bool)
                "hit outcome byte-identical to miss" true (o1 = o2)
          | _ -> Alcotest.fail "expected a miss then a hit");
          match Serve.Client.stats c with
          | Error m -> Alcotest.failf "stats failed: %s" m
          | Ok text ->
              Alcotest.(check bool)
                "determinism gate never failed" true
                (Util.contains text "gate_failures 0")))

(* (c) admission control: with the drain paused and a queue of two,
   exactly the first two of eight unique compiles are admitted and the
   other six are refused *)
let test_overloaded_backpressure () =
  with_daemon ~args:[ "--queue"; "2"; "--verify"; "never" ] (fun sock ->
      with_client sock (fun c ->
          (match Serve.Client.pause c 800 with
          | Ok () -> ()
          | Error m -> Alcotest.failf "pause failed: %s" m);
          let gcd = Pipeline.Programs.gcd in
          let unique =
            Array.init 8 (fun i -> Printf.sprintf "{ refusal %d }\n%s" i gcd)
          in
          let replies = batch c unique in
          Array.iteri
            (fun i r ->
              match r with
              | Serve.Wire.Compiled { cached = false; outcome = Ok _; _ }
                when i < 2 ->
                  ()
              | Serve.Wire.Overloaded _ when i >= 2 -> ()
              | Serve.Wire.Compiled _ when i < 2 ->
                  Alcotest.failf "admitted request %d did not compile" i
              | _ ->
                  Alcotest.failf
                    "request %d: wanted %s, got something else" i
                    (if i < 2 then "a compile" else "Overloaded"))
            replies;
          (* once the pause lapses and the queue drains, service resumes *)
          match Serve.Client.compile c gcd with
          | Ok (Serve.Wire.Compiled { outcome = Ok _; _ }) -> ()
          | Ok _ -> Alcotest.fail "post-pause compile was refused"
          | Error m -> Alcotest.failf "post-pause compile failed: %s" m))

(* (c2) the backoff hint: with the drain paused and the queue full,
   every rejection carries a positive retry_after_ms (pause remainder
   plus queue depth) *)
let test_retry_after_hint () =
  with_daemon ~args:[ "--queue"; "1"; "--verify"; "never" ] (fun sock ->
      with_client sock (fun c ->
          (match Serve.Client.pause c 600 with
          | Ok () -> ()
          | Error m -> Alcotest.failf "pause failed: %s" m);
          let gcd = Pipeline.Programs.gcd in
          let unique =
            Array.init 3 (fun i -> Printf.sprintf "{ hint %d }\n%s" i gcd)
          in
          let replies = batch c unique in
          Array.iteri
            (fun i r ->
              match r with
              | Serve.Wire.Compiled { outcome = Ok _; _ } when i = 0 -> ()
              | Serve.Wire.Overloaded { retry_after_ms; _ } when i > 0 ->
                  if retry_after_ms <= 0 then
                    Alcotest.failf "rejection %d: hint %d is not positive" i
                      retry_after_ms
              | _ -> Alcotest.failf "reply %d has the wrong shape" i)
            replies))

(* (c3) honoring the hint: a pause-driven burst that overflows the
   queue becomes an all-Ok batch under [~retry:true] — the rejected
   slots are resubmitted once, after the daemon's suggested backoff,
   by which time the pause has lapsed and the queue has drained *)
let test_retry_recovers () =
  with_daemon ~args:[ "--queue"; "4"; "--verify"; "never" ] (fun sock ->
      with_client sock (fun c ->
          (match Serve.Client.pause c 400 with
          | Ok () -> ()
          | Error m -> Alcotest.failf "pause failed: %s" m);
          let gcd = Pipeline.Programs.gcd in
          let unique =
            Array.init 6 (fun i -> Printf.sprintf "{ retry %d }\n%s" i gcd)
          in
          match Serve.Client.compile_batch c ~retry:true unique with
          | Error m -> Alcotest.failf "retrying batch failed: %s" m
          | Ok replies ->
              Array.iteri
                (fun i r ->
                  match r with
                  | Serve.Wire.Compiled { cached = false; outcome = Ok _; _ }
                    ->
                      ()
                  | Serve.Wire.Overloaded _ ->
                      Alcotest.failf
                        "reply %d still Overloaded after the bounded retry" i
                  | _ -> Alcotest.failf "reply %d has the wrong shape" i)
                replies))

(* (d) restart equivalence: a cold daemon, a warm cache, and a fresh
   daemon all produce the same fingerprint *)
let test_restart_cold_warm () =
  let first_cold, first_warm =
    with_daemon (fun sock ->
        with_client sock (fun c ->
            let cold = batch c (sources ()) in
            check_all_cached "cold" false cold;
            let warm = batch c (sources ()) in
            check_all_cached "warm" true warm;
            (Serve.Wire.fingerprint cold, Serve.Wire.fingerprint warm)))
  in
  Alcotest.(check string) "warm equals cold" first_cold first_warm;
  let second_cold =
    with_daemon (fun sock ->
        with_client sock (fun c ->
            let cold = batch c (sources ()) in
            check_all_cached "restarted cold" false cold;
            Serve.Wire.fingerprint cold))
  in
  Alcotest.(check string) "fresh daemon equals the old one" first_cold
    second_cold;
  Alcotest.(check string) "and both equal the direct pipeline"
    (Lazy.force direct_fingerprint) second_cold

(* (e) concurrent clients on their own connections all read identical
   bytes — the sharded cache and the pool never cross results *)
let test_concurrent_clients () =
  with_daemon ~args:[ "--jobs"; "2" ] (fun sock ->
      (* one pass to warm the cache so the racers mix hits and misses *)
      with_client sock (fun c -> ignore (batch c (sources ())));
      let n = 4 in
      let fingerprints = Array.make n "" in
      let racer i =
        with_client sock (fun c ->
            fingerprints.(i) <- Serve.Wire.fingerprint (batch c (sources ())))
      in
      let threads = Array.init n (fun i -> Thread.create racer i) in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i fp ->
          Alcotest.(check string)
            (Printf.sprintf "client %d matches the direct pipeline" i)
            (Lazy.force direct_fingerprint)
            fp)
        fingerprints)

(* (f) send-side frame cap: an oversized payload is refused before a
   single byte goes out, so the stream stays clean for a recovery
   reply.  Pre-fix, write_frame would happily emit a frame the peer's
   length check must drop the connection over. *)
let test_write_frame_cap () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let big = String.make (Serve.Wire.max_frame + 1) 'x' in
      (match Serve.Wire.write_frame a big with
      | () -> Alcotest.fail "oversized frame was written"
      | exception Serve.Wire.Frame_too_large n ->
          Alcotest.(check int) "reported size" (Serve.Wire.max_frame + 1) n);
      (* nothing leaked: the peer has nothing to read *)
      Unix.set_nonblock b;
      match Unix.read b (Bytes.create 1) 0 1 with
      | _ -> Alcotest.fail "bytes were written before the size check"
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ())

(* (g) a reply whose encoding exceeds the cap is replaced by a
   structured error carrying the same id, and the substitute itself
   fits the wire *)
let test_oversized_substitute () =
  let huge = String.make (Serve.Wire.max_frame + 64) 'L' in
  let r =
    Serve.Wire.Compiled { id = 7; cached = false; outcome = Ok (huge, "") }
  in
  let size = String.length (Serve.Wire.encode_reply r) in
  Alcotest.(check bool)
    "the synthetic reply really is oversized" true
    (size > Serve.Wire.max_frame);
  match Serve.Wire.oversized_substitute r ~size with
  | Serve.Wire.Compiled { id = 7; cached = false; outcome = Error m } as sub ->
      Alcotest.(check bool) "error names the cap" true
        (Util.contains m "frame cap");
      Alcotest.(check bool) "substitute fits the wire" true
        (String.length (Serve.Wire.encode_reply sub) <= Serve.Wire.max_frame)
  | _ -> Alcotest.fail "substitute lost the reply's id or shape"

(* (h) Hello names the serving target, the stats report it too, and a
   daemon serving the second backend really compiles for it *)
let test_hello_target () =
  with_daemon (fun sock ->
      with_client sock (fun c ->
          match Serve.Client.hello c with
          | Ok t -> Alcotest.(check string) "default daemon" "amdahl470" t
          | Error m -> Alcotest.failf "hello failed: %s" m));
  with_daemon ~args:[ "--target"; "risc32" ] (fun sock ->
      with_client sock (fun c ->
          (match Serve.Client.hello c with
          | Ok t -> Alcotest.(check string) "risc32 daemon" "risc32" t
          | Error m -> Alcotest.failf "hello failed: %s" m);
          (match Serve.Client.stats c with
          | Ok text ->
              Alcotest.(check bool) "stats name the target" true
                (Util.contains text "target risc32")
          | Error m -> Alcotest.failf "stats failed: %s" m);
          match Serve.Client.compile c Pipeline.Programs.gcd with
          | Ok (Serve.Wire.Compiled { outcome = Ok _; _ }) -> ()
          | Ok _ -> Alcotest.fail "risc32 daemon refused a known program"
          | Error m -> Alcotest.failf "compile failed: %s" m))

(* (i) EINTR immunity: a 1ms interval timer signal-bombs the client for
   the whole of a large batch; every read/write/select in the framing
   path must retry rather than tear a frame.  Pre-fix, Unix.write in
   write_frame (or the batch's select/read/single_write) raises
   Unix_error EINTR and the batch fails. *)
let test_eintr_signal_bomb () =
  with_daemon ~args:[ "--jobs"; "2" ] (fun sock ->
      with_client sock (fun c ->
          let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
          let tick = { Unix.it_interval = 0.001; it_value = 0.001 } in
          ignore (Unix.setitimer Unix.ITIMER_REAL tick);
          Fun.protect
            ~finally:(fun () ->
              ignore
                (Unix.setitimer Unix.ITIMER_REAL
                   { Unix.it_interval = 0.; it_value = 0. });
              Sys.set_signal Sys.sigalrm old)
            (fun () ->
              (* a large all-miss batch first: plenty of frames in both
                 directions while the timer fires *)
              let gcd = Pipeline.Programs.gcd in
              let unique =
                Array.init 48 (fun i ->
                    Printf.sprintf "{ eintr %d }\n%s" i gcd)
              in
              Array.iteri
                (fun i r ->
                  match r with
                  | Serve.Wire.Compiled { outcome = Ok _; _ } -> ()
                  | _ -> Alcotest.failf "bombed batch: reply %d not Ok" i)
                (batch c unique);
              (* and the standing corpus must still digest identically *)
              Alcotest.(check string)
                "signal-bombed batch matches the direct pipeline"
                (Lazy.force direct_fingerprint)
                (Serve.Wire.fingerprint (batch c (sources ()))))))

let () =
  Alcotest.run "serve"
    [
      ( "service",
        [
          Alcotest.test_case "served batch matches direct compile" `Quick
            test_batch_matches_direct;
          Alcotest.test_case "cache hit equals miss byte-for-byte" `Quick
            test_hit_equals_miss;
          Alcotest.test_case "overload answers Overloaded" `Quick
            test_overloaded_backpressure;
          Alcotest.test_case "rejections carry a backoff hint" `Quick
            test_retry_after_hint;
          Alcotest.test_case "bounded retry honors the hint" `Quick
            test_retry_recovers;
          Alcotest.test_case "restart is cold/warm equivalent" `Quick
            test_restart_cold_warm;
          Alcotest.test_case "concurrent clients agree" `Quick
            test_concurrent_clients;
        ] );
      ( "wire robustness",
        [
          Alcotest.test_case "send-side frame cap refuses cleanly" `Quick
            test_write_frame_cap;
          Alcotest.test_case "oversized reply becomes a structured error"
            `Quick test_oversized_substitute;
          Alcotest.test_case "hello names the serving target" `Quick
            test_hello_target;
          Alcotest.test_case "EINTR bombing never tears a frame" `Quick
            test_eintr_signal_bomb;
        ] );
    ]
