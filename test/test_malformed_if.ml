(* Error reporting on malformed IF.

   Both dispatch paths must reject exactly the same inputs — comb
   dispatch may delay detection behind default reductions but never
   accepts what flat rejects — and the reported [position] must index
   the ORIGINAL token stream (the caller's input), identically under
   Flat and Comb, no matter how many synthetic reduction-prefixed
   tokens were shifted before the parse blocked. *)

let amdahl () = Lazy.force Util.amdahl_tables

(* The artificial machine of paper section 1 (as in
   test_compress_driver.ml): small enough to pin error positions
   exactly. *)
let intro_spec =
  {|
* The artificial machine of paper section 1.
$Non-terminals
 r = gpr
$Terminals
 d = displacement
$Operators
 word, iadd, store, ret
$Opcodes
 l, ar, st, bcr
$Constants
 fifteen = 15
$Productions
r.2 ::= word d.1
 using r.2
 l     r.2,d.1
r.1 ::= iadd r.1 r.2
 modifies r.1
 ar    r.1,r.2
lambda ::= store word d.1 r.2
 st    r.2,d.1
lambda ::= ret
 need r.14
 bcr   fifteen,r.14
|}

let intro =
  lazy
    (match Cogg.Cogg_build.build_string intro_spec with
    | Ok t -> t
    | Error es ->
        Alcotest.failf "intro spec failed to build: %a"
          (Fmt.list Cogg.Cogg_build.pp_error)
          es)

let tokens_of if_text =
  match Ifl.Reader.tokens_of_string if_text with
  | Ok ts -> ts
  | Error m -> Alcotest.failf "bad IF syntax %S: %s" if_text m

(* structured generate: [Some e] on a parse error, [None] on success *)
let gen_err dispatch t if_text =
  match Cogg.Codegen.generate ~dispatch t (tokens_of if_text) with
  | Ok _ -> None
  | Error (Cogg.Codegen.Parse_error e) -> Some e
  | Error e ->
      Alcotest.failf "%S: non-parse failure: %a" if_text Cogg.Codegen.pp_error
        e

let expect_err dispatch t if_text =
  match gen_err dispatch t if_text with
  | Some e -> e
  | None -> Alcotest.failf "%S unexpectedly accepted" if_text

let malformed_amdahl =
  [
    (* symbols outside the machine grammar *)
    "store word dsp:0 ret";
    (* truncated statement: assign needs two r operands *)
    "assign fullword dsp:0 r:1";
    (* an expression where a statement is required *)
    "fullword dsp:0 r:13 procedure_exit";
    (* bare operand list, no operator *)
    "dsp:0 dsp:4";
  ]

let test_verdicts_agree_amdahl () =
  let t = amdahl () in
  List.iter
    (fun if_text ->
      match (gen_err Cogg.Driver.Flat t if_text, gen_err Cogg.Driver.Comb t if_text) with
      | Some _, Some _ -> ()
      | None, None -> Alcotest.failf "%S unexpectedly accepted" if_text
      | None, Some _ ->
          Alcotest.failf "%S: flat accepted what comb rejected" if_text
      | Some _, None ->
          Alcotest.failf "%S: comb accepted what flat rejected" if_text)
    malformed_amdahl

let test_positions_agree_amdahl () =
  let t = amdahl () in
  List.iter
    (fun if_text ->
      let flat = expect_err Cogg.Driver.Flat t if_text in
      let comb = expect_err Cogg.Driver.Comb t if_text in
      Alcotest.(check int)
        (if_text ^ ": flat and comb report the same original-stream index")
        flat.Cogg.Driver.position comb.Cogg.Driver.position)
    malformed_amdahl

let test_speculation_bounded_below_amdahl () =
  (* comb's speculative run can only extend past flat's stopping point,
     never fall short of it *)
  let t = amdahl () in
  List.iter
    (fun if_text ->
      let flat = expect_err Cogg.Driver.Flat t if_text in
      let comb = expect_err Cogg.Driver.Comb t if_text in
      Alcotest.(check bool)
        (if_text ^ ": comb speculates at least as far as flat reduces")
        true
        (comb.Cogg.Driver.bogus_reductions >= flat.Cogg.Driver.bogus_reductions))
    malformed_amdahl

(* Pinned positions on the intro machine.  [position] indexes the
   caller's token list (store=0, word=1, d=2, ...); before this PR the
   driver counted every shift — synthetic reduction-prefixed tokens
   included — so the reported index drifted into the mutated stream and
   Flat/Comb disagreed whenever default reductions delayed detection. *)
let intro_cases =
  [
    (* an expression where a statement is required: blocked immediately *)
    ("word d:0", 0);
    (* ret takes no operand: blocked on the displacement *)
    ("ret d:0", 1);
    (* store requires a word address, not an operator *)
    ("store iadd ret", 1);
    (* iadd missing both operands: blocked on ret *)
    ("store word d:0 iadd ret", 4);
    (* stray displacement after a complete statement *)
    ("store word d:0 word d:4 d:8 ret", 5);
    (* infix-looking operator in a prefix language *)
    ("store word d:0 word d:4 iadd ret", 5);
  ]

let test_position_indexes_original_stream () =
  let t = Lazy.force intro in
  List.iter
    (fun (if_text, expected) ->
      let flat = expect_err Cogg.Driver.Flat t if_text in
      let comb = expect_err Cogg.Driver.Comb t if_text in
      Alcotest.(check int)
        (if_text ^ ": flat position") expected flat.Cogg.Driver.position;
      Alcotest.(check int)
        (if_text ^ ": comb position") expected comb.Cogg.Driver.position;
      Alcotest.(check bool)
        (if_text ^ ": comb speculation bounded below by flat") true
        (comb.Cogg.Driver.bogus_reductions >= flat.Cogg.Driver.bogus_reductions))
    intro_cases

let test_comb_counts_speculative_reductions () =
  (* default reductions stand in for error entries: on these inputs comb
     provably ran past flat's stopping point, and the error must say so *)
  let t = Lazy.force intro in
  List.iter
    (fun if_text ->
      let flat = expect_err Cogg.Driver.Flat t if_text in
      let comb = expect_err Cogg.Driver.Comb t if_text in
      Alcotest.(check int) (if_text ^ ": flat stops without speculating") 0
        flat.Cogg.Driver.bogus_reductions;
      Alcotest.(check bool)
        (if_text ^ ": comb records its speculative run")
        true
        (comb.Cogg.Driver.bogus_reductions > 0))
    [ "word d:0"; "ret d:0"; "store word d:0 word d:4 d:8 ret" ]

let test_pp_error_reports_position_and_speculation () =
  let t = Lazy.force intro in
  let e = expect_err Cogg.Driver.Comb t "store word d:0 word d:4 d:8 ret" in
  let msg = Fmt.str "%a" Cogg.Driver.pp_error e in
  Alcotest.(check bool) "points at the original token index" true
    (Util.contains msg "blocked at input token 5");
  Alcotest.(check bool) "reports the speculative run" true
    (Util.contains msg "speculative reduction")

(* Fuzzer-found crashes (PR 5), minimized by the shrinker.  A register
   payload larger than the machine's banks used to escape the driver's
   value discipline and blow up the allocator's bank arrays
   ([Invalid_argument]) at reduction time.  Both shapes must now be
   structured parse errors, at the same position under both dispatch
   paths. *)
let fuzz_found_register_range =
  [
    (* seed 7 case 665: register binding beyond the general bank *)
    "assign fullword dsp:2324 r:r255";
    (* seed 7 case 137: register payload smuggled onto a class-less
       symbol — still released into the general bank at reduction *)
    "branch_op lbl:L1 cond:m7 icompare fullword:r17 dsp:1936 r:r13";
    (* boundary probes around the bank sizes *)
    "assign fullword dsp:0 r:r16 fullword dsp:4 r:r13";
    "assign fullword dsp:0 r:r-1 fullword dsp:4 r:r13";
  ]

let test_register_range_is_structured () =
  let t = amdahl () in
  List.iter
    (fun if_text ->
      let flat = expect_err Cogg.Driver.Flat t if_text in
      let comb = expect_err Cogg.Driver.Comb t if_text in
      Alcotest.(check int)
        (if_text ^ ": positions agree")
        flat.Cogg.Driver.position comb.Cogg.Driver.position)
    fuzz_found_register_range

let test_register_range_message () =
  let t = amdahl () in
  let e = expect_err Cogg.Driver.Comb t "assign fullword dsp:0 r:r255" in
  Alcotest.(check bool) "names the out-of-range binding" true
    (Util.contains
       (Fmt.str "%a" Cogg.Driver.pp_error e)
       "register binding out of machine range")

let test_valid_register_boundaries_still_parse () =
  (* the discipline must not over-reject: r15 is a real register *)
  let t = amdahl () in
  match
    Cogg.Codegen.generate t (tokens_of "assign fullword dsp:0 r:r15")
  with
  | Ok _ | Error (Cogg.Codegen.Parse_error _) -> ()
  | Error e ->
      Alcotest.failf "r15 tripped a non-parse failure: %a" Cogg.Codegen.pp_error
        e

let () =
  Alcotest.run "malformed_if"
    [
      ( "amdahl",
        [
          Alcotest.test_case "verdicts agree" `Quick test_verdicts_agree_amdahl;
          Alcotest.test_case "positions agree" `Quick
            test_positions_agree_amdahl;
          Alcotest.test_case "speculation bounded below" `Quick
            test_speculation_bounded_below_amdahl;
        ] );
      ( "positions",
        [
          Alcotest.test_case "index the original stream" `Quick
            test_position_indexes_original_stream;
          Alcotest.test_case "comb counts speculation" `Quick
            test_comb_counts_speculative_reductions;
          Alcotest.test_case "pp_error renders both" `Quick
            test_pp_error_reports_position_and_speculation;
        ] );
      ( "fuzz-found",
        [
          Alcotest.test_case "register range is a structured error" `Quick
            test_register_range_is_structured;
          Alcotest.test_case "register range message" `Quick
            test_register_range_message;
          Alcotest.test_case "valid boundary registers still parse" `Quick
            test_valid_register_boundaries_still_parse;
        ] );
    ]
