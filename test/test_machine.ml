(* Unit and property tests for the IBM 370 substrate: instruction
   encoding/decoding, the simulator's semantics, and the object-module
   format. *)

open Machine

let check_int = Alcotest.(check int)

(* -- helpers -------------------------------------------------------------- *)

(* Assemble a sequence, run it from address [at] until halt (branch to 0),
   return the simulator. *)
let run_insns ?(setup = fun _ -> ()) (insns : Insn.t list) : Sim.t =
  let code = Encode.encode_all insns in
  let sim = Sim.create ~mem_size:(1 lsl 18) () in
  Bytes.blit code 0 sim.Sim.mem 0x1000 (Bytes.length code);
  setup sim;
  (* r14 = 0 so "bcr 15,14" halts *)
  Sim.set_reg sim 14 0;
  ignore (Sim.run sim ~entry:0x1000);
  sim

let halt : Insn.t = Rr { op = "bcr"; r1 = 15; r2 = 14 }

(* -- encode/decode -------------------------------------------------------- *)

let sample_insns : Insn.t list =
  [
    Rr { op = "lr"; r1 = 1; r2 = 2 };
    Rr { op = "ar"; r1 = 15; r2 = 0 };
    Rx { op = "l"; r1 = 3; d2 = 132; x2 = 0; b2 = 12 };
    Rx { op = "st"; r1 = 7; d2 = 4095; x2 = 5; b2 = 13 };
    Rx { op = "bc"; r1 = 8; d2 = 100; x2 = 0; b2 = 12 };
    Rs { op = "sla"; r1 = 1; r3 = 0; d2 = 2; b2 = 0 };
    Rs { op = "stm"; r1 = 14; r3 = 13; d2 = 8; b2 = 13 };
    Si { op = "mvi"; d1 = 100; b1 = 13; i2 = 255 };
    Si { op = "tm"; d1 = 0; b1 = 1; i2 = 0x80 };
    Ss { op = "mvc"; l = 4; d1 = 144; b1 = 13; d2 = 168; b2 = 13 };
  ]

let test_roundtrip () =
  List.iter
    (fun i ->
      let b = Encode.encode i in
      let i', sz = Encode.decode b 0 in
      check_int "size" (Bytes.length b) sz;
      Alcotest.(check string)
        "roundtrip" (Insn.to_string i) (Insn.to_string i'))
    sample_insns

let test_sizes () =
  check_int "rr" 2 (Insn.size (List.nth sample_insns 0));
  check_int "rx" 4 (Insn.size (List.nth sample_insns 2));
  check_int "ss" 6 (Insn.size (List.nth sample_insns 9))

let test_encode_all_decode_all () =
  let buf = Encode.encode_all sample_insns in
  let back = Encode.decode_all buf ~pos:0 ~len:(Bytes.length buf) in
  check_int "count" (List.length sample_insns) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "insn" (Insn.to_string a) (Insn.to_string b))
    sample_insns back

let test_bad_encodings () =
  (match Encode.encode (Rx { op = "l"; r1 = 1; d2 = 4096; x2 = 0; b2 = 0 }) with
  | exception Encode.Encode_error _ -> ()
  | _ -> Alcotest.fail "oversized displacement accepted");
  match Encode.encode (Rr { op = "l"; r1 = 1; r2 = 2 }) with
  | exception Encode.Encode_error _ -> ()
  | _ -> Alcotest.fail "format mismatch not detected"

(* Property: random well-formed instructions survive encode/decode. *)
let gen_insn =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let disp = int_bound 4095 in
  let pick fmt =
    let mnems =
      List.filter_map
        (fun (m, (_, f)) -> if f = fmt then Some m else None)
        Insn.opcode_table
    in
    oneofl mnems
  in
  oneof
    [
      (let* op = pick Insn.RR and* r1 = reg and* r2 = reg in
       return (Insn.Rr { op; r1; r2 }));
      (let* op = pick Insn.RX and* r1 = reg and* d2 = disp
       and* x2 = reg and* b2 = reg in
       return (Insn.Rx { op; r1; d2; x2; b2 }));
      (let* op = pick Insn.RS and* r1 = reg and* r3 = reg and* d2 = disp
       and* b2 = reg in
       return (Insn.Rs { op; r1; r3; d2; b2 }));
      (let* op = pick Insn.SI and* d1 = disp and* b1 = reg
       and* i2 = int_bound 255 in
       return (Insn.Si { op; d1; b1; i2 }));
      (let* op = pick Insn.SS and* l = int_range 1 256 and* d1 = disp
       and* b1 = reg and* d2 = disp and* b2 = reg in
       return (Insn.Ss { op; l; d1; b1; d2; b2 }));
    ]

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode roundtrip"
    (QCheck.make gen_insn ~print:Insn.to_string)
    (fun i ->
      let b = Encode.encode i in
      let i', sz = Encode.decode b 0 in
      sz = Bytes.length b && Insn.to_string i = Insn.to_string i')

(* -- simulator semantics --------------------------------------------------- *)

let test_load_add_store () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        Sim.store_w s 0x2064 7;
        Sim.store_w s 0x2068 35)
      [
        Rx { op = "l"; r1 = 1; d2 = 0x64; x2 = 0; b2 = 13 };
        Rx { op = "a"; r1 = 1; d2 = 0x68; x2 = 0; b2 = 13 };
        Rx { op = "st"; r1 = 1; d2 = 0x6C; x2 = 0; b2 = 13 };
        halt;
      ]
  in
  check_int "sum stored" 42 (Sim.load_w sim 0x206C)

let test_halfword_and_byte () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        Sim.store_h s 0x2010 (-5);
        Sim.store_u8 s 0x2014 200)
      [
        Rx { op = "lh"; r1 = 2; d2 = 0x10; x2 = 0; b2 = 13 };
        Rr { op = "xr"; r1 = 3; r2 = 3 };
        Rx { op = "ic"; r1 = 3; d2 = 0x14; x2 = 0; b2 = 13 };
        Rr { op = "ar"; r1 = 2; r2 = 3 };
        halt;
      ]
  in
  check_int "lh sign extends; ic inserts" 195 (Sim.reg sim 2)

let test_mult_div_pair () =
  (* product in odd register; quotient odd, remainder even *)
  let sim =
    run_insns
      ~setup:(fun s -> Sim.set_reg s 5 17; Sim.set_reg s 3 17)
      [ Rr { op = "mr"; r1 = 4; r2 = 3 }; halt ]
  in
  check_int "product low (odd)" 289 (Sim.reg sim 5);
  check_int "product high (even)" 0 (Sim.reg sim 4);
  let sim2 =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 6 (-100);
        Sim.set_reg s 3 7)
      [
        Rs { op = "srda"; r1 = 6; r3 = 0; d2 = 32; b2 = 0 };
        Rr { op = "dr"; r1 = 6; r2 = 3 };
        halt;
      ]
  in
  check_int "quotient (odd)" (-14) (Sim.reg sim2 7);
  check_int "remainder (even)" (-2) (Sim.reg sim2 6)

let test_srda_sign_extension () =
  let sim =
    run_insns
      ~setup:(fun s -> Sim.set_reg s 2 (-7))
      [ Rs { op = "srda"; r1 = 2; r3 = 0; d2 = 32; b2 = 0 }; halt ]
  in
  check_int "even = sign" (-1) (Sim.reg sim 2);
  check_int "odd = value" (-7) (Sim.reg sim 3)

let test_compare_and_branch () =
  (* if r1 < r2 then r3 := 1 else r3 := 2 *)
  let prog lt =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 1 (if lt then 3 else 9);
        Sim.set_reg s 2 5;
        Sim.set_reg s 12 0x1000)
      [
        Rr { op = "cr"; r1 = 1; r2 = 2 } (* +0, size 2 *);
        Rx { op = "bc"; r1 = 4; d2 = 0x10; x2 = 0; b2 = 12 } (* +2 *);
        Rx { op = "la"; r1 = 3; d2 = 2; x2 = 0; b2 = 0 } (* +6 *);
        halt (* +10 *);
        Rr { op = "lr"; r1 = 0; r2 = 0 } (* +12 pad *);
        Rr { op = "lr"; r1 = 0; r2 = 0 } (* +14 pad *);
        Rx { op = "la"; r1 = 3; d2 = 1; x2 = 0; b2 = 0 } (* +16 = 0x10 *);
        halt;
      ]
  in
  check_int "taken" 1 (Sim.reg (prog true) 3);
  check_int "fallthrough" 2 (Sim.reg (prog false) 3)

let test_bctr_decrement () =
  let sim =
    run_insns
      ~setup:(fun s -> Sim.set_reg s 3 10)
      [ Rr { op = "bctr"; r1 = 3; r2 = 0 }; halt ]
  in
  check_int "bctr r3,r0 decrements" 9 (Sim.reg sim 3)

let test_tm_condition () =
  let run_with byte =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        Sim.store_u8 s 0x2004 byte)
      [ Si { op = "tm"; d1 = 4; b1 = 13; i2 = 1 }; halt ]
  in
  check_int "bit clear -> cc 0" 0 (run_with 0).Sim.cc;
  check_int "bit set -> cc 3" 3 (run_with 1).Sim.cc

let test_mvc () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        Sim.store_w s 0x2020 0xDEAD)
      [ Ss { op = "mvc"; l = 4; d1 = 0x30; b1 = 13; d2 = 0x20; b2 = 13 }; halt ]
  in
  check_int "copied word" 0xDEAD (Sim.load_w sim 0x2030)

let test_stm_lm_wraparound () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        for i = 0 to 15 do
          if i <> 13 && i <> 14 then Sim.set_reg s i (100 + i)
        done)
      [
        Rs { op = "stm"; r1 = 15; r3 = 12; d2 = 8; b2 = 13 };
        (* clobber, then restore *)
        Rx { op = "la"; r1 = 5; d2 = 0; x2 = 0; b2 = 0 };
        Rs { op = "lm"; r1 = 15; r3 = 12; d2 = 8; b2 = 13 };
        halt;
      ]
  in
  check_int "r5 restored" 105 (Sim.reg sim 5);
  check_int "r15 restored" 115 (Sim.reg sim 15)

let test_shifts () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 1 3;
        Sim.set_reg s 2 (-64))
      [
        Rs { op = "sla"; r1 = 1; r3 = 0; d2 = 2; b2 = 0 };
        Rs { op = "sra"; r1 = 2; r3 = 0; d2 = 3; b2 = 0 };
        halt;
      ]
  in
  check_int "sla" 12 (Sim.reg sim 1);
  check_int "sra" (-8) (Sim.reg sim 2)

let test_overflow_cc () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 1 0x7FFFFFFF;
        Sim.set_reg s 2 1)
      [ Rr { op = "ar"; r1 = 1; r2 = 2 }; halt ]
  in
  check_int "overflow cc=3" 3 sim.Sim.cc

let test_mvcl () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 2 0x3000 (* dst *);
        Sim.set_reg s 3 8 (* dst len *);
        Sim.set_reg s 4 0x2000 (* src *);
        Sim.set_reg s 5 8 (* src len *);
        Sim.store_w s 0x2000 0x01020304;
        Sim.store_w s 0x2004 0x05060708)
      [ Rr { op = "mvcl"; r1 = 2; r2 = 4 }; halt ]
  in
  check_int "first word" 0x01020304 (Sim.load_w sim 0x3000);
  check_int "second word" 0x05060708 (Sim.load_w sim 0x3004)

(* Property: ar matches 32-bit signed addition *)
let prop_add =
  QCheck.Test.make ~count:300 ~name:"ar = 32-bit signed add"
    QCheck.(pair int32 int32)
    (fun (a, b) ->
      let sim =
        run_insns
          ~setup:(fun s ->
            Sim.set_reg s 1 (Int32.to_int a);
            Sim.set_reg s 2 (Int32.to_int b))
          [ Rr { op = "ar"; r1 = 1; r2 = 2 }; halt ]
      in
      Sim.reg sim 1 = Int32.to_int (Int32.add a b))

let prop_mr_dr =
  QCheck.Test.make ~count:300 ~name:"mr/dr = 64-bit multiply & divide"
    QCheck.(pair (int_range (-100000) 100000) (int_range 1 10000))
    (fun (a, b) ->
      let sim =
        run_insns
          ~setup:(fun s ->
            Sim.set_reg s 5 a;
            Sim.set_reg s 3 b)
          [
            Rr { op = "mr"; r1 = 4; r2 = 3 } (* r4:r5 = a*b *);
            Rr { op = "dr"; r1 = 4; r2 = 3 } (* r5 = a*b/b = a *);
            halt;
          ]
      in
      Sim.reg sim 5 = a && Sim.reg sim 4 = 0)

(* -- object modules -------------------------------------------------------- *)

let test_objmod_roundtrip () =
  let code = Encode.encode_all sample_insns in
  let m = Objmod.of_code ~name:"TEST" ~entry:0 code in
  let text = Objmod.to_string m in
  match Objmod.of_string text with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      check_int "text bytes" (Bytes.length code) (Objmod.text_bytes m');
      Alcotest.(check (option string)) "name" (Some "TEST") (Objmod.module_name m');
      let mem = Bytes.make 0x1000 '\000' in
      (match Objmod.load mem ~at:0x100 m' with
      | Error e -> Alcotest.fail e
      | Ok entry ->
          check_int "entry relocated" 0x100 entry;
          Alcotest.(check string)
            "payload intact"
            (Bytes.to_string code)
            (Bytes.sub_string mem 0x100 (Bytes.length code)))

let test_objmod_bad_records () =
  (match Objmod.of_string "TXT 0000 02 GG" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad hex accepted");
  match Objmod.of_string "FOO bar" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown record accepted"

(* -- runtime / PSA --------------------------------------------------------- *)

let test_runtime_entry_exit () =
  (* a main program that builds a frame, stores 99 in a local, and exits *)
  let lay = Runtime.default_layout in
  let insns : Insn.t list =
    [
      Rs { op = "stm"; r1 = 14; r3 = 13; d2 = Runtime.save_area; b2 = 13 };
      Rx { op = "bal"; r1 = 14; d2 = Runtime.psa_entry_code; x2 = 0; b2 = Runtime.pr_base };
      Rx { op = "la"; r1 = 1; d2 = 99; x2 = 0; b2 = 0 };
      Rx { op = "st"; r1 = 1; d2 = Runtime.locals_base; x2 = 0; b2 = 13 };
      (* exit: reload old frame, restore registers, return *)
      Rx { op = "l"; r1 = 13; d2 = Runtime.old_base; x2 = 0; b2 = 13 };
      Rs { op = "lm"; r1 = 14; r3 = 13; d2 = Runtime.save_area; b2 = 13 };
      Rr { op = "bcr"; r1 = 15; r2 = 14 };
    ]
  in
  let m = Objmod.of_code ~entry:0 (Encode.encode_all insns) in
  match Runtime.boot ~layout:lay m with
  | Error e -> Alcotest.fail e
  | Ok (sim, entry) -> (
      match Runtime.run ~layout:lay sim ~entry with
      | Error e -> Alcotest.fail e
      | Ok out ->
          Alcotest.(check (option string)) "no abort" None out.aborted;
          check_int "local written in frame" 99
            (Sim.load_w sim (out.final_frame + Runtime.locals_base)))

let test_runtime_range_check_abort () =
  let lay = Runtime.default_layout in
  (* compare 5 with upper bound 3 -> overflow check must abort *)
  let insns : Insn.t list =
    [
      Rx { op = "la"; r1 = 1; d2 = 5; x2 = 0; b2 = 0 };
      Rx { op = "la"; r1 = 2; d2 = 3; x2 = 0; b2 = 0 };
      Rr { op = "cr"; r1 = 1; r2 = 2 };
      Rx { op = "bal"; r1 = 14; d2 = Runtime.psa_overflow; x2 = 0; b2 = Runtime.pr_base };
      Rr { op = "bcr"; r1 = 15; r2 = 14 };
    ]
  in
  let m = Objmod.of_code ~entry:0 (Encode.encode_all insns) in
  match Runtime.boot ~layout:lay m with
  | Error e -> Alcotest.fail e
  | Ok (sim, entry) -> (
      match Runtime.run ~layout:lay sim ~entry with
      | Error e -> Alcotest.fail e
      | Ok out ->
          Alcotest.(check (option string))
            "aborted" (Some "range overflow") out.aborted)

let test_runtime_check_passes () =
  let lay = Runtime.default_layout in
  let insns : Insn.t list =
    [
      Rx { op = "la"; r1 = 1; d2 = 2; x2 = 0; b2 = 0 };
      Rx { op = "la"; r1 = 2; d2 = 3; x2 = 0; b2 = 0 };
      Rr { op = "cr"; r1 = 1; r2 = 2 };
      Rx { op = "bal"; r1 = 14; d2 = Runtime.psa_overflow; x2 = 0; b2 = Runtime.pr_base };
      (* the bal clobbered r14; reset it so the return halts *)
      Rx { op = "la"; r1 = 14; d2 = 0; x2 = 0; b2 = 0 };
      Rr { op = "bcr"; r1 = 15; r2 = 14 };
    ]
  in
  let m = Objmod.of_code ~entry:0 (Encode.encode_all insns) in
  match Runtime.boot ~layout:lay m with
  | Error e -> Alcotest.fail e
  | Ok (sim, entry) -> (
      match Runtime.run ~layout:lay sim ~entry with
      | Error e -> Alcotest.fail e
      | Ok out -> Alcotest.(check (option string)) "no abort" None out.aborted)

let test_psa_constants () =
  let sim = Sim.create () in
  Runtime.install sim Runtime.default_layout;
  let psa = Runtime.default_layout.psa_addr in
  check_int "one_loc" 1 (Sim.load_w sim (psa + Runtime.psa_one_loc));
  check_int "minus_one_loc" (-1) (Sim.load_w sim (psa + Runtime.psa_minus_one_loc));
  check_int "seven" 7 (Sim.load_w sim (psa + Runtime.psa_seven));
  check_int "bitmask 0" 0x80 (Sim.load_w sim (psa + Runtime.psa_bitmasks));
  check_int "bitmask 7" 1 (Sim.load_w sim (psa + Runtime.psa_bitmasks + 28))

(* -- per-opcode semantics --------------------------------------------------- *)

(* One table entry per behaviour: assemble [body] (the halt idiom is
   appended), run, check the expectations.  [mnems] declares which spec
   opcodes the entry exercises; the completeness check below insists the
   union covers the whole $Opcodes section of specs/amdahl470.cgg, so an
   opcode added to the spec without semantics coverage fails here. *)
type expect =
  | R of int * int  (* GPR value *)
  | F of int * float  (* FP register value *)
  | M of int * int  (* word at absolute address *)
  | MH of int * int  (* halfword *)
  | MB of int * int  (* byte *)
  | MF32 of int * float
  | MF64 of int * float
  | CC of int  (* final condition code *)

type opcase = {
  mnems : string list;
  case : string;
  setup : Sim.t -> unit;
  body : Insn.t list;
  expect : expect list;
}

let rr op r1 r2 : Insn.t = Rr { op; r1; r2 }
let rx op r1 ?(x = 0) ?(b = 13) d2 : Insn.t = Rx { op; r1; d2; x2 = x; b2 = b }
let rs op r1 r3 d2 : Insn.t = Rs { op; r1; r3; d2; b2 = 0 }
let si op d1 i2 : Insn.t = Si { op; d1; b1 = 13; i2 }
let ss op l d1 d2 : Insn.t = Ss { op; l; d1; b1 = 13; d2; b2 = 13 }

(* data area at r13 = 0x2000 *)
let opcases : opcase list =
  [
    (* integer loads and stores *)
    {
      mnems = [ "l"; "st" ];
      case = "l/st";
      setup = (fun s -> Sim.store_w s 0x2064 77);
      body = [ rx "l" 1 0x64; rx "st" 1 0x70 ];
      expect = [ R (1, 77); M (0x2070, 77) ];
    };
    {
      mnems = [ "lh" ];
      case = "lh sign extends";
      setup = (fun s -> Sim.store_h s 0x2010 (-5));
      body = [ rx "lh" 2 0x10 ];
      expect = [ R (2, -5) ];
    };
    {
      mnems = [ "la" ];
      case = "la computes base+index+disp";
      setup = (fun s -> Sim.set_reg s 5 3);
      body = [ rx "la" 1 ~x:5 4 ];
      expect = [ R (1, 0x2007) ];
    };
    {
      mnems = [ "sth" ];
      case = "sth truncates to halfword";
      setup = (fun s -> Sim.set_reg s 1 (-2));
      body = [ rx "sth" 1 0x20 ];
      expect = [ MH (0x2020, -2) ];
    };
    {
      mnems = [ "stc" ];
      case = "stc stores low byte";
      setup = (fun s -> Sim.set_reg s 1 0x1FF);
      body = [ rx "stc" 1 0x24 ];
      expect = [ MB (0x2024, 0xFF) ];
    };
    {
      mnems = [ "ic" ];
      case = "ic inserts into low byte";
      setup =
        (fun s ->
          Sim.set_reg s 3 0x700;
          Sim.store_u8 s 0x2014 200);
      body = [ rx "ic" 3 0x14 ];
      expect = [ R (3, 0x7C8) ];
    };
    (* integer arithmetic, storage operand *)
    {
      mnems = [ "a" ];
      case = "a adds, cc sign";
      setup =
        (fun s ->
          Sim.set_reg s 1 7;
          Sim.store_w s 0x2030 35);
      body = [ rx "a" 1 0x30 ];
      expect = [ R (1, 42); CC 2 ];
    };
    {
      mnems = [ "ah" ];
      case = "ah adds halfword";
      setup =
        (fun s ->
          Sim.set_reg s 1 10;
          Sim.store_h s 0x2034 (-5));
      body = [ rx "ah" 1 0x34 ];
      expect = [ R (1, 5) ];
    };
    {
      mnems = [ "s" ];
      case = "s subtracts, cc sign";
      setup =
        (fun s ->
          Sim.set_reg s 1 10;
          Sim.store_w s 0x2030 35);
      body = [ rx "s" 1 0x30 ];
      expect = [ R (1, -25); CC 1 ];
    };
    {
      mnems = [ "sh" ];
      case = "sh subtracts halfword";
      setup =
        (fun s ->
          Sim.set_reg s 1 10;
          Sim.store_h s 0x2034 (-5));
      body = [ rx "sh" 1 0x34 ];
      expect = [ R (1, 15) ];
    };
    {
      mnems = [ "m" ];
      case = "m: product lands in the pair";
      setup =
        (fun s ->
          Sim.set_reg s 5 6;
          Sim.store_w s 0x2030 7);
      body = [ rx "m" 4 0x30 ];
      expect = [ R (5, 42); R (4, 0) ];
    };
    {
      mnems = [ "mh" ];
      case = "mh multiplies by halfword";
      setup =
        (fun s ->
          Sim.set_reg s 1 7;
          Sim.store_h s 0x2034 (-3));
      body = [ rx "mh" 1 0x34 ];
      expect = [ R (1, -21) ];
    };
    {
      mnems = [ "d" ];
      case = "d: quotient odd, remainder even";
      setup =
        (fun s ->
          Sim.set_reg s 4 0;
          Sim.set_reg s 5 100;
          Sim.store_w s 0x2030 7);
      body = [ rx "d" 4 0x30 ];
      expect = [ R (5, 14); R (4, 2) ];
    };
    (* integer compares: all three condition codes *)
    {
      mnems = [ "c" ];
      case = "c: less";
      setup =
        (fun s ->
          Sim.set_reg s 1 5;
          Sim.store_w s 0x2030 7);
      body = [ rx "c" 1 0x30 ];
      expect = [ CC 1 ];
    };
    {
      mnems = [ "c" ];
      case = "c: equal";
      setup =
        (fun s ->
          Sim.set_reg s 1 7;
          Sim.store_w s 0x2030 7);
      body = [ rx "c" 1 0x30 ];
      expect = [ CC 0 ];
    };
    {
      mnems = [ "c" ];
      case = "c: greater";
      setup =
        (fun s ->
          Sim.set_reg s 1 9;
          Sim.store_w s 0x2030 7);
      body = [ rx "c" 1 0x30 ];
      expect = [ CC 2 ];
    };
    {
      mnems = [ "ch" ];
      case = "ch compares halfword";
      setup =
        (fun s ->
          Sim.set_reg s 1 5;
          Sim.store_h s 0x2034 5);
      body = [ rx "ch" 1 0x34 ];
      expect = [ CC 0 ];
    };
    {
      mnems = [ "cl" ];
      case = "cl compares unsigned";
      setup =
        (fun s ->
          Sim.set_reg s 1 (-1);
          Sim.store_w s 0x2030 1);
      body = [ rx "cl" 1 0x30 ];
      expect = [ CC 2 ];
    };
    (* integer logic, storage operand *)
    {
      mnems = [ "n" ];
      case = "n ands";
      setup =
        (fun s ->
          Sim.set_reg s 1 0xFF0;
          Sim.store_w s 0x2030 0x0FF);
      body = [ rx "n" 1 0x30 ];
      expect = [ R (1, 0x0F0); CC 1 ];
    };
    {
      mnems = [ "o" ];
      case = "o ors";
      setup =
        (fun s ->
          Sim.set_reg s 1 0xF00;
          Sim.store_w s 0x2030 0x00F);
      body = [ rx "o" 1 0x30 ];
      expect = [ R (1, 0xF0F); CC 1 ];
    };
    {
      mnems = [ "x" ];
      case = "x xors to zero";
      setup =
        (fun s ->
          Sim.set_reg s 1 0xFFF;
          Sim.store_w s 0x2030 0xFFF);
      body = [ rx "x" 1 0x30 ];
      expect = [ R (1, 0); CC 0 ];
    };
    (* register-register moves and sign ops *)
    {
      mnems = [ "lr" ];
      case = "lr copies";
      setup = (fun s -> Sim.set_reg s 2 9);
      body = [ rr "lr" 1 2 ];
      expect = [ R (1, 9) ];
    };
    {
      mnems = [ "ltr" ];
      case = "ltr loads and tests";
      setup = (fun s -> Sim.set_reg s 2 (-3));
      body = [ rr "ltr" 1 2 ];
      expect = [ R (1, -3); CC 1 ];
    };
    {
      mnems = [ "lcr" ];
      case = "lcr complements";
      setup = (fun s -> Sim.set_reg s 2 5);
      body = [ rr "lcr" 1 2 ];
      expect = [ R (1, -5); CC 1 ];
    };
    {
      mnems = [ "lpr" ];
      case = "lpr makes positive";
      setup = (fun s -> Sim.set_reg s 2 (-8));
      body = [ rr "lpr" 1 2 ];
      expect = [ R (1, 8); CC 2 ];
    };
    {
      mnems = [ "lnr" ];
      case = "lnr makes negative";
      setup = (fun s -> Sim.set_reg s 2 8);
      body = [ rr "lnr" 1 2 ];
      expect = [ R (1, -8); CC 1 ];
    };
    (* register-register arithmetic *)
    {
      mnems = [ "ar" ];
      case = "ar adds";
      setup =
        (fun s ->
          Sim.set_reg s 1 7;
          Sim.set_reg s 2 35);
      body = [ rr "ar" 1 2 ];
      expect = [ R (1, 42); CC 2 ];
    };
    {
      mnems = [ "ar" ];
      case = "ar overflow sets cc 3";
      setup =
        (fun s ->
          Sim.set_reg s 1 0x7FFFFFFF;
          Sim.set_reg s 2 1);
      body = [ rr "ar" 1 2 ];
      expect = [ R (1, -0x80000000); CC 3 ];
    };
    {
      mnems = [ "sr" ];
      case = "sr to zero sets cc 0";
      setup =
        (fun s ->
          Sim.set_reg s 1 7;
          Sim.set_reg s 2 7);
      body = [ rr "sr" 1 2 ];
      expect = [ R (1, 0); CC 0 ];
    };
    {
      mnems = [ "mr" ];
      case = "mr: product in the pair";
      setup =
        (fun s ->
          Sim.set_reg s 5 17;
          Sim.set_reg s 3 17);
      body = [ rr "mr" 4 3 ];
      expect = [ R (5, 289); R (4, 0) ];
    };
    {
      mnems = [ "dr" ];
      case = "dr: signed quotient and remainder";
      setup =
        (fun s ->
          Sim.set_reg s 4 (-1);
          Sim.set_reg s 5 (-100);
          Sim.set_reg s 3 7);
      body = [ rr "dr" 4 3 ];
      expect = [ R (5, -14); R (4, -2) ];
    };
    {
      mnems = [ "cr" ];
      case = "cr: less";
      setup =
        (fun s ->
          Sim.set_reg s 1 3;
          Sim.set_reg s 2 5);
      body = [ rr "cr" 1 2 ];
      expect = [ CC 1 ];
    };
    {
      mnems = [ "cr" ];
      case = "cr: equal";
      setup =
        (fun s ->
          Sim.set_reg s 1 5;
          Sim.set_reg s 2 5);
      body = [ rr "cr" 1 2 ];
      expect = [ CC 0 ];
    };
    {
      mnems = [ "cr" ];
      case = "cr: greater";
      setup =
        (fun s ->
          Sim.set_reg s 1 9;
          Sim.set_reg s 2 5);
      body = [ rr "cr" 1 2 ];
      expect = [ CC 2 ];
    };
    {
      mnems = [ "nr" ];
      case = "nr ands";
      setup =
        (fun s ->
          Sim.set_reg s 1 12;
          Sim.set_reg s 2 10);
      body = [ rr "nr" 1 2 ];
      expect = [ R (1, 8); CC 1 ];
    };
    {
      mnems = [ "or" ];
      case = "or ors";
      setup =
        (fun s ->
          Sim.set_reg s 1 12;
          Sim.set_reg s 2 3);
      body = [ rr "or" 1 2 ];
      expect = [ R (1, 15); CC 1 ];
    };
    {
      mnems = [ "xr" ];
      case = "xr clears on equal operands";
      setup =
        (fun s ->
          Sim.set_reg s 1 5;
          Sim.set_reg s 2 5);
      body = [ rr "xr" 1 2 ];
      expect = [ R (1, 0); CC 0 ];
    };
    (* branches: both taken and not-taken legs *)
    {
      mnems = [ "bcr" ];
      case = "bcr taken on equal";
      setup = (fun s -> Sim.set_reg s 2 0x100A);
      body =
        [
          rr "cr" 0 0 (* 0x1000: cc 0 *);
          rr "bcr" 8 2 (* 0x1002: eq mask, to r2 *);
          rx "la" 3 ~b:0 9 (* 0x1004: skipped *);
          halt (* 0x1008 *);
          rx "la" 3 ~b:0 1 (* 0x100A: branch target *);
        ];
      expect = [ R (3, 1) ];
    };
    {
      mnems = [ "bcr" ];
      case = "bcr not taken on mask miss";
      setup = (fun s -> Sim.set_reg s 2 0x100A);
      body = [ rr "cr" 0 0; rr "bcr" 2 2; rx "la" 3 ~b:0 9 ];
      expect = [ R (3, 9) ];
    };
    {
      mnems = [ "balr" ];
      case = "balr links without branching on r2=0";
      setup = (fun _ -> ());
      body = [ rr "balr" 6 0 ];
      expect = [ R (6, 0x1002) ];
    };
    {
      mnems = [ "bctr" ];
      case = "bctr decrements without branching on r2=0";
      setup = (fun s -> Sim.set_reg s 3 10);
      body = [ rr "bctr" 3 0 ];
      expect = [ R (3, 9) ];
    };
    {
      mnems = [ "bc" ];
      case = "bc unconditional";
      setup = (fun s -> Sim.set_reg s 12 0x1000);
      body =
        [
          rx "bc" 15 ~b:12 8 (* 0x1000 *);
          rx "la" 3 ~b:0 9 (* 0x1004: skipped *);
          rx "la" 3 ~b:0 1 (* 0x1008: target *);
        ];
      expect = [ R (3, 1) ];
    };
    {
      mnems = [ "bc" ];
      case = "bc mask 0 never taken";
      setup = (fun s -> Sim.set_reg s 12 0x1000);
      body = [ rx "bc" 0 ~b:12 8; rx "la" 3 ~b:0 9 ];
      expect = [ R (3, 9) ];
    };
    {
      mnems = [ "bal" ];
      case = "bal links and branches";
      setup = (fun s -> Sim.set_reg s 12 0x1000);
      body =
        [
          rx "bal" 6 ~b:12 8 (* 0x1000 *);
          rx "la" 3 ~b:0 9 (* 0x1004: skipped *);
          rx "la" 3 ~b:0 1 (* 0x1008: target *);
        ];
      expect = [ R (6, 0x1004); R (3, 1) ];
    };
    {
      mnems = [ "bct" ];
      case = "bct branches while nonzero";
      setup =
        (fun s ->
          Sim.set_reg s 3 2;
          Sim.set_reg s 12 0x1000);
      body =
        [
          rx "bct" 3 ~b:12 0x0A (* 0x1000 *);
          rx "la" 4 ~b:0 9 (* 0x1004 *);
          halt (* 0x1008 *);
          rx "la" 4 ~b:0 1 (* 0x100A: target *);
        ];
      expect = [ R (3, 1); R (4, 1) ];
    };
    {
      mnems = [ "bct" ];
      case = "bct falls through at zero";
      setup =
        (fun s ->
          Sim.set_reg s 3 1;
          Sim.set_reg s 12 0x1000);
      body = [ rx "bct" 3 ~b:12 0x0A; rx "la" 4 ~b:0 9; halt; rx "la" 4 ~b:0 1 ];
      expect = [ R (3, 0); R (4, 9) ];
    };
    (* multiple load/store and long moves *)
    {
      mnems = [ "stm"; "lm" ];
      case = "stm/lm round-trip";
      setup =
        (fun s ->
          Sim.set_reg s 1 11;
          Sim.set_reg s 2 22;
          Sim.set_reg s 3 33);
      body =
        [
          Rs { op = "stm"; r1 = 1; r3 = 3; d2 = 8; b2 = 13 };
          rx "la" 1 ~b:0 0;
          rx "la" 2 ~b:0 0;
          Rs { op = "lm"; r1 = 1; r3 = 3; d2 = 8; b2 = 13 };
        ];
      expect = [ R (1, 11); R (2, 22); R (3, 33) ];
    };
    {
      mnems = [ "mvcl" ];
      case = "mvcl copies and pads";
      setup =
        (fun s ->
          Sim.set_reg s 2 0x3000;
          Sim.set_reg s 3 8;
          Sim.set_reg s 4 0x2080;
          Sim.set_reg s 5 8;
          Sim.store_w s 0x2080 0x01020304;
          Sim.store_w s 0x2084 0x05060708);
      body = [ rr "mvcl" 2 4 ];
      expect = [ M (0x3000, 0x01020304); M (0x3004, 0x05060708); CC 0 ];
    };
    (* shifts *)
    {
      mnems = [ "sla" ];
      case = "sla shifts arithmetically";
      setup = (fun s -> Sim.set_reg s 1 3);
      body = [ rs "sla" 1 0 2 ];
      expect = [ R (1, 12); CC 2 ];
    };
    {
      mnems = [ "sla" ];
      case = "sla overflow sets cc 3";
      setup = (fun s -> Sim.set_reg s 1 0x40000000);
      body = [ rs "sla" 1 0 1 ];
      expect = [ CC 3 ];
    };
    {
      mnems = [ "sra" ];
      case = "sra keeps the sign";
      setup = (fun s -> Sim.set_reg s 2 (-64));
      body = [ rs "sra" 2 0 3 ];
      expect = [ R (2, -8); CC 1 ];
    };
    {
      mnems = [ "sll" ];
      case = "sll shifts logically";
      setup = (fun s -> Sim.set_reg s 1 3);
      body = [ rs "sll" 1 0 4 ];
      expect = [ R (1, 48) ];
    };
    {
      mnems = [ "srl" ];
      case = "srl shifts in zeros";
      setup = (fun s -> Sim.set_reg s 1 (-2));
      body = [ rs "srl" 1 0 1 ];
      expect = [ R (1, 0x7FFFFFFF) ];
    };
    {
      mnems = [ "slda" ];
      case = "slda crosses the pair";
      setup =
        (fun s ->
          Sim.set_reg s 2 0;
          Sim.set_reg s 3 1);
      body = [ rs "slda" 2 0 32 ];
      expect = [ R (2, 1); R (3, 0); CC 2 ];
    };
    {
      mnems = [ "srda" ];
      case = "srda sign-extends across the pair";
      setup = (fun s -> Sim.set_reg s 2 (-7));
      body = [ rs "srda" 2 0 32 ];
      expect = [ R (2, -1); R (3, -7); CC 1 ];
    };
    {
      mnems = [ "sldl" ];
      case = "sldl shifts the pair logically";
      setup =
        (fun s ->
          Sim.set_reg s 2 0;
          Sim.set_reg s 3 0x40000000);
      body = [ rs "sldl" 2 0 4 ];
      expect = [ R (2, 4); R (3, 0) ];
    };
    {
      mnems = [ "srdl" ];
      case = "srdl shifts in zeros across the pair";
      setup =
        (fun s ->
          Sim.set_reg s 2 (-1);
          Sim.set_reg s 3 0);
      body = [ rs "srdl" 2 0 4 ];
      expect = [ R (2, 0x0FFFFFFF); R (3, -0x10000000) ];
    };
    (* storage-immediate *)
    {
      mnems = [ "mvi" ];
      case = "mvi stores the immediate";
      setup = (fun _ -> ());
      body = [ si "mvi" 0x50 255 ];
      expect = [ MB (0x2050, 255) ];
    };
    {
      mnems = [ "cli" ];
      case = "cli: equal";
      setup = (fun s -> Sim.store_u8 s 0x2051 200);
      body = [ si "cli" 0x51 200 ];
      expect = [ CC 0 ];
    };
    {
      mnems = [ "cli" ];
      case = "cli: storage lower";
      setup = (fun s -> Sim.store_u8 s 0x2051 5);
      body = [ si "cli" 0x51 9 ];
      expect = [ CC 1 ];
    };
    {
      mnems = [ "ni" ];
      case = "ni ands in place";
      setup = (fun s -> Sim.store_u8 s 0x2052 12);
      body = [ si "ni" 0x52 10 ];
      expect = [ MB (0x2052, 8); CC 1 ];
    };
    {
      mnems = [ "oi" ];
      case = "oi ors in place";
      setup = (fun s -> Sim.store_u8 s 0x2053 1);
      body = [ si "oi" 0x53 2 ];
      expect = [ MB (0x2053, 3); CC 1 ];
    };
    {
      mnems = [ "xi" ];
      case = "xi clears on equal mask";
      setup = (fun s -> Sim.store_u8 s 0x2054 5);
      body = [ si "xi" 0x54 5 ];
      expect = [ MB (0x2054, 0); CC 0 ];
    };
    {
      mnems = [ "tm" ];
      case = "tm: all bits clear";
      setup = (fun s -> Sim.store_u8 s 0x2055 0);
      body = [ si "tm" 0x55 1 ];
      expect = [ CC 0 ];
    };
    {
      mnems = [ "tm" ];
      case = "tm: all selected bits set";
      setup = (fun s -> Sim.store_u8 s 0x2055 1);
      body = [ si "tm" 0x55 1 ];
      expect = [ CC 3 ];
    };
    {
      mnems = [ "tm" ];
      case = "tm: mixed bits";
      setup = (fun s -> Sim.store_u8 s 0x2055 5);
      body = [ si "tm" 0x55 7 ];
      expect = [ CC 1 ];
    };
    (* storage-storage *)
    {
      mnems = [ "mvc" ];
      case = "mvc copies";
      setup = (fun s -> Sim.store_w s 0x2020 0xDEAD);
      body = [ ss "mvc" 4 0x30 0x20 ];
      expect = [ M (0x2030, 0xDEAD) ];
    };
    {
      mnems = [ "clc" ];
      case = "clc: equal";
      setup =
        (fun s ->
          Sim.store_w s 0x2040 0x01020304;
          Sim.store_w s 0x2044 0x01020304);
      body = [ ss "clc" 4 0x40 0x44 ];
      expect = [ CC 0 ];
    };
    {
      mnems = [ "clc" ];
      case = "clc: first operand lower";
      setup =
        (fun s ->
          Sim.store_w s 0x2040 0x01020304;
          Sim.store_w s 0x2044 0x01030304);
      body = [ ss "clc" 4 0x40 0x44 ];
      expect = [ CC 1 ];
    };
    {
      mnems = [ "nc" ];
      case = "nc ands storage";
      setup =
        (fun s ->
          Sim.store_w s 0x2040 0x0F0F0F0F;
          Sim.store_w s 0x2044 0x00FF00FF);
      body = [ ss "nc" 4 0x40 0x44 ];
      expect = [ M (0x2040, 0x000F000F); CC 1 ];
    };
    {
      mnems = [ "oc" ];
      case = "oc ors storage";
      setup =
        (fun s ->
          Sim.store_w s 0x2040 0x0F0F0F0F;
          Sim.store_w s 0x2044 0x00FF00FF);
      body = [ ss "oc" 4 0x40 0x44 ];
      expect = [ M (0x2040, 0x0FFF0FFF); CC 1 ];
    };
    {
      mnems = [ "xc" ];
      case = "xc on itself clears";
      setup = (fun s -> Sim.store_w s 0x2048 0x1234);
      body = [ ss "xc" 4 0x48 0x48 ];
      expect = [ M (0x2048, 0); CC 0 ];
    };
    (* floating point, storage operand *)
    {
      mnems = [ "le"; "ste" ];
      case = "le/ste round-trip";
      setup = (fun s -> Sim.store_f32 s 0x2060 1.5);
      body = [ rx "le" 0 0x60; rx "ste" 0 0x74 ];
      expect = [ F (0, 1.5); MF32 (0x2074, 1.5) ];
    };
    {
      mnems = [ "ld"; "std" ];
      case = "ld/std round-trip";
      setup = (fun s -> Sim.store_f64 s 0x2068 2.25);
      body = [ rx "ld" 2 0x68; rx "std" 2 0x78 ];
      expect = [ F (2, 2.25); MF64 (0x2078, 2.25) ];
    };
    {
      mnems = [ "ae" ];
      case = "ae adds short";
      setup =
        (fun s ->
          Sim.store_f32 s 0x2060 1.5;
          Sim.store_f32 s 0x2064 2.5);
      body = [ rx "le" 0 0x60; rx "ae" 0 0x64 ];
      expect = [ F (0, 4.0); CC 2 ];
    };
    {
      mnems = [ "ad" ];
      case = "ad adds long";
      setup =
        (fun s ->
          Sim.store_f64 s 0x2068 1.5;
          Sim.store_f64 s 0x2070 2.5);
      body = [ rx "ld" 0 0x68; rx "ad" 0 0x70 ];
      expect = [ F (0, 4.0); CC 2 ];
    };
    {
      mnems = [ "se" ];
      case = "se subtracts short";
      setup =
        (fun s ->
          Sim.store_f32 s 0x2060 1.5;
          Sim.store_f32 s 0x2064 2.5);
      body = [ rx "le" 0 0x60; rx "se" 0 0x64 ];
      expect = [ F (0, -1.0); CC 1 ];
    };
    {
      mnems = [ "sd" ];
      case = "sd subtracts long";
      setup =
        (fun s ->
          Sim.store_f64 s 0x2068 1.5;
          Sim.store_f64 s 0x2070 2.5);
      body = [ rx "ld" 0 0x68; rx "sd" 0 0x70 ];
      expect = [ F (0, -1.0); CC 1 ];
    };
    {
      mnems = [ "me" ];
      case = "me multiplies short";
      setup =
        (fun s ->
          Sim.store_f32 s 0x2060 1.5;
          Sim.store_f32 s 0x2064 2.0);
      body = [ rx "le" 0 0x60; rx "me" 0 0x64 ];
      expect = [ F (0, 3.0) ];
    };
    {
      mnems = [ "md" ];
      case = "md multiplies long";
      setup =
        (fun s ->
          Sim.store_f64 s 0x2068 1.5;
          Sim.store_f64 s 0x2070 2.0);
      body = [ rx "ld" 0 0x68; rx "md" 0 0x70 ];
      expect = [ F (0, 3.0) ];
    };
    {
      mnems = [ "de" ];
      case = "de divides short";
      setup =
        (fun s ->
          Sim.store_f32 s 0x2060 3.0;
          Sim.store_f32 s 0x2064 1.5);
      body = [ rx "le" 0 0x60; rx "de" 0 0x64 ];
      expect = [ F (0, 2.0) ];
    };
    {
      mnems = [ "dd" ];
      case = "dd divides long";
      setup =
        (fun s ->
          Sim.store_f64 s 0x2068 3.0;
          Sim.store_f64 s 0x2070 1.5);
      body = [ rx "ld" 0 0x68; rx "dd" 0 0x70 ];
      expect = [ F (0, 2.0) ];
    };
    {
      mnems = [ "ce" ];
      case = "ce: equal";
      setup = (fun s -> Sim.store_f32 s 0x2060 1.5);
      body = [ rx "le" 0 0x60; rx "ce" 0 0x60 ];
      expect = [ CC 0 ];
    };
    {
      mnems = [ "ce" ];
      case = "ce: register lower";
      setup =
        (fun s ->
          Sim.store_f32 s 0x2060 1.0;
          Sim.store_f32 s 0x2064 2.0);
      body = [ rx "le" 0 0x60; rx "ce" 0 0x64 ];
      expect = [ CC 1 ];
    };
    {
      mnems = [ "cd" ];
      case = "cd: register greater";
      setup =
        (fun s ->
          Sim.store_f64 s 0x2068 2.0;
          Sim.store_f64 s 0x2070 1.0);
      body = [ rx "ld" 0 0x68; rx "cd" 0 0x70 ];
      expect = [ CC 2 ];
    };
    (* floating point, register-register *)
    {
      mnems = [ "ler"; "ldr" ];
      case = "ler/ldr copy";
      setup =
        (fun s ->
          Sim.set_freg s 2 1.5;
          Sim.set_freg s 6 2.25);
      body = [ rr "ler" 0 2; rr "ldr" 4 6 ];
      expect = [ F (0, 1.5); F (4, 2.25) ];
    };
    {
      mnems = [ "lcer"; "lcdr" ];
      case = "lcer/lcdr negate";
      setup =
        (fun s ->
          Sim.set_freg s 2 1.5;
          Sim.set_freg s 6 (-2.0));
      body = [ rr "lcer" 0 2; rr "lcdr" 4 6 ];
      expect = [ F (0, -1.5); F (4, 2.0); CC 2 ];
    };
    {
      mnems = [ "lper"; "lpdr" ];
      case = "lper/lpdr take magnitude";
      setup =
        (fun s ->
          Sim.set_freg s 2 (-2.0);
          Sim.set_freg s 6 (-3.0));
      body = [ rr "lper" 0 2; rr "lpdr" 4 6 ];
      expect = [ F (0, 2.0); F (4, 3.0); CC 2 ];
    };
    {
      mnems = [ "lner"; "lndr" ];
      case = "lner/lndr force negative";
      setup =
        (fun s ->
          Sim.set_freg s 2 2.0;
          Sim.set_freg s 6 3.0);
      body = [ rr "lner" 0 2; rr "lndr" 4 6 ];
      expect = [ F (0, -2.0); F (4, -3.0); CC 1 ];
    };
    {
      mnems = [ "lter" ];
      case = "lter tests zero";
      setup = (fun s -> Sim.set_freg s 2 0.0);
      body = [ rr "lter" 0 2 ];
      expect = [ F (0, 0.0); CC 0 ];
    };
    {
      mnems = [ "ltdr" ];
      case = "ltdr tests negative";
      setup = (fun s -> Sim.set_freg s 2 (-3.0));
      body = [ rr "ltdr" 0 2 ];
      expect = [ F (0, -3.0); CC 1 ];
    };
    {
      mnems = [ "aer"; "adr" ];
      case = "aer/adr add";
      setup =
        (fun s ->
          Sim.set_freg s 0 1.5;
          Sim.set_freg s 2 2.5;
          Sim.set_freg s 4 0.25;
          Sim.set_freg s 6 0.5);
      body = [ rr "aer" 0 2; rr "adr" 4 6 ];
      expect = [ F (0, 4.0); F (4, 0.75); CC 2 ];
    };
    {
      mnems = [ "ser"; "sdr" ];
      case = "ser/sdr subtract";
      setup =
        (fun s ->
          Sim.set_freg s 0 1.5;
          Sim.set_freg s 2 2.5;
          Sim.set_freg s 4 0.25;
          Sim.set_freg s 6 0.5);
      body = [ rr "ser" 0 2; rr "sdr" 4 6 ];
      expect = [ F (0, -1.0); F (4, -0.25); CC 1 ];
    };
    {
      mnems = [ "mer"; "mdr" ];
      case = "mer/mdr multiply";
      setup =
        (fun s ->
          Sim.set_freg s 0 1.5;
          Sim.set_freg s 2 2.0;
          Sim.set_freg s 4 0.25;
          Sim.set_freg s 6 4.0);
      body = [ rr "mer" 0 2; rr "mdr" 4 6 ];
      expect = [ F (0, 3.0); F (4, 1.0) ];
    };
    {
      mnems = [ "der"; "ddr" ];
      case = "der/ddr divide";
      setup =
        (fun s ->
          Sim.set_freg s 0 3.0;
          Sim.set_freg s 2 1.5;
          Sim.set_freg s 4 1.0;
          Sim.set_freg s 6 4.0);
      body = [ rr "der" 0 2; rr "ddr" 4 6 ];
      expect = [ F (0, 2.0); F (4, 0.25) ];
    };
    {
      mnems = [ "her"; "hdr" ];
      case = "her/hdr halve";
      setup =
        (fun s ->
          Sim.set_freg s 2 5.0;
          Sim.set_freg s 6 0.5);
      body = [ rr "her" 0 2; rr "hdr" 4 6 ];
      expect = [ F (0, 2.5); F (4, 0.25) ];
    };
    {
      mnems = [ "cer" ];
      case = "cer: equal";
      setup =
        (fun s ->
          Sim.set_freg s 0 1.5;
          Sim.set_freg s 2 1.5);
      body = [ rr "cer" 0 2 ];
      expect = [ CC 0 ];
    };
    {
      mnems = [ "cdr" ];
      case = "cdr: lower";
      setup =
        (fun s ->
          Sim.set_freg s 0 1.0;
          Sim.set_freg s 2 2.0);
      body = [ rr "cdr" 0 2 ];
      expect = [ CC 1 ];
    };
    {
      mnems = [ "axr"; "sxr" ];
      case = "axr/sxr extended add and subtract";
      setup =
        (fun s ->
          Sim.set_freg s 0 1.25;
          Sim.set_freg s 4 0.75);
      body = [ rr "axr" 0 4; rr "sxr" 0 4 ];
      expect = [ F (0, 1.25); CC 2 ];
    };
    {
      mnems = [ "mxr" ];
      case = "mxr extended multiply";
      setup =
        (fun s ->
          Sim.set_freg s 0 1.5;
          Sim.set_freg s 4 2.0);
      body = [ rr "mxr" 0 4 ];
      expect = [ F (0, 3.0) ];
    };
  ]

let run_opcase (c : opcase) () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        c.setup s)
      (c.body @ [ halt ])
  in
  List.iter
    (function
      | R (r, v) -> check_int (Fmt.str "%s: r%d" c.case r) v (Sim.reg sim r)
      | F (r, v) ->
          Alcotest.(check (float 1e-9))
            (Fmt.str "%s: f%d" c.case r)
            v (Sim.freg sim r)
      | M (a, v) ->
          check_int (Fmt.str "%s: word %06X" c.case a) v (Sim.load_w sim a)
      | MH (a, v) ->
          check_int (Fmt.str "%s: half %06X" c.case a) v (Sim.load_h sim a)
      | MB (a, v) ->
          check_int (Fmt.str "%s: byte %06X" c.case a) v (Sim.load_u8 sim a)
      | MF32 (a, v) ->
          Alcotest.(check (float 1e-9))
            (Fmt.str "%s: f32 %06X" c.case a)
            v (Sim.load_f32 sim a)
      | MF64 (a, v) ->
          Alcotest.(check (float 1e-9))
            (Fmt.str "%s: f64 %06X" c.case a)
            v (Sim.load_f64 sim a)
      | CC v -> check_int (Fmt.str "%s: cc" c.case) v sim.Sim.cc)
    c.expect

(* Every mnemonic the spec's $Opcodes section declares — i.e. everything
   the code emitter is allowed to produce — must be known to the encoder
   and covered by at least one semantics case above. *)
let spec_opcodes () =
  let ic = open_in (Util.spec_path "amdahl470.cgg") in
  let rec go in_sec acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let t = String.trim line in
        if String.length t > 0 && t.[0] = '$' then
          if t = "$Opcodes" then go true acc
          else if in_sec then begin
            close_in ic;
            List.rev acc
          end
          else go false acc
        else if in_sec then
          let words =
            String.split_on_char ',' t
            |> List.concat_map (String.split_on_char ' ')
            |> List.filter_map (fun w ->
                   let w = String.trim w in
                   if w = "" then None else Some w)
          in
          go true (List.rev_append words acc)
        else go false acc
  in
  go false []

let test_opcodes_complete () =
  let spec = spec_opcodes () in
  Alcotest.(check bool)
    (Fmt.str "spec declares a full opcode set (%d)" (List.length spec))
    true
    (List.length spec >= 90);
  let covered = List.concat_map (fun c -> c.mnems) opcases in
  List.iter
    (fun m ->
      if not (Insn.is_mnemonic m) then
        Alcotest.failf "spec opcode %s is unknown to the encoder" m;
      if not (List.mem m covered) then
        Alcotest.failf "spec opcode %s has no semantics case" m)
    spec

(* -- page-boundary branches ------------------------------------------------- *)

(* A forward branch over [n_pad] 4-byte instructions: with the all-short
   layout the target sits at 4*n_pad + 10, so 1021 pads keep it inside
   the 4095-displacement page and 1022 push it out, forcing the long
   form (load the target offset from the literal pool, then branch
   indexed). *)
let branch_pad_buffer n_pad : Cogg.Code_buffer.t =
  let open Cogg.Code_buffer in
  let buf = create () in
  add buf (Branch_site { mask = 15; lbl = User 1; idx = 1; x = 0 });
  for _ = 1 to n_pad do
    add buf (Fixed (Rx { op = "la"; r1 = 0; d2 = 0; x2 = 0; b2 = 0 }))
  done;
  add buf (Fixed (Rx { op = "la"; r1 = 3; d2 = 9; x2 = 0; b2 = 0 }));
  add buf (Fixed halt);
  add buf (Label_def (User 1));
  add buf (Fixed (Rx { op = "la"; r1 = 3; d2 = 1; x2 = 0; b2 = 0 }));
  add buf (Fixed halt);
  buf

let resolve_and_run (buf : Cogg.Code_buffer.t) : Cogg.Loader_gen.resolved * int =
  let r = Cogg.Loader_gen.resolve ~code_base:12 buf in
  let sim = Sim.create ~mem_size:(1 lsl 18) () in
  Bytes.blit r.Cogg.Loader_gen.code 0 sim.Sim.mem 0x1000
    (Bytes.length r.Cogg.Loader_gen.code);
  Sim.set_reg sim 12 0x1000;
  Sim.set_reg sim 14 0;
  ignore (Sim.run sim ~entry:(0x1000 + r.Cogg.Loader_gen.entry));
  (r, Sim.reg sim 3)

let test_branch_under_page () =
  let r, r3 = resolve_and_run (branch_pad_buffer 1021) in
  check_int "one site" 1 r.Cogg.Loader_gen.n_sites;
  check_int "stays short" 0 r.Cogg.Loader_gen.n_long;
  check_int "no literal pool" 0 r.Cogg.Loader_gen.pool_words;
  check_int "short branch lands" 1 r3

let test_branch_over_page () =
  let r, r3 = resolve_and_run (branch_pad_buffer 1022) in
  check_int "one site" 1 r.Cogg.Loader_gen.n_sites;
  check_int "widened to long form" 1 r.Cogg.Loader_gen.n_long;
  check_int "one literal pool word" 1 r.Cogg.Loader_gen.pool_words;
  check_int "entry skips the pool" 4 r.Cogg.Loader_gen.entry;
  check_int "long branch lands" 1 r3

(* -- suite ----------------------------------------------------------------- *)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_add; prop_mr_dr ]

let () =
  Alcotest.run "machine"
    [
      ( "encode",
        [
          Alcotest.test_case "roundtrip samples" `Quick test_roundtrip;
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "encode_all/decode_all" `Quick test_encode_all_decode_all;
          Alcotest.test_case "bad encodings rejected" `Quick test_bad_encodings;
        ] );
      ( "sim",
        [
          Alcotest.test_case "load/add/store" `Quick test_load_add_store;
          Alcotest.test_case "halfword and byte" `Quick test_halfword_and_byte;
          Alcotest.test_case "multiply/divide pairs" `Quick test_mult_div_pair;
          Alcotest.test_case "srda sign extension" `Quick test_srda_sign_extension;
          Alcotest.test_case "compare and branch" `Quick test_compare_and_branch;
          Alcotest.test_case "bctr decrement idiom" `Quick test_bctr_decrement;
          Alcotest.test_case "tm condition codes" `Quick test_tm_condition;
          Alcotest.test_case "mvc" `Quick test_mvc;
          Alcotest.test_case "stm/lm wraparound" `Quick test_stm_lm_wraparound;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "add overflow cc" `Quick test_overflow_cc;
          Alcotest.test_case "mvcl" `Quick test_mvcl;
        ] );
      ( "objmod",
        [
          Alcotest.test_case "roundtrip" `Quick test_objmod_roundtrip;
          Alcotest.test_case "bad records" `Quick test_objmod_bad_records;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "entry/exit frames" `Quick test_runtime_entry_exit;
          Alcotest.test_case "range check aborts" `Quick test_runtime_range_check_abort;
          Alcotest.test_case "range check passes" `Quick test_runtime_check_passes;
          Alcotest.test_case "psa constants" `Quick test_psa_constants;
        ] );
      ( "opcodes",
        List.map
          (fun c -> Alcotest.test_case c.case `Quick (run_opcase c))
          opcases
        @ [
            Alcotest.test_case "spec $Opcodes fully covered" `Quick
              test_opcodes_complete;
          ] );
      ( "loader",
        [
          Alcotest.test_case "branch under the page stays short" `Quick
            test_branch_under_page;
          Alcotest.test_case "branch over the page goes long" `Quick
            test_branch_over_page;
        ] );
      ("properties", qsuite);
    ]
