(* The content-hashed on-disk table cache: a second build of the same
   specification must be served from disk (no LR construction), a hit
   must drive codegen identically to a fresh build, and corrupt or stale
   entries must fall back to a clean rebuild, never an error. *)

let intro_spec =
  {|
* The artificial machine of paper section 1.
$Non-terminals
 r = gpr
$Terminals
 d = displacement
$Operators
 word, iadd, store, ret
$Opcodes
 l, ar, st, bcr
$Constants
 fifteen = 15
$Productions
r.2 ::= word d.1
 using r.2
 l     r.2,d.1
r.1 ::= iadd r.1 r.2
 modifies r.1
 ar    r.1,r.2
lambda ::= store word d.1 r.2
 st    r.2,d.1
lambda ::= ret
 need r.14
 bcr   fifteen,r.14
|}

let intro_if = "store word d:100 iadd word d:100 word d:104 ret"

(* Every test gets its own throwaway cache directory: a fresh temp path
   that does not exist yet (Tables_cache creates it on first store). *)
let fresh_cache_dir () =
  let path = Filename.temp_file "cogg-cache-test" "" in
  Sys.remove path;
  path

let build ?(spec = intro_spec) cache_dir =
  match Cogg.Tables_cache.build_text ~cache_dir spec with
  | Ok (t, origin) -> (t, origin)
  | Error es ->
      Alcotest.failf "cache build failed: %a"
        (Fmt.list Cogg.Cogg_build.pp_error)
        es

let check_origin = Alcotest.(check string)

let origin_str = function
  | Cogg.Tables_cache.Cache_hit -> "hit"
  | Cogg.Tables_cache.Built -> "built"
  | Cogg.Tables_cache.Built_incremental _ -> "incremental"

let test_miss_then_hit () =
  let dir = fresh_cache_dir () in
  let _, o1 = build dir in
  check_origin "first build is a miss" "built" (origin_str o1);
  let _, o2 = build dir in
  check_origin "second build is a hit" "hit" (origin_str o2);
  (* a hit never enters LR construction: the origin is decided before
     Cogg_build would run, which is what makes repeat invocations fast *)
  let hits_before = (Cogg.Tables_cache.stats ()).Cogg.Tables_cache.hits in
  let _, o3 = build dir in
  check_origin "still a hit" "hit" (origin_str o3);
  Alcotest.(check int)
    "hit counter advanced" (hits_before + 1)
    (Cogg.Tables_cache.stats ()).Cogg.Tables_cache.hits

let generate t =
  match Cogg.Codegen.generate_string t intro_if with
  | Ok r -> r
  | Error m -> Alcotest.failf "codegen failed: %s" m

let test_hit_drives_codegen_identically () =
  let dir = fresh_cache_dir () in
  let built, _ = build dir in
  let cached, o = build dir in
  check_origin "served from cache" "hit" (origin_str o);
  let a = generate built and b = generate cached in
  Alcotest.(check string)
    "identical listings" a.Cogg.Codegen.listing b.Cogg.Codegen.listing;
  Alcotest.(check bytes)
    "identical code bytes"
    a.Cogg.Codegen.resolved.Cogg.Loader_gen.code
    b.Cogg.Codegen.resolved.Cogg.Loader_gen.code

let clobber path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let test_corrupt_entry_rebuilds () =
  let dir = fresh_cache_dir () in
  let _, _ = build dir in
  let path = Cogg.Tables_cache.entry_path ~cache_dir:dir intro_spec in
  Alcotest.(check bool) "entry exists" true (Sys.file_exists path);
  (* garbage *)
  clobber path "this is not a table bundle";
  let _, o = build dir in
  check_origin "garbage entry is a clean miss" "built" (origin_str o);
  (* the rebuild repaired the entry *)
  let _, o2 = build dir in
  check_origin "repaired entry hits" "hit" (origin_str o2);
  (* truncation *)
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let whole = really_input_string ic n in
  close_in ic;
  clobber path (String.sub whole 0 (n / 2));
  let _, o3 = build dir in
  check_origin "truncated entry is a clean miss" "built" (origin_str o3)

let test_modified_spec_misses () =
  let dir = fresh_cache_dir () in
  let _, _ = build dir in
  let edited = intro_spec ^ "* a trailing comment changes the digest\n" in
  Alcotest.(check bool)
    "different key" true
    (Cogg.Tables_cache.entry_path ~cache_dir:dir intro_spec
    <> Cogg.Tables_cache.entry_path ~cache_dir:dir edited);
  (* a miss, but one the lineage pointer turns into an incremental
     rebuild spliced from the original entry *)
  let _, o = build ~spec:edited dir in
  check_origin "edited spec misses and rebuilds incrementally" "incremental"
    (origin_str o);
  let _, o2 = build dir in
  check_origin "original entry untouched" "hit" (origin_str o2)

let test_concurrent_store_same_entry () =
  (* several domains race to build and store the same spec into one
     fresh cache directory.  Unique temp names + atomic rename mean no
     interleaving can corrupt the entry: every racer must succeed, and
     the surviving entry must be valid (next build is a hit that drives
     codegen identically to a fresh build). *)
  let dir = fresh_cache_dir () in
  let racers = 4 in
  let results = Array.make racers None in
  Cogg.Pool.with_pool ~domains:racers (fun pool ->
      Cogg.Pool.run_parallel pool
        (Array.init racers (fun i _slot ->
             results.(i) <- Some (Cogg.Tables_cache.build_text ~cache_dir:dir intro_spec))));
  Array.iteri
    (fun i r ->
      match r with
      | Some (Ok _) -> ()
      | Some (Error es) ->
          Alcotest.failf "racer %d failed: %a" i
            (Fmt.list Cogg.Cogg_build.pp_error)
            es
      | None -> Alcotest.failf "racer %d never ran" i)
    results;
  let path = Cogg.Tables_cache.entry_path ~cache_dir:dir intro_spec in
  Alcotest.(check bool) "entry exists" true (Sys.file_exists path);
  (* no orphaned temp files survive the race *)
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check (list string)) "no temp litter" [] leftovers;
  let cached, o = build dir in
  check_origin "entry left by the race hits" "hit" (origin_str o);
  let fresh =
    match Cogg.Cogg_build.build_string intro_spec with
    | Ok t -> t
    | Error es ->
        Alcotest.failf "fresh build failed: %a"
          (Fmt.list Cogg.Cogg_build.pp_error)
          es
  in
  let a = generate fresh and b = generate cached in
  Alcotest.(check string)
    "raced entry drives codegen identically" a.Cogg.Codegen.listing
    b.Cogg.Codegen.listing

let test_profile_is_part_of_key () =
  (* a profile-specialized build is keyed by the profile digest: it
     neither hits nor clobbers the plain entry, the stored bundle
     carries the hybrid table, and a hit restores it bit-for-bit *)
  let dir = fresh_cache_dir () in
  let plain, _ = build dir in
  let profile =
    Cogg.Cogprof.uniform
      ~n_states:(Cogg.Parse_table.n_states plain.Cogg.Tables.parse)
      ~n_prods:(Cogg.Grammar.n_prods plain.Cogg.Tables.grammar)
  in
  Alcotest.(check bool)
    "profiled key differs" true
    (Cogg.Tables_cache.entry_path ~cache_dir:dir intro_spec
    <> Cogg.Tables_cache.entry_path ~profile ~cache_dir:dir intro_spec);
  let build_profiled () =
    match Cogg.Tables_cache.build_text ~profile ~cache_dir:dir intro_spec with
    | Ok (t, o) -> (t, o)
    | Error es ->
        Alcotest.failf "profiled cache build failed: %a"
          (Fmt.list Cogg.Cogg_build.pp_error)
          es
  in
  let built, o1 = build_profiled () in
  check_origin "profiled build misses the plain entry" "built" (origin_str o1);
  Alcotest.(check bool)
    "bundle carries the hybrid table" true
    (built.Cogg.Tables.hybrid <> None);
  let cached, o2 = build_profiled () in
  check_origin "profiled entry hits" "hit" (origin_str o2);
  Alcotest.(check bool)
    "hybrid table survives the disk round-trip" true
    (cached.Cogg.Tables.hybrid = built.Cogg.Tables.hybrid);
  let _, o3 = build dir in
  check_origin "plain entry untouched" "hit" (origin_str o3);
  let a = generate built and b = generate cached in
  Alcotest.(check string)
    "profiled hit drives codegen identically" a.Cogg.Codegen.listing
    b.Cogg.Codegen.listing

let test_mode_is_part_of_key () =
  let dir = fresh_cache_dir () in
  let _, _ = build dir in
  match Cogg.Tables_cache.build_text ~mode:Cogg.Lookahead.Lalr ~cache_dir:dir
          intro_spec
  with
  | Ok (_, o) -> check_origin "lalr does not hit the slr entry" "built" (origin_str o)
  | Error es ->
      Alcotest.failf "lalr build failed: %a"
        (Fmt.list Cogg.Cogg_build.pp_error)
        es

(* -- size cap / eviction ------------------------------------------------------ *)

let variant i = intro_spec ^ Printf.sprintf "* cache-churn variant %d\n" i

let entry_count dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             String.length n > 9
             && String.sub n 0 5 = "cogg-"
             && Filename.check_suffix n ".cgt")
      |> List.length

let test_prune_enforces_cap () =
  let dir = fresh_cache_dir () in
  for i = 1 to 5 do
    ignore (build ~spec:(variant i) dir)
  done;
  Alcotest.(check int) "five distinct entries stored" 5 (entry_count dir);
  (* a cap above the population deletes nothing *)
  Alcotest.(check int)
    "roomy cap is a no-op" 0
    (Cogg.Tables_cache.prune ~cache_dir:dir ~max_entries:8 ());
  let evictions_before =
    (Cogg.Tables_cache.stats ()).Cogg.Tables_cache.evictions
  in
  Alcotest.(check int)
    "pruning to three deletes two" 2
    (Cogg.Tables_cache.prune ~cache_dir:dir ~max_entries:3 ());
  Alcotest.(check int) "three entries remain" 3 (entry_count dir);
  Alcotest.(check int)
    "eviction counter advanced" (evictions_before + 2)
    (Cogg.Tables_cache.stats ()).Cogg.Tables_cache.evictions;
  (* idempotent at the cap *)
  Alcotest.(check int)
    "already at the cap" 0
    (Cogg.Tables_cache.prune ~cache_dir:dir ~max_entries:3 ());
  (* survivors are valid entries: whichever variants remain still load *)
  let alive =
    List.filter
      (fun i ->
        Sys.file_exists
          (Cogg.Tables_cache.entry_path ~cache_dir:dir (variant i)))
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check int) "survivors are cache entries" 3 (List.length alive);
  List.iter
    (fun i ->
      let _, o = build ~spec:(variant i) dir in
      check_origin "survivor still hits" "hit" (origin_str o))
    alive

let test_store_auto_prunes () =
  (* every store runs the pruner with the env-configured cap, so a
     daemon churning through specs keeps its cache directory bounded *)
  let dir = fresh_cache_dir () in
  Unix.putenv "COGG_CACHE_MAX_ENTRIES" "2";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "COGG_CACHE_MAX_ENTRIES" "")
    (fun () ->
      for i = 1 to 4 do
        ignore (build ~spec:(variant i) dir)
      done;
      Alcotest.(check bool)
        (Fmt.str "directory stays within the cap (%d entries)"
           (entry_count dir))
        true
        (entry_count dir <= 2))

let () =
  Alcotest.run "tables_cache"
    [
      ( "cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
          Alcotest.test_case "hit drives codegen identically" `Quick
            test_hit_drives_codegen_identically;
          Alcotest.test_case "corrupt entry rebuilds" `Quick
            test_corrupt_entry_rebuilds;
          Alcotest.test_case "modified spec misses" `Quick
            test_modified_spec_misses;
          Alcotest.test_case "concurrent stores race safely" `Quick
            test_concurrent_store_same_entry;
          Alcotest.test_case "mode is part of the key" `Quick
            test_mode_is_part_of_key;
          Alcotest.test_case "profile is part of the key" `Quick
            test_profile_is_part_of_key;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "prune enforces the cap" `Quick
            test_prune_enforces_cap;
          Alcotest.test_case "store auto-prunes" `Quick test_store_auto_prunes;
        ] );
    ]
