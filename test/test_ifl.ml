(* Unit and property tests for the intermediate-form library: values,
   tokens, trees and the two textual syntaxes. *)

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* -- values ----------------------------------------------------------------- *)

let test_value_payloads () =
  check_int "int" 42 (Ifl.Value.to_int (Ifl.Value.Int 42));
  check_int "reg" 13 (Ifl.Value.to_int (Ifl.Value.Reg 13));
  check_int "label" 7 (Ifl.Value.to_int (Ifl.Value.Label 7));
  check_int "cse" 3 (Ifl.Value.to_int (Ifl.Value.Cse 3));
  check_int "cond" 8 (Ifl.Value.to_int (Ifl.Value.Cond 8));
  match Ifl.Value.to_int Ifl.Value.Unit with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Unit payload accepted"

let test_value_equal () =
  Alcotest.(check bool) "same" true Ifl.Value.(equal (Int 1) (Int 1));
  Alcotest.(check bool) "kind differs" false Ifl.Value.(equal (Int 1) (Reg 1));
  Alcotest.(check bool) "payload differs" false Ifl.Value.(equal (Reg 1) (Reg 2))

(* -- tokens ------------------------------------------------------------------ *)

let token_cases =
  [
    ("iadd", Ifl.Token.op "iadd");
    ("dsp:100", Ifl.Token.int "dsp" 100);
    ("dsp:-4", Ifl.Token.int "dsp" (-4));
    ("r:r13", Ifl.Token.reg "r" 13);
    ("lbl:L5", Ifl.Token.label "lbl" 5);
    ("cse:c2", Ifl.Token.cse "cse" 2);
    ("cond:m11", Ifl.Token.cond "cond" 11);
  ]

let test_token_parse () =
  List.iter
    (fun (text, expect) ->
      match Ifl.Token.of_string text with
      | Ok t ->
          Alcotest.(check bool)
            (text ^ " parses") true (Ifl.Token.equal t expect)
      | Error e -> Alcotest.failf "%s: %s" text e)
    token_cases

let test_token_print_parse_roundtrip () =
  List.iter
    (fun (_, tok) ->
      match Ifl.Token.of_string (Ifl.Token.to_string tok) with
      | Ok t ->
          Alcotest.(check bool)
            (Ifl.Token.to_string tok ^ " roundtrips")
            true (Ifl.Token.equal t tok)
      | Error e -> Alcotest.fail e)
    token_cases

let test_token_malformed () =
  List.iter
    (fun text ->
      match Ifl.Token.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S accepted" text)
    [ ":5"; "dsp:"; "dsp:x9"; "dsp:r"; "r:L"; "a:m" ]

(* -- trees -------------------------------------------------------------------- *)

let sample_tree =
  Ifl.Tree.node "store"
    [
      Ifl.Tree.node "word" [ Ifl.Tree.leaf ~value:(Ifl.Value.Int 8) "d" ];
      Ifl.Tree.node "iadd"
        [
          Ifl.Tree.node "word" [ Ifl.Tree.leaf ~value:(Ifl.Value.Int 8) "d" ];
          Ifl.Tree.node "word" [ Ifl.Tree.leaf ~value:(Ifl.Value.Int 12) "d" ];
        ];
    ]

let test_tree_size_and_linearize () =
  check_int "size" 8 (Ifl.Tree.size sample_tree);
  let toks = Ifl.Tree.linearize sample_tree in
  check_int "token count" 8 (List.length toks);
  check_str "prefix order"
    "store word d:8 iadd word d:8 word d:12"
    (String.concat " " (List.map Ifl.Token.to_string toks))

let test_linearize_program_order () =
  let t1 = Ifl.Tree.leaf "a" and t2 = Ifl.Tree.leaf "b" in
  let toks = Ifl.Tree.linearize_program [ t1; t2 ] in
  check_str "order" "a b"
    (String.concat " " (List.map Ifl.Token.to_string toks))

(* -- reader ------------------------------------------------------------------- *)

let test_reader_linear () =
  match Ifl.Reader.program_of_string "store word d:8 iadd word d:8 word d:12" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
      Alcotest.(check bool)
        "equals linearized tree" true
        (List.for_all2 Ifl.Token.equal toks (Ifl.Tree.linearize sample_tree))

let test_reader_tree_syntax () =
  match
    Ifl.Reader.program_of_string "(store (word d:8) (iadd (word d:8) (word d:12)))"
  with
  | Error e -> Alcotest.fail e
  | Ok toks ->
      Alcotest.(check bool)
        "sexp = linear" true
        (List.for_all2 Ifl.Token.equal toks (Ifl.Tree.linearize sample_tree))

let test_reader_comments () =
  match
    Ifl.Reader.program_of_string "* leading comment\nstore word d:8\n* trailing"
  with
  | Error e -> Alcotest.fail e
  | Ok toks -> check_int "comment lines ignored" 3 (List.length toks)

let test_reader_errors () =
  List.iter
    (fun text ->
      match Ifl.Reader.program_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S accepted" text)
    [ "(store"; "store)"; "(  )"; "(store d:)"; "a:b:c" ]

(* tree pretty-print parses back *)
let test_tree_pp_roundtrip () =
  let text = Ifl.Tree.to_string sample_tree in
  match Ifl.Reader.trees_of_string text with
  | Ok [ t ] ->
      Alcotest.(check bool) "pp roundtrips" true (Ifl.Tree.equal t sample_tree)
  | Ok _ -> Alcotest.fail "wrong arity"
  | Error e -> Alcotest.fail e

(* -- properties ----------------------------------------------------------------- *)

let gen_tree : Ifl.Tree.t QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ifl.Tree.Node (Ifl.Token.int "dsp" n, [])) (int_bound 4095);
        map (fun n -> Ifl.Tree.Node (Ifl.Token.reg "r" n, [])) (int_bound 15);
        return (Ifl.Tree.Node (Ifl.Token.op "leafop", []));
      ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 3,
            let* name = oneofl [ "iadd"; "isub"; "fullword"; "assign" ] in
            let* kids = list_size (int_range 1 3) (tree (depth - 1)) in
            return (Ifl.Tree.node name kids) );
        ]
  in
  tree 4

(* arbitrary tokens over every value tag, including negative ints; symbol
   names draw from the characters the textual syntax admits (no ':', no
   whitespace) *)
let gen_token : Ifl.Token.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* sym =
    string_size
      ~gen:(oneofl [ 'a'; 'k'; 'z'; 'A'; 'Z'; '0'; '9'; '_'; '.' ])
      (int_range 1 8)
  in
  let* value =
    oneof
      [
        return Ifl.Value.Unit;
        map (fun n -> Ifl.Value.Int n) (int_range (-5000) 5000);
        map (fun n -> Ifl.Value.Reg n) (int_bound 15);
        map (fun n -> Ifl.Value.Label n) (int_bound 500);
        map (fun n -> Ifl.Value.Cse n) (int_bound 50);
        map (fun n -> Ifl.Value.Cond n) (int_bound 15);
      ]
  in
  return (Ifl.Token.make ~value sym)

let prop_token_roundtrip =
  QCheck.Test.make ~count:500 ~name:"token to_string/of_string roundtrip"
    (QCheck.make gen_token ~print:Ifl.Token.to_string)
    (fun tok ->
      match Ifl.Token.of_string (Ifl.Token.to_string tok) with
      | Ok t -> Ifl.Token.equal t tok
      | Error _ -> false)

let prop_pp_roundtrip =
  QCheck.Test.make ~count:200 ~name:"tree pp/parse roundtrip"
    (QCheck.make gen_tree ~print:Ifl.Tree.to_string)
    (fun t ->
      match Ifl.Reader.trees_of_string (Ifl.Tree.to_string t) with
      | Ok [ t' ] -> Ifl.Tree.equal t t'
      | _ -> false)

let prop_linearize_size =
  QCheck.Test.make ~count:200 ~name:"linearize length = tree size"
    (QCheck.make gen_tree ~print:Ifl.Tree.to_string)
    (fun t -> List.length (Ifl.Tree.linearize t) = Ifl.Tree.size t)

let () =
  Alcotest.run "ifl"
    [
      ( "values",
        [
          Alcotest.test_case "payloads" `Quick test_value_payloads;
          Alcotest.test_case "equality" `Quick test_value_equal;
        ] );
      ( "tokens",
        [
          Alcotest.test_case "parse" `Quick test_token_parse;
          Alcotest.test_case "print/parse roundtrip" `Quick test_token_print_parse_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_token_malformed;
        ] );
      ( "trees",
        [
          Alcotest.test_case "size and linearize" `Quick test_tree_size_and_linearize;
          Alcotest.test_case "program order" `Quick test_linearize_program_order;
          Alcotest.test_case "pp roundtrip" `Quick test_tree_pp_roundtrip;
        ] );
      ( "reader",
        [
          Alcotest.test_case "linear syntax" `Quick test_reader_linear;
          Alcotest.test_case "tree syntax" `Quick test_reader_tree_syntax;
          Alcotest.test_case "comments" `Quick test_reader_comments;
          Alcotest.test_case "errors" `Quick test_reader_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_token_roundtrip; prop_pp_roundtrip; prop_linearize_size ] );
    ]
