(* The execution-profile format and the profile-guided specializer:
   capture, canonical (de)serialization, merging, and the central
   soundness properties of Compress.specialize — a uniform profile
   degrades to the unprofiled layout exactly, and any profile at all
   yields a table the verifier accepts. *)

let tables () = Lazy.force Util.amdahl_tables

let dims () =
  let t = tables () in
  ( Cogg.Parse_table.n_states t.Cogg.Tables.parse,
    Cogg.Grammar.n_prods t.Cogg.Tables.grammar )

(* a profile captured from one real compile *)
let captured () =
  let t = tables () in
  let n_states, n_prods = dims () in
  let pr = Cogg.Cogprof.create ~n_states ~n_prods in
  (match Pipeline.compile ~profile:pr t Pipeline.Programs.gcd with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "gcd failed to compile: %s" m);
  pr

(* -- capture ------------------------------------------------------------------ *)

let test_capture_counts () =
  let pr = captured () in
  Alcotest.(check bool) "not empty" false (Cogg.Cogprof.is_empty pr);
  Alcotest.(check bool)
    "visits accumulated" true
    (Cogg.Cogprof.total_visits pr > 0);
  Alcotest.(check bool)
    "fires accumulated" true
    (Cogg.Cogprof.total_fires pr > 0);
  (* capture is deterministic: same program, same counts *)
  let again = captured () in
  Alcotest.(check string)
    "two captures agree"
    (Cogg.Cogprof.to_string pr)
    (Cogg.Cogprof.to_string again)

(* -- (de)serialization -------------------------------------------------------- *)

let test_roundtrip () =
  let pr = captured () in
  (match Cogg.Cogprof.of_string (Cogg.Cogprof.to_string pr) with
  | Error m -> Alcotest.failf "canonical text did not re-read: %s" m
  | Ok back ->
      Alcotest.(check string)
        "text round-trip is exact"
        (Cogg.Cogprof.to_string pr)
        (Cogg.Cogprof.to_string back);
      Alcotest.(check string)
        "digest is stable" (Cogg.Cogprof.digest pr)
        (Cogg.Cogprof.digest back));
  let path = Filename.temp_file "cogprof-test" ".cogprof" in
  (match Cogg.Cogprof.save path pr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save failed: %s" m);
  (match Cogg.Cogprof.load path with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok back ->
      Alcotest.(check string)
        "file round-trip is exact"
        (Cogg.Cogprof.to_string pr)
        (Cogg.Cogprof.to_string back));
  Sys.remove path

let test_empty_roundtrip () =
  let n_states, n_prods = dims () in
  let pr = Cogg.Cogprof.create ~n_states ~n_prods in
  Alcotest.(check bool) "empty" true (Cogg.Cogprof.is_empty pr);
  match Cogg.Cogprof.of_string (Cogg.Cogprof.to_string pr) with
  | Error m -> Alcotest.failf "empty profile did not re-read: %s" m
  | Ok back ->
      Alcotest.(check bool) "still empty" true (Cogg.Cogprof.is_empty back);
      Alcotest.(check int)
        "dimensions preserved" n_states
        (Cogg.Cogprof.n_states back)

let test_version_mismatch_rejected () =
  let n_states, n_prods = dims () in
  let text = Cogg.Cogprof.to_string (Cogg.Cogprof.create ~n_states ~n_prods) in
  let bumped =
    let v = string_of_int Cogg.Cogprof.version in
    let prefix = "cogprof " ^ v in
    if String.length text < String.length prefix then
      Alcotest.fail "unexpected header"
    else
      "cogprof 9999"
      ^ String.sub text (String.length prefix)
          (String.length text - String.length prefix)
  in
  match Cogg.Cogprof.of_string bumped with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error m ->
      Alcotest.(check bool)
        (Fmt.str "error names the version (%s)" m)
        true
        (Util.contains m "version")

(* -- merging ------------------------------------------------------------------ *)

let test_merge_disjoint_sums () =
  let n_states, n_prods = dims () in
  let a = Cogg.Cogprof.create ~n_states ~n_prods in
  let b = Cogg.Cogprof.create ~n_states ~n_prods in
  Cogg.Cogprof.visit a 0;
  Cogg.Cogprof.visit a 0;
  Cogg.Cogprof.fire a 1;
  Cogg.Cogprof.visit b (n_states - 1);
  Cogg.Cogprof.fire b (n_prods - 1);
  match Cogg.Cogprof.merge a b with
  | Error m -> Alcotest.failf "same-shape merge failed: %s" m
  | Ok m ->
      Alcotest.(check int) "visits sum" 3 (Cogg.Cogprof.total_visits m);
      Alcotest.(check int) "fires sum" 2 (Cogg.Cogprof.total_fires m);
      Alcotest.(check int)
        "disjoint cells land intact" 1
        m.Cogg.Cogprof.state_visits.(n_states - 1);
      Alcotest.(check int) "summed cell" 2 m.Cogg.Cogprof.state_visits.(0)

let test_merge_shape_mismatch () =
  let n_states, n_prods = dims () in
  let a = Cogg.Cogprof.create ~n_states ~n_prods in
  let b = Cogg.Cogprof.create ~n_states:(n_states + 1) ~n_prods in
  match Cogg.Cogprof.merge a b with
  | Ok _ -> Alcotest.fail "mismatched shapes merged"
  | Error _ -> ()

(* -- specialization soundness -------------------------------------------------- *)

let test_uniform_profile_is_dispatch_equivalent () =
  (* specializing with the all-ones profile must agree with the
     unprofiled comb table at every single (state, symbol) cell: the
     frequency weighting ties everywhere and the deterministic
     tie-breaking falls back to the static choice *)
  let t = tables () in
  let pt = t.Cogg.Tables.parse in
  let n_states, n_prods = dims () in
  let comb = t.Cogg.Tables.compressed in
  let hybrid =
    Cogg.Compress.specialize
      ~profile:(Cogg.Cogprof.uniform ~n_states ~n_prods)
      pt
  in
  let n_syms = comb.Cogg.Compress.n_syms in
  let mismatches = ref 0 in
  for s = 0 to n_states - 1 do
    for sym = 0 to n_syms - 1 do
      if
        Cogg.Compress.action_code comb s sym
        <> Cogg.Compress.action_code hybrid s sym
      then incr mismatches
    done
  done;
  Alcotest.(check int) "identical at every cell" 0 !mismatches

let test_specialized_verifies () =
  (* whatever the profile says — skewed, sparse, or captured — the
     specialized table must still reproduce the original modulo default
     reductions, and hybrid dispatch must match comb cell-for-cell *)
  let t = tables () in
  let pt = t.Cogg.Tables.parse in
  let comb = t.Cogg.Tables.compressed in
  let n_syms = comb.Cogg.Compress.n_syms in
  let n_states, n_prods = dims () in
  let gen =
    QCheck.Gen.(
      pair
        (array_size (return n_states) (frequency [ (4, return 0); (1, int_bound 10_000) ]))
        (array_size (return n_prods) (frequency [ (4, return 0); (1, int_bound 10_000) ])))
  in
  let prop (state_visits, prod_fires) =
    let pr = { Cogg.Cogprof.state_visits; prod_fires } in
    let c = Cogg.Compress.specialize ~profile:pr pt in
    (match Cogg.Compress.verify c pt with
    | Ok _ -> ()
    | Error e -> QCheck.Test.fail_reportf "verify rejected: %s" e);
    (* hybrid never changes which action a live cell yields vs its own
       comb fallback semantics: compare against the unprofiled comb on
       all non-default cells via the original table *)
    for s = 0 to n_states - 1 do
      for sym = 0 to n_syms - 1 do
        let orig = Cogg.Parse_table.action pt s sym in
        if orig <> Cogg.Parse_table.Error then
          if
            Cogg.Compress.action_code c s sym
            <> Cogg.Compress.encode_action orig
          then
            QCheck.Test.fail_reportf
              "live cell (%d, %d) diverges from the original" s sym
      done
    done;
    true
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12
       ~name:"random profiles specialize soundly"
       (QCheck.make gen ~print:(fun _ -> "profile"))
       prop)

(* -- hot sets and drift ------------------------------------------------------- *)

let test_hot_set () =
  let n_states, n_prods = dims () in
  let pr = Cogg.Cogprof.create ~n_states ~n_prods in
  for _ = 1 to 5 do Cogg.Cogprof.visit pr 3 done;
  for _ = 1 to 2 do Cogg.Cogprof.visit pr 1 done;
  Cogg.Cogprof.visit pr 7;
  Cogg.Cogprof.visit pr 2;
  Alcotest.(check (list int)) "top two by heat" [ 3; 1 ]
    (Cogg.Cogprof.hot_set ~k:2 pr);
  Alcotest.(check (list int))
    "ties break by state id, unvisited states excluded" [ 3; 1; 2; 7 ]
    (Cogg.Cogprof.hot_set ~k:100 pr);
  Alcotest.(check (list int)) "k = 0 is empty" [] (Cogg.Cogprof.hot_set ~k:0 pr)

let test_hot_overlap () =
  let n_states, n_prods = dims () in
  let mk visits =
    let pr = Cogg.Cogprof.create ~n_states ~n_prods in
    List.iter (fun s -> Cogg.Cogprof.visit pr s) visits;
    pr
  in
  let a = mk [ 0; 1; 2 ] and b = mk [ 3; 4; 5 ] and c = mk [ 0; 1; 2 ] in
  Alcotest.(check (float 1e-9)) "identical sets" 1.0
    (Cogg.Cogprof.hot_overlap ~k:8 a c);
  Alcotest.(check (float 1e-9)) "disjoint sets" 0.0
    (Cogg.Cogprof.hot_overlap ~k:8 a b);
  Alcotest.(check (float 1e-9)) "both empty counts as no drift" 1.0
    (Cogg.Cogprof.hot_overlap ~k:8 (mk []) (mk []));
  (* {0,1,2} vs {1,2,3}: intersection 2, union 4 *)
  Alcotest.(check (float 1e-9)) "partial overlap is Jaccard" 0.5
    (Cogg.Cogprof.hot_overlap ~k:8 a (mk [ 1; 2; 3 ]))

(* -- adaptive hot_k under a size budget --------------------------------------- *)

let hot_count (c : Cogg.Compress.t) =
  Array.fold_left
    (fun acc o -> if o >= 0 then acc + 1 else acc)
    0 c.Cogg.Compress.hot_index

let test_budget_respected () =
  let t = tables () in
  let pt = t.Cogg.Tables.parse in
  let pr = captured () in
  let comb = t.Cogg.Tables.compressed in
  let budget = comb.Cogg.Compress.size_bytes * 110 / 100 in
  let c = Cogg.Compress.specialize ~size_budget:budget ~profile:pr pt in
  Alcotest.(check bool)
    (Fmt.str "laid-out size %d fits the budget %d" c.Cogg.Compress.size_bytes
       budget)
    true
    (c.Cogg.Compress.size_bytes <= budget);
  Alcotest.(check bool) "some states promoted" true (hot_count c > 0);
  match Cogg.Compress.verify c pt with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "budgeted layout failed verification: %s" e

let test_budget_extremes () =
  let t = tables () in
  let pt = t.Cogg.Tables.parse in
  let pr = captured () in
  (* a budget nothing fits in: the zero-hot floor is still returned and
     still correct *)
  let floor = Cogg.Compress.specialize ~size_budget:0 ~profile:pr pt in
  Alcotest.(check int) "tiny budget promotes nothing" 0 (hot_count floor);
  (match Cogg.Compress.verify floor pt with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "floor layout failed verification: %s" e);
  (* an unbounded budget promotes every visited state *)
  let ceiling = Cogg.Compress.specialize ~size_budget:max_int ~profile:pr pt in
  let visited =
    List.length (Cogg.Cogprof.hot_set ~k:(Cogg.Cogprof.n_states pr) pr)
  in
  Alcotest.(check int) "huge budget promotes all visited states" visited
    (hot_count ceiling);
  match Cogg.Compress.verify ceiling pt with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ceiling layout failed verification: %s" e

let test_explicit_hot_k_wins () =
  let t = tables () in
  let pt = t.Cogg.Tables.parse in
  let pr = captured () in
  (* an explicit hot_k overrides the budget entirely *)
  let c = Cogg.Compress.specialize ~hot_k:4 ~size_budget:0 ~profile:pr pt in
  Alcotest.(check int) "exactly the requested promotions" 4 (hot_count c);
  let default = Cogg.Compress.specialize ~profile:pr pt in
  let explicit =
    Cogg.Compress.specialize ~hot_k:Cogg.Compress.default_hot_k ~profile:pr pt
  in
  Alcotest.(check int)
    "no arguments means default_hot_k" (hot_count explicit) (hot_count default)

let () =
  Alcotest.run "cogprof"
    [
      ( "capture",
        [ Alcotest.test_case "counts accumulate" `Quick test_capture_counts ] );
      ( "format",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "empty round-trip" `Quick test_empty_roundtrip;
          Alcotest.test_case "version mismatch rejected" `Quick
            test_version_mismatch_rejected;
        ] );
      ( "merge",
        [
          Alcotest.test_case "disjoint merges sum" `Quick
            test_merge_disjoint_sums;
          Alcotest.test_case "shape mismatch rejected" `Quick
            test_merge_shape_mismatch;
        ] );
      ( "specialize",
        [
          Alcotest.test_case "uniform profile is dispatch-equivalent" `Quick
            test_uniform_profile_is_dispatch_equivalent;
          test_specialized_verifies ();
        ] );
      ( "hot sets",
        [
          Alcotest.test_case "hot_set ranks by heat" `Quick test_hot_set;
          Alcotest.test_case "hot_overlap is Jaccard" `Quick test_hot_overlap;
        ] );
      ( "size budget",
        [
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "extreme budgets" `Quick test_budget_extremes;
          Alcotest.test_case "explicit hot_k wins" `Quick
            test_explicit_hot_k_wins;
        ] );
    ]
