(* Shared test helpers: locating spec files and running generated code. *)

let rec find_up ?(depth = 6) dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up ~depth:(depth - 1) (Filename.dirname dir) rel

let spec_path name =
  match find_up (Sys.getcwd ()) (Filename.concat "specs" name) with
  | Some p -> p
  | None -> Alcotest.failf "cannot locate specs/%s from %s" name (Sys.getcwd ())

let amdahl_tables : Cogg.Tables.t Lazy.t =
  lazy
    (match Cogg.Cogg_build.build_file (spec_path "amdahl470.cgg") with
    | Ok t -> t
    | Error es ->
        Alcotest.failf "amdahl470.cgg failed to build: %a"
          (Fmt.list Cogg.Cogg_build.pp_error)
          es)

(* The same bundle with a hybrid (profile-specialized) table attached.
   The profile is captured by compiling the example corpus once, so the
   hot rows reflect real reduction traffic rather than a synthetic
   uniform weighting. *)
let amdahl_tables_hybrid : Cogg.Tables.t Lazy.t =
  lazy
    (let base = Lazy.force amdahl_tables in
     let pr =
       Cogg.Cogprof.create
         ~n_states:(Cogg.Parse_table.n_states base.Cogg.Tables.parse)
         ~n_prods:(Cogg.Grammar.n_prods base.Cogg.Tables.grammar)
     in
     List.iter
       (fun (_, src) -> ignore (Pipeline.compile ~profile:pr base src))
       Pipeline.Programs.all;
     match
       Cogg.Cogg_build.build_file ~profile:pr (spec_path "amdahl470.cgg")
     with
     | Ok t when t.Cogg.Tables.hybrid <> None -> t
     | Ok _ -> Alcotest.fail "profiled build produced no hybrid table"
     | Error es ->
         Alcotest.failf "amdahl470.cgg failed to build with profile: %a"
           (Fmt.list Cogg.Cogg_build.pp_error)
           es)

(* The second backend, built from its own spec against the RISC-32
   substrate.  Frame discipline and PSA layout are shared with the
   Amdahl target, so the same helpers read its results. *)
let risc32_tables : Cogg.Tables.t Lazy.t =
  lazy
    (match
       Cogg.Cogg_build.build_file
         ~target:(Machine.Targets.find_exn "risc32")
         (spec_path "risc32.cgg")
     with
    | Ok t -> t
    | Error es ->
        Alcotest.failf "risc32.cgg failed to build: %a"
          (Fmt.list Cogg.Cogg_build.pp_error)
          es)

(* Local variable displacements within the frame. *)
let local n = Machine.Runtime.locals_base + (4 * n)

type run = {
  sim : Machine.Sim.t;
  frame : int;
  outcome : Machine.Runtime.outcome;
  genresult : Cogg.Codegen.result_t;
}

(* Generate code for an IF program (textual syntax), boot it, initialize
   locals ([slot, value] pairs against the main frame), run, and return
   the machine.  The simulator and trap set come from the bundle's own
   target, so the same helper drives both backends. *)
let compile_and_run ?(layout = Machine.Runtime.default_layout) ?strategy
    ?(locals = []) ?(floats = []) (tables : Cogg.Tables.t) (if_text : string)
    : run =
  let tgt = tables.Cogg.Tables.target in
  match Cogg.Codegen.generate_string ?strategy tables if_text with
  | Error m -> Alcotest.failf "codegen failed: %s" m
  | Ok genresult -> (
      match tgt.Machine.Target.boot ~layout genresult.Cogg.Codegen.objmod with
      | Error m -> Alcotest.failf "boot failed: %s" m
      | Ok (sim, entry) -> (
          let frame = Machine.Runtime.main_frame layout in
          List.iter
            (fun (slot, v) -> Machine.Sim.store_w sim (frame + local slot) v)
            locals;
          List.iter
            (fun (slot, v) ->
              Machine.Sim.store_f64 sim (frame + local slot) v)
            floats;
          match tgt.Machine.Target.run ~layout sim ~entry with
          | Error m ->
              Alcotest.failf "execution failed: %s\nlisting:\n%s" m
                genresult.Cogg.Codegen.listing
          | Ok outcome -> { sim; frame; outcome; genresult }))

let read_local run slot = Machine.Sim.load_w run.sim (run.frame + local slot)
let read_byte run slot = Machine.Sim.load_u8 run.sim (run.frame + local slot)
let read_half run slot = Machine.Sim.load_h run.sim (run.frame + local slot)

let contains (haystack : string) (needle : string) : bool =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0
