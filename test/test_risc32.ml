(* Tests of the RISC-32 specification and substrate, mirroring the
   Amdahl 470 suite: the same IF idioms, verified by executing the
   generated code on the RISC-32 interpreter — plus the substrate's own
   encode/decode and simulator-semantics checks (r0 hardwired to zero,
   cc set only by compares, load widths, ftoi truncation) and the
   pc-relative answer to the page-boundary problem. *)

let check_int = Alcotest.(check int)

let tables () = Lazy.force Util.risc32_tables

let prog body = "procedure_entry " ^ body ^ " procedure_exit"
let d n = string_of_int (Util.local n)

let run ?strategy ?locals ?floats body =
  Util.compile_and_run ?strategy ?locals ?floats (tables ()) (prog body)

(* -- instruction encoding ----------------------------------------------------- *)

(* one of each format; every instruction must survive encode/decode *)
let sample_insns : Machine.Insn.t list =
  [
    Machine.Insn.R3 { op = "add"; rd = 1; rs1 = 2; rs2 = 3 };
    Machine.Insn.R3 { op = "fmul"; rd = 4; rs1 = 5; rs2 = 6 };
    Machine.Insn.R2 { op = "mov"; rd = 7; rs = 8 };
    Machine.Insn.R2 { op = "cmp"; rd = 1; rs = 2 };
    Machine.Insn.Ri { op = "addi"; rd = 3; rs = 4; imm = 1234 };
    Machine.Insn.Ri { op = "srai"; rd = 5; rs = 5; imm = 31 };
    Machine.Insn.Li { op = "li"; rd = 6; imm = 4095 };
    Machine.Insn.Li { op = "cmpi"; rd = 2; imm = 0 };
    Machine.Insn.Mem { op = "lw"; rd = 9; dsp = 104; rb = 13 };
    Machine.Insn.Mem { op = "jl"; rd = 14; dsp = 292; rb = 10 };
    Machine.Insn.Bcc { mask = 8; rel = -16 };
  ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun i ->
      let b = Machine.Encode.encode i in
      check_int "every RISC-32 instruction is 4 bytes" 4 (Bytes.length b);
      let back, sz = Machine.Encode.decode_r32 b 0 in
      check_int "decoded size" 4 sz;
      Alcotest.(check string)
        "roundtrip"
        (Machine.Insn.to_string i)
        (Machine.Insn.to_string back))
    sample_insns

let test_encode_stream () =
  (* a whole stream decodes back instruction by instruction *)
  let buf = Machine.Encode.encode_all sample_insns in
  let pos = ref 0 in
  List.iter
    (fun i ->
      let back, sz = Machine.Encode.decode_r32 buf !pos in
      pos := !pos + sz;
      Alcotest.(check string)
        "stream round-trip"
        (Machine.Insn.to_string i)
        (Machine.Insn.to_string back))
    sample_insns;
  check_int "stream length" (4 * List.length sample_insns) !pos

let test_encode_bounds () =
  (* a displacement outside the signed 16-bit immediate must be refused
     by the encoder, never silently truncated *)
  match
    Machine.Encode.encode
      (Machine.Insn.Mem { op = "lw"; rd = 1; dsp = 40000; rb = 13 })
  with
  | exception Machine.Encode.Encode_error _ -> ()
  | _ -> Alcotest.fail "out-of-range displacement encoded"

(* -- simulator semantics ------------------------------------------------------ *)

(* hand-load instructions at 0x100 and step them directly *)
let sim_with (insns : Machine.Insn.t list) : Machine.Sim.t =
  let code = Machine.Encode.encode_all insns in
  let sim = Machine.Sim.create ~mem_size:(1 lsl 16) ~halt_addr:0 () in
  Bytes.blit code 0 sim.Machine.Sim.mem 0x100 (Bytes.length code);
  sim.Machine.Sim.pc <- 0x100;
  sim

let steps sim n =
  for _ = 1 to n do
    Machine.Risc32.step sim
  done

let test_r0_hardwired_zero () =
  let sim =
    sim_with
      [
        Machine.Insn.Li { op = "li"; rd = 0; imm = 55 };
        Machine.Insn.R3 { op = "add"; rd = 1; rs1 = 0; rs2 = 0 };
      ]
  in
  Machine.Sim.set_reg sim 1 99;
  steps sim 2;
  check_int "write to r0 discarded, reads yield 0" 0 (Machine.Sim.reg sim 1)

let test_cc_only_from_compares () =
  (* the boolean-store templates interleave li/skip with a live cc: li,
     mov and the ALU ops must leave the condition code alone *)
  let sim =
    sim_with
      [
        Machine.Insn.Li { op = "cmpi"; rd = 1; imm = 10 };
        Machine.Insn.Li { op = "li"; rd = 2; imm = 7 };
        Machine.Insn.R3 { op = "add"; rd = 3; rs1 = 2; rs2 = 2 };
        Machine.Insn.R2 { op = "mov"; rd = 4; rs = 2 };
      ]
  in
  Machine.Sim.set_reg sim 1 3;
  steps sim 1;
  let cc_after_compare = sim.Machine.Sim.cc in
  steps sim 3;
  check_int "li/add/mov preserve cc" cc_after_compare sim.Machine.Sim.cc;
  Alcotest.(check bool)
    "compare really set something" true
    (cc_after_compare = 1 (* 3 < 10 *))

let test_load_widths () =
  (* lb zero-extends, lh sign-extends: the byte 0x80 is 128, the
     halfword 0x8000 is -32768 *)
  let sim =
    sim_with
      [
        Machine.Insn.Mem { op = "lb"; rd = 1; dsp = 0x200; rb = 0 };
        Machine.Insn.Mem { op = "lh"; rd = 2; dsp = 0x200; rb = 0 };
      ]
  in
  Machine.Sim.store_h sim 0x200 0x8000;
  steps sim 2;
  check_int "lb zero-extends" 0x80 (Machine.Sim.reg sim 1);
  check_int "lh sign-extends" (-32768) (Machine.Sim.reg sim 2)

let test_ftoi_truncates () =
  let sim = sim_with [ Machine.Insn.R2 { op = "ftoi"; rd = 1; rs = 2 } ] in
  sim.Machine.Sim.fregs.(2) <- -2.75;
  steps sim 1;
  check_int "truncation toward zero" (-2) (Machine.Sim.reg sim 1)

(* -- straight-line arithmetic -------------------------------------------------- *)

let test_add () =
  let r =
    run
      ~locals:[ (0, 7); (1, 35) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13"
         (d 0) (d 0) (d 1))
  in
  check_int "sum" 42 (Util.read_local r 0)

let test_mult_div_mod () =
  let r =
    run
      ~locals:[ (1, 17); (2, -3); (4, -100); (5, 7) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 imult fullword dsp:%s r:13 fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 idiv fullword dsp:%s r:13 fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 imod fullword dsp:%s r:13 fullword dsp:%s r:13"
         (d 0) (d 1) (d 2) (d 3) (d 4) (d 5) (d 6) (d 4) (d 5))
  in
  check_int "product" (-51) (Util.read_local r 0);
  check_int "quotient truncates toward zero" (-14) (Util.read_local r 3);
  check_int "remainder" (-2) (Util.read_local r 6)

let test_nested_expression () =
  let r =
    run
      ~locals:[ (1, 6); (2, 7); (3, 100); (4, 9); (5, 31) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 imod iadd imult fullword dsp:%s r:13 \
          fullword dsp:%s r:13 idiv fullword dsp:%s r:13 fullword dsp:%s \
          r:13 fullword dsp:%s r:13"
         (d 0) (d 1) (d 2) (d 3) (d 4) (d 5))
  in
  check_int "((6*7)+(100/9)) mod 31" (((6 * 7) + (100 / 9)) mod 31)
    (Util.read_local r 0)

let test_unaries () =
  (* x0 := abs(x1 - x2) exercises the srai/xor/sub branch-free idiom *)
  let r =
    run
      ~locals:[ (1, 10); (2, 25); (4, 9); (6, 4); (7, 11) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 iabs isub fullword dsp:%s r:13 fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 ineg fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 imax fullword dsp:%s r:13 fullword dsp:%s r:13"
         (d 0) (d 1) (d 2) (d 3) (d 4) (d 5) (d 6) (d 7))
  in
  check_int "abs" 15 (Util.read_local r 0);
  check_int "neg" (-9) (Util.read_local r 3);
  check_int "max" 11 (Util.read_local r 5);
  Alcotest.(check bool)
    "abs is the branch-free srai idiom" true
    (Util.contains r.Util.genresult.Cogg.Codegen.listing "srai")

let test_incr_decr () =
  let r =
    run
      ~locals:[ (1, 50); (3, 99) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 decr fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 incr fullword dsp:%s r:13"
         (d 0) (d 1) (d 2) (d 3))
  in
  check_int "decrement" 49 (Util.read_local r 0);
  check_int "increment" 100 (Util.read_local r 2);
  Alcotest.(check bool)
    "decrement is subi" true
    (Util.contains r.Util.genresult.Cogg.Codegen.listing "subi")

let test_shifts_and_constants () =
  let r =
    run
      ~locals:[ (1, 5); (3, -64) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 iadd l_shift fullword dsp:%s r:13 v:2 v:4095 \
          assign fullword dsp:%s r:13 r_shift fullword dsp:%s r:13 v:3 \
          assign fullword dsp:%s r:13 neg_constant v:17"
         (d 0) (d 1) (d 2) (d 3) (d 4))
  in
  check_int "shift-add" ((5 lsl 2) + 4095) (Util.read_local r 0);
  check_int "arithmetic right shift" (-8) (Util.read_local r 2);
  check_int "negative constant" (-17) (Util.read_local r 4)

let test_halfword_values () =
  let lay = Machine.Runtime.default_layout in
  let t = tables () in
  match
    Cogg.Codegen.generate_string t
      (prog
         (Printf.sprintf
            "assign hlfword dsp:%s r:13 iadd hlfword dsp:%s r:13 hlfword dsp:%s r:13"
            (d 0) (d 1) (d 2)))
  with
  | Error m -> Alcotest.fail m
  | Ok g -> (
      match Machine.Risc32.boot ~layout:lay g.Cogg.Codegen.objmod with
      | Error m -> Alcotest.fail m
      | Ok (sim, entry) -> (
          let frame = Machine.Runtime.main_frame lay in
          Machine.Sim.store_h sim (frame + Util.local 1) (-300);
          Machine.Sim.store_h sim (frame + Util.local 2) 512;
          match Machine.Risc32.run ~layout:lay sim ~entry with
          | Error m -> Alcotest.fail m
          | Ok _ ->
              check_int "halfword sum" 212
                (Machine.Sim.load_h sim (frame + Util.local 0))))

(* -- control flow -------------------------------------------------------------- *)

let if_less_prog =
  Printf.sprintf
    "branch_op lbl:1 cond:m11 icompare fullword dsp:%s r:13 fullword dsp:%s r:13 \
     assign fullword dsp:%s r:13 pos_constant v:1 \
     branch_op lbl:2 \
     label_def lbl:1 \
     assign fullword dsp:%s r:13 pos_constant v:2 \
     label_def lbl:2"
    (d 1) (d 2) (d 0) (d 0)

let test_branch_taken () =
  let r = run ~locals:[ (1, 3); (2, 9) ] if_less_prog in
  check_int "then branch" 1 (Util.read_local r 0)

let test_branch_not_taken () =
  let r = run ~locals:[ (1, 9); (2, 3) ] if_less_prog in
  check_int "else branch" 2 (Util.read_local r 0)

let test_loop_sums () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 pos_constant v:0 \
       label_def lbl:1 \
       branch_op lbl:2 cond:m8 icompare fullword dsp:%s r:13 pos_constant v:0 \
       assign fullword dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13 \
       assign fullword dsp:%s r:13 decr fullword dsp:%s r:13 \
       branch_op lbl:1 \
       label_def lbl:2"
      (d 0) (d 1) (d 0) (d 0) (d 1) (d 1) (d 1)
  in
  let r = run ~locals:[ (1, 5) ] body in
  check_int "1+2+3+4+5" 15 (Util.read_local r 0)

let test_case_branch_table () =
  let body sel =
    Printf.sprintf
      "assign fullword dsp:%s r:13 pos_constant v:%d \
       case_index lbl:9 fullword dsp:%s r:13 \
       label_def lbl:9 \
       label_index lbl:1 \
       label_index lbl:2 \
       label_index lbl:3 \
       label_def lbl:1 \
       assign fullword dsp:%s r:13 pos_constant v:10 \
       branch_op lbl:8 \
       label_def lbl:2 \
       assign fullword dsp:%s r:13 pos_constant v:20 \
       branch_op lbl:8 \
       label_def lbl:3 \
       assign fullword dsp:%s r:13 pos_constant v:30 \
       branch_op lbl:8 \
       label_def lbl:8"
      (d 1) sel (d 1) (d 0) (d 0) (d 0)
  in
  List.iter
    (fun sel ->
      let r = run (body sel) in
      check_int (Printf.sprintf "case %d" sel) (10 * (sel + 1))
        (Util.read_local r 0))
    [ 0; 1; 2 ]

(* -- booleans ------------------------------------------------------------------- *)

let test_boolean_assign_from_cc () =
  let body =
    Printf.sprintf
      "assign byteword dsp:%s r:13 cond:m11 icompare fullword dsp:%s r:13 fullword dsp:%s r:13"
      (d 0) (d 1) (d 2)
  in
  let r1 = run ~locals:[ (1, 3); (2, 9) ] body in
  check_int "3 < 9 is true" 1 (Util.read_byte r1 0);
  let r2 = run ~locals:[ (1, 9); (2, 3) ] body in
  check_int "9 < 3 is false" 0 (Util.read_byte r2 0);
  let body2 =
    Printf.sprintf
      "assign byteword dsp:%s r:13 boolean_test byteword dsp:%s r:13"
      (d 0) (d 3)
  in
  let r3 = run ~locals:[ (3, 1 lsl 24) ] body2 in
  check_int "true boolean copied" 1 (Util.read_byte r3 0);
  let r4 = run ~locals:[ (3, 0) ] body2 in
  check_int "false boolean copied" 0 (Util.read_byte r4 0)

let test_boolean_memory_and () =
  let body =
    Printf.sprintf
      "assign byteword dsp:%s r:13 boolean_and byteword dsp:%s r:13 byteword dsp:%s r:13"
      (d 0) (d 1) (d 2)
  in
  let cases = [ (0, 0, 0); (0, 1, 0); (1, 0, 0); (1, 1, 1) ] in
  List.iter
    (fun (a, b, expect) ->
      let r = run ~locals:[ (1, a lsl 24); (2, b lsl 24) ] body in
      check_int (Printf.sprintf "%d and %d" a b) expect (Util.read_byte r 0))
    cases

let test_boolean_or_register () =
  let body =
    Printf.sprintf
      "assign byteword dsp:%s r:13 boolean_or cond:m11 icompare fullword \
       dsp:%s r:13 fullword dsp:%s r:13 byteword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3)
  in
  let check a b flag expect =
    let r = run ~locals:[ (1, a); (2, b); (3, flag lsl 24) ] body in
    check_int
      (Printf.sprintf "(%d<%d) or %d" a b flag)
      expect (Util.read_byte r 0)
  in
  check 1 2 0 1;
  check 2 1 1 1;
  check 2 1 0 0

let test_boolean_not () =
  let body =
    Printf.sprintf
      "assign byteword dsp:%s r:13 boolean_not byteword dsp:%s r:13"
      (d 0) (d 1)
  in
  let r = run ~locals:[ (1, 1 lsl 24) ] body in
  check_int "not true" 0 (Util.read_byte r 0);
  let r = run ~locals:[ (1, 0) ] body in
  check_int "not false" 1 (Util.read_byte r 0)

(* -- sets ------------------------------------------------------------------------ *)

let test_bit_set_and_test () =
  let body =
    Printf.sprintf
      "set_bit_value addr dsp:%s r:13 elmnt:16 \
       assign byteword dsp:%s r:13 test_bit_value addr dsp:%s r:13 elmnt:16"
      (d 1) (d 0) (d 1)
  in
  let r = run body in
  check_int "bit present after set" 1 (Util.read_byte r 0);
  check_int "set byte" 0x10 (Util.read_byte r 1)

let test_bit_variable_element () =
  let body =
    Printf.sprintf
      "set_bit_value addr dsp:%s r:13 fullword dsp:%s r:13 \
       assign byteword dsp:%s r:13 test_bit_value addr dsp:%s r:13 fullword dsp:%s r:13"
      (d 2) (d 1) (d 0) (d 2) (d 1)
  in
  List.iter
    (fun k ->
      let r = run ~locals:[ (1, k) ] body in
      check_int (Printf.sprintf "bit %d" k) 1 (Util.read_byte r 0))
    [ 0; 5; 9; 14 ]

let test_clear_bit () =
  let body =
    Printf.sprintf "clear_bit_value addr dsp:%s r:13 elmnt:239" (d 1)
  in
  let r = run ~locals:[ (1, 0xFFFFFFFF) ] body in
  check_int "cleared" 0xEF (Util.read_byte r 1)

let test_word_set_ops () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 set_intersect set_union fullword dsp:%s \
       r:13 fullword dsp:%s r:13 set_difference fullword dsp:%s r:13 \
       fullword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3) (d 4)
  in
  let r =
    run ~locals:[ (1, 0b1100); (2, 0b0011); (3, 0b1010); (4, 0b0010) ] body
  in
  check_int "set algebra" (0b1111 land (0b1010 land lnot 0b0010))
    (Util.read_local r 0)

(* -- checks ---------------------------------------------------------------------- *)

let test_range_check () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 range_check fullword dsp:%s r:13 fullword \
       dsp:%s r:13 fullword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3)
  in
  let ok = run ~locals:[ (1, 5); (2, 1); (3, 10) ] body in
  Alcotest.(check (option string))
    "no abort" None ok.Util.outcome.Machine.Runtime.aborted;
  check_int "value through" 5 (Util.read_local ok 0);
  let bad = run ~locals:[ (1, 50); (2, 1); (3, 10) ] body in
  Alcotest.(check (option string))
    "aborted" (Some "range overflow") bad.Util.outcome.Machine.Runtime.aborted

let test_uninit_check () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 uninit_check fullword dsp:%s r:13" (d 0)
      (d 1)
  in
  let ok = run ~locals:[ (1, 42) ] body in
  Alcotest.(check (option string))
    "initialized" None ok.Util.outcome.Machine.Runtime.aborted;
  let bad = run ~locals:[ (1, Machine.Runtime.uninit_pattern) ] body in
  Alcotest.(check bool)
    "uninitialized detected" true
    (bad.Util.outcome.Machine.Runtime.aborted <> None)

let test_abort_op () =
  let r = run "abort_op errno:9" in
  Alcotest.(check bool)
    "aborted with code" true
    (match r.Util.outcome.Machine.Runtime.aborted with
    | Some m -> m = "program abort (code 9)"
    | None -> false)

(* -- reals ----------------------------------------------------------------------- *)

let test_real_arithmetic () =
  let body =
    Printf.sprintf
      "assign dblrealword dsp:%s r:13 rmult radd dblrealword dsp:%s r:13 \
       dblrealword dsp:%s r:13 dblrealword dsp:%s r:13"
      (d 0) (d 2) (d 4) (d 6)
  in
  let r = run ~floats:[ (2, 1.5); (4, 2.25); (6, 4.0) ] body in
  Alcotest.(check (float 1e-9))
    "(1.5+2.25)*4" 15.0
    (Machine.Sim.load_f64 r.Util.sim (r.Util.frame + Util.local 0))

let test_int_real_conversion () =
  let body =
    Printf.sprintf
      "assign dblrealword dsp:%s r:13 halve s_x_cnvrt fullword dsp:%s r:13 \
       assign fullword dsp:%s r:13 x_s_cnvrt dblrealword dsp:%s r:13"
      (d 0) (d 2) (d 3) (d 0)
  in
  let r = run ~locals:[ (2, -25) ] ~floats:[] body in
  Alcotest.(check (float 1e-9))
    "int->real then halve" (-12.5)
    (Machine.Sim.load_f64 r.Util.sim (r.Util.frame + Util.local 0));
  check_int "real->int truncation" (-12) (Util.read_local r 3)

(* -- block moves (through the blockmove trap, not mvc) --------------------------- *)

let test_block_assign () =
  let body =
    Printf.sprintf "assign addr dsp:%s r:13 addr dsp:%s r:13 lng:8" (d 0) (d 2)
  in
  let r = run ~locals:[ (2, 0x01020304); (3, 0x05060708) ] body in
  check_int "first word copied" 0x01020304 (Util.read_local r 0);
  check_int "second word copied" 0x05060708 (Util.read_local r 1)

let test_long_assign () =
  let body =
    Printf.sprintf
      "long_assign addr dsp:%s r:13 addr dsp:%s r:13 lng:8" (d 0) (d 2)
  in
  let r = run ~locals:[ (2, 123456); (3, -99) ] body in
  check_int "word 1" 123456 (Util.read_local r 0);
  check_int "word 2" (-99) (Util.read_local r 1)

(* -- the page boundary, pc-relatively --------------------------------------------- *)

let test_branch_over_page_stays_fixed_width () =
  (* the Amdahl target must widen a branch crossing the 4096-byte page
     into the long form; RISC-32 branches are fixed-width pc-relative,
     so the identical program crosses the page with n_long = 0 and no
     literal pool fixpoint *)
  let filler =
    List.init 400 (fun _ ->
        Printf.sprintf
          "assign fullword dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13"
          (d 4) (d 4) (d 5))
    |> String.concat " "
  in
  let body =
    Printf.sprintf
      "branch_op lbl:1 %s label_def lbl:1 assign fullword dsp:%s r:13 pos_constant v:77"
      filler (d 0)
  in
  let r = run ~locals:[ (4, 0); (5, 1) ] body in
  check_int "branch skipped the filler" 0 (Util.read_local r 4);
  check_int "target reached" 77 (Util.read_local r 0);
  check_int "no long-form rewrites on a pc-relative target" 0
    r.Util.genresult.Cogg.Codegen.resolved.Cogg.Loader_gen.n_long;
  Alcotest.(check bool)
    "the code really crossed the page" true
    (Bytes.length r.Util.genresult.Cogg.Codegen.resolved.Cogg.Loader_gen.code
    > 4096)

(* -- allocation strategies -------------------------------------------------------- *)

let test_strategies_agree () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 imod iadd imult fullword dsp:%s r:13 \
       fullword dsp:%s r:13 idiv fullword dsp:%s r:13 fullword dsp:%s r:13 \
       fullword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3) (d 4) (d 5)
  in
  let expect = ((6 * 7) + (100 / 9)) mod 31 in
  List.iter
    (fun strategy ->
      let r =
        run ~strategy
          ~locals:[ (1, 6); (2, 7); (3, 100); (4, 9); (5, 31) ]
          body
      in
      check_int
        (Cogg.Regalloc.strategy_name strategy)
        expect (Util.read_local r 0))
    Cogg.Regalloc.[ Lru; Round_robin; First_free ]

(* -- CSE --------------------------------------------------------------------------- *)

let test_cse_register_reuse () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 imult make_common cse:c1 cnt:1 fullword \
       dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13 use_common cse:c1"
      (d 0) (d 9) (d 1) (d 2)
  in
  let r = run ~locals:[ (1, 6); (2, 7) ] body in
  check_int "(6+7)^2" 169 (Util.read_local r 0)

(* -- the full corpus, on the second backend ---------------------------------------- *)

let test_corpus_verifies () =
  (* every canonical program compiles for RISC-32 and the machine run
     agrees with the reference interpreter — the backend-level version
     of the cross-backend differential oracle *)
  let t = tables () in
  List.iter
    (fun (name, src) ->
      match Pipeline.verify t src with
      | Ok v ->
          Alcotest.(check bool) (name ^ " on risc32") true v.Pipeline.agreed
      | Error m -> Alcotest.failf "%s: %s" name m)
    Pipeline.Programs.all

let () =
  Alcotest.run "risc32"
    [
      ( "encode",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "stream" `Quick test_encode_stream;
          Alcotest.test_case "bounds" `Quick test_encode_bounds;
        ] );
      ( "sim",
        [
          Alcotest.test_case "r0 hardwired zero" `Quick test_r0_hardwired_zero;
          Alcotest.test_case "cc only from compares" `Quick
            test_cc_only_from_compares;
          Alcotest.test_case "load widths" `Quick test_load_widths;
          Alcotest.test_case "ftoi truncates" `Quick test_ftoi_truncates;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "mult/div/mod" `Quick test_mult_div_mod;
          Alcotest.test_case "nested expression" `Quick test_nested_expression;
          Alcotest.test_case "unaries" `Quick test_unaries;
          Alcotest.test_case "incr/decr" `Quick test_incr_decr;
          Alcotest.test_case "shifts and constants" `Quick
            test_shifts_and_constants;
          Alcotest.test_case "halfword values" `Quick test_halfword_values;
        ] );
      ( "control",
        [
          Alcotest.test_case "branch taken" `Quick test_branch_taken;
          Alcotest.test_case "branch not taken" `Quick test_branch_not_taken;
          Alcotest.test_case "loop" `Quick test_loop_sums;
          Alcotest.test_case "case branch table" `Quick test_case_branch_table;
        ] );
      ( "booleans",
        [
          Alcotest.test_case "assign from cc" `Quick
            test_boolean_assign_from_cc;
          Alcotest.test_case "memory and" `Quick test_boolean_memory_and;
          Alcotest.test_case "or with register" `Quick
            test_boolean_or_register;
          Alcotest.test_case "not" `Quick test_boolean_not;
        ] );
      ( "sets",
        [
          Alcotest.test_case "bit set and test" `Quick test_bit_set_and_test;
          Alcotest.test_case "variable element" `Quick
            test_bit_variable_element;
          Alcotest.test_case "clear bit" `Quick test_clear_bit;
          Alcotest.test_case "word set ops" `Quick test_word_set_ops;
        ] );
      ( "checks",
        [
          Alcotest.test_case "range check" `Quick test_range_check;
          Alcotest.test_case "uninit check" `Quick test_uninit_check;
          Alcotest.test_case "abort op" `Quick test_abort_op;
        ] );
      ( "reals",
        [
          Alcotest.test_case "real arithmetic" `Quick test_real_arithmetic;
          Alcotest.test_case "conversions" `Quick test_int_real_conversion;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "block assign" `Quick test_block_assign;
          Alcotest.test_case "long assign" `Quick test_long_assign;
        ] );
      ( "spans",
        [
          Alcotest.test_case "page crossing stays fixed-width" `Quick
            test_branch_over_page_stays_fixed_width;
        ] );
      ( "misc",
        [
          Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
          Alcotest.test_case "cse register reuse" `Quick
            test_cse_register_reuse;
          Alcotest.test_case "corpus verifies" `Quick test_corpus_verifies;
        ] );
    ]
