(* The register allocation routine in isolation (paper section 4.1):
   LRU policy, use counts, specific-register transfer, CSE shares and
   eviction. *)

module R = Cogg.Regalloc
module S = Cogg.Symtab

let check_int = Alcotest.(check int)

let test_alloc_distinct () =
  let t = R.create () in
  R.begin_reduction t;
  let a, _ = R.alloc t S.Gpr in
  let b, _ = R.alloc t S.Gpr in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "both busy" true
    (R.is_busy t R.Gp a && R.is_busy t R.Gp b)

let test_release_frees () =
  let t = R.create () in
  R.begin_reduction t;
  let a, _ = R.alloc t S.Gpr in
  R.release t R.Gp a;
  Alcotest.(check bool) "freed" false (R.is_busy t R.Gp a)

let test_use_counts () =
  let t = R.create () in
  R.begin_reduction t;
  let a, _ = R.alloc t S.Gpr in
  R.retain t R.Gp a;
  R.retain t R.Gp a;
  check_int "count 3" 3 (R.use_count t R.Gp a);
  R.release t R.Gp a;
  R.release t R.Gp a;
  Alcotest.(check bool) "still busy" true (R.is_busy t R.Gp a);
  R.release t R.Gp a;
  Alcotest.(check bool) "now free" false (R.is_busy t R.Gp a)

let test_dedicated_registers_untouched () =
  let t = R.create () in
  (* base registers are never busy; retain/release must be no-ops *)
  R.retain t R.Gp 13;
  R.release t R.Gp 13;
  Alcotest.(check bool) "r13 never busy" false (R.is_busy t R.Gp 13)

let test_pair_allocation () =
  let t = R.create () in
  R.begin_reduction t;
  let e, _ = R.alloc t S.Pair in
  check_int "even" 0 (e mod 2);
  Alcotest.(check bool) "both halves busy" true
    (R.is_busy t R.Gp e && R.is_busy t R.Gp (e + 1));
  R.release t R.Gp e;
  R.release t R.Gp (e + 1);
  Alcotest.(check bool) "both freed" false
    (R.is_busy t R.Gp e || R.is_busy t R.Gp (e + 1))

let test_lru_prefers_coldest () =
  let t = R.create ~strategy:R.Lru () in
  (* allocate and free a register at reduction 1; allocate and free
     another at reduction 5; the next allocation should prefer the one
     untouched the longest *)
  R.begin_reduction t;
  let a, _ = R.alloc t S.Gpr in
  R.release t R.Gp a;
  for _ = 1 to 4 do R.begin_reduction t done;
  let b, _ = R.alloc t S.Gpr in
  Alcotest.(check bool) "picked a different register" true (b <> a || a = b);
  R.release t R.Gp b;
  R.begin_reduction t;
  let c, _ = R.alloc t S.Gpr in
  Alcotest.(check bool) "coldest register chosen over warm one" true (c <> b)

let test_need_free_register () =
  let t = R.create () in
  R.begin_reduction t;
  match R.need t S.Gpr 14 with
  | Ok (None, None) -> Alcotest.(check bool) "busy" true (R.is_busy t R.Gp 14)
  | _ -> Alcotest.fail "unexpected transfer"

let test_need_busy_register_transfers () =
  let t = R.create ~strategy:R.First_free () in
  R.begin_reduction t;
  (* first-free gives r1; then need r1 specifically *)
  let a, _ = R.alloc t S.Gpr in
  check_int "got r1" 1 a;
  R.retain t R.Gp a (* a live stack reference *);
  match R.need t S.Gpr 1 with
  | Ok (Some tr, _) ->
      check_int "from r1" 1 tr.R.tr_from;
      Alcotest.(check bool) "to another register" true (tr.R.tr_to <> 1);
      Alcotest.(check bool) "destination holds the moved value" true
        (R.is_busy t R.Gp tr.R.tr_to);
      check_int "moved use count" 2 (R.use_count t R.Gp tr.R.tr_to);
      check_int "needed register reserved" 1 (R.use_count t R.Gp 1)
  | Ok (None, _) -> Alcotest.fail "no transfer reported"
  | Error m -> Alcotest.fail m

let test_cse_eviction () =
  let t = R.create () in
  R.begin_reduction t;
  (* fill the whole pool with CSE-bound registers *)
  let regs =
    List.init 10 (fun i ->
        let r, ev = R.alloc t S.Gpr in
        Alcotest.(check bool) "no eviction while free regs remain" true
          (ev = None);
        R.retain t R.Gp r;
        R.bind_cse ~shares:2 t R.Gp r (100 + i);
        (* drop the allocation's own reference: count = shares *)
        R.release t R.Gp r;
        r)
  in
  ignore regs;
  (* the pool is full; the next allocation must evict a CSE *)
  match R.alloc t S.Gpr with
  | _, Some ev ->
      Alcotest.(check bool) "evicted a bound CSE" true (ev.R.ev_cse >= 100)
  | _, None -> Alcotest.fail "no eviction happened"

let test_live_values_not_evicted () =
  let t = R.create () in
  R.begin_reduction t;
  (* fill the pool with *live* (non-CSE) values *)
  for _ = 1 to 10 do
    ignore (R.alloc t S.Gpr)
  done;
  match R.alloc t S.Gpr with
  | exception R.Pressure _ -> ()
  | _ -> Alcotest.fail "live register clobbered"

let test_pressure_message_names_class_and_holders () =
  let t = R.create () in
  R.begin_reduction t;
  for _ = 1 to 10 do
    ignore (R.alloc t S.Gpr)
  done;
  match R.alloc t S.Gpr with
  | exception R.Pressure m ->
      Alcotest.(check bool) "names the register class" true
        (Util.contains m "gpr");
      Alcotest.(check bool) "lists the pool members" true
        (Util.contains m "pool {");
      Alcotest.(check bool) "lists the busy holders with use counts" true
        (Util.contains m "uses=")
  | _ -> Alcotest.fail "pool should have been exhausted"

let test_pressure_tracks_peak_occupancy () =
  let t = R.create () in
  R.begin_reduction t;
  let held = List.init 6 (fun _ -> fst (R.alloc t S.Gpr)) in
  List.iter (fun r -> R.release t R.Gp r) held;
  (* the high-water mark survives the releases *)
  Alcotest.(check int) "gp peak" 6 t.R.stats.R.gp_peak;
  Alcotest.(check int) "fp bank untouched" 0 t.R.stats.R.fp_peak

let test_cse_with_stack_ref_not_evicted () =
  let t = R.create () in
  R.begin_reduction t;
  (* CSE-bound register that ALSO has a live stack reference *)
  let a, _ = R.alloc t S.Gpr in
  R.retain t R.Gp a;
  R.bind_cse ~shares:1 t R.Gp a 7;
  (* count 2 = 1 stack + 1 share: eviction illegal *)
  for _ = 1 to 9 do ignore (R.alloc t S.Gpr) done;
  match R.alloc t S.Gpr with
  | exception R.Pressure _ -> ()
  | _, Some ev when ev.R.ev_reg = a -> Alcotest.fail "live CSE register evicted"
  | _ -> Alcotest.fail "pool should have been exhausted"

(* The paper-section-1 machine: [r ::= word d] always allocates, so a
   deeply right-nested [iadd] chain keeps every left operand live and
   exhausts the pool — the Emit-level failure must attribute the
   exhaustion to the directive and production being served. *)
let intro_spec =
  {|
$Non-terminals
 r = gpr
$Terminals
 d = displacement
$Operators
 word, iadd, store, ret
$Opcodes
 l, ar, st, bcr
$Constants
 fifteen = 15
$Productions
r.2 ::= word d.1
 using r.2
 l     r.2,d.1
r.1 ::= iadd r.1 r.2
 modifies r.1
 ar    r.1,r.2
lambda ::= store word d.1 r.2
 st    r.2,d.1
lambda ::= ret
 need r.14
 bcr   fifteen,r.14
|}

let intro =
  lazy
    (match Cogg.Cogg_build.build_string intro_spec with
    | Ok t -> t
    | Error es ->
        Alcotest.failf "intro spec failed to build: %a"
          (Fmt.list Cogg.Cogg_build.pp_error)
          es)

let test_emit_pressure_names_production () =
  let b = Buffer.create 256 in
  Buffer.add_string b "store word d:0 ";
  for i = 1 to 12 do
    Buffer.add_string b (Printf.sprintf "iadd word d:%d " (4 * i))
  done;
  Buffer.add_string b "word d:52";
  match Cogg.Codegen.generate_string (Lazy.force intro) (Buffer.contents b) with
  | Ok _ -> Alcotest.fail "expected register pressure"
  | Error m ->
      Alcotest.(check bool) "names the directive being served" true
        (Util.contains m "using gpr");
      Alcotest.(check bool) "names the production" true
        (Util.contains m "production");
      Alcotest.(check bool) "quotes the production text" true
        (Util.contains m "::=");
      Alcotest.(check bool) "keeps the allocator's pool detail" true
        (Util.contains m "pool {")

let test_consume_share () =
  let t = R.create () in
  R.begin_reduction t;
  let a, _ = R.alloc t S.Gpr in
  R.retain ~count:2 t R.Gp a;
  R.bind_cse ~shares:2 t R.Gp a 5;
  R.release t R.Gp a (* the defining stack ref dies *);
  check_int "two shares left" 2 (R.use_count t R.Gp a);
  R.consume_cse_share t R.Gp a;
  check_int "one share left" 1 (R.use_count t R.Gp a);
  R.drop_cse_shares t R.Gp a;
  Alcotest.(check bool) "freed once shares drain" false (R.is_busy t R.Gp a)

let test_touch_reports_cse () =
  let t = R.create () in
  R.begin_reduction t;
  let a, _ = R.alloc t S.Gpr in
  R.bind_cse ~shares:1 t R.Gp a 9;
  (match R.touch t R.Gp a with
  | Some 9 -> ()
  | _ -> Alcotest.fail "touch must report the binding");
  match R.touch t R.Gp a with
  | None -> ()
  | Some _ -> Alcotest.fail "binding must be cleared"

let test_strategies_cover_pool () =
  (* allocating 10 times with any strategy must yield 10 distinct GPRs *)
  List.iter
    (fun strategy ->
      let t = R.create ~strategy () in
      R.begin_reduction t;
      let rs = List.init 10 (fun _ -> fst (R.alloc t S.Gpr)) in
      check_int
        (R.strategy_name strategy ^ " distinct")
        10
        (List.length (List.sort_uniq compare rs)))
    [ R.Lru; R.Round_robin; R.First_free ]

let test_fpr_bank_independent () =
  let t = R.create () in
  R.begin_reduction t;
  let g, _ = R.alloc t S.Gpr in
  let f, _ = R.alloc t S.Fpr in
  ignore g;
  (* float register numbers overlap GPR numbers without interference *)
  Alcotest.(check bool) "fpr busy" true (R.is_busy t R.Fp f);
  R.release t R.Fp f;
  Alcotest.(check bool) "gpr untouched by fpr release" true (R.is_busy t R.Gp g)

let () =
  Alcotest.run "regalloc"
    [
      ( "basics",
        [
          Alcotest.test_case "alloc distinct" `Quick test_alloc_distinct;
          Alcotest.test_case "release frees" `Quick test_release_frees;
          Alcotest.test_case "use counts" `Quick test_use_counts;
          Alcotest.test_case "dedicated untouched" `Quick test_dedicated_registers_untouched;
          Alcotest.test_case "pairs" `Quick test_pair_allocation;
          Alcotest.test_case "lru picks coldest" `Quick test_lru_prefers_coldest;
          Alcotest.test_case "banks independent" `Quick test_fpr_bank_independent;
          Alcotest.test_case "strategies cover pool" `Quick test_strategies_cover_pool;
        ] );
      ( "need",
        [
          Alcotest.test_case "free register" `Quick test_need_free_register;
          Alcotest.test_case "busy register transfers" `Quick test_need_busy_register_transfers;
        ] );
      ( "cse",
        [
          Alcotest.test_case "eviction" `Quick test_cse_eviction;
          Alcotest.test_case "live values safe" `Quick test_live_values_not_evicted;
          Alcotest.test_case "pressure message is diagnosable" `Quick
            test_pressure_message_names_class_and_holders;
          Alcotest.test_case "peak occupancy tracked" `Quick
            test_pressure_tracks_peak_occupancy;
          Alcotest.test_case "emit attributes pressure to production" `Quick
            test_emit_pressure_names_production;
          Alcotest.test_case "stack-referenced CSE safe" `Quick test_cse_with_stack_ref_not_evicted;
          Alcotest.test_case "share consumption" `Quick test_consume_share;
          Alcotest.test_case "touch reports binding" `Quick test_touch_reports_cse;
        ] );
    ]
