(* The fuzzing subsystem's own suite, and the fixed-seed smoke batch
   behind the @fuzz-smoke alias.

   COGG_FUZZ_SEED / COGG_FUZZ_COUNT override the smoke batch for longer
   local runs:
     COGG_FUZZ_SEED=99 COGG_FUZZ_COUNT=2000 dune build @fuzz-smoke *)

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let smoke_seed () = env_int "COGG_FUZZ_SEED" 11
let smoke_count () = env_int "COGG_FUZZ_COUNT" 64

(* the smoke batch runs against the hybrid-carrying bundle so the
   dispatch oracle cross-checks all three variants (flat, comb, hybrid)
   and the totality sweep probes the hybrid path too *)
let tables () = Lazy.force Util.amdahl_tables_hybrid

(* -- the deterministic RNG --------------------------------------------------- *)

let test_rng_replayable () =
  (* same (seed, index) -> same stream, forever: pin a few draws *)
  let draws seed index =
    let r = Fuzz.Rng.derive ~seed ~index in
    List.init 5 (fun _ -> Fuzz.Rng.int r 1000)
  in
  Alcotest.(check (list int)) "derive is stable" (draws 42 7) (draws 42 7);
  Alcotest.(check bool)
    "neighbouring cases decorrelate" true
    (draws 42 7 <> draws 42 8);
  Alcotest.(check bool) "seeds decorrelate" true (draws 42 7 <> draws 43 7)

let test_rng_bounds () =
  let r = Fuzz.Rng.create 5 in
  for _ = 1 to 1000 do
    let n = Fuzz.Rng.int r 7 in
    if n < 0 || n >= 7 then Alcotest.failf "int out of bound: %d" n;
    let m = Fuzz.Rng.range r (-3) 3 in
    if m < -3 || m > 3 then Alcotest.failf "range out of bound: %d" m
  done

(* -- generators produce valid inputs ----------------------------------------- *)

let test_pascal_generator_wellformed () =
  (* every generated program must lex, parse, type-check and terminate
     in the reference interpreter: the exec oracle's soundness rests on
     this *)
  for i = 0 to 49 do
    let rng = Fuzz.Rng.derive ~seed:1234 ~index:i in
    let src = Fuzz.Gen_pascal.source rng (Fuzz.Profile.rotate i) in
    match Pascal.Sema.front_end src with
    | Error m -> Alcotest.failf "seed 1234 case %d ill-formed: %s\n%s" i m src
    | Ok checked -> (
        match Pascal.Interp.run checked with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "seed 1234 case %d does not terminate: %a\n%s" i
              Pascal.Interp.pp_error e src)
  done

let test_if_generator_parses () =
  (* well-formed streams are in the machine grammar's language; the only
     tolerated rejection is the allocator's documented capacity limit *)
  let t = tables () in
  let ok = ref 0 in
  for i = 0 to 29 do
    let rng = Fuzz.Rng.derive ~seed:77 ~index:i in
    let toks = Fuzz.Gen_if.program rng in
    match Cogg.Codegen.generate t toks with
    | Ok _ -> incr ok
    | Error (Cogg.Codegen.Emit_failure m)
      when Fuzz.Oracle.is_capacity_limit m ->
        ()
    | Error e ->
        Alcotest.failf "seed 77 case %d rejected: %a\n%s" i
          Cogg.Codegen.pp_error e
          (Fuzz.Gen_if.to_text toks)
  done;
  Alcotest.(check bool)
    (Fmt.str "most streams compile (%d/30)" !ok)
    true (!ok >= 20)

let test_if_text_roundtrip () =
  for i = 0 to 19 do
    let rng = Fuzz.Rng.derive ~seed:31 ~index:i in
    let toks = Fuzz.Gen_if.program rng in
    match Ifl.Reader.program_of_string (Fuzz.Gen_if.to_text toks) with
    | Error m -> Alcotest.failf "case %d does not re-read: %s" i m
    | Ok back ->
        Alcotest.(check bool)
          (Fmt.str "case %d round-trips" i)
          true
          (List.equal Ifl.Token.equal toks back)
  done

let test_branch_heavy_reaches_long_branches () =
  (* the Branches size class must actually cross the 4096-byte page so
     span-dependent sizing and the literal pool are on the fuzzed path *)
  let t = tables () in
  let hit = ref false in
  let i = ref 0 in
  while (not !hit) && !i < 10 do
    let rng = Fuzz.Rng.derive ~seed:13 ~index:!i in
    let toks = Fuzz.Gen_if.program ~branch_heavy:true rng in
    (match Cogg.Codegen.generate t toks with
    | Ok r ->
        if r.Cogg.Codegen.resolved.Cogg.Loader_gen.n_long > 0 then hit := true
    | Error _ -> ());
    incr i
  done;
  Alcotest.(check bool) "some branch-heavy stream forces long form" true !hit

(* -- the shrinker ------------------------------------------------------------- *)

let test_shrinker_greedy_minimum () =
  (* generic descent: minimizing "contains an element >= 100" over a
     list must land on a single offending element *)
  let test xs = List.exists (fun x -> x >= 100) xs in
  let min_list =
    Fuzz.Shrink.minimize ~candidates:Fuzz.Shrink.list_candidates ~test
      [ 1; 2; 300; 4; 5; 600; 7; 8 ]
  in
  Alcotest.(check bool) "still failing" true (test min_list);
  Alcotest.(check int) "one element" 1 (List.length min_list)

let test_shrinker_preserves_failure () =
  (* shrunken programs stay well-formed enough to re-run the oracle:
     minimize under a synthetic "mentions while" failure *)
  let rng = Fuzz.Rng.derive ~seed:2024 ~index:3 in
  let p = Fuzz.Gen_pascal.program ~size:14 rng Fuzz.Profile.Branches in
  let test src = Util.contains src "while" in
  if test (Fuzz.Gen_pascal.render p) then begin
    let small = Fuzz.Shrink.minimize_program ~test p in
    let src = Fuzz.Gen_pascal.render small in
    Alcotest.(check bool) "minimized still fails" true (test src);
    Alcotest.(check bool)
      "minimized is no larger" true
      (String.length src <= String.length (Fuzz.Gen_pascal.render p))
  end

let test_exec_oracle_chr_regression () =
  (* fuzzer-minimized finding (seed 19, case 4): interp masked chr to
     the low byte, compiled code compared the raw ordinal — "global r1
     differs".  With range-checked chr the program is erroneous, so the
     exec oracle must Skip it (reference rejection), never Fail. *)
  let src =
    "program p; var r1 : real; begin if chr(sqr(-563)) >= 'q' then begin \
     end else r1 := 6.63 end."
  in
  match Fuzz.Oracle.exec (tables ()) src with
  | Fuzz.Oracle.Skip _ -> ()
  | st ->
      Alcotest.failf "expected skip, got %a" Fuzz.Oracle.pp_status st

(* -- the smoke batch: N cases x 3 oracles ------------------------------------- *)

let smoke_config () =
  {
    Fuzz.Runner.default_config with
    Fuzz.Runner.seed = smoke_seed ();
    count = smoke_count ();
    jobs = 4;
    spec = Some (Util.spec_path "amdahl470.cgg");
    cache_dir = Some "_fuzz_cache";
    (* every Pascal case also compiles and runs on the second backend;
       the cross-backend oracle demands identical observable output *)
    cross = Some (Lazy.force Util.risc32_tables);
  }

let test_smoke () =
  let report = Fuzz.Runner.run (tables ()) (smoke_config ()) in
  List.iter
    (fun (f : Fuzz.Runner.finding) ->
      Fmt.epr "finding: seed %d case %d oracle %s: %a@.%s@."
        (smoke_seed ()) f.Fuzz.Runner.f_index f.Fuzz.Runner.f_oracle
        Fuzz.Oracle.pp_status f.Fuzz.Runner.f_status f.Fuzz.Runner.f_repro)
    report.Fuzz.Runner.r_findings;
  Alcotest.(check int)
    (Fmt.str "zero findings across %d cases (seed %d)" (smoke_count ())
       (smoke_seed ()))
    0
    (List.length report.Fuzz.Runner.r_findings);
  (* the batch-level determinism check ran and agreed *)
  match report.Fuzz.Runner.r_batch with
  | Some (Ok _) -> ()
  | Some (Error m) -> Alcotest.failf "batch check failed: %s" m
  | None -> Alcotest.fail "batch check did not run"

let test_malformed_sweep () =
  (* >= 1000 mutated IF streams: every pipeline answer must be a
     structured Error, never an escaping exception *)
  let count = max 1000 (smoke_count ()) in
  let report =
    Fuzz.Runner.run (tables ())
      {
        Fuzz.Runner.default_config with
        Fuzz.Runner.seed = smoke_seed () + 1;
        count;
        malformed = true;
      }
  in
  List.iter
    (fun (f : Fuzz.Runner.finding) ->
      Fmt.epr "finding: case %d oracle %s: %a@.%s@." f.Fuzz.Runner.f_index
        f.Fuzz.Runner.f_oracle Fuzz.Oracle.pp_status f.Fuzz.Runner.f_status
        f.Fuzz.Runner.f_repro)
    report.Fuzz.Runner.r_findings;
  Alcotest.(check int)
    (Fmt.str "only structured errors across %d mutants" count)
    0
    (List.length report.Fuzz.Runner.r_findings)

(* -- the guided leg: feedback must not lose to blind sampling ------------------ *)

let guided_budget = 96

let guided_report =
  lazy
    (Fuzz.Runner.run_guided (tables ())
       {
         Fuzz.Runner.default_guided with
         Fuzz.Runner.g_seed = smoke_seed ();
         g_budget = guided_budget;
         g_jobs = 2;
         g_oracles = true;
         g_cross = Some (Lazy.force Util.risc32_tables);
       })

let test_guided_smoke () =
  let g = Lazy.force guided_report in
  List.iter
    (fun (f : Fuzz.Runner.guided_finding) ->
      Fmt.epr "finding: %s oracle %s: %a@.%s@."
        (Fuzz.Runner.replay_line f.Fuzz.Runner.gf_lineage)
        f.Fuzz.Runner.gf_oracle Fuzz.Oracle.pp_status f.Fuzz.Runner.gf_status
        f.Fuzz.Runner.gf_repro)
    g.Fuzz.Runner.g_findings;
  Alcotest.(check int)
    (Fmt.str "zero findings across %d guided cases" guided_budget)
    0
    (List.length g.Fuzz.Runner.g_findings);
  Alcotest.(check int) "exact budget" guided_budget g.Fuzz.Runner.g_cases;
  (* coverage must be at least the random baseline at the same case
     count (the strict > bar at the full 512 budget lives in @guided) *)
  let rc =
    Fuzz.Runner.random_coverage (tables ()) ~seed:(smoke_seed ())
      ~count:guided_budget
  in
  let gc = g.Fuzz.Runner.g_covmap in
  Alcotest.(check bool)
    (Fmt.str "guided productions %d >= random %d"
       (Fuzz.Covmap.prods_covered gc)
       (Fuzz.Covmap.prods_covered rc))
    true
    (Fuzz.Covmap.prods_covered gc >= Fuzz.Covmap.prods_covered rc);
  Alcotest.(check bool)
    (Fmt.str "guided bigrams %d >= random %d"
       (Fuzz.Covmap.bigrams_covered gc)
       (Fuzz.Covmap.bigrams_covered rc))
    true
    (Fuzz.Covmap.bigrams_covered gc >= Fuzz.Covmap.bigrams_covered rc)

(* -- replay lineage: the printed line IS the seed ------------------------------ *)

let verdicts t ~cross input =
  List.map
    (fun (name, check) -> (name, Fmt.str "%a" Fuzz.Oracle.pp_status (check input)))
    (Fuzz.Runner.oracles_for t
       { Fuzz.Runner.default_config with Fuzz.Runner.cross = Some cross }
       input)

let test_replay_lineage_property () =
  let t = tables () in
  let cross = Lazy.force Util.risc32_tables in
  let g = Lazy.force guided_report in
  let kept = Array.of_list g.Fuzz.Runner.g_kept in
  Alcotest.(check bool) "kept pool nonempty" true (Array.length kept > 0);
  let prop i =
    let k = kept.(i mod Array.length kept) in
    let line = Fuzz.Runner.replay_line k.Fuzz.Runner.k_lineage in
    match Fuzz.Runner.replay t ~cross line with
    | Error m -> QCheck.Test.fail_reportf "replay %s failed: %s" line m
    | Ok (input, replayed) ->
        if
          Fuzz.Runner.render_input input
          <> Fuzz.Runner.render_input k.Fuzz.Runner.k_input
        then
          QCheck.Test.fail_reportf "replay %s: different input bytes" line;
        let replayed =
          List.map
            (fun (n, st) -> (n, Fmt.str "%a" Fuzz.Oracle.pp_status st))
            replayed
        in
        let direct = verdicts t ~cross k.Fuzz.Runner.k_input in
        if replayed <> direct then
          QCheck.Test.fail_reportf
            "replay %s: verdicts diverge (%s vs %s)" line
            (String.concat ", " (List.map (fun (n, s) -> n ^ ":" ^ s) replayed))
            (String.concat ", " (List.map (fun (n, s) -> n ^ ":" ^ s) direct));
        true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:40
       ~name:"kept replay lines reproduce bytes and verdicts"
       QCheck.small_nat prop)

let () =
  Alcotest.run "fuzz"
    [
      ( "rng",
        [
          Alcotest.test_case "replayable" `Quick test_rng_replayable;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
        ] );
      ( "generators",
        [
          Alcotest.test_case "pascal programs are well-formed" `Quick
            test_pascal_generator_wellformed;
          Alcotest.test_case "IF streams parse" `Quick test_if_generator_parses;
          Alcotest.test_case "IF text round-trips" `Quick test_if_text_roundtrip;
          Alcotest.test_case "branch-heavy forces long branches" `Quick
            test_branch_heavy_reaches_long_branches;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "greedy minimum" `Quick test_shrinker_greedy_minimum;
          Alcotest.test_case "preserves the failure" `Quick
            test_shrinker_preserves_failure;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "chr finding stays fixed" `Quick
            test_exec_oracle_chr_regression;
          Alcotest.test_case "fixed-seed batch, both targets" `Quick
            test_smoke;
          Alcotest.test_case "malformed sweep is total" `Quick
            test_malformed_sweep;
          Alcotest.test_case "guided leg, coverage >= random" `Quick
            test_guided_smoke;
          Alcotest.test_case "replay lineage property" `Quick
            test_replay_lineage_property;
        ] );
    ]
