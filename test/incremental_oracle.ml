(* The incremental-construction oracle (DESIGN.md §12).

   Random single-production edits — template tweaks, production
   duplication, production removal — are applied textually to both real
   specs, and the incremental rebuild (spliced from the previous build
   of the unedited spec) must be byte-identical to a from-scratch build
   of the edited text.  When an edit makes the spec invalid, both paths
   must report the same errors.  The @incremental alias runs this
   executable at COGG_JOBS=1 and COGG_JOBS=max, so the guarantee covers
   any worker count, the same discipline the batch determinism suite
   established for parallel builds.

   Also here: the v4->v5 bundle-format gate (a stale-format cache entry
   is rejected as corrupt and migrated by a clean rebuild) and the
   cross-process cache path (a miss on an edited spec follows the
   lineage pointer and splices). *)

let jobs () =
  match Sys.getenv_opt "COGG_JOBS" with
  | Some "max" -> max 2 (Domain.recommended_domain_count ())
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

let rec find_up ?(depth = 6) dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up ~depth:(depth - 1) (Filename.dirname dir) rel

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spec_text name =
  match find_up (Sys.getcwd ()) (Filename.concat "specs" name) with
  | Some p -> read_file p
  | None -> failwith ("cannot locate specs/" ^ name)

let fail fmt = Fmt.kstr failwith fmt

(* -- textual spec surgery ----------------------------------------------------

   Edits are applied to the raw text, exactly as a spec author would
   make them, so line numbers shift and the oracle exercises the
   line-independence of the content hashes. *)

let lines_of text = String.split_on_char '\n' text
let text_of lines = String.concat "\n" lines

let is_header line =
  String.length line > 0
  && (not (List.mem line.[0] [ ' '; '\t'; '*'; '$' ]))
  &&
  let rec has_prod i =
    i + 3 <= String.length line
    && (String.sub line i 3 = "::=" || has_prod (i + 1))
  in
  has_prod 0

(* (start, length) of every production block: a left-aligned [lhs ::= rhs]
   header plus its indented template/comment lines up to the next header. *)
let blocks (lines : string list) : (int * int) list =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let rec next_header i = if i >= n || is_header arr.(i) then i else next_header (i + 1) in
  let rec go i acc =
    let i = next_header i in
    if i >= n then List.rev acc
    else
      let stop = next_header (i + 1) in
      go stop ((i, stop - i) :: acc)
  in
  go 0 []

let pick lst seed =
  match lst with
  | [] -> None
  | _ -> Some (List.nth lst (abs seed mod List.length lst))

(* duplicate one [modifies ...] template line: a genuine single-production
   template change that keeps the spec valid *)
let edit_tweak text seed =
  let lines = lines_of text in
  let candidates =
    List.filteri (fun _ _ -> true) lines
    |> List.mapi (fun i l -> (i, l))
    |> List.filter (fun (_, l) ->
           let t = String.trim l in
           String.length t > 9 && String.sub t 0 9 = "modifies ")
  in
  match pick candidates seed with
  | None -> None
  | Some (i, l) ->
      Some
        (text_of
           (List.concat
              (List.mapi (fun j x -> if j = i then [ x; l ] else [ x ]) lines)))

let edit_remove text seed =
  let lines = lines_of text in
  match pick (blocks lines) seed with
  | None -> None
  | Some (start, len) ->
      Some
        (text_of
           (List.filteri (fun i _ -> i < start || i >= start + len) lines))

let edit_duplicate text seed =
  let lines = lines_of text in
  match pick (blocks lines) seed with
  | None -> None
  | Some (start, len) ->
      let block =
        List.filteri (fun i _ -> i >= start && i < start + len) lines
      in
      Some (text_of (lines @ block))

type kind = Tweak | Remove | Duplicate

let apply kind text seed =
  match kind with
  | Tweak -> edit_tweak text seed
  | Remove -> edit_remove text seed
  | Duplicate -> edit_duplicate text seed

let kind_name = function
  | Tweak -> "template-tweak"
  | Remove -> "production-remove"
  | Duplicate -> "production-duplicate"

(* -- the oracle --------------------------------------------------------------- *)

type subject = { name : string; target : Machine.Target.t; text : string }

let subjects =
  lazy
    [
      {
        name = "amdahl470.cgg";
        target = Machine.Targets.default;
        text = spec_text "amdahl470.cgg";
      };
      {
        name = "risc32.cgg";
        target = Machine.Targets.find_exn "risc32";
        text = spec_text "risc32.cgg";
      };
    ]

let errors_str es = Fmt.str "%a" (Fmt.list Cogg.Cogg_build.pp_error) es

(* one scratch build of each unedited spec per pool: the "previous
   revision" every random edit splices from *)
let previous ~pool (s : subject) : Cogg.Tables.t =
  match Cogg.Cogg_build.build_string ~pool ~target:s.target s.text with
  | Ok t -> t
  | Error es -> fail "%s: baseline build failed: %s" s.name (errors_str es)

let check_edit ~pool ~prev (s : subject) kind seed : unit =
  match apply kind s.text seed with
  | None -> ()
  | Some edited -> (
      let scratch =
        Cogg.Cogg_build.build_string ~pool ~target:s.target edited
      in
      let incr =
        Cogg.Cogg_build.build_incremental_string ~pool ~target:s.target
          ~previous:prev edited
      in
      match (scratch, incr) with
      | Ok a, Ok (b, stats) ->
          let wa = Cogg.Tables_io.write a and wb = Cogg.Tables_io.write b in
          if wa <> wb then
            fail "%s %s(%d): incremental bytes differ from scratch (%s)"
              s.name (kind_name kind) seed
              (Fmt.str "%a" Cogg.Cogg_build.pp_incr_stats stats);
          (* a pure template tweak must actually splice; anything that
             recompiles every template defeats the point *)
          if kind = Tweak && not stats.Cogg.Cogg_build.spliced_tables then
            fail "%s %s(%d): template tweak did not splice the tables"
              s.name (kind_name kind) seed
      | Error ea, Error eb ->
          if errors_str ea <> errors_str eb then
            fail "%s %s(%d): error reports differ:\n%s\nvs\n%s" s.name
              (kind_name kind) seed (errors_str ea) (errors_str eb)
      | Ok _, Error es ->
          fail "%s %s(%d): incremental failed where scratch succeeded: %s"
            s.name (kind_name kind) seed (errors_str es)
      | Error es, Ok _ ->
          fail "%s %s(%d): incremental succeeded where scratch failed: %s"
            s.name (kind_name kind) seed (errors_str es))

let oracle_tests ~pool () =
  List.iter
    (fun s ->
      let prev = previous ~pool s in
      (* deterministic smoke of each edit kind first, then the random sweep *)
      List.iter
        (fun kind -> check_edit ~pool ~prev s kind 7)
        [ Tweak; Remove; Duplicate ];
      let gen =
        QCheck.Gen.(
          pair (oneofl [ Tweak; Remove; Duplicate ]) (int_bound 100_000))
      in
      let arb =
        QCheck.make gen ~print:(fun (k, seed) ->
            Printf.sprintf "%s seed=%d" (kind_name k) seed)
      in
      let test =
        QCheck.Test.make ~count:12
          ~name:(Printf.sprintf "%s: incremental == scratch" s.name)
          arb
          (fun (kind, seed) ->
            check_edit ~pool ~prev s kind seed;
            true)
      in
      QCheck.Test.check_exn test;
      Printf.printf "incremental oracle: %s ok (3 fixed + 12 random edits)\n%!"
        s.name)
    (Lazy.force subjects)

(* -- format gate: v4 bundles are rejected and migrated ------------------------ *)

let fresh_cache_dir () =
  let path = Filename.temp_file "cogg-incr-oracle" "" in
  Sys.remove path;
  path

let format_gate_tests ~pool () =
  (* a v4-era bundle prefix must be rejected as corrupt by the reader... *)
  (match Cogg.Tables_io.read ("CGB4" ^ String.make 64 '\000') with
  | exception Cogg.Tables_io.Corrupt m ->
      if not (String.length m > 0) then fail "empty corrupt message"
  | _ -> fail "a CGB4 bundle was accepted by the v5 reader");
  (* ...and a cache entry holding one must migrate: clean miss, scratch
     rebuild, entry rewritten in the current format *)
  let s = List.hd (Lazy.force subjects) in
  let dir = fresh_cache_dir () in
  let path =
    Cogg.Tables_cache.entry_path ~cache_dir:dir ~target:s.target s.text
  in
  Cogg.Tables_cache.(ignore (prune ~cache_dir:dir ()));
  (match Cogg.Tables_cache.build_text ~pool ~cache_dir:dir ~target:s.target s.text with
  | Ok (_, Cogg.Tables_cache.Built) -> ()
  | Ok (_, o) ->
      fail "expected a scratch build, got %s"
        (Fmt.str "%a" Cogg.Tables_cache.pp_origin o)
  | Error es -> fail "cache build failed: %s" (errors_str es));
  let oc = open_out_bin path in
  output_string oc ("CGB4" ^ String.make 64 '\000');
  close_out oc;
  (match Cogg.Tables_cache.build_text ~pool ~cache_dir:dir ~target:s.target s.text with
  | Ok (_, (Cogg.Tables_cache.Built | Cogg.Tables_cache.Built_incremental _))
    -> ()
  | Ok (_, Cogg.Tables_cache.Cache_hit) ->
      fail "a stale-format entry was served as a hit"
  | Error es -> fail "migration rebuild failed: %s" (errors_str es));
  (match Cogg.Tables_cache.build_text ~pool ~cache_dir:dir ~target:s.target s.text with
  | Ok (_, Cogg.Tables_cache.Cache_hit) -> ()
  | Ok (_, o) ->
      fail "migrated entry should hit, got %s"
        (Fmt.str "%a" Cogg.Tables_cache.pp_origin o)
  | Error es -> fail "post-migration build failed: %s" (errors_str es));
  Printf.printf "incremental oracle: v4->v5 rejection/migration ok\n%!"

(* -- cross-process path: an edited spec splices through the cache ------------- *)

let cache_splice_tests ~pool () =
  let s = List.hd (Lazy.force subjects) in
  let dir = fresh_cache_dir () in
  let build text =
    match
      Cogg.Tables_cache.build_text ~pool ~cache_dir:dir ~target:s.target text
    with
    | Ok r -> r
    | Error es -> fail "cache build failed: %s" (errors_str es)
  in
  (match build s.text with
  | _, Cogg.Tables_cache.Built -> ()
  | _, o ->
      fail "first build should be scratch, got %s"
        (Fmt.str "%a" Cogg.Tables_cache.pp_origin o));
  let edited = Option.get (edit_tweak s.text 3) in
  (match build edited with
  | t, Cogg.Tables_cache.Built_incremental st ->
      if not st.Cogg.Cogg_build.spliced_tables then
        fail "cache splice: tables were rebuilt for a template tweak";
      let scratch =
        match Cogg.Cogg_build.build_string ~pool ~target:s.target edited with
        | Ok t -> t
        | Error es -> fail "scratch build failed: %s" (errors_str es)
      in
      if Cogg.Tables_io.write t <> Cogg.Tables_io.write scratch then
        fail "cache splice: spliced bundle differs from scratch";
      (* the stored entry must hold those same bytes *)
      let stored =
        read_file
          (Cogg.Tables_cache.entry_path ~cache_dir:dir ~target:s.target edited)
      in
      if stored <> Cogg.Tables_io.write scratch then
        fail "cache splice: stored entry differs from scratch bytes"
  | _, o ->
      fail "edited spec should rebuild incrementally, got %s"
        (Fmt.str "%a" Cogg.Tables_cache.pp_origin o));
  Printf.printf "incremental oracle: cache lineage splice ok\n%!"

let () =
  Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
      oracle_tests ~pool ();
      format_gate_tests ~pool ();
      cache_splice_tests ~pool ());
  Printf.printf "incremental oracle: all checks passed (COGG_JOBS=%d)\n%!"
    (jobs ())
