(* Driver-equivalence tests: the comb-compressed dispatch path must take
   exactly the same actions as the flat (uncompressed) table, both
   per-entry and end-to-end (byte-identical generated code), and the
   array-backed driver must keep reporting accurate parse statistics. *)

let check_int = Alcotest.(check int)

let amdahl () = Lazy.force Util.amdahl_tables

let all_methods =
  [
    ("none", Cogg.Compress.No_compression);
    ("defaults", Cogg.Compress.Defaults_only);
    ("comb", Cogg.Compress.Comb_only);
    ("defaults+comb", Cogg.Compress.Defaults_and_comb);
  ]

(* Default reductions may soften an Error entry into a Reduce (delayed
   error detection); any other disagreement is a packing bug. *)
let softening_allowed = function
  | Cogg.Compress.Defaults_only | Cogg.Compress.Defaults_and_comb
  | Cogg.Compress.Hybrid ->
      true
  | Cogg.Compress.No_compression | Cogg.Compress.Comb_only -> false

let test_per_entry_equivalence () =
  let t = amdahl () in
  let pt = t.Cogg.Tables.parse in
  let n_syms = Cogg.Grammar.n_syms t.Cogg.Tables.grammar in
  List.iter
    (fun (name, method_) ->
      let c = Cogg.Compress.compress ~method_ pt in
      for state = 0 to Cogg.Parse_table.n_states pt - 1 do
        for sym = 0 to n_syms - 1 do
          let a = Cogg.Parse_table.action pt state sym in
          let b = Cogg.Compress.action c state sym in
          if a <> b then
            match (a, b) with
            | Cogg.Parse_table.Error, Cogg.Parse_table.Reduce _
              when softening_allowed method_ ->
                ()
            | _ ->
                Alcotest.failf "%s: action differs at state %d sym %d" name
                  state sym
        done
      done)
    all_methods

(* The raw-integer probe the driver runs on and its decoded form must be
   two views of the same entry. *)
let test_action_code_consistent () =
  let t = amdahl () in
  let pt = t.Cogg.Tables.parse in
  let n_syms = Cogg.Grammar.n_syms t.Cogg.Tables.grammar in
  List.iter
    (fun (name, method_) ->
      let c = Cogg.Compress.compress ~method_ pt in
      for state = 0 to Cogg.Parse_table.n_states pt - 1 do
        for sym = 0 to n_syms - 1 do
          let code = Cogg.Compress.action_code c state sym in
          if Cogg.Compress.decode_action code <> Cogg.Compress.action c state sym
          then Alcotest.failf "%s: decode mismatch at state %d sym %d" name state sym
        done
      done)
    all_methods

(* The table carried in Tables.t is the one Cogg_build packed; the driver
   probes it directly, so it must verify against the flat table. *)
let test_carried_table_verifies () =
  let t = amdahl () in
  match Cogg.Compress.verify t.Cogg.Tables.compressed t.Cogg.Tables.parse with
  | Ok softened ->
      Alcotest.(check bool) "defaults soften some errors" true (softened > 0)
  | Error m -> Alcotest.fail m

let programs =
  [
    ("gcd", Pipeline.Programs.gcd);
    ("sieve", Pipeline.Programs.sieve);
    ("appendix1", Pipeline.Programs.appendix1_equation);
  ]

let compile_with dispatch src =
  match Pipeline.compile ~dispatch (amdahl ()) src with
  | Ok c -> c
  | Error m -> Alcotest.failf "compile failed: %s" m

(* End to end: both dispatch paths must produce byte-identical code. *)
let test_flat_comb_identical_code () =
  List.iter
    (fun (name, src) ->
      let flat = compile_with Cogg.Driver.Flat src in
      let comb = compile_with Cogg.Driver.Comb src in
      Alcotest.(check string)
        (name ^ ": identical listings")
        flat.Pipeline.gen.Cogg.Codegen.listing
        comb.Pipeline.gen.Cogg.Codegen.listing;
      Alcotest.(check bytes)
        (name ^ ": identical code bytes")
        flat.Pipeline.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.code
        comb.Pipeline.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.code)
    programs

(* Well-formed IF never exercises a softened (defaulted) entry on a path
   that changes the action sequence, so the parse statistics agree too. *)
let test_outcomes_agree () =
  List.iter
    (fun (name, src) ->
      let flat = compile_with Cogg.Driver.Flat src in
      let comb = compile_with Cogg.Driver.Comb src in
      let fo = flat.Pipeline.gen.Cogg.Codegen.outcome in
      let co = comb.Pipeline.gen.Cogg.Codegen.outcome in
      check_int (name ^ ": reductions") fo.Cogg.Driver.reductions
        co.Cogg.Driver.reductions;
      check_int (name ^ ": shifts") fo.Cogg.Driver.shifts co.Cogg.Driver.shifts;
      check_int (name ^ ": max_stack") fo.Cogg.Driver.max_stack
        co.Cogg.Driver.max_stack;
      (* every stack slot was shifted onto the stack exactly once *)
      Alcotest.(check bool)
        (name ^ ": max_stack bounded by shifts")
        true
        (co.Cogg.Driver.max_stack > 0
        && co.Cogg.Driver.max_stack <= co.Cogg.Driver.shifts))
    programs

(* The paper's section-1 machine and example statement (A := A + B): the
   parse is small and deterministic, pinning the statistics exactly (a
   regression guard for the array-backed stacks, whose depth is tracked
   incrementally on shift rather than recounted with [List.length]).
   The depth counts the bottom sentinel plus every shifted token,
   including re-shifted reduction results. *)
let intro_spec =
  {|
* The artificial machine of paper section 1.
$Non-terminals
 r = gpr
$Terminals
 d = displacement
$Operators
 word, iadd, store, ret
$Opcodes
 l, ar, st, bcr
$Constants
 fifteen = 15
$Productions
r.2 ::= word d.1
 using r.2
 l     r.2,d.1
r.1 ::= iadd r.1 r.2
 modifies r.1
 ar    r.1,r.2
lambda ::= store word d.1 r.2
 st    r.2,d.1
lambda ::= ret
 need r.14
 bcr   fifteen,r.14
|}

let test_max_stack_exact () =
  let t =
    match Cogg.Cogg_build.build_string intro_spec with
    | Ok t -> t
    | Error es ->
        Alcotest.failf "spec build failed: %a"
          (Fmt.list Cogg.Cogg_build.pp_error)
          es
  in
  let if_text = "store word d:100 iadd word d:100 word d:104 ret" in
  List.iter
    (fun (name, dispatch) ->
      match Cogg.Codegen.generate_string ~dispatch t if_text with
      | Error m -> Alcotest.failf "%s: %s" name m
      | Ok r ->
          let o = r.Cogg.Codegen.outcome in
          check_int (name ^ ": exact shifts") 17 o.Cogg.Driver.shifts;
          check_int (name ^ ": exact reductions") 8 o.Cogg.Driver.reductions;
          check_int (name ^ ": exact max_stack") 9 o.Cogg.Driver.max_stack)
    [ ("flat", Cogg.Driver.Flat); ("comb", Cogg.Driver.Comb) ]

(* Malformed IF must fail cleanly under both dispatches: comb may detect
   the error later (after default reductions), but never accepts. *)
let test_invalid_if_rejected_both () =
  let t = amdahl () in
  List.iter
    (fun (name, dispatch) ->
      match
        Cogg.Codegen.generate_string ~dispatch t "store word dsp:0 ret"
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: invalid IF accepted" name)
    [ ("flat", Cogg.Driver.Flat); ("comb", Cogg.Driver.Comb) ]

let () =
  Alcotest.run "compress_driver"
    [
      ( "equivalence",
        [
          Alcotest.test_case "per-entry, all methods" `Quick
            test_per_entry_equivalence;
          Alcotest.test_case "action_code consistent" `Quick
            test_action_code_consistent;
          Alcotest.test_case "carried table verifies" `Quick
            test_carried_table_verifies;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "flat = comb code bytes" `Quick
            test_flat_comb_identical_code;
          Alcotest.test_case "outcomes agree" `Quick test_outcomes_agree;
          Alcotest.test_case "invalid IF rejected" `Quick
            test_invalid_if_rejected_both;
        ] );
      ( "stack accounting",
        [ Alcotest.test_case "exact max_stack" `Quick test_max_stack_exact ] );
    ]
