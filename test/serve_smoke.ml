(* The serve smoke gate (`dune build @serve-smoke`, folded into
   `dune runtest`): fork a real daemon on a throwaway socket, drive the
   example corpus through it cold and warm, and hold the service to the
   repo's standing batch-fingerprint invariant — the served bytes must
   digest to exactly what `Pipeline.Batch.compile_all` has produced
   since PR 2.  COGG_JOBS sizes the daemon's pool (the fork happens
   before any domain is spawned). *)

let expected_fingerprint = "d522ac078361a58b19cef0d83e2260c8"

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve_smoke: " ^ m);
      exit 1)
    fmt

let rec find_up depth dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up (depth - 1) (Filename.dirname dir) rel

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let jobs () =
  match Sys.getenv_opt "COGG_JOBS" with
  | Some "max" -> max 2 (Domain.recommended_domain_count ())
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
  | None -> 2

let daemon ~spec_path ~sock : 'a =
  let tables =
    match Cogg.Cogg_build.build_file spec_path with
    | Ok t -> t
    | Error _ -> Unix._exit 3
  in
  let table_key =
    Cogg.Tables_cache.key ~mode:Cogg.Lookahead.Slr (read_file spec_path)
  in
  let n = jobs () in
  let pool = if n > 1 then Some (Cogg.Pool.create ~domains:n ()) else None in
  (match
     Serve.Server.create ?pool ~table_key ~socket_path:sock tables
   with
  | Ok server -> Serve.Server.run server
  | Error m ->
      prerr_endline ("serve_smoke daemon: " ^ m);
      Unix._exit 3);
  Unix._exit 0

let connect_retry sock =
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec go () =
    match Serve.Client.connect sock with
    | Ok c -> c
    | Error m ->
        if Unix.gettimeofday () > deadline then
          failwith ("daemon did not come up: " ^ m)
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let () =
  let spec_path =
    match
      find_up 6 (Sys.getcwd ()) (Filename.concat "specs" "amdahl470.cgg")
    with
    | Some p -> p
    | None -> fail "cannot locate specs/amdahl470.cgg from %s" (Sys.getcwd ())
  in
  let sock = Filename.temp_file "serve-smoke" ".sock" in
  Sys.remove sock;
  match Unix.fork () with
  | 0 -> daemon ~spec_path ~sock
  | pid ->
      let status = ref 0 in
      let flunk fmt =
        Printf.ksprintf
          (fun m ->
            prerr_endline ("serve_smoke: " ^ m);
            status := 1)
          fmt
      in
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i =
          i + n <= h && (String.sub hay i n = needle || go (i + 1))
        in
        n = 0 || go 0
      in
      let checks () =
        let c = connect_retry sock in
        (* the 32-job bench batch: the example corpus cycled, exactly
           what the standing fingerprint digests (names play no part) *)
        let corpus = Array.of_list (List.map snd Pipeline.Programs.all) in
        let srcs =
          Array.init 32 (fun i -> corpus.(i mod Array.length corpus))
        in
        let pass label expect_cached =
          match Serve.Client.compile_batch c srcs with
          | Error m -> flunk "%s batch failed: %s" label m
          | Ok replies ->
              Array.iteri
                (fun i r ->
                  match r with
                  | Serve.Wire.Compiled { cached; _ } ->
                      if cached <> expect_cached then
                        flunk "%s reply %d cached=%b, wanted %b" label i
                          cached expect_cached
                  | _ -> flunk "%s reply %d is not a compile" label i)
                replies;
              let fp = Serve.Wire.fingerprint replies in
              if fp <> expected_fingerprint then
                flunk "%s fingerprint drifted: %s (want %s)" label fp
                  expected_fingerprint
        in
        pass "cold" false;
        pass "warm" true;
        (match Serve.Client.stats c with
        | Error m -> flunk "stats failed: %s" m
        | Ok text ->
            let want = Printf.sprintf "pool_size %d" (jobs ()) in
            if not (contains text want) then
              flunk "COGG_JOBS not respected, wanted %S in:\n%s" want text);
        Serve.Client.close c
      in
      (try checks ()
       with e -> flunk "unexpected exception: %s" (Printexc.to_string e));
      (match Serve.Client.connect sock with
      | Ok c ->
          ignore (Serve.Client.shutdown c);
          Serve.Client.close c
      | Error _ -> (
          try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()));
      ignore (Unix.waitpid [] pid);
      if Sys.file_exists sock then Sys.remove sock;
      if !status = 0 then
        print_endline
          ("serve-smoke: corpus fingerprint " ^ expected_fingerprint
         ^ " served cold and warm");
      exit !status
