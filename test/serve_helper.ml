(* Standalone pascd daemon for the serve test suite: test_serve spawns
   this executable with a throwaway socket path and talks Wire to it.
   Kept separate from the Alcotest binaries so a daemon crash is a
   process exit the parent observes, not a tangled in-process failure. *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve_helper: " ^ m);
      exit 2)
    fmt

let rec find_up depth dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up (depth - 1) (Filename.dirname dir) rel

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let socket = ref "" in
  let queue = ref 64 in
  let jobs = ref 1 in
  let cache = ref 256 in
  let verify = ref Serve.Server.Verify_once in
  let target = ref Machine.Targets.default in
  let rec parse = function
    | [] -> ()
    | "--socket" :: v :: rest ->
        socket := v;
        parse rest
    | "--target" :: v :: rest ->
        (target :=
           match Machine.Targets.find v with
           | Some t -> t
           | None -> fail "unknown target %S" v);
        parse rest
    | "--queue" :: v :: rest ->
        queue := int_of_string v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--cache" :: v :: rest ->
        cache := int_of_string v;
        parse rest
    | "--verify" :: v :: rest ->
        (verify :=
           match v with
           | "never" -> Serve.Server.Verify_never
           | "once" -> Serve.Server.Verify_once
           | "always" -> Serve.Server.Verify_always
           | other -> fail "unknown verify mode %S" other);
        parse rest
    | other :: _ -> fail "unknown argument %S" other
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !socket = "" then fail "--socket is required";
  let spec_rel = !target.Machine.Target.spec_file in
  let spec_path =
    match find_up 6 (Sys.getcwd ()) spec_rel with
    | Some p -> p
    | None -> fail "cannot locate %s from %s" spec_rel (Sys.getcwd ())
  in
  let tables =
    match Cogg.Cogg_build.build_file ~target:!target spec_path with
    | Ok t -> t
    | Error es ->
        fail "spec failed to build: %s"
          (String.concat "; "
             (List.map (Fmt.str "%a" Cogg.Cogg_build.pp_error) es))
  in
  let table_key =
    Cogg.Tables_cache.key ~mode:Cogg.Lookahead.Slr ~target:!target
      (read_file spec_path)
  in
  let pool =
    if !jobs > 1 then Some (Cogg.Pool.create ~domains:!jobs ()) else None
  in
  let server =
    match
      Serve.Server.create ?pool ~queue_capacity:!queue ~cache_capacity:!cache
        ~verify:!verify ~table_key ~socket_path:!socket tables
    with
    | Ok s -> s
    | Error m -> fail "create failed: %s" m
  in
  Serve.Server.run server;
  Option.iter Cogg.Pool.shutdown pool
