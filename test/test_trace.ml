(* The observability layer: Metrics counters merge across pool domains,
   tracing produces balanced, well-formed Chrome trace JSON, everything
   is a no-op when disabled, and the counter aggregates of a batch are
   identical whether it runs sequentially or fanned over a pool.

   COGG_JOBS overrides the worker count, as in test_batch.ml. *)

let jobs () =
  match Sys.getenv_opt "COGG_JOBS" with
  | Some "max" -> max 2 (Domain.recommended_domain_count ())
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

let tables () = Lazy.force Util.amdahl_tables

(* every test leaves both subsystems disabled and zeroed, pass or fail *)
let with_observability ?(metrics = false) ?(trace = false) f =
  Cogg.Metrics.reset ();
  Cogg.Trace.clear ();
  Cogg.Metrics.set_enabled metrics;
  Cogg.Trace.set_enabled trace;
  Fun.protect
    ~finally:(fun () ->
      Cogg.Metrics.set_enabled false;
      Cogg.Trace.set_enabled false;
      Cogg.Metrics.reset ();
      Cogg.Trace.clear ())
    f

let c_sum = Cogg.Metrics.sum "test.trace.sum"
let c_peak = Cogg.Metrics.high_water "test.trace.peak"

let test_disabled_is_noop () =
  with_observability (fun () ->
      Cogg.Metrics.add c_sum 41;
      Cogg.Metrics.peak c_peak 41;
      let rows = Cogg.Metrics.snapshot () in
      Alcotest.(check int) "sum stays zero" 0 (List.assoc "test.trace.sum" rows);
      Alcotest.(check int) "peak stays zero" 0
        (List.assoc "test.trace.peak" rows);
      let r = Cogg.Trace.with_span "noop" (fun () -> 7) in
      Cogg.Trace.instant "nothing";
      Alcotest.(check int) "with_span still runs f" 7 r;
      Alcotest.(check int) "no events recorded" 0 (Cogg.Trace.event_count ()))

let test_counters_merge_across_domains () =
  with_observability ~metrics:true (fun () ->
      let n = 500 in
      Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
          ignore
            (Cogg.Pool.map pool
               (fun i ->
                 Cogg.Metrics.add c_sum 1;
                 Cogg.Metrics.peak c_peak i;
                 i)
               (Array.init n Fun.id)));
      (* the pool has joined: per-domain buffers outlive their domains and
         the snapshot must see every worker's contribution *)
      let rows = Cogg.Metrics.snapshot () in
      Alcotest.(check int) "sums add across domains" n
        (List.assoc "test.trace.sum" rows);
      Alcotest.(check int) "high-water merges by max" (n - 1)
        (List.assoc "test.trace.peak" rows))

let corpus_batch () =
  Array.of_list
    (List.map
       (fun (name, source) -> { Pipeline.Batch.name; source })
       Pipeline.Programs.all)

(* phase.*.us rows are wall-clock sums; everything else counts work done
   and must not depend on scheduling *)
let deterministic rows =
  List.filter
    (fun (name, _) ->
      not (String.length name >= 6 && String.sub name 0 6 = "phase."))
    rows

let test_batch_counters_independent_of_jobs () =
  let t = tables () in
  let b = corpus_batch () in
  let run ?pool () =
    with_observability ~metrics:true (fun () ->
        ignore (Pipeline.Batch.compile_all ?pool t b);
        deterministic (Cogg.Metrics.snapshot ()))
  in
  let seq = run () in
  let par = Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool -> run ~pool ()) in
  Alcotest.(check bool)
    "the batch did real work" true
    (List.assoc "driver.shifts" seq > 0);
  Alcotest.(check (list (pair string int)))
    "counters identical sequentially and under -j N" seq par

let find_event events name =
  match
    List.find_opt (fun (e : Cogg.Trace.event) -> e.Cogg.Trace.ev_name = name)
      events
  with
  | Some e -> e
  | None -> Alcotest.failf "expected a %S span" name

let test_spans_balanced_and_nested () =
  let t = tables () in
  with_observability ~metrics:true ~trace:true (fun () ->
      let b =
        [| { Pipeline.Batch.name = "gcd"; source = Pipeline.Programs.gcd } |]
      in
      (match (Pipeline.Batch.compile_all t b).(0) with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      let events = Cogg.Trace.events () in
      Alcotest.(check bool) "events recorded" true (events <> []);
      List.iter
        (fun (e : Cogg.Trace.event) ->
          Alcotest.(check bool) "every event is a span or an instant" true
            (e.Cogg.Trace.ev_ph = 'X' || e.Cogg.Trace.ev_ph = 'i');
          Alcotest.(check bool) "durations are non-negative" true
            (e.Cogg.Trace.ev_dur >= 0.0))
        events;
      (* the per-program span must contain every pipeline phase span *)
      let compile = find_event events "compile" in
      List.iter
        (fun name ->
          let e = find_event events name in
          Alcotest.(check bool) (name ^ " nested inside compile") true
            (e.Cogg.Trace.ev_ts >= compile.Cogg.Trace.ev_ts -. 0.5
            && e.Cogg.Trace.ev_ts +. e.Cogg.Trace.ev_dur
               <= compile.Cogg.Trace.ev_ts +. compile.Cogg.Trace.ev_dur +. 0.5))
        [ "front_end"; "shape"; "linearize"; "codegen" ];
      (* with metrics on, the same spans feed the phase timing counters *)
      Alcotest.(check bool) "spans feed phase.*.us counters" true
        (List.mem_assoc "phase.codegen.us" (Cogg.Metrics.snapshot ())))

(* A miniature JSON reader, enough to validate what Trace.to_json_string
   writes (objects, arrays, strings with escapes, numbers, literals).
   Raises [Exit] on the first malformed byte. *)
let json_validate (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c = if peek () = Some c then incr pos else raise Exit in
  let lit w =
    let k = String.length w in
    if !pos + k <= n && String.sub s !pos k = w then pos := !pos + k
    else raise Exit
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then raise Exit
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while not !fin do
      if !pos >= n then raise Exit;
      (match s.[!pos] with
      | '"' -> fin := true
      | '\\' -> incr pos (* skip the escaped character *)
      | _ -> ());
      incr pos
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Exit
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let fin = ref false in
      while not !fin do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
            incr pos;
            fin := true
        | _ -> raise Exit
      done
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let fin = ref false in
      while not !fin do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
            incr pos;
            fin := true
        | _ -> raise Exit
      done
  in
  value ();
  skip_ws ();
  if !pos <> n then raise Exit

let test_json_well_formed () =
  let t = tables () in
  with_observability ~metrics:true ~trace:true (fun () ->
      let b = corpus_batch () in
      Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
          ignore (Pipeline.Batch.compile_all ~pool t b));
      let json = Cogg.Trace.to_json_string () in
      Alcotest.(check bool) "has the traceEvents envelope" true
        (Util.contains json "\"traceEvents\"");
      (match json_validate json with
      | () -> ()
      | exception Exit -> Alcotest.fail "trace JSON is malformed");
      (* one JSON record per recorded event *)
      Alcotest.(check bool) "all domains contributed events" true
        (Cogg.Trace.event_count () >= Array.length b))

let test_explanation_aligned () =
  let t = tables () in
  (match Pipeline.compile t Pipeline.Programs.gcd with
  | Error m -> Alcotest.fail m
  | Ok c ->
      Alcotest.(check bool) "no explanation unless requested" true
        (c.Pipeline.gen.Cogg.Codegen.explanation = None));
  match Pipeline.compile ~explain:true t Pipeline.Programs.gcd with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match c.Pipeline.gen.Cogg.Codegen.explanation with
      | None -> Alcotest.fail "explanation missing under ~explain:true"
      | Some s ->
          let lines =
            List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n' s)
          in
          Alcotest.(check int) "one annotation per code-buffer item"
            c.Pipeline.gen.Cogg.Codegen.n_items (List.length lines);
          List.iter
            (fun l ->
              Alcotest.(check bool) "every line carries its origin" true
                (Util.contains l " ; "))
            lines;
          Alcotest.(check bool) "directives are surfaced" true
            (Util.contains s "[using" || Util.contains s "need r"))

let () =
  Alcotest.run "trace"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "counters merge across domains" `Quick
            test_counters_merge_across_domains;
          Alcotest.test_case "batch counters independent of -j" `Quick
            test_batch_counters_independent_of_jobs;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans balanced and nested" `Quick
            test_spans_balanced_and_nested;
          Alcotest.test_case "JSON well-formed" `Quick test_json_well_formed;
        ] );
      ( "explain",
        [
          Alcotest.test_case "annotations aligned with items" `Quick
            test_explanation_aligned;
        ] );
    ]
