(* The sharded in-memory result cache: lookup/insert/remove semantics,
   FIFO eviction under the per-shard capacity, instance counters, and
   safety under concurrent access from a domain pool. *)

let test_find_store () =
  let c = Cogg.Result_cache.create ~capacity:8 () in
  Alcotest.(check (option string)) "empty cache misses" None
    (Cogg.Result_cache.find c "k1");
  Cogg.Result_cache.store c "k1" "v1";
  Alcotest.(check (option string)) "stored value found" (Some "v1")
    (Cogg.Result_cache.find c "k1");
  Cogg.Result_cache.store c "k1" "v2";
  Alcotest.(check (option string)) "replacement wins" (Some "v2")
    (Cogg.Result_cache.find c "k1");
  Alcotest.(check int) "one entry" 1 (Cogg.Result_cache.length c);
  let s = Cogg.Result_cache.stats c in
  Alcotest.(check int) "hits counted" 2 s.Cogg.Result_cache.hits;
  Alcotest.(check int) "misses counted" 1 s.Cogg.Result_cache.misses

let test_remove () =
  let c = Cogg.Result_cache.create ~capacity:8 () in
  Cogg.Result_cache.store c "k" "v";
  Cogg.Result_cache.remove c "k";
  Alcotest.(check (option string)) "removed" None (Cogg.Result_cache.find c "k");
  Alcotest.(check int) "empty again" 0 (Cogg.Result_cache.length c);
  (* removing an absent key is a no-op *)
  Cogg.Result_cache.remove c "k"

let test_fifo_eviction () =
  (* one shard makes the FIFO order directly observable *)
  let c = Cogg.Result_cache.create ~shards:1 ~capacity:3 () in
  Cogg.Result_cache.store c "a" "1";
  Cogg.Result_cache.store c "b" "2";
  Cogg.Result_cache.store c "c" "3";
  Alcotest.(check int) "at capacity" 3 (Cogg.Result_cache.length c);
  Cogg.Result_cache.store c "d" "4";
  Alcotest.(check int) "still at capacity" 3 (Cogg.Result_cache.length c);
  Alcotest.(check (option string)) "oldest evicted" None
    (Cogg.Result_cache.find c "a");
  Alcotest.(check (option string)) "second oldest kept" (Some "2")
    (Cogg.Result_cache.find c "b");
  Alcotest.(check (option string)) "newest kept" (Some "4")
    (Cogg.Result_cache.find c "d");
  let s = Cogg.Result_cache.stats c in
  Alcotest.(check int) "eviction counted" 1 s.Cogg.Result_cache.evictions

let test_replace_keeps_age () =
  let c = Cogg.Result_cache.create ~shards:1 ~capacity:2 () in
  Cogg.Result_cache.store c "a" "1";
  Cogg.Result_cache.store c "b" "2";
  (* refreshing [a] must not make it younger than [b] *)
  Cogg.Result_cache.store c "a" "1'";
  Cogg.Result_cache.store c "c" "3";
  Alcotest.(check (option string)) "a still the eviction victim" None
    (Cogg.Result_cache.find c "a");
  Alcotest.(check (option string)) "b survives" (Some "2")
    (Cogg.Result_cache.find c "b")

let test_capacity_spread () =
  (* capacity is per shard (rounded up), so the cache never exceeds
     shards * ceil(capacity / shards) entries however keys distribute *)
  let shards = 4 in
  let capacity = 16 in
  let c = Cogg.Result_cache.create ~shards ~capacity () in
  for i = 0 to 199 do
    Cogg.Result_cache.store c (Printf.sprintf "key-%d" i) (string_of_int i)
  done;
  Alcotest.(check bool)
    "bounded by the rounded capacity" true
    (Cogg.Result_cache.length c <= capacity);
  Alcotest.(check bool)
    "evictions happened" true
    ((Cogg.Result_cache.stats c).Cogg.Result_cache.evictions > 0)

let test_concurrent_hammer () =
  (* several domains hammer one cache with overlapping key ranges; the
     invariants: no crash, size stays bounded, and every key that is
     found maps to the value its writers store (all writers agree) *)
  let c = Cogg.Result_cache.create ~shards:8 ~capacity:64 () in
  let racers = 4 in
  Cogg.Pool.with_pool ~domains:racers (fun pool ->
      Cogg.Pool.run_parallel pool
        (Array.init racers (fun _ _slot ->
             for round = 0 to 499 do
               let key = Printf.sprintf "key-%d" (round mod 100) in
               (match Cogg.Result_cache.find c key with
               | Some v ->
                   if v <> key then
                     Alcotest.failf "key %s held foreign value %s" key v
               | None -> Cogg.Result_cache.store c key key);
               if round mod 97 = 0 then Cogg.Result_cache.remove c key
             done)));
  Alcotest.(check bool)
    "size bounded after the race" true
    (Cogg.Result_cache.length c <= 64);
  let s = Cogg.Result_cache.stats c in
  Alcotest.(check bool)
    "counters advanced" true
    (s.Cogg.Result_cache.hits + s.Cogg.Result_cache.misses > 0)

let () =
  Alcotest.run "result_cache"
    [
      ( "cache",
        [
          Alcotest.test_case "find and store" `Quick test_find_store;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "FIFO eviction" `Quick test_fifo_eviction;
          Alcotest.test_case "replace keeps age" `Quick test_replace_keeps_age;
          Alcotest.test_case "capacity bounds the spread" `Quick
            test_capacity_spread;
          Alcotest.test_case "concurrent hammer" `Quick test_concurrent_hammer;
        ] );
    ]
