(* The real-workload corpus (examples/programs/*.pas): every program
   must pass all four differential oracles — exec, dispatch,
   determinism, cross-backend — on both targets, and batch compilation
   of the corpus must fingerprint identically at any worker count. *)

let jobs () =
  match Sys.getenv_opt "COGG_JOBS" with
  | Some "max" -> max 2 (Domain.recommended_domain_count ())
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

let programs : (string * string) list Lazy.t =
  lazy
    (let dir =
       match Util.find_up (Sys.getcwd ()) "examples/programs" with
       | Some d -> d
       | None ->
           Alcotest.failf "cannot locate examples/programs from %s"
             (Sys.getcwd ())
     in
     Sys.readdir dir |> Array.to_list
     |> List.filter (fun f -> Filename.check_suffix f ".pas")
     |> List.sort compare
     |> List.map (fun f ->
            let ic = open_in_bin (Filename.concat dir f) in
            let len = in_channel_length ic in
            let text = really_input_string ic len in
            close_in ic;
            (Filename.remove_extension f, text)))

let check_pass name oracle st =
  match st with
  | Fuzz.Oracle.Pass -> ()
  | st ->
      Alcotest.failf "%s: %s oracle did not pass: %a" name oracle
        Fuzz.Oracle.pp_status st

(* Pass, not Skip: a real program that trips a capacity limit or is
   rejected by the front end is a corpus bug, and this test names it. *)
let oracles_on tables other (name, source) =
  check_pass name "exec" (Fuzz.Oracle.exec tables source);
  check_pass name "determinism" (Fuzz.Oracle.determinism tables source);
  check_pass name "cross" (Fuzz.Oracle.cross_backend tables other source);
  match Pipeline.compile tables source with
  | Error m -> Alcotest.failf "%s: front end rejected: %s" name m
  | Ok c -> check_pass name "dispatch" (Fuzz.Oracle.dispatch tables c.Pipeline.tokens)

let test_oracles_amdahl () =
  let t = Lazy.force Util.amdahl_tables in
  let r = Lazy.force Util.risc32_tables in
  List.iter (oracles_on t r) (Lazy.force programs)

let test_oracles_risc32 () =
  let t = Lazy.force Util.risc32_tables in
  let r = Lazy.force Util.amdahl_tables in
  List.iter (oracles_on t r) (Lazy.force programs)

let batch () =
  Array.of_list
    (List.map
       (fun (name, source) -> { Pipeline.Batch.name; source })
       (Lazy.force programs))

let test_batch_fingerprint_deterministic () =
  let fingerprint tables ?pool () =
    Pipeline.Batch.fingerprint (Pipeline.Batch.compile_all ?pool tables (batch ()))
  in
  List.iter
    (fun (label, tables) ->
      let t = Lazy.force tables in
      let seq = fingerprint t () in
      Cogg.Pool.with_pool ~domains:(jobs ()) (fun pool ->
          Alcotest.(check string)
            (label ^ ": parallel == sequential")
            seq
            (fingerprint t ~pool ())))
    [ ("amdahl470", Util.amdahl_tables); ("risc32", Util.risc32_tables) ]

let test_corpus_nonempty () =
  let n = List.length (Lazy.force programs) in
  if n < 8 then Alcotest.failf "only %d real programs, expected at least 8" n

let () =
  Alcotest.run "real"
    [
      ( "real-corpus",
        [
          Alcotest.test_case "at least eight programs" `Quick test_corpus_nonempty;
          Alcotest.test_case "all oracles pass on amdahl470" `Slow
            test_oracles_amdahl;
          Alcotest.test_case "all oracles pass on risc32" `Slow
            test_oracles_risc32;
          Alcotest.test_case "batch fingerprint is worker-count invariant"
            `Quick test_batch_fingerprint_deterministic;
        ] );
    ]
