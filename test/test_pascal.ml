(* The mini-Pascal front end: lexer, parser, static semantics and the
   reference interpreter. *)

let check_int = Alcotest.(check int)

(* -- lexer ------------------------------------------------------------------- *)

let lex src =
  match Pascal.Lexer.tokenize src with
  | Ok toks -> List.map fst toks
  | Error e -> Alcotest.failf "%a" Pascal.Lexer.pp_error e

let test_lexer_basics () =
  let toks = lex "begin x := 10 + y41; { comment } end." in
  Alcotest.(check bool)
    "shape" true
    (toks
    = [
        Pascal.Lexer.Kw "begin"; Pascal.Lexer.Ident "x"; Pascal.Lexer.Sym ":=";
        Pascal.Lexer.Int 10; Pascal.Lexer.Sym "+"; Pascal.Lexer.Ident "y41";
        Pascal.Lexer.Sym ";"; Pascal.Lexer.Kw "end"; Pascal.Lexer.Sym ".";
        Pascal.Lexer.Eof;
      ])

let test_lexer_numbers () =
  Alcotest.(check bool)
    "real" true
    (lex "3.25" = [ Pascal.Lexer.Real 3.25; Pascal.Lexer.Eof ]);
  Alcotest.(check bool)
    "range is not a real" true
    (lex "1..5"
    = [ Pascal.Lexer.Int 1; Pascal.Lexer.Sym ".."; Pascal.Lexer.Int 5;
        Pascal.Lexer.Eof ])

let test_lexer_char_and_ops () =
  Alcotest.(check bool)
    "char" true
    (lex "'a'" = [ Pascal.Lexer.Char 'a'; Pascal.Lexer.Eof ]);
  Alcotest.(check bool)
    "two-char ops" true
    (lex "<= >= <> :="
    = [ Pascal.Lexer.Sym "<="; Pascal.Lexer.Sym ">="; Pascal.Lexer.Sym "<>";
        Pascal.Lexer.Sym ":="; Pascal.Lexer.Eof ])

let test_lexer_errors () =
  List.iter
    (fun src ->
      match Pascal.Lexer.tokenize src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S lexed" src)
    [ "{ unterminated"; "'ab'"; "#" ]

(* -- parser ------------------------------------------------------------------ *)

let parse src =
  match Pascal.Parser.of_string src with
  | Ok p -> p
  | Error e -> Alcotest.failf "%a" Pascal.Parser.pp_error e

let test_parser_program_shape () =
  let p =
    parse
      {|
program demo;
var x, y : integer;
    a : array[1..10] of real;
procedure inc2;
begin x := x + 2 end;
begin
  for y := 1 to 3 do inc2;
  if x > 5 then x := 0 else x := 1
end.
|}
  in
  Alcotest.(check string) "name" "demo" p.Pascal.Ast.prog_name;
  check_int "globals" 3 (List.length p.Pascal.Ast.globals);
  check_int "procs" 1 (List.length p.Pascal.Ast.procs);
  check_int "main statements" 2 (List.length p.Pascal.Ast.main)

let test_parser_precedence () =
  let p = parse "program p; var x : integer; begin x := 1 + 2 * 3 end." in
  match p.Pascal.Ast.main with
  | [ Pascal.Ast.Sassign (_, Pascal.Ast.Ebin (Pascal.Ast.Add, _, Pascal.Ast.Ebin (Pascal.Ast.Mul, _, _))) ] ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parser_relation_binds_loosest () =
  let p = parse "program p; var b : boolean; begin b := 1 + 2 < 3 * 4 end." in
  match p.Pascal.Ast.main with
  | [ Pascal.Ast.Sassign (_, Pascal.Ast.Ebin (Pascal.Ast.Lt, _, _)) ] -> ()
  | _ -> Alcotest.fail "relation should bind loosest"

let test_parser_case () =
  let p =
    parse
      "program p; var x : integer; begin case x of 1, 2: x := 0; 3: x := 9 \
       otherwise x := 5 end end."
  in
  match p.Pascal.Ast.main with
  | [ Pascal.Ast.Scase (_, [ ([ 1; 2 ], _); ([ 3 ], _) ], Some _) ] -> ()
  | _ -> Alcotest.fail "case shape wrong"

let test_parser_errors () =
  List.iter
    (fun src ->
      match Pascal.Parser.of_string src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S parsed" src)
    [
      "program p begin end.";
      "program p; begin x := end.";
      "program p; begin if x then end";
      "program p; var x : array[5..1] of integer; begin end.";
    ]

(* -- static semantics ----------------------------------------------------------- *)

let test_sema_accepts () =
  List.iter
    (fun (_, src) ->
      match Pascal.Sema.front_end src with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)
    Pipeline.Programs.all

let test_sema_rejects () =
  List.iter
    (fun (name, src) ->
      match Pascal.Sema.front_end src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" name)
    [
      ("bool arith", "program p; var b : boolean; begin b := b + b end.");
      ("array scalar", "program p; var a : array[0..3] of integer; begin a := 1 end.");
      ("real mod", "program p; var r : real; begin r := r mod r end.");
      ("in on int", "program p; var x : integer; begin if 1 in x then x := 1 end.");
      ("bad builtin arity", "program p; var x : integer; begin x := abs(1, 2) end.");
      ("while int", "program p; var x : integer; begin while x do x := 0 end.");
      ("dup var", "program p; var x, x : integer; begin end.");
      ("set too big", "program p; var s : set of 0..9999; begin end.");
    ]

(* -- interpreter ------------------------------------------------------------------ *)

let interp src =
  match Pascal.Sema.front_end src with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match Pascal.Interp.run c with
      | Ok r -> r
      | Error e -> Alcotest.failf "%a" Pascal.Interp.pp_error e)

let written_ints (r : Pascal.Interp.result_t) =
  List.filter_map
    (function Pascal.Interp.Vint n -> Some n | _ -> None)
    r.Pascal.Interp.written

let test_interp_arith () =
  let r =
    interp
      "program p; var x : integer; begin x := (7 * 6 - 2) div 4; write(x); \
       write(-7 div 2); write(-7 mod 2) end."
  in
  Alcotest.(check (list int)) "values" [ 10; -3; -1 ] (written_ints r)

let test_interp_structures () =
  let r =
    interp
      {|
program p;
var a : array[0..4] of integer;
    s : set of 0..15;
    i, total : integer;
begin
  for i := 0 to 4 do a[i] := i * i;
  include(s, 3); include(s, 5); exclude(s, 3);
  total := 0;
  for i := 0 to 4 do
    if i in s then total := total + a[i];
  write(total)
end.
|}
  in
  Alcotest.(check (list int)) "only 5*5 counted? no: a[5] oob -> none" [ 0 ]
    (written_ints r)

let test_interp_div_by_zero () =
  match Pascal.Sema.front_end "program p; var x : integer; begin x := 1 div x end." with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match Pascal.Interp.run c with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "division by zero not caught")

let test_interp_oob () =
  match
    Pascal.Sema.front_end
      "program p; var a : array[0..3] of integer; i : integer; begin i := \
       9; a[i] := 1 end."
  with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match Pascal.Interp.run c with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out of bounds not caught")

let test_interp_boolean_connectives () =
  (* regression: [and]/[or]/[in] previously fell through the binary-
     operator evaluator to an [assert false]; nested connectives over
     set membership must evaluate (and short-circuit) properly *)
  let r =
    interp
      {|
program p;
var s : set of 0..15;
    a, b : boolean;
    x, n : integer;
begin
  include(s, 3); include(s, 7);
  x := 3;
  a := (x in s) and ((x + 4) in s);
  b := (x in s) or (99 div x > 0);
  if a and (b or not (x in s)) then n := 1 else n := 2;
  write(n);
  if (x in s) and not ((x + 1) in s) then write(10) else write(20);
  x := 0;
  a := false;
  if a and (1 div x > 0) then write(30) else write(40)
end.
|}
  in
  (* the last test also proves [and] short-circuits: evaluating its
     right operand would trap on the division by zero *)
  Alcotest.(check (list int)) "values" [ 1; 10; 40 ] (written_ints r)

let test_interp_chr_range_checked () =
  (* fuzzer-minimized (pasc fuzz --seed 19, case 4): the interpreter
     used to mask chr's argument to the low byte while compiled code
     kept the full ordinal in a register, so the two sides took
     different arms of the comparison.  Out-of-range chr is a runtime
     error now, on the model of div-by-zero — the in-range case below
     must still agree with the machine end to end. *)
  (match
     Pascal.Sema.front_end
       "program p; var r1 : real; begin if chr(sqr(-563)) >= 'q' then begin \
        end else r1 := 6.63 end."
   with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match Pascal.Interp.run c with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out-of-range chr not caught"));
  let r =
    interp
      "program p; var c : char; n : integer; begin c := chr(113); if c >= \
       'q' then n := 1 else n := 2; write(n) end."
  in
  Alcotest.(check (list int)) "in-range chr still works" [ 1 ] (written_ints r)

let test_interp_32bit_wrap () =
  let r =
    interp
      "program p; var x : integer; begin x := 2000000000; x := x + x; write(x) end."
  in
  Alcotest.(check (list int)) "wraps like the machine"
    [ Int32.to_int (Int32.add 2000000000l 2000000000l) ]
    (written_ints r)

let () =
  Alcotest.run "pascal"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "chars and ops" `Quick test_lexer_char_and_ops;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "program shape" `Quick test_parser_program_shape;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "relations loosest" `Quick test_parser_relation_binds_loosest;
          Alcotest.test_case "case" `Quick test_parser_case;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "sema",
        [
          Alcotest.test_case "accepts the corpus" `Quick test_sema_accepts;
          Alcotest.test_case "rejects bad programs" `Quick test_sema_rejects;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "arrays and sets" `Quick test_interp_structures;
          Alcotest.test_case "boolean connectives and in" `Quick
            test_interp_boolean_connectives;
          Alcotest.test_case "division by zero" `Quick test_interp_div_by_zero;
          Alcotest.test_case "bounds" `Quick test_interp_oob;
          Alcotest.test_case "chr range checked" `Quick
            test_interp_chr_range_checked;
          Alcotest.test_case "32-bit wrap" `Quick test_interp_32bit_wrap;
        ] );
    ]
