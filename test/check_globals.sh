#!/bin/sh
# Guard against hidden toplevel mutable state in the core library.
#
# The parallel engine shares one Cogg library across domains: any
# module-level ref/Hashtbl/Buffer/Bytes/Array binding is shared mutable
# state that would race under Pool.map and silently break the
# byte-identical-output guarantee.  Per-compile state belongs in the
# per-task contexts (Driver, Regalloc, Cse, Labels, Code_buffer);
# process-wide counters must be Atomic.t (which this check permits).
#
# The check is textual on purpose: it runs with no build products and
# flags the binding the moment it is written, not when a determinism
# test happens to catch the race.
#
# Sanctioned domain-safe toplevel state (NOT matched by the forbidden
# pattern, listed here so the whitelist is explicit):
#   - Atomic.make          lock-free counters/flags (tables_cache hits,
#                          Metrics/Trace enabled flags)
#   - Mutex.create         guards for registry mutation (Metrics/Trace
#                          per-domain buffer registries)
#   - Domain.DLS.new_key   per-domain buffers; never shared between
#                          domains, merged only at quiescence
#   - Metrics.sum / Metrics.high_water   counter registration: the
#                          returned handle is an immutable index into
#                          the DLS-buffered registry (covers the codegen
#                          counters: driver.*, including
#                          driver.prepared_tokens, loader.*, emit.*)
#   - immutable sentinel records/constructors (Driver.bottom,
#                          Code_buffer.dummy_item): never mutated, used
#                          only to pre-fill growable arrays
#   - Cogprof.t collectors  profile-capture state is plain mutable int
#                          arrays, but every collector is allocated per
#                          capture run by the caller (Cogprof.create has
#                          no toplevel instance) and is documented as
#                          never shared across domains; capture paths
#                          (pasc, fuzz runner, bench profile) are
#                          sequential by construction
#   - Targets.all          the per-target registry (lib/machine) is a
#                          plain immutable association list consulted
#                          from pool domains; adding a backend adds a
#                          row, never a mutation.  The opcode tables in
#                          Insn (Hashtbl.t lookups) are populated once
#                          at module initialization, before any domain
#                          is spawned, and are read-only afterwards.

set -eu

[ "$#" -gt 0 ] || set -- lib/core

status=0
pattern='^let [a-zA-Z_0-9]+ *(: *[^=]*)?= *(ref |Hashtbl\.create|Buffer\.create|Bytes\.create|Bytes\.make|Array\.make|Array\.create|Queue\.create|Stack\.create)'

for dir in "$@"; do
  for f in "$dir"/*.ml; do
    hits=$(grep -nE "$pattern" "$f" || true)
    if [ -n "$hits" ]; then
      echo "toplevel mutable state in $f (use a per-compile context or Atomic.t):" >&2
      echo "$hits" >&2
      status=1
    fi
  done
  if [ "$status" -eq 0 ]; then
    echo "check_globals: no toplevel mutable bindings in $dir"
  fi
done
exit "$status"
