(** Reference interpreter: the ground truth the generated machine code is
    checked against.  Integer arithmetic is normalized to signed 32-bit,
    matching the 370's word size; [div]/[mod] truncate toward zero like
    the hardware. *)

type value =
  | Vint of int
  | Vbool of bool
  | Vchar of char
  | Vreal of float
  | Varr of value array * int (* elements, low bound *)
  | Vset of bool array

type error = { msg : string }

let pp_error ppf e = Fmt.pf ppf "interp: %s" e.msg

exception Fail of error

let fail fmt = Fmt.kstr (fun msg -> raise (Fail { msg })) fmt

let norm32 x =
  let v = x land 0xFFFFFFFF in
  if v >= 0x80000000 then v - 0x100000000 else v

let rec zero_of (t : Ast.ty) : value =
  match t with
  | Ast.Tint | Ast.Tsub _ -> Vint 0
  | Ast.Tbool -> Vbool false
  | Ast.Tchar -> Vchar '\000'
  | Ast.Treal -> Vreal 0.0
  | Ast.Tarray { lo; hi; elem } ->
      Varr (Array.init (hi - lo + 1) (fun _ -> zero_of elem), lo)
  | Ast.Tset n -> Vset (Array.make (n + 1) false)

type frame = (string, value ref) Hashtbl.t

type t = {
  globals : frame;
  prog : Ast.program;
  mutable written : value list; (* reversed *)
  mutable steps : int;
  max_steps : int;
}

let mk_frame (decls : Ast.var_decl list) : frame =
  let h = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.var_decl) -> Hashtbl.replace h d.Ast.v_name (ref (zero_of d.Ast.v_ty)))
    decls;
  h

let cell t (locals : frame option) name : value ref =
  match Option.bind locals (fun l -> Hashtbl.find_opt l name) with
  | Some c -> c
  | None -> (
      match Hashtbl.find_opt t.globals name with
      | Some c -> c
      | None -> fail "undeclared variable %s" name)

let as_int = function
  | Vint n -> n
  | Vchar c -> Char.code c
  | Vbool b -> if b then 1 else 0
  | _ -> fail "integer expected"

let as_real = function
  | Vreal f -> f
  | Vint n -> float_of_int n
  | _ -> fail "real expected"

let as_bool = function Vbool b -> b | _ -> fail "boolean expected"

let tick t =
  t.steps <- t.steps + 1;
  if t.steps > t.max_steps then fail "interpreter step budget exhausted"

let rec eval t locals (e : Ast.expr) : value =
  tick t;
  match e with
  | Ast.Eint n -> Vint (norm32 n)
  | Ast.Ereal f -> Vreal f
  | Ast.Ebool b -> Vbool b
  | Ast.Echar c -> Vchar c
  | Ast.Evar v -> !(cell t locals v)
  | Ast.Eindex (v, idx) -> (
      let i = as_int (eval t locals idx) in
      match !(cell t locals v) with
      | Varr (elems, lo) ->
          if i < lo || i - lo >= Array.length elems then
            fail "subscript %d out of range for %s" i v
          else elems.(i - lo)
      | _ -> fail "%s is not an array" v)
  | Ast.Eun (Ast.Neg, e) -> (
      match eval t locals e with
      | Vint n -> Vint (norm32 (-n))
      | Vreal f -> Vreal (-.f)
      | _ -> fail "bad operand to unary minus")
  | Ast.Eun (Ast.Not, e) -> Vbool (not (as_bool (eval t locals e)))
  | Ast.Ebin (op, a, b) -> (
      (* One complete match over the operator: the boolean connectives
         short-circuit (so [b] must stay unevaluated until needed) and the
         arithmetic/comparison operators evaluate both sides through the
         shared helpers.  No operator falls through to a catch-all. *)
      let arith fi fr =
        let va = eval t locals a in
        let vb = eval t locals b in
        match (va, vb) with
        | Vint x, Vint y -> Vint (norm32 (fi x y))
        | (Vreal _ | Vint _), (Vreal _ | Vint _) ->
            Vreal (fr (as_real va) (as_real vb))
        | _ -> fail "bad arithmetic operands"
      in
      let compare_vals () =
        let va = eval t locals a in
        let vb = eval t locals b in
        match (va, vb) with
        | Vchar x, Vchar y -> compare x y
        | Vbool x, Vbool y -> compare x y
        | (Vreal _ | Vint _), (Vreal _ | Vint _) ->
            compare (as_real va) (as_real vb)
        | _ -> fail "bad comparison operands"
      in
      match op with
      | Ast.And -> Vbool (as_bool (eval t locals a) && as_bool (eval t locals b))
      | Ast.Or -> Vbool (as_bool (eval t locals a) || as_bool (eval t locals b))
      | Ast.In -> (
          let x = as_int (eval t locals a) in
          match eval t locals b with
          | Vset bits -> Vbool (x >= 0 && x < Array.length bits && bits.(x))
          | _ -> fail "in over a non-set")
      | Ast.Add -> arith ( + ) ( +. )
      | Ast.Sub -> arith ( - ) ( -. )
      | Ast.Mul -> arith ( * ) ( *. )
      | Ast.Div ->
          let va = eval t locals a in
          let d = as_int (eval t locals b) in
          if d = 0 then fail "division by zero"
          else Vint (norm32 (as_int va / d))
      | Ast.Mod ->
          let va = eval t locals a in
          let d = as_int (eval t locals b) in
          if d = 0 then fail "modulo by zero"
          else Vint (norm32 (as_int va mod d))
      | Ast.RDiv ->
          let va = eval t locals a in
          let d = as_real (eval t locals b) in
          if d = 0.0 then fail "division by zero"
          else Vreal (as_real va /. d)
      | Ast.Lt -> Vbool (compare_vals () < 0)
      | Ast.Le -> Vbool (compare_vals () <= 0)
      | Ast.Gt -> Vbool (compare_vals () > 0)
      | Ast.Ge -> Vbool (compare_vals () >= 0)
      | Ast.Eq -> Vbool (compare_vals () = 0)
      | Ast.Ne -> Vbool (compare_vals () <> 0))
  | Ast.Ecall (f, args) -> (
      let vs = List.map (eval t locals) args in
      match (f, vs) with
      | "abs", [ Vint n ] -> Vint (norm32 (abs n))
      | "abs", [ Vreal f ] -> Vreal (Float.abs f)
      | "sqr", [ Vint n ] -> Vint (norm32 (n * n))
      | "sqr", [ Vreal f ] -> Vreal (f *. f)
      | "odd", [ Vint n ] -> Vbool (n land 1 = 1)
      | "trunc", [ Vreal f ] -> Vint (norm32 (int_of_float (Float.trunc f)))
      | "trunc", [ Vint n ] -> Vint n
      | "ord", [ v ] -> Vint (as_int v)
      | "chr", [ Vint n ] ->
          (* out-of-range chr is a runtime error, not a silent mask: the
             compiled code keeps the full ordinal in a register, so any
             masking here would diverge from execution *)
          if n < 0 || n > 255 then fail "chr argument %d out of range" n
          else Vchar (Char.chr n)
      | "succ", [ Vint n ] -> Vint (norm32 (n + 1))
      | "succ", [ Vchar c ] ->
          if Char.code c = 255 then fail "succ: chr(255) has no successor"
          else Vchar (Char.chr (Char.code c + 1))
      | "pred", [ Vint n ] -> Vint (norm32 (n - 1))
      | "pred", [ Vchar c ] ->
          if Char.code c = 0 then fail "pred: chr(0) has no predecessor"
          else Vchar (Char.chr (Char.code c - 1))
      | "min", [ a; b ] -> (
          match (a, b) with
          | Vint x, Vint y -> Vint (min x y)
          | _ -> Vreal (min (as_real a) (as_real b)))
      | "max", [ a; b ] -> (
          match (a, b) with
          | Vint x, Vint y -> Vint (max x y)
          | _ -> Vreal (max (as_real a) (as_real b)))
      | _ -> fail "bad builtin call %s" f)

let assign_value target v =
  (* implicit int -> real coercion on assignment *)
  match (!target, v) with
  | Vreal _, Vint n -> target := Vreal (float_of_int n)
  | Vchar _, Vint n -> target := Vchar (Char.chr (n land 0xFF))
  | _ -> target := v

let rec exec t locals (s : Ast.stmt) : unit =
  tick t;
  match s with
  | Ast.Sempty -> ()
  | Ast.Sblock body -> List.iter (exec t locals) body
  | Ast.Sassign (Ast.Lvar v, e) -> assign_value (cell t locals v) (eval t locals e)
  | Ast.Sassign (Ast.Lindex (v, idx), e) -> (
      let i = as_int (eval t locals idx) in
      let value = eval t locals e in
      match !(cell t locals v) with
      | Varr (elems, lo) ->
          if i < lo || i - lo >= Array.length elems then
            fail "subscript %d out of range for %s" i v
          else
            let r = ref elems.(i - lo) in
            assign_value r value;
            elems.(i - lo) <- !r
      | _ -> fail "%s is not an array" v)
  | Ast.Sif (c, a, b) ->
      if as_bool (eval t locals c) then List.iter (exec t locals) a
      else List.iter (exec t locals) b
  | Ast.Swhile (c, body) ->
      while as_bool (eval t locals c) do
        tick t;
        List.iter (exec t locals) body
      done
  | Ast.Srepeat (body, c) ->
      let continue = ref true in
      while !continue do
        tick t;
        List.iter (exec t locals) body;
        if as_bool (eval t locals c) then continue := false
      done
  | Ast.Sfor { var; from_; downto_; to_; body } ->
      (* mirrors the generated code exactly: the loop variable is
         initialized before the bound test and steps past the limit *)
      let v = cell t locals var in
      let limit = as_int (eval t locals to_) in
      v := Vint (as_int (eval t locals from_));
      let continue () =
        let i = as_int !v in
        if downto_ then i >= limit else i <= limit
      in
      while continue () do
        tick t;
        List.iter (exec t locals) body;
        v := Vint (norm32 (as_int !v + if downto_ then -1 else 1))
      done
  | Ast.Scase (sel, arms, otherwise) -> (
      let x = as_int (eval t locals sel) in
      match
        List.find_opt (fun (labels, _) -> List.mem x labels) arms
      with
      | Some (_, body) -> List.iter (exec t locals) body
      | None -> (
          match otherwise with
          | Some body -> List.iter (exec t locals) body
          | None -> fail "case selector %d matches no arm" x))
  | Ast.Scall ("include", [ Ast.Evar s; e ]) -> (
      let x = as_int (eval t locals e) in
      match !(cell t locals s) with
      | Vset bits when x >= 0 && x < Array.length bits -> bits.(x) <- true
      | Vset _ -> fail "set element %d out of range" x
      | _ -> fail "include over a non-set")
  | Ast.Scall ("exclude", [ Ast.Evar s; e ]) -> (
      let x = as_int (eval t locals e) in
      match !(cell t locals s) with
      | Vset bits when x >= 0 && x < Array.length bits -> bits.(x) <- false
      | Vset _ -> fail "set element %d out of range" x
      | _ -> fail "exclude over a non-set")
  | Ast.Scall ("write", [ e ]) -> t.written <- eval t locals e :: t.written
  | Ast.Scall (p, _) -> (
      match
        List.find_opt (fun (d : Ast.proc_decl) -> d.Ast.p_name = p) t.prog.Ast.procs
      with
      | Some proc ->
          let frame = mk_frame proc.Ast.p_locals in
          List.iter (exec t (Some frame)) proc.Ast.p_body
      | None -> fail "unknown procedure %s" p)

type result_t = {
  final_globals : (string * value) list;
  written : value list;
  steps : int;
}

let run ?(max_steps = 2_000_000) (c : Sema.checked) : (result_t, error) result =
  let prog = c.Sema.prog in
  let t =
    {
      globals = mk_frame prog.Ast.globals;
      prog;
      written = [];
      steps = 0;
      max_steps;
    }
  in
  try
    List.iter (exec t None) prog.Ast.main;
    Ok
      {
        final_globals =
          Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.globals [];
        written = List.rev t.written;
        steps = t.steps;
      }
  with Fail e -> Error e
