(** Wire protocol of the [pascd] compile service: length-prefixed
    frames, tagged payloads, big-endian integers.  See wire.mli for the
    frame grammar; this module is pure encoding plus the two blocking
    frame I/O helpers the client and the test harness share. *)

type dispatch = Default | Flat | Comb | Hybrid

type options = {
  cse : bool option;
  checks : bool option;
  dispatch : dispatch;
}

let default_options = { cse = None; checks = None; dispatch = Default }

type request =
  | Compile of { id : int; options : options; source : string }
  | Stats
  | Ping
  | Pause of int
  | Hello
  | Shutdown

type outcome = (string * string, string) result

type reply =
  | Compiled of { id : int; cached : bool; outcome : outcome }
  | Overloaded of { id : int; retry_after_ms : int }
  | Stats_reply of string
  | Hello_reply of string
  | Ack
  | Bye

(* 16 MiB: far above any real listing + object image, far below what a
   corrupt length prefix could ask us to allocate *)
let max_frame = 1 lsl 24

exception Frame_too_large of int

(* -- primitive encoders ------------------------------------------------------ *)

let put_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let get_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

(* tri-state option byte: 0 = server default, 1 = false, 2 = true *)
let put_opt_bool b = function
  | None -> Buffer.add_char b '\000'
  | Some false -> Buffer.add_char b '\001'
  | Some true -> Buffer.add_char b '\002'

let get_opt_bool = function
  | '\000' -> Ok None
  | '\001' -> Ok (Some false)
  | '\002' -> Ok (Some true)
  | c -> Error (Printf.sprintf "bad option byte %d" (Char.code c))

let dispatch_byte = function
  | Default -> '\000'
  | Flat -> '\001'
  | Comb -> '\002'
  | Hybrid -> '\003'

let dispatch_of_byte = function
  | '\000' -> Ok Default
  | '\001' -> Ok Flat
  | '\002' -> Ok Comb
  | '\003' -> Ok Hybrid
  | c -> Error (Printf.sprintf "bad dispatch byte %d" (Char.code c))

(** The cache key's option component: same canonical bytes as the wire
    encoding, so distinct option sets are distinct key material. *)
let options_tag (o : options) : string =
  let b = Buffer.create 3 in
  put_opt_bool b o.cse;
  put_opt_bool b o.checks;
  Buffer.add_char b (dispatch_byte o.dispatch);
  Buffer.contents b

(* -- requests ----------------------------------------------------------------- *)

let encode_request (r : request) : string =
  let b = Buffer.create 64 in
  (match r with
  | Compile { id; options; source } ->
      Buffer.add_char b 'C';
      put_u32 b id;
      Buffer.add_string b (options_tag options);
      Buffer.add_string b source
  | Stats -> Buffer.add_char b 'S'
  | Ping -> Buffer.add_char b 'P'
  | Pause ms ->
      Buffer.add_char b 'Z';
      put_u32 b ms
  | Hello -> Buffer.add_char b 'H'
  | Shutdown -> Buffer.add_char b 'Q');
  Buffer.contents b

let decode_request (s : string) : (request, string) result =
  let ( let* ) = Result.bind in
  let n = String.length s in
  if n = 0 then Error "empty request frame"
  else
    match s.[0] with
    | 'C' ->
        if n < 8 then Error "truncated compile request"
        else
          let* cse = get_opt_bool s.[5] in
          let* checks = get_opt_bool s.[6] in
          let* dispatch = dispatch_of_byte s.[7] in
          Ok
            (Compile
               {
                 id = get_u32 s 1;
                 options = { cse; checks; dispatch };
                 source = String.sub s 8 (n - 8);
               })
    | 'S' -> Ok Stats
    | 'P' -> Ok Ping
    | 'Z' ->
        if n < 5 then Error "truncated pause request"
        else Ok (Pause (get_u32 s 1))
    | 'H' -> Ok Hello
    | 'Q' -> Ok Shutdown
    | c -> Error (Printf.sprintf "unknown request tag %d" (Char.code c))

(* -- replies ------------------------------------------------------------------ *)

let encode_reply (r : reply) : string =
  let b = Buffer.create 256 in
  (match r with
  | Compiled { id; cached; outcome } -> (
      Buffer.add_char b 'R';
      put_u32 b id;
      Buffer.add_char b (if cached then '\001' else '\000');
      match outcome with
      | Ok (listing, code) ->
          Buffer.add_char b 'K';
          put_u32 b (String.length listing);
          Buffer.add_string b listing;
          Buffer.add_string b code
      | Error msg ->
          Buffer.add_char b 'E';
          Buffer.add_string b msg)
  | Overloaded { id; retry_after_ms } ->
      Buffer.add_char b 'O';
      put_u32 b id;
      put_u32 b retry_after_ms
  | Stats_reply text ->
      Buffer.add_char b 'T';
      Buffer.add_string b text
  | Hello_reply target ->
      Buffer.add_char b 'h';
      Buffer.add_string b target
  | Ack -> Buffer.add_char b 'A'
  | Bye -> Buffer.add_char b 'B');
  Buffer.contents b

let decode_reply (s : string) : (reply, string) result =
  let n = String.length s in
  if n = 0 then Error "empty reply frame"
  else
    match s.[0] with
    | 'R' ->
        if n < 7 then Error "truncated compile reply"
        else
          let id = get_u32 s 1 in
          let cached = s.[5] = '\001' in
          (match s.[6] with
          | 'K' ->
              if n < 11 then Error "truncated compile reply body"
              else
                let ll = get_u32 s 7 in
                if 11 + ll > n then Error "listing length out of range"
                else
                  let listing = String.sub s 11 ll in
                  let code = String.sub s (11 + ll) (n - 11 - ll) in
                  Ok (Compiled { id; cached; outcome = Ok (listing, code) })
          | 'E' ->
              Ok
                (Compiled
                   { id; cached; outcome = Error (String.sub s 7 (n - 7)) })
          | c -> Error (Printf.sprintf "bad outcome tag %d" (Char.code c)))
    | 'O' ->
        if n < 5 then Error "truncated overloaded reply"
        else
          (* pre-hint peers encode only the id; treat a missing hint as
             "retry whenever", not a decode error *)
          let retry_after_ms = if n >= 9 then get_u32 s 5 else 0 in
          Ok (Overloaded { id = get_u32 s 1; retry_after_ms })
    | 'T' -> Ok (Stats_reply (String.sub s 1 (n - 1)))
    | 'h' -> Ok (Hello_reply (String.sub s 1 (n - 1)))
    | 'A' -> Ok Ack
    | 'B' -> Ok Bye
    | c -> Error (Printf.sprintf "unknown reply tag %d" (Char.code c))

(* -- frame I/O ---------------------------------------------------------------- *)

(* Partial-transfer loops must survive signal delivery: a timer or
   profiling signal landing mid-[read]/[write] returns EINTR (OCaml
   installs handlers without SA_RESTART), and before this helper a
   signal-bombed client would tear a frame in half and desynchronize the
   stream.  Only EINTR is retried — real errors still raise. *)
let rec retry_eintr (f : unit -> 'a) : 'a =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

(** Substitute for a reply whose encoding exceeds [max_frame]: same id
    and shape, but carrying a structured error the peer can actually
    receive (the read side rejects oversized frames, so sending the real
    bytes would only get the connection dropped). *)
let oversized_substitute (r : reply) ~(size : int) : reply =
  let msg =
    Printf.sprintf "reply too large for the wire (%d bytes > %d frame cap)"
      size max_frame
  in
  match r with
  | Compiled { id; cached; _ } -> Compiled { id; cached; outcome = Error msg }
  | Overloaded _ | Stats_reply _ | Hello_reply _ | Ack | Bye -> Stats_reply msg

let write_frame (fd : Unix.file_descr) (payload : string) : unit =
  let n = String.length payload in
  (* enforce the cap on the send side too: the receiver would reject the
     length prefix anyway, so raise before a single byte goes out and
     leave the stream clean for a recovery reply *)
  if n > max_frame then raise (Frame_too_large n);
  let framed = Bytes.create (4 + n) in
  Bytes.set framed 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set framed 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set framed 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set framed 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 framed 4 n;
  let total = 4 + n in
  let sent = ref 0 in
  while !sent < total do
    sent :=
      !sent + retry_eintr (fun () -> Unix.write fd framed !sent (total - !sent))
  done

let read_exact fd n ~what : string =
  let buf = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    let r = retry_eintr (fun () -> Unix.read fd buf !got (n - !got)) in
    if r = 0 then failwith ("unexpected EOF reading " ^ what);
    got := !got + r
  done;
  Bytes.unsafe_to_string buf

let read_frame (fd : Unix.file_descr) : string option =
  let hdr = Bytes.create 4 in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < 4 do
    let r = retry_eintr (fun () -> Unix.read fd hdr !got (4 - !got)) in
    if r = 0 then
      if !got = 0 then eof := true
      else failwith "unexpected EOF inside frame header"
    else got := !got + r
  done;
  if !eof then None
  else
    let n =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if n > max_frame then failwith (Printf.sprintf "oversized frame (%d bytes)" n)
    else Some (read_exact fd n ~what:"frame payload")

(* -- batch fingerprint -------------------------------------------------------- *)

(** Byte-for-byte the {!Pipeline.Batch.fingerprint} construction, over
    replies instead of results; anything that is not a [Compiled] reply
    folds in its own separator so it can never collide with one. *)
let fingerprint (replies : reply array) : string =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun r ->
      match r with
      | Compiled { outcome = Ok (listing, code); _ } ->
          Buffer.add_string buf listing;
          Buffer.add_char buf '\000';
          Buffer.add_string buf code;
          Buffer.add_char buf '\001'
      | Compiled { outcome = Error m; _ } ->
          Buffer.add_string buf m;
          Buffer.add_char buf '\002'
      | Overloaded _ | Stats_reply _ | Hello_reply _ | Ack | Bye ->
          Buffer.add_char buf '\003')
    replies;
  Digest.to_hex (Digest.string (Buffer.contents buf))
