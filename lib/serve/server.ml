(** The [pascd] daemon loop.

    Single-threaded event loop (select over the listen socket and every
    connection) plus a {!Cogg.Pool} for the compiles themselves:

    - frames are parsed incrementally per connection;
    - a compile request first probes the result cache — a verified hit
      is answered inline, right in the event loop, with no pool
      round-trip (the fast path the benchmark measures);
    - everything else joins a bounded pending queue (full queue =>
      [Overloaded], the admission-control contract) and is drained in
      batches through [Pool.maybe], exactly like
      [Pipeline.Batch.compile_all] — so a served batch is byte-identical
      to a direct one;
    - [Pause n] suspends draining for [n] ms without suspending
      admission, which lets a test fill the queue deterministically.

    Replies are written synchronously; a client that floods requests
    without reading replies can stall the loop on a full socket buffer
    (documented in DESIGN.md — acceptable for a trusted local service,
    where clients are our own [Client] module, which interleaves reads
    with writes). *)

type verify_mode = Verify_never | Verify_once | Verify_always

type stats = {
  requests : int;
  compiles : int;
  inline_hits : int;
  verified_hits : int;
  overloaded : int;
  gate_failures : int;
  oversized : int;
  cache : Cogg.Result_cache.stats;
}

let src = Logs.Src.create "cogg.serve" ~doc:"pascd compile service"

module Log = (val Logs.src_log src : Logs.LOG)

let m_overloaded = Cogg.Metrics.sum "serve.overloaded"
let m_gate_failures = Cogg.Metrics.sum "serve.gate_failures"

(* a cache entry: the reply body plus whether the determinism gate has
   confirmed it against a fresh compile (an Atomic only because entries
   are shared with pool-side comparison code; all writes happen on the
   loop thread) *)
type entry = { body : Wire.outcome; verified : bool Atomic.t }

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (** bytes received, no complete frame yet *)
  mutable alive : bool;
}

type job = {
  j_conn : conn;
  j_id : int;
  j_options : Wire.options;
  j_source : string;
  j_key : string;
  j_expect : entry option;
      (** an unverified cached entry to gate the fresh compile against *)
}

type t = {
  tables : Cogg.Tables.t;
  table_key : string;
  pool : Cogg.Pool.t option;
  sock : Unix.file_descr;
  socket_path : string;
  queue_capacity : int;
  verify : verify_mode;
  cache : entry Cogg.Result_cache.t;
  pending : job Queue.t;
  mutable conns : conn list;
  mutable pause_until : float;
  mutable stop : bool;
  mutable n_requests : int;
  mutable n_compiles : int;
  mutable n_inline_hits : int;
  mutable n_verified_hits : int;
  mutable n_overloaded : int;
  mutable n_gate_failures : int;
  mutable n_oversized : int;
}

let stats (t : t) : stats =
  {
    requests = t.n_requests;
    compiles = t.n_compiles;
    inline_hits = t.n_inline_hits;
    verified_hits = t.n_verified_hits;
    overloaded = t.n_overloaded;
    gate_failures = t.n_gate_failures;
    oversized = t.n_oversized;
    cache = Cogg.Result_cache.stats t.cache;
  }

let stats_text (t : t) : string =
  let s = stats t in
  let b = Buffer.create 256 in
  let line k v = Buffer.add_string b (Printf.sprintf "%s %d\n" k v) in
  line "requests" s.requests;
  line "compiles" s.compiles;
  line "inline_hits" s.inline_hits;
  line "verified_hits" s.verified_hits;
  line "overloaded" s.overloaded;
  line "gate_failures" s.gate_failures;
  line "oversized" s.oversized;
  line "cache_hits" s.cache.Cogg.Result_cache.hits;
  line "cache_misses" s.cache.Cogg.Result_cache.misses;
  line "cache_evictions" s.cache.Cogg.Result_cache.evictions;
  line "cache_entries" s.cache.Cogg.Result_cache.entries;
  line "queue_capacity" t.queue_capacity;
  line "pool_size"
    (match t.pool with Some p -> Cogg.Pool.size p | None -> 1);
  Buffer.add_string b
    (Printf.sprintf "target %s\n"
       t.tables.Cogg.Tables.target.Machine.Target.name);
  Buffer.contents b

(* -- the compile itself ------------------------------------------------------- *)

let dispatch_of : Wire.dispatch -> Cogg.Driver.dispatch option = function
  | Wire.Default -> None
  | Wire.Flat -> Some Cogg.Driver.Flat
  | Wire.Comb -> Some Cogg.Driver.Comb
  | Wire.Hybrid -> Some Cogg.Driver.Hybrid

(** One compilation, options applied, exceptions contained (a crash
    must fail one request, not the pool batch it rode in). *)
let run_compile (tables : Cogg.Tables.t) (o : Wire.options) (source : string) :
    Wire.outcome =
  match
    Pipeline.compile ?cse:o.Wire.cse ?checks:o.Wire.checks
      ?dispatch:(dispatch_of o.Wire.dispatch) tables source
  with
  | Ok c ->
      Ok (c.Pipeline.gen.Cogg.Codegen.listing, Pipeline.Batch.code_bytes c)
  | Error m -> Error m
  | exception e -> Error ("internal: " ^ Printexc.to_string e)

(** The result-cache key: table identity, canonical option bytes,
    source text — content-addressed end to end. *)
let cache_key (t : t) (o : Wire.options) (source : string) : string =
  Digest.to_hex
    (Digest.string
       (t.table_key ^ "\x00" ^ Wire.options_tag o ^ "\x00" ^ source))

(* -- connection plumbing ------------------------------------------------------ *)

let close_conn (t : t) (c : conn) =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

let send (t : t) (c : conn) (r : Wire.reply) =
  if c.alive then begin
    (* encode once; a reply too big for the wire (a pathological listing
       or object image) is replaced by a structured error the client can
       actually receive, instead of an un-receivable frame that would get
       the connection dropped at the peer's length check *)
    let payload = Wire.encode_reply r in
    let payload =
      let n = String.length payload in
      if n <= Wire.max_frame then payload
      else begin
        t.n_oversized <- t.n_oversized + 1;
        Log.warn (fun f -> f "reply of %d bytes exceeds the frame cap" n);
        Wire.encode_reply (Wire.oversized_substitute r ~size:n)
      end
    in
    try Wire.write_frame c.fd payload
    with Unix.Unix_error _ | Sys_error _ ->
      Log.info (fun f -> f "client went away mid-reply");
      close_conn t c
  end

(* -- request handling --------------------------------------------------------- *)

(** The backoff hint an overloaded reply carries: the remainder of any
    active pause (during which the queue cannot drain at all) plus a
    small per-queued-job estimate, so a deeper queue asks for a longer
    wait.  A hint, not a promise — the client's retry still goes through
    admission control like any other request. *)
let retry_after_ms (t : t) : int =
  let pause_ms =
    let rem = t.pause_until -. Unix.gettimeofday () in
    if rem > 0. then int_of_float (Float.ceil (rem *. 1000.)) else 0
  in
  pause_ms + (2 * Queue.length t.pending) + 1

let enqueue (t : t) (job : job) =
  if Queue.length t.pending >= t.queue_capacity then begin
    t.n_overloaded <- t.n_overloaded + 1;
    Cogg.Metrics.add m_overloaded 1;
    send t job.j_conn
      (Wire.Overloaded { id = job.j_id; retry_after_ms = retry_after_ms t })
  end
  else Queue.add job t.pending

let handle_compile (t : t) (c : conn) ~id (options : Wire.options)
    (source : string) =
  let key = cache_key t options source in
  let job expect =
    {
      j_conn = c;
      j_id = id;
      j_options = options;
      j_source = source;
      j_key = key;
      j_expect = expect;
    }
  in
  match Cogg.Result_cache.find t.cache key with
  | Some e when Atomic.get e.verified || t.verify = Verify_never ->
      (* the fast path: a verified (or trusted) hit never touches the
         pool — answered right here in the event loop *)
      t.n_inline_hits <- t.n_inline_hits + 1;
      send t c (Wire.Compiled { id; cached = true; outcome = e.body })
  | Some e -> enqueue t (job (Some e))
  | None -> enqueue t (job None)

let handle_request (t : t) (c : conn) (req : Wire.request) =
  t.n_requests <- t.n_requests + 1;
  match req with
  | Wire.Compile { id; options; source } -> handle_compile t c ~id options source
  | Wire.Stats -> send t c (Wire.Stats_reply (stats_text t))
  | Wire.Ping -> send t c Wire.Ack
  | Wire.Hello ->
      send t c
        (Wire.Hello_reply t.tables.Cogg.Tables.target.Machine.Target.name)
  | Wire.Pause ms ->
      t.pause_until <- Unix.gettimeofday () +. (float_of_int ms /. 1000.);
      send t c Wire.Ack
  | Wire.Shutdown ->
      t.stop <- true;
      send t c Wire.Bye

(* -- queue draining ----------------------------------------------------------- *)

(** Drain every pending compile through the pool in one batch (results
    placed by index, same determinism argument as [Batch.compile_all]),
    then apply the cache policy and reply in request order. *)
let drain (t : t) =
  if not (Queue.is_empty t.pending) then begin
    let jobs = Array.of_seq (Queue.to_seq t.pending) in
    Queue.clear t.pending;
    let results =
      Cogg.Pool.maybe t.pool
        (fun j -> run_compile t.tables j.j_options j.j_source)
        jobs
    in
    t.n_compiles <- t.n_compiles + Array.length jobs;
    Array.iteri
      (fun i (j : job) ->
        let fresh = results.(i) in
        match j.j_expect with
        | Some e ->
            if e.body = fresh then begin
              (* determinism gate passed: the cached bytes are what a
                 fresh compile produces *)
              if t.verify = Verify_once then Atomic.set e.verified true;
              t.n_verified_hits <- t.n_verified_hits + 1;
              send t j.j_conn
                (Wire.Compiled { id = j.j_id; cached = true; outcome = fresh })
            end
            else begin
              (* gate failure: expel the lying entry, serve (and cache)
                 the fresh bytes, and count it loudly — this should
                 never happen while the determinism oracle holds *)
              t.n_gate_failures <- t.n_gate_failures + 1;
              Cogg.Metrics.add m_gate_failures 1;
              Log.err (fun f ->
                  f "determinism gate failure for key %s (entry expelled)"
                    j.j_key);
              Cogg.Result_cache.remove t.cache j.j_key;
              Cogg.Result_cache.store t.cache j.j_key
                { body = fresh; verified = Atomic.make false };
              send t j.j_conn
                (Wire.Compiled { id = j.j_id; cached = false; outcome = fresh })
            end
        | None ->
            Cogg.Result_cache.store t.cache j.j_key
              { body = fresh; verified = Atomic.make (t.verify = Verify_never) };
            send t j.j_conn
              (Wire.Compiled { id = j.j_id; cached = false; outcome = fresh }))
      jobs
  end

(* -- frame extraction --------------------------------------------------------- *)

let frame_len (s : string) : int option =
  if String.length s < 4 then None
  else
    Some
      ((Char.code s.[0] lsl 24)
      lor (Char.code s.[1] lsl 16)
      lor (Char.code s.[2] lsl 8)
      lor Char.code s.[3])

(** Consume every complete frame buffered on the connection; a protocol
    violation (oversized frame, undecodable request) drops the
    connection — there is no way to resynchronize a framed stream. *)
let rec process_frames (t : t) (c : conn) =
  match frame_len c.inbuf with
  | None -> ()
  | Some n when n > Wire.max_frame ->
      Log.warn (fun f -> f "dropping client: oversized frame (%d bytes)" n);
      close_conn t c
  | Some n when String.length c.inbuf < 4 + n -> ()
  | Some n -> (
      let payload = String.sub c.inbuf 4 n in
      c.inbuf <- String.sub c.inbuf (4 + n) (String.length c.inbuf - 4 - n);
      match Wire.decode_request payload with
      | Error m ->
          Log.warn (fun f -> f "dropping client: %s" m);
          close_conn t c
      | Ok req ->
          handle_request t c req;
          if c.alive && not t.stop then process_frames t c)

let read_chunk_size = 65536

let on_readable (t : t) (c : conn) =
  let buf = Bytes.create read_chunk_size in
  match Unix.read c.fd buf 0 read_chunk_size with
  | 0 -> close_conn t c
  | n ->
      c.inbuf <- c.inbuf ^ Bytes.sub_string buf 0 n;
      process_frames t c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t c

(* -- lifecycle ---------------------------------------------------------------- *)

let create ?pool ?(queue_capacity = 64) ?(cache_capacity = 256) ?cache_shards
    ?(verify = Verify_once) ?(self_check = true) ~table_key ~socket_path
    (tables : Cogg.Tables.t) : (t, string) result =
  let gate =
    if not self_check then Ok ()
    else
      (* the cache's correctness premise, checked before we serve a
         single byte: recompiling a known program is byte-identical *)
      match Fuzz.Oracle.determinism tables Pipeline.Programs.gcd with
      | Fuzz.Oracle.Pass -> Ok ()
      | st ->
          Error
            (Fmt.str "determinism self-check failed: %a" Fuzz.Oracle.pp_status
               st)
  in
  match gate with
  | Error _ as e -> e
  | Ok () -> (
      try
        if Sys.file_exists socket_path then Sys.remove socket_path;
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX socket_path);
        Unix.listen sock 64;
        Ok
          {
            tables;
            table_key;
            pool;
            sock;
            socket_path;
            queue_capacity = max 1 queue_capacity;
            verify;
            cache =
              Cogg.Result_cache.create ?shards:cache_shards
                ~capacity:(max 1 cache_capacity) ();
            pending = Queue.create ();
            conns = [];
            pause_until = 0.;
            stop = false;
            n_requests = 0;
            n_compiles = 0;
            n_inline_hits = 0;
            n_verified_hits = 0;
            n_overloaded = 0;
            n_gate_failures = 0;
            n_oversized = 0;
          }
      with
      | Unix.Unix_error (e, _, _) ->
          Error
            (Fmt.str "cannot bind %s: %s" socket_path (Unix.error_message e))
      | Sys_error m -> Error m)

let run (t : t) : unit =
  (* a client closing mid-write must be an EPIPE error, not a signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Log.info (fun f -> f "serving on %s" t.socket_path);
  while not t.stop do
    let now = Unix.gettimeofday () in
    let paused = now < t.pause_until in
    if not paused then drain t;
    let timeout =
      if paused then Float.max 0.001 (t.pause_until -. now) else 1.0
    in
    let fds = t.sock :: List.map (fun c -> c.fd) t.conns in
    match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.sock then begin
              match Unix.accept t.sock with
              | cfd, _ ->
                  t.conns <- { fd = cfd; inbuf = ""; alive = true } :: t.conns
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd) t.conns with
              | Some c -> on_readable t c
              | None -> ())
          readable
  done;
  (* answer whatever was admitted before the shutdown frame *)
  drain t;
  List.iter (fun c -> close_conn t c) t.conns;
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (try Sys.remove t.socket_path with Sys_error _ -> ());
  Log.info (fun f -> f "shut down")
