(** Client side of the [pascd] compile service (see client.mli). *)

type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect (path : string) : (t, string) result =
  try
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX path);
      Ok { fd; open_ = true }
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | Unix.Unix_error (e, _, _) ->
      Error (Fmt.str "cannot connect to %s: %s" path (Unix.error_message e))
  | Sys_error m -> Error m

let close (t : t) =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request (t : t) (req : Wire.request) : (Wire.reply, string) result =
  try
    Wire.write_frame t.fd (Wire.encode_request req);
    match Wire.read_frame t.fd with
    | None -> Error "daemon closed the connection"
    | Some payload -> Wire.decode_reply payload
  with
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Failure m -> Error m
  | Wire.Frame_too_large sz ->
      Error
        (Fmt.str "request too large for the wire (%d bytes > %d frame cap)" sz
           Wire.max_frame)

let ping (t : t) : (unit, string) result =
  match request t Wire.Ping with
  | Ok Wire.Ack -> Ok ()
  | Ok _ -> Error "expected Ack"
  | Error _ as e -> e

let stats (t : t) : (string, string) result =
  match request t Wire.Stats with
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok _ -> Error "expected Stats_reply"
  | Error _ as e -> e

let hello (t : t) : (string, string) result =
  match request t Wire.Hello with
  | Ok (Wire.Hello_reply target) -> Ok target
  | Ok _ -> Error "expected Hello_reply"
  | Error _ as e -> e

let pause (t : t) (ms : int) : (unit, string) result =
  match request t (Wire.Pause ms) with
  | Ok Wire.Ack -> Ok ()
  | Ok _ -> Error "expected Ack"
  | Error _ as e -> e

let shutdown (t : t) : (unit, string) result =
  match request t Wire.Shutdown with
  | Ok Wire.Bye -> Ok ()
  | Ok _ -> Error "expected Bye"
  | Error _ as e -> e

let compile (t : t) ?(options = Wire.default_options) (source : string) :
    (Wire.reply, string) result =
  request t (Wire.Compile { id = 0; options; source })

(* -- interleaved batch -------------------------------------------------------- *)

(** Submit [n] compile requests and collect [n] replies without ever
    blocking on a write while replies are waiting: all outgoing frames
    are concatenated into one buffer and pushed with [single_write] as
    the socket accepts them, and the socket is read whenever it is
    readable.  The daemon replies synchronously (hits inline, misses
    after a drain), so interleaving is what prevents the
    both-sides-blocked-on-write deadlock a naive send-all-then-read-all
    client would risk on large batches. *)
let compile_batch (t : t) ?(options = Wire.default_options) ?(retry = false)
    (sources : string array) : (Wire.reply array, string) result =
  let n = Array.length sources in
  if n = 0 then Ok [||]
  else begin
    let replies = Array.make n None in
    let frame_len s =
      if String.length s < 4 then None
      else
        Some
          ((Char.code s.[0] lsl 24)
          lor (Char.code s.[1] lsl 16)
          lor (Char.code s.[2] lsl 8)
          lor Char.code s.[3])
    in
    (* one select-interleaved send/receive round over the given ids;
       replies land in [replies] by id (overwriting — a retry round
       replaces the [Overloaded] placeholder with the real answer) *)
    let exchange (ids : int array) : unit =
      let outstanding = Array.make n false in
      Array.iter (fun id -> outstanding.(id) <- true) ids;
      let out = Buffer.create 4096 in
      Array.iter
        (fun id ->
          let payload =
            Wire.encode_request
              (Wire.Compile { id; options; source = sources.(id) })
          in
          let len = String.length payload in
          Buffer.add_char out (Char.chr ((len lsr 24) land 0xff));
          Buffer.add_char out (Char.chr ((len lsr 16) land 0xff));
          Buffer.add_char out (Char.chr ((len lsr 8) land 0xff));
          Buffer.add_char out (Char.chr (len land 0xff));
          Buffer.add_string out payload)
        ids;
      let out = Bytes.unsafe_of_string (Buffer.contents out) in
      let out_len = Bytes.length out in
      let sent = ref 0 in
      let received = ref 0 in
      let want = Array.length ids in
      let inbuf = ref "" in
      let chunk = Bytes.create 65536 in
      while !received < want do
        let want_write = !sent < out_len in
        let readable, writable, _ =
          Wire.retry_eintr (fun () ->
              Unix.select [ t.fd ] (if want_write then [ t.fd ] else []) [] 5.0)
        in
        if readable = [] && writable = [] then
          failwith "timed out waiting for the daemon";
        if readable <> [] then begin
          let r =
            Wire.retry_eintr (fun () ->
                Unix.read t.fd chunk 0 (Bytes.length chunk))
          in
          if r = 0 then failwith "daemon closed the connection";
          inbuf := !inbuf ^ Bytes.sub_string chunk 0 r;
          let continue = ref true in
          while !continue do
            match frame_len !inbuf with
            | Some len when String.length !inbuf >= 4 + len -> (
                let payload = String.sub !inbuf 4 len in
                inbuf :=
                  String.sub !inbuf (4 + len) (String.length !inbuf - 4 - len);
                match Wire.decode_reply payload with
                | Error m -> failwith m
                | Ok reply -> (
                    let id =
                      match reply with
                      | Wire.Compiled { id; _ } | Wire.Overloaded { id; _ } ->
                          Some id
                      | Wire.Stats_reply _ | Wire.Hello_reply _ | Wire.Ack
                      | Wire.Bye ->
                          None
                    in
                    match id with
                    | Some id when id >= 0 && id < n && outstanding.(id) ->
                        outstanding.(id) <- false;
                        incr received;
                        replies.(id) <- Some reply
                    | _ -> failwith "unexpected reply in batch"))
            | _ -> continue := false
          done
        end;
        if writable <> [] && !sent < out_len then
          sent :=
            !sent
            + Wire.retry_eintr (fun () ->
                  Unix.single_write t.fd out !sent (out_len - !sent))
      done
    in
    try
      exchange (Array.init n Fun.id);
      (* one bounded retry: resubmit the rejected ids after honoring the
         longest backoff hint the daemon sent.  A second rejection stands
         — the caller sees [Overloaded] and decides. *)
      if retry then begin
        let rejected = ref [] and hint = ref 0 in
        Array.iteri
          (fun id r ->
            match r with
            | Some (Wire.Overloaded { retry_after_ms; _ }) ->
                rejected := id :: !rejected;
                hint := max !hint retry_after_ms
            | _ -> ())
          replies;
        match List.rev !rejected with
        | [] -> ()
        | ids ->
            Unix.sleepf (float_of_int !hint /. 1000.);
            exchange (Array.of_list ids)
      end;
      Ok (Array.map Option.get replies)
    with
    | Failure m -> Error m
    | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  end
