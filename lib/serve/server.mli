(** The [pascd] daemon: a persistent compile service over a
    Unix-domain socket.

    One process loads the driving tables once (through
    {!Cogg.Tables_cache}), then serves {!Wire} compile requests from
    many clients, scheduling misses onto a {!Cogg.Pool} and answering
    repeated compilations from a sharded {!Cogg.Result_cache} keyed by
    (table digest, option fingerprint, source digest).

    Correctness gate: every compile is deterministic (the fuzz
    subsystem's oracle), so a cached response must be byte-identical to
    a fresh compile.  The daemon enforces this twice — once at startup
    (the determinism oracle must pass on a known program before the
    socket opens) and, under the default [Verify_once] policy, once per
    cache entry (the first hit recompiles and compares; a mismatch
    expels the entry, bumps [gate_failures] and serves the fresh
    bytes).

    Admission control: compile requests wait in a bounded queue; when
    it is full the request is answered [Overloaded] immediately and
    nothing is compiled — a loaded daemon degrades by refusing work,
    never by growing without bound. *)

type verify_mode =
  | Verify_never  (** trust the cache (benchmark fast path) *)
  | Verify_once
      (** first hit per entry recompiles and compares; later hits are
          served inline (the default) *)
  | Verify_always  (** every hit recompiles and compares (test mode) *)

type stats = {
  requests : int;  (** frames decoded, any kind *)
  compiles : int;  (** compilations actually run on the pool *)
  inline_hits : int;  (** hits answered without compiling *)
  verified_hits : int;  (** hits that recompiled, compared equal *)
  overloaded : int;  (** requests refused by admission control *)
  gate_failures : int;  (** cached bytes differed from a fresh compile *)
  oversized : int;
      (** replies too large for the wire, answered by a structured
          error instead *)
  cache : Cogg.Result_cache.stats;
}

type t

val create :
  ?pool:Cogg.Pool.t ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?verify:verify_mode ->
  ?self_check:bool ->
  table_key:string ->
  socket_path:string ->
  Cogg.Tables.t ->
  (t, string) result
(** Bind the socket and prepare the serve state.  [table_key] is the
    table bundle's cache key ({!Cogg.Tables_cache.key}), mixed into
    every result-cache key so results from different specifications (or
    profiles) can never be confused.  [queue_capacity] bounds the
    pending-compile queue (default 64); [cache_capacity] the result
    cache (default 256 entries over [cache_shards] shards).
    [self_check] (default true) runs the determinism oracle on a known
    program before binding and refuses to serve if it fails.  A stale
    socket file at [socket_path] is replaced. *)

val run : t -> unit
(** Serve until a [Shutdown] request arrives: accept connections, parse
    frames, answer cache hits inline, drain queued compiles through the
    pool.  Pending compiles are drained (and answered) before the
    socket is closed and unlinked. *)

val stats : t -> stats
val stats_text : t -> string
(** The [Stats_reply] rendering: one [key value] per line. *)
