(** Wire protocol of the [pascd] compile service.

    Frames are length-prefixed: a 32-bit big-endian payload length
    followed by the payload, in both directions.  Payloads are tagged by
    their first byte and carry fixed-width integers big-endian, so the
    encoding is byte-identical across platforms and a capture of one
    session replays exactly.

    The protocol is deliberately minimal: one request per frame, one
    reply per request, replies matched to compile requests by the
    caller-chosen [id] (replies may arrive out of request order — cached
    results are answered inline while misses wait for the compile
    pool). *)

type dispatch = Default | Flat | Comb | Hybrid

type options = {
  cse : bool option;  (** [None] = server default (the {!Pipeline.compile} default) *)
  checks : bool option;
  dispatch : dispatch;
}

val default_options : options
(** Everything defaulted — compiles exactly like
    [Pipeline.Batch.compile_all] with no overrides, which is what makes
    served batches fingerprint-identical to direct ones. *)

type request =
  | Compile of { id : int; options : options; source : string }
  | Stats  (** counters snapshot, as a [Stats_reply] text *)
  | Ping  (** liveness probe; answered [Ack] *)
  | Pause of int
      (** stop draining the compile queue for this many milliseconds
          (admission control keeps running, so the queue fills and
          overflow requests get [Overloaded]) — the deterministic
          backpressure test hook *)
  | Hello
      (** identity probe; answered [Hello_reply] with the daemon's
          target name, so a client can refuse to feed sources meant for
          one machine to a daemon serving another *)
  | Shutdown  (** drain, answer [Bye], exit the serve loop *)

type outcome = (string * string, string) result
(** A compile's observable output: [Ok (listing, object_bytes)] or
    [Error message] — the same bytes {!Pipeline.Batch.fingerprint}
    digests. *)

type reply =
  | Compiled of { id : int; cached : bool; outcome : outcome }
  | Overloaded of { id : int; retry_after_ms : int }
      (** admission control rejected the request: the pending queue was
          full.  Nothing was compiled.  [retry_after_ms] is the server's
          backoff hint — how long it expects to need before the queue
          has room (derived from any active pause plus the queue depth);
          0 means "retry whenever" (also what decoding a pre-hint peer's
          5-byte reply yields). *)
  | Stats_reply of string  (** [key value] lines *)
  | Hello_reply of string  (** the serving target's registry name *)
  | Ack
  | Bye

val max_frame : int
(** Upper bound on payload sizes in both directions (defence against
    garbage on the socket, not a protocol limit).  The read side rejects
    larger length prefixes; {!write_frame} refuses to emit them. *)

exception Frame_too_large of int
(** Raised by {!write_frame} before any byte is written when the payload
    exceeds {!max_frame} — an oversized frame could never be received,
    so sending it would only desynchronize the stream. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run [f], retrying on [EINTR] — the wrapper every blocking
    [read]/[write]/[select] in this protocol goes through, so signal
    delivery (timers, profilers) can never tear a frame. *)

val oversized_substitute : reply -> size:int -> reply
(** The reply a server sends in place of one whose encoding came out at
    [size] > {!max_frame}: same id, structured [Error] outcome.  Its own
    encoding always fits. *)

val options_tag : options -> string
(** Canonical 3-byte encoding of [options] — part of the result cache
    key, so the same source compiled under different options never
    collides. *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result

val write_frame : Unix.file_descr -> string -> unit
(** Write one length-prefixed frame, looping until all bytes are out.
    Raises [Unix.Unix_error] on a dead peer. *)

val read_frame : Unix.file_descr -> string option
(** Read one frame, blocking; [None] on clean EOF before a length
    prefix.  Raises [Failure] on truncated or oversized frames. *)

val fingerprint : reply array -> string
(** Digest an id-ordered reply array exactly the way
    {!Pipeline.Batch.fingerprint} digests its result array: a served
    batch and a direct batch produced the same compilations iff the two
    fingerprints are equal.  Non-[Compiled] replies fold in a distinct
    separator so a dropped or overloaded slot can never collide with a
    real result. *)
