(** Client side of the [pascd] compile service.

    A thin blocking wrapper over {!Wire} for one-shot requests, plus an
    interleaved batch submitter that never deadlocks against the
    daemon's synchronous replies: {!compile_batch} multiplexes sends
    and receives through [select], so replies are drained while
    requests are still going out and neither side can stall on a full
    socket buffer. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's Unix-domain socket at the given path. *)

val close : t -> unit

val request : t -> Wire.request -> (Wire.reply, string) result
(** Send one request and block for one reply.  Only safe when no other
    replies are in flight on this connection. *)

val ping : t -> (unit, string) result
val stats : t -> (string, string) result

val hello : t -> (string, string) result
(** Ask the daemon which target it serves; returns the registry name
    (["amdahl470"], ["risc32"], ...) so a caller can refuse to feed
    sources meant for one machine to a daemon serving another. *)

val pause : t -> int -> (unit, string) result
(** Ask the daemon to stop draining its compile queue for [ms]
    milliseconds (the backpressure test hook). *)

val shutdown : t -> (unit, string) result
(** Ask the daemon to drain and exit; waits for [Bye]. *)

val compile : t -> ?options:Wire.options -> string -> (Wire.reply, string) result
(** Compile one source (request id 0). *)

val compile_batch :
  t ->
  ?options:Wire.options ->
  ?retry:bool ->
  string array ->
  (Wire.reply array, string) result
(** Submit every source (ids [0..n-1]) and collect all replies, indexed
    by id — so the array lines up with the input whatever order the
    daemon answered in, and [Wire.fingerprint] of the result is
    comparable to [Pipeline.Batch.fingerprint] of a direct batch.

    [retry] (default [false]) honors the daemon's backoff hint: any
    [Overloaded] slots are resubmitted exactly once, after sleeping the
    longest [retry_after_ms] among them.  A slot rejected twice keeps
    its [Overloaded] reply — the bound is what keeps a saturated daemon
    from turning the client into a hot retry loop. *)
