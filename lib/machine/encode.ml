(** Binary encoding and decoding of 370 instructions.

    Encodings follow the architected formats:
    - RR: [op(8) r1(4) r2(4)]
    - RX: [op(8) r1(4) x2(4) b2(4) d2(12)]
    - RS: [op(8) r1(4) r3(4) b2(4) d2(12)]
    - SI: [op(8) i2(8)  b1(4) d1(12)]
    - SS: [op(8) l(8)   b1(4) d1(12) b2(4) d2(12)] *)

exception Encode_error of string

let err fmt = Fmt.kstr (fun s -> raise (Encode_error s)) fmt

let check_nibble what v =
  if v < 0 || v > 15 then err "%s out of range: %d (must fit 4 bits)" what v

let check_disp what v =
  if v < 0 || v > 4095 then
    err "%s out of range: %d (must fit 12-bit displacement)" what v

let check_byte what v =
  if v < 0 || v > 255 then err "%s out of range: %d (must fit 8 bits)" what v

let check_imm16 what v =
  if v < -32768 || v > 32767 then
    err "%s out of range: %d (must fit signed 16 bits)" what v

let opcode_of m =
  match Hashtbl.find_opt Insn.opcode_of_mnemonic m with
  | Some (op, f) -> (op, f)
  | None -> err "unknown mnemonic %S" m

let r32_opcode_of m =
  match Hashtbl.find_opt Insn.r32_opcode_of_mnemonic m with
  | Some (op, f) -> (op, f)
  | None -> err "unknown RISC-32 mnemonic %S" m

(** [encode_into insn dst pos] writes the architected byte encoding of
    [insn] at [dst.[pos..]] and returns the position just past it.  All
    field validation happens before the first write.  Raises
    [Encode_error] if any field is out of range or the mnemonic's
    declared format does not match the operand shape.  The caller is
    responsible for [dst] having [Insn.size insn] bytes of room. *)
let encode_into (i : Insn.t) (dst : Bytes.t) (pos : int) : int =
  match i with
  | Rr { op; r1; r2 } ->
      let code, f = opcode_of op in
      if f <> RR then err "%s is not an RR instruction" op;
      check_nibble "r1" r1;
      check_nibble "r2" r2;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) ((r1 lsl 4) lor r2);
      pos + 2
  | Rx { op; r1; d2; x2; b2 } ->
      let code, f = opcode_of op in
      if f <> RX then err "%s is not an RX instruction" op;
      check_nibble "r1" r1;
      check_nibble "x2" x2;
      check_nibble "b2" b2;
      check_disp "d2" d2;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) ((r1 lsl 4) lor x2);
      Bytes.set_uint8 dst (pos + 2) ((b2 lsl 4) lor (d2 lsr 8));
      Bytes.set_uint8 dst (pos + 3) (d2 land 0xFF);
      pos + 4
  | Rs { op; r1; r3; d2; b2 } ->
      let code, f = opcode_of op in
      if f <> RS then err "%s is not an RS instruction" op;
      check_nibble "r1" r1;
      check_nibble "r3" r3;
      check_nibble "b2" b2;
      check_disp "d2" d2;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) ((r1 lsl 4) lor r3);
      Bytes.set_uint8 dst (pos + 2) ((b2 lsl 4) lor (d2 lsr 8));
      Bytes.set_uint8 dst (pos + 3) (d2 land 0xFF);
      pos + 4
  | Si { op; d1; b1; i2 } ->
      let code, f = opcode_of op in
      if f <> SI then err "%s is not an SI instruction" op;
      check_byte "i2" i2;
      check_nibble "b1" b1;
      check_disp "d1" d1;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) i2;
      Bytes.set_uint8 dst (pos + 2) ((b1 lsl 4) lor (d1 lsr 8));
      Bytes.set_uint8 dst (pos + 3) (d1 land 0xFF);
      pos + 4
  | Ss { op; l; d1; b1; d2; b2 } ->
      let code, f = opcode_of op in
      if f <> SS then err "%s is not an SS instruction" op;
      (* architected SS length field holds length-1; we carry the true
         length in the symbolic form *)
      if l < 1 || l > 256 then err "SS length out of range: %d" l;
      check_nibble "b1" b1;
      check_nibble "b2" b2;
      check_disp "d1" d1;
      check_disp "d2" d2;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) (l - 1);
      Bytes.set_uint8 dst (pos + 2) ((b1 lsl 4) lor (d1 lsr 8));
      Bytes.set_uint8 dst (pos + 3) (d1 land 0xFF);
      Bytes.set_uint8 dst (pos + 4) ((b2 lsl 4) lor (d2 lsr 8));
      Bytes.set_uint8 dst (pos + 5) (d2 land 0xFF);
      pos + 6
  (* RISC-32 formats: [op(8) a(4) b(4) imm(16)] big-endian, always 4 bytes *)
  | R3 { op; rd; rs1; rs2 } ->
      let code, f = r32_opcode_of op in
      if f <> F_r3 then err "%s is not an R3 instruction" op;
      check_nibble "rd" rd;
      check_nibble "rs1" rs1;
      check_nibble "rs2" rs2;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) ((rd lsl 4) lor rs1);
      Bytes.set_uint8 dst (pos + 2) (rs2 lsl 4);
      Bytes.set_uint8 dst (pos + 3) 0;
      pos + 4
  | R2 { op; rd; rs } ->
      let code, f = r32_opcode_of op in
      if f <> F_r2 then err "%s is not an R2 instruction" op;
      check_nibble "rd" rd;
      check_nibble "rs" rs;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) ((rd lsl 4) lor rs);
      Bytes.set_uint8 dst (pos + 2) 0;
      Bytes.set_uint8 dst (pos + 3) 0;
      pos + 4
  | Ri { op; rd; rs; imm } ->
      let code, f = r32_opcode_of op in
      if f <> F_ri then err "%s is not an RI instruction" op;
      check_nibble "rd" rd;
      check_nibble "rs" rs;
      check_imm16 "imm" imm;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) ((rd lsl 4) lor rs);
      Bytes.set_uint16_be dst (pos + 2) (imm land 0xFFFF);
      pos + 4
  | Li { op; rd; imm } ->
      let code, f = r32_opcode_of op in
      if f <> F_li then err "%s is not an LI instruction" op;
      check_nibble "rd" rd;
      check_imm16 "imm" imm;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) (rd lsl 4);
      Bytes.set_uint16_be dst (pos + 2) (imm land 0xFFFF);
      pos + 4
  | Mem { op; rd; dsp; rb } ->
      let code, f = r32_opcode_of op in
      if f <> F_mem then err "%s is not a memory instruction" op;
      check_nibble "rd" rd;
      check_nibble "rb" rb;
      check_imm16 "dsp" dsp;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) ((rd lsl 4) lor rb);
      Bytes.set_uint16_be dst (pos + 2) (dsp land 0xFFFF);
      pos + 4
  | Bcc { mask; rel } ->
      let code, _ = r32_opcode_of "bc" in
      check_nibble "mask" mask;
      check_imm16 "rel" rel;
      Bytes.set_uint8 dst pos code;
      Bytes.set_uint8 dst (pos + 1) (mask lsl 4);
      Bytes.set_uint16_be dst (pos + 2) (rel land 0xFFFF);
      pos + 4

(** [encode insn] returns the architected byte encoding in a fresh
    buffer. *)
let encode (i : Insn.t) : Bytes.t =
  let b = Bytes.create (Insn.size i) in
  let _ = encode_into i b 0 in
  b

(** [decode mem pos] disassembles the instruction at [pos].  Returns the
    symbolic instruction and its size.  Raises [Encode_error] on an
    unknown opcode. *)
let decode (mem : Bytes.t) (pos : int) : Insn.t * int =
  let u8 i = Bytes.get_uint8 mem (pos + i) in
  let code = u8 0 in
  match Hashtbl.find_opt Insn.mnemonic_of_opcode code with
  | None -> err "unknown opcode byte 0x%02X at %d" code pos
  | Some (op, f) -> (
      match f with
      | RR ->
          let b1 = u8 1 in
          (Rr { op; r1 = b1 lsr 4; r2 = b1 land 0xF }, 2)
      | RX ->
          let b1 = u8 1 and b2 = u8 2 and b3 = u8 3 in
          ( Rx
              {
                op;
                r1 = b1 lsr 4;
                x2 = b1 land 0xF;
                b2 = b2 lsr 4;
                d2 = ((b2 land 0xF) lsl 8) lor b3;
              },
            4 )
      | RS ->
          let b1 = u8 1 and b2 = u8 2 and b3 = u8 3 in
          ( Rs
              {
                op;
                r1 = b1 lsr 4;
                r3 = b1 land 0xF;
                b2 = b2 lsr 4;
                d2 = ((b2 land 0xF) lsl 8) lor b3;
              },
            4 )
      | SI ->
          let b1 = u8 1 and b2 = u8 2 and b3 = u8 3 in
          ( Si
              {
                op;
                i2 = b1;
                b1 = b2 lsr 4;
                d1 = ((b2 land 0xF) lsl 8) lor b3;
              },
            4 )
      | SS ->
          let b1 = u8 1 and b2 = u8 2 and b3 = u8 3 in
          let b4 = u8 4 and b5 = u8 5 in
          ( Ss
              {
                op;
                l = b1 + 1;
                b1 = b2 lsr 4;
                d1 = ((b2 land 0xF) lsl 8) lor b3;
                b2 = b4 lsr 4;
                d2 = ((b4 land 0xF) lsl 8) lor b5;
              },
            6 ))

(** [decode_r32 mem pos] disassembles the RISC-32 instruction at [pos].
    Returns the symbolic instruction and its size (always 4).  Raises
    [Encode_error] on an unknown opcode. *)
let decode_r32 (mem : Bytes.t) (pos : int) : Insn.t * int =
  let u8 i = Bytes.get_uint8 mem (pos + i) in
  let imm16 () =
    let v = (u8 2 lsl 8) lor u8 3 in
    if v >= 0x8000 then v - 0x10000 else v
  in
  let code = u8 0 in
  match Hashtbl.find_opt Insn.r32_mnemonic_of_opcode code with
  | None -> err "unknown RISC-32 opcode byte 0x%02X at %d" code pos
  | Some (op, f) -> (
      let b1 = u8 1 in
      match f with
      | F_r3 -> (R3 { op; rd = b1 lsr 4; rs1 = b1 land 0xF; rs2 = u8 2 lsr 4 }, 4)
      | F_r2 -> (R2 { op; rd = b1 lsr 4; rs = b1 land 0xF }, 4)
      | F_ri -> (Ri { op; rd = b1 lsr 4; rs = b1 land 0xF; imm = imm16 () }, 4)
      | F_li -> (Li { op; rd = b1 lsr 4; imm = imm16 () }, 4)
      | F_mem -> (Mem { op; rd = b1 lsr 4; rb = b1 land 0xF; dsp = imm16 () }, 4)
      | F_bcc -> (Bcc { mask = b1 lsr 4; rel = imm16 () }, 4))

(** Encode a whole instruction sequence into one buffer. *)
let encode_all (is : Insn.t list) : Bytes.t =
  let bufs = List.map encode is in
  let total = List.fold_left (fun a b -> a + Bytes.length b) 0 bufs in
  let out = Bytes.create total in
  let _ =
    List.fold_left
      (fun pos b ->
        Bytes.blit b 0 out pos (Bytes.length b);
        pos + Bytes.length b)
      0 bufs
  in
  out

(** Disassemble [len] bytes starting at [pos]. *)
let decode_all (mem : Bytes.t) ~(pos : int) ~(len : int) : Insn.t list =
  let rec go p acc =
    if p >= pos + len then List.rev acc
    else
      let i, sz = decode mem p in
      go (p + sz) (i :: acc)
  in
  go pos []
