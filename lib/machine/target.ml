(** Per-target machine substrate.

    Bird's thesis is that retargeting the code generator "merely requires
    a rewriting of the templates": the tables are built from a new spec
    file and the table-driven emission routine stays unchanged.  The parts
    that {e cannot} come from the spec — the opcode/format tables, the
    instruction builder, the branch-site resolution model, the simulator
    and its runtime support traps — are collected in this record, one
    value per machine.  Everything above [lib/machine] (template
    compilation, the emitter, the loader, the pipeline) is parameterized
    by a [Target.t] and never mentions a concrete instruction set.

    See {!Amdahl} and {!Risc32} for the two substrates, and {!Targets}
    for the name -> (spec path, substrate) registry. *)

(** How label references inside the code buffer are resolved:
    - [Span_dependent]: branches have a short form with a limited
      displacement and a long form through a literal pool; sizing is a
      fixpoint (the 370 model).
    - [Pc_relative]: every branch is one fixed-width pc-relative
      instruction; sizing is a single pass (the RISC-32 model). *)
type site_model = Span_dependent | Pc_relative

type t = {
  name : string;  (** registry key, e.g. "amdahl470" *)
  spec_file : string;  (** spec path relative to the repo root *)
  is_mnemonic : string -> bool;
      (** does this target's opcode table define the mnemonic? *)
  validate : mnem:string -> nsubs:int list -> (unit, string) result;
      (** shape-check a template instruction at table-construction time:
          [nsubs] lists, per written operand, its sub-operand count *)
  build_insn : mnem:string -> (int * int list) list -> (Insn.t, string) result;
      (** build a symbolic instruction from evaluated operand values at
          emission time (same shape as [validate] accepted) *)
  site_model : site_model;
  spill_store : fp:bool -> reg:int -> dsp:int -> base:int -> Insn.t;
      (** store an evicted CSE register to its temporary *)
  reg_move : fp:bool -> dst:int -> src:int -> Insn.t;
      (** register-to-register copy (need transfers, copy-on-write) *)
  abort_insns : errno:int -> Insn.t list;
      (** the [abort] semop: pass [errno] to the runtime abort routine *)
  boot : ?layout:Runtime.layout -> Objmod.t -> (Sim.t * int, string) result;
      (** create a simulator, install the PSA and traps, load the module *)
  run :
    ?max_steps:int ->
    ?layout:Runtime.layout ->
    Sim.t ->
    entry:int ->
    (Runtime.outcome, string) result;
      (** run a booted program to completion *)
}
