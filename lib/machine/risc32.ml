(** The RISC-32 target substrate: a clean 32-bit load/store machine.

    Deliberately the maximally different shape from the Amdahl 470:
    three-operand register ALU instructions, no memory operands on
    arithmetic, no even/odd register pairs, a single [dsp(rb)] addressing
    mode with a signed 16-bit displacement, and fixed-width pc-relative
    branches (no span-dependent short/long forms, no literal pool).
    Every instruction is 4 bytes.

    The machine state is the shared {!Sim.t}: 16 GPRs, 8 F registers
    (doubles), a 2-bit condition code and byte-addressed big-endian
    memory.  Register conventions, the PSA layout and the frame
    discipline are identical to the Amdahl target (r13 = stack base,
    r10 = PSA base, r12 = code base, r14/r15 linkage, r0 reads as zero) —
    the cross-backend differential oracle depends on the two targets
    agreeing on the observable memory contract, not on the instruction
    sets resembling each other.

    Only the explicit compare instructions ([cmp]/[cmpu]/[cmpi]/[fcmp])
    set the condition code; ALU results wrap silently, exactly like the
    wrapped values the 370 instructions leave behind. *)

(* -- execution ----------------------------------------------------------- *)

(* r0 is hardwired to zero: reads yield 0, writes are discarded *)
let getr (t : Sim.t) r = if r = 0 then 0 else t.Sim.regs.(r)
let setr (t : Sim.t) r v = if r <> 0 then Sim.set_reg t r v

let err fmt = Fmt.kstr (fun s -> raise (Sim.Sim_error s)) fmt

let exec_r3 t op rd rs1 rs2 =
  let f = t.Sim.fregs in
  let a () = getr t rs1 and b () = getr t rs2 in
  let shift () = getr t rs2 land 0x3F in
  match op with
  | "add" -> setr t rd (a () + b ())
  | "sub" -> setr t rd (a () - b ())
  | "mul" -> setr t rd (a () * b ())
  | "div" ->
      if b () = 0 then err "div: division by zero"
      else setr t rd (a () / b ())
  | "rem" ->
      if b () = 0 then err "rem: division by zero"
      else setr t rd (a () mod b ())
  | "and" -> setr t rd (a () land b ())
  | "or" -> setr t rd (a () lor b ())
  | "xor" -> setr t rd (a () lxor b ())
  | "andn" -> setr t rd (a () land lnot (b ()))
  | "sll" -> setr t rd (Sim.unsigned32 (a ()) lsl shift ())
  | "srl" -> setr t rd (Sim.unsigned32 (a ()) lsr shift ())
  | "sra" -> setr t rd (a () asr shift ())
  | "fadd" -> f.(rd) <- f.(rs1) +. f.(rs2)
  | "fsub" -> f.(rd) <- f.(rs1) -. f.(rs2)
  | "fmul" -> f.(rd) <- f.(rs1) *. f.(rs2)
  | "fdiv" ->
      if f.(rs2) = 0.0 then err "fdiv: division by zero"
      else f.(rd) <- f.(rs1) /. f.(rs2)
  | _ -> err "unimplemented R3 instruction %s" op

let exec_r2 t op rd rs =
  let f = t.Sim.fregs in
  match op with
  | "mov" -> setr t rd (getr t rs)
  | "neg" -> setr t rd (-getr t rs)
  | "itof" -> f.(rd) <- float_of_int (getr t rs)
  | "ftoi" -> setr t rd (Int32.to_int (Int32.of_float f.(rs)))
  | "fmov" -> f.(rd) <- f.(rs)
  | "fneg" -> f.(rd) <- -.f.(rs)
  | "fabs" -> f.(rd) <- Float.abs f.(rs)
  | "fhlv" -> f.(rd) <- f.(rs) /. 2.0
  | "cmp" -> t.Sim.cc <- Sim.cc_of_compare (getr t rd) (getr t rs)
  | "cmpu" ->
      t.Sim.cc <-
        Sim.cc_of_compare
          (Sim.unsigned32 (getr t rd))
          (Sim.unsigned32 (getr t rs))
  | "fcmp" -> t.Sim.cc <- Sim.cc_of_compare (compare f.(rd) f.(rs)) 0
  | "jr" -> t.Sim.pc <- Sim.unsigned32 (getr t rs) land 0xFFFFFF
  | _ -> err "unimplemented R2 instruction %s" op

let exec_ri t op rd rs imm =
  let a () = getr t rs in
  let shift = imm land 0x3F in
  match op with
  | "addi" -> setr t rd (a () + imm)
  | "subi" -> setr t rd (a () - imm)
  | "andi" -> setr t rd (a () land imm)
  | "ori" -> setr t rd (a () lor imm)
  | "xori" -> setr t rd (a () lxor imm)
  | "slli" -> setr t rd (Sim.unsigned32 (a ()) lsl shift)
  | "srli" -> setr t rd (Sim.unsigned32 (a ()) lsr shift)
  | "srai" -> setr t rd (a () asr shift)
  | _ -> err "unimplemented RI instruction %s" op

let exec_mem t op rd dsp rb next =
  let addr = (getr t rb + dsp) land 0xFFFFFF in
  let f = t.Sim.fregs in
  match op with
  | "lw" -> setr t rd (Sim.load_w t addr)
  | "lh" -> setr t rd (Sim.load_h t addr)
  | "lb" -> setr t rd (Sim.load_u8 t addr)
  | "sw" -> Sim.store_w t addr (getr t rd)
  | "sh" -> Sim.store_h t addr (getr t rd)
  | "sb" -> Sim.store_u8 t addr (getr t rd)
  | "fld" -> f.(rd) <- Sim.load_f64 t addr
  | "fsd" -> Sim.store_f64 t addr f.(rd)
  | "fls" -> f.(rd) <- Sim.load_f32 t addr
  | "fss" -> Sim.store_f32 t addr f.(rd)
  | "jl" ->
      setr t rd next;
      t.Sim.pc <- addr
  | _ -> err "unimplemented memory instruction %s" op

(** Execute a single RISC-32 instruction at the current PC. *)
let step (t : Sim.t) =
  let insn, sz = Encode.decode_r32 t.Sim.mem t.Sim.pc in
  let next = t.Sim.pc + sz in
  t.Sim.pc <- next;
  (match insn with
  | Insn.R3 { op; rd; rs1; rs2 } -> exec_r3 t op rd rs1 rs2
  | Insn.R2 { op; rd; rs } -> exec_r2 t op rd rs
  | Insn.Ri { op; rd; rs; imm } -> exec_ri t op rd rs imm
  | Insn.Li { op; rd; imm } -> (
      match op with
      | "li" -> setr t rd imm
      | "cmpi" -> t.Sim.cc <- Sim.cc_of_compare (getr t rd) imm
      | _ -> err "unimplemented LI instruction %s" op)
  | Insn.Mem { op; rd; dsp; rb } -> exec_mem t op rd dsp rb next
  | Insn.Bcc { mask; rel } ->
      if Sim.branch_taken t mask then t.Sim.pc <- (next - 4 + rel) land 0xFFFFFF
  | Insn.Rr _ | Insn.Rx _ | Insn.Rs _ | Insn.Si _ | Insn.Ss _ ->
      err "370 instruction on the RISC-32 simulator");
  t.Sim.steps <- t.Sim.steps + 1

(* -- runtime support ------------------------------------------------------ *)

(* Save-area layout within a frame, all inside the 16-word area at
   [Runtime.save_area]: r14 at +8, r15 at +12, r0..r13 at +16..+71.
   The entry template stores r14/r15 explicitly (jl clobbers r14); the
   entry-code trap saves the rest, exactly mirroring the 370's
   [stm r14,r13,8(r13)]. *)
let regs_save_base = Runtime.save_area + 8

(** Install PSA constants and RISC-32 trap handlers into a simulator.
    The constant block is byte-identical to the Amdahl one ({!Runtime.install}
    writes it); this adds the frame-teardown and block-move routines the
    load/store target reaches through [jl] instead of [stm]/[lm]/[mvc]. *)
let install (sim : Sim.t) (lay : Runtime.layout) =
  Runtime.install sim lay;
  let psa = lay.Runtime.psa_addr in
  (* entry_code: save r0..r13 in the caller's frame, then build the new
     frame.  Called by [jl r14,entry_code(r10)] after the entry template
     stored r14/r15 at +8/+12. *)
  Sim.set_trap sim (psa + Runtime.psa_entry_code) (fun s ->
      let old_frame = Sim.reg s Runtime.stack_base in
      let new_frame = old_frame - lay.Runtime.frame_size in
      if new_frame < lay.Runtime.psa_addr + Runtime.psa_size then
        Sim.abort s "stack overflow"
      else begin
        for r = 0 to 13 do
          Sim.store_w s (old_frame + regs_save_base + (4 * r)) (Sim.reg s r)
        done;
        Sim.store_w s (new_frame + Runtime.old_base) old_frame;
        Sim.set_reg s Runtime.stack_base new_frame
      end);
  (* exit_code: restore the full register file from the caller's frame
     save area.  The exit template already reloaded r13 with the caller's
     frame; the trap-return mechanism then resumes at the restored r14. *)
  Sim.set_trap sim (psa + Runtime.psa_exit_code) (fun s ->
      let frame = Sim.reg s Runtime.stack_base in
      for r = 0 to 13 do
        Sim.set_reg s r (Sim.load_w s (frame + regs_save_base + (4 * r)))
      done;
      Sim.set_reg s 15 (Sim.load_w s (frame + Runtime.save_area + 4));
      Sim.set_reg s 14 (Sim.load_w s (frame + Runtime.save_area)));
  (* blockmove: byte copy, left to right (the 370's mvc overlap
     behaviour).  Arguments through the PSA scratch words. *)
  Sim.set_trap sim (psa + Runtime.psa_blockmove) (fun s ->
      let dst = Sim.unsigned32 (Sim.load_w s (psa + Runtime.psa_scratch))
                land 0xFFFFFF
      and src = Sim.unsigned32 (Sim.load_w s (psa + Runtime.psa_scratch_lo))
                land 0xFFFFFF
      and len = Sim.load_w s (psa + Runtime.psa_scratch_len) in
      if len < 0 || len > 0x10000 then Sim.abort s "blockmove: bad length"
      else
        for i = 0 to len - 1 do
          Sim.store_u8 s (dst + i) (Sim.load_u8 s (src + i))
        done)

(** Create a simulator, install the PSA, and load an object module.
    Registers come up exactly as on the Amdahl target. *)
let boot ?(layout = Runtime.default_layout) (objmod : Objmod.t) :
    (Sim.t * int, string) result =
  let sim = Sim.create ~mem_size:(1 lsl 20) ~halt_addr:0 () in
  install sim layout;
  match Objmod.load sim.Sim.mem ~at:layout.Runtime.code_addr objmod with
  | Error e -> Error e
  | Ok entry ->
      Sim.set_reg sim Runtime.pr_base layout.Runtime.psa_addr;
      Sim.set_reg sim Runtime.code_base layout.Runtime.code_addr;
      Sim.set_reg sim Runtime.stack_base layout.Runtime.stack_top;
      Sim.set_reg sim 14 0 (* returning from the outer procedure halts *);
      Sim.set_reg sim 15 entry;
      Ok (sim, entry)

(** Run a booted program to completion on the RISC-32 interpreter. *)
let run ?(max_steps = 1_000_000) ?(layout = Runtime.default_layout) sim ~entry
    : (Runtime.outcome, string) result =
  match Sim.run_with ~step ~max_steps sim ~entry with
  | steps ->
      Ok
        {
          Runtime.steps;
          aborted = sim.Sim.aborted;
          final_frame = Runtime.main_frame layout;
        }
  | exception Sim.Sim_error e -> Error e
  | exception Encode.Encode_error e -> Error e

(* -- template interface --------------------------------------------------- *)

let validate ~(mnem : string) ~(nsubs : int list) : (unit, string) result =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let arity n =
    if List.length nsubs <> n then
      fail "%s: expected %d operands, got %d" mnem n (List.length nsubs)
    else Ok ()
  in
  let no_subs () =
    if List.for_all (fun s -> s = 0) nsubs then Ok ()
    else fail "%s: register/immediate operands take no sub-operands" mnem
  in
  match Insn.r32_format_of_mnemonic mnem with
  | None -> fail "%s is not a target instruction" mnem
  | Some Insn.F_r3 -> Result.bind (arity 3) no_subs
  | Some Insn.F_r2 ->
      if mnem = "jr" then Result.bind (arity 1) no_subs
      else Result.bind (arity 2) no_subs
  | Some Insn.F_ri -> Result.bind (arity 3) no_subs
  | Some Insn.F_li -> Result.bind (arity 2) no_subs
  | Some Insn.F_mem ->
      Result.bind (arity 2) (fun () ->
          if List.nth nsubs 0 <> 0 then
            fail "%s: first operand must be a register" mnem
          else if List.nth nsubs 1 > 1 then
            fail "%s: address takes at most dsp(rb)" mnem
          else Ok ())
  | Some Insn.F_bcc ->
      fail "%s: pc-relative branches are written with the branch/skip semops"
        mnem

let build_insn ~(mnem : string) (vals : (int * int list) list) :
    (Insn.t, string) result =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let plain k =
    match List.nth_opt vals k with
    | Some (v, []) -> v
    | _ -> Fmt.failwith "%s: operand %d shape mismatch at emission" mnem (k + 1)
  in
  match Insn.r32_format_of_mnemonic mnem with
  | None -> fail "unknown mnemonic %s at emission" mnem
  | Some f -> (
      try
        Ok
          (match f with
          | Insn.F_r3 ->
              Insn.R3 { op = mnem; rd = plain 0; rs1 = plain 1; rs2 = plain 2 }
          | Insn.F_r2 ->
              if mnem = "jr" then Insn.R2 { op = mnem; rd = 0; rs = plain 0 }
              else Insn.R2 { op = mnem; rd = plain 0; rs = plain 1 }
          | Insn.F_ri ->
              Insn.Ri { op = mnem; rd = plain 0; rs = plain 1; imm = plain 2 }
          | Insn.F_li -> Insn.Li { op = mnem; rd = plain 0; imm = plain 1 }
          | Insn.F_mem ->
              let dsp, rb =
                match List.nth_opt vals 1 with
                | Some (d, []) -> (d, 0)
                | Some (d, [ b ]) -> (d, b)
                | _ -> Fmt.failwith "%s: missing storage operand" mnem
              in
              Insn.Mem { op = mnem; rd = plain 0; dsp; rb }
          | Insn.F_bcc ->
              Fmt.failwith "%s: branches are emitted via branch sites" mnem)
      with Failure m -> Error m)

let spill_store ~fp ~reg ~dsp ~base =
  Insn.Mem { op = (if fp then "fsd" else "sw"); rd = reg; dsp; rb = base }

let reg_move ~fp ~dst ~src =
  if fp then Insn.R2 { op = "fmov"; rd = dst; rs = src }
  else Insn.R2 { op = "mov"; rd = dst; rs = src }

let abort_insns ~errno =
  [
    Insn.Li { op = "li"; rd = 1; imm = errno };
    Insn.Mem
      { op = "jl"; rd = 14; dsp = Runtime.psa_abort; rb = Runtime.pr_base };
  ]

let target : Target.t =
  {
    Target.name = "risc32";
    spec_file = "specs/risc32.cgg";
    is_mnemonic = Insn.r32_is_mnemonic;
    validate;
    build_insn;
    site_model = Target.Pc_relative;
    spill_store;
    reg_move;
    abort_insns;
    boot;
    run;
  }
