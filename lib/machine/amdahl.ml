(** The Amdahl 470 (System/360-370 subset) target substrate.

    The opcode tables, encoder and simulator predate the second backend
    and live in {!Insn}, {!Encode}, {!Sim} and {!Runtime}; this module
    packages them behind the {!Target.t} interface together with the
    pieces the emitter used to hard-code: operand-shape validation per
    architected format, the instruction builder, spill/move/abort
    idioms, and the span-dependent branch model. *)

let is_shift = function
  | "sla" | "sra" | "sll" | "srl" | "slda" | "srda" | "sldl" | "srdl" -> true
  | _ -> false

(* validate machine-instruction operand shapes against the format; [nsubs]
   lists the sub-operand count of each written operand *)
let validate ~(mnem : string) ~(nsubs : int list) : (unit, string) result =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let arity n =
    if List.length nsubs <> n then
      fail "%s: expected %d operands, got %d" mnem n (List.length nsubs)
    else Ok ()
  in
  let sub k = List.nth nsubs k in
  match Insn.format_of_mnemonic mnem with
  | None -> fail "%s is not a target instruction" mnem
  | Some Insn.RR ->
      Result.bind (arity 2) (fun () ->
          if sub 0 <> 0 || sub 1 <> 0 then
            fail "%s: RR operands take no sub-operands" mnem
          else Ok ())
  | Some Insn.RX ->
      Result.bind (arity 2) (fun () ->
          if sub 0 <> 0 then fail "%s: first operand must be a register" mnem
          else if sub 1 > 2 then fail "%s: too many address sub-operands" mnem
          else Ok ())
  | Some Insn.RS ->
      if is_shift mnem then
        Result.bind (arity 2) (fun () ->
            if sub 0 <> 0 then fail "%s: first operand must be a register" mnem
            else if sub 1 > 1 then fail "%s: shift takes at most d(b)" mnem
            else Ok ())
      else
        Result.bind (arity 3) (fun () ->
            if sub 0 <> 0 || sub 1 <> 0 then
              fail "%s: register operands take no sub-operands" mnem
            else if sub 2 > 1 then fail "%s: address takes at most d(b)" mnem
            else Ok ())
  | Some Insn.SI ->
      Result.bind (arity 2) (fun () ->
          if sub 0 > 1 then fail "%s: address takes at most d(b)" mnem
          else if sub 1 <> 0 then
            fail "%s: immediate takes no sub-operands" mnem
          else Ok ())
  | Some Insn.SS ->
      Result.bind (arity 2) (fun () ->
          if sub 0 <> 2 then fail "%s: first operand must be d(l,b)" mnem
          else if sub 1 > 1 then
            fail "%s: second operand takes at most d(b)" mnem
          else Ok ())

let build_insn ~(mnem : string) (vals : (int * int list) list) :
    (Insn.t, string) result =
  (* vals: per operand, (base value, sub values) *)
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  match Insn.format_of_mnemonic mnem with
  | None -> fail "unknown mnemonic %s at emission" mnem
  | Some fmt -> (
      let plain k =
        match List.nth_opt vals k with
        | Some (v, []) -> v
        | _ ->
            Fmt.failwith "%s: operand %d shape mismatch at emission" mnem (k + 1)
      in
      let memop k =
        match List.nth_opt vals k with
        | Some (d, []) -> (d, 0, 0)
        | Some (d, [ b ]) -> (d, 0, b)
        | Some (d, [ x; b ]) -> (d, x, b)
        | _ -> Fmt.failwith "%s: missing storage operand" mnem
      in
      try
        Ok
          (match fmt with
          | Insn.RR -> Insn.Rr { op = mnem; r1 = plain 0; r2 = plain 1 }
          | Insn.RX ->
              let d2, x2, b2 = memop 1 in
              Insn.Rx { op = mnem; r1 = plain 0; d2; x2; b2 }
          | Insn.RS ->
              if is_shift mnem then
                let d2, _, b2 = memop 1 in
                Insn.Rs { op = mnem; r1 = plain 0; r3 = 0; d2; b2 }
              else
                let d2, _, b2 = memop 2 in
                Insn.Rs { op = mnem; r1 = plain 0; r3 = plain 1; d2; b2 }
          | Insn.SI ->
              let d1, _, b1 = memop 0 in
              Insn.Si { op = mnem; d1; b1; i2 = plain 1 }
          | Insn.SS ->
              let l, d1, b1 =
                match List.nth_opt vals 0 with
                | Some (d, [ l; b ]) -> (l, d, b)
                | _ -> Fmt.failwith "%s: first operand must be d(l,b)" mnem
              in
              let d2, _, b2 = memop 1 in
              Insn.Ss { op = mnem; l; d1; b1; d2; b2 })
      with Failure m -> Error m)

let spill_store ~fp ~reg ~dsp ~base =
  Insn.Rx { op = (if fp then "std" else "st"); r1 = reg; d2 = dsp; x2 = 0;
            b2 = base }

let reg_move ~fp ~dst ~src =
  Insn.Rr { op = (if fp then "ldr" else "lr"); r1 = dst; r2 = src }

let abort_insns ~errno =
  [
    Insn.Rx { op = "la"; r1 = 1; d2 = errno; x2 = 0; b2 = 0 };
    Insn.Rx
      { op = "bal"; r1 = 14; d2 = Runtime.psa_abort; x2 = 0;
        b2 = Runtime.pr_base };
  ]

let target : Target.t =
  {
    Target.name = "amdahl470";
    spec_file = "specs/amdahl470.cgg";
    is_mnemonic = Insn.is_mnemonic;
    validate;
    build_insn;
    site_model = Target.Span_dependent;
    spill_store;
    reg_move;
    abort_insns;
    boot = Runtime.boot;
    run = Runtime.run;
  }
