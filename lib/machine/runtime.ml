(** Program support area (PSA) and execution harness.

    The paper's generated code reaches runtime support through a dedicated
    base register ([pr_base]): constant words ([one_loc], bit-mask tables),
    frame bookkeeping ([entry_code]) and the range/subscript checking
    routines ([underflow], [overflow], ...).  We reproduce that surface: a
    PSA block at a fixed address holds the constant data, and the support
    routines are simulator traps at their architected displacements (a
    documented substitution for the PascalVS runtime library).

    Register conventions (our choice, fixed across the project):
    - r13 = [stack_base]  (current frame)
    - r10 = [pr_base]     (program support area)
    - r12 = [code_base]   (code origin, for case branch tables)
    - r14, r15            (linkage, obtained with [need])
    - r0                  (never allocated; "zero" in address computations)

    Frame layout: [old_base] (back chain) at +4, [save_area] (16 words) at
    +8, locals from +[locals_base] up. *)

(* -- constant values shared with the specification files ----------------- *)

(* Branch masks: bit 8 selects cc=0, 4 -> cc=1, 2 -> cc=2, 1 -> cc=3. *)
let mask_eq = 8
let mask_lt = 4
let mask_gt = 2
let mask_ne = 7
let mask_lte = 12
let mask_gte = 10
let mask_unconditional = 15
let mask_false = 8 (* boolean false: cc=0 after TM *)
let mask_true = 7 (* boolean true: cc<>0 *)

(* Dedicated registers *)
let stack_base = 13
let pr_base = 10
let code_base = 12

(* Frame displacements *)
let old_base = 4
let save_area = 8
let locals_base = 80

(* PSA displacements *)
let psa_one_loc = 64
let psa_minus_one_loc = 68
let psa_seven = 7 (* fullword 7 lives at PSA+7; see the paper's appendix *)
let psa_uninit_pattern = 72 (* the "never initialized" bit pattern *)
let psa_sign_flip = 76 (* 0x80000000, for int->real conversion *)
let psa_cnvrt_hi = 80 (* 0x43300000: IEEE 2^52 exponent word *)
let psa_cnvrt_magic = 88 (* double 2^52 + 2^31 *)
let psa_bitmasks = 128 (* 8 fullwords: 0x80 >> i *)
let psa_bitmasks_b = 160 (* the same masks as 8 single bytes *)
let psa_entry_code = 256
let psa_underflow = 260
let psa_overflow = 264
let psa_not_initialized = 268
let psa_array_underflow = 272
let psa_array_overflow = 276
let psa_case_low = 280
let psa_case_high = 284
let psa_abort = 288
let psa_real_to_int = 292 (* runtime conversion routine (trap stub) *)
let psa_exit_code = 296 (* frame teardown routine (load/store targets) *)
let psa_blockmove = 300 (* block move routine (targets without SS mvc) *)
let psa_scratch = 512
let psa_scratch_lo = 516 (* second scratch word (argument passing) *)
let psa_scratch_len = 520 (* third scratch word (block-move length) *)
let psa_proctab = 768 (* procedure address table, filled by the loader *)
let psa_size = 1024

let uninit_pattern = 0x80808080

(* -- memory layout -------------------------------------------------------- *)

type layout = {
  psa_addr : int;  (** absolute PSA base; loaded into r10 *)
  code_addr : int;  (** code load address; loaded into r12 *)
  stack_top : int;  (** initial (outer) frame address; loaded into r13 *)
  frame_size : int;  (** bytes reserved per procedure activation *)
}

let default_layout =
  { psa_addr = 0x1000; code_addr = 0x10000; stack_top = 0x80000;
    frame_size = 4096 }

type outcome = {
  steps : int;
  aborted : string option;
  final_frame : int;  (** frame address of the outermost procedure *)
}

(** Install PSA constants and trap handlers into a simulator. *)
let install (sim : Sim.t) (lay : layout) =
  let psa = lay.psa_addr in
  Sim.store_w sim (psa + psa_one_loc) 1;
  Sim.store_w sim (psa + psa_minus_one_loc) (-1);
  Sim.store_w sim (psa + psa_seven) 7;
  Sim.store_w sim (psa + psa_uninit_pattern) uninit_pattern;
  Sim.store_w sim (psa + psa_sign_flip) 0x80000000;
  Sim.store_w sim (psa + psa_cnvrt_hi) 0x43300000;
  Sim.store_f64 sim (psa + psa_cnvrt_magic) (4503599627370496.0 +. 2147483648.0);
  for i = 0 to 7 do
    Sim.store_w sim (psa + psa_bitmasks + (4 * i)) (0x80 lsr i);
    Sim.store_u8 sim (psa + psa_bitmasks_b + i) (0x80 lsr i)
  done;
  (* entry_code: build a new stack frame.  Called by
     [bal r14,entry_code(pr_base)] after the caller's registers were saved
     with [stm r14,r13,save_area(r13)]. *)
  Sim.set_trap sim (psa + psa_entry_code) (fun s ->
      let old_frame = Sim.reg s stack_base in
      let new_frame = old_frame - lay.frame_size in
      if new_frame < lay.psa_addr + psa_size then
        Sim.abort s "stack overflow"
      else begin
        Sim.store_w s (new_frame + old_base) old_frame;
        Sim.set_reg s stack_base new_frame
      end);
  (* checking stubs: called with the condition code set by a compare *)
  let check_cc name bad_mask addr =
    Sim.set_trap sim addr (fun s ->
        if bad_mask land (8 lsr s.Sim.cc) <> 0 then
          Sim.abort s name)
  in
  check_cc "range underflow" mask_lt (psa + psa_underflow);
  check_cc "range overflow" mask_gt (psa + psa_overflow);
  check_cc "uninitialized variable" mask_eq (psa + psa_not_initialized);
  check_cc "array subscript underflow" mask_lt (psa + psa_array_underflow);
  check_cc "array subscript overflow" mask_gt (psa + psa_array_overflow);
  check_cc "case index too low" mask_lt (psa + psa_case_low);
  check_cc "case index too high" mask_gt (psa + psa_case_high);
  Sim.set_trap sim (psa + psa_abort) (fun s ->
      Sim.abort s (Fmt.str "program abort (code %d)" (Sim.reg s 1)));
  (* real -> integer truncation: operand in f0, result stored at the PSA
     scratch word (a runtime library call in the real system) *)
  Sim.set_trap sim (psa + psa_real_to_int) (fun s ->
      let v = Sim.freg s 0 in
      Sim.store_w s (psa + psa_scratch) (Int32.to_int (Int32.of_float v)))

(** Create a simulator, install the PSA, and load an object module.
    Returns the simulator and the absolute entry address. *)
let boot ?(layout = default_layout) (objmod : Objmod.t) :
    (Sim.t * int, string) result =
  let sim = Sim.create ~mem_size:(1 lsl 20) ~halt_addr:0 () in
  install sim layout;
  match Objmod.load sim.Sim.mem ~at:layout.code_addr objmod with
  | Error e -> Error e
  | Ok entry ->
      Sim.set_reg sim pr_base layout.psa_addr;
      Sim.set_reg sim code_base layout.code_addr;
      Sim.set_reg sim stack_base layout.stack_top;
      Sim.set_reg sim 14 0 (* returning from the outer procedure halts *);
      Sim.set_reg sim 15 entry;
      Ok (sim, entry)

(** The frame address the outermost procedure's locals live in (valid
    after its [procedure_entry] ran). *)
let main_frame (layout : layout) = layout.stack_top - layout.frame_size

(** Run a booted program to completion. *)
let run ?(max_steps = 1_000_000) ?(layout = default_layout) sim ~entry :
    (outcome, string) result =
  match Sim.run ~max_steps sim ~entry with
  | steps ->
      Ok { steps; aborted = sim.Sim.aborted; final_frame = main_frame layout }
  | exception Sim.Sim_error e -> Error e
  | exception Encode.Encode_error e -> Error e
