(** The target registry: name -> (spec path, substrate).

    A plain association list — adding a backend means adding one row (and
    the spec + substrate it names).  Deliberately immutable: the registry
    is consulted from the domain pool, so it must carry no toplevel
    mutable state (see test/check_globals.sh). *)

let all : (string * Target.t) list =
  [ (Amdahl.target.Target.name, Amdahl.target);
    (Risc32.target.Target.name, Risc32.target) ]

let names = List.map fst all

let find (name : string) : Target.t option = List.assoc_opt name all

let find_exn (name : string) : Target.t =
  match find name with
  | Some t -> t
  | None ->
      invalid_arg
        (Fmt.str "unknown target %S (known: %s)" name
           (String.concat ", " names))

(** The default target, used everywhere a target is not named. *)
let default = Amdahl.target
