(** Symbolic machine instructions for both target substrates.

    The IBM System/360-370 (Amdahl 470) subset uses the five architected
    formats [Rr]/[Rx]/[Rs]/[Si]/[Ss]; the RISC-32 load/store machine uses
    the fixed-width [R3]/[R2]/[Ri]/[Li]/[Mem]/[Bcc] formats.  Both share
    one symbolic type so the emitter, loader and listings are
    target-independent.  Binary encoding lives in {!Encode}; execution
    semantics in {!Sim} (Amdahl) and {!Risc32} (RISC-32). *)

(** The five machine instruction formats of the 360/370 subset we model.
    [RR] instructions are 2 bytes, [RX]/[RS]/[SI] are 4, [SS] is 6. *)
type format = RR | RX | RS | SI | SS

(** RISC-32 formats, all 4 bytes:
    - [F_r3]: three-register ALU op [op rd,rs1,rs2]
    - [F_r2]: two-register op [op rd,rs] (also compares and [jr])
    - [F_ri]: register + 16-bit signed immediate [op rd,rs,imm]
    - [F_li]: one register + 16-bit signed immediate [li rd,imm]
    - [F_mem]: load/store/link [op rd,dsp(rb)] with signed 16-bit dsp
    - [F_bcc]: conditional branch [bc mask,rel] with pc-relative rel16 *)
type r32_format = F_r3 | F_r2 | F_ri | F_li | F_mem | F_bcc

(** A symbolic machine instruction with all operand fields resolved to
    numbers.  [Rx] covers both indexed storage operands [d2(x2,b2)] and
    branch instructions (where [r1] is the condition mask).  The RISC-32
    constructors follow: register fields name GPRs or FP registers
    depending on the mnemonic; [Bcc.rel] is a byte offset relative to the
    branch instruction's own address. *)
type t =
  | Rr of { op : string; r1 : int; r2 : int }
  | Rx of { op : string; r1 : int; d2 : int; x2 : int; b2 : int }
  | Rs of { op : string; r1 : int; r3 : int; d2 : int; b2 : int }
  | Si of { op : string; d1 : int; b1 : int; i2 : int }
  | Ss of { op : string; l : int; d1 : int; b1 : int; d2 : int; b2 : int }
  | R3 of { op : string; rd : int; rs1 : int; rs2 : int }
  | R2 of { op : string; rd : int; rs : int }
  | Ri of { op : string; rd : int; rs : int; imm : int }
  | Li of { op : string; rd : int; imm : int }
  | Mem of { op : string; rd : int; dsp : int; rb : int }
  | Bcc of { mask : int; rel : int }

let mnemonic = function
  | Rr { op; _ } | Rx { op; _ } | Rs { op; _ } | Si { op; _ } | Ss { op; _ }
  | R3 { op; _ } | R2 { op; _ } | Ri { op; _ } | Li { op; _ } | Mem { op; _ }
    -> op
  | Bcc _ -> "bc"

(** Mnemonic -> (opcode byte, format).  Opcode values are the architected
    System/370 encodings. *)
let opcode_table : (string * (int * format)) list =
  [
    (* RR: load/arithmetic register-register *)
    ("lr", (0x18, RR));
    ("ltr", (0x12, RR));
    ("lcr", (0x13, RR));
    ("lpr", (0x10, RR));
    ("lnr", (0x11, RR));
    ("ar", (0x1A, RR));
    ("sr", (0x1B, RR));
    ("mr", (0x1C, RR));
    ("dr", (0x1D, RR));
    ("alr", (0x1E, RR));
    ("slr", (0x1F, RR));
    ("cr", (0x19, RR));
    ("clr", (0x15, RR));
    ("nr", (0x14, RR));
    ("or", (0x16, RR));
    ("xr", (0x17, RR));
    ("bcr", (0x07, RR));
    ("balr", (0x05, RR));
    ("bctr", (0x06, RR));
    ("spm", (0x04, RR));
    ("mvcl", (0x0E, RR));
    ("clcl", (0x0F, RR));
    (* RR floating point (short and long) *)
    ("ler", (0x38, RR));
    ("ldr", (0x28, RR));
    ("lcer", (0x33, RR));
    ("lcdr", (0x23, RR));
    ("lper", (0x30, RR));
    ("lpdr", (0x20, RR));
    ("lner", (0x31, RR));
    ("lndr", (0x21, RR));
    ("ltdr", (0x22, RR));
    ("lter", (0x32, RR));
    ("aer", (0x3A, RR));
    ("adr", (0x2A, RR));
    ("ser", (0x3B, RR));
    ("sdr", (0x2B, RR));
    ("mer", (0x3C, RR));
    ("mdr", (0x2C, RR));
    ("der", (0x3D, RR));
    ("ddr", (0x2D, RR));
    ("cer", (0x39, RR));
    ("cdr", (0x29, RR));
    ("her", (0x34, RR));
    ("hdr", (0x24, RR));
    ("axr", (0x36, RR));
    ("sxr", (0x37, RR));
    ("mxr", (0x26, RR));
    ("lrer", (0x35, RR));
    ("lrdr", (0x25, RR));
    (* RX: storage-and-register *)
    ("l", (0x58, RX));
    ("lh", (0x48, RX));
    ("la", (0x41, RX));
    ("st", (0x50, RX));
    ("sth", (0x40, RX));
    ("stc", (0x42, RX));
    ("ic", (0x43, RX));
    ("a", (0x5A, RX));
    ("ah", (0x4A, RX));
    ("s", (0x5B, RX));
    ("sh", (0x4B, RX));
    ("m", (0x5C, RX));
    ("mh", (0x4C, RX));
    ("d", (0x5D, RX));
    ("c", (0x59, RX));
    ("ch", (0x49, RX));
    ("cl", (0x55, RX));
    ("al", (0x5E, RX));
    ("sl", (0x5F, RX));
    ("n", (0x54, RX));
    ("o", (0x56, RX));
    ("x", (0x57, RX));
    ("bc", (0x47, RX));
    ("bal", (0x45, RX));
    ("bct", (0x46, RX));
    ("ex", (0x44, RX));
    ("cvb", (0x4F, RX));
    ("cvd", (0x4E, RX));
    (* RX floating point *)
    ("le", (0x78, RX));
    ("ld", (0x68, RX));
    ("ste", (0x70, RX));
    ("std", (0x60, RX));
    ("ae", (0x7A, RX));
    ("ad", (0x6A, RX));
    ("se", (0x7B, RX));
    ("sd", (0x6B, RX));
    ("me", (0x7C, RX));
    ("md", (0x6C, RX));
    ("de", (0x7D, RX));
    ("dd", (0x6D, RX));
    ("ce", (0x79, RX));
    ("cd", (0x69, RX));
    (* RS: register-storage, shifts, multiple load/store *)
    ("lm", (0x98, RS));
    ("stm", (0x90, RS));
    ("sla", (0x8B, RS));
    ("sra", (0x8A, RS));
    ("sll", (0x89, RS));
    ("srl", (0x88, RS));
    ("slda", (0x8F, RS));
    ("srda", (0x8E, RS));
    ("sldl", (0x8D, RS));
    ("srdl", (0x8C, RS));
    ("bxh", (0x86, RS));
    ("bxle", (0x87, RS));
    (* SI: storage-immediate *)
    ("mvi", (0x92, SI));
    ("cli", (0x95, SI));
    ("ni", (0x94, SI));
    ("oi", (0x96, SI));
    ("xi", (0x97, SI));
    ("tm", (0x91, SI));
    (* SS: storage-storage *)
    ("mvc", (0xD2, SS));
    ("clc", (0xD5, SS));
    ("nc", (0xD4, SS));
    ("oc", (0xD6, SS));
    ("xc", (0xD7, SS));
    ("tr", (0xDC, SS));
  ]

let opcode_of_mnemonic : (string, int * format) Hashtbl.t =
  let h = Hashtbl.create 128 in
  List.iter (fun (m, v) -> Hashtbl.replace h m v) opcode_table;
  h

let mnemonic_of_opcode : (int, string * format) Hashtbl.t =
  let h = Hashtbl.create 128 in
  List.iter (fun (m, (op, f)) -> Hashtbl.replace h op (m, f)) opcode_table;
  h

let is_mnemonic m = Hashtbl.mem opcode_of_mnemonic m

let format_of_mnemonic m =
  match Hashtbl.find_opt opcode_of_mnemonic m with
  | Some (_, f) -> Some f
  | None -> None

(** RISC-32 mnemonic -> (opcode byte, format).  The numbering is our own
    (the machine is fictional); values may overlap the 370 table because
    the two instruction sets are never decoded from the same memory. *)
let r32_opcode_table : (string * (int * r32_format)) list =
  [
    (* three-register ALU *)
    ("add", (0x01, F_r3));
    ("sub", (0x02, F_r3));
    ("mul", (0x03, F_r3));
    ("div", (0x04, F_r3));
    ("rem", (0x05, F_r3));
    ("and", (0x06, F_r3));
    ("or", (0x07, F_r3));
    ("xor", (0x08, F_r3));
    ("andn", (0x09, F_r3));
    ("sll", (0x0A, F_r3));
    ("srl", (0x0B, F_r3));
    ("sra", (0x0C, F_r3));
    (* three-register floating point (F registers) *)
    ("fadd", (0x0D, F_r3));
    ("fsub", (0x0E, F_r3));
    ("fmul", (0x0F, F_r3));
    ("fdiv", (0x10, F_r3));
    (* two-register *)
    ("mov", (0x11, F_r2));
    ("neg", (0x12, F_r2));
    ("itof", (0x13, F_r2)); (* rd: F register, rs: GPR *)
    ("ftoi", (0x14, F_r2)); (* rd: GPR, rs: F register *)
    ("fmov", (0x15, F_r2));
    ("fneg", (0x16, F_r2));
    ("fabs", (0x17, F_r2));
    ("fhlv", (0x18, F_r2)); (* halve: rd <- rs / 2.0 *)
    ("cmp", (0x19, F_r2)); (* signed compare, sets cc *)
    ("cmpu", (0x1A, F_r2)); (* unsigned compare, sets cc *)
    ("fcmp", (0x1B, F_r2)); (* float compare, sets cc *)
    ("jr", (0x1C, F_r2)); (* jump register: pc <- rs (rd unused) *)
    (* register-immediate *)
    ("addi", (0x20, F_ri));
    ("subi", (0x21, F_ri));
    ("andi", (0x22, F_ri));
    ("ori", (0x23, F_ri));
    ("xori", (0x24, F_ri));
    ("slli", (0x25, F_ri));
    ("srli", (0x26, F_ri));
    ("srai", (0x27, F_ri));
    (* load-immediate / compare-immediate *)
    ("li", (0x28, F_li));
    ("cmpi", (0x29, F_li));
    (* loads and stores, dsp(rb) addressing only *)
    ("lw", (0x30, F_mem));
    ("lh", (0x31, F_mem)); (* sign-extending halfword load *)
    ("lb", (0x32, F_mem)); (* zero-extending byte load *)
    ("sw", (0x33, F_mem));
    ("sh", (0x34, F_mem));
    ("sb", (0x35, F_mem));
    ("fld", (0x36, F_mem)); (* load double *)
    ("fsd", (0x37, F_mem)); (* store double *)
    ("fls", (0x38, F_mem)); (* load single (widen to double) *)
    ("fss", (0x39, F_mem)); (* store single (round to f32 bits) *)
    ("jl", (0x3A, F_mem)); (* jump-and-link: rd <- next, pc <- rb+dsp *)
    (* conditional branch, pc-relative *)
    ("bc", (0x40, F_bcc));
  ]

let r32_opcode_of_mnemonic : (string, int * r32_format) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun (m, v) -> Hashtbl.replace h m v) r32_opcode_table;
  h

let r32_mnemonic_of_opcode : (int, string * r32_format) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun (m, (op, f)) -> Hashtbl.replace h op (m, f)) r32_opcode_table;
  h

let r32_is_mnemonic m = Hashtbl.mem r32_opcode_of_mnemonic m

let r32_format_of_mnemonic m =
  match Hashtbl.find_opt r32_opcode_of_mnemonic m with
  | Some (_, f) -> Some f
  | None -> None

let size_of_format = function RR -> 2 | RX | RS | SI -> 4 | SS -> 6

(** Encoded size in bytes of a symbolic instruction. *)
let size = function
  | Rr _ -> 2
  | Rx _ | Rs _ | Si _ -> 4
  | Ss _ -> 6
  | R3 _ | R2 _ | Ri _ | Li _ | Mem _ | Bcc _ -> 4

(** Assembly-listing rendering, in the style of the paper's Appendix 1
    ([l r1,132(r12)], [sla r1,2], [mvc 144(4,13),168(13)], ...).

    [render] appends straight to a [Buffer]: listings are produced once
    per compile and sit on the hot path (they feed the determinism
    fingerprint), so the rendering avoids the [Format] machinery
    entirely.  [pp] wraps it for embedding in formatted output. *)
let render (b : Buffer.t) (t : t) : unit =
  let str = Buffer.add_string b in
  let ch = Buffer.add_char b in
  let int n = str (string_of_int n) in
  let mnem op =
    str op;
    (* the listing pads mnemonics to 5 columns *)
    for _ = String.length op to 4 do
      ch ' '
    done;
    ch ' '
  in
  let reg r =
    ch 'r';
    int r
  in
  let freg r =
    ch 'f';
    int r
  in
  match t with
  | Rr { op; r1; r2 } ->
      mnem op;
      reg r1;
      ch ',';
      reg r2
  | Rx { op; r1; d2; x2; b2 } ->
      mnem op;
      reg r1;
      ch ',';
      int d2;
      if x2 = 0 && b2 = 0 then ()
      else if x2 = 0 then begin
        ch '(';
        reg b2;
        ch ')'
      end
      else begin
        ch '(';
        reg x2;
        ch ',';
        reg b2;
        ch ')'
      end
  | Rs { op; r1; r3; d2; b2 } -> (
      match op with
      | "sla" | "sra" | "sll" | "srl" | "slda" | "srda" | "sldl" | "srdl" ->
          mnem op;
          reg r1;
          ch ',';
          int d2;
          if b2 <> 0 then begin
            ch '(';
            reg b2;
            ch ')'
          end
      | _ ->
          mnem op;
          reg r1;
          ch ',';
          reg r3;
          ch ',';
          int d2;
          if b2 <> 0 then begin
            ch '(';
            reg b2;
            ch ')'
          end)
  | Si { op; d1; b1; i2 } ->
      mnem op;
      int d1;
      if b1 <> 0 then begin
        ch '(';
        reg b1;
        ch ')'
      end;
      ch ',';
      int i2
  | Ss { op; l; d1; b1; d2; b2 } ->
      mnem op;
      int d1;
      ch '(';
      int l;
      ch ',';
      reg b1;
      ch ')';
      ch ',';
      int d2;
      ch '(';
      reg b2;
      ch ')'
  | R3 { op; rd; rs1; rs2 } ->
      let r = if String.length op > 0 && op.[0] = 'f' then freg else reg in
      mnem op;
      r rd;
      ch ',';
      r rs1;
      ch ',';
      r rs2
  | R2 { op; rd; rs } -> (
      mnem op;
      match op with
      | "jr" -> reg rs
      | "itof" ->
          freg rd;
          ch ',';
          reg rs
      | "ftoi" ->
          reg rd;
          ch ',';
          freg rs
      | "fmov" | "fneg" | "fabs" | "fhlv" | "fcmp" ->
          freg rd;
          ch ',';
          freg rs
      | _ ->
          reg rd;
          ch ',';
          reg rs)
  | Ri { op; rd; rs; imm } ->
      mnem op;
      reg rd;
      ch ',';
      reg rs;
      ch ',';
      int imm
  | Li { op; rd; imm } ->
      mnem op;
      reg rd;
      ch ',';
      int imm
  | Mem { op; rd; dsp; rb } ->
      let r =
        match op with "fld" | "fsd" | "fls" | "fss" -> freg | _ -> reg
      in
      mnem op;
      r rd;
      ch ',';
      int dsp;
      ch '(';
      reg rb;
      ch ')'
  | Bcc { mask; rel } ->
      mnem "bc";
      int mask;
      ch ',';
      int rel

let to_string t =
  let b = Buffer.create 24 in
  render b t;
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)
