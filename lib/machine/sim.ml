(** A System/360-370 subset simulator.

    Executes the binary code produced by the code generator so that emitted
    code can be checked for functional correctness, not just inspected.
    Word size is 32 bits (big-endian storage); registers are kept as OCaml
    ints normalized to signed 32-bit range.  Floating point substitutes
    IEEE single/double for IBM hexadecimal float (see DESIGN.md).

    A trap table maps absolute addresses to OCaml handlers: branching into
    a trapped address runs the handler and returns via register 14 (unless
    the handler redirects).  This models the runtime support routines the
    generated code reaches through [bal rx,disp(pr_base)]. *)

exception Sim_error of string

let err fmt = Fmt.kstr (fun s -> raise (Sim_error s)) fmt

type t = {
  mem : Bytes.t;
  regs : int array; (* 16 GPRs, signed 32-bit normalized *)
  fregs : float array; (* FP registers 0,2,4,6 *)
  mutable cc : int; (* condition code, 0..3 *)
  mutable pc : int;
  mutable running : bool;
  mutable steps : int;
  mutable aborted : string option;
  traps : (int, t -> unit) Hashtbl.t;
  halt_addr : int;
}

let mask32 = 0xFFFFFFFF

(* normalize to signed 32-bit *)
let norm32 x =
  let v = x land mask32 in
  if v >= 0x80000000 then v - 0x100000000 else v

let unsigned32 x = x land mask32

let create ?(mem_size = 1 lsl 20) ?(halt_addr = 0) () =
  {
    mem = Bytes.make mem_size '\000';
    regs = Array.make 16 0;
    fregs = Array.make 8 0.0;
    cc = 0;
    pc = 0;
    running = false;
    steps = 0;
    aborted = None;
    traps = Hashtbl.create 16;
    halt_addr;
  }

let set_trap t addr handler = Hashtbl.replace t.traps addr handler
let reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- norm32 v
let freg t r = t.fregs.(r)
let set_freg t r v = t.fregs.(r) <- v

(* -- memory access ------------------------------------------------------- *)

let check t addr n what =
  if addr < 0 || addr + n > Bytes.length t.mem then
    err "%s access out of bounds at %06X" what addr

let load_u8 t a =
  check t a 1 "byte load";
  Bytes.get_uint8 t.mem a

let store_u8 t a v =
  check t a 1 "byte store";
  Bytes.set_uint8 t.mem a (v land 0xFF)

let load_h t a =
  check t a 2 "halfword load";
  let v = Bytes.get_uint16_be t.mem a in
  if v >= 0x8000 then v - 0x10000 else v

let store_h t a v =
  check t a 2 "halfword store";
  Bytes.set_uint16_be t.mem a (v land 0xFFFF)

let load_w t a =
  check t a 4 "word load";
  norm32 (Int32.to_int (Bytes.get_int32_be t.mem a) land mask32)

let store_w t a v =
  check t a 4 "word store";
  Bytes.set_int32_be t.mem a (Int32.of_int (norm32 v))

let load_f32 t a =
  check t a 4 "float load";
  Int32.float_of_bits (Bytes.get_int32_be t.mem a)

let store_f32 t a v =
  check t a 4 "float store";
  Bytes.set_int32_be t.mem a (Int32.bits_of_float v)

let load_f64 t a =
  check t a 8 "double load";
  Int64.float_of_bits (Bytes.get_int64_be t.mem a)

let store_f64 t a v =
  check t a 8 "double store";
  Bytes.set_int64_be t.mem a (Int64.bits_of_float v)

(* -- condition code helpers ---------------------------------------------- *)

let cc_of_sign v = if v = 0 then 0 else if v < 0 then 1 else 2

let cc_of_compare a b = if a = b then 0 else if a < b then 1 else 2

let arith_result t v =
  (* detect 32-bit signed overflow: v is the mathematically exact result *)
  let n = norm32 v in
  if n <> v then t.cc <- 3 else t.cc <- cc_of_sign n;
  n

let logical_result t v =
  let n = norm32 v in
  t.cc <- (if n = 0 then 0 else 1);
  n

(* -- addressing ---------------------------------------------------------- *)

let ea t ~d ~x ~b =
  let xi = if x = 0 then 0 else unsigned32 t.regs.(x)
  and bi = if b = 0 then 0 else unsigned32 t.regs.(b) in
  (d + xi + bi) land 0xFFFFFF

let ea_rs t ~d ~b = ea t ~d ~x:0 ~b

(* -- even/odd pair helpers ----------------------------------------------- *)

let get_pair t r =
  if r mod 2 <> 0 then err "odd register %d used as even/odd pair" r;
  let hi = Int64.of_int (unsigned32 t.regs.(r))
  and lo = Int64.of_int (unsigned32 t.regs.(r + 1)) in
  Int64.logor (Int64.shift_left hi 32) lo

let set_pair t r v =
  if r mod 2 <> 0 then err "odd register %d used as even/odd pair" r;
  t.regs.(r) <- norm32 (Int64.to_int (Int64.shift_right_logical v 32) land mask32);
  t.regs.(r + 1) <- norm32 (Int64.to_int v land mask32)

(* -- branching ----------------------------------------------------------- *)

let branch_taken t mask = mask land (8 lsr t.cc) <> 0

(* -- execution ----------------------------------------------------------- *)

let exec_rr t op r1 r2 next =
  let regs = t.regs in
  let branch target = t.pc <- target land 0xFFFFFF in
  (match op with
  | "lr" -> regs.(r1) <- regs.(r2)
  | "ltr" ->
      regs.(r1) <- regs.(r2);
      t.cc <- cc_of_sign regs.(r1)
  | "lcr" -> regs.(r1) <- arith_result t (-regs.(r2))
  | "lpr" -> regs.(r1) <- arith_result t (abs regs.(r2))
  | "lnr" ->
      regs.(r1) <- norm32 (-abs regs.(r2));
      t.cc <- cc_of_sign regs.(r1)
  | "ar" -> regs.(r1) <- arith_result t (regs.(r1) + regs.(r2))
  | "sr" -> regs.(r1) <- arith_result t (regs.(r1) - regs.(r2))
  | "alr" ->
      let sum = unsigned32 regs.(r1) + unsigned32 regs.(r2) in
      let carry = sum > mask32 in
      regs.(r1) <- norm32 sum;
      t.cc <- (if norm32 sum = 0 then if carry then 2 else 0
               else if carry then 3 else 1)
  | "slr" ->
      let diff = unsigned32 regs.(r1) - unsigned32 regs.(r2) in
      let borrow = diff < 0 in
      regs.(r1) <- norm32 diff;
      t.cc <- (if norm32 diff = 0 then 2 else if borrow then 1 else 3)
  | "mr" ->
      (* product of odd register and r2 -> 64-bit result in the pair *)
      if r1 mod 2 <> 0 then err "mr: r1 must be even";
      let prod = Int64.mul (Int64.of_int regs.(r1 + 1)) (Int64.of_int regs.(r2)) in
      set_pair t r1 prod
  | "dr" ->
      if r1 mod 2 <> 0 then err "dr: r1 must be even";
      if regs.(r2) = 0 then err "dr: division by zero";
      let dividend = get_pair t r1 in
      let divisor = Int64.of_int regs.(r2) in
      let q = Int64.div dividend divisor and r = Int64.rem dividend divisor in
      regs.(r1) <- norm32 (Int64.to_int r land mask32 |> norm32);
      regs.(r1 + 1) <- norm32 (Int64.to_int q land mask32 |> norm32)
  | "cr" -> t.cc <- cc_of_compare regs.(r1) regs.(r2)
  | "clr" -> t.cc <- cc_of_compare (unsigned32 regs.(r1)) (unsigned32 regs.(r2))
  | "nr" -> regs.(r1) <- logical_result t (regs.(r1) land regs.(r2))
  | "or" -> regs.(r1) <- logical_result t (regs.(r1) lor regs.(r2))
  | "xr" -> regs.(r1) <- logical_result t (regs.(r1) lxor regs.(r2))
  | "bcr" -> if branch_taken t r1 && r2 <> 0 then branch (unsigned32 regs.(r2))
  | "balr" ->
      regs.(r1) <- next;
      if r2 <> 0 then branch (unsigned32 regs.(r2))
  | "bctr" ->
      regs.(r1) <- norm32 (regs.(r1) - 1);
      if regs.(r1) <> 0 && r2 <> 0 then branch (unsigned32 regs.(r2))
  | "spm" -> () (* set program mask: no-op in this model *)
  | "mvcl" ->
      if r1 mod 2 <> 0 || r2 mod 2 <> 0 then err "mvcl: registers must be even";
      let dst = unsigned32 regs.(r1) land 0xFFFFFF
      and dlen = unsigned32 regs.(r1 + 1) land 0xFFFFFF
      and src = unsigned32 regs.(r2) land 0xFFFFFF
      and slen = unsigned32 regs.(r2 + 1) land 0xFFFFFF in
      let pad = (unsigned32 regs.(r2 + 1) lsr 24) land 0xFF in
      for i = 0 to dlen - 1 do
        let b = if i < slen then load_u8 t (src + i) else pad in
        store_u8 t (dst + i) b
      done;
      regs.(r1) <- norm32 (dst + dlen);
      regs.(r1 + 1) <- 0;
      regs.(r2) <- norm32 (src + min slen dlen);
      regs.(r2 + 1) <- norm32 (slen - min slen dlen);
      t.cc <- cc_of_compare dlen slen
  (* floating point RR *)
  | "ler" | "ldr" -> t.fregs.(r1) <- t.fregs.(r2)
  | "lcer" | "lcdr" ->
      t.fregs.(r1) <- -.t.fregs.(r2);
      t.cc <- cc_of_sign (compare t.fregs.(r1) 0.0)
  | "lper" | "lpdr" ->
      t.fregs.(r1) <- Float.abs t.fregs.(r2);
      t.cc <- cc_of_sign (compare t.fregs.(r1) 0.0)
  | "lner" | "lndr" ->
      t.fregs.(r1) <- -.Float.abs t.fregs.(r2);
      t.cc <- cc_of_sign (compare t.fregs.(r1) 0.0)
  | "lter" | "ltdr" ->
      t.fregs.(r1) <- t.fregs.(r2);
      t.cc <- cc_of_sign (compare t.fregs.(r1) 0.0)
  | "aer" | "adr" | "axr" ->
      t.fregs.(r1) <- t.fregs.(r1) +. t.fregs.(r2);
      t.cc <- cc_of_sign (compare t.fregs.(r1) 0.0)
  | "ser" | "sdr" | "sxr" ->
      t.fregs.(r1) <- t.fregs.(r1) -. t.fregs.(r2);
      t.cc <- cc_of_sign (compare t.fregs.(r1) 0.0)
  | "mer" | "mdr" | "mxr" -> t.fregs.(r1) <- t.fregs.(r1) *. t.fregs.(r2)
  | "der" | "ddr" ->
      if t.fregs.(r2) = 0.0 then err "der/ddr: division by zero";
      t.fregs.(r1) <- t.fregs.(r1) /. t.fregs.(r2)
  | "her" | "hdr" -> t.fregs.(r1) <- t.fregs.(r2) /. 2.0
  | "cer" | "cdr" -> t.cc <- cc_of_compare (compare t.fregs.(r1) t.fregs.(r2)) 0
  | "lrer" | "lrdr" -> t.fregs.(r1) <- t.fregs.(r2)
  | "clcl" -> err "clcl: not implemented"
  | _ -> err "unimplemented RR instruction %s" op);
  ()

let exec_rx t op r1 addr next =
  let regs = t.regs in
  match op with
  | "l" -> regs.(r1) <- load_w t addr
  | "lh" -> regs.(r1) <- load_h t addr
  | "la" -> regs.(r1) <- addr land 0xFFFFFF
  | "st" -> store_w t addr regs.(r1)
  | "sth" -> store_h t addr regs.(r1)
  | "stc" -> store_u8 t addr regs.(r1)
  | "ic" -> regs.(r1) <- norm32 ((regs.(r1) land (lnot 0xFF)) lor load_u8 t addr)
  | "a" -> regs.(r1) <- arith_result t (regs.(r1) + load_w t addr)
  | "ah" -> regs.(r1) <- arith_result t (regs.(r1) + load_h t addr)
  | "s" -> regs.(r1) <- arith_result t (regs.(r1) - load_w t addr)
  | "sh" -> regs.(r1) <- arith_result t (regs.(r1) - load_h t addr)
  | "al" ->
      let sum = unsigned32 regs.(r1) + unsigned32 (load_w t addr) in
      let carry = sum > mask32 in
      regs.(r1) <- norm32 sum;
      t.cc <- (if norm32 sum = 0 then if carry then 2 else 0
               else if carry then 3 else 1)
  | "sl" ->
      let diff = unsigned32 regs.(r1) - unsigned32 (load_w t addr) in
      regs.(r1) <- norm32 diff;
      t.cc <- (if norm32 diff = 0 then 2 else if diff < 0 then 1 else 3)
  | "m" ->
      if r1 mod 2 <> 0 then err "m: r1 must be even";
      let prod =
        Int64.mul (Int64.of_int regs.(r1 + 1)) (Int64.of_int (load_w t addr))
      in
      set_pair t r1 prod
  | "mh" -> regs.(r1) <- norm32 (regs.(r1) * load_h t addr)
  | "d" ->
      if r1 mod 2 <> 0 then err "d: r1 must be even";
      let divisor = load_w t addr in
      if divisor = 0 then err "d: division by zero";
      let dividend = get_pair t r1 in
      let q = Int64.div dividend (Int64.of_int divisor)
      and r = Int64.rem dividend (Int64.of_int divisor) in
      regs.(r1) <- norm32 (Int64.to_int r land mask32 |> norm32);
      regs.(r1 + 1) <- norm32 (Int64.to_int q land mask32 |> norm32)
  | "c" -> t.cc <- cc_of_compare regs.(r1) (load_w t addr)
  | "ch" -> t.cc <- cc_of_compare regs.(r1) (load_h t addr)
  | "cl" -> t.cc <- cc_of_compare (unsigned32 regs.(r1)) (unsigned32 (load_w t addr))
  | "n" -> regs.(r1) <- logical_result t (regs.(r1) land load_w t addr)
  | "o" -> regs.(r1) <- logical_result t (regs.(r1) lor load_w t addr)
  | "x" -> regs.(r1) <- logical_result t (regs.(r1) lxor load_w t addr)
  | "bc" -> if branch_taken t r1 then t.pc <- addr
  | "bal" ->
      regs.(r1) <- next;
      t.pc <- addr
  | "bct" ->
      regs.(r1) <- norm32 (regs.(r1) - 1);
      if regs.(r1) <> 0 then t.pc <- addr
  (* floating point RX: r1 names an FP register *)
  | "le" -> t.fregs.(r1) <- load_f32 t addr
  | "ld" -> t.fregs.(r1) <- load_f64 t addr
  | "ste" -> store_f32 t addr t.fregs.(r1)
  | "std" -> store_f64 t addr t.fregs.(r1)
  | "ae" | "ad" ->
      t.fregs.(r1) <-
        t.fregs.(r1) +. (if op = "ae" then load_f32 t addr else load_f64 t addr);
      t.cc <- cc_of_sign (compare t.fregs.(r1) 0.0)
  | "se" | "sd" ->
      t.fregs.(r1) <-
        t.fregs.(r1) -. (if op = "se" then load_f32 t addr else load_f64 t addr);
      t.cc <- cc_of_sign (compare t.fregs.(r1) 0.0)
  | "me" | "md" ->
      t.fregs.(r1) <-
        t.fregs.(r1) *. (if op = "me" then load_f32 t addr else load_f64 t addr)
  | "de" | "dd" ->
      let v = if op = "de" then load_f32 t addr else load_f64 t addr in
      if v = 0.0 then err "de/dd: division by zero";
      t.fregs.(r1) <- t.fregs.(r1) /. v
  | "ce" | "cd" ->
      let v = if op = "ce" then load_f32 t addr else load_f64 t addr in
      t.cc <- cc_of_compare (compare t.fregs.(r1) v) 0
  | "ex" | "cvb" | "cvd" -> err "%s: not implemented" op
  | _ -> err "unimplemented RX instruction %s" op

let exec_rs t op r1 r3 addr =
  let regs = t.regs in
  let shift_amount = addr land 0x3F in
  match op with
  | "sla" ->
      let v = regs.(r1) in
      let exact = v * (1 lsl shift_amount) in
      regs.(r1) <- arith_result t exact
  | "sra" ->
      regs.(r1) <- norm32 (regs.(r1) asr shift_amount);
      t.cc <- cc_of_sign regs.(r1)
  | "sll" -> regs.(r1) <- norm32 (unsigned32 regs.(r1) lsl shift_amount)
  | "srl" -> regs.(r1) <- norm32 (unsigned32 regs.(r1) lsr shift_amount)
  | "slda" ->
      let v = get_pair t r1 in
      let shifted = Int64.shift_left v shift_amount in
      set_pair t r1 shifted;
      t.cc <- cc_of_sign (Int64.compare shifted 0L)
  | "srda" ->
      let v = get_pair t r1 in
      let shifted = Int64.shift_right v shift_amount in
      set_pair t r1 shifted;
      t.cc <- cc_of_sign (Int64.compare shifted 0L)
  | "sldl" ->
      let v = get_pair t r1 in
      set_pair t r1 (Int64.shift_left v shift_amount)
  | "srdl" ->
      let v = get_pair t r1 in
      set_pair t r1 (Int64.shift_right_logical v shift_amount)
  | "lm" ->
      let r = ref r1 and a = ref addr in
      let continue = ref true in
      while !continue do
        regs.(!r) <- load_w t !a;
        a := !a + 4;
        if !r = r3 then continue := false else r := (!r + 1) mod 16
      done
  | "stm" ->
      let r = ref r1 and a = ref addr in
      let continue = ref true in
      while !continue do
        store_w t !a regs.(!r);
        a := !a + 4;
        if !r = r3 then continue := false else r := (!r + 1) mod 16
      done
  | "bxh" ->
      let incr = regs.(r3) in
      let cmp = if r3 mod 2 = 0 then regs.(r3 + 1) else regs.(r3) in
      regs.(r1) <- norm32 (regs.(r1) + incr);
      if regs.(r1) > cmp then t.pc <- addr
  | "bxle" ->
      let incr = regs.(r3) in
      let cmp = if r3 mod 2 = 0 then regs.(r3 + 1) else regs.(r3) in
      regs.(r1) <- norm32 (regs.(r1) + incr);
      if regs.(r1) <= cmp then t.pc <- addr
  | _ -> err "unimplemented RS instruction %s" op

let exec_si t op addr i2 =
  match op with
  | "mvi" -> store_u8 t addr i2
  | "cli" -> t.cc <- cc_of_compare (load_u8 t addr) i2
  | "ni" ->
      let v = load_u8 t addr land i2 in
      store_u8 t addr v;
      t.cc <- (if v = 0 then 0 else 1)
  | "oi" ->
      let v = load_u8 t addr lor i2 in
      store_u8 t addr v;
      t.cc <- (if v = 0 then 0 else 1)
  | "xi" ->
      let v = load_u8 t addr lxor i2 in
      store_u8 t addr v;
      t.cc <- (if v = 0 then 0 else 1)
  | "tm" ->
      let b = load_u8 t addr in
      let sel = b land i2 in
      t.cc <- (if sel = 0 then 0 else if sel = i2 then 3 else 1)
  | _ -> err "unimplemented SI instruction %s" op

let exec_ss t op l a1 a2 =
  match op with
  | "mvc" ->
      (* one byte at a time, left to right: architected overlap behaviour *)
      for i = 0 to l - 1 do
        store_u8 t (a1 + i) (load_u8 t (a2 + i))
      done
  | "clc" ->
      let rec cmp i =
        if i >= l then 0
        else
          let c = compare (load_u8 t (a1 + i)) (load_u8 t (a2 + i)) in
          if c <> 0 then c else cmp (i + 1)
      in
      t.cc <- cc_of_compare (cmp 0) 0
  | "nc" | "oc" | "xc" ->
      let f =
        match op with
        | "nc" -> ( land )
        | "oc" -> ( lor )
        | _ -> ( lxor )
      in
      let nonzero = ref false in
      for i = 0 to l - 1 do
        let v = f (load_u8 t (a1 + i)) (load_u8 t (a2 + i)) land 0xFF in
        if v <> 0 then nonzero := true;
        store_u8 t (a1 + i) v
      done;
      t.cc <- (if !nonzero then 1 else 0)
  | _ -> err "unimplemented SS instruction %s" op

(** Execute a single instruction at the current PC. *)
let step t =
  let insn, sz = Encode.decode t.mem t.pc in
  let next = t.pc + sz in
  t.pc <- next;
  (match insn with
  | Rr { op; r1; r2 } -> exec_rr t op r1 r2 next
  | Rx { op; r1; d2; x2; b2 } -> exec_rx t op r1 (ea t ~d:d2 ~x:x2 ~b:b2) next
  | Rs { op; r1; r3; d2; b2 } -> exec_rs t op r1 r3 (ea_rs t ~d:d2 ~b:b2)
  | Si { op; d1; b1; i2 } -> exec_si t op (ea_rs t ~d:d1 ~b:b1) i2
  | Ss { op; l; d1; b1; d2; b2 } ->
      exec_ss t op l (ea_rs t ~d:d1 ~b:b1) (ea_rs t ~d:d2 ~b:b2)
  | R3 _ | R2 _ | Ri _ | Li _ | Mem _ | Bcc _ ->
      err "RISC-32 instruction on the 370 simulator");
  t.steps <- t.steps + 1

(** Run from [entry] until the PC reaches the halt address, a trap handler
    stops the machine, or [max_steps] is exceeded.  [run_with] takes the
    single-instruction interpreter as a parameter so per-target substrates
    (which decode different instruction sets into the same machine state)
    can reuse the trap/halt/budget discipline unchanged. *)
let run_with ~(step : t -> unit) ?(max_steps = 1_000_000) t ~entry =
  t.pc <- entry;
  t.running <- true;
  let budget = ref max_steps in
  while t.running do
    if t.pc = t.halt_addr then t.running <- false
    else
      match Hashtbl.find_opt t.traps t.pc with
      | Some handler ->
          handler t;
          if t.running && Hashtbl.mem t.traps t.pc then
            (* handler did not redirect: return via r14 *)
            t.pc <- unsigned32 t.regs.(14) land 0xFFFFFF
      | None ->
          step t;
          decr budget;
          if !budget <= 0 then err "instruction budget exhausted (%d steps)" max_steps
  done;
  t.steps

let run ?max_steps t ~entry = run_with ~step ?max_steps t ~entry

let abort t reason =
  t.aborted <- Some reason;
  t.running <- false
