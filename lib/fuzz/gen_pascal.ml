(** Grammar-directed generation of well-formed mini-Pascal programs.

    Programs are built at the AST level and rendered to concrete syntax,
    so every output parses and type-checks by construction.  The
    generator additionally maintains the invariants that make the
    interp-vs-execution oracle sound — a divergence between the
    reference interpreter and the compiled program is a compiler bug,
    never an artifact of the input:

    - divisors and modulus operands are provably non-zero
      ([1 + abs(e mod 9)] or a non-zero literal);
    - array subscripts are folded into range ([lo + abs(e mod n)]);
    - assignments to subrange variables are folded into the subrange;
    - set elements are folded into the set's element range;
    - every loop terminates via a reserved counter variable ([k0..k2],
      one per loop-nesting level) that no generated assignment targets;
    - case selectors are folded onto the arm labels exactly;
    - real arithmetic keeps magnitudes bounded (no overflow to
      infinity, where relative-tolerance comparison breaks down);
    - [write] appears only in the main program's straight-line tail,
      within the runtime's 64-int/32-real capture windows.

    Integer overflow is deliberately {e not} avoided: both the
    interpreter and the machine wrap at 32 bits, and wrapping is part of
    what the oracle checks. *)

module A = Pascal.Ast

(* Reserved loop counters, indexed by loop-nesting depth.  Generated
   assignments never target them, so a loop's own decrement/increment is
   the only writer while it runs. *)
let counters = [| "k0"; "k1"; "k2" |]

let max_loop_depth = Array.length counters

type decls = {
  ints : string list;
  subs : (string * int * int) list;
  bools : string list;
  chars : string list;
  reals : string list;
  arrays : (string * int * int * A.ty) list;  (** name, lo, hi, elem *)
  sets : (string * int) list;
  procs : string list;
}

let no_decls =
  {
    ints = [];
    subs = [];
    bools = [];
    chars = [];
    reals = [];
    arrays = [];
    sets = [];
    procs = [];
  }

let decls_of_profile (p : Profile.t) : decls =
  match p with
  | Profile.Ints ->
      {
        no_decls with
        ints = [ "i0"; "i1"; "i2"; "i3" ];
        subs = [ ("z0", -1000, 1000) ];
      }
  | Profile.Bools ->
      {
        no_decls with
        ints = [ "i0"; "i1" ];
        bools = [ "p0"; "p1"; "p2" ];
        sets = [ ("s0", 31) ];
      }
  | Profile.Arrays ->
      {
        no_decls with
        ints = [ "i0"; "i1"; "i2" ];
        subs = [ ("z0", 0, 255) ];
        arrays =
          [
            ("a0", 0, 7, A.Tint);
            ("a1", 1, 6, A.Tsub (-100, 100));
            ("a2", 0, 4, A.Tbool);
          ];
      }
  | Profile.Branches ->
      { no_decls with ints = [ "i0"; "i1"; "i2"; "i3" ]; bools = [ "p0" ] }
  | Profile.Mixed ->
      {
        ints = [ "i0"; "i1"; "i2" ];
        subs = [ ("z0", 0, 500) ];
        bools = [ "p0"; "p1" ];
        chars = [ "c0"; "c1" ];
        reals = [ "r0"; "r1" ];
        arrays = [ ("a0", 0, 7, A.Tint) ];
        sets = [ ("s0", 15) ];
        procs = [ "q0"; "q1" ];
      }

type ctx = { rng : Rng.t; d : decls; in_proc : bool }

(* -- expressions ------------------------------------------------------------ *)

(* abs(e mod n): always in 0..n-1, on both the interpreter and the
   machine (both truncate division toward zero and wrap at 32 bits) *)
let abs_mod (e : A.expr) (n : int) : A.expr =
  A.Ecall ("abs", [ A.Ebin (A.Mod, e, A.Eint n) ])

let rec int_expr (c : ctx) (fuel : int) : A.expr =
  let r = c.rng in
  let leaf () =
    let vars =
      c.d.ints
      @ List.map (fun (n, _, _) -> n) c.d.subs
      @ Array.to_list counters
    in
    let cands =
      [ (3, `Lit); (4, `Var) ]
      @ (if c.d.arrays <> [] then [ (2, `Arr) ] else [])
      @ if c.d.chars <> [] then [ (1, `Ord) ] else []
    in
    match Rng.weighted r cands with
    | `Lit -> A.Eint (Rng.range r (-999) 999)
    | `Var -> A.Evar (Rng.choose_list r vars)
    | `Arr ->
        let name, lo, hi, elem = Rng.choose_list r c.d.arrays in
        if elem = A.Tbool then A.Eint (Rng.range r 0 99)
        else A.Eindex (name, safe_index c (lo, hi) 0)
    | `Ord -> A.Ecall ("ord", [ A.Evar (Rng.choose_list r c.d.chars) ])
  in
  if fuel <= 0 then leaf ()
  else
    match
      Rng.weighted r
        [
          (2, `Leaf); (3, `Arith); (2, `DivMod); (1, `Neg); (1, `Abs);
          (1, `MinMax); (1, `SuccPred); (1, `Sqr);
        ]
    with
    | `Leaf -> leaf ()
    | `Arith ->
        let op = Rng.choose r [| A.Add; A.Sub; A.Mul |] in
        A.Ebin (op, int_expr c (fuel - 1), int_expr c (fuel - 1))
    | `DivMod ->
        let op = Rng.choose r [| A.Div; A.Mod |] in
        A.Ebin (op, int_expr c (fuel - 1), safe_denom c (fuel - 1))
    | `Neg -> A.Eun (A.Neg, int_expr c (fuel - 1))
    | `Abs -> A.Ecall ("abs", [ int_expr c (fuel - 1) ])
    | `MinMax ->
        let f = if Rng.bool r then "min" else "max" in
        A.Ecall (f, [ int_expr c (fuel - 1); int_expr c (fuel - 1) ])
    | `SuccPred ->
        let f = if Rng.bool r then "succ" else "pred" in
        A.Ecall (f, [ int_expr c (fuel - 1) ])
    | `Sqr -> A.Ecall ("sqr", [ int_expr c (fuel - 1) ])

(* a provably non-zero integer expression *)
and safe_denom (c : ctx) (fuel : int) : A.expr =
  if Rng.bool c.rng then
    let n = Rng.range c.rng 1 9 in
    A.Eint (if Rng.chance c.rng 1 4 then -n else n)
  else A.Ebin (A.Add, A.Eint 1, abs_mod (int_expr c (min fuel 2)) 9)

(* a subscript provably within lo..hi *)
and safe_index (c : ctx) ((lo, hi) : int * int) (fuel : int) : A.expr =
  if fuel <= 0 || Rng.chance c.rng 1 3 then A.Eint (Rng.range c.rng lo hi)
  else A.Ebin (A.Add, A.Eint lo, abs_mod (int_expr c fuel) (hi - lo + 1))

(* a value provably within the subrange lo..hi *)
let safe_sub_value (c : ctx) ((lo, hi) : int * int) (fuel : int) : A.expr =
  if lo >= 0 then safe_index c (lo, hi) fuel
  else
    (* e mod m lies in -(m-1)..m-1 which is inside lo..hi *)
    let m = 1 + min hi (-lo) in
    A.Ebin (A.Mod, int_expr c fuel, A.Eint m)

let char_expr (c : ctx) (fuel : int) : A.expr =
  let r = c.rng in
  let leaf () =
    if c.d.chars <> [] && Rng.bool r then A.Evar (Rng.choose_list r c.d.chars)
    else A.Echar (Char.chr (Rng.range r (Char.code 'a') (Char.code 'z')))
  in
  (* chr of an out-of-range ordinal is a runtime error in the reference
     interpreter, so pin the argument into 32..121 — leaving headroom
     for a succ/pred step on top *)
  let pinned_chr fuel =
    A.Ecall
      ( "chr",
        [
          A.Ebin
            ( A.Add,
              A.Ecall ("abs", [ A.Ebin (A.Mod, int_expr c fuel, A.Eint 90) ]),
              A.Eint 32 );
        ] )
  in
  if fuel <= 0 then leaf ()
  else
    match Rng.weighted r [ (2, `Leaf); (1, `Chr); (1, `SuccPred) ] with
    | `Leaf -> leaf ()
    | `Chr -> pinned_chr (fuel - 1)
    | `SuccPred ->
        (* never step a char *variable*: uninitialized chars sit at
           chr(0), and c := pred(c) in a loop walks past the range check
           one iteration at a time.  A literal or pinned-chr argument
           keeps every step inside 31..122. *)
        let f = if Rng.bool r then "succ" else "pred" in
        let arg =
          if fuel > 1 && Rng.bool r then pinned_chr (fuel - 2)
          else A.Echar (Char.chr (Rng.range r (Char.code 'a') (Char.code 'z')))
        in
        A.Ecall (f, [ arg ])

(* Bounded real expressions: literals stay under 100, multiplication
   only by literals, division only by non-zero literals — magnitudes
   cannot run away to infinity inside the loop iteration bounds. *)
let rec real_expr (c : ctx) (fuel : int) : A.expr =
  let r = c.rng in
  let lit () = A.Ereal (float_of_int (Rng.range r 0 9999) /. 100.) in
  let leaf () =
    if c.d.reals <> [] && Rng.bool r then A.Evar (Rng.choose_list r c.d.reals)
    else lit ()
  in
  if fuel <= 0 then leaf ()
  else
    match
      Rng.weighted r [ (2, `Leaf); (2, `AddSub); (1, `MulLit); (1, `DivLit); (1, `Neg) ]
    with
    | `Leaf -> leaf ()
    | `AddSub ->
        let op = if Rng.bool r then A.Add else A.Sub in
        A.Ebin (op, real_expr c (fuel - 1), real_expr c (fuel - 1))
    | `MulLit -> A.Ebin (A.Mul, real_expr c (fuel - 1), lit ())
    | `DivLit ->
        let d = float_of_int (Rng.range r 25 999) /. 100. in
        A.Ebin (A.RDiv, real_expr c (fuel - 1), A.Ereal d)
    | `Neg -> A.Eun (A.Neg, real_expr c (fuel - 1))

let rec bool_expr (c : ctx) (fuel : int) : A.expr =
  let r = c.rng in
  let leaf () =
    if c.d.bools <> [] && Rng.bool r then A.Evar (Rng.choose_list r c.d.bools)
    else A.Ebool (Rng.bool r)
  in
  if fuel <= 0 then leaf ()
  else
    let cands =
      [ (2, `Leaf); (3, `IntCmp); (2, `Conn); (1, `Not); (1, `Odd) ]
      @ (if c.d.chars <> [] then [ (1, `CharCmp) ] else [])
      @ (if c.d.reals <> [] then [ (1, `RealCmp) ] else [])
      @ (if c.d.sets <> [] then [ (1, `In) ] else [])
      @ if c.d.bools <> [] then [ (1, `BoolEq) ] else []
    in
    match Rng.weighted r cands with
    | `Leaf -> leaf ()
    | `IntCmp ->
        let op = Rng.choose r [| A.Lt; A.Le; A.Gt; A.Ge; A.Eq; A.Ne |] in
        A.Ebin (op, int_expr c (fuel - 1), int_expr c (fuel - 1))
    | `CharCmp ->
        let op = Rng.choose r [| A.Lt; A.Le; A.Gt; A.Ge; A.Eq; A.Ne |] in
        A.Ebin (op, char_expr c (fuel - 1), char_expr c (fuel - 1))
    | `RealCmp ->
        let op = Rng.choose r [| A.Lt; A.Le; A.Gt; A.Ge |] in
        A.Ebin (op, real_expr c (fuel - 1), real_expr c (fuel - 1))
    | `Conn ->
        let op = if Rng.bool r then A.And else A.Or in
        A.Ebin (op, bool_expr c (fuel - 1), bool_expr c (fuel - 1))
    | `Not -> A.Eun (A.Not, bool_expr c (fuel - 1))
    | `Odd -> A.Ecall ("odd", [ int_expr c (fuel - 1) ])
    | `In ->
        let s, n = Rng.choose_list r c.d.sets in
        A.Ebin (A.In, abs_mod (int_expr c (fuel - 1)) (n + 1), A.Evar s)
    | `BoolEq ->
        let op = if Rng.bool r then A.Eq else A.Ne in
        A.Ebin (op, bool_expr c (fuel - 1), bool_expr c (fuel - 1))

(* -- statements ------------------------------------------------------------- *)

let expr_fuel (c : ctx) = Rng.range c.rng 0 4

(* one generated assignment; never targets a loop counter *)
let assign (c : ctx) : A.stmt =
  let r = c.rng in
  let cands =
    (if c.d.ints <> [] then [ (4, `Int) ] else [])
    @ (if c.d.subs <> [] then [ (2, `Sub) ] else [])
    @ (if c.d.bools <> [] then [ (2, `Bool) ] else [])
    @ (if c.d.chars <> [] then [ (1, `Char) ] else [])
    @ (if c.d.reals <> [] then [ (2, `Real) ] else [])
    @ if c.d.arrays <> [] then [ (3, `Arr) ] else []
  in
  if cands = [] then A.Sempty
  else
    match Rng.weighted r cands with
    | `Int ->
        A.Sassign (A.Lvar (Rng.choose_list r c.d.ints), int_expr c (expr_fuel c))
    | `Sub ->
        let n, lo, hi = Rng.choose_list r c.d.subs in
        A.Sassign (A.Lvar n, safe_sub_value c (lo, hi) (expr_fuel c))
    | `Bool ->
        A.Sassign (A.Lvar (Rng.choose_list r c.d.bools), bool_expr c (expr_fuel c))
    | `Char ->
        A.Sassign (A.Lvar (Rng.choose_list r c.d.chars), char_expr c (expr_fuel c))
    | `Real ->
        A.Sassign (A.Lvar (Rng.choose_list r c.d.reals), real_expr c (expr_fuel c))
    | `Arr ->
        let name, lo, hi, elem = Rng.choose_list r c.d.arrays in
        let idx = safe_index c (lo, hi) (expr_fuel c) in
        let value =
          match elem with
          | A.Tbool -> bool_expr c (expr_fuel c)
          | A.Tsub (l, h) -> safe_sub_value c (l, h) (expr_fuel c)
          | _ -> int_expr c (expr_fuel c)
        in
        A.Sassign (A.Lindex (name, idx), value)

(* [stmt] returns a statement {e list} because loop constructs carry
   their counter initialization with them. *)
let rec stmt (c : ctx) ~(depth : int) ~(ldepth : int) : A.stmt list =
  let r = c.rng in
  let loops_ok = ldepth < max_loop_depth && not c.in_proc && depth < 3 in
  let cands =
    [ (8, `Assign) ]
    @ (if depth < 4 then [ (3, `If) ] else [])
    @ (if loops_ok then [ (2, `While); (1, `Repeat); (2, `For) ] else [])
    @ (if depth < 3 then [ (1, `Case) ] else [])
    @ (if c.d.sets <> [] then [ (1, `SetOp) ] else [])
    @
    if c.d.procs <> [] && not c.in_proc && depth < 2 then [ (1, `Call) ]
    else []
  in
  let body n = stmts c ~depth:(depth + 1) ~ldepth ~fuel:n in
  let loop_body n = stmts c ~depth:(depth + 1) ~ldepth:(ldepth + 1) ~fuel:n in
  let k = counters.(min ldepth (max_loop_depth - 1)) in
  match Rng.weighted r cands with
  | `Assign -> [ assign c ]
  | `If ->
      let cond = bool_expr c (expr_fuel c) in
      let then_ = body (Rng.range r 1 3) in
      let else_ = if Rng.bool r then body (Rng.range r 1 2) else [] in
      [ A.Sif (cond, then_, else_) ]
  | `While ->
      let n = Rng.range r 1 8 in
      let count_down = A.Ebin (A.Gt, A.Evar k, A.Eint 0) in
      let cond =
        if Rng.chance r 1 3 then
          (* conjoining an arbitrary (pure, total) condition can only
             end the loop earlier *)
          A.Ebin (A.And, count_down, bool_expr c 2)
        else count_down
      in
      [
        A.Sassign (A.Lvar k, A.Eint n);
        A.Swhile
          ( cond,
            loop_body (Rng.range r 1 3)
            @ [ A.Sassign (A.Lvar k, A.Ebin (A.Sub, A.Evar k, A.Eint 1)) ] );
      ]
  | `Repeat ->
      let n = Rng.range r 1 6 in
      [
        A.Sassign (A.Lvar k, A.Eint 0);
        A.Srepeat
          ( loop_body (Rng.range r 1 3)
            @ [ A.Sassign (A.Lvar k, A.Ebin (A.Add, A.Evar k, A.Eint 1)) ],
            A.Ebin (A.Ge, A.Evar k, A.Eint n) );
      ]
  | `For ->
      let a = Rng.range r (-6) 12 in
      let span = Rng.range r 0 9 in
      let downto_ = Rng.bool r in
      let b = if downto_ then a - span else a + span in
      [
        A.Sfor
          {
            var = k;
            from_ = A.Eint a;
            downto_;
            to_ = A.Eint b;
            body = loop_body (Rng.range r 1 3);
          };
      ]
  | `Case ->
      let n_arms = Rng.range r 2 4 in
      let sel = abs_mod (int_expr c (expr_fuel c)) n_arms in
      let with_otherwise = Rng.bool r in
      let n_listed = if with_otherwise then n_arms - 1 else n_arms in
      let arms =
        List.init n_listed (fun i -> ([ i ], body (Rng.range r 1 2)))
      in
      let otherwise = if with_otherwise then Some (body 1) else None in
      [ A.Scase (sel, arms, otherwise) ]
  | `SetOp ->
      let s, n = Rng.choose_list r c.d.sets in
      let p = if Rng.bool r then "include" else "exclude" in
      [ A.Scall (p, [ A.Evar s; abs_mod (int_expr c 2) (n + 1) ]) ]
  | `Call -> [ A.Scall (Rng.choose_list r c.d.procs, []) ]

and stmts (c : ctx) ~depth ~ldepth ~fuel : A.stmt list =
  List.concat (List.init (max 1 fuel) (fun _ -> stmt c ~depth ~ldepth))

(* -- whole programs ---------------------------------------------------------- *)

let declared (d : decls) : A.var_decl list =
  List.map (fun n -> { A.v_name = n; v_ty = A.Tint }) d.ints
  @ List.map (fun (n, lo, hi) -> { A.v_name = n; v_ty = A.Tsub (lo, hi) }) d.subs
  @ List.map (fun n -> { A.v_name = n; v_ty = A.Tbool }) d.bools
  @ List.map (fun n -> { A.v_name = n; v_ty = A.Tchar }) d.chars
  @ List.map (fun n -> { A.v_name = n; v_ty = A.Treal }) d.reals
  @ List.map
      (fun (n, lo, hi, elem) -> { A.v_name = n; v_ty = A.Tarray { lo; hi; elem } })
      d.arrays
  @ List.map (fun (n, hi) -> { A.v_name = n; v_ty = A.Tset hi }) d.sets
  @ List.map (fun n -> { A.v_name = n; v_ty = A.Tint }) (Array.to_list counters)

(** Generate one program.  [size] is the top-level statement budget;
    defaults to a profile-appropriate random size ([Branches] programs
    run long to push code past the 4096-byte page). *)
let program ?size (rng : Rng.t) (profile : Profile.t) : A.program =
  let d = decls_of_profile profile in
  let size =
    match size with
    | Some s -> s
    | None -> (
        match profile with
        | Profile.Branches -> Rng.range rng 12 40
        | _ -> Rng.range rng 4 12)
  in
  let c = { rng; d; in_proc = false } in
  let procs =
    if d.procs = [] then []
    else
      let n = Rng.range rng 0 (List.length d.procs) in
      List.filteri (fun i _ -> i < n) d.procs
      |> List.map (fun p_name ->
             {
               A.p_name;
               p_locals = [];
               p_body =
                 stmts { c with in_proc = true } ~depth:0 ~ldepth:0
                   ~fuel:(Rng.range rng 1 4);
             })
  in
  let d = { d with procs = List.map (fun p -> p.A.p_name) procs } in
  let c = { c with d } in
  let main = stmts c ~depth:0 ~ldepth:0 ~fuel:size in
  (* observable tail: write the scalar state out (main program only) *)
  let writes =
    List.map (fun v -> A.Scall ("write", [ A.Evar v ])) c.d.ints
    @ List.map (fun v -> A.Scall ("write", [ A.Evar v ])) c.d.reals
  in
  {
    A.prog_name = "fuzz";
    globals = declared c.d;
    procs;
    main = main @ writes;
  }

(* -- rendering to concrete syntax -------------------------------------------- *)

let render_ty (t : A.ty) : string = Fmt.str "%a" A.pp_ty t

let rec render_expr (e : A.expr) : string =
  match e with
  | A.Eint n -> if n < 0 then Fmt.str "(-%d)" (-n) else string_of_int n
  | A.Ereal f -> if f < 0.0 then Fmt.str "(-%.2f)" (-.f) else Fmt.str "%.2f" f
  | A.Ebool b -> if b then "true" else "false"
  | A.Echar ch -> Fmt.str "'%c'" ch
  | A.Evar v -> v
  | A.Eindex (v, i) -> Fmt.str "%s[%s]" v (render_expr i)
  | A.Ebin (op, a, b) ->
      Fmt.str "(%s %s %s)" (render_expr a) (A.binop_name op) (render_expr b)
  | A.Eun (A.Neg, a) -> Fmt.str "(-%s)" (render_expr a)
  | A.Eun (A.Not, a) -> Fmt.str "(not %s)" (render_expr a)
  | A.Ecall (f, args) ->
      Fmt.str "%s(%s)" f (String.concat ", " (List.map render_expr args))

let render_lvalue = function
  | A.Lvar v -> v
  | A.Lindex (v, i) -> Fmt.str "%s[%s]" v (render_expr i)

let rec render_stmt (b : Buffer.t) (ind : string) (s : A.stmt) : unit =
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (ind ^ s)) fmt in
  match s with
  | A.Sempty -> line "begin end"
  | A.Sassign (lv, e) -> line "%s := %s" (render_lvalue lv) (render_expr e)
  | A.Scall (p, []) -> line "%s" p
  | A.Scall (p, args) ->
      line "%s(%s)" p (String.concat ", " (List.map render_expr args))
  | A.Sblock body ->
      line "";
      render_body b ind body
  | A.Sif (cond, then_, else_) ->
      line "if %s then\n" (render_expr cond);
      render_body b (ind ^ "  ") then_;
      if else_ <> [] then begin
        Buffer.add_string b ("\n" ^ ind ^ "else\n");
        render_body b (ind ^ "  ") else_
      end
  | A.Swhile (cond, body) ->
      line "while %s do\n" (render_expr cond);
      render_body b (ind ^ "  ") body
  | A.Srepeat (body, cond) ->
      line "repeat\n";
      render_stmts b (ind ^ "  ") body;
      Buffer.add_string b ("\n" ^ ind ^ "until " ^ render_expr cond)
  | A.Sfor { var; from_; downto_; to_; body } ->
      line "for %s := %s %s %s do\n" var (render_expr from_)
        (if downto_ then "downto" else "to")
        (render_expr to_);
      render_body b (ind ^ "  ") body
  | A.Scase (sel, arms, otherwise) ->
      line "case %s of\n" (render_expr sel);
      List.iter
        (fun (labels, body) ->
          Buffer.add_string b
            (ind ^ "  "
            ^ String.concat ", " (List.map string_of_int labels)
            ^ ":\n");
          render_body b (ind ^ "    ") body;
          Buffer.add_string b ";\n")
        arms;
      (match otherwise with
      | None -> ()
      | Some body ->
          Buffer.add_string b (ind ^ "  otherwise\n");
          render_body b (ind ^ "    ") body;
          Buffer.add_string b "\n");
      Buffer.add_string b (ind ^ "end")

and render_stmts b ind (ss : A.stmt list) : unit =
  let rec go = function
    | [] -> ()
    | [ s ] -> render_stmt b ind s
    | s :: rest ->
        render_stmt b ind s;
        Buffer.add_string b ";\n";
        go rest
  in
  go ss

(* a statement list in statement position: wrapped in begin/end *)
and render_body b ind (ss : A.stmt list) : unit =
  Buffer.add_string b (ind ^ "begin\n");
  render_stmts b (ind ^ "  ") ss;
  Buffer.add_string b ("\n" ^ ind ^ "end")

let render (p : A.program) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Fmt.str "program %s;\n" p.A.prog_name);
  if p.A.globals <> [] then begin
    Buffer.add_string b "var\n";
    List.iter
      (fun { A.v_name; v_ty } ->
        Buffer.add_string b (Fmt.str "  %s : %s;\n" v_name (render_ty v_ty)))
      p.A.globals
  end;
  List.iter
    (fun { A.p_name; p_locals; p_body } ->
      Buffer.add_string b (Fmt.str "procedure %s;\n" p_name);
      if p_locals <> [] then begin
        Buffer.add_string b "var\n";
        List.iter
          (fun { A.v_name; v_ty } ->
            Buffer.add_string b (Fmt.str "  %s : %s;\n" v_name (render_ty v_ty)))
          p_locals
      end;
      render_body b "" p_body;
      Buffer.add_string b ";\n")
    p.A.procs;
  render_body b "" p.A.main;
  Buffer.add_string b ".\n";
  Buffer.contents b

(** Generate and render in one step. *)
let source ?size (rng : Rng.t) (profile : Profile.t) : string =
  render (program ?size rng profile)

(* -- well-formedness-preserving mutation -------------------------------------- *)

(** One guided-fuzzing mutation step.  Every oracle-soundness invariant
    the generator maintains is {e expression-local} (safe divisors,
    folded subscripts, bounded reals) or travels inside a single
    top-level statement (a loop and its counter discipline), so editing
    the main body at whole-statement granularity preserves them all:

    - {e insert} a freshly generated statement (full generator power,
      same profile declarations);
    - {e delete} a statement — deleting a loop's counter init is safe
      because every loop re-establishes termination by itself (while
      counts a reserved counter down to 0 unconditionally, repeat counts
      up, for has literal bounds);
    - {e duplicate} a statement — a duplicated while body re-runs from
      the counter's post-loop value 0 and exits immediately;
    - {e swap} two adjacent statements.

    The trailing [write] block is never touched: observable output stays
    in the main program's straight-line tail, inside the runtime's
    capture windows. *)
let mutate (rng : Rng.t) (profile : Profile.t) (p : A.program) : A.program =
  let d = decls_of_profile profile in
  let d = { d with procs = List.map (fun pr -> pr.A.p_name) p.A.procs } in
  let c = { rng; d; in_proc = false } in
  let is_write = function A.Scall ("write", _) -> true | _ -> false in
  let body, tail =
    let rec go tail = function
      | s :: rest when is_write s -> go (s :: tail) rest
      | rest -> (List.rev rest, tail)
    in
    go [] (List.rev p.A.main)
  in
  let one body =
    let n = List.length body in
    let splice i take repl =
      List.concat
        [
          List.filteri (fun j _ -> j < i) body;
          repl;
          List.filteri (fun j _ -> j >= i + take) body;
        ]
    in
    let nth i = List.nth body i in
    let cands =
      [ (6, `Insert) ]
      @ (if n >= 1 then [ (2, `Dup) ] else [])
      @ (if n >= 2 then [ (1, `Delete); (1, `Swap) ] else [])
    in
    match Rng.weighted rng cands with
    | `Insert ->
        let i = Rng.int rng (n + 1) in
        splice i 0 (stmts c ~depth:0 ~ldepth:0 ~fuel:(Rng.range rng 2 4))
    | `Delete -> splice (Rng.int rng n) 1 []
    | `Dup ->
        let i = Rng.int rng n in
        splice i 1 [ nth i; nth i ]
    | `Swap ->
        let i = Rng.int rng (n - 1) in
        splice i 2 [ nth (i + 1); nth i ]
  in
  (* a stacked step: a mutant's novelty budget is comparable to a fresh
     program's, on top of the retained parent structure *)
  let rec steps k body = if k = 0 then body else steps (k - 1) (one body) in
  { p with A.main = steps (Rng.range rng 2 4) body @ tail }
