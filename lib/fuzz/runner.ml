(** The fuzzing loop: generate, cross-check, shrink, report.

    Every case is named forever by its (seed, index) pair — the RNG
    stream for case [i] is [Rng.derive ~seed ~index:i], independent of
    how many cases ran before it — so any finding replays with
    [--seed S --start I --count 1]. *)

type input = Pascal_src of Pascal.Ast.program | If_stream of Ifl.Token.t list

type finding = {
  f_index : int;  (** case index (combine with the seed to replay) *)
  f_oracle : string;
  f_status : Oracle.status;
  f_repro : string;  (** replayable input text, minimized if requested *)
  f_kind : string;  (** ["pascal"] or ["if"]: how to replay [f_repro] *)
  f_minimized : bool;
}

type report = {
  r_seed : int;
  r_count : int;
  r_cases : int;
  r_passes : int;  (** individual oracle passes *)
  r_skips : int;
  r_findings : finding list;
  r_batch : (string, string) result option;
      (** fingerprint at [-j 1] vs [-j N] (and cache cold vs warm when a
          spec was supplied): [Ok fp] or [Error what_diverged] *)
}

type config = {
  seed : int;
  count : int;
  start : int;
  profile : Profile.t option;  (** [None]: rotate through all profiles *)
  minimize : bool;
  malformed : bool;  (** mutate streams and check totality instead *)
  jobs : int;  (** domains for the parallel half of the batch check *)
  spec : string option;  (** spec path, enables the cache cold/warm check *)
  cache_dir : string option;  (** scratch cache for the cold/warm check *)
  log : string -> unit;  (** per-finding progress line *)
  collect : Cogg.Cogprof.t option;
      (** profile collector: every case's (unmutated) input is also
          compiled once with capture on, accumulating state visits and
          production fires across the whole run — the corpus half of
          [pasc fuzz --profile-out] *)
  cross : Cogg.Tables.t option;
      (** second backend: every Pascal case additionally compiles and
          runs under these tables and the two machines' observable
          outputs must agree (the cross-backend differential oracle) *)
}

let default_config =
  {
    seed = 1;
    count = 64;
    start = 0;
    profile = None;
    minimize = false;
    malformed = false;
    jobs = 4;
    spec = None;
    cache_dir = None;
    log = ignore;
    collect = None;
    cross = None;
  }

let render_input = function
  | Pascal_src p -> Gen_pascal.render p
  | If_stream toks -> Gen_if.to_text toks

(* -- one case ----------------------------------------------------------------- *)

let gen_input (cfg : config) (index : int) (rng : Rng.t) : input =
  let profile =
    match cfg.profile with Some p -> p | None -> Profile.rotate index
  in
  (* one case in four exercises the raw IF surface; the rest go through
     the full Pascal front end *)
  if Rng.chance rng 1 4 then
    If_stream
      (Gen_if.program ~branch_heavy:(profile = Profile.Branches) rng)
  else Pascal_src (Gen_pascal.program rng profile)

let oracles_for (tables : Cogg.Tables.t) (cfg : config) (input : input) :
    (string * (input -> Oracle.status)) list =
  let on_src f = function
    | Pascal_src p -> f (Gen_pascal.render p)
    | If_stream _ -> Oracle.Skip "source oracle on IF input"
  and on_toks f = function
    | If_stream toks -> f toks
    | Pascal_src p -> (
        (* the dispatch/determinism oracles run on the linearized IF the
           front end produces for this program *)
        match Pipeline.compile tables (Gen_pascal.render p) with
        | Error _ -> Oracle.Skip "front end rejected (exec oracle reports it)"
        | Ok c -> f c.Pipeline.tokens)
  in
  if cfg.malformed then
    [
      ("total", on_toks (Oracle.total tables));
      ("total-text", on_toks (fun t -> Oracle.total_text tables (Gen_if.to_text t)));
      ("dispatch", on_toks (Oracle.dispatch tables));
    ]
  else
    match input with
    | Pascal_src _ ->
        [
          ("exec", on_src (Oracle.exec tables));
          ("dispatch", on_toks (Oracle.dispatch tables));
          ("determinism", on_src (Oracle.determinism tables));
        ]
        @ (match cfg.cross with
          | Some other ->
              [ ("cross", on_src (Oracle.cross_backend tables other)) ]
          | None -> [])
    | If_stream _ ->
        [
          ("dispatch", on_toks (Oracle.dispatch tables));
          ("determinism", on_toks (Oracle.determinism_tokens tables));
        ]

let shrink_budget = 400

let minimize_finding (tables : Cogg.Tables.t) (name : string)
    (check : input -> Oracle.status) (key : string) (input : input) : input =
  ignore tables;
  let same_failure (i : input) =
    Oracle.failure_key name (check i) = Some key
  in
  match input with
  | Pascal_src p ->
      Pascal_src
        (Shrink.minimize ~budget:shrink_budget
           ~candidates:Shrink.program_candidates
           ~test:(fun p -> same_failure (Pascal_src p))
           p)
  | If_stream toks ->
      If_stream
        (Shrink.minimize_tokens ~budget:shrink_budget
           ~test:(fun t -> same_failure (If_stream t))
           toks)

let run_case (tables : Cogg.Tables.t) (cfg : config) (index : int) :
    int * int * finding list =
  let rng = Rng.derive ~seed:cfg.seed ~index in
  let input =
    let base = gen_input cfg index rng in
    if cfg.malformed then
      let toks =
        match base with
        | If_stream toks -> toks
        | Pascal_src _ -> Gen_if.program ~size:8 rng
      in
      If_stream (Gen_if.mutate rng toks)
    else base
  in
  let passes = ref 0 and skips = ref 0 and findings = ref [] in
  List.iter
    (fun (name, check) ->
      match check input with
      | Oracle.Pass -> incr passes
      | Oracle.Skip _ -> incr skips
      | (Oracle.Fail _ | Oracle.Crash _) as st ->
          let key = Option.get (Oracle.failure_key name st) in
          let minimized =
            if cfg.minimize then minimize_finding tables name check key input
            else input
          in
          let f =
            {
              f_index = index;
              f_oracle = name;
              f_status = (if cfg.minimize then check minimized else st);
              f_repro = render_input minimized;
              f_kind =
                (match minimized with
                | Pascal_src _ -> "pascal"
                | If_stream _ -> "if");
              f_minimized = cfg.minimize;
            }
          in
          cfg.log
            (Fmt.str "case %d [%s]: %a" index name Oracle.pp_status f.f_status);
          findings := f :: !findings)
    (oracles_for tables cfg input);
  (!passes, !skips, List.rev !findings)

(* -- batch-level determinism --------------------------------------------------- *)

(** Compile the same corpus sequentially and across [jobs] domains (and,
    when a spec path is at hand, against freshly-built vs cache-loaded
    tables) and demand one fingerprint. *)
let batch_check (tables : Cogg.Tables.t) (cfg : config)
    (sources : string list) : (string, string) result =
  let jobs_arr =
    Array.of_list
      (List.mapi
         (fun i s -> { Pipeline.Batch.name = Fmt.str "fuzz%04d" i; source = s })
         sources)
  in
  let fp ?pool tables =
    Pipeline.Batch.fingerprint (Pipeline.Batch.compile_all ?pool tables jobs_arr)
  in
  let seq = fp tables in
  let par =
    if cfg.jobs <= 1 then seq
    else Cogg.Pool.with_pool ~domains:cfg.jobs (fun pool -> fp ~pool tables)
  in
  if seq <> par then
    Error (Fmt.str "fingerprint diverges: -j1 %s vs -j%d %s" seq cfg.jobs par)
  else
    match (cfg.spec, cfg.cache_dir) with
    | Some spec, Some cache_dir -> (
        let build () = Cogg.Tables_cache.build_file ~cache_dir spec in
        match (build (), build ()) with
        | Ok (cold, _), Ok (warm, origin) ->
            let fc = fp cold and fw = fp warm in
            if fc <> fw then
              Error
                (Fmt.str "fingerprint diverges: cache cold %s vs %s (%a)" fc fw
                   Cogg.Tables_cache.pp_origin origin)
            else if fc <> seq then
              Error
                (Fmt.str "fingerprint diverges: cached tables %s vs session %s"
                   fc seq)
            else Ok seq
        | Error _, _ | _, Error _ ->
            Error "cache check: spec failed to build through the cache")
    | _ -> Ok seq

(* -- the loop ------------------------------------------------------------------ *)

let run (tables : Cogg.Tables.t) (cfg : config) : report =
  let passes = ref 0 and skips = ref 0 and findings = ref [] in
  let sources = ref [] in
  for index = cfg.start to cfg.start + cfg.count - 1 do
    let p, s, fs = run_case tables cfg index in
    passes := !passes + p;
    skips := !skips + s;
    findings := !findings @ fs;
    (* profile capture: replay the case's pre-mutation input once with a
       collector attached (sequentially — the collector is plain mutable
       state, never shared with pool domains) *)
    (match cfg.collect with
    | None -> ()
    | Some pr -> (
        let rng = Rng.derive ~seed:cfg.seed ~index in
        match gen_input cfg index rng with
        | Pascal_src p ->
            ignore (Pipeline.compile ~profile:pr tables (Gen_pascal.render p))
        | If_stream toks ->
            ignore (Cogg.Codegen.generate ~profile:pr tables toks)));
    (* remember a slice of the corpus for the batch-level check *)
    if (not cfg.malformed) && List.length !sources < 24 then begin
      let rng = Rng.derive ~seed:cfg.seed ~index in
      match gen_input cfg index rng with
      | Pascal_src p -> sources := Gen_pascal.render p :: !sources
      | If_stream _ -> ()
    end
  done;
  let batch =
    if cfg.malformed || !sources = [] then None
    else Some (batch_check tables cfg (List.rev !sources))
  in
  (match batch with
  | Some (Error m) -> cfg.log ("batch: " ^ m)
  | _ -> ());
  {
    r_seed = cfg.seed;
    r_count = cfg.count;
    r_cases = cfg.count;
    r_passes = !passes;
    r_skips = !skips;
    r_findings =
      !findings
      @ (match batch with
        | Some (Error m) ->
            [
              {
                f_index = -1;
                f_oracle = "batch";
                f_status = Oracle.Fail ("batch: " ^ m);
                f_repro = "";
                f_kind = "batch";
                f_minimized = false;
              };
            ]
        | _ -> []);
    r_batch = batch;
  }

let pp_report ppf (r : report) =
  Fmt.pf ppf "fuzz: seed %d, %d cases: %d oracle passes, %d skips, %d findings"
    r.r_seed r.r_cases r.r_passes r.r_skips
    (List.length r.r_findings);
  match r.r_batch with
  | Some (Ok fp) -> Fmt.pf ppf "; batch fingerprint %s" fp
  | Some (Error _) -> Fmt.pf ppf "; batch check FAILED"
  | None -> ()

(** Write each finding's reproducer under [dir]; returns the paths. *)
let write_corpus (dir : string) (r : report) : string list =
  match
    List.filter (fun f -> f.f_repro <> "") r.r_findings
  with
  | [] -> []
  | fs ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.map
        (fun f ->
          let ext = if f.f_kind = "pascal" then "pas" else "ifl" in
          let path =
            Filename.concat dir
              (Fmt.str "seed%d-case%d-%s.%s" r.r_seed f.f_index f.f_oracle ext)
          in
          let oc = open_out path in
          let header =
            Fmt.str
              "fuzz reproducer: seed=%d index=%d oracle=%s (%a) — replay: pasc fuzz --seed %d --start %d --count 1"
              r.r_seed f.f_index f.f_oracle Oracle.pp_status f.f_status
              r.r_seed f.f_index
          in
          output_string oc
            (if f.f_kind = "pascal" then "{ " ^ header ^ " }\n"
             else "* " ^ header ^ "\n");
          output_string oc f.f_repro;
          output_string oc "\n";
          close_out oc;
          path)
        fs
