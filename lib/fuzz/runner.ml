(** The fuzzing loop: generate, cross-check, shrink, report.

    Every case is named forever by its (seed, index) pair — the RNG
    stream for case [i] is [Rng.derive ~seed ~index:i], independent of
    how many cases ran before it — so any finding replays with
    [--seed S --start I --count 1]. *)

type input = Pascal_src of Pascal.Ast.program | If_stream of Ifl.Token.t list

type finding = {
  f_index : int;  (** case index (combine with the seed to replay) *)
  f_oracle : string;
  f_status : Oracle.status;
  f_repro : string;  (** replayable input text, minimized if requested *)
  f_kind : string;  (** ["pascal"] or ["if"]: how to replay [f_repro] *)
  f_minimized : bool;
}

type report = {
  r_seed : int;
  r_count : int;
  r_cases : int;
  r_passes : int;  (** individual oracle passes *)
  r_skips : int;
  r_findings : finding list;
  r_batch : (string, string) result option;
      (** fingerprint at [-j 1] vs [-j N] (and cache cold vs warm when a
          spec was supplied): [Ok fp] or [Error what_diverged] *)
}

type config = {
  seed : int;
  count : int;
  start : int;
  profile : Profile.t option;  (** [None]: rotate through all profiles *)
  minimize : bool;
  malformed : bool;  (** mutate streams and check totality instead *)
  jobs : int;  (** domains for the parallel half of the batch check *)
  spec : string option;  (** spec path, enables the cache cold/warm check *)
  cache_dir : string option;  (** scratch cache for the cold/warm check *)
  log : string -> unit;  (** per-finding progress line *)
  collect : Cogg.Cogprof.t option;
      (** profile collector: every case's (unmutated) input is also
          compiled once with capture on, accumulating state visits and
          production fires across the whole run — the corpus half of
          [pasc fuzz --profile-out] *)
  cross : Cogg.Tables.t option;
      (** second backend: every Pascal case additionally compiles and
          runs under these tables and the two machines' observable
          outputs must agree (the cross-backend differential oracle) *)
}

let default_config =
  {
    seed = 1;
    count = 64;
    start = 0;
    profile = None;
    minimize = false;
    malformed = false;
    jobs = 4;
    spec = None;
    cache_dir = None;
    log = ignore;
    collect = None;
    cross = None;
  }

let render_input = function
  | Pascal_src p -> Gen_pascal.render p
  | If_stream toks -> Gen_if.to_text toks

(* -- one case ----------------------------------------------------------------- *)

let gen_input (cfg : config) (index : int) (rng : Rng.t) : input =
  let profile =
    match cfg.profile with Some p -> p | None -> Profile.rotate index
  in
  (* one case in four exercises the raw IF surface; the rest go through
     the full Pascal front end *)
  if Rng.chance rng 1 4 then
    If_stream
      (Gen_if.program ~branch_heavy:(profile = Profile.Branches) rng)
  else Pascal_src (Gen_pascal.program rng profile)

let oracles_for (tables : Cogg.Tables.t) (cfg : config) (input : input) :
    (string * (input -> Oracle.status)) list =
  let on_src f = function
    | Pascal_src p -> f (Gen_pascal.render p)
    | If_stream _ -> Oracle.Skip "source oracle on IF input"
  and on_toks f = function
    | If_stream toks -> f toks
    | Pascal_src p -> (
        (* the dispatch/determinism oracles run on the linearized IF the
           front end produces for this program *)
        match Pipeline.compile tables (Gen_pascal.render p) with
        | Error _ -> Oracle.Skip "front end rejected (exec oracle reports it)"
        | Ok c -> f c.Pipeline.tokens)
  in
  if cfg.malformed then
    [
      ("total", on_toks (Oracle.total tables));
      ("total-text", on_toks (fun t -> Oracle.total_text tables (Gen_if.to_text t)));
      ("dispatch", on_toks (Oracle.dispatch tables));
    ]
  else
    match input with
    | Pascal_src _ ->
        [
          ("exec", on_src (Oracle.exec tables));
          ("dispatch", on_toks (Oracle.dispatch tables));
          ("determinism", on_src (Oracle.determinism tables));
        ]
        @ (match cfg.cross with
          | Some other ->
              [ ("cross", on_src (Oracle.cross_backend tables other)) ]
          | None -> [])
    | If_stream _ ->
        [
          ("dispatch", on_toks (Oracle.dispatch tables));
          ("determinism", on_toks (Oracle.determinism_tokens tables));
        ]

let shrink_budget = 400

let minimize_finding (tables : Cogg.Tables.t) (name : string)
    (check : input -> Oracle.status) (key : string) (input : input) : input =
  ignore tables;
  let same_failure (i : input) =
    Oracle.failure_key name (check i) = Some key
  in
  match input with
  | Pascal_src p ->
      Pascal_src
        (Shrink.minimize ~budget:shrink_budget
           ~candidates:Shrink.program_candidates
           ~test:(fun p -> same_failure (Pascal_src p))
           p)
  | If_stream toks ->
      If_stream
        (Shrink.minimize_tokens ~budget:shrink_budget
           ~test:(fun t -> same_failure (If_stream t))
           toks)

let run_case (tables : Cogg.Tables.t) (cfg : config) (index : int) :
    int * int * finding list =
  let rng = Rng.derive ~seed:cfg.seed ~index in
  let input =
    let base = gen_input cfg index rng in
    if cfg.malformed then
      let toks =
        match base with
        | If_stream toks -> toks
        | Pascal_src _ -> Gen_if.program ~size:8 rng
      in
      If_stream (Gen_if.mutate rng toks)
    else base
  in
  let passes = ref 0 and skips = ref 0 and findings = ref [] in
  List.iter
    (fun (name, check) ->
      match check input with
      | Oracle.Pass -> incr passes
      | Oracle.Skip _ -> incr skips
      | (Oracle.Fail _ | Oracle.Crash _) as st ->
          let key = Option.get (Oracle.failure_key name st) in
          let minimized =
            if cfg.minimize then minimize_finding tables name check key input
            else input
          in
          let f =
            {
              f_index = index;
              f_oracle = name;
              f_status = (if cfg.minimize then check minimized else st);
              f_repro = render_input minimized;
              f_kind =
                (match minimized with
                | Pascal_src _ -> "pascal"
                | If_stream _ -> "if");
              f_minimized = cfg.minimize;
            }
          in
          cfg.log
            (Fmt.str "case %d [%s]: %a" index name Oracle.pp_status f.f_status);
          findings := f :: !findings)
    (oracles_for tables cfg input);
  (!passes, !skips, List.rev !findings)

(* -- batch-level determinism --------------------------------------------------- *)

(** Compile the same corpus sequentially and across [jobs] domains (and,
    when a spec path is at hand, against freshly-built vs cache-loaded
    tables) and demand one fingerprint. *)
let batch_check (tables : Cogg.Tables.t) (cfg : config)
    (sources : string list) : (string, string) result =
  let jobs_arr =
    Array.of_list
      (List.mapi
         (fun i s -> { Pipeline.Batch.name = Fmt.str "fuzz%04d" i; source = s })
         sources)
  in
  let fp ?pool tables =
    Pipeline.Batch.fingerprint (Pipeline.Batch.compile_all ?pool tables jobs_arr)
  in
  let seq = fp tables in
  let par =
    if cfg.jobs <= 1 then seq
    else Cogg.Pool.with_pool ~domains:cfg.jobs (fun pool -> fp ~pool tables)
  in
  if seq <> par then
    Error (Fmt.str "fingerprint diverges: -j1 %s vs -j%d %s" seq cfg.jobs par)
  else
    match (cfg.spec, cfg.cache_dir) with
    | Some spec, Some cache_dir -> (
        let build () = Cogg.Tables_cache.build_file ~cache_dir spec in
        match (build (), build ()) with
        | Ok (cold, _), Ok (warm, origin) ->
            let fc = fp cold and fw = fp warm in
            if fc <> fw then
              Error
                (Fmt.str "fingerprint diverges: cache cold %s vs %s (%a)" fc fw
                   Cogg.Tables_cache.pp_origin origin)
            else if fc <> seq then
              Error
                (Fmt.str "fingerprint diverges: cached tables %s vs session %s"
                   fc seq)
            else Ok seq
        | Error _, _ | _, Error _ ->
            Error "cache check: spec failed to build through the cache")
    | _ -> Ok seq

(* -- the loop ------------------------------------------------------------------ *)

let run (tables : Cogg.Tables.t) (cfg : config) : report =
  let passes = ref 0 and skips = ref 0 and findings = ref [] in
  let sources = ref [] in
  for index = cfg.start to cfg.start + cfg.count - 1 do
    let p, s, fs = run_case tables cfg index in
    passes := !passes + p;
    skips := !skips + s;
    findings := !findings @ fs;
    (* profile capture: replay the case's pre-mutation input once with a
       collector attached (sequentially — the collector is plain mutable
       state, never shared with pool domains) *)
    (match cfg.collect with
    | None -> ()
    | Some pr -> (
        let rng = Rng.derive ~seed:cfg.seed ~index in
        match gen_input cfg index rng with
        | Pascal_src p ->
            ignore (Pipeline.compile ~profile:pr tables (Gen_pascal.render p))
        | If_stream toks ->
            ignore (Cogg.Codegen.generate ~profile:pr tables toks)));
    (* remember a slice of the corpus for the batch-level check *)
    if (not cfg.malformed) && List.length !sources < 24 then begin
      let rng = Rng.derive ~seed:cfg.seed ~index in
      match gen_input cfg index rng with
      | Pascal_src p -> sources := Gen_pascal.render p :: !sources
      | If_stream _ -> ()
    end
  done;
  let batch =
    if cfg.malformed || !sources = [] then None
    else Some (batch_check tables cfg (List.rev !sources))
  in
  (match batch with
  | Some (Error m) -> cfg.log ("batch: " ^ m)
  | _ -> ());
  {
    r_seed = cfg.seed;
    r_count = cfg.count;
    r_cases = cfg.count;
    r_passes = !passes;
    r_skips = !skips;
    r_findings =
      !findings
      @ (match batch with
        | Some (Error m) ->
            [
              {
                f_index = -1;
                f_oracle = "batch";
                f_status = Oracle.Fail ("batch: " ^ m);
                f_repro = "";
                f_kind = "batch";
                f_minimized = false;
              };
            ]
        | _ -> []);
    r_batch = batch;
  }

let pp_report ppf (r : report) =
  Fmt.pf ppf "fuzz: seed %d, %d cases: %d oracle passes, %d skips, %d findings"
    r.r_seed r.r_cases r.r_passes r.r_skips
    (List.length r.r_findings);
  match r.r_batch with
  | Some (Ok fp) -> Fmt.pf ppf "; batch fingerprint %s" fp
  | Some (Error _) -> Fmt.pf ppf "; batch check FAILED"
  | None -> ()

(* -- coverage-guided mode ------------------------------------------------------ *)

(** Lineage of a guided-mode input: the (seed, index) pair that
    generated the base input plus the mutation path applied on top.
    Every mutation step [m] draws from [Rng.derive ~seed:(key of the
    parent lineage) ~index:m], so the whole chain replays from the
    lineage alone — printed as [SEED:INDEX] or [SEED:INDEX:m1.m2.m3]
    and fed back through [pasc fuzz --replay]. *)
type lineage = { l_seed : int; l_index : int; l_path : int list }

let lineage_key (l : lineage) : int =
  List.fold_left Rng.mix (Rng.mix l.l_seed l.l_index) l.l_path

let replay_line (l : lineage) : string =
  match l.l_path with
  | [] -> Fmt.str "%d:%d" l.l_seed l.l_index
  | path ->
      Fmt.str "%d:%d:%s" l.l_seed l.l_index
        (String.concat "." (List.map string_of_int path))

let parse_replay (s : string) : (lineage, string) result =
  let fail () = Error (Fmt.str "malformed replay line %S (want SEED:INDEX[:m1.m2...])" s) in
  match String.split_on_char ':' (String.trim s) with
  | [ seed; index ] | [ seed; index; "" ] -> (
      match (int_of_string_opt seed, int_of_string_opt index) with
      | Some l_seed, Some l_index -> Ok { l_seed; l_index; l_path = [] }
      | _ -> fail ())
  | [ seed; index; path ] -> (
      match (int_of_string_opt seed, int_of_string_opt index) with
      | Some l_seed, Some l_index -> (
          let steps =
            List.map int_of_string_opt (String.split_on_char '.' path)
          in
          if List.for_all Option.is_some steps then
            Ok { l_seed; l_index; l_path = List.map Option.get steps }
          else fail ())
      | _ -> fail ())
  | _ -> fail ()

(* The guided generator is the (seed, index) discipline with no config
   knobs.  The input class — which generator profile, and Pascal source
   vs a direct IF stream — is encoded in the index itself
   ([index mod n_classes]), so a sequential index sweep rotates through
   every class uniformly (the random baseline) while the guided
   scheduler can allocate fresh samples per class and still replay from
   nothing but the lineage. *)
let n_classes = 2 * Array.length Profile.all

let class_of_index (index : int) : int = index mod n_classes

(** The class of an input that already exists (for attributing a
    mutant's coverage gain to the class whose space it explores). *)
let class_of_input (profile : Profile.t) (input : input) : int =
  let pi = ref 0 in
  Array.iteri (fun i p -> if p = profile then pi := i) Profile.all;
  (2 * !pi) + match input with If_stream _ -> 1 | Pascal_src _ -> 0

let guided_gen ~(seed : int) ~(index : int) : input * Profile.t =
  let rng = Rng.derive ~seed ~index in
  let cls = class_of_index index in
  let profile = Profile.all.(cls / 2) in
  if cls land 1 = 1 then
    (If_stream (Gen_if.program ~branch_heavy:(profile = Profile.Branches) rng), profile)
  else (Pascal_src (Gen_pascal.program rng profile), profile)

let mutate_input (rng : Rng.t) (profile : Profile.t) : input -> input = function
  | Pascal_src p -> Pascal_src (Gen_pascal.mutate rng profile p)
  | If_stream toks -> If_stream (Gen_if.mutate_wellformed rng toks)

(** Reconstruct a kept seed's exact input from its lineage. *)
let input_of_lineage (l : lineage) : input * Profile.t =
  let base, profile = guided_gen ~seed:l.l_seed ~index:l.l_index in
  let rec go input prefix = function
    | [] -> input
    | m :: rest ->
        let rng = Rng.derive ~seed:(lineage_key prefix) ~index:m in
        go (mutate_input rng profile input)
          { prefix with l_path = prefix.l_path @ [ m ] }
          rest
  in
  (go base { l with l_path = [] } l.l_path, profile)

(** One input's coverage observation: compile it once with the
    [on_reduce] hook recording every user-production fire (in order, so
    bigrams are meaningful) and fold in the outcome bits. *)
let observe (tables : Cogg.Tables.t) (input : input) : Covmap.obs =
  let n = tables.Cogg.Tables.n_user_prods in
  let fired = ref [] in
  let on_reduce p =
    if Cogg.Tables.is_user_prod tables p then fired := p :: !fired
  in
  let outcome =
    match input with
    | Pascal_src p -> (
        match Pipeline.compile ~on_reduce tables (Gen_pascal.render p) with
        | Ok c -> Some c.Pipeline.gen
        | Error _ -> None)
    | If_stream toks -> (
        match Cogg.Codegen.generate ~on_reduce tables toks with
        | Ok r -> Some r
        | Error _ -> None)
  in
  let ok = outcome <> None in
  let long =
    match outcome with
    | Some r -> r.Cogg.Codegen.resolved.Cogg.Loader_gen.n_long > 0
    | None -> false
  in
  Covmap.features ~n_prods:n ~fired:(List.rev !fired) ~ok ~long

type guided_config = {
  g_seed : int;
  g_budget : int;  (** total cases (fresh inputs + mutants) *)
  g_shards : int;  (** logical shards, independent of the worker count *)
  g_batch : int;  (** batch items per shard per round *)
  g_jobs : int;  (** domains evaluating a round's batch in parallel *)
  g_oracles : bool;  (** also run the differential oracles per case *)
  g_cross : Cogg.Tables.t option;
  g_stop : (unit -> bool) option;
      (** long-run mode: checked between rounds; overrides the budget *)
  g_log : string -> unit;
}

let default_guided =
  {
    g_seed = 1;
    g_budget = 512;
    g_shards = 8;
    g_batch = 8;
    g_jobs = 1;
    g_oracles = false;
    g_cross = None;
    g_stop = None;
    g_log = ignore;
  }

type kept = {
  k_input : input;
  k_lineage : lineage;
  k_profile : Profile.t;
  k_gain : int;  (** features newly covered when this seed was kept *)
  mutable k_children : int;  (** next mutation counter *)
  mutable k_yield : int;  (** children of this seed that were themselves kept *)
}

type guided_finding = {
  gf_lineage : lineage;
  gf_oracle : string;
  gf_status : Oracle.status;
  gf_repro : string;
  gf_kind : string;
}

type guided_report = {
  g_cases : int;
  g_kept : kept list;  (** in discovery order *)
  g_covmap : Covmap.t;
  g_findings : guided_finding list;
}

(** The seed-pool scheduler.  Each round builds one batch {e
    sequentially} — per-shard RNG streams decide fresh-vs-mutate and
    pick mutation parents, and every fresh input takes the next index
    of its chosen class — then evaluates the batch's items in parallel
    across the pool (observation and oracles are pure), then merges the
    observations into the coverage map {e sequentially in item order}
    at the round barrier (quiescence).  Construction and merge never
    race, so the kept pool and the coverage map are identical at any
    worker count.

    Scheduling is a deterministic bandit over measured marginal yield:
    the fresh-vs-mutate split and the per-class allocation of fresh
    samples are both weighted by cumulative (new features / cases) for
    that arm, read at round barriers — budget drains away from
    saturated input classes toward whatever is still paying. *)
let run_guided (tables : Cogg.Tables.t) (cfg : guided_config) : guided_report =
  let cov = Covmap.create ~n_prods:tables.Cogg.Tables.n_user_prods in
  let kept_rev = ref [] and n_kept = ref 0 in
  let findings = ref [] in
  let cases = ref 0 in
  let next_fresh = Array.make n_classes 0 in
  (* bandit statistics: per input class, and per arm (0 fresh, 1 mutate) *)
  let cls_cases = Array.make n_classes 0 in
  let cls_gain = Array.make n_classes 0 in
  let arm_cases = Array.make 2 0 in
  let arm_gain = Array.make 2 0 in
  let score c g = if c < 4 then 64 else 1 + (16 * g / c) in
  let rounds = ref 0 in
  let shard_rngs =
    Array.init (max 1 cfg.g_shards) (fun s ->
        Rng.derive ~seed:cfg.g_seed ~index:(0x5EED0 + s))
  in
  let oracle_cfg = { default_config with cross = cfg.g_cross } in
  let eval (input, lineage, _profile) =
    let obs = observe tables input in
    let fnds =
      if not cfg.g_oracles then []
      else
        List.filter_map
          (fun (name, check) ->
            match check input with
            | Oracle.Pass | Oracle.Skip _ -> None
            | st ->
                Some
                  {
                    gf_lineage = lineage;
                    gf_oracle = name;
                    gf_status = st;
                    gf_repro = render_input input;
                    gf_kind =
                      (match input with
                      | Pascal_src _ -> "pascal"
                      | If_stream _ -> "if");
                  })
          (oracles_for tables oracle_cfg input)
    in
    (obs, fnds)
  in
  let continue_ () =
    !cases < cfg.g_budget
    && match cfg.g_stop with Some stop -> not (stop ()) | None -> true
  in
  let round pool_opt =
    incr rounds;
    let pool = Array.of_list (List.rev !kept_rev) in
    let batch_size =
      min (cfg.g_budget - !cases) (max 1 cfg.g_shards * max 1 cfg.g_batch)
    in
    (* AFL-style energy: a seed's weight grows with the number of its
       children that were themselves kept (its measured productive
       yield), with the capped initial gain as the cold-start prior *)
    let energy k = min 16 k.k_gain + (8 * k.k_yield) in
    let parents = Array.make batch_size None in
    let arms = Array.make batch_size 0 in
    let items =
      Array.init batch_size (fun j ->
          let rs = shard_rngs.(j mod Array.length shard_rngs) in
          let fresh =
            Array.length pool = 0
            || Rng.weighted rs
                 [
                   (score arm_cases.(0) arm_gain.(0), true);
                   (score arm_cases.(1) arm_gain.(1), false);
                 ]
          in
          if fresh then begin
            let cls =
              Rng.weighted rs
                (List.init n_classes (fun c ->
                     (score cls_cases.(c) cls_gain.(c), c)))
            in
            let k = next_fresh.(cls) in
            next_fresh.(cls) <- k + 1;
            let index = (k * n_classes) + cls in
            let input, profile = guided_gen ~seed:cfg.g_seed ~index in
            (input, { l_seed = cfg.g_seed; l_index = index; l_path = [] }, profile)
          end
          else begin
            arms.(j) <- 1;
            let parent =
              Rng.weighted rs
                (Array.to_list (Array.map (fun k -> (energy k, k)) pool))
            in
            parents.(j) <- Some parent;
            let m = parent.k_children in
            parent.k_children <- m + 1;
            let rng = Rng.derive ~seed:(lineage_key parent.k_lineage) ~index:m in
            ( mutate_input rng parent.k_profile parent.k_input,
              { parent.k_lineage with
                l_path = parent.k_lineage.l_path @ [ m ] },
              parent.k_profile )
          end)
    in
    let results = Cogg.Pool.maybe pool_opt eval items in
    Array.iteri
      (fun i (obs, fnds) ->
        incr cases;
        findings := fnds @ !findings;
        let gain = Covmap.add cov obs in
        let input, lineage, profile = items.(i) in
        let cls = class_of_input profile input in
        cls_cases.(cls) <- cls_cases.(cls) + 1;
        cls_gain.(cls) <- cls_gain.(cls) + gain;
        arm_cases.(arms.(i)) <- arm_cases.(arms.(i)) + 1;
        arm_gain.(arms.(i)) <- arm_gain.(arms.(i)) + gain;
        if gain > 0 then begin
          (match parents.(i) with
          | Some p -> p.k_yield <- p.k_yield + 1
          | None -> ());
          kept_rev :=
            {
              k_input = input;
              k_lineage = lineage;
              k_profile = profile;
              k_gain = gain;
              k_children = 0;
              k_yield = 0;
            }
            :: !kept_rev;
          incr n_kept
        end)
      results;
    cfg.g_log
      (Fmt.str "round %d: %d cases, %d kept, %d prods, %d bigrams" !rounds
         !cases !n_kept
         (Covmap.prods_covered cov)
         (Covmap.bigrams_covered cov))
  in
  let loop pool_opt = while continue_ () do round pool_opt done in
  if cfg.g_jobs > 1 then
    Cogg.Pool.with_pool ~domains:cfg.g_jobs (fun p -> loop (Some p))
  else loop None;
  {
    g_cases = !cases;
    g_kept = List.rev !kept_rev;
    g_covmap = cov;
    g_findings = List.rev !findings;
  }

(** The random baseline at the same case budget: the plain (seed, index)
    generator with no feedback, coverage accumulated the same way. *)
let random_coverage (tables : Cogg.Tables.t) ~(seed : int) ~(count : int) :
    Covmap.t =
  let cov = Covmap.create ~n_prods:tables.Cogg.Tables.n_user_prods in
  for index = 0 to count - 1 do
    let input, _ = guided_gen ~seed ~index in
    ignore (Covmap.add cov (observe tables input))
  done;
  cov

(** Replay a kept seed or finding from its printed lineage: reconstruct
    the exact input and re-run the oracles on it. *)
let replay (tables : Cogg.Tables.t) ?cross (line : string) :
    (input * (string * Oracle.status) list, string) result =
  match parse_replay line with
  | Error m -> Error m
  | Ok l ->
      let input, _profile = input_of_lineage l in
      let cfg = { default_config with cross } in
      Ok
        ( input,
          List.map (fun (name, check) -> (name, check input))
            (oracles_for tables cfg input) )

(* -- corpus distillation -------------------------------------------------------- *)

type corpus_entry = {
  e_name : string;
  e_kind : string;  (** ["pascal"] or ["if"] *)
  e_text : string;
}

(* Deterministic pins for productions the seeded corpus is not
   guaranteed to keep hitting as the generators evolve.  Coverage-only
   programs — deliberately NOT part of Pipeline.Programs, whose batch
   fingerprint is pinned elsewhere. *)
let pinned_entries : corpus_entry list =
  [
    {
      e_name = "pin_real_memops";
      e_kind = "pascal";
      e_text =
        "program pin; var r0, r1, r2 : real; begin r0 := 1.5; r1 := 2.25; r2 \
         := (r0 + 1.0) - r1; r2 := (r2 * 2.0) + r1; r2 := (r2 / 2.0) * r1; \
         r2 := (r0 - 1.0) / r1; write(r2) end.";
    };
  ]

(** The user productions a corpus entry fires (sorted, deduplicated);
    partial fires before a rejection still count. *)
let prods_of_entry (tables : Cogg.Tables.t) (e : corpus_entry) : int list =
  let fired = Hashtbl.create 64 in
  let on_reduce p =
    if Cogg.Tables.is_user_prod tables p then Hashtbl.replace fired p ()
  in
  (match e.e_kind with
  | "pascal" -> ignore (Pipeline.compile ~on_reduce tables e.e_text)
  | _ -> (
      match Ifl.Reader.program_of_string e.e_text with
      | Error _ -> ()
      | Ok toks -> ignore (Cogg.Codegen.generate ~on_reduce tables toks)));
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) fired [])

(** The fixed-seed generated slice of the distillation candidate set
    (same shape as the historical coverage corpus: Pascal across every
    profile, raw IF streams including branch-heavy ones). *)
let generated_entries ~(seed : int) ~(pascal_count : int) ~(if_count : int) :
    corpus_entry list =
  List.init pascal_count (fun i ->
      let rng = Rng.derive ~seed ~index:i in
      {
        e_name = Fmt.str "fuzz-s%d-i%d" seed i;
        e_kind = "pascal";
        e_text = Gen_pascal.source rng (Profile.rotate i);
      })
  @ List.init if_count (fun i ->
        let rng = Rng.derive ~seed ~index:(1000 + i) in
        {
          e_name = Fmt.str "fuzz-s%d-i%d" seed (1000 + i);
          e_kind = "if";
          e_text = Gen_if.to_text (Gen_if.program ~branch_heavy:(i mod 3 = 0) rng);
        })

(** Kept guided seeds as distillation candidates, named by their replay
    lines (dots for path separators keep the names filesystem-safe). *)
let kept_entries (r : guided_report) : corpus_entry list =
  List.map
    (fun k ->
      {
        e_name =
          "guided-"
          ^ String.map
              (fun c -> if c = ':' then '-' else c)
              (replay_line k.k_lineage);
        e_kind =
          (match k.k_input with Pascal_src _ -> "pascal" | If_stream _ -> "if");
        e_text = render_input k.k_input;
      })
    r.g_kept

(** Greedy-minimal corpus over production coverage: returns the selected
    entries in pick order plus the size of the coverable universe. *)
let distill_corpus (tables : Cogg.Tables.t) (cands : corpus_entry list) :
    corpus_entry list * int =
  let arr = Array.of_list cands in
  let sets = Array.map (prods_of_entry tables) arr in
  let universe = Hashtbl.create 256 in
  Array.iter (List.iter (fun p -> Hashtbl.replace universe p ())) sets;
  let picked = Covmap.distill sets in
  (List.map (fun i -> arr.(i)) picked, Hashtbl.length universe)

(** Write each finding's reproducer under [dir]; returns the paths. *)
let write_corpus (dir : string) (r : report) : string list =
  match
    List.filter (fun f -> f.f_repro <> "") r.r_findings
  with
  | [] -> []
  | fs ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.map
        (fun f ->
          let ext = if f.f_kind = "pascal" then "pas" else "ifl" in
          let path =
            Filename.concat dir
              (Fmt.str "seed%d-case%d-%s.%s" r.r_seed f.f_index f.f_oracle ext)
          in
          let oc = open_out path in
          let header =
            Fmt.str
              "fuzz reproducer: seed=%d index=%d oracle=%s (%a) — replay: pasc fuzz --seed %d --start %d --count 1"
              r.r_seed f.f_index f.f_oracle Oracle.pp_status f.f_status
              r.r_seed f.f_index
          in
          output_string oc
            (if f.f_kind = "pascal" then "{ " ^ header ^ " }\n"
             else "* " ^ header ^ "\n");
          output_string oc f.f_repro;
          output_string oc "\n";
          close_out oc;
          path)
        fs
