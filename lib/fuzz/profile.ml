(** Generation profiles: which part of the pipeline a case leans on.

    - [Ints]: integer arithmetic with deep expressions (register
      pressure, LRU spills).
    - [Bools]: boolean connectives, sets and comparisons (condition-code
      templates, bit operations).
    - [Arrays]: subscripted loads/stores and halfword subranges
      (addressing templates, range shapes).
    - [Branches]: statement-heavy control flow (span-dependent branch
      sizing, literal pool, page boundary).
    - [Mixed]: everything at once, including reals, chars and procedure
      calls. *)

type t = Ints | Bools | Arrays | Branches | Mixed

let all = [| Ints; Bools; Arrays; Branches; Mixed |]

let to_string = function
  | Ints -> "ints"
  | Bools -> "bools"
  | Arrays -> "arrays"
  | Branches -> "branches"
  | Mixed -> "mixed"

let of_string = function
  | "ints" | "int" -> Ok Ints
  | "bools" | "bool" -> Ok Bools
  | "arrays" | "array" -> Ok Arrays
  | "branches" | "branch" -> Ok Branches
  | "mixed" -> Ok Mixed
  | s ->
      Error
        (Fmt.str "unknown profile %S (expected ints|bools|arrays|branches|mixed)"
           s)

let pp ppf t = Fmt.string ppf (to_string t)

(** The profile for case [index] when none was pinned: rotate through
    all of them so every smoke run covers every profile. *)
let rotate (index : int) : t = all.(index mod Array.length all)
