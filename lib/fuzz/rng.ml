(** Deterministic pseudo-random numbers for the fuzzer (splitmix64).

    The fuzzer's contract is replayability: a (seed, case index) pair
    names one input forever, independent of OCaml's [Random] state, the
    platform, or how many cases ran before it.  splitmix64 gives us that
    with a 64-bit mutable state and no global tables. *)

type t = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

let next (t : t) : int64 =
  t.s <- Int64.add t.s golden;
  let z = t.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create (seed : int) : t = { s = Int64.of_int seed }

(** An independent stream for case [index] of master [seed]: mixing the
    index through the generator itself decorrelates neighbouring cases. *)
let derive ~(seed : int) ~(index : int) : t =
  let r = create seed in
  let z = next r in
  { s = Int64.logxor z (Int64.mul (Int64.of_int (index + 1)) golden) }

(** Fold [v] into [key], splitmix-style: the lineage key of a mutated
    seed is the parent's key with the mutation counter mixed in, so
    every (seed, index, mutation-path) names one RNG stream forever. *)
let mix (key : int) (v : int) : int =
  let r = { s = Int64.logxor (Int64.of_int key) (Int64.mul (Int64.of_int (v + 1)) golden) } in
  Int64.to_int (next r)

(** [int t bound] is uniform-ish in [0, bound); 0 when [bound <= 0]. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then 0
  else
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let range (t : t) (lo : int) (hi : int) : int = lo + int t (hi - lo + 1)
let bool (t : t) : bool = Int64.logand (next t) 1L = 1L

(** [chance t p q] is true with probability [p/q]. *)
let chance (t : t) (p : int) (q : int) : bool = int t q < p

let choose (t : t) (arr : 'a array) : 'a = arr.(int t (Array.length arr))

let choose_list (t : t) (xs : 'a list) : 'a =
  List.nth xs (int t (List.length xs))

(** Pick by integer weight from [(weight, value)] pairs. *)
let weighted (t : t) (xs : (int * 'a) list) : 'a =
  let total = List.fold_left (fun a (w, _) -> a + max 0 w) 0 xs in
  let n = int t total in
  let rec go acc = function
    | [] -> snd (List.hd xs)
    | (w, v) :: rest -> if n < acc + max 0 w then v else go (acc + max 0 w) rest
  in
  go 0 xs
