(** Grammar-directed generation of linearized IF token streams, plus the
    mutator that turns them into malformed inputs.

    Streams are built directly against the shapes of the
    [specs/amdahl470.cgg] productions (prefix-linearized trees), so a
    generated stream always parses on the flat driver.  Every referenced
    label is defined exactly once, downstream of all its references, so
    the loader's span-dependent sizing always converges.  The
    branch-heavy size class pads enough statements between a branch and
    its label to push the displacement past the 4096-byte page and force
    long-form branches plus literal-pool traffic. *)

module T = Ifl.Token

(* The base register the shaper uses for globals; displacements are
   word-aligned and stay well under the 4095 encoding limit so that the
   {e well-formed} generator never trips an encode range check. *)
let mem_base = 13

let dsp (r : Rng.t) : int = 80 + (4 * Rng.int r 980)

(* -- integer expressions ----------------------------------------------------- *)

let rec expr (r : Rng.t) (fuel : int) : T.t list =
  let leaf () =
    match Rng.weighted r [ (3, `Full); (1, `Half); (2, `Pos); (1, `Neg) ] with
    | `Full -> [ T.op "fullword"; T.int "dsp" (dsp r); T.reg "r" mem_base ]
    | `Half -> [ T.op "hlfword"; T.int "dsp" (dsp r); T.reg "r" mem_base ]
    | `Pos -> [ T.op "pos_constant"; T.int "v" (Rng.int r 4096) ]
    | `Neg -> [ T.op "neg_constant"; T.int "v" (Rng.int r 4096) ]
  in
  if fuel <= 0 then leaf ()
  else
    match
      Rng.weighted r
        [ (2, `Leaf); (4, `Binary); (2, `Unary); (1, `Shift) ]
    with
    | `Leaf -> leaf ()
    | `Binary ->
        let op =
          Rng.choose r
            [| "iadd"; "isub"; "imult"; "idiv"; "imod"; "imax"; "imin" |]
        in
        (T.op op :: expr r (fuel - 1)) @ expr r (fuel - 1)
    | `Unary ->
        let op = Rng.choose r [| "iabs"; "ineg"; "incr"; "decr" |] in
        T.op op :: expr r (fuel - 1)
    | `Shift ->
        let op = if Rng.bool r then "l_shift" else "r_shift" in
        (T.op op :: expr r (fuel - 1)) @ [ T.int "v" (Rng.int r 31) ]

(* -- statements -------------------------------------------------------------- *)

type st = {
  rng : Rng.t;
  defer : bool;
      (** branch-heavy mode: hold every label definition back to the end
          of the stream, so branch spans cover the whole body *)
  mutable next_label : int;
  mutable pending : int list;  (** labels referenced but not yet defined *)
  mutable stmt_no : int;
}

let fresh_label (st : st) : int =
  let l = st.next_label in
  st.next_label <- l + 1;
  st.pending <- l :: st.pending;
  l

let define_label (st : st) (l : int) : T.t list =
  st.pending <- List.filter (fun x -> x <> l) st.pending;
  [ T.op "label_def"; T.label "lbl" l ]

(* IBM 370 BC masks for <, <=, =, <>, >, >= *)
let cond_masks = [| 4; 12; 8; 7; 2; 10 |]

let statement_marker (st : st) : T.t list =
  st.stmt_no <- st.stmt_no + 1;
  [ T.op "statement"; T.int "stmt" st.stmt_no ]

let stmt (st : st) : T.t list =
  let r = st.rng in
  let e n = expr r (Rng.int r (n + 1)) in
  let cands =
    [ (6, `Assign); (1, `AssignHalf); (1, `Clear); (2, `CondBranch) ]
    @ (if st.pending <> [] && not st.defer then [ (2, `Define) ] else [])
    @ [ (1, `Goto) ]
  in
  statement_marker st
  @
  match Rng.weighted r cands with
  | `Assign ->
      [ T.op "assign"; T.op "fullword"; T.int "dsp" (dsp r); T.reg "r" mem_base ]
      @ e 3
  | `AssignHalf ->
      [ T.op "assign"; T.op "hlfword"; T.int "dsp" (dsp r); T.reg "r" mem_base ]
      @ e 2
  | `Clear ->
      [ T.op "clear"; T.op "fullword"; T.int "dsp" (dsp r); T.reg "r" mem_base ]
  | `CondBranch ->
      (* forward conditional branch on an integer compare *)
      let l = fresh_label st in
      [ T.op "branch_op"; T.label "lbl" l; T.cond "cond" (Rng.choose r cond_masks) ]
      @ (T.op "icompare" :: e 2)
      @ e 2
  | `Goto ->
      let l = fresh_label st in
      [ T.op "branch_op"; T.label "lbl" l ]
  | `Define -> define_label st (Rng.choose_list r st.pending)

(** Generate one well-formed linearized program.  [branch_heavy] streams
    are long enough that forward branches routinely span more than 4096
    bytes of emitted code, exercising long-form branch widening and the
    literal pool. *)
let program ?(branch_heavy = false) ?size (rng : Rng.t) : T.t list =
  let size =
    match size with
    | Some s -> s
    | None -> if branch_heavy then Rng.range rng 150 400 else Rng.range rng 3 20
  in
  let st =
    { rng; defer = branch_heavy; next_label = 1; pending = []; stmt_no = 0 }
  in
  let body = List.concat (List.init size (fun _ -> stmt st)) in
  (* define whatever is still pending, so every reference resolves *)
  let tail = List.concat_map (define_label st) st.pending in
  (T.op "procedure_entry" :: body) @ tail @ [ T.op "procedure_exit" ]

(* -- textual round-trip ------------------------------------------------------ *)

let to_text (toks : T.t list) : string =
  String.concat " " (List.map T.to_string toks)

(* -- well-formedness-preserving mutation -------------------------------------- *)

(* Split a well-formed stream into its [statement]-marker-delimited
   chunks: the head (procedure_entry), one token run per statement, and
   whatever trails the last marker (pending label definitions and
   procedure_exit travel glued to the final chunk). *)
let split_chunks (toks : T.t list) : T.t list * T.t list list =
  let is_marker t = t.T.sym = "statement" in
  let rec go_head head = function
    | t :: rest when not (is_marker t) -> go_head (t :: head) rest
    | rest -> (List.rev head, rest)
  in
  let head, rest = go_head [] toks in
  let rec go_chunks chunks current = function
    | [] -> List.rev (List.rev current :: chunks)
    | t :: rest when is_marker t && current <> [] ->
        go_chunks (List.rev current :: chunks) [ t ] rest
    | t :: rest -> go_chunks chunks (t :: current) rest
  in
  let chunks = match rest with [] -> [] | _ -> go_chunks [] [] rest in
  (head, chunks)

let chunk_has_label (chunk : T.t list) : bool =
  List.exists
    (fun t -> match t.T.value with Ifl.Value.Label _ -> true | _ -> false)
    chunk

(** One guided-fuzzing mutation that keeps the stream in the machine
    grammar's language: duplicate or delete a label-free statement
    chunk, or insert a freshly generated assignment statement.  The
    final chunk (which carries the pending label definitions and
    [procedure_exit]) and every chunk that references or defines a
    label are left in place, so every label stays defined exactly once,
    downstream of all its references. *)
let mutate_one (r : Rng.t) (toks : T.t list) : T.t list =
  let head, chunks = split_chunks toks in
  let n = List.length chunks in
  let eligible =
    List.filteri (fun i c -> i < n - 1 && not (chunk_has_label c)) chunks
    |> List.length
  in
  let fresh_chunk () =
    [
      T.op "statement";
      T.int "stmt" (900 + Rng.int r 100);
      T.op "assign";
      T.op "fullword";
      T.int "dsp" (dsp r);
      T.reg "r" mem_base;
    ]
    @ expr r (Rng.int r 4)
  in
  let rebuild chunks' = head @ List.concat chunks' in
  let pick_eligible k =
    (* index (among all chunks) of the k-th eligible one *)
    let rec go i k = function
      | [] -> -1
      | c :: rest ->
          if i < n - 1 && not (chunk_has_label c) then
            if k = 0 then i else go (i + 1) (k - 1) rest
          else go (i + 1) k rest
    in
    go 0 k chunks
  in
  let cands =
    [ (5, `Insert) ]
    @ (if eligible >= 1 then [ (2, `Dup) ] else [])
    @ if eligible >= 2 then [ (1, `Delete) ] else []
  in
  match Rng.weighted r cands with
  | `Insert ->
      let i = Rng.int r (max 1 n) in
      rebuild
        (List.concat
           [
             List.filteri (fun j _ -> j < i) chunks;
             [ fresh_chunk () ];
             List.filteri (fun j _ -> j >= i) chunks;
           ])
  | `Dup ->
      let i = pick_eligible (Rng.int r eligible) in
      rebuild
        (List.concat_map
           (fun (j, c) -> if j = i then [ c; c ] else [ c ])
           (List.mapi (fun j c -> (j, c)) chunks))
  | `Delete ->
      let i = pick_eligible (Rng.int r eligible) in
      rebuild
        (List.filteri (fun j _ -> j <> i) chunks)

(** A stacked step of 2..4 single mutations, so a mutant's novelty
    budget is comparable to a fresh stream's on top of the retained
    parent structure. *)
let mutate_wellformed (r : Rng.t) (toks : T.t list) : T.t list =
  let rec go k toks = if k = 0 then toks else go (k - 1) (mutate_one r toks) in
  go (Rng.range r 2 4) toks

(* -- mutation ---------------------------------------------------------------- *)

(* symbol pool for replacement/insertion: real grammar symbols plus one
   that no production mentions *)
let sym_pool =
  [|
    "assign"; "fullword"; "hlfword"; "byteword"; "clear"; "iadd"; "isub";
    "imult"; "idiv"; "imod"; "iabs"; "ineg"; "incr"; "decr"; "imax"; "imin";
    "l_shift"; "r_shift"; "icompare"; "branch_op"; "label_def"; "statement";
    "procedure_entry"; "procedure_exit"; "pos_constant"; "neg_constant";
    "dsp"; "v"; "r"; "lbl"; "cond"; "stmt"; "frobnicate";
  |]

let random_token (r : Rng.t) : T.t =
  let sym = Rng.choose r sym_pool in
  match Rng.int r 6 with
  | 0 -> T.op sym
  | 1 -> T.int sym (Rng.range r (-2) 5000)
  | 2 -> T.reg sym (Rng.range r 0 17)
  | 3 -> T.label sym (Rng.range r 0 99)
  | 4 -> T.cse sym (Rng.range r 0 9)
  | _ -> T.cond sym (Rng.range r 0 16)

let corrupt_payload (r : Rng.t) (t : T.t) : T.t =
  let bad_int = Rng.choose r [| 4096; -1; 123456; 1 lsl 30; 0 |] in
  match t.T.value with
  | Ifl.Value.Unit -> T.int t.T.sym bad_int
  | Ifl.Value.Int _ -> T.int t.T.sym bad_int
  | Ifl.Value.Reg _ -> T.reg t.T.sym (Rng.choose r [| 16; 99; -1; 255 |])
  | Ifl.Value.Label n ->
      if Rng.bool r then T.label t.T.sym (n + 50) else T.int t.T.sym n
  | Ifl.Value.Cse _ -> T.cse t.T.sym (Rng.range r 50 500)
  | Ifl.Value.Cond _ -> T.cond t.T.sym (Rng.choose r [| 16; -1; 255 |])

(** Apply 1–3 random structural mutations to a (typically well-formed)
    stream.  The result is usually malformed; the pipeline must answer
    with a structured [Error], never an escaping exception. *)
let mutate (r : Rng.t) (toks : T.t list) : T.t list =
  let arr = ref (Array.of_list toks) in
  let ops = Rng.range r 1 3 in
  for _ = 1 to ops do
    let a = !arr in
    let n = Array.length a in
    if n = 0 then arr := [| random_token r |]
    else
      match Rng.int r 7 with
      | 0 ->
          (* drop *)
          let i = Rng.int r n in
          arr := Array.append (Array.sub a 0 i) (Array.sub a (i + 1) (n - i - 1))
      | 1 ->
          (* duplicate *)
          let i = Rng.int r n in
          arr :=
            Array.concat [ Array.sub a 0 i; [| a.(i) |]; Array.sub a i (n - i) ]
      | 2 ->
          (* swap *)
          let i = Rng.int r n and j = Rng.int r n in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
      | 3 ->
          (* replace symbol, keep payload *)
          let i = Rng.int r n in
          a.(i) <- { a.(i) with T.sym = Rng.choose r sym_pool }
      | 4 ->
          (* corrupt payload *)
          let i = Rng.int r n in
          a.(i) <- corrupt_payload r a.(i)
      | 5 ->
          (* insert *)
          let i = Rng.int r (n + 1) in
          arr :=
            Array.concat
              [ Array.sub a 0 i; [| random_token r |]; Array.sub a i (n - i) ]
      | _ ->
          (* truncate *)
          let i = Rng.int r n in
          arr := Array.sub a 0 i
  done;
  Array.to_list !arr
