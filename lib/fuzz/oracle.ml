(** The three differential oracles, plus the totality check used by the
    malformed-input sweep.

    Every oracle returns a {!status}; [Crash] — an exception escaping
    the pipeline — is always a bug, whatever the input was. *)

type status =
  | Pass
  | Skip of string  (** the reference itself rejects the input *)
  | Fail of string  (** oracle mismatch: the bug signal *)
  | Crash of string  (** escaped exception: always a bug *)

let pp_status ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Skip m -> Fmt.pf ppf "skip (%s)" m
  | Fail m -> Fmt.pf ppf "FAIL: %s" m
  | Crash m -> Fmt.pf ppf "CRASH: %s" m

let is_finding = function Fail _ | Crash _ -> true | Pass | Skip _ -> false

(** Shrinker key: a candidate input "fails the same way" iff its
    [failure_key] matches the original's.  The key folds in the failure
    category (the prefix before the first [':'] of the detail) so the
    shrinker cannot drift from, say, an output mismatch onto a program
    that merely fails to compile. *)
let failure_key (oracle : string) (st : status) : string option =
  match st with
  | Pass | Skip _ -> None
  | Crash _ -> Some (oracle ^ "/crash")
  | Fail d ->
      let kind =
        match String.index_opt d ':' with
        | Some i -> String.sub d 0 i
        | None -> "fail"
      in
      Some (oracle ^ "/" ^ kind)

let protect (f : unit -> status) : status =
  try f () with e -> Crash (Printexc.to_string e)

(* -- oracle 1: interpreter vs compiled execution ----------------------------- *)

(** Run [source] through the reference interpreter and through
    compile→load→simulate, and compare all observable state.  The
    generator only emits programs the interpreter accepts and finishes,
    so an interpreter rejection is a [Skip] (input-side issue) while any
    pipeline rejection or state divergence is a [Fail]. *)
let is_capacity_limit (m : string) : bool =
  (* Regalloc.Pressure: every live register holds a needed value and
     nothing can be spilled — the generated generator's (structured,
     documented) "expression too complicated" answer, not a bug *)
  let has sub =
    let n = String.length sub and len = String.length m in
    let rec go i = i + n <= len && (String.sub m i n = sub || go (i + 1)) in
    go 0
  in
  has "register available"

let exec (tables : Cogg.Tables.t) (source : string) : status =
  protect @@ fun () ->
  match Pascal.Sema.front_end source with
  | Error m -> Fail ("frontend: " ^ m)
  | Ok checked -> (
      match Pascal.Interp.run checked with
      | Error e -> Skip (Fmt.str "interp: %a" Pascal.Interp.pp_error e)
      | Ok _ -> (
          match Pipeline.verify tables source with
          | Error m when is_capacity_limit m -> Skip ("capacity: " ^ m)
          | Error m -> Fail ("pipeline: " ^ m)
          | Ok v ->
              if v.Pipeline.agreed then Pass
              else
                Fail
                  ("mismatch: " ^ String.concat "; " v.Pipeline.mismatches)))

(* -- oracle 2: comb vs flat dispatch ----------------------------------------- *)

let generate dispatch tables toks =
  Cogg.Codegen.generate ~dispatch tables toks

(** The comb-packed and flat parse tables must be observationally
    identical: same listing and object bytes on acceptance, same error
    position (an index into the original token stream) on rejection.
    Comb rows may take default reductions a flat row would not, but that
    is allowed to change neither the emitted code nor where the error is
    reported. *)
let dispatch (tables : Cogg.Tables.t) (toks : Ifl.Token.t list) : status =
  protect @@ fun () ->
  let flat = generate Cogg.Driver.Flat tables toks in
  let comb = generate Cogg.Driver.Comb tables toks in
  match (flat, comb) with
  | Ok f, Ok c ->
      let bytes (r : Cogg.Codegen.result_t) =
        Bytes.to_string r.Cogg.Codegen.resolved.Cogg.Loader_gen.code
      in
      if f.Cogg.Codegen.listing <> c.Cogg.Codegen.listing then
        Fail "divergence: listings differ between flat and comb dispatch"
      else if bytes f <> bytes c then
        Fail "divergence: object bytes differ between flat and comb dispatch"
      else Pass
  | ( Error (Cogg.Codegen.Parse_error a),
      Error (Cogg.Codegen.Parse_error b) ) ->
      if a.Cogg.Driver.position = b.Cogg.Driver.position then Pass
      else
        Fail
          (Fmt.str "divergence: error position flat=%d comb=%d"
             a.Cogg.Driver.position b.Cogg.Driver.position)
  | Error _, Error _ ->
      (* both reject, but through different phases (e.g. comb's default
         reductions reached the emitter first): positions are not
         comparable, rejection agreement is what matters *)
      Pass
  | Ok _, Error e ->
      Fail
        (Fmt.str "divergence: comb rejected what flat accepted: %a"
           Cogg.Codegen.pp_error e)
  | Error e, Ok _ ->
      Fail
        (Fmt.str "divergence: flat rejected what comb accepted: %a"
           Cogg.Codegen.pp_error e)

(* -- oracle 3: determinism ---------------------------------------------------- *)

let compiled_signature (c : Pipeline.compiled) : string =
  c.Pipeline.gen.Cogg.Codegen.listing ^ "\000" ^ Pipeline.Batch.code_bytes c

(** Two back-to-back compiles of the same source must be byte-identical
    (listing and resolved object bytes), errors included.  Batch-level
    determinism (fingerprint at [-j 1] vs [-j N], cache cold vs warm) is
    checked once per run by {!Runner}. *)
let determinism (tables : Cogg.Tables.t) (source : string) : status =
  protect @@ fun () ->
  let once () = Pipeline.compile tables source in
  match (once (), once ()) with
  | Ok a, Ok b ->
      if compiled_signature a = compiled_signature b then Pass
      else Fail "determinism: recompiling produced different bytes"
  | Error a, Error b ->
      if a = b then Pass
      else Fail "determinism: recompiling produced a different error"
  | Ok _, Error _ | Error _, Ok _ ->
      Fail "determinism: recompiling changed the outcome"

let determinism_tokens (tables : Cogg.Tables.t) (toks : Ifl.Token.t list) :
    status =
  protect @@ fun () ->
  let sig_of (r : Cogg.Codegen.result_t) =
    r.Cogg.Codegen.listing ^ "\000"
    ^ Bytes.to_string r.Cogg.Codegen.resolved.Cogg.Loader_gen.code
  in
  let once () = Cogg.Codegen.generate tables toks in
  match (once (), once ()) with
  | Ok a, Ok b ->
      if sig_of a = sig_of b then Pass
      else Fail "determinism: regenerating produced different bytes"
  | Error a, Error b ->
      if a = b then Pass
      else Fail "determinism: regenerating produced a different error"
  | Ok _, Error _ | Error _, Ok _ ->
      Fail "determinism: regenerating changed the outcome"

(* -- totality on malformed input ---------------------------------------------- *)

(** Feed an (arbitrarily mutated) token stream down the whole pipeline —
    both dispatch paths, and boot + bounded run when it compiles — and
    demand a structured answer.  Any outcome is acceptable except an
    escaping exception. *)
let total (tables : Cogg.Tables.t) (toks : Ifl.Token.t list) : status =
  protect @@ fun () ->
  let probe d =
    match Cogg.Codegen.generate ~dispatch:d tables toks with
    | Error _ -> ()
    | Ok r -> (
        match Machine.Runtime.boot r.Cogg.Codegen.objmod with
        | Error _ -> ()
        | Ok (sim, entry) -> (
            match Machine.Runtime.run ~max_steps:200_000 sim ~entry with
            | Ok _ | Error _ -> ()))
  in
  probe Cogg.Driver.Flat;
  probe Cogg.Driver.Comb;
  Pass

(** Same totality contract for the textual reader path. *)
let total_text (tables : Cogg.Tables.t) (text : string) : status =
  protect @@ fun () ->
  match Ifl.Reader.program_of_string text with
  | Error _ -> Pass
  | Ok toks -> total tables toks
