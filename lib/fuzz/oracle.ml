(** The three differential oracles, plus the totality check used by the
    malformed-input sweep.

    Every oracle returns a {!status}; [Crash] — an exception escaping
    the pipeline — is always a bug, whatever the input was. *)

type status =
  | Pass
  | Skip of string  (** the reference itself rejects the input *)
  | Fail of string  (** oracle mismatch: the bug signal *)
  | Crash of string  (** escaped exception: always a bug *)

let pp_status ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Skip m -> Fmt.pf ppf "skip (%s)" m
  | Fail m -> Fmt.pf ppf "FAIL: %s" m
  | Crash m -> Fmt.pf ppf "CRASH: %s" m

let is_finding = function Fail _ | Crash _ -> true | Pass | Skip _ -> false

(** Shrinker key: a candidate input "fails the same way" iff its
    [failure_key] matches the original's.  The key folds in the failure
    category (the prefix before the first [':'] of the detail) so the
    shrinker cannot drift from, say, an output mismatch onto a program
    that merely fails to compile. *)
let failure_key (oracle : string) (st : status) : string option =
  match st with
  | Pass | Skip _ -> None
  | Crash _ -> Some (oracle ^ "/crash")
  | Fail d ->
      let kind =
        match String.index_opt d ':' with
        | Some i -> String.sub d 0 i
        | None -> "fail"
      in
      Some (oracle ^ "/" ^ kind)

let protect (f : unit -> status) : status =
  try f () with e -> Crash (Printexc.to_string e)

(* -- oracle 1: interpreter vs compiled execution ----------------------------- *)

(** Run [source] through the reference interpreter and through
    compile→load→simulate, and compare all observable state.  The
    generator only emits programs the interpreter accepts and finishes,
    so an interpreter rejection is a [Skip] (input-side issue) while any
    pipeline rejection or state divergence is a [Fail]. *)
let is_capacity_limit (m : string) : bool =
  (* Regalloc.Pressure: every live register holds a needed value and
     nothing can be spilled — the generated generator's (structured,
     documented) "expression too complicated" answer, not a bug *)
  let has sub =
    let n = String.length sub and len = String.length m in
    let rec go i = i + n <= len && (String.sub m i n = sub || go (i + 1)) in
    go 0
  in
  has "register available"

let exec (tables : Cogg.Tables.t) (source : string) : status =
  protect @@ fun () ->
  match Pascal.Sema.front_end source with
  | Error m -> Fail ("frontend: " ^ m)
  | Ok checked -> (
      match Pascal.Interp.run checked with
      | Error e -> Skip (Fmt.str "interp: %a" Pascal.Interp.pp_error e)
      | Ok _ -> (
          match Pipeline.verify tables source with
          | Error m when is_capacity_limit m -> Skip ("capacity: " ^ m)
          | Error m -> Fail ("pipeline: " ^ m)
          | Ok v ->
              if v.Pipeline.agreed then Pass
              else
                Fail
                  ("mismatch: " ^ String.concat "; " v.Pipeline.mismatches)))

(* -- oracle 2: dispatch equivalence (all pairs) ------------------------------- *)

let generate dispatch tables toks =
  Cogg.Codegen.generate ~dispatch tables toks

(** The dispatch variants a bundle supports: flat and comb always, plus
    hybrid whenever the bundle carries a profile-specialized table (under
    [Driver.Hybrid] a bundle without one falls back to comb, which would
    silently test comb twice — so it is only listed when real). *)
let dispatch_variants (tables : Cogg.Tables.t) :
    (string * Cogg.Driver.dispatch) list =
  [ ("flat", Cogg.Driver.Flat); ("comb", Cogg.Driver.Comb) ]
  @
  match tables.Cogg.Tables.hybrid with
  | Some _ -> [ ("hybrid", Cogg.Driver.Hybrid) ]
  | None -> []

(** Every pair of dispatch variants must be observationally identical:
    same listing and object bytes on acceptance, same error position (an
    index into the original token stream) on rejection.  Comb and hybrid
    rows may take default reductions a flat row would not, but that is
    allowed to change neither the emitted code nor where the error is
    reported. *)
let dispatch (tables : Cogg.Tables.t) (toks : Ifl.Token.t list) : status =
  protect @@ fun () ->
  let results =
    List.map
      (fun (name, d) -> (name, generate d tables toks))
      (dispatch_variants tables)
  in
  let bytes (r : Cogg.Codegen.result_t) =
    Bytes.to_string r.Cogg.Codegen.resolved.Cogg.Loader_gen.code
  in
  let compare_pair (na, a) (nb, b) : status =
    match (a, b) with
    | Ok fa, Ok fb ->
        if fa.Cogg.Codegen.listing <> fb.Cogg.Codegen.listing then
          Fail
            (Fmt.str "divergence: listings differ between %s and %s dispatch"
               na nb)
        else if bytes fa <> bytes fb then
          Fail
            (Fmt.str
               "divergence: object bytes differ between %s and %s dispatch" na
               nb)
        else Pass
    | ( Error (Cogg.Codegen.Parse_error ea),
        Error (Cogg.Codegen.Parse_error eb) ) ->
        if ea.Cogg.Driver.position = eb.Cogg.Driver.position then Pass
        else
          Fail
            (Fmt.str "divergence: error position %s=%d %s=%d" na
               ea.Cogg.Driver.position nb eb.Cogg.Driver.position)
    | Error _, Error _ ->
        (* both reject, but through different phases (e.g. a default
           reduction reached the emitter first): positions are not
           comparable, rejection agreement is what matters *)
        Pass
    | Ok _, Error e ->
        Fail
          (Fmt.str "divergence: %s rejected what %s accepted: %a" nb na
             Cogg.Codegen.pp_error e)
    | Error e, Ok _ ->
        Fail
          (Fmt.str "divergence: %s rejected what %s accepted: %a" na nb
             Cogg.Codegen.pp_error e)
  in
  let rec all_pairs = function
    | [] -> Pass
    | a :: rest -> (
        let rec against = function
          | [] -> Pass
          | b :: tl -> (
              match compare_pair a b with
              | Pass -> against tl
              | st -> st)
        in
        match against rest with Pass -> all_pairs rest | st -> st)
  in
  all_pairs results

(* -- cross-backend differential execution -------------------------------------- *)

(** Compile and run the same Pascal program under two table bundles built
    for different machines and compare everything the program can
    observe: the write-statement outputs and whether (and why) the run
    aborted.  The linearized IF is machine-independent, so any program
    one backend accepts and the other rejects — or that produces
    different output on the two simulators — indicts one of the specs,
    one of the substrates, or the shared emission path. *)
let cross_backend (a : Cogg.Tables.t) (b : Cogg.Tables.t) (source : string) :
    status =
  protect @@ fun () ->
  let name (t : Cogg.Tables.t) = t.Cogg.Tables.target.Machine.Target.name in
  let run_one (tables : Cogg.Tables.t) =
    match Pipeline.compile tables source with
    | Error m -> Error ("compile: " ^ m)
    | Ok c -> (
        match Pipeline.execute c with
        | Error m -> Error ("execute: " ^ m)
        | Ok x -> Ok x)
  in
  match (run_one a, run_one b) with
  | Error ma, _ when is_capacity_limit ma -> Skip ("capacity: " ^ ma)
  | _, Error mb when is_capacity_limit mb -> Skip ("capacity: " ^ mb)
  | Error _, Error _ ->
      (* both backends reject; the exec oracle owns whether rejection was
         correct at all *)
      Pass
  | Ok _, Error m ->
      Fail (Fmt.str "divergence: %s rejected what %s ran: %s" (name b) (name a) m)
  | Error m, Ok _ ->
      Fail (Fmt.str "divergence: %s rejected what %s ran: %s" (name a) (name b) m)
  | Ok xa, Ok xb ->
      let aborted (x : Pipeline.executed) =
        x.Pipeline.outcome.Machine.Runtime.aborted
      in
      if xa.Pipeline.written_ints <> xb.Pipeline.written_ints then
        Fail
          (Fmt.str "divergence: integer writes %s=[%a] %s=[%a]" (name a)
             Fmt.(list ~sep:semi int)
             xa.Pipeline.written_ints (name b)
             Fmt.(list ~sep:semi int)
             xb.Pipeline.written_ints)
      else if xa.Pipeline.written_reals <> xb.Pipeline.written_reals then
        Fail
          (Fmt.str "divergence: real writes %s=[%a] %s=[%a]" (name a)
             Fmt.(list ~sep:semi float)
             xa.Pipeline.written_reals (name b)
             Fmt.(list ~sep:semi float)
             xb.Pipeline.written_reals)
      else if aborted xa <> aborted xb then
        Fail
          (Fmt.str "divergence: abort %s=%a %s=%a" (name a)
             Fmt.(option ~none:(any "ran") string)
             (aborted xa) (name b)
             Fmt.(option ~none:(any "ran") string)
             (aborted xb))
      else Pass

(* -- oracle 3: determinism ---------------------------------------------------- *)

let compiled_signature (c : Pipeline.compiled) : string =
  c.Pipeline.gen.Cogg.Codegen.listing ^ "\000" ^ Pipeline.Batch.code_bytes c

(** Two back-to-back compiles of the same source must be byte-identical
    (listing and resolved object bytes), errors included.  Batch-level
    determinism (fingerprint at [-j 1] vs [-j N], cache cold vs warm) is
    checked once per run by {!Runner}. *)
let determinism (tables : Cogg.Tables.t) (source : string) : status =
  protect @@ fun () ->
  let once () = Pipeline.compile tables source in
  match (once (), once ()) with
  | Ok a, Ok b ->
      if compiled_signature a = compiled_signature b then Pass
      else Fail "determinism: recompiling produced different bytes"
  | Error a, Error b ->
      if a = b then Pass
      else Fail "determinism: recompiling produced a different error"
  | Ok _, Error _ | Error _, Ok _ ->
      Fail "determinism: recompiling changed the outcome"

let determinism_tokens (tables : Cogg.Tables.t) (toks : Ifl.Token.t list) :
    status =
  protect @@ fun () ->
  let sig_of (r : Cogg.Codegen.result_t) =
    r.Cogg.Codegen.listing ^ "\000"
    ^ Bytes.to_string r.Cogg.Codegen.resolved.Cogg.Loader_gen.code
  in
  let once () = Cogg.Codegen.generate tables toks in
  match (once (), once ()) with
  | Ok a, Ok b ->
      if sig_of a = sig_of b then Pass
      else Fail "determinism: regenerating produced different bytes"
  | Error a, Error b ->
      if a = b then Pass
      else Fail "determinism: regenerating produced a different error"
  | Ok _, Error _ | Error _, Ok _ ->
      Fail "determinism: regenerating changed the outcome"

(* -- totality on malformed input ---------------------------------------------- *)

(** Feed an (arbitrarily mutated) token stream down the whole pipeline —
    both dispatch paths, and boot + bounded run when it compiles — and
    demand a structured answer.  Any outcome is acceptable except an
    escaping exception. *)
let total (tables : Cogg.Tables.t) (toks : Ifl.Token.t list) : status =
  protect @@ fun () ->
  let probe d =
    match Cogg.Codegen.generate ~dispatch:d tables toks with
    | Error _ -> ()
    | Ok r -> (
        match Machine.Runtime.boot r.Cogg.Codegen.objmod with
        | Error _ -> ()
        | Ok (sim, entry) -> (
            match Machine.Runtime.run ~max_steps:200_000 sim ~entry with
            | Ok _ | Error _ -> ()))
  in
  probe Cogg.Driver.Flat;
  probe Cogg.Driver.Comb;
  if tables.Cogg.Tables.hybrid <> None then probe Cogg.Driver.Hybrid;
  Pass

(** Same totality contract for the textual reader path. *)
let total_text (tables : Cogg.Tables.t) (text : string) : status =
  protect @@ fun () ->
  match Ifl.Reader.program_of_string text with
  | Error _ -> Pass
  | Ok toks -> total tables toks
