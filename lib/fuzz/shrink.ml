(** Greedy shrinking of failing inputs.

    [minimize] is a generic first-success greedy descent: propose
    candidates in order, re-run the failing test on each, and restart
    from the first candidate that still fails; stop at a fixpoint or
    when the candidate budget runs out.  The caller's [test] must encode
    "fails {e the same way}" (see {!Oracle.failure_key}), otherwise the
    shrinker can wander onto a different, trivially-broken input. *)

let minimize ?(budget = 500) ~(candidates : 'a -> 'a Seq.t)
    ~(test : 'a -> bool) (x : 'a) : 'a =
  let budget = ref budget in
  let rec go x =
    let rec scan s =
      if !budget <= 0 then x
      else
        match s () with
        | Seq.Nil -> x
        | Seq.Cons (c, rest) ->
            decr budget;
            if test c then go c else scan rest
    in
    scan (candidates x)
  in
  go x

(* -- list helpers ------------------------------------------------------------ *)

let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs

(* drop contiguous chunks first (ddmin-style), then single elements *)
let list_candidates (xs : 'a list) : 'a list Seq.t =
  let n = List.length xs in
  let drop_chunk i len =
    List.filteri (fun j _ -> j < i || j >= i + len) xs
  in
  let chunks len =
    if len < 2 || len >= n then Seq.empty
    else
      Seq.init ((n + len - 1) / len) (fun k -> drop_chunk (k * len) len)
  in
  Seq.append (chunks (n / 2))
    (Seq.append (chunks (n / 4)) (Seq.init n (fun i -> remove_nth i xs)))

(* -- Pascal programs --------------------------------------------------------- *)

module A = Pascal.Ast

let rec expr_candidates (e : A.expr) : A.expr Seq.t =
  match e with
  (* type-preserving operand hoists *)
  | A.Ebin ((A.Add | A.Sub | A.Mul | A.Div | A.Mod | A.RDiv | A.And | A.Or), a, b)
    ->
      Seq.cons a (Seq.cons b Seq.empty)
  | A.Ebin (op, a, b) ->
      Seq.append
        (Seq.map (fun a' -> A.Ebin (op, a', b)) (expr_candidates a))
        (Seq.map (fun b' -> A.Ebin (op, a, b')) (expr_candidates b))
  | A.Eun (_, a) -> Seq.cons a Seq.empty
  | A.Ecall (f, [ a ]) ->
      Seq.cons a (Seq.map (fun a' -> A.Ecall (f, [ a' ])) (expr_candidates a))
  | A.Ecall (f, [ a; b ]) ->
      Seq.cons a
        (Seq.cons b
           (Seq.map (fun a' -> A.Ecall (f, [ a'; b ])) (expr_candidates a)))
  | A.Eint n when n <> 0 -> Seq.cons (A.Eint 0) Seq.empty
  | A.Ereal f when f <> 0.0 -> Seq.cons (A.Ereal 0.0) Seq.empty
  | A.Eindex (v, i) ->
      Seq.map (fun i' -> A.Eindex (v, i')) (expr_candidates i)
  | _ -> Seq.empty

let rec stmt_candidates (s : A.stmt) : A.stmt Seq.t =
  match s with
  | A.Sassign (lv, e) ->
      Seq.map (fun e' -> A.Sassign (lv, e')) (expr_candidates e)
  | A.Sif (c, t, e) ->
      List.to_seq
        ((if t <> [] then [ A.Sblock t ] else [])
        @ (if e <> [] then [ A.Sblock e; A.Sif (c, t, []) ] else []))
      |> Seq.append (Seq.map (fun t' -> A.Sif (c, t', e)) (stmts_candidates t))
      |> Seq.append (Seq.map (fun e' -> A.Sif (c, t, e')) (stmts_candidates e))
  | A.Swhile (c, b) ->
      Seq.cons (A.Sblock b)
        (Seq.map (fun b' -> A.Swhile (c, b')) (stmts_candidates b))
  | A.Srepeat (b, c) ->
      Seq.cons (A.Sblock b)
        (Seq.map (fun b' -> A.Srepeat (b', c)) (stmts_candidates b))
  | A.Sfor ({ body; _ } as f) ->
      Seq.cons (A.Sblock body)
        (Seq.map (fun b' -> A.Sfor { f with body = b' })
           (stmts_candidates body))
  | A.Scase (sel, arms, ow) ->
      let fewer =
        Seq.init (List.length arms) (fun i ->
            A.Scase (sel, remove_nth i arms, ow))
      in
      let bodies = List.to_seq (List.map (fun (_, b) -> A.Sblock b) arms) in
      let no_ow =
        if ow = None then Seq.empty
        else Seq.cons (A.Scase (sel, arms, None)) Seq.empty
      in
      Seq.append no_ow (Seq.append fewer bodies)
  | A.Sblock b -> Seq.map (fun b' -> A.Sblock b') (stmts_candidates b)
  | _ -> Seq.empty

and stmts_candidates (ss : A.stmt list) : A.stmt list Seq.t =
  Seq.append (list_candidates ss)
    (Seq.concat
       (Seq.init (List.length ss) (fun i ->
            Seq.map
              (fun s' -> List.mapi (fun j s -> if j = i then s' else s) ss)
              (stmt_candidates (List.nth ss i)))))

let remove_proc_calls (name : string) : A.stmt list -> A.stmt list =
  let rec strip ss = List.filter_map strip1 ss
  and strip1 s =
    match s with
    | A.Scall (p, []) when p = name -> None
    | A.Sif (c, t, e) -> Some (A.Sif (c, strip t, strip e))
    | A.Swhile (c, b) -> Some (A.Swhile (c, strip b))
    | A.Srepeat (b, c) -> Some (A.Srepeat (strip b, c))
    | A.Sfor ({ body; _ } as f) -> Some (A.Sfor { f with body = strip body })
    | A.Scase (sel, arms, ow) ->
        Some
          (A.Scase
             ( sel,
               List.map (fun (l, b) -> (l, strip b)) arms,
               Option.map strip ow ))
    | A.Sblock b -> Some (A.Sblock (strip b))
    | _ -> Some s
  in
  strip

(** One-step shrink candidates for a whole program: drop or simplify
    main statements, drop whole procedures (with their call sites). *)
let program_candidates (p : A.program) : A.program Seq.t =
  let drop_procs =
    Seq.init (List.length p.A.procs) (fun i ->
        let dead = (List.nth p.A.procs i).A.p_name in
        {
          p with
          A.procs = remove_nth i p.A.procs;
          main = remove_proc_calls dead p.A.main;
        })
  in
  let proc_bodies =
    Seq.concat
      (Seq.init (List.length p.A.procs) (fun i ->
           Seq.map
             (fun b' ->
               {
                 p with
                 A.procs =
                   List.mapi
                     (fun j pr ->
                       if j = i then { pr with A.p_body = b' } else pr)
                     p.A.procs;
               })
             (stmts_candidates (List.nth p.A.procs i).A.p_body)))
  in
  Seq.append drop_procs
    (Seq.append
       (Seq.map (fun m -> { p with A.main = m }) (stmts_candidates p.A.main))
       proc_bodies)

(** Minimize a failing program.  [test] receives rendered source. *)
let minimize_program ?budget ~(test : string -> bool) (p : A.program) :
    A.program =
  minimize ?budget ~candidates:program_candidates
    ~test:(fun p -> test (Gen_pascal.render p))
    p

(* -- IF token streams -------------------------------------------------------- *)

let tokens_candidates (toks : Ifl.Token.t list) : Ifl.Token.t list Seq.t =
  list_candidates toks

let minimize_tokens ?budget ~(test : Ifl.Token.t list -> bool)
    (toks : Ifl.Token.t list) : Ifl.Token.t list =
  minimize ?budget ~candidates:tokens_candidates ~test toks
