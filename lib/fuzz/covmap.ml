(** The coverage signal for guided fuzzing: which user productions an
    input fires, which production {e bigrams} (consecutive fire pairs)
    it exercises, and a few auxiliary outcome bits.

    The map is exact — one bit per production, one per ordered
    production pair, no hashing — so coverage is deterministic: the same
    corpus produces the same map on any machine at any worker count,
    which is what lets the @guided alias demand identical maps at -j1
    and -jmax.  At 199 user productions the whole map is ~5 KB.

    A single input's footprint is an {!obs}: the sorted, deduplicated
    list of feature indices it touches.  Observations are computed once
    per case (in parallel, they are pure), then merged into the map
    sequentially in a fixed order, so the kept-seed pool is independent
    of evaluation scheduling. *)

type t = {
  n : int;  (** user productions *)
  bits : Bytes.t;
  mutable prods : int;  (** distinct productions covered *)
  mutable bigrams : int;  (** distinct production bigrams covered *)
}

(** Feature indices of one input, sorted and deduplicated. *)
type obs = int list

(* feature layout: [0, n) production fired; [n, n + n*n) bigram a->b at
   n + a*n + b; then the auxiliary outcome bits *)
let n_aux = 3

let aux_ok = 0
let aux_error = 1
let aux_long = 2

let n_features_of n = n + (n * n) + n_aux

let create ~(n_prods : int) : t =
  {
    n = n_prods;
    bits = Bytes.make ((n_features_of n_prods + 7) / 8) '\000';
    prods = 0;
    bigrams = 0;
  }

let n_prods (t : t) = t.n

let mem (t : t) (f : int) : bool =
  Char.code (Bytes.get t.bits (f lsr 3)) land (1 lsl (f land 7)) <> 0

let set (t : t) (f : int) : unit =
  let b = f lsr 3 in
  Bytes.set t.bits b
    (Char.chr (Char.code (Bytes.get t.bits b) lor (1 lsl (f land 7))));
  if f < t.n then t.prods <- t.prods + 1
  else if f < t.n + (t.n * t.n) then t.bigrams <- t.bigrams + 1

(** Turn one input's raw trace — the in-order list of fired user
    productions plus the compile outcome — into its feature set. *)
let features ~(n_prods : int) ~(fired : int list) ~(ok : bool) ~(long : bool)
    : obs =
  let seen = Hashtbl.create 64 in
  let feat f = if not (Hashtbl.mem seen f) then Hashtbl.replace seen f () in
  let rec go prev = function
    | [] -> ()
    | p :: rest ->
        feat p;
        (match prev with
        | Some a -> feat (n_prods + (a * n_prods) + p)
        | None -> ());
        go (Some p) rest
  in
  go None fired;
  let aux = n_prods + (n_prods * n_prods) in
  feat (aux + if ok then aux_ok else aux_error);
  if long then feat (aux + aux_long);
  List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) seen [])

let novel (t : t) (o : obs) : bool = List.exists (fun f -> not (mem t f)) o

(** Merge an observation; returns how many features were new. *)
let add (t : t) (o : obs) : int =
  List.fold_left
    (fun gain f ->
      if mem t f then gain
      else begin
        set t f;
        gain + 1
      end)
    0 o

let merge_into ~(dst : t) (src : t) : unit =
  assert (dst.n = src.n);
  for f = 0 to n_features_of src.n - 1 do
    if mem src f && not (mem dst f) then set dst f
  done

let prods_covered (t : t) = t.prods
let bigrams_covered (t : t) = t.bigrams
let equal (a : t) (b : t) : bool = a.n = b.n && Bytes.equal a.bits b.bits
let digest (t : t) : string = Digest.to_hex (Digest.bytes t.bits)

(* -- corpus distillation -------------------------------------------------- *)

(** Greedy minimal set cover: pick, at every step, the candidate
    covering the most still-uncovered elements (earliest candidate wins
    ties, so the result is deterministic); stop when the union of every
    candidate's set is covered.  Returns the selected candidate indices
    in pick order. *)
let distill (sets : int list array) : int list =
  let uncovered = Hashtbl.create 256 in
  Array.iter
    (fun s -> List.iter (fun p -> Hashtbl.replace uncovered p ()) s)
    sets;
  let selected = ref [] in
  while Hashtbl.length uncovered > 0 do
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun i s ->
        let gain =
          List.fold_left
            (fun g p -> if Hashtbl.mem uncovered p then g + 1 else g)
            0 s
        in
        if gain > !best_gain then begin
          best := i;
          best_gain := gain
        end)
      sets;
    if !best < 0 then
      (* cannot happen: the universe is the union of the sets *)
      Hashtbl.reset uncovered
    else begin
      List.iter (Hashtbl.remove uncovered) sets.(!best);
      selected := !best :: !selected
    end
  done;
  List.rev !selected
