(** The whole compiler, end to end: mini-Pascal source -> front end ->
    shaper (+ CSE optimizer) -> table-driven code generator -> object
    module -> simulator.

    Also exposes the comparison hooks the evaluation needs: reading final
    variable values out of simulated memory, collecting [write] output,
    and checking everything against the reference interpreter. *)

module Ast = Pascal.Ast

type compiled = {
  source : string;
  checked : Pascal.Sema.checked;
  shaped : Shaper.Irgen.shaped;
  tokens : Ifl.Token.t list;
  gen : Cogg.Codegen.result_t;
  target : Machine.Target.t;
      (** the machine the tables were built for; drives loading and
          simulation in {!execute} *)
}

let ( let* ) = Result.bind

(** Compile a source program with the given generated code generator.
    Every phase runs under a {!Cogg.Trace} span (a no-op unless tracing
    or metrics are enabled), so [--trace]/[--stats] report per-phase wall
    times. *)
let compile ?(cse = true) ?(checks = false) ?strategy ?dispatch ?profile
    ?explain ?on_reduce (tables : Cogg.Tables.t) (source : string) :
    (compiled, string) result =
  let span name f = Cogg.Trace.with_span ~cat:"pipeline" name f in
  let* checked = span "front_end" (fun () -> Pascal.Sema.front_end source) in
  let* shaped =
    span "shape" (fun () ->
        Result.map_error
          (fun e -> Fmt.str "%a" Shaper.Irgen.pp_error e)
          (Shaper.Irgen.shape ~checks checked))
  in
  let shaped =
    if cse then span "cse_opt" (fun () -> Shaper.Cse_opt.optimize shaped)
    else shaped
  in
  let tokens =
    span "linearize" (fun () ->
        Ifl.Tree.linearize_program shaped.Shaper.Irgen.trees)
  in
  match
    span "codegen" (fun () ->
        Cogg.Codegen.generate ?strategy ?dispatch ?profile ?explain ?on_reduce
          tables tokens)
  with
  | Error e -> Error (Fmt.str "%a" Cogg.Codegen.pp_error e)
  | Ok gen ->
      Ok
        { source; checked; shaped; tokens; gen;
          target = tables.Cogg.Tables.target }

type executed = {
  sim : Machine.Sim.t;
  frame : int;  (** the main program's frame address *)
  outcome : Machine.Runtime.outcome;
  written_ints : int list;
  written_reals : float list;
}

(** Load and run a compiled program. *)
let execute ?(layout = Machine.Runtime.default_layout) ?(max_steps = 5_000_000)
    (c : compiled) : (executed, string) result =
  let tgt = c.target in
  let* sim, entry =
    tgt.Machine.Target.boot ~layout c.gen.Cogg.Codegen.objmod
  in
  (* resolve the procedure address table: the role of a linking loader *)
  let labels = c.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.labels in
  let* () =
    List.fold_left
      (fun acc (_, slot, lbl) ->
        let* () = acc in
        match List.assoc_opt (Cogg.Code_buffer.User lbl) labels with
        | Some off ->
            Machine.Sim.store_w sim
              (layout.Machine.Runtime.psa_addr + Machine.Runtime.psa_proctab
             + (4 * slot))
              (layout.Machine.Runtime.code_addr + off);
            Ok ()
        | None -> Error (Fmt.str "procedure label L%d unresolved" lbl))
      (Ok ()) c.shaped.Shaper.Irgen.proc_slots
  in
  let* outcome = tgt.Machine.Target.run ~max_steps ~layout sim ~entry in
  let frame = outcome.Machine.Runtime.final_frame in
  let sh = c.shaped in
  let n_ints = Machine.Sim.load_w sim (frame + sh.Shaper.Irgen.wcount_i_disp) in
  let n_reals = Machine.Sim.load_w sim (frame + sh.Shaper.Irgen.wcount_r_disp) in
  let clamp n lim = max 0 (min n lim) in
  let written_ints =
    List.init (clamp n_ints 64) (fun i ->
        Machine.Sim.load_w sim (frame + sh.Shaper.Irgen.out_int_disp + (4 * i)))
  in
  let written_reals =
    List.init (clamp n_reals 32) (fun i ->
        Machine.Sim.load_f64 sim
          (frame + sh.Shaper.Irgen.out_real_disp + (8 * i)))
  in
  Ok { sim; frame; outcome; written_ints; written_reals }

(* -- reading final variable state ------------------------------------------- *)

(** Read a global variable's final value from simulated memory, in the
    same shape the reference interpreter reports. *)
let read_global (c : compiled) (x : executed) (name : string) :
    (Pascal.Interp.value, string) result =
  match Shaper.Layout.find c.shaped.Shaper.Irgen.main_frame name with
  | None -> Error (Fmt.str "unknown global %s" name)
  | Some info ->
      let base = x.frame + info.Shaper.Layout.disp in
      let scalar (st : Shaper.Layout.storage) (ty : Ast.ty) at :
          Pascal.Interp.value =
        match st with
        | Shaper.Layout.Sfull -> Pascal.Interp.Vint (Machine.Sim.load_w x.sim at)
        | Shaper.Layout.Shalf -> Pascal.Interp.Vint (Machine.Sim.load_h x.sim at)
        | Shaper.Layout.Sbyte -> (
            let b = Machine.Sim.load_u8 x.sim at in
            match Ast.scalar ty with
            | Ast.Tbool -> Pascal.Interp.Vbool (b <> 0)
            | Ast.Tchar -> Pascal.Interp.Vchar (Char.chr b)
            | _ -> Pascal.Interp.Vint b)
        | Shaper.Layout.Sdouble ->
            Pascal.Interp.Vreal (Machine.Sim.load_f64 x.sim at)
        | Shaper.Layout.Sset _ | Shaper.Layout.Sarr _ ->
            invalid_arg "scalar storage expected"
      in
      (match info.Shaper.Layout.stype with
      | Shaper.Layout.Sarr { elem; lo; n } ->
          let elsize = Shaper.Layout.size_of elem in
          let elems =
            Array.init n (fun i ->
                scalar elem
                  (match info.Shaper.Layout.ty with
                  | Ast.Tarray { elem; _ } -> elem
                  | _ -> Ast.Tint)
                  (base + (i * elsize)))
          in
          Ok (Pascal.Interp.Varr (elems, lo))
      | Shaper.Layout.Sset bytes ->
          let bits = Array.make (bytes * 8) false in
          for i = 0 to (bytes * 8) - 1 do
            let b = Machine.Sim.load_u8 x.sim (base + (i / 8)) in
            bits.(i) <- b land (0x80 lsr (i mod 8)) <> 0
          done;
          Ok (Pascal.Interp.Vset bits)
      | st -> Ok (scalar st info.Shaper.Layout.ty base))

(* -- agreement with the reference interpreter -------------------------------- *)

let rec values_agree (a : Pascal.Interp.value) (b : Pascal.Interp.value) : bool
    =
  match (a, b) with
  | Pascal.Interp.Vint x, Pascal.Interp.Vint y -> x = y
  | Pascal.Interp.Vbool x, Pascal.Interp.Vbool y -> x = y
  | Pascal.Interp.Vchar x, Pascal.Interp.Vchar y -> x = y
  | Pascal.Interp.Vreal x, Pascal.Interp.Vreal y ->
      Float.abs (x -. y) <= 1e-6 *. Float.max 1.0 (Float.abs y)
  | Pascal.Interp.Varr (xs, lx), Pascal.Interp.Varr (ys, ly) ->
      lx = ly
      && Array.length xs = Array.length ys
      && Array.for_all2 values_agree xs ys
  | Pascal.Interp.Vset xs, Pascal.Interp.Vset ys ->
      let n = max (Array.length xs) (Array.length ys) in
      let get a i = i < Array.length a && a.(i) in
      List.for_all (fun i -> get xs i = get ys i) (List.init n Fun.id)
  | _ -> false

type verdict = {
  agreed : bool;
  mismatches : string list;
  interp : Pascal.Interp.result_t;
  executed : executed;
}

(** Compile, run on the simulator, run the reference interpreter, and
    compare every global variable and all written output. *)
let verify ?cse ?checks ?strategy (tables : Cogg.Tables.t) (source : string) :
    (verdict, string) result =
  let* c = compile ?cse ?checks ?strategy tables source in
  let* x = execute c in
  let* () =
    match x.outcome.Machine.Runtime.aborted with
    | Some m -> Error (Fmt.str "simulated program aborted: %s" m)
    | None -> Ok ()
  in
  let* interp =
    Result.map_error
      (fun e -> Fmt.str "%a" Pascal.Interp.pp_error e)
      (Pascal.Interp.run c.checked)
  in
  let mismatches = ref [] in
  List.iter
    (fun (name, iv) ->
      match read_global c x name with
      | Error m -> mismatches := m :: !mismatches
      | Ok sv ->
          if not (values_agree sv iv) then
            mismatches := Fmt.str "global %s differs" name :: !mismatches)
    interp.Pascal.Interp.final_globals;
  (* written output: same counts and values per stream *)
  let int_writes =
    List.filter_map
      (function
        | Pascal.Interp.Vint n -> Some n
        | Pascal.Interp.Vbool b -> Some (if b then 1 else 0)
        | Pascal.Interp.Vchar c -> Some (Char.code c)
        | Pascal.Interp.Vreal _ -> None
        | _ -> None)
      interp.Pascal.Interp.written
  in
  let real_writes =
    List.filter_map
      (function Pascal.Interp.Vreal f -> Some f | _ -> None)
      interp.Pascal.Interp.written
  in
  if int_writes <> x.written_ints then
    mismatches := "written integer stream differs" :: !mismatches;
  if
    List.length real_writes <> List.length x.written_reals
    || not
         (List.for_all2
            (fun a b -> Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a))
            real_writes x.written_reals)
  then mismatches := "written real stream differs" :: !mismatches;
  Ok
    {
      agreed = !mismatches = [];
      mismatches = List.rev !mismatches;
      interp;
      executed = x;
    }

(* -- the hand-written comparator ----------------------------------------------- *)

type baseline_compiled = {
  b_source : string;
  b_checked : Pascal.Sema.checked;
  b_shaped : Shaper.Irgen.shaped;
  b_gen : Baseline.result_t;
}

(** Compile with the hand-written baseline generator (no CSE: the
    baseline does not implement the CSE protocol, like any generator that
    predates the optimizer). *)
let compile_baseline ?(checks = false) (source : string) :
    (baseline_compiled, string) result =
  let* checked = Pascal.Sema.front_end source in
  let* shaped =
    Result.map_error
      (fun e -> Fmt.str "%a" Shaper.Irgen.pp_error e)
      (Shaper.Irgen.shape ~checks checked)
  in
  let* gen = Baseline.generate shaped.Shaper.Irgen.trees in
  Ok { b_source = source; b_checked = checked; b_shaped = shaped; b_gen = gen }

(** Run a baseline-compiled program (same loading protocol). *)
let execute_baseline ?(layout = Machine.Runtime.default_layout)
    ?(max_steps = 5_000_000) (c : baseline_compiled) : (executed, string) result
    =
  let* sim, entry = Machine.Runtime.boot ~layout c.b_gen.Baseline.objmod in
  let labels = c.b_gen.Baseline.resolved.Cogg.Loader_gen.labels in
  let* () =
    List.fold_left
      (fun acc (_, slot, lbl) ->
        let* () = acc in
        match List.assoc_opt (Cogg.Code_buffer.User lbl) labels with
        | Some off ->
            Machine.Sim.store_w sim
              (layout.Machine.Runtime.psa_addr + Machine.Runtime.psa_proctab
             + (4 * slot))
              (layout.Machine.Runtime.code_addr + off);
            Ok ()
        | None -> Error (Fmt.str "procedure label L%d unresolved" lbl))
      (Ok ()) c.b_shaped.Shaper.Irgen.proc_slots
  in
  let* outcome = Machine.Runtime.run ~max_steps ~layout sim ~entry in
  let frame = outcome.Machine.Runtime.final_frame in
  let sh = c.b_shaped in
  let n_ints = Machine.Sim.load_w sim (frame + sh.Shaper.Irgen.wcount_i_disp) in
  let n_reals = Machine.Sim.load_w sim (frame + sh.Shaper.Irgen.wcount_r_disp) in
  let clamp n lim = max 0 (min n lim) in
  let written_ints =
    List.init (clamp n_ints 64) (fun i ->
        Machine.Sim.load_w sim (frame + sh.Shaper.Irgen.out_int_disp + (4 * i)))
  in
  let written_reals =
    List.init (clamp n_reals 32) (fun i ->
        Machine.Sim.load_f64 sim
          (frame + sh.Shaper.Irgen.out_real_disp + (8 * i)))
  in
  Ok { sim; frame; outcome; written_ints; written_reals }

(** Standard workloads (paper Appendix 1 and friends). *)
module Programs = Programs

(* -- batch compilation -------------------------------------------------------- *)

(** Batch compilation: many mini-Pascal programs through one shared set
    of driving tables.

    Bird's economics make this the natural serving shape: table
    construction is the expensive artifact (tens of milliseconds) and a
    single compile through the comb-packed driver costs a fraction of a
    millisecond, so a batch amortizes the tables once and fans the
    per-program work across a {!Cogg.Pool} of domains.

    Domain-safety audit (why sharing [Tables.t] is sound):

    - [Tables.t] and everything it reaches ([Grammar.t], [Symtab.t],
      [Parse_table.t], [Compress.t], compiled templates) is immutable
      after [Cogg_build.build].  The only mutable fields in the bundle
      are [Lr0.state.closure]/[transitions], written exclusively during
      automaton construction; every post-build access is a read.
    - All per-compile state is created inside the compile call: the
      driver's stacks live in [Driver.parse]'s frame; [Emit.create]
      allocates the emitter, register file ([Regalloc.t]), CSE table
      ([Cse.t]) and code buffer per call; the front end ([Sema]), shaper
      ([Irgen], [Cse_opt]) and loader ([Loader_gen]) likewise build
      their state per invocation.  [test/check_globals.sh] pins this by
      rejecting new toplevel mutable bindings in the hot modules.
    - Results are placed by input index ({!Cogg.Pool.map}), so batch
      output order — and, since each compile is deterministic, every
      byte of it — is identical to the sequential run. *)
module Batch = struct
  type job = {
    name : string;  (** label for reports; the source path under [pasc] *)
    source : string;
  }

  type result_t = (compiled, string) result

  (** [compile_all ?pool tables jobs] compiles every job against
      [tables].  With a pool the jobs fan out across its domains; without
      one (or with a pool of size 1) the batch runs sequentially on the
      calling domain.  The result array is indexed like [jobs] either
      way. *)
  let compile_all ?pool ?cse ?checks ?strategy ?dispatch ?explain
      (tables : Cogg.Tables.t) (jobs : job array) : result_t array =
    Cogg.Pool.maybe pool
      (fun j ->
        (* the per-program span: events land in the compiling domain's
           buffer and are merged at serialization time, after the pool
           region has joined *)
        Cogg.Trace.with_span ~cat:"batch" ~args:[ ("program", j.name) ]
          "compile" (fun () ->
            compile ?cse ?checks ?strategy ?dispatch ?explain tables j.source))
      jobs

  (** Object-code bytes of a successful compile — the determinism suite's
      notion of "output": resolved code, exactly what the loader sees. *)
  let code_bytes (c : compiled) : string =
    Bytes.to_string c.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.code

  (** [fingerprint results] digests every job's listing and object bytes
      (or its error message) into one hex string: two batches produced
      the same compilations iff their fingerprints are equal. *)
  let fingerprint (results : result_t array) : string =
    let buf = Buffer.create 4096 in
    Array.iter
      (fun r ->
        match r with
        | Ok c ->
            Buffer.add_string buf c.gen.Cogg.Codegen.listing;
            Buffer.add_char buf '\000';
            Buffer.add_string buf (code_bytes c);
            Buffer.add_char buf '\001'
        | Error m ->
            Buffer.add_string buf m;
            Buffer.add_char buf '\002')
      results;
    Digest.to_hex (Digest.string (Buffer.contents buf))
end
