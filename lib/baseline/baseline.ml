(** A hand-written code generator over the same intermediate form.

    This plays the role of the traditionally crafted comparator (the
    paper compares its generated code generator against IBM's PascalVS,
    Appendix 1): a direct recursive tree walker with explicit OCaml code
    for every IF operator, first-free register assignment and no
    common-subexpression support.  It shares only the code buffer and the
    loader record generator with the table-driven system — exactly the
    parts the paper says survive retargeting.

    Differences from the table-driven generator, on purpose:
    - no CSE handling (feed it trees shaped without the optimizer);
    - halfword/byte operands are loaded before arithmetic rather than
      fused into the instruction;
    - booleans are always materialized as 0/1 registers;
    - register allocation is first-free rather than LRU. *)

module Tree = Ifl.Tree
module Token = Ifl.Token
module CB = Cogg.Code_buffer
module I = Machine.Insn
module R = Machine.Runtime

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type t = {
  buf : CB.t;
  gprs : bool array; (* busy flags *)
  fprs : bool array;
  mutable next_internal : int;
  mutable n_allocs : int;
}

let create () =
  {
    buf = CB.create ();
    gprs = Array.make 16 false;
    fprs = Array.make 8 false;
    next_internal = 0;
    n_allocs = 0;
  }

let gpr_pool = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 11 ]
let fpr_pool = [ 0; 2; 4; 6 ]

let alloc_gpr t =
  match List.find_opt (fun r -> not t.gprs.(r)) gpr_pool with
  | Some r ->
      t.gprs.(r) <- true;
      t.n_allocs <- t.n_allocs + 1;
      r
  | None -> err "baseline: out of registers"

let alloc_pair t =
  match
    List.find_opt (fun e -> (not t.gprs.(e)) && not t.gprs.(e + 1)) [ 2; 4; 6; 8 ]
  with
  | Some e ->
      t.gprs.(e) <- true;
      t.gprs.(e + 1) <- true;
      t.n_allocs <- t.n_allocs + 1;
      e
  | None -> err "baseline: out of register pairs"

let alloc_fpr t =
  match List.find_opt (fun r -> not t.fprs.(r)) fpr_pool with
  | Some r ->
      t.fprs.(r) <- true;
      t.n_allocs <- t.n_allocs + 1;
      r
  | None -> err "baseline: out of float registers"

let free_gpr t r = if List.mem r gpr_pool then t.gprs.(r) <- false
let free_pair t e = t.gprs.(e) <- false; t.gprs.(e + 1) <- false
let free_fpr t r = t.fprs.(r) <- false

let emit t i = CB.add t.buf (CB.Fixed i)
let rr op r1 r2 : I.t = Rr { op; r1; r2 }
let rx op r1 ?(x = 0) ?(b = 0) d : I.t = Rx { op; r1; d2 = d; x2 = x; b2 = b }
let shift op r1 n : I.t = Rs { op; r1; r3 = 0; d2 = n; b2 = 0 }

let fresh_label t =
  let l = t.next_internal in
  t.next_internal <- l + 1;
  CB.Internal l

(* -- tree access ------------------------------------------------------------- *)

let sym (Tree.Node (tok, _)) = tok.Token.sym
let value (Tree.Node (tok, _)) = tok.Token.value
let kids (Tree.Node (_, ks)) = ks

let ivalue tr =
  match value tr with
  | Ifl.Value.Int n | Ifl.Value.Reg n | Ifl.Value.Label n | Ifl.Value.Cse n
  | Ifl.Value.Cond n ->
      n
  | Ifl.Value.Unit -> err "baseline: token %s has no value" (sym tr)

(* a memory reference: displacement, index reg option, base reg *)
type mem = { d : int; x : int; b : int; free_x : bool; free_b : bool }

(* -- expressions -------------------------------------------------------------- *)

(* is this a plain (non-indexed) fullword location? *)
let rec gen_mem t (tr : Tree.t) : mem =
  (* [type_op dsp base] or [type_op idx dsp base] *)
  match kids tr with
  | [ dsp; base ] ->
      let b, free_b = gen_base t base in
      { d = ivalue dsp; x = 0; b; free_x = false; free_b }
  | [ idx; dsp; base ] ->
      let x = gen_int t idx in
      let b, free_b = gen_base t base in
      { d = ivalue dsp; x; b; free_x = true; free_b }
  | _ -> err "baseline: malformed storage operand under %s" (sym tr)

and gen_base t (tr : Tree.t) : int * bool =
  match sym tr with
  | "r" -> (ivalue tr, false)
  | _ ->
      (* a loaded chain (global access from a procedure) *)
      (gen_int t tr, true)

and free_mem t (m : mem) =
  if m.free_x then free_gpr t m.x;
  if m.free_b then free_gpr t m.b

(* integer expression -> register *)
and gen_int t (tr : Tree.t) : int =
  match sym tr with
  | "fullword" ->
      let m = gen_mem t tr in
      free_mem t m;
      let r = alloc_gpr t in
      emit t (rx "l" r ~x:m.x ~b:m.b m.d);
      r
  | "hlfword" ->
      let m = gen_mem t tr in
      free_mem t m;
      let r = alloc_gpr t in
      emit t (rx "lh" r ~x:m.x ~b:m.b m.d);
      r
  | "byteword" ->
      (* destination allocated while the index is still live: the XR
         precedes the IC, so they must not alias *)
      let m = gen_mem t tr in
      let r = alloc_gpr t in
      emit t (rr "xr" r r);
      emit t (rx "ic" r ~x:m.x ~b:m.b m.d);
      free_mem t m;
      r
  | "addr" ->
      let m = gen_mem t tr in
      free_mem t m;
      let r = alloc_gpr t in
      emit t (rx "la" r ~x:m.x ~b:m.b m.d);
      r
  | "name_param" ->
      let m = gen_mem t tr in
      free_mem t m;
      let r = alloc_gpr t in
      emit t (rx "l" r ~x:m.x ~b:m.b m.d);
      r
  | "pos_constant" ->
      let r = alloc_gpr t in
      emit t (rx "la" r (ivalue (List.nth (kids tr) 0)));
      r
  | "neg_constant" ->
      let r = alloc_gpr t in
      emit t (rx "la" r (ivalue (List.nth (kids tr) 0)));
      emit t (rr "lcr" r r);
      r
  | "iadd" -> binop t tr "ar" "a" "ah" ~commutative:true
  | "isub" -> binop t tr "sr" "s" "sh" ~commutative:false
  | "imult" -> (
      let a, b = two_kids tr in
      (* product in the odd register of a pair *)
      match plain_fullword b with
      | Some _ ->
          let ra = gen_int t a in
          let e = alloc_pair t in
          emit t (rr "lr" (e + 1) ra);
          free_gpr t ra;
          let m = gen_mem t b in
          free_mem t m;
          emit t (rx "m" e ~x:m.x ~b:m.b m.d);
          let r = alloc_gpr t in
          emit t (rr "lr" r (e + 1));
          free_pair t e;
          r
      | None ->
          let ra = gen_int t a in
          let rb = gen_int t b in
          let e = alloc_pair t in
          emit t (rr "lr" (e + 1) ra);
          free_gpr t ra;
          emit t (rr "mr" e rb);
          free_gpr t rb;
          let r = alloc_gpr t in
          emit t (rr "lr" r (e + 1));
          free_pair t e;
          r)
  | "idiv" | "imod" -> (
      let a, b = two_kids tr in
      let ra = gen_int t a in
      let e = alloc_pair t in
      emit t (rr "lr" e ra);
      free_gpr t ra;
      emit t (Rs { op = "srda"; r1 = e; r3 = 0; d2 = 32; b2 = 0 });
      (match plain_fullword b with
      | Some _ ->
          let m = gen_mem t b in
          free_mem t m;
          emit t (rx "d" e ~x:m.x ~b:m.b m.d)
      | None ->
          let rb = gen_int t b in
          emit t (rr "dr" e rb);
          free_gpr t rb);
      let r = alloc_gpr t in
      emit t (rr "lr" r (if sym tr = "idiv" then e + 1 else e));
      free_pair t e;
      r)
  | "ineg" ->
      let r = gen_int t (one_kid tr) in
      emit t (rr "lcr" r r);
      r
  | "iabs" ->
      let r = gen_int t (one_kid tr) in
      emit t (rr "lpr" r r);
      r
  | "incr" ->
      let r = gen_int t (one_kid tr) in
      emit t (rx "la" r ~b:r 1);
      r
  | "decr" ->
      let r = gen_int t (one_kid tr) in
      emit t (rr "bctr" r 0);
      r
  | "imax" | "imin" ->
      let a, b = two_kids tr in
      let ra = gen_int t a in
      let rb = gen_int t b in
      let l = fresh_label t in
      emit t (rr "cr" ra rb);
      CB.add t.buf
        (CB.Branch_site
           { mask = (if sym tr = "imax" then R.mask_gte else R.mask_lte);
             lbl = l; idx = 0; x = 0 });
      emit t (rr "lr" ra rb);
      CB.add t.buf (CB.Label_def l);
      free_gpr t rb;
      ra
  | "iodd" ->
      let r = gen_int t (one_kid tr) in
      emit t (rx "n" r ~b:R.pr_base R.psa_one_loc);
      r
  | "l_shift" | "r_shift" -> (
      let a, b = two_kids tr in
      let r = gen_int t a in
      let op = if sym tr = "l_shift" then "sla" else "sra" in
      match sym b with
      | "v" ->
          emit t (shift op r (ivalue b));
          r
      | _ ->
          let rb = gen_int t b in
          emit t (I.Rs { op; r1 = r; r3 = 0; d2 = 0; b2 = rb });
          free_gpr t rb;
          r)
  | "set_union" | "set_intersect" | "set_difference" -> (
      let a, b = two_kids tr in
      let ra = gen_int t a in
      let rb = gen_int t b in
      (match sym tr with
      | "set_union" -> emit t (rr "or" ra rb)
      | "set_intersect" -> emit t (rr "nr" ra rb)
      | _ ->
          emit t (rx "x" rb ~b:R.pr_base R.psa_minus_one_loc);
          emit t (rr "nr" ra rb));
      free_gpr t rb;
      ra)
  | "boolean_not" ->
      let r = gen_int t (one_kid tr) in
      emit t (rx "x" r ~b:R.pr_base R.psa_one_loc);
      r
  | "boolean_and" | "boolean_or" ->
      let a, b = two_kids tr in
      let ra = gen_bool t a in
      let rb = gen_bool t b in
      emit t (rr (if sym tr = "boolean_and" then "nr" else "or") ra rb);
      free_gpr t rb;
      ra
  | "cond" ->
      (* relational result as 0/1: evaluate the comparison, then branch *)
      let mask = ivalue tr in
      gen_compare t (one_kid tr);
      let r = alloc_gpr t in
      let l = fresh_label t in
      emit t (rx "la" r 0);
      CB.add t.buf (CB.Branch_site { mask; lbl = l; idx = 0; x = 0 });
      emit t (rx "la" r 1);
      CB.add t.buf (CB.Label_def l);
      r
  | "boolean_test" -> gen_bool t (one_kid tr)
  | "test_bit_value" ->
      gen_compare t tr;
      let r = alloc_gpr t in
      let l = fresh_label t in
      emit t (rx "la" r 0);
      CB.add t.buf (CB.Branch_site { mask = R.mask_false; lbl = l; idx = 0; x = 0 });
      emit t (rx "la" r 1);
      CB.add t.buf (CB.Label_def l);
      r
  | "x_s_cnvrt" ->
      let f = gen_real t (one_kid tr) in
      emit t (rr "ldr" 0 f);
      free_fpr t f;
      emit t (rx "bal" 14 ~b:R.pr_base R.psa_real_to_int);
      let r = alloc_gpr t in
      emit t (rx "l" r ~b:R.pr_base R.psa_scratch);
      r
  | "range_check" | "subscript_check" | "case_check" -> (
      let low_trap, high_trap =
        match sym tr with
        | "range_check" -> (R.psa_underflow, R.psa_overflow)
        | "subscript_check" -> (R.psa_array_underflow, R.psa_array_overflow)
        | _ -> (R.psa_case_low, R.psa_case_high)
      in
      match kids tr with
      | [ v; lo; hi ] ->
          let r = gen_int t v in
          let rlo = gen_int t lo in
          emit t (rr "cr" r rlo);
          free_gpr t rlo;
          emit t (rx "bal" 14 ~b:R.pr_base low_trap);
          let rhi = gen_int t hi in
          emit t (rr "cr" r rhi);
          free_gpr t rhi;
          emit t (rx "bal" 14 ~b:R.pr_base high_trap);
          r
      | _ -> err "baseline: malformed check")
  | "uninit_check" ->
      let r = gen_int t (one_kid tr) in
      emit t (rx "c" r ~b:R.pr_base R.psa_uninit_pattern);
      emit t (rx "bal" 14 ~b:R.pr_base R.psa_not_initialized);
      r
  | s -> err "baseline: unsupported integer operator %s" s

and one_kid tr =
  match kids tr with [ a ] -> a | _ -> err "baseline: arity under %s" (sym tr)

and two_kids tr =
  match kids tr with
  | [ a; b ] -> (a, b)
  | _ -> err "baseline: arity under %s" (sym tr)

and plain_fullword (tr : Tree.t) =
  match (sym tr, kids tr) with
  | "fullword", ([ _; _ ] | [ _; _; _ ]) -> Some ()
  | _ -> None

(* a + b with memory-operand forms when the right side is a plain load *)
and binop t tr op_rr op_rx op_rx_h ~commutative : int =
  let a, b = two_kids tr in
  let mem_side, reg_side =
    match (plain_fullword b, commutative, plain_fullword a) with
    | Some _, _, _ -> (Some b, a)
    | None, true, Some _ -> (Some a, b)
    | _ -> (None, b)
  in
  ignore op_rx_h;
  match mem_side with
  | Some m ->
      let r = gen_int t reg_side in
      let mm = gen_mem t m in
      free_mem t mm;
      emit t (rx op_rx r ~x:mm.x ~b:mm.b mm.d);
      r
  | None ->
      let ra = gen_int t a in
      let rb = gen_int t b in
      emit t (rr op_rr ra rb);
      free_gpr t rb;
      ra

(* boolean value (0/1 register) *)
and gen_bool t (tr : Tree.t) : int =
  match sym tr with
  | "byteword" -> gen_int t tr
  | _ -> gen_int t tr

(* comparisons and bit tests: set the machine condition code *)
and gen_compare t (tr : Tree.t) : unit =
  match sym tr with
  | "icompare" -> (
      let a, b = two_kids tr in
      match plain_fullword b with
      | Some _ ->
          let ra = gen_int t a in
          let m = gen_mem t b in
          free_mem t m;
          emit t (rx "c" ra ~x:m.x ~b:m.b m.d);
          free_gpr t ra
      | None ->
          let ra = gen_int t a in
          let rb = gen_int t b in
          emit t (rr "cr" ra rb);
          free_gpr t ra;
          free_gpr t rb)
  | "rcompare" ->
      let a, b = two_kids tr in
      let fa = gen_real t a in
      let fb = gen_real t b in
      emit t (rr "cdr" fa fb);
      free_fpr t fa;
      free_fpr t fb
  | "boolean_test" ->
      let r = gen_bool t (one_kid tr) in
      emit t (rr "ltr" r r);
      free_gpr t r
  | "boolean_and" | "boolean_or" ->
      let r = gen_int t tr in
      emit t (rr "ltr" r r);
      free_gpr t r
  | "test_bit_value" -> (
      match kids tr with
      | [ addr; el ] when sym el = "elmnt" -> (
          match sym addr with
          | "addr" ->
              let m = gen_mem t addr in
              free_mem t m;
              emit t (I.Si { op = "tm"; d1 = m.d; b1 = m.b; i2 = ivalue el })
          | _ ->
              let r = gen_int t addr in
              emit t (I.Si { op = "tm"; d1 = 0; b1 = r; i2 = ivalue el });
              free_gpr t r)
      | [ addr; el ] ->
          (* variable element: isolate byte and mask, then NR sets cc *)
          let m = gen_mem t addr in
          let re = gen_int t el in
          let rbyte = alloc_gpr t in
          emit t (rr "lr" rbyte re);
          emit t (shift "srl" rbyte 3);
          emit t (rx "n" re ~b:R.pr_base R.psa_seven);
          let rmask = alloc_gpr t in
          emit t (rr "xr" rmask rmask);
          emit t (rx "ic" rmask ~x:re ~b:R.pr_base R.psa_bitmasks_b);
          let rtmp = alloc_gpr t in
          emit t (rr "xr" rtmp rtmp);
          emit t (rx "ic" rtmp ~x:rbyte ~b:m.b m.d);
          emit t (rr "nr" rtmp rmask);
          free_mem t m;
          free_gpr t re;
          free_gpr t rbyte;
          free_gpr t rmask;
          free_gpr t rtmp
      | _ -> err "baseline: malformed test_bit_value")
  | s -> err "baseline: unsupported comparison %s" s

(* real expression -> floating register *)
and gen_real t (tr : Tree.t) : int =
  match sym tr with
  | "realword" ->
      let m = gen_mem t tr in
      free_mem t m;
      let f = alloc_fpr t in
      emit t (rx "le" f ~x:m.x ~b:m.b m.d);
      f
  | "dblrealword" ->
      let m = gen_mem t tr in
      free_mem t m;
      let f = alloc_fpr t in
      emit t (rx "ld" f ~x:m.x ~b:m.b m.d);
      f
  | "radd" | "rsub" | "rmult" | "rdiv" ->
      let a, b = two_kids tr in
      let fa = gen_real t a in
      let fb = gen_real t b in
      let op =
        match sym tr with
        | "radd" -> "adr"
        | "rsub" -> "sdr"
        | "rmult" -> "mdr"
        | _ -> "ddr"
      in
      emit t (rr op fa fb);
      free_fpr t fb;
      fa
  | "rneg" ->
      let f = gen_real t (one_kid tr) in
      emit t (rr "lcdr" f f);
      f
  | "rabs" ->
      let f = gen_real t (one_kid tr) in
      emit t (rr "lpdr" f f);
      f
  | "halve" ->
      let f = gen_real t (one_kid tr) in
      emit t (rr "hdr" f f);
      f
  | "rmax" | "rmin" ->
      let a, b = two_kids tr in
      let fa = gen_real t a in
      let fb = gen_real t b in
      let l = fresh_label t in
      emit t (rr "cdr" fa fb);
      CB.add t.buf
        (CB.Branch_site
           { mask = (if sym tr = "rmax" then R.mask_gte else R.mask_lte);
             lbl = l; idx = 0; x = 0 });
      emit t (rr "ldr" fa fb);
      CB.add t.buf (CB.Label_def l);
      free_fpr t fb;
      fa
  | "s_x_cnvrt" ->
      let r = gen_int t (one_kid tr) in
      emit t (rx "x" r ~b:R.pr_base R.psa_sign_flip);
      emit t (rx "st" r ~b:R.pr_base (R.psa_scratch + 4));
      free_gpr t r;
      CB.add t.buf
        (CB.Fixed
           (I.Ss
              { op = "mvc"; l = 4; d1 = R.psa_scratch; b1 = R.pr_base;
                d2 = R.psa_cnvrt_hi; b2 = R.pr_base }));
      let f = alloc_fpr t in
      emit t (rx "ld" f ~b:R.pr_base R.psa_scratch);
      emit t (rx "sd" f ~b:R.pr_base R.psa_cnvrt_magic);
      f
  | s -> err "baseline: unsupported real operator %s" s

(* -- statements ---------------------------------------------------------------- *)

let rec gen_stmt t (tr : Tree.t) : unit =
  match sym tr with
  | "procedure_entry" ->
      emit t (I.Rs { op = "stm"; r1 = 14; r3 = 13; d2 = R.save_area; b2 = 13 });
      emit t (rx "bal" 14 ~b:R.pr_base R.psa_entry_code)
  | "procedure_exit" ->
      emit t (rx "l" 13 ~b:13 R.old_base);
      emit t (I.Rs { op = "lm"; r1 = 14; r3 = 13; d2 = R.save_area; b2 = 13 });
      emit t (rr "bcr" 15 14)
  | "assign" -> (
      match kids tr with
      | [ target; value ] -> (
          let store_int mnem =
            let r = gen_int t value in
            let m = gen_mem t target in
            free_mem t m;
            emit t (rx mnem r ~x:m.x ~b:m.b m.d);
            free_gpr t r
          in
          match sym target with
          | "fullword" -> store_int "st"
          | "hlfword" -> store_int "sth"
          | "byteword" -> store_int "stc"
          | "realword" | "dblrealword" ->
              let f = gen_real t value in
              let m = gen_mem t target in
              free_mem t m;
              emit t
                (rx (if sym target = "realword" then "ste" else "std") f ~x:m.x
                   ~b:m.b m.d);
              free_fpr t f
          | "addr" ->
              err "baseline: block assigns are not used by the shaper"
          | s -> err "baseline: assign to %s" s)
      | [ target; value; _lng ] ->
          ignore target;
          ignore value;
          err "baseline: block move"
      | _ -> err "baseline: malformed assign")
  | "clear" ->
      let m = gen_mem t (Tree.Node (Token.op "fullword", kids tr)) in
      free_mem t m;
      let r = alloc_gpr t in
      emit t (rr "xr" r r);
      emit t (rx "st" r ~x:m.x ~b:m.b m.d);
      free_gpr t r
  | "label_def" -> CB.add t.buf (CB.Label_def (CB.User (ivalue (one_kid tr))))
  | "label_index" ->
      CB.add t.buf (CB.Word_label (CB.User (ivalue (one_kid tr))))
  | "branch_op" -> (
      match kids tr with
      | [ lbl ] ->
          CB.add t.buf
            (CB.Branch_site
               { mask = R.mask_unconditional; lbl = CB.User (ivalue lbl);
                 idx = alloc_scratch t; x = 0 })
      | [ lbl; cond; cc ] ->
          gen_compare t cc;
          CB.add t.buf
            (CB.Branch_site
               { mask = ivalue cond; lbl = CB.User (ivalue lbl);
                 idx = alloc_scratch t; x = 0 })
      | _ -> err "baseline: malformed branch_op")
  | "case_index" -> (
      match kids tr with
      | [ lbl; sel ] ->
          let r = gen_int t sel in
          emit t (shift "sll" r 2);
          let idx = alloc_scratch t in
          CB.add t.buf (CB.Case_site { reg = r; lbl = CB.User (ivalue lbl); idx });
          emit t (rx "bc" 15 ~x:r ~b:R.code_base 0);
          free_gpr t r
      | _ -> err "baseline: malformed case_index")
  | "procedure_call" -> (
      match kids tr with
      | [ _cnt; target ] ->
          let m = gen_mem t target in
          free_mem t m;
          emit t (rx "l" 15 ~x:m.x ~b:m.b m.d);
          emit t (rr "balr" 14 15)
      | _ -> err "baseline: malformed procedure_call")
  | "statement" -> ()
  | "abort_op" ->
      emit t (rx "la" 1 (ivalue (one_kid tr)));
      emit t (rx "bal" 14 ~b:R.pr_base R.psa_abort)
  | "set_bit_value" | "clear_bit_value" -> (
      match kids tr with
      | [ addr; el ] when sym el = "elmnt" -> (
          let imm = ivalue el in
          let op = if sym tr = "set_bit_value" then "oi" else "ni" in
          match sym addr with
          | "addr" ->
              let m = gen_mem t addr in
              free_mem t m;
              emit t (I.Si { op; d1 = m.d; b1 = m.b; i2 = imm })
          | _ ->
              let r = gen_int t addr in
              emit t (I.Si { op; d1 = 0; b1 = r; i2 = imm });
              free_gpr t r)
      | [ addr; el ] ->
          (* variable element: compute byte address and mask explicitly *)
          let m = gen_mem t addr in
          let re = gen_int t el in
          let rbyte = alloc_gpr t in
          let rmask = alloc_gpr t in
          emit t (rr "lr" rbyte re);
          emit t (shift "srl" rbyte 3);
          emit t (rx "n" re ~b:R.pr_base R.psa_seven);
          emit t (rr "xr" rmask rmask);
          emit t (rx "ic" rmask ~x:re ~b:R.pr_base R.psa_bitmasks_b);
          (if sym tr = "clear_bit_value" then
             emit t (rx "x" rmask ~b:R.pr_base R.psa_minus_one_loc));
          let rtmp = alloc_gpr t in
          emit t (rr "xr" rtmp rtmp);
          emit t (rx "ic" rtmp ~x:rbyte ~b:m.b m.d);
          emit t (rr (if sym tr = "set_bit_value" then "or" else "nr") rtmp rmask);
          emit t (rx "stc" rtmp ~x:rbyte ~b:m.b m.d);
          free_mem t m;
          free_gpr t re;
          free_gpr t rbyte;
          free_gpr t rmask;
          free_gpr t rtmp
      | _ -> err "baseline: malformed set op")
  | s -> err "baseline: unsupported statement operator %s" s

and alloc_scratch t =
  (* scratch for a possible long branch; freed immediately since the
     loader generator materializes it only inside the expansion *)
  let r = alloc_gpr t in
  free_gpr t r;
  r

(* -- whole programs --------------------------------------------------------------- *)

type result_t = {
  objmod : Machine.Objmod.t;
  resolved : Cogg.Loader_gen.resolved;
  listing : string;
  n_items : int;
}

let generate ?(name = "BASE") (trees : Tree.t list) : (result_t, string) result
    =
  let t = create () in
  (* the emitter's internal labels must not collide with user labels;
     Code_buffer keeps them in distinct namespaces already *)
  match List.iter (gen_stmt t) trees with
  | () -> (
      match Cogg.Loader_gen.to_objmod ~name t.buf with
      | Ok (objmod, resolved) ->
          Ok
            {
              objmod;
              resolved;
              listing = CB.to_listing t.buf;
              n_items = CB.length t.buf;
            }
      | Error m -> Error m)
  | exception Error m -> Error m
  | exception Cogg.Loader_gen.Resolve_error m -> Error m
