(** The code generator's register allocation routine (paper section 4.1).

    - [using] allocates any register of a class; [need] obtains a
      specific register, transferring its current contents to another
      register of the class if busy (the caller emits the [lr] and
      rebinds the translation stack).
    - Allocation is least-recently-used by a global usage index bumped at
      every reduction, "in an attempt to reduce operand contention in the
      pipeline"; round-robin and first-free strategies exist for the
      ablation benchmark.
    - Registers carry use counts: consuming an RHS occurrence decrements,
      pushing a result increments; a count of zero frees the register.
    - A register holding a common subexpression can be evicted (the
      caller stores it to the CSE's temporary); a register holding a live
      intermediate result cannot, and exhausting the pool on live values
      raises {!Pressure}. *)

(** The two register files of the 370. *)
type bank = Gp | Fp

val bank_of_class : Symtab.reg_class -> bank

type strategy = Lru | Round_robin | First_free

val strategy_name : strategy -> string

type config = {
  gpr_pool : int list;
  pair_pool : int list;  (** even members; the odd partner is implied *)
  fpr_pool : int list;
  fpair_pool : int list;  (** quad pairs: f and f+2 *)
}

val default_config : config
(** Pool matching the project's register conventions (r13 frame, r10 PSA,
    r12 code base, r0 zero, r14/r15 linkage via [need]). *)

type stats = {
  mutable n_allocs : int;
  mutable n_evictions : int;
  mutable n_transfers : int;
  mutable reuse_distances : int list;
      (** usage-index distance at allocation: the pipeline-contention
          proxy of the ablation benchmark *)
  mutable gp_peak : int;  (** most general registers ever busy at once *)
  mutable fp_peak : int;  (** most floating registers ever busy at once *)
}

type t = private {
  config : config;
  strategy : strategy;
  gprs : reg array;
  fprs : reg array;
  mutable global_index : int;
  mutable cursor : int;
  stats : stats;
}

and reg = {
  mutable busy : bool;
  mutable use_count : int;
  mutable usage_index : int;
  mutable cse : int option;
  mutable cse_shares : int;
}

exception Pressure of string
(** No register can be allocated: the pool holds only live values. *)

val create : ?config:config -> ?strategy:strategy -> unit -> t

val covered : Symtab.reg_class -> int -> int list
(** The physical registers an allocation of this class occupies. *)

val begin_reduction : t -> unit
(** Bump the global usage index; called once per reduction. *)

type evicted = { ev_cse : int; ev_reg : int }

val alloc : t -> Symtab.reg_class -> int * evicted option
(** [alloc t cls] returns an allocated register (the even one for pairs)
    and, when the pool was full, the CSE-bound register that was evicted
    to make room — the caller must store that register to the CSE's
    temporary before using the allocation.  Raises {!Pressure} when
    every register holds a live value. *)

type transfer = { tr_from : int; tr_to : int }

val need :
  t -> Symtab.reg_class -> int -> (transfer option * evicted option, string) result
(** [need t cls r] secures the specific register [r].  If busy, its
    contents move to a freshly allocated register of the class; the
    caller emits [lr to,from] and rebinds stack/CSE state. *)

val retain : ?count:int -> t -> bank -> int -> unit
(** Increment the use count (a result token referencing the register was
    pushed, or a CSE declared [count] future uses). *)

val release : t -> bank -> int -> unit
(** Decrement the use count; at zero the register is freed.  A no-op on
    dedicated (never-allocated) registers. *)

val consume_cse_share : t -> bank -> int -> unit
(** One reserved CSE use materializes: the share converts into the stack
    reference the caller is about to push. *)

val drop_cse_shares : t -> bank -> int -> unit
(** The register lost its CSE copy ([modifies]): the remaining uses will
    reload from the temporary. *)

val touch : t -> bank -> int -> int option
(** [modifies]: refresh the LRU stamp and report (and clear) any CSE
    binding so the caller can save it. *)

val bind_cse : ?shares:int -> t -> bank -> int -> int -> unit
val unbind_cse : t -> bank -> int -> unit
val is_busy : t -> bank -> int -> bool
val use_count : t -> bank -> int -> int

val busy_list : t -> bank -> int list
(** All currently busy pool registers (diagnostics / invariant tests). *)
