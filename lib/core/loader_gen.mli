(** The Loader Record Generator (paper sections 3 and 4.2).

    After all IF for a module has been processed, label references and
    branch instructions are resolved in a two-phase traversal of the
    dictionary and the object module's TEXT records are constructed.

    Branch targets are addressed off the code-base register, whose
    12-bit displacement reaches only the first 4096-byte page.  A branch
    whose target lies beyond needs the long form: an additional load
    establishing addressability (paper 4.2), here a load of the target
    offset from a literal pool placed at the head of the module.  Since
    lengthening a branch can push other targets across the page boundary
    (and grow the pool), sizing iterates to a fixpoint — the classical
    span-dependent-instruction algorithm the paper cites (Robertson;
    Leverett & Szymanski).

    The fixpoint is incremental: labels are interned to dense ids once,
    each pass is two array sweeps, the long-site count is maintained at
    widening, and emission encodes instructions directly into the result
    image. *)

type resolved = {
  code : Bytes.t;
  entry : int;  (** module-relative entry offset (after the literal pool) *)
  labels : (Code_buffer.label * int) list;  (** resolved label offsets *)
  n_sites : int;  (** branch/case-load sites *)
  n_long : int;  (** sites that needed the long form *)
  pool_words : int;  (** literal pool size *)
  iterations : int;  (** fixpoint iterations *)
}

exception Resolve_error of string
(** Undefined/duplicate label, literal pool overflow, or divergence.
    (A [Word_label] naming an undefined label is also diagnosed this
    way, where it previously escaped as [Not_found].) *)

val resolve :
  ?code_base:int -> ?target:Machine.Target.t -> Code_buffer.t -> resolved
(** Resolve labels and branch sites.  The target's {!Machine.Target.site_model}
    selects the resolution strategy: [Span_dependent] (the 370 short/long
    fixpoint above, the default) or [Pc_relative] (every site a fixed-width
    pc-relative instruction, no pool, single pass). *)

val to_objmod :
  ?name:string ->
  ?code_base:int ->
  ?target:Machine.Target.t ->
  Code_buffer.t ->
  (Machine.Objmod.t * resolved, string) result
(** Resolve and wrap into an object module. *)
