(** Compiled translation templates.

    "In the generated tables, the templates contain indices into the
    translation stack or the list of allocated registers to speed up the
    process of code emission" (paper section 2): every symbol reference
    [r.2] / [dsp.1] in a template is resolved *at table-construction time*
    to a stack slot, an allocated-register slot, a specific register or a
    literal.  The code emission routine never searches by name. *)

(** Where an operand value comes from at emission time. *)
type src =
  | Stack of int  (** payload of the k-th RHS token (0-based, from left) *)
  | Alloc of int  (** i-th [using]-allocated register (even one of a pair) *)
  | Phys of int  (** specific register obtained with [need] *)
  | Lit of int  (** literal or declared constant *)
  | Plus of src * int  (** partner register: odd of a pair, high of a quad *)

let rec pp_src ppf = function
  | Stack k -> Fmt.pf ppf "$%d" k
  | Alloc i -> Fmt.pf ppf "@%d" i
  | Phys r -> Fmt.pf ppf "r%d" r
  | Lit n -> Fmt.pf ppf "#%d" n
  | Plus (s, n) -> Fmt.pf ppf "%a+%d" pp_src s n

type operand = { base : src; subs : src list }

let pp_operand ppf o =
  match o.subs with
  | [] -> pp_src ppf o.base
  | subs ->
      Fmt.pf ppf "%a(%a)" pp_src o.base (Fmt.list ~sep:Fmt.comma pp_src) subs

(** A machine-instruction template with resolved operand sources. *)
type instr = { mnem : string; ops : operand list }

let pp_instr ppf i =
  Fmt.pf ppf "%s %a" i.mnem (Fmt.list ~sep:Fmt.comma pp_operand) i.ops

(** One interpreted step of a production's template sequence. *)
type step =
  | Instr of instr
  | Modifies of src
  | Ignore_lhs
  | Label_location of src
  | Label_ptr of src
  | Branch of { cond : src; lbl : src; idx : src }
  | Branch_indexed of { cond : src; lbl : src; idx : src; index : src }
  | Skip of { cond : src; dist : src; idx : src }
  | Case_load of { reg : src; lbl : src; idx : src }
  | Push of { sym : Grammar.sym; value : src }
      (** [push_odd]/[push_even]: prefix a converted register token *)
  | Ibm_length of src
  | Stmt_record of src
  | List_request of src
  | Abort of src
  | Common of {
      ty : Grammar.sym option;  (** IF type operator for reloads *)
      fp : bool;
      cse : src;
      cnt : src;
      reg : src;
      dsp : src;
      base : src;
    }
  | Find_common of { cse : src; fp : bool; push_sym : Grammar.sym }
      (** prefixes either the holding register (as a [push_sym] token) or
          the temporary's address tokens, depending on residence *)

type alloc_req = { a_class : Symtab.reg_class; a_name : string; a_idx : int }
type need_req = { n_class : Symtab.reg_class; n_reg : int }

(** A fully compiled production: registers to allocate up front, the
    template steps, and what to prefix back to the input stream. *)
type compiled = {
  c_prod : int;
  c_allocs : alloc_req array;
  c_needs : need_req array;
  c_steps : step array;
  c_push : push option;
}

and push = { push_sym : Grammar.sym; push_src : src }

type error = { line : int; msg : string }

let pp_error ppf (e : error) = Fmt.pf ppf "spec:%d: %s" e.line e.msg

exception Fail of error

let fail line fmt = Fmt.kstr (fun msg -> raise (Fail { line; msg })) fmt

(* -- compilation ----------------------------------------------------------- *)

type env = {
  grammar : Grammar.t;
  symtab : Symtab.t;
  rhs : (string * int, int) Hashtbl.t; (* (base, idx) -> stack slot *)
  rhs_syms : Spec_ast.ssym array;
  binds : (string * int, src) Hashtbl.t; (* using/need bindings *)
  mutable allocs : alloc_req list; (* reversed *)
  mutable needs : need_req list; (* reversed *)
  line : int;
}

let nt_class env line name =
  match Symtab.find env.symtab name with
  | Some (Symtab.Nonterminal c) -> c
  | Some other ->
      fail line "%s is %s, not a register non-terminal" name
        (Fmt.str "%a" Symtab.pp_info other)
  | None -> fail line "%s is not declared" name

let resolve_atom env line (a : Spec_ast.atom) : src =
  match a with
  | Anum n -> Lit n
  | Asym { base; idx = None } -> (
      match Symtab.find env.symtab base with
      | Some (Symtab.Constant v) -> Lit v
      | Some info ->
          fail line "%s is %s; only constants may appear un-indexed" base
            (Fmt.str "%a" Symtab.pp_info info)
      | None -> fail line "%s is not declared" base)
  | Asym { base; idx = Some i } -> (
      match Hashtbl.find_opt env.rhs (base, i) with
      | Some slot -> Stack slot
      | None -> (
          match Hashtbl.find_opt env.binds (base, i) with
          | Some src -> src
          | None -> fail line "%s.%d is not bound in this production" base i))

let resolve_operand env line (o : Spec_ast.operand) : operand =
  {
    base = resolve_atom env line o.o_base;
    subs = List.map (resolve_atom env line) o.o_subs;
  }

(* expected value kind of a stack slot, for static checking *)
let slot_kind env (s : src) : Symtab.value_kind option =
  match s with
  | Stack k -> (
      let sym = env.rhs_syms.(k) in
      match Symtab.find env.symtab sym.Spec_ast.base with
      | Some (Symtab.Terminal vk) -> Some vk
      | _ -> None)
  | _ -> None

let check_kind env line what expected (s : src) =
  match (slot_kind env s, s) with
  | Some k, _ when k <> expected ->
      fail line "%s operand must be a %a terminal, got %a" what
        Symtab.pp_value_kind expected Symtab.pp_value_kind k
  | None, Stack k -> (
      (* a non-terminal slot can never yield a label/cse/cond *)
      let sym = env.rhs_syms.(k) in
      match Symtab.find env.symtab sym.Spec_ast.base with
      | Some (Symtab.Nonterminal _) when expected <> Symtab.Kint ->
          fail line "%s operand must be a %a terminal, got non-terminal %s"
            what Symtab.pp_value_kind expected sym.Spec_ast.base
      | _ -> ())
  | _ -> ()

let check_register env line what (s : src) =
  match s with
  | Alloc _ | Phys _ | Plus _ -> ()
  | Stack k -> (
      let sym = env.rhs_syms.(k) in
      match Symtab.find env.symtab sym.Spec_ast.base with
      | Some (Symtab.Nonterminal _) -> ()
      | _ ->
          fail line "%s operand must be a register, got terminal %s" what
            sym.Spec_ast.base)
  | Lit _ -> fail line "%s operand must be a register, got a literal" what

let plain env line (t : Spec_ast.template) n k =
  match List.nth_opt t.t_operands k with
  | Some { o_base; o_subs = [] } -> resolve_atom env line o_base
  | Some _ -> fail line "%s: operand %d must not have sub-operands" t.t_op (k + 1)
  | None -> fail line "%s: expected %d operands" t.t_op n

let mem env line (t : Spec_ast.template) k =
  match List.nth_opt t.t_operands k with
  | Some o -> resolve_operand env line o
  | None -> fail line "%s: missing storage operand" t.t_op

let arity line (t : Spec_ast.template) n =
  if List.length t.t_operands <> n then
    fail line "%s: expected %d operands, got %d" t.t_op n
      (List.length t.t_operands)

(* validate machine-instruction operand shapes against the target's
   format tables (the target owns its architected formats) *)
let compile_machine_instr env line (target : Machine.Target.t)
    (t : Spec_ast.template) : instr =
  let ops = List.map (resolve_operand env line) t.t_operands in
  let nsubs = List.map (fun o -> List.length o.subs) ops in
  (match target.Machine.Target.validate ~mnem:t.t_op ~nsubs with
  | Ok () -> ()
  | Error msg -> fail line "%s" msg);
  { mnem = t.t_op; ops }

let lhs_push env (lhs : Spec_ast.ssym) : push option =
  match lhs with
  | { base = "lambda"; _ } -> None
  | { base; idx = Some i } -> (
      let sym =
        match Grammar.sym env.grammar base with
        | Some s -> s
        | None -> fail env.line "LHS %s is not a grammar symbol" base
      in
      match Hashtbl.find_opt env.rhs (base, i) with
      | Some slot -> Some { push_sym = sym; push_src = Stack slot }
      | None -> (
          match Hashtbl.find_opt env.binds (base, i) with
          | Some src -> Some { push_sym = sym; push_src = src }
          | None -> (
              (* type conversion: an RHS non-terminal with the same index *)
              let conv = ref None in
              Hashtbl.iter
                (fun (b, ix) slot ->
                  if ix = i && b <> base then
                    match Symtab.find env.symtab b with
                    | Some (Symtab.Nonterminal _) -> conv := Some slot
                    | _ -> ())
                env.rhs;
              match !conv with
              | Some slot -> Some { push_sym = sym; push_src = Stack slot }
              | None ->
                  fail env.line
                    "LHS %s.%d is neither in the RHS nor allocated with using/need"
                    base i)))
  | { base; idx = None } ->
      fail env.line "LHS %s must be indexed (or lambda)" base

let compile ?(target = Machine.Targets.default) ~(grammar : Grammar.t)
    ~(symtab : Symtab.t) ~(prod_id : int) (p : Spec_ast.production) :
    (compiled, error) result =
  try
    let rhs_syms = Array.of_list p.p_rhs in
    let rhs = Hashtbl.create 8 in
    Array.iteri
      (fun k (s : Spec_ast.ssym) ->
        match s.idx with
        | None -> () (* un-indexed RHS symbols carry no referenced value *)
        | Some i ->
            if Hashtbl.mem rhs (s.base, i) then
              fail p.p_line "%s.%d appears twice in the RHS" s.base i;
            Hashtbl.replace rhs (s.base, i) k)
      rhs_syms;
    let env =
      {
        grammar;
        symtab;
        rhs;
        rhs_syms;
        binds = Hashtbl.create 8;
        allocs = [];
        needs = [];
        line = p.p_line;
      }
    in
    (* pass 1: collect using/need bindings (allocation happens before any
       template is interpreted, paper section 4.1) *)
    let n_alloc = ref 0 in
    List.iter
      (fun (t : Spec_ast.template) ->
        match t.t_op with
        | "using" ->
            List.iter
              (fun (o : Spec_ast.operand) ->
                match o with
                | { o_base = Asym { base; idx = Some i }; o_subs = [] } ->
                    let cls = nt_class env t.t_line base in
                    if Hashtbl.mem env.rhs (base, i) then
                      fail t.t_line "using %s.%d: already bound in the RHS" base i;
                    if Hashtbl.mem env.binds (base, i) then
                      fail t.t_line "using %s.%d: already allocated" base i;
                    Hashtbl.replace env.binds (base, i) (Alloc !n_alloc);
                    env.allocs <-
                      { a_class = cls; a_name = base; a_idx = i } :: env.allocs;
                    incr n_alloc
                | _ -> fail t.t_line "using: operands must be nt.n symbols")
              t.t_operands
        | "need" ->
            List.iter
              (fun (o : Spec_ast.operand) ->
                match o with
                | { o_base = Asym { base; idx = Some i }; o_subs = [] } ->
                    let cls = nt_class env t.t_line base in
                    if Hashtbl.mem env.binds (base, i) then
                      fail t.t_line "need %s.%d: already bound" base i;
                    Hashtbl.replace env.binds (base, i) (Phys i);
                    env.needs <- { n_class = cls; n_reg = i } :: env.needs
                | _ -> fail t.t_line "need: operands must be nt.N symbols")
              t.t_operands
        | _ -> ())
      p.p_templates;
    (* pass 2: compile the remaining templates in order *)
    let ignore_lhs = ref false in
    let steps =
      List.concat_map
        (fun (t : Spec_ast.template) ->
          let line = t.t_line in
          match t.t_op with
          | "using" | "need" -> []
          | "modifies" ->
              List.map
                (fun (o : Spec_ast.operand) ->
                  let s = resolve_operand env line o in
                  check_register env line "modifies" s.base;
                  Modifies s.base)
                t.t_operands
          | "ignore_lhs" ->
              arity line t 0;
              if p.p_lhs.Spec_ast.base = "lambda" then
                fail line "ignore_lhs on a lambda production would lose the statement reduction";
              ignore_lhs := true;
              [ Ignore_lhs ]
          | "label_location" ->
              arity line t 1;
              let s = plain env line t 1 0 in
              check_kind env line "label_location" Symtab.Klabel s;
              [ Label_location s ]
          | "label_pntr" ->
              arity line t 1;
              let s = plain env line t 1 0 in
              check_kind env line "label_pntr" Symtab.Klabel s;
              [ Label_ptr s ]
          | "branch" ->
              arity line t 3;
              let cond = plain env line t 3 0 in
              let lbl = plain env line t 3 1 in
              let idx = plain env line t 3 2 in
              check_kind env line "branch label" Symtab.Klabel lbl;
              check_register env line "branch index" idx;
              [ Branch { cond; lbl; idx } ]
          | "branch_indexed" ->
              arity line t 4;
              let cond = plain env line t 4 0 in
              let lbl = plain env line t 4 1 in
              let idx = plain env line t 4 2 in
              let index = plain env line t 4 3 in
              check_kind env line "branch label" Symtab.Klabel lbl;
              [ Branch_indexed { cond; lbl; idx; index } ]
          | "skip" ->
              arity line t 3;
              let cond = plain env line t 3 0 in
              let dist = plain env line t 3 1 in
              let idx = plain env line t 3 2 in
              (match dist with
              | Lit n when n >= 1 -> ()
              | _ -> fail line "skip: distance must be a positive constant");
              [ Skip { cond; dist; idx } ]
          | "case_load" ->
              arity line t 3;
              let reg = plain env line t 3 0 in
              let lbl = plain env line t 3 1 in
              let idx = plain env line t 3 2 in
              check_register env line "case_load target" reg;
              check_kind env line "case_load label" Symtab.Klabel lbl;
              [ Case_load { reg; lbl; idx } ]
          | "push_odd" | "push_even" ->
              arity line t 1;
              let pair = plain env line t 1 0 in
              check_register env line t.t_op pair;
              let value = if t.t_op = "push_odd" then Plus (pair, 1) else pair in
              let sym =
                match Grammar.sym grammar p.p_lhs.Spec_ast.base with
                | Some s when p.p_lhs.Spec_ast.base <> "lambda" -> s
                | _ -> fail line "%s requires a register LHS" t.t_op
              in
              [ Push { sym; value } ]
          | "load_odd_addr" | "load_odd_full" | "load_odd_half" ->
              arity line t 2;
              let pair = plain env line t 2 0 in
              check_register env line t.t_op pair;
              let m = mem env line t 1 in
              let mnem =
                match t.t_op with
                | "load_odd_addr" -> "la"
                | "load_odd_full" -> "l"
                | _ -> "lh"
              in
              [
                Instr
                  {
                    mnem;
                    ops = [ { base = Plus (pair, 1); subs = [] }; m ];
                  };
              ]
          | "load_odd_reg" ->
              arity line t 2;
              let pair = plain env line t 2 0 in
              let r = plain env line t 2 1 in
              check_register env line t.t_op pair;
              check_register env line t.t_op r;
              [
                Instr
                  {
                    mnem = "lr";
                    ops =
                      [
                        { base = Plus (pair, 1); subs = [] };
                        { base = r; subs = [] };
                      ];
                  };
              ]
          | "load_extended" | "store_extended" ->
              arity line t 2;
              let pair = plain env line t 2 0 in
              check_register env line t.t_op pair;
              let m = mem env line t 1 in
              let m2 = { m with base = Plus (m.base, 8) } in
              let mnem = if t.t_op = "load_extended" then "ld" else "std" in
              [
                Instr { mnem; ops = [ { base = pair; subs = [] }; m ] };
                Instr
                  { mnem; ops = [ { base = Plus (pair, 2); subs = [] }; m2 ] };
              ]
          | "clear_extended" ->
              arity line t 1;
              let pair = plain env line t 1 0 in
              check_register env line t.t_op pair;
              let sub r =
                Instr
                  {
                    mnem = "sdr";
                    ops = [ { base = r; subs = [] }; { base = r; subs = [] } ];
                  }
              in
              [ sub pair; sub (Plus (pair, 2)) ]
          | "ibm_length" ->
              arity line t 1;
              [ Ibm_length (plain env line t 1 0) ]
          | "stmt_record" ->
              arity line t 1;
              [ Stmt_record (plain env line t 1 0) ]
          | "list_request" ->
              arity line t 1;
              [ List_request (plain env line t 1 0) ]
          | "abort" ->
              arity line t 1;
              [ Abort (plain env line t 1 0) ]
          | "full_common" | "half_common" | "byte_common" | "real_common"
          | "dreal_common" ->
              arity line t 5;
              let cse = plain env line t 5 0 in
              let cnt = plain env line t 5 1 in
              let reg = plain env line t 5 2 in
              let dsp = plain env line t 5 3 in
              let base = plain env line t 5 4 in
              check_kind env line "common cse" Symtab.Kcse cse;
              check_register env line "common register" reg;
              check_register env line "common base" base;
              let ty =
                Option.bind (Semops.common_type_operator t.t_op)
                  (Grammar.sym grammar)
              in
              let fp = t.t_op = "real_common" || t.t_op = "dreal_common" in
              [ Common { ty; fp; cse; cnt; reg; dsp; base } ]
          | "find_common" | "find_real_common" -> (
              (* the paper writes FIND_COMMON CSE.1,R.1; the register
                 operand is advisory (the CSE's current location decides
                 what is prefixed), so we accept and ignore it *)
              match t.t_operands with
              | [ _ ] | [ _; _ ] ->
                  let cse = plain env line t 1 0 in
                  check_kind env line "find_common" Symtab.Kcse cse;
                  let push_sym =
                    match Grammar.sym grammar p.p_lhs.Spec_ast.base with
                    | Some s when p.p_lhs.Spec_ast.base <> "lambda" -> s
                    | _ -> fail line "%s requires a register LHS" t.t_op
                  in
                  [
                    Find_common
                      { cse; fp = t.t_op = "find_real_common"; push_sym };
                  ]
              | _ -> fail line "%s: expected 1 or 2 operands" t.t_op)
          | op when target.Machine.Target.is_mnemonic op -> (
              match Symtab.find symtab op with
              | Some Symtab.Opcode ->
                  [ Instr (compile_machine_instr env line target t) ]
              | _ -> fail line "opcode %s is not declared in $Opcodes" op)
          | op -> fail line "unknown template operator %s" op)
        p.p_templates
    in
    (* "currently up to eight machine instructions may be emitted during a
       single reduction" (paper section 2) *)
    let n_instrs =
      List.length (List.filter (function Instr _ -> true | _ -> false) steps)
    in
    if n_instrs > 8 then
      fail p.p_line "template sequence emits %d instructions (maximum is 8)"
        n_instrs;
    let push = if !ignore_lhs then None else lhs_push env p.p_lhs in
    Ok
      {
        c_prod = prod_id;
        c_allocs = Array.of_list (List.rev env.allocs);
        c_needs = Array.of_list (List.rev env.needs);
        c_steps = Array.of_list steps;
        c_push = push;
      }
  with
  | Fail e -> Error e
  | Not_found -> Error { line = p.p_line; msg = "internal: unresolved symbol" }
