(** Parse (action) table construction with Graham-Glanville conflict
    resolution.

    The table is indexed by state and by *every* grammar symbol: in this
    scheme non-terminals are shifted like tokens (reductions prefix their
    LHS back onto the input stream, paper footnote 3), so the classical
    ACTION and GOTO tables collapse into one.

    Conflicts are resolved as Glanville prescribes for machine grammars:
    - shift/reduce: shift (maximal munch over addressing idioms);
    - reduce/reduce: the production with the longer RHS wins; ties go to
      the earlier declaration.
    All resolutions are recorded for reporting. *)

type action = Shift of int | Reduce of int | Accept | Error

type conflict = {
  c_state : int;
  c_sym : Grammar.sym;
  c_kind : [ `Shift_reduce | `Reduce_reduce ];
  c_chosen : action;
  c_dropped : action;
}

type t = {
  grammar : Grammar.t;
  automaton : Lr0.t;
  mode : Lookahead.mode;
  actions : action array array; (* state x symbol *)
  conflicts : conflict list;
}

let n_states t = Array.length t.actions
let action t state sym = t.actions.(state).(sym)

let pp_action g ppf = function
  | Shift s -> Fmt.pf ppf "s%d" s
  | Reduce p -> Fmt.pf ppf "r%d(%s)" p (Grammar.prod_to_string g (Grammar.prod g p))
  | Accept -> Fmt.pf ppf "acc"
  | Error -> Fmt.pf ppf "."

let pp_conflict g ppf c =
  Fmt.pf ppf "state %d on %s: %s; kept %a, dropped %a" c.c_state
    (Grammar.name g c.c_sym)
    (match c.c_kind with
    | `Shift_reduce -> "shift/reduce"
    | `Reduce_reduce -> "reduce/reduce")
    (pp_action g) c.c_chosen (pp_action g) c.c_dropped

(** Resolve two competing actions; returns (winner, conflict record). *)
let resolve g state sym a b : action * conflict option =
  if a = b then (a, None)
  else
    match (a, b) with
    | Error, x | x, Error -> (x, None)
    | Accept, x | x, Accept ->
        (* accept only competes on %eof; keep accept *)
        ( Accept,
          Some
            {
              c_state = state;
              c_sym = sym;
              c_kind = `Shift_reduce;
              c_chosen = Accept;
              c_dropped = x;
            } )
    | Shift s, Reduce r | Reduce r, Shift s ->
        ( Shift s,
          Some
            {
              c_state = state;
              c_sym = sym;
              c_kind = `Shift_reduce;
              c_chosen = Shift s;
              c_dropped = Reduce r;
            } )
    | Reduce p, Reduce q ->
        let len i = Array.length (Grammar.prod g i).rhs in
        let winner, loser =
          if len p > len q then (p, q)
          else if len q > len p then (q, p)
          else if p < q then (p, q)
          else (q, p)
        in
        ( Reduce winner,
          Some
            {
              c_state = state;
              c_sym = sym;
              c_kind = `Reduce_reduce;
              c_chosen = Reduce winner;
              c_dropped = Reduce loser;
            } )
    | Shift s1, Shift s2 ->
        (* impossible in a deterministic LR(0) automaton *)
        invalid_arg
          (Fmt.str "Parse_table.resolve: shift/shift %d/%d in state %d" s1 s2
             state)

let build ?pool ?(mode = Lookahead.Slr) (a : Lr0.t) : t =
  let g = a.Lr0.grammar in
  let an = Grammar.analyze g in
  let n_syms = Grammar.n_syms g in
  let reds = Lookahead.reductions ?pool a an mode in
  (* Each state's row depends only on that state's transitions and
     reductions, so the fill maps over the pool one state at a time.
     Conflicts are collected per state and concatenated in state order
     below, which makes both the table and the conflict report identical
     at any worker count (and to the sequential build: within a state,
     shifts apply before reductions, exactly as before). *)
  let fill (st : Lr0.state) =
    let row = Array.make n_syms Error in
    let conflicts = ref [] in
    let set sym act =
      let cur = row.(sym) in
      let winner, c = resolve g st.Lr0.id sym cur act in
      row.(sym) <- winner;
      match c with Some c -> conflicts := c :: !conflicts | None -> ()
    in
    (* shifts (including non-terminal "gotos") *)
    List.iter
      (fun (sym, dst) ->
        if sym = g.Grammar.eof then
          (* the goal item shifts eof; that is acceptance *)
          set sym Accept
        else set sym (Shift dst))
      st.Lr0.transitions;
    (* reductions *)
    List.iter
      (fun (p, las) ->
        Grammar.Symset.iter
          (fun sym ->
            if sym >= 0 && sym <> g.Grammar.goal then set sym (Reduce p))
          las)
      reds.(st.Lr0.id);
    (row, List.rev !conflicts)
  in
  let filled = Pool.maybe pool fill a.Lr0.states in
  let actions = Array.map fst filled in
  let conflicts = List.concat_map snd (Array.to_list filled) in
  { grammar = g; automaton = a; mode; actions; conflicts }

(** Number of non-error entries (the paper's "significant entries"),
    counted over the given symbol columns. *)
let significant_entries ?(cols = None) t =
  let keep =
    match cols with
    | None -> fun _ -> true
    | Some set -> fun s -> List.mem s set
  in
  Array.fold_left
    (fun acc row ->
      let c = ref 0 in
      Array.iteri (fun s a -> if keep s && a <> Error then incr c) row;
      acc + !c)
    0 t.actions
