(** Execution profiles of the generated code generator.

    A profile records, for one table bundle, how often the skeletal
    parser dispatched from each LR state ([state_visits]) and how often
    each production fired ([prod_fires]).  {!Driver.parse} fills one in
    when handed a collector; {!Compress.specialize} consumes one to lay
    the tables out hottest-first (Samuelsson's example-based table
    optimization, applied to Bird's code-generator tables).

    Profiles are plain mutable arrays: a collector is allocated per
    capture run by the caller and never shared between domains, so there
    is no toplevel accumulation state (see test/check_globals.sh).  The
    on-disk form is a versioned line-oriented text file — mergeable,
    diffable, and stable enough to check a default profile into the
    repository. *)

type t = {
  state_visits : int array;  (** per LR state: action lookups taken *)
  prod_fires : int array;  (** per production: reductions taken *)
}

(* Bump when the on-disk format changes incompatibly; [of_string]
   rejects any other version outright (a stale profile must never be
   half-read into a fresh layout). *)
let version = 1

let create ~n_states ~n_prods =
  { state_visits = Array.make n_states 0; prod_fires = Array.make n_prods 0 }

(** A profile that weights every state and production equally:
    specializing with it is dispatch-equivalent to not specializing
    (the property test's baseline). *)
let uniform ~n_states ~n_prods =
  { state_visits = Array.make n_states 1; prod_fires = Array.make n_prods 1 }

let n_states t = Array.length t.state_visits
let n_prods t = Array.length t.prod_fires

(** Does this profile fit a table bundle of the given dimensions?  A
    mismatch means the profile was captured against a different
    specification (or grammar revision) and must not drive its
    specialization. *)
let compatible t ~n_states:ns ~n_prods:np = n_states t = ns && n_prods t = np

(* The capture hot path: bounds-guarded so a profile captured against
   slightly different tables degrades to dropped samples, never a
   crash.  Plain (non-atomic) increments: a collector belongs to one
   capture run on one domain. *)
let visit t state =
  if state >= 0 && state < Array.length t.state_visits then
    t.state_visits.(state) <- t.state_visits.(state) + 1

let fire t prod =
  if prod >= 0 && prod < Array.length t.prod_fires then
    t.prod_fires.(prod) <- t.prod_fires.(prod) + 1

let total_visits t = Array.fold_left ( + ) 0 t.state_visits
let total_fires t = Array.fold_left ( + ) 0 t.prod_fires
let is_empty t = total_visits t = 0 && total_fires t = 0

(** [merge a b] sums two profiles of the same shape into a new one;
    profiles captured against different table dimensions do not merge. *)
let merge (a : t) (b : t) : (t, string) result =
  if n_states a <> n_states b || n_prods a <> n_prods b then
    Error
      (Fmt.str
         "profile shapes differ: %d states/%d prods vs %d states/%d prods"
         (n_states a) (n_prods a) (n_states b) (n_prods b))
  else
    Ok
      {
        state_visits =
          Array.init (n_states a) (fun i ->
              a.state_visits.(i) + b.state_visits.(i));
        prod_fires =
          Array.init (n_prods a) (fun i -> a.prod_fires.(i) + b.prod_fires.(i));
      }

(* -- hot-set comparison (profile drift detection) -----------------------------

   Specialization only reads the profile through its hot set (the top-k
   states by visit count) and relative production frequencies, so
   "drift" worth warning about is a change in *which* states are hot,
   not in the raw counts — a rerun of the same workload at a different
   scale has different counts but the identical hot set. *)

(** [hot_set ~k t] is the top-[k] states by visit count, hottest first,
    visited states only, ties broken by state id — exactly the set
    {!Compress.specialize} would promote to dense rows at that [k]. *)
let hot_set ~(k : int) (t : t) : int list =
  let n = Array.length t.state_visits in
  let idx = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      if t.state_visits.(a) <> t.state_visits.(b) then
        Int.compare t.state_visits.(b) t.state_visits.(a)
      else Int.compare a b)
    idx;
  let rec take i acc =
    if i >= min k n || t.state_visits.(idx.(i)) = 0 then List.rev acc
    else take (i + 1) (idx.(i) :: acc)
  in
  take 0 []

(** [hot_overlap ~k a b] is the Jaccard similarity of the two profiles'
    [k]-element hot sets: 1.0 when they agree exactly (or both are
    empty), approaching 0.0 as the hot states diverge.  Shape-agnostic:
    states are compared by id, so callers should check {!compatible}
    first if that matters. *)
let hot_overlap ~(k : int) (a : t) (b : t) : float =
  let sa = hot_set ~k a and sb = hot_set ~k b in
  let inter = List.length (List.filter (fun s -> List.mem s sb) sa) in
  let union = List.length sa + List.length sb - inter in
  if union = 0 then 1.0 else float_of_int inter /. float_of_int union

(* -- the on-disk form ---------------------------------------------------------

   cogprof 1
   states <n>
   prods <n>
   v <state> <count>     (sparse: only non-zero rows, ascending index)
   f <prod> <count>
   end

   Canonical (sorted, zero-suppressed), so [digest] is a stable content
   hash of the counts, independent of capture order. *)

let to_string (t : t) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "cogprof %d\n" version);
  Buffer.add_string b (Printf.sprintf "states %d\n" (n_states t));
  Buffer.add_string b (Printf.sprintf "prods %d\n" (n_prods t));
  Array.iteri
    (fun i c -> if c <> 0 then Buffer.add_string b (Printf.sprintf "v %d %d\n" i c))
    t.state_visits;
  Array.iteri
    (fun i c -> if c <> 0 then Buffer.add_string b (Printf.sprintf "f %d %d\n" i c))
    t.prod_fires;
  Buffer.add_string b "end\n";
  Buffer.contents b

(** Content digest of the canonical serialization; {!Tables_cache} mixes
    it into the bundle key so a changed profile can never load a stale
    specialization. *)
let digest (t : t) : string = Digest.to_hex (Digest.string (to_string t))

let of_string (s : string) : (t, string) result =
  let err fmt = Fmt.kstr (fun m -> Error ("cogprof: " ^ m)) fmt in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let int_of what v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> err "bad %s %S" what v
  in
  let ( let* ) = Result.bind in
  match lines with
  | header :: rest -> (
      let* ver =
        match String.split_on_char ' ' header with
        | [ "cogprof"; v ] -> int_of "version" v
        | _ -> err "bad header %S" header
      in
      if ver <> version then
        err "unsupported version %d (this build reads version %d)" ver version
      else
        match rest with
        | states_l :: prods_l :: body ->
            let* ns =
              match String.split_on_char ' ' states_l with
              | [ "states"; v ] -> int_of "state count" v
              | _ -> err "expected 'states <n>', got %S" states_l
            in
            let* np =
              match String.split_on_char ' ' prods_l with
              | [ "prods"; v ] -> int_of "production count" v
              | _ -> err "expected 'prods <n>', got %S" prods_l
            in
            let t = create ~n_states:ns ~n_prods:np in
            let rec fill = function
              | [] -> err "missing 'end' line"
              | [ "end" ] -> Ok t
              | line :: tl -> (
                  match String.split_on_char ' ' line with
                  | [ "v"; i; c ] ->
                      let* i = int_of "state index" i in
                      let* c = int_of "count" c in
                      if i >= ns then err "state index %d out of range" i
                      else begin
                        t.state_visits.(i) <- c;
                        fill tl
                      end
                  | [ "f"; i; c ] ->
                      let* i = int_of "production index" i in
                      let* c = int_of "count" c in
                      if i >= np then err "production index %d out of range" i
                      else begin
                        t.prod_fires.(i) <- c;
                        fill tl
                      end
                  | _ -> err "bad line %S" line)
            in
            fill body
        | _ -> err "truncated file")
  | [] -> err "empty file"

let save (path : string) (t : t) : (unit, string) result =
  try
    let oc = open_out_bin path in
    output_string oc (to_string t);
    close_out oc;
    Ok ()
  with Sys_error m -> Error m

let load (path : string) : (t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error m -> Error m

let pp ppf (t : t) =
  let nz a = Array.fold_left (fun n c -> if c <> 0 then n + 1 else n) 0 a in
  Fmt.pf ppf "profile: %d visits over %d/%d states, %d fires over %d/%d prods"
    (total_visits t) (nz t.state_visits) (n_states t) (total_fires t)
    (nz t.prod_fires) (n_prods t)
