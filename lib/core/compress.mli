(** Parse-table compression.

    Two classical techniques, composable (the paper's "compressed" table
    of Table 2 notes its tables are "by no means minimally compressed"):

    - default reductions: the most common reduce action of a row becomes
      the row default, removing those entries (error detection is delayed
      by at most a few reductions, never lost);
    - row-displacement ("comb") packing with row sharing: identical rows
      collapse, and distinct rows overlay into one value array with a
      one-byte column-check array (sound because distinct rows take
      distinct offsets).

    Plus one profile-guided layout ({!specialize}): the hottest states by
    measured visit count get dense flat rows probed in O(1) with no
    check, the cold tail stays comb-packed, and default reductions are
    chosen by measured production frequency. *)

type method_ =
  | No_compression
  | Defaults_only
  | Comb_only
  | Defaults_and_comb
  | Hybrid
      (** profile-specialized: hot states dense in [hot_value], cold
          states comb-packed with frequency-chosen defaults; built by
          {!specialize}, never by {!compress} *)

val encode_action : Parse_table.action -> int
(** 16-bit entry encoding: 0 = error, 1 = accept, even = shift, odd =
    reduce. *)

val decode_action : int -> Parse_table.action

type t = {
  n_states : int;
  n_syms : int;
  method_ : method_;
  row_index : int array;  (** state -> shared row id *)
  defaults : int array;  (** per-row default entry (encoded) *)
  offsets : int array;  (** per-row displacement into value/check *)
  value : int array;
  check : int array;
  hot_index : int array;
      (** state -> offset of its dense row in [hot_value], or -1; empty
          unless [method_ = Hybrid] *)
  hot_value : int array;
      (** dense hot rows, [n_syms] entries each, hottest first; each row
          bakes in its comb answer (explicit entries over the row
          default), so hybrid and comb dispatch agree entry-for-entry *)
  size_bytes : int;  (** the Table-2 size accounting *)
}

val uncompressed_bytes : Parse_table.t -> int
(** One 16-bit entry per (state, symbol) pair: the flat table. *)

val compress : ?pool:Pool.t -> ?method_:method_ -> Parse_table.t -> t
(** [?pool] parallelizes the per-state row extraction and the per-row
    packing prep; the first-fit placement itself is sequential, so the
    packed table is byte-identical at any worker count.  Raises
    [Invalid_argument] on [~method_:Hybrid] — that layout needs a
    profile; use {!specialize}. *)

val default_hot_k : int
(** How many of the most-visited states {!specialize} promotes to dense
    rows when [?hot_k] is not given. *)

val specialize :
  ?pool:Pool.t ->
  ?hot_k:int ->
  ?size_budget:int ->
  profile:Cogprof.t ->
  Parse_table.t ->
  t
(** [specialize ~profile pt] is the profile-guided hybrid layout: the
    hottest states by recorded visit count (visited states only) get
    dense O(1) rows; the rest comb-pack densest-and-hottest-first, with
    rows probed only by hot states dropped from the comb entirely; row
    defaults are chosen by recorded production frequency (falling back
    to static cell counts on ties, so a {!Cogprof.uniform} profile
    yields a table dispatch-equivalent to [compress]).

    The hot-state count: an explicit [?hot_k] is used as-is (clamped to
    the visited prefix); otherwise, when [?size_budget] (bytes) is
    given, the largest count whose laid-out [size_bytes] fits the
    budget is chosen by binary search — when even zero hot states
    overshoot (tiny budget), the zero-hot layout is returned, so the
    result is always defined; with neither, {!default_hot_k} applies.
    Deterministic: same table + same profile + same arguments =
    byte-identical layout at any worker count. *)

val action_code : t -> int -> int -> int
(** [action_code c state sym] is the O(1) runtime probe: row_index ->
    offset -> value/check, falling back to the row default on a check
    miss (hot hybrid states: one dense read).  Returns the raw encoded
    entry (no allocation); this is what {!Driver.parse} dispatches on. *)

val dispatcher : t -> int -> int -> int
(** [dispatcher c] is [action_code c] with the table's arrays and method
    dispatch resolved once, for the driver's inner loop. *)

val action : t -> int -> int -> Parse_table.action
(** [action c state sym] is [action_code] decoded. *)

val lookup : t -> state:int -> sym:int -> Parse_table.action
(** Table lookup through the compressed representation. *)

val verify : t -> Parse_table.t -> (int, string) result
(** Check that the compressed table reproduces the original exactly,
    modulo default reductions replacing errors (which only delay error
    detection); returns the number of such softened entries. *)
