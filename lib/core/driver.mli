(** The skeletal LR parser driving the generated code generator
    (paper section 3).

    The parser consumes the linearized IF.  On a reduction it calls the
    code emission routine, which returns the tokens to prefix back onto
    the input stream (normally the production's LHS bound to the result
    register; possibly a converted odd register or a CSE's location).
    Because non-terminal tokens are shifted like any others, no separate
    GOTO table exists. *)

type dispatch =
  | Flat  (** index the uncompressed [action array array] directly *)
  | Comb
      (** probe the comb-packed table carried in {!Tables.t}
          ({!Compress.action_code}); the default, and the production
          configuration of the paper's Table 2 *)
  | Hybrid
      (** probe the profile-specialized hybrid table ([Tables.hybrid]):
          hot states answer from dense flat rows in one read, cold
          states fall back to the comb probe; when the bundle carries
          no hybrid table, degrades to the comb table (same answers) *)

type ptoken = { psym : Grammar.sym; pvalue : Ifl.Value.t }
(** A {e prepared} IF token: the grammar symbol id (interned once, at
    stream preparation or directly by the emitter) and the coerced
    attribute value.  The parse inner loop and the [reduce] callback
    trade exclusively in this representation — no string hashing and no
    token-record allocation on the shift path. *)

val ptok : ?value:Ifl.Value.t -> Grammar.sym -> ptoken
(** [ptok ?value sym] is [{ psym = sym; pvalue = value }] ([value]
    defaults to [Unit]). *)

type error = {
  position : int;
      (** index into the {e original} input of the offending token (the
          next original token still unconsumed when the parse blocked).
          Reduction-prefixed tokens do not advance it, so Flat and Comb
          dispatch agree on it even when default reductions delay the
          detection. *)
  state : int;
  token : Ifl.Token.t option;  (** [None] at end of input *)
  msg : string;
  expected : string list;
      (** symbols with an action in the blocked state, capped at 13
          entries during construction (the printer shows 12) *)
  bogus_reductions : int;
      (** reductions taken since the last {e original} input token was
          consumed: under Comb dispatch, how far default reductions
          (and the synthetic shifts they interleave) ran past the point
          where Flat dispatch would have stopped *)
}

val pp_error : Format.formatter -> error -> unit

type outcome = { reductions : int; shifts : int; max_stack : int }

val parse :
  ?dispatch:dispatch ->
  ?profile:Cogprof.t ->
  Tables.t ->
  reduce:
    (prod:int ->
    rhs:ptoken array ->
    remap:((ptoken -> ptoken) -> unit) ->
    ptoken list) ->
  Ifl.Token.t list ->
  (outcome, error) result
(** [parse ?dispatch tables ~reduce input] runs the table-driven parse.

    [dispatch] selects the action source (default [Comb]).  All sources
    run the same skeleton over array-backed stacks and take identical
    actions on well-formed IF; comb and hybrid dispatch may delay (never
    lose) error detection on malformed IF, because default reductions
    stand in for error entries.

    [profile] is a {!Cogprof.t} collector: when given, every action
    lookup records a visit of its state and every reduction records a
    fire of its production.  The collector is plain mutable state — use
    one per capture run, never across domains.

    [input] is prepared in a single pass before the loop starts: each
    token's [sym] string is interned to its grammar id, the integer
    coercions are applied and the value discipline checked {e once}, so
    the inner loop works on int-indexed tokens.  Ill-formed tokens are
    still reported only when the skeleton reaches them, with the same
    position, state and message as per-step checking produced.

    [reduce ~prod ~rhs ~remap] is the code emission routine: [rhs] holds
    the popped translation-stack tokens; [remap] lets the emitter rewrite
    register bindings on the live stack and pending input (needed when a
    [need] directive transfers a busy register); the returned tokens are
    prefixed to the input (first element consumed first) and must carry
    interned symbol ids.

    Input tokens are type-checked against the specification: terminals
    must carry their declared value kind, register non-terminals a
    register binding (integer payloads are coerced for shaper
    convenience). *)
