(** Monotonic observability counters (the aggregate side of the
    observability layer; {!Trace} holds the event side).

    Counters are registered once, at module-initialization time, with
    [sum] (additive across domains) or [high_water] (merged by maximum).
    Recording is a plain array store into a per-domain buffer obtained
    through [Domain.DLS]: no locks, no atomics on the hot path, and a
    single [Atomic.get] when disabled — which is why instrumented modules
    can afford to flush their already-accumulated local statistics once
    per compile.

    Domain-merge semantics: each domain's buffer is registered (under a
    mutex) the first time that domain records anything, and the buffer
    outlives the domain, so a [snapshot] taken after a {!Pool} region has
    joined sees every worker's contribution.  [snapshot] itself merges by
    counter kind — [Sum] adds, [Max] takes the maximum — giving one
    aggregate row per counter regardless of how many domains ran.

    Reads race benignly with a domain that is still recording (int stores
    are atomic in OCaml); deterministic snapshots are obtained by
    snapshotting only at quiescence, which every sink in this repository
    does (after the batch, after the parallel region joined). *)

type kind = Sum | Max

type counter = int
(* an index into every per-domain buffer *)

type def = { d_name : string; d_kind : kind }

type registry = {
  mutable defs : def array;
  mutable n : int;
  mutable buffers : int array ref list;
      (** one cell per domain that ever recorded; grown in place *)
}

let mu = Mutex.create ()
let registry = { defs = [||]; n = 0; buffers = [] }
let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register kind name : counter =
  locked (fun () ->
      (* idempotent: re-registering a name returns the existing id *)
      let existing = ref None in
      Array.iteri
        (fun i d -> if d.d_name = name then existing := Some i)
        registry.defs;
      match !existing with
      | Some i -> i
      | None ->
          let id = registry.n in
          let defs = Array.make (id + 1) { d_name = name; d_kind = kind } in
          Array.blit registry.defs 0 defs 0 id;
          registry.defs <- defs;
          registry.n <- id + 1;
          id)

let sum name = register Sum name
let high_water name = register Max name
let name (c : counter) = registry.defs.(c).d_name

(* per-domain buffer, registered on first use and grown on demand (a
   counter can be registered after a domain's buffer was sized) *)
let dls : int array ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [||])

let buffer_for (c : counter) : int array =
  let cell = Domain.DLS.get dls in
  if Array.length !cell <= c then
    locked (fun () ->
        let n = max registry.n (c + 1) in
        let narr = Array.make n 0 in
        Array.blit !cell 0 narr 0 (Array.length !cell);
        if Array.length !cell = 0 then registry.buffers <- cell :: registry.buffers;
        cell := narr);
  !cell

let add (c : counter) (n : int) =
  if Atomic.get enabled_flag && n <> 0 then begin
    let b = buffer_for c in
    b.(c) <- b.(c) + n
  end

let peak (c : counter) (v : int) =
  if Atomic.get enabled_flag then begin
    let b = buffer_for c in
    if v > b.(c) then b.(c) <- v
  end

let snapshot () : (string * int) list =
  locked (fun () ->
      let acc = Array.make registry.n 0 in
      List.iter
        (fun cell ->
          Array.iteri
            (fun i v ->
              if i < registry.n then
                match registry.defs.(i).d_kind with
                | Sum -> acc.(i) <- acc.(i) + v
                | Max -> if v > acc.(i) then acc.(i) <- v)
            !cell)
        registry.buffers;
      Array.to_list (Array.mapi (fun i v -> (registry.defs.(i).d_name, v)) acc)
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let reset () =
  locked (fun () ->
      List.iter (fun cell -> Array.fill !cell 0 (Array.length !cell) 0)
        registry.buffers)

let pp_table ppf (rows : (string * int) list) =
  List.iter
    (fun (n, v) -> if v <> 0 then Fmt.pf ppf "%-34s %14d@." n v)
    rows
