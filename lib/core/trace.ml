(** Structured tracing: spans and instant events in Chrome trace-event
    form (the event side of the observability layer; {!Metrics} holds the
    aggregates).

    Events accumulate in per-domain buffers ([Domain.DLS]) registered
    under a mutex on first use; like {!Metrics} buffers they outlive
    their domain, so a batch fanned over a {!Pool} traces correctly —
    [write_json] after the region has joined merges every worker's
    events into one timestamp-sorted stream, with the domain id as the
    [tid] so Perfetto/about:tracing lays workers out as separate rows.

    When disabled (the default) every entry point is a single relaxed
    [Atomic.get] and no event is allocated. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (** ['X'] complete span, ['i'] instant *)
  ev_ts : float;  (** microseconds since the trace epoch *)
  ev_dur : float;  (** microseconds; 0 for instants *)
  ev_tid : int;  (** domain id *)
  ev_args : (string * string) list;
}

type buffer = { b_tid : int; mutable b_events : event list }
type registry = { mutable buffers : buffer list }

let mu = Mutex.create ()
let registry = { buffers = [] }
let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let set_enabled b =
  if b && Atomic.get epoch = 0.0 then Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag
let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

let dls : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { b_tid = (Domain.self () :> int); b_events = [] } in
      locked (fun () -> registry.buffers <- b :: registry.buffers);
      b)

let record ev =
  let b = Domain.DLS.get dls in
  b.b_events <- ev :: b.b_events

let instant ?(cat = "cogg") ?(args = []) name =
  if enabled () then
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = now_us ();
        ev_dur = 0.0;
        ev_tid = (Domain.self () :> int);
        ev_args = args;
      }

(* one registration per phase name; spans are coarse (per compile phase),
   so the mutex'd lookup inside Metrics.sum is off any hot path *)
let span_metric name = Metrics.sum ("phase." ^ name ^ ".us")

let with_span ?(cat = "cogg") ?(args = []) name (f : unit -> 'a) : 'a =
  let t_on = enabled () and m_on = Metrics.enabled () in
  if not (t_on || m_on) then f ()
  else begin
    let t0 = now_us () in
    let finish extra =
      let dur = now_us () -. t0 in
      if t_on then
        record
          {
            ev_name = name;
            ev_cat = cat;
            ev_ph = 'X';
            ev_ts = t0;
            ev_dur = dur;
            ev_tid = (Domain.self () :> int);
            ev_args = args @ extra;
          };
      if m_on then Metrics.add (span_metric name) (int_of_float dur)
    in
    match f () with
    | v ->
        finish [];
        v
    | exception e ->
        finish [ ("error", Printexc.to_string e) ];
        raise e
  end

let events () : event list =
  locked (fun () ->
      List.concat_map (fun b -> b.b_events) registry.buffers
      |> List.stable_sort (fun a b -> compare (a.ev_ts, a.ev_dur) (b.ev_ts, b.ev_dur)))

let event_count () =
  locked (fun () ->
      List.fold_left (fun n b -> n + List.length b.b_events) 0 registry.buffers)

let clear () = locked (fun () -> List.iter (fun b -> b.b_events <- []) registry.buffers)

(* -- Chrome trace-event JSON ------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_json b (e : event) =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f"
       (json_escape e.ev_name) (json_escape e.ev_cat) e.ev_ph e.ev_ts);
  if e.ev_ph = 'X' then Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" e.ev_dur);
  if e.ev_ph = 'i' then Buffer.add_string b ",\"s\":\"t\"";
  Buffer.add_string b (Printf.sprintf ",\"pid\":0,\"tid\":%d" e.ev_tid);
  (match e.ev_args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_json_string () : string =
  let evs = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      event_to_json b e)
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json_string ()))
