(** Sharded, content-addressed, in-memory result cache.

    The compile service's second cache tier: where {!Tables_cache}
    amortizes table {e construction} across processes, this caches the
    {e output} of individual compilations within a long-lived process,
    keyed by a content digest of (table identity, option fingerprint,
    source text).  Because every compile is deterministic (the fuzz
    subsystem's byte-identical-recompile oracle), a cached value is
    exactly what a fresh compile would produce — the service still
    gates hits against that property (see [Serve]).

    The table is sharded: each key hashes to one of [shards] buckets,
    each with its own mutex, hash table and insertion-order queue, so
    concurrent lookups from a {!Pool}'s domains contend only when they
    collide on a shard.  Each shard holds at most
    [capacity / shards] entries; inserting past that evicts the
    shard's oldest entry (insertion order, FIFO).

    Hit/miss/eviction counts are kept per instance (atomics, readable
    any time) and mirrored into the {!Metrics} registry
    ([result_cache.hits]/[.misses]/[.evictions]) when that subsystem
    is enabled. *)

type 'v t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : ?shards:int -> capacity:int -> unit -> 'v t
(** [create ~capacity ()] makes an empty cache holding at most
    [capacity] entries overall (rounded up to a multiple of [shards];
    at least one entry per shard).  [shards] defaults to 16 and is
    clamped to [1, 256]. *)

val find : 'v t -> string -> 'v option
(** Look the key up in its shard, bumping the hit or miss counter. *)

val store : 'v t -> string -> 'v -> unit
(** Insert (or replace) the key's value, evicting the shard's oldest
    entries if it is full.  Replacement keeps the key's original age. *)

val remove : 'v t -> string -> unit
(** Drop the key if present (the service uses this to expel an entry
    that failed the determinism gate). *)

val length : 'v t -> int
(** Current number of entries, summed over the shards. *)

val stats : 'v t -> stats
(** Snapshot of this instance's counters.  Safe from any domain. *)
