(** Content hashes over a specification at per-production granularity —
    the change-detection substrate of incremental table construction
    (DESIGN.md §12).

    [decls] digests the names, in declaration order, of the sections the
    grammar interns symbols from; equal digests guarantee stable symbol
    ids, which makes previously compiled templates splice-safe.
    [shape] digests the (lhs, rhs) base-name sequence of the productions
    — the exact input of LR(0) construction — so equal [decls] + [shape]
    license reusing the previous automaton, action table and comb
    packing wholesale.  [prods.(i)] digests production [i]'s symbol
    occurrences, template lines and {!Symtab.scope_of_production} slice;
    source line numbers are excluded throughout, so edits that merely
    shift later productions do not invalidate them. *)

type t = {
  decls : string;  (** id-assignment digest (hex) *)
  shape : string;  (** grammar-shape digest (hex) *)
  prods : string array;  (** per-user-production content digest (hex) *)
}

val of_spec : Symtab.t -> Spec_ast.t -> t

val production_hash : Symtab.t -> Spec_ast.production -> string
(** The content digest of one production: grammar signature, template
    body, and the symbol-table slice it reads. *)

val changed : previous:t -> t -> int list
(** Indices of current productions whose hash differs from [previous]
    (including all indices past the shorter array). *)
