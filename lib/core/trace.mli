(** Structured tracing in Chrome trace-event form.

    Spans and instant events accumulate in per-domain buffers that
    outlive their domains, so tracing a batch fanned over a {!Pool}
    works: serialize after the parallel region joins and every worker's
    events appear, keyed by domain id.  All entry points are no-ops
    (one relaxed atomic load) when tracing is disabled, the default. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (** ['X'] complete span, ['i'] instant *)
  ev_ts : float;  (** microseconds since the trace epoch *)
  ev_dur : float;  (** microseconds; 0 for instants *)
  ev_tid : int;  (** domain id *)
  ev_args : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording one complete ('X') event
    covering its execution (tagged with ["error"] if [f] raises, then
    re-raised).  Also accumulates the duration into the
    ["phase.<name>.us"] {!Metrics} counter when metrics are enabled —
    with or without tracing, so [--stats] alone reports phase times. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a zero-duration ('i') event. *)

val events : unit -> event list
(** All recorded events, merged across domains, sorted by timestamp. *)

val event_count : unit -> int
val clear : unit -> unit

val to_json_string : unit -> string
(** The merged events as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]), loadable in about:tracing / Perfetto. *)

val write_json : string -> unit
