(** CoGG's top level: specification text -> driving tables.

    [build] performs the whole pipeline: parse the specification, build
    the typed symbol table, construct the grammar and its LR automaton,
    resolve conflicts, and compile every template. *)

type error = { line : int; msg : string }

let pp_error ppf e =
  if e.line > 0 then Fmt.pf ppf "spec:%d: %s" e.line e.msg
  else Fmt.pf ppf "spec: %s" e.msg

let lift_parse (e : Spec_parse.error) = { line = e.Spec_parse.line; msg = e.Spec_parse.msg }
let lift_symtab (e : Symtab.error) = { line = e.Symtab.line; msg = e.Symtab.msg }
let lift_template (e : Template.error) = { line = e.Template.line; msg = e.Template.msg }

let ( let* ) = Result.bind

(** Build the grammar from a checked specification. *)
let grammar_of_spec (symtab : Symtab.t) (spec : Spec_ast.t) :
    (Grammar.t, error list) result =
  let b = Grammar.builder () in
  List.iter
    (fun (name, _cls) -> ignore (Grammar.declare_nonterminal b name))
    symtab.Symtab.nonterminals;
  List.iter
    (fun (name, _k) -> ignore (Grammar.declare_terminal b name))
    symtab.Symtab.terminals;
  List.iter
    (fun name -> ignore (Grammar.declare_terminal b name))
    symtab.Symtab.operators;
  let errs = ref [] in
  let err line fmt = Fmt.kstr (fun msg -> errs := { line; msg } :: !errs) fmt in
  let sym_of line (s : Spec_ast.ssym) ~lhs =
    let name = s.Spec_ast.base in
    if lhs && name = Grammar.lambda_name then
      Some (Grammar.declare_nonterminal ~in_if:false b Grammar.lambda_name)
    else
      match Symtab.find symtab name with
      | Some (Symtab.Nonterminal _) when lhs -> Some (Grammar.intern b name)
      | Some (Symtab.Nonterminal _ | Symtab.Terminal _ | Symtab.Operator)
        when not lhs ->
          Some (Grammar.intern b name)
      | Some info ->
          err line "%s (%s) cannot appear %s a production" name
            (Fmt.str "%a" Symtab.pp_info info)
            (if lhs then "as the LHS of" else "in");
          None
      | None ->
          err line "%s is not declared" name;
          None
  in
  List.iter
    (fun (p : Spec_ast.production) ->
      let lhs = sym_of p.p_line p.p_lhs ~lhs:true in
      let rhs = List.map (sym_of p.p_line ~lhs:false) p.p_rhs in
      match (lhs, List.for_all Option.is_some rhs) with
      | Some lhs, true ->
          Grammar.add_prod b ~lhs
            ~rhs:(Array.of_list (List.map Option.get rhs))
            ~line:p.p_line
      | _ -> ())
    spec.Spec_ast.productions;
  if !errs <> [] then Error (List.rev !errs) else Ok (Grammar.finish b)

let build ?pool ?(mode = Lookahead.Slr) ?(profile : Cogprof.t option)
    ?(target = Machine.Targets.default) (spec : Spec_ast.t) :
    (Tables.t, error list) result =
  let* symtab =
    Result.map_error (fun e -> [ lift_symtab e ]) (Symtab.of_spec ~target spec)
  in
  let* grammar = grammar_of_spec symtab spec in
  let automaton = Lr0.build grammar in
  let parse = Parse_table.build ?pool ~mode automaton in
  (* compile templates; production ids follow declaration order.  Each
     template compiles independently, so the list fans out over the pool;
     results and errors are merged back in declaration order. *)
  let n_user = List.length spec.Spec_ast.productions in
  let compiled = Array.make (Grammar.n_prods grammar) None in
  let template_results =
    Pool.maybe pool
      (fun (i, (p : Spec_ast.production)) ->
        Template.compile ~target ~grammar ~symtab ~prod_id:i p)
      (Array.of_list (List.mapi (fun i p -> (i, p)) spec.Spec_ast.productions))
  in
  let errs = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Ok c -> compiled.(i) <- Some c
      | Error e -> errs := lift_template e :: !errs)
    template_results;
  if !errs <> [] then Error (List.rev !errs)
  else begin
    let n = Grammar.n_syms grammar in
    let class_of = Array.make n None in
    let kind_of = Array.make n None in
    List.iter
      (fun (name, cls) ->
        match Grammar.sym grammar name with
        | Some s -> class_of.(s) <- Some cls
        | None -> ())
      symtab.Symtab.nonterminals;
    List.iter
      (fun (name, k) ->
        match Grammar.sym grammar name with
        | Some s -> kind_of.(s) <- Some k
        | None -> ())
      symtab.Symtab.terminals;
    let compressed =
      Compress.compress ?pool ~method_:Compress.Defaults_and_comb parse
    in
    Ok
      {
        Tables.target;
        grammar;
        symtab;
        parse;
        compressed;
        hybrid =
          (* the profile-specialized layout rides alongside the comb
             table, sized adaptively: as many hot states as fit in 110%
             of the comb table's bytes.  Profile access in [specialize]
             is bounds-guarded, so a profile captured against other
             tables degrades to an unhelpful (never unsound)
             specialization *)
          Option.map
            (fun p ->
              Compress.specialize ?pool
                ~size_budget:(compressed.Compress.size_bytes * 110 / 100)
                ~profile:p parse)
            profile;
        compiled;
        n_user_prods = n_user;
        class_of;
        kind_of;
        hashes = Spec_hash.of_spec symtab spec;
        profile_digest = Option.map Cogprof.digest profile;
      }
  end

(* -- incremental rebuilds ---------------------------------------------------- *)

type incr_stats = {
  spliced_tables : bool;
      (** automaton, action table, conflicts and comb packing were
          reused wholesale from the previous build *)
  templates_reused : int;
  templates_recompiled : int;
}

let pp_incr_stats ppf (s : incr_stats) =
  Fmt.pf ppf "%s; templates: %d reused, %d recompiled"
    (if s.spliced_tables then "tables spliced" else "tables rebuilt")
    s.templates_reused s.templates_recompiled

let scratch_stats n =
  { spliced_tables = false; templates_reused = 0; templates_recompiled = n }

(** Rebuild the bundle for [spec], splicing in whatever [previous] (a
    build of an earlier revision of the same spec, same target and
    lookahead mode) still covers:

    - same declaration structure ([Spec_hash.decls]) keeps symbol ids
      stable, so any production whose content hash is unchanged reuses
      its previously compiled template (rebound to its new id);
    - same grammar shape ([Spec_hash.shape]) additionally reuses the
      LR(0) automaton, action table, conflict log and comb packing
      wholesale — comb packing is a global first-fit, so it is reused
      all-or-nothing, never partially repacked;
    - the hybrid table is spliced only when the requested profile
      digests identically to the one the previous build specialized
      against.

    Anything the previous build cannot cover (different target, shifted
    symbol ids, a previous bundle with inconsistent metadata) falls back
    to a full {!build}.  In every case the result is byte-identical
    ({!Tables_io.write}) to a from-scratch build of [spec] at any worker
    count — splicing changes how the bytes are obtained, never which
    bytes. *)
let build_incremental ?pool ?(mode = Lookahead.Slr)
    ?(profile : Cogprof.t option) ?(target = Machine.Targets.default)
    ~(previous : Tables.t) (spec : Spec_ast.t) :
    (Tables.t * incr_stats, error list) result =
  let n_user = List.length spec.Spec_ast.productions in
  let fallback () =
    Result.map
      (fun t -> (t, scratch_stats n_user))
      (build ?pool ~mode ?profile ~target spec)
  in
  if
    previous.Tables.target.Machine.Target.name
    <> target.Machine.Target.name
    || previous.Tables.parse.Parse_table.mode <> mode
    || Array.length previous.Tables.hashes.Spec_hash.prods
       <> previous.Tables.n_user_prods
  then fallback ()
  else
    let* symtab =
      Result.map_error
        (fun e -> [ lift_symtab e ])
        (Symtab.of_spec ~target spec)
    in
    let* grammar = grammar_of_spec symtab spec in
    let hashes = Spec_hash.of_spec symtab spec in
    let prev_h = previous.Tables.hashes in
    if
      hashes.Spec_hash.decls <> prev_h.Spec_hash.decls
      || grammar.Grammar.names
         <> previous.Tables.grammar.Grammar.names
    then
      (* symbol ids shifted: neither templates nor tables are reusable *)
      fallback ()
    else begin
      (* symbol ids are stable, so compiled templates transfer across
         the edit wherever the production's content hash still matches;
         assign reuse sources sequentially (a hash can legitimately
         repeat — duplicated productions — so sources are consumed
         first-come in declaration order, deterministically), then fan
         the residual compiles out over the pool. *)
      let sources : (string, int Queue.t) Hashtbl.t = Hashtbl.create 64 in
      Array.iteri
        (fun j h ->
          match previous.Tables.compiled.(j) with
          | Some _ ->
              let q =
                match Hashtbl.find_opt sources h with
                | Some q -> q
                | None ->
                    let q = Queue.create () in
                    Hashtbl.add sources h q;
                    q
              in
              Queue.add j q
          | None -> ())
        prev_h.Spec_hash.prods;
      let plan =
        List.mapi
          (fun i (p : Spec_ast.production) ->
            match Hashtbl.find_opt sources hashes.Spec_hash.prods.(i) with
            | Some q when not (Queue.is_empty q) -> (i, p, Some (Queue.pop q))
            | _ -> (i, p, None))
          spec.Spec_ast.productions
      in
      let n_reused =
        List.length (List.filter (fun (_, _, r) -> r <> None) plan)
      in
      let template_results =
        Pool.maybe pool
          (fun (i, (p : Spec_ast.production), reuse) ->
            match reuse with
            | Some j ->
                let c = Option.get previous.Tables.compiled.(j) in
                Ok { c with Template.c_prod = i }
            | None -> Template.compile ~target ~grammar ~symtab ~prod_id:i p)
          (Array.of_list plan)
      in
      let compiled = Array.make (Grammar.n_prods grammar) None in
      let errs = ref [] in
      Array.iteri
        (fun i r ->
          match r with
          | Ok c -> compiled.(i) <- Some c
          | Error e -> errs := lift_template e :: !errs)
        template_results;
      if !errs <> [] then Error (List.rev !errs)
      else begin
        let splice = hashes.Spec_hash.shape = prev_h.Spec_hash.shape in
        let parse =
          if splice then
            (* same shape + same ids: LR construction and conflict
               resolution read nothing else, so the previous rows are
               exactly what a fresh build would produce.  The automaton
               is re-anchored on the new grammar (production line
               numbers may have moved); its states may be skeletal when
               [previous] came off disk, which is all the driver needs. *)
            {
              Parse_table.grammar;
              automaton =
                {
                  Lr0.grammar;
                  states =
                    previous.Tables.parse.Parse_table.automaton.Lr0.states;
                  start =
                    previous.Tables.parse.Parse_table.automaton.Lr0.start;
                };
              mode;
              actions = previous.Tables.parse.Parse_table.actions;
              conflicts = previous.Tables.parse.Parse_table.conflicts;
            }
          else Parse_table.build ?pool ~mode (Lr0.build grammar)
        in
        let compressed =
          if splice then previous.Tables.compressed
          else Compress.compress ?pool ~method_:Compress.Defaults_and_comb parse
        in
        let profile_digest = Option.map Cogprof.digest profile in
        let hybrid =
          Option.map
            (fun p ->
              match previous.Tables.hybrid with
              | Some h
                when splice && previous.Tables.profile_digest = profile_digest
                ->
                  h
              | _ ->
                  Compress.specialize ?pool
                    ~size_budget:(compressed.Compress.size_bytes * 110 / 100)
                    ~profile:p parse)
            profile
        in
        let n = Grammar.n_syms grammar in
        let class_of = Array.make n None in
        let kind_of = Array.make n None in
        List.iter
          (fun (name, cls) ->
            match Grammar.sym grammar name with
            | Some s -> class_of.(s) <- Some cls
            | None -> ())
          symtab.Symtab.nonterminals;
        List.iter
          (fun (name, k) ->
            match Grammar.sym grammar name with
            | Some s -> kind_of.(s) <- Some k
            | None -> ())
          symtab.Symtab.terminals;
        Ok
          ( {
              Tables.target;
              grammar;
              symtab;
              parse;
              compressed;
              hybrid;
              compiled;
              n_user_prods = n_user;
              class_of;
              kind_of;
              hashes;
              profile_digest;
            },
            {
              spliced_tables = splice;
              templates_reused = n_reused;
              templates_recompiled = n_user - n_reused;
            } )
      end
    end

let build_incremental_string ?pool ?mode ?profile ?target ~previous
    (text : string) : (Tables.t * incr_stats, error list) result =
  let* spec =
    Result.map_error (fun e -> [ lift_parse e ]) (Spec_parse.of_string text)
  in
  build_incremental ?pool ?mode ?profile ?target ~previous spec

let build_string ?pool ?mode ?profile ?target (text : string) :
    (Tables.t, error list) result =
  let* spec =
    Result.map_error (fun e -> [ lift_parse e ]) (Spec_parse.of_string text)
  in
  build ?pool ?mode ?profile ?target spec

let build_file ?pool ?mode ?profile ?target (path : string) :
    (Tables.t, error list) result =
  let* spec =
    Result.map_error (fun e -> [ lift_parse e ]) (Spec_parse.of_file path)
  in
  build ?pool ?mode ?profile ?target spec
