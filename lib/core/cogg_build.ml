(** CoGG's top level: specification text -> driving tables.

    [build] performs the whole pipeline: parse the specification, build
    the typed symbol table, construct the grammar and its LR automaton,
    resolve conflicts, and compile every template. *)

type error = { line : int; msg : string }

let pp_error ppf e =
  if e.line > 0 then Fmt.pf ppf "spec:%d: %s" e.line e.msg
  else Fmt.pf ppf "spec: %s" e.msg

let lift_parse (e : Spec_parse.error) = { line = e.Spec_parse.line; msg = e.Spec_parse.msg }
let lift_symtab (e : Symtab.error) = { line = e.Symtab.line; msg = e.Symtab.msg }
let lift_template (e : Template.error) = { line = e.Template.line; msg = e.Template.msg }

let ( let* ) = Result.bind

(** Build the grammar from a checked specification. *)
let grammar_of_spec (symtab : Symtab.t) (spec : Spec_ast.t) :
    (Grammar.t, error list) result =
  let b = Grammar.builder () in
  List.iter
    (fun (name, _cls) -> ignore (Grammar.declare_nonterminal b name))
    symtab.Symtab.nonterminals;
  List.iter
    (fun (name, _k) -> ignore (Grammar.declare_terminal b name))
    symtab.Symtab.terminals;
  List.iter
    (fun name -> ignore (Grammar.declare_terminal b name))
    symtab.Symtab.operators;
  let errs = ref [] in
  let err line fmt = Fmt.kstr (fun msg -> errs := { line; msg } :: !errs) fmt in
  let sym_of line (s : Spec_ast.ssym) ~lhs =
    let name = s.Spec_ast.base in
    if lhs && name = Grammar.lambda_name then
      Some (Grammar.declare_nonterminal ~in_if:false b Grammar.lambda_name)
    else
      match Symtab.find symtab name with
      | Some (Symtab.Nonterminal _) when lhs -> Some (Grammar.intern b name)
      | Some (Symtab.Nonterminal _ | Symtab.Terminal _ | Symtab.Operator)
        when not lhs ->
          Some (Grammar.intern b name)
      | Some info ->
          err line "%s (%s) cannot appear %s a production" name
            (Fmt.str "%a" Symtab.pp_info info)
            (if lhs then "as the LHS of" else "in");
          None
      | None ->
          err line "%s is not declared" name;
          None
  in
  List.iter
    (fun (p : Spec_ast.production) ->
      let lhs = sym_of p.p_line p.p_lhs ~lhs:true in
      let rhs = List.map (sym_of p.p_line ~lhs:false) p.p_rhs in
      match (lhs, List.for_all Option.is_some rhs) with
      | Some lhs, true ->
          Grammar.add_prod b ~lhs
            ~rhs:(Array.of_list (List.map Option.get rhs))
            ~line:p.p_line
      | _ -> ())
    spec.Spec_ast.productions;
  if !errs <> [] then Error (List.rev !errs) else Ok (Grammar.finish b)

let build ?pool ?(mode = Lookahead.Slr) ?(profile : Cogprof.t option)
    ?(target = Machine.Targets.default) (spec : Spec_ast.t) :
    (Tables.t, error list) result =
  let* symtab =
    Result.map_error (fun e -> [ lift_symtab e ]) (Symtab.of_spec ~target spec)
  in
  let* grammar = grammar_of_spec symtab spec in
  let automaton = Lr0.build grammar in
  let parse = Parse_table.build ?pool ~mode automaton in
  (* compile templates; production ids follow declaration order.  Each
     template compiles independently, so the list fans out over the pool;
     results and errors are merged back in declaration order. *)
  let n_user = List.length spec.Spec_ast.productions in
  let compiled = Array.make (Grammar.n_prods grammar) None in
  let template_results =
    Pool.maybe pool
      (fun (i, (p : Spec_ast.production)) ->
        Template.compile ~target ~grammar ~symtab ~prod_id:i p)
      (Array.of_list (List.mapi (fun i p -> (i, p)) spec.Spec_ast.productions))
  in
  let errs = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Ok c -> compiled.(i) <- Some c
      | Error e -> errs := lift_template e :: !errs)
    template_results;
  if !errs <> [] then Error (List.rev !errs)
  else begin
    let n = Grammar.n_syms grammar in
    let class_of = Array.make n None in
    let kind_of = Array.make n None in
    List.iter
      (fun (name, cls) ->
        match Grammar.sym grammar name with
        | Some s -> class_of.(s) <- Some cls
        | None -> ())
      symtab.Symtab.nonterminals;
    List.iter
      (fun (name, k) ->
        match Grammar.sym grammar name with
        | Some s -> kind_of.(s) <- Some k
        | None -> ())
      symtab.Symtab.terminals;
    let compressed =
      Compress.compress ?pool ~method_:Compress.Defaults_and_comb parse
    in
    Ok
      {
        Tables.target;
        grammar;
        symtab;
        parse;
        compressed;
        hybrid =
          (* the profile-specialized layout rides alongside the comb
             table, sized adaptively: as many hot states as fit in 110%
             of the comb table's bytes.  Profile access in [specialize]
             is bounds-guarded, so a profile captured against other
             tables degrades to an unhelpful (never unsound)
             specialization *)
          Option.map
            (fun p ->
              Compress.specialize ?pool
                ~size_budget:(compressed.Compress.size_bytes * 110 / 100)
                ~profile:p parse)
            profile;
        compiled;
        n_user_prods = n_user;
        class_of;
        kind_of;
      }
  end

let build_string ?pool ?mode ?profile ?target (text : string) :
    (Tables.t, error list) result =
  let* spec =
    Result.map_error (fun e -> [ lift_parse e ]) (Spec_parse.of_string text)
  in
  build ?pool ?mode ?profile ?target spec

let build_file ?pool ?mode ?profile ?target (path : string) :
    (Tables.t, error list) result =
  let* spec =
    Result.map_error (fun e -> [ lift_parse e ]) (Spec_parse.of_file path)
  in
  build ?pool ?mode ?profile ?target spec
