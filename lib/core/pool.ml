(** Domain pool: long-lived workers, chunked atomic work claiming,
    exception-safe join.

    One parallel region runs at a time (regions are serialized by the
    submitting domain).  A region is announced by bumping [epoch]; every
    worker runs the region's body exactly once and reports back through
    [active], so the submitter can wait for quiescence.  The body itself
    distributes elements by chunked [Atomic.fetch_and_add] claiming, so
    scheduling never influences which output slot an element lands in —
    determinism reduces to the determinism of the mapped function.

    Nested regions (calling [map] from inside a mapped function on the
    same pool) are not supported: pass [None] further down instead, which
    every [?pool] consumer treats as the sequential fallback. *)

type t = {
  size : int;  (** total parallelism, caller included *)
  mutex : Mutex.t;
  work : Condition.t;  (** signalled when a new epoch begins *)
  idle : Condition.t;  (** signalled when the last worker finishes *)
  mutable job : (unit -> unit) option;
  mutable epoch : int;
  mutable active : int;  (** workers still inside the current epoch *)
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

exception Worker_failed of int

let () =
  Printexc.register_printer (function
    | Worker_failed i ->
        Some
          (Printf.sprintf
             "Cogg.Pool.Worker_failed: a worker exited without placing a \
              result for input index %d"
             i)
    | _ -> None)

let worker t () =
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.shutdown) && t.epoch = !my_epoch do
      Condition.wait t.work t.mutex
    done;
    if t.shutdown then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      my_epoch := t.epoch;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      (* the job never raises: [map] catches inside the chunk loop *)
      job ();
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex
    end
  done

let create ?domains () =
  let requested =
    match domains with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  let size = max 1 (min requested 128) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      epoch = 0;
      active = 0;
      shutdown = false;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

(* Run [body] on every domain of the pool (caller included) and wait for
   all of them.  [body] must not raise. *)
let run t (body : unit -> unit) =
  if t.size = 1 then body ()
  else begin
    Mutex.lock t.mutex;
    t.job <- Some body;
    t.active <- t.size - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    body ();
    Mutex.lock t.mutex;
    while t.active > 0 do
      Condition.wait t.idle t.mutex
    done;
    t.job <- None;
    Mutex.unlock t.mutex
  end

let map (type a b) (t : t) (f : a -> b) (arr : a array) : b array =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.size = 1 || n = 1 then Array.map f arr
  else begin
    let out : b option array = Array.make n None in
    let err : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let next = Atomic.make 0 in
    let chunk = max 1 (n / (t.size * 8)) in
    let body () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get err <> None then continue := false
        else begin
          let stop = min n (start + chunk) in
          try
            for i = start to stop - 1 do
              out.(i) <- Some (f arr.(i))
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            (* keep the first failure; losers of the race are dropped *)
            ignore (Atomic.compare_and_set err None (Some (e, bt)));
            continue := false
        end
      done
    in
    run t body;
    (* every worker has joined: the region is over whether it failed or
       not, so re-raising here leaves the pool reusable *)
    match Atomic.get err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        (* a hole here means a worker died without reporting an exception
           (e.g. the domain was killed abnormally): name the input it
           abandoned instead of tripping an anonymous assertion *)
        Array.mapi
          (fun i v ->
            match v with Some v -> v | None -> raise (Worker_failed i))
          out
  end

let maybe pool f arr =
  match pool with None -> Array.map f arr | Some t -> map t f arr

let run_parallel t (thunks : (int -> unit) array) =
  ignore (map t (fun i -> thunks.(i) i) (Array.init (Array.length thunks) Fun.id))

let shutdown t =
  Mutex.lock t.mutex;
  t.shutdown <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
