(** The complete table bundle produced by CoGG: the driving tables for the
    skeletal parser plus the compiled templates and the type information
    the runtime needs (paper section 2). *)

type t = {
  target : Machine.Target.t;
      (** the machine substrate this bundle's templates emit for *)
  grammar : Grammar.t;
  symtab : Symtab.t;
  parse : Parse_table.t;
  compressed : Compress.t;
      (** the comb-packed (defaults + row displacement) form of [parse],
          built once at table-construction time; the driver's default
          dispatch path probes this representation *)
  hybrid : Compress.t option;
      (** the profile-specialized hybrid (hot-flat / cold-comb) form,
          present only when the bundle was built with a profile
          ({!Compress.specialize}); [Driver.parse ~dispatch:Hybrid]
          probes it and falls back to [compressed] when absent *)
  compiled : Template.compiled option array;
      (** per production id; [None] for the augmentation productions *)
  n_user_prods : int;
  class_of : Symtab.reg_class option array;  (** by grammar symbol *)
  kind_of : Symtab.value_kind option array;  (** by grammar symbol *)
  hashes : Spec_hash.t;
      (** per-production content hashes of the spec this bundle was
          built from — the partial-build state an incremental rebuild
          diffs against; persisted in the bundle (format v5) *)
  profile_digest : string option;
      (** {!Cogprof.digest} of the profile behind [hybrid], when the
          bundle carries one; an incremental rebuild only splices the
          hybrid table when the requested profile digests identically *)
}

let class_of t sym = t.class_of.(sym)
let kind_of t sym = t.kind_of.(sym)

let is_user_prod t p = p < t.n_user_prods

let compiled t p =
  if p < Array.length t.compiled then t.compiled.(p) else None

(** Register bank a grammar symbol's values live in. *)
let bank_of t sym : Regalloc.bank option =
  Option.map Regalloc.bank_of_class (class_of t sym)

let conflicts t = t.parse.Parse_table.conflicts
