(** Content hashes over a specification at per-production granularity.

    Three digests drive the incremental table builder ({!Cogg_build}):

    - [decls] covers the names, in declaration order, of the three
      sections the grammar interns symbols from (non-terminals,
      terminals, operators).  Equal digests guarantee that the grammar
      assigns every symbol the same id, which is what makes a compiled
      template from a previous build splice-safe: template steps refer
      to symbols by id.
    - [shape] covers the (lhs, rhs) base-name sequence of every
      production — exactly the input LR(0) construction and conflict
      resolution see.  Equal [decls] and [shape] mean the automaton,
      the action table, the conflict log and the comb packing of the
      previous build are byte-for-byte what a fresh build would
      produce.
    - [prods.(i)] covers user production [i] in full: LHS/RHS symbol
      occurrences (with their [.n] indices), every template line, and
      the slice of the symbol table the production reads — its
      {!Symtab.scope_of_production}.  A production whose hash is
      unchanged compiles to an identical template (modulo the
      production id), so the previous build's compiled form is reused.

    Source line numbers are deliberately excluded everywhere: an edit
    that only shifts later productions down a line must not invalidate
    them. *)

type t = {
  decls : string;  (** id-assignment digest (hex) *)
  shape : string;  (** grammar-shape digest (hex) *)
  prods : string array;  (** per-user-production content digest (hex) *)
}

let feed_sep buf = Buffer.add_char buf '\x00'

let feed_ssym buf (s : Spec_ast.ssym) =
  Buffer.add_string buf s.Spec_ast.base;
  (match s.Spec_ast.idx with
  | None -> ()
  | Some i -> Buffer.add_string buf (Printf.sprintf ".%d" i));
  feed_sep buf

let feed_atom buf = function
  | Spec_ast.Asym s -> feed_ssym buf s
  | Spec_ast.Anum n ->
      Buffer.add_string buf (Printf.sprintf "#%d" n);
      feed_sep buf

let feed_operand buf (o : Spec_ast.operand) =
  feed_atom buf o.Spec_ast.o_base;
  Buffer.add_char buf '(';
  List.iter (feed_atom buf) o.Spec_ast.o_subs;
  Buffer.add_char buf ')'

let feed_template buf (tm : Spec_ast.template) =
  Buffer.add_string buf tm.Spec_ast.t_op;
  feed_sep buf;
  List.iter (feed_operand buf) tm.Spec_ast.t_operands;
  Buffer.add_char buf '\n'

let feed_info buf = function
  | None -> Buffer.add_char buf '?'
  | Some info ->
      Buffer.add_string buf (Fmt.str "%a" Symtab.pp_info info)

let production_hash (symtab : Symtab.t) (p : Spec_ast.production) : string =
  let buf = Buffer.create 256 in
  feed_ssym buf p.Spec_ast.p_lhs;
  Buffer.add_string buf "::=";
  List.iter (feed_ssym buf) p.Spec_ast.p_rhs;
  Buffer.add_char buf '\n';
  List.iter (feed_template buf) p.Spec_ast.p_templates;
  Buffer.add_string buf "--scope--\n";
  List.iter
    (fun (name, info) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      feed_info buf info;
      feed_sep buf)
    (Symtab.scope_of_production symtab p);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let decls_digest (symtab : Symtab.t) : string =
  let buf = Buffer.create 512 in
  List.iter
    (fun (n, _) ->
      Buffer.add_string buf n;
      feed_sep buf)
    symtab.Symtab.nonterminals;
  Buffer.add_char buf '\n';
  List.iter
    (fun (n, _) ->
      Buffer.add_string buf n;
      feed_sep buf)
    symtab.Symtab.terminals;
  Buffer.add_char buf '\n';
  List.iter
    (fun n ->
      Buffer.add_string buf n;
      feed_sep buf)
    symtab.Symtab.operators;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let shape_digest (spec : Spec_ast.t) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (p : Spec_ast.production) ->
      Buffer.add_string buf p.Spec_ast.p_lhs.Spec_ast.base;
      Buffer.add_string buf "::=";
      List.iter
        (fun (s : Spec_ast.ssym) ->
          Buffer.add_string buf s.Spec_ast.base;
          feed_sep buf)
        p.Spec_ast.p_rhs;
      Buffer.add_char buf '\n')
    spec.Spec_ast.productions;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let of_spec (symtab : Symtab.t) (spec : Spec_ast.t) : t =
  {
    decls = decls_digest symtab;
    shape = shape_digest spec;
    prods =
      Array.of_list
        (List.map (production_hash symtab) spec.Spec_ast.productions);
  }

(** Indices of productions whose hash differs from [previous] (including
    every index past the shorter array): the changed set an incremental
    rebuild must recompute. *)
let changed ~(previous : t) (current : t) : int list =
  let n = Array.length current.prods in
  let m = Array.length previous.prods in
  List.filter
    (fun i -> i >= m || current.prods.(i) <> previous.prods.(i))
    (List.init n Fun.id)
