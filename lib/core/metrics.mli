(** Monotonic observability counters.

    Counters are registered once at module-initialization time and
    recorded into per-domain buffers ([Domain.DLS]); buffers outlive
    their domains, so a {!snapshot} taken after a {!Pool} region has
    joined aggregates every worker's contribution.  Recording is a no-op
    (one relaxed [Atomic.get]) when the subsystem is disabled, which is
    the default. *)

type counter

val sum : string -> counter
(** Register (idempotently) an additive counter: domains' values are
    summed at snapshot time. *)

val high_water : string -> counter
(** Register (idempotently) a high-water mark: domains' values are
    merged by maximum at snapshot time. *)

val name : counter -> string

val set_enabled : bool -> unit
val enabled : unit -> bool

val add : counter -> int -> unit
(** Add to the calling domain's buffer.  No-op when disabled. *)

val peak : counter -> int -> unit
(** Raise the calling domain's high-water mark to at least [v].  No-op
    when disabled. *)

val snapshot : unit -> (string * int) list
(** Merged view over every domain that ever recorded, one row per
    registered counter, sorted by name.  Deterministic when taken at
    quiescence (no parallel region in flight). *)

val reset : unit -> unit
(** Zero every domain's buffer. *)

val pp_table : Format.formatter -> (string * int) list -> unit
(** Render a snapshot as the [--stats] table (zero rows suppressed). *)
