(** Sharded, content-addressed, in-memory result cache (see the mli).

    Domain-safety: every mutable structure (hash table, FIFO queue)
    lives inside a shard and is touched only under that shard's mutex;
    the counters are atomics.  Nothing here is toplevel mutable state —
    instances are created per service. *)

type 'v shard = {
  lock : Mutex.t;
  tbl : (string, 'v) Hashtbl.t;
  order : string Queue.t;
      (** insertion order; may carry stale keys for entries that were
          [remove]d — eviction skips keys no longer in [tbl] *)
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

type 'v t = {
  shards : 'v shard array;
  shard_capacity : int;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_evictions : int Atomic.t;
}

(* process-wide observability mirror (enabled Metrics only); instance
   stats stay exact regardless *)
let m_hits = Metrics.sum "result_cache.hits"
let m_misses = Metrics.sum "result_cache.misses"
let m_evictions = Metrics.sum "result_cache.evictions"

let create ?(shards = 16) ~capacity () : 'v t =
  let shards = max 1 (min 256 shards) in
  let shard_capacity = max 1 ((capacity + shards - 1) / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 64;
            order = Queue.create ();
          });
    shard_capacity;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_evictions = Atomic.make 0;
  }

let shard_of (t : 'v t) (key : string) : 'v shard =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let with_lock (s : 'v shard) (f : unit -> 'a) : 'a =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let find (t : 'v t) (key : string) : 'v option =
  let s = shard_of t key in
  let r = with_lock s (fun () -> Hashtbl.find_opt s.tbl key) in
  (match r with
  | Some _ ->
      Atomic.incr t.n_hits;
      Metrics.add m_hits 1
  | None ->
      Atomic.incr t.n_misses;
      Metrics.add m_misses 1);
  r

(* under the shard lock: pop insertion order until the table fits,
   skipping stale queue entries left behind by [remove]/replacement *)
let rec evict_to_fit (t : 'v t) (s : 'v shard) =
  if Hashtbl.length s.tbl > t.shard_capacity then begin
    match Queue.take_opt s.order with
    | None -> () (* impossible: tbl keys are a subset of queued keys *)
    | Some old ->
        if Hashtbl.mem s.tbl old then begin
          Hashtbl.remove s.tbl old;
          Atomic.incr t.n_evictions;
          Metrics.add m_evictions 1
        end;
        evict_to_fit t s
  end

let store (t : 'v t) (key : string) (v : 'v) : unit =
  let s = shard_of t key in
  with_lock s (fun () ->
      if Hashtbl.mem s.tbl key then Hashtbl.replace s.tbl key v
      else begin
        Hashtbl.replace s.tbl key v;
        Queue.add key s.order;
        evict_to_fit t s
      end)

let remove (t : 'v t) (key : string) : unit =
  let s = shard_of t key in
  with_lock s (fun () -> Hashtbl.remove s.tbl key)

let length (t : 'v t) : int =
  Array.fold_left
    (fun acc s -> acc + with_lock s (fun () -> Hashtbl.length s.tbl))
    0 t.shards

let stats (t : 'v t) : stats =
  {
    hits = Atomic.get t.n_hits;
    misses = Atomic.get t.n_misses;
    evictions = Atomic.get t.n_evictions;
    entries = length t;
  }
