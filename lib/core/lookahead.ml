(** Reduce lookahead computation: SLR(1) and LALR(1).

    SLR uses FOLLOW sets.  LALR lookaheads are computed with the
    spontaneous-generation / propagation algorithm (Dragon book 4.63)
    over the LR(0) automaton, using a sentinel lookahead [#].

    Both modes are per-state data-parallel in their expensive phase (the
    SLR map over states; the LALR discovery of spontaneous lookaheads and
    propagation links), so [reductions] accepts an optional {!Pool}.  Each
    state's computation is the same sequential code at any worker count
    and the merge walks states in index order, so the result is
    independent of the pool size.  Hash tables are specialized to packed
    integer keys (items, and (state, item) pairs) — the polymorphic
    hash/equality on tuples otherwise shows up in the LALR profile. *)

module Symset = Grammar.Symset

type mode = Slr | Lalr

let sentinel = -1

(* Fibonacci-style multiplicative hash: items and packed (state, item)
   keys are small dense ints, which the identity hash would cluster. *)
module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) (b : int) = a = b
  let hash x = x * 0x9e3779b1 land 0x3fffffff
end)

(* LR(1) closure over (item -> lookahead set), as a fixpoint. *)
let closure1 (g : Grammar.t) (an : Grammar.analysis)
    (init : (Lr0.item * Symset.t) list) : Symset.t Int_tbl.t =
  let sets : Symset.t Int_tbl.t = Int_tbl.create 32 in
  let work = Queue.create () in
  let add item la =
    let cur = Option.value (Int_tbl.find_opt sets item) ~default:Symset.empty in
    let merged = Symset.union cur la in
    if not (Symset.equal cur merged) then begin
      Int_tbl.replace sets item merged;
      Queue.add item work
    end
  in
  List.iter (fun (i, la) -> add i la) init;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    let la = Int_tbl.find sets i in
    let p = Grammar.prod g (Lr0.item_prod i) in
    let dot = Lr0.item_dot i in
    if dot < Array.length p.rhs then begin
      let b = p.rhs.(dot) in
      if g.Grammar.is_nonterminal.(b) then begin
        let fst, nullable = Grammar.first_of_seq an p.rhs ~from:(dot + 1) in
        let new_la = if nullable then Symset.union fst la else fst in
        List.iter
          (fun pid -> add (Lr0.item ~prod:pid ~dot:0) new_la)
          g.Grammar.by_lhs.(b)
      end
    end
  done;
  sets

(** LALR kernel lookaheads, keyed by [state * item_bound + item]. *)
let lalr_kernel_lookaheads ?pool (a : Lr0.t) (an : Grammar.analysis) :
    int * Symset.t Int_tbl.t =
  let g = a.Lr0.grammar in
  let item_bound = Grammar.n_prods g lsl Lr0.dot_bits in
  let key state item = (state * item_bound) + item in
  (* per-state discovery: for each kernel item, the spontaneous
     lookaheads it generates and the kernel items it propagates to.
     Pure per state, so it maps over the pool; the merge below walks the
     per-state results in state order, making the link-table layout (and
     hence everything downstream) independent of the worker count. *)
  let discover (st : Lr0.state) =
    let spont = ref [] and links = ref [] in
    Array.iter
      (fun k ->
        let cl = closure1 g an [ (k, Symset.singleton sentinel) ] in
        let my_links = ref [] in
        Int_tbl.iter
          (fun i iset ->
            let p = Grammar.prod g (Lr0.item_prod i) in
            let dot = Lr0.item_dot i in
            if dot < Array.length p.rhs then begin
              let x = p.rhs.(dot) in
              match Lr0.goto st x with
              | None -> ()
              | Some s' ->
                  let adv = Lr0.item ~prod:(Lr0.item_prod i) ~dot:(dot + 1) in
                  let s = Symset.remove sentinel iset in
                  if not (Symset.is_empty s) then
                    spont := (key s' adv, s) :: !spont;
                  if Symset.mem sentinel iset then
                    my_links := key s' adv :: !my_links
            end)
          cl;
        if !my_links <> [] then links := (key st.Lr0.id k, !my_links) :: !links)
      st.Lr0.kernel;
    (List.rev !spont, List.rev !links)
  in
  let discovered = Pool.maybe pool discover a.Lr0.states in
  let la : Symset.t Int_tbl.t = Int_tbl.create 256 in
  let links : int list Int_tbl.t = Int_tbl.create 256 in
  let get k = Option.value (Int_tbl.find_opt la k) ~default:Symset.empty in
  (* initial: goal item gets eof *)
  let goal_item = a.Lr0.states.(a.Lr0.start).Lr0.kernel.(0) in
  Int_tbl.replace la (key a.Lr0.start goal_item) (Symset.singleton g.Grammar.eof);
  Array.iter
    (fun (spont, lks) ->
      List.iter (fun (k, s) -> Int_tbl.replace la k (Symset.union (get k) s)) spont;
      List.iter
        (fun (src, dsts) ->
          Int_tbl.replace links src
            (dsts @ Option.value (Int_tbl.find_opt links src) ~default:[]))
        lks)
    discovered;
  (* propagate to fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    Int_tbl.iter
      (fun src dsts ->
        let s = get src in
        if not (Symset.is_empty s) then
          List.iter
            (fun dst ->
              let cur = get dst in
              let merged = Symset.union cur s in
              if not (Symset.equal cur merged) then begin
                Int_tbl.replace la dst merged;
                changed := true
              end)
            dsts)
      links
  done;
  (item_bound, la)

(** [reductions ?pool a an mode] returns, per state, the reducible
    productions with their lookahead sets. *)
let reductions ?pool (a : Lr0.t) (an : Grammar.analysis) (mode : mode) :
    (int * Symset.t) list array =
  let g = a.Lr0.grammar in
  match mode with
  | Slr ->
      Pool.maybe pool
        (fun st ->
          Lr0.reducible g st
          |> List.map (fun i ->
                 let p = Lr0.item_prod i in
                 (p, an.Grammar.follow.((Grammar.prod g p).lhs)))
          |> List.sort_uniq compare)
        a.Lr0.states
  | Lalr ->
      let item_bound, kla = lalr_kernel_lookaheads ?pool a an in
      Pool.maybe pool
        (fun (st : Lr0.state) ->
          (* run the lookahead closure over the kernel with its final
             lookahead sets, then read off the final items *)
          let init =
            Array.to_list st.Lr0.kernel
            |> List.map (fun k ->
                   ( k,
                     Option.value
                       (Int_tbl.find_opt kla ((st.Lr0.id * item_bound) + k))
                       ~default:Symset.empty ))
          in
          let cl = closure1 g an init in
          Int_tbl.fold
            (fun i iset acc ->
              let p = Grammar.prod g (Lr0.item_prod i) in
              if Lr0.item_dot i = Array.length p.rhs then (p.id, iset) :: acc
              else acc)
            cl []
          |> List.sort_uniq compare)
        a.Lr0.states
