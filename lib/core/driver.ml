(** The skeletal LR parser driving the generated code generator
    (paper section 3).

    The parser consumes the linearized IF.  On a reduction it calls the
    code emission routine, which returns the tokens to prefix back onto
    the input stream (normally the production's LHS bound to the result
    register; possibly a converted odd register or a CSE's location).
    Because non-terminal tokens are shifted like any others, no separate
    GOTO table exists.

    "If the specification of the code generator is correct, then the code
    generator cannot emit incorrect instruction sequences.  Instead it
    will stop and signal an error." — a [Parse_error] result carries the
    state and offending token.

    The driver is generic over its action source: [`Comb] (the default)
    probes the comb-packed table carried in {!Tables.t} via
    {!Compress.action_code}; [`Flat] indexes the uncompressed
    [action array array].  Both run the same skeleton; on well-formed IF
    they take identical actions (default reductions only ever replace
    error entries, so they can delay — never lose — error detection). *)

type dispatch = Flat | Comb

type error = {
  position : int;
      (** index into the {e original} input of the offending token (the
          next original token still unconsumed when the parse blocked).
          Reduction-prefixed tokens do not advance it, so Flat and Comb
          dispatch agree on it even when default reductions delay the
          detection. *)
  state : int;
  token : Ifl.Token.t option;  (** [None] at end of input *)
  msg : string;
  expected : string list;  (** symbols with an action in the blocked state *)
  bogus_reductions : int;
      (** reductions taken since the last {e original} input token was
          consumed: under Comb dispatch, how far default reductions
          (and the synthetic shifts they interleave) ran past the point
          where Flat dispatch would have stopped *)
}

let pp_error ppf e =
  Fmt.pf ppf "code generation blocked at input token %d%a in state %d: %s"
    e.position
    (Fmt.option (fun ppf t -> Fmt.pf ppf " (%a)" Ifl.Token.pp t))
    e.token e.state e.msg;
  if e.bogus_reductions > 0 then
    Fmt.pf ppf " (after %d speculative reduction%s)" e.bogus_reductions
      (if e.bogus_reductions = 1 then "" else "s");
  match e.expected with
  | [] -> ()
  | xs ->
      Fmt.pf ppf "@.expected one of: %s"
        (String.concat ", "
           (if List.length xs <= 12 then xs
            else List.filteri (fun i _ -> i < 12) xs @ [ "..." ]))

type outcome = {
  reductions : int;
  shifts : int;
  max_stack : int;
}

(* observability counters, flushed once per parse from the local
   statistics the hot loop already keeps (never bumped per token) *)
let m_parses = Metrics.sum "driver.parses"
let m_shifts = Metrics.sum "driver.shifts"
let m_reductions = Metrics.sum "driver.reductions"
let m_errors = Metrics.sum "driver.errors"
let m_delayed = Metrics.sum "driver.delayed_error_runs"
let m_max_stack = Metrics.high_water "driver.max_stack"

(* A growable stack of (state, token) pairs kept as two parallel arrays:
   the hot path is push/pop at the top, plus the occasional in-place
   [remap] sweep over the live prefix.  The linked-list representation
   this replaces paid an O(n) [List.length] on every shift just to track
   the maximum depth, and rebuilt both lists on every remap. *)

let grow arr n ~dummy =
  let cap = Array.length arr in
  if n <= cap then arr
  else begin
    let narr = Array.make (max n (2 * cap)) dummy in
    Array.blit arr 0 narr 0 cap;
    narr
  end

(* Delayed error detection (comb dispatch with default reductions) can
   take a bounded run of bogus reductions before blocking; this cap turns
   a hypothetical reduction livelock on malformed IF into a clean parse
   error instead of a hang. *)
let max_reductions_between_shifts = 100_000

(** [parse ?dispatch tables ~reduce input] runs the table-driven parse.

    [reduce ~prod ~rhs ~remap] is the code emission routine: [rhs] holds
    the popped translation-stack tokens; [remap] lets the emitter rewrite
    register bindings on the live stack and pending input (needed when a
    [need] directive transfers a busy register); the returned tokens are
    prefixed to the input (first element consumed first). *)
let parse ?(dispatch = Comb) (tables : Tables.t)
    ~(reduce :
       prod:int ->
       rhs:Ifl.Token.t array ->
       remap:((Ifl.Token.t -> Ifl.Token.t) -> unit) ->
       Ifl.Token.t list) (input : Ifl.Token.t list) : (outcome, error) result =
  let g = tables.Tables.grammar in
  let pt = tables.Tables.parse in
  (* the action source, as encoded entries (Compress encoding); the comb
     path reads the packed int directly, the flat path encodes the variant
     (both allocation-free) *)
  let lookup : int -> int -> int =
    match dispatch with
    | Comb ->
        let c = tables.Tables.compressed in
        Compress.dispatcher c
    | Flat ->
        let actions = pt.Parse_table.actions in
        fun state sym -> Compress.encode_action actions.(state).(sym)
  in
  let bottom = Ifl.Token.op "%bottom" in
  (* the translation/parse stack: parallel state/token arrays *)
  let states = ref (Array.make 64 0) in
  let toks = ref (Array.make 64 bottom) in
  let sp = ref 0 in
  let push state tok =
    if !sp = Array.length !states then begin
      states := grow !states (!sp + 1) ~dummy:0;
      toks := grow !toks (!sp + 1) ~dummy:bottom
    end;
    !states.(!sp) <- state;
    !toks.(!sp) <- tok;
    incr sp
  in
  push pt.Parse_table.automaton.Lr0.start bottom;
  (* pending input as a stack with the next token on top *)
  let pending = ref (Array.make (max 64 (List.length input + 1)) bottom) in
  let pn = ref 0 in
  let push_pending tok =
    if !pn = Array.length !pending then
      pending := grow !pending (!pn + 1) ~dummy:bottom;
    !pending.(!pn) <- tok;
    incr pn
  in
  push_pending (Ifl.Token.op Grammar.eof_name);
  List.iter push_pending (List.rev input);
  (* Original-stream bookkeeping for error positions.  Reductions prefix
     fresh tokens on top of the pending stack, so the original tokens are
     exactly the entries below [orig_level]: a shift consumes an original
     iff nothing synthetic sits above it, and only then does [position]
     (the index into the caller's input) advance.  Counting every shift —
     synthetic LHS tokens included — made the reported position index the
     mutated stream, drifting further with every reduction. *)
  let orig_level = ref !pn in
  let position = ref 0 in
  let shifts = ref 0 and reductions = ref 0 and max_stack = ref 1 in
  let reduce_run = ref 0 in
  let flush_metrics ~failed =
    if Metrics.enabled () then begin
      Metrics.add m_parses 1;
      Metrics.add m_shifts !shifts;
      Metrics.add m_reductions !reductions;
      Metrics.peak m_max_stack !max_stack;
      if failed then begin
        Metrics.add m_errors 1;
        if !reduce_run > 0 then Metrics.add m_delayed 1
      end
    end
  in
  let remap f =
    for i = 0 to !sp - 1 do
      !toks.(i) <- f !toks.(i)
    done;
    for i = 0 to !pn - 1 do
      !pending.(i) <- f !pending.(i)
    done
  in
  let fail state token msg =
    let expected =
      List.filter
        (fun s ->
          Parse_table.action pt state s <> Parse_table.Error
          && g.Grammar.in_if.(s))
        (List.init (Grammar.n_syms g) Fun.id)
      |> List.map (Grammar.name g)
    in
    flush_metrics ~failed:true;
    Trace.instant "driver.error"
      ~args:[ ("state", string_of_int state); ("position", string_of_int !position) ];
    Error
      {
        position = !position;
        state;
        token;
        msg;
        expected;
        bogus_reductions = !reduce_run;
      }
  in
  let rec loop () =
    let state = !states.(!sp - 1) in
    if !pn = 0 then fail state None "input exhausted without accept"
    else
      let tok = !pending.(!pn - 1) in
      match Grammar.sym g tok.Ifl.Token.sym with
      | None -> fail state (Some tok) "symbol is not part of the machine grammar"
      | Some sym -> (
          (* shaper convenience: integer-valued tokens are coerced to the
             kind the grammar symbol declares (register binding, label,
             CSE number, condition mask) *)
          let tok =
            match (Tables.class_of tables sym, tok.Ifl.Token.value) with
            | ( Some (Symtab.Gpr | Symtab.Pair | Symtab.Fpr | Symtab.Fpair),
                Ifl.Value.Int n ) ->
                { tok with Ifl.Token.value = Ifl.Value.Reg n }
            | _ -> (
                match (Tables.kind_of tables sym, tok.Ifl.Token.value) with
                | Some Symtab.Klabel, Ifl.Value.Int n ->
                    { tok with Ifl.Token.value = Ifl.Value.Label n }
                | Some Symtab.Kcse, Ifl.Value.Int n ->
                    { tok with Ifl.Token.value = Ifl.Value.Cse n }
                | Some Symtab.Kcond, Ifl.Value.Int n ->
                    { tok with Ifl.Token.value = Ifl.Value.Cond n }
                | _ -> tok)
          in
          (* runtime type check: terminals must carry the declared value
             kind; register non-terminals must carry a register *)
          let kind_ok =
            match (Tables.kind_of tables sym, tok.Ifl.Token.value) with
            | Some Symtab.Kint, (Ifl.Value.Int _ | Ifl.Value.Unit) -> true
            | Some Symtab.Klabel, Ifl.Value.Label _ -> true
            | Some Symtab.Kcse, Ifl.Value.Cse _ -> true
            | Some Symtab.Kcond, Ifl.Value.Cond _ -> true
            | Some _, _ -> false
            | None, _ -> true
          in
          let class_ok =
            match (Tables.class_of tables sym, tok.Ifl.Token.value) with
            | Some (Symtab.Gpr | Symtab.Pair | Symtab.Fpr | Symtab.Fpair), Ifl.Value.Reg _
              -> true
            | Some (Symtab.Cc | Symtab.Noclass), _ -> true
            | Some _, _ -> false
            | None, _ -> true
          in
          if not kind_ok then
            fail state (Some tok) "token value does not match the terminal's declared kind"
          else if not class_ok then
            fail state (Some tok) "register non-terminal token without a register binding"
          else
            (* encoded entry: 0 error, 1 accept, even shift, odd reduce *)
            let v = lookup state sym in
            if v = 0 then
              fail state (Some tok) "no action (invalid IF for this machine grammar)"
            else if v = 1 then begin
              flush_metrics ~failed:false;
              Ok { reductions = !reductions; shifts = !shifts; max_stack = !max_stack }
            end
            else if v land 1 = 0 then begin
              (* shift *)
              push ((v - 2) / 2) tok;
              if !pn <= !orig_level then begin
                (* an original input token, not a reduction-prefixed one;
                   consuming it also ends any speculative reduction run
                   (synthetic LHS shifts interleave default-reduction
                   runs, so resetting on every shift would undercount
                   the speculation) *)
                orig_level := !pn - 1;
                incr position;
                reduce_run := 0
              end;
              decr pn;
              incr shifts;
              if !sp > !max_stack then max_stack := !sp;
              loop ()
            end
            else begin
              (* reduce *)
              let p = (v - 3) / 2 in
              incr reductions;
              incr reduce_run;
              if !reduce_run > max_reductions_between_shifts then
                fail state (Some tok) "reduction livelock (invalid IF)"
              else begin
                let prod = Grammar.prod g p in
                let n = Array.length prod.Grammar.rhs in
                if n > !sp - 1 then
                  (* only reachable through delayed error detection *)
                  fail state (Some tok) "translation stack underflow (invalid IF)"
                else begin
                  let base = !sp - n in
                  let toks_arr = !toks in
                  let rhs = Array.init n (fun i -> toks_arr.(base + i)) in
                  sp := base;
                  let prefixed =
                    if Tables.is_user_prod tables p then
                      reduce ~prod:p ~rhs ~remap
                    else
                      (* augmentation production: prefix the bare LHS *)
                      [ Ifl.Token.op (Grammar.name g prod.Grammar.lhs) ]
                  in
                  (* first element of [prefixed] is consumed first *)
                  List.iter push_pending (List.rev prefixed);
                  loop ()
                end
              end
            end)
  in
  loop ()
