(** The skeletal LR parser driving the generated code generator
    (paper section 3).

    The parser consumes the linearized IF.  On a reduction it calls the
    code emission routine, which returns the tokens to prefix back onto
    the input stream (normally the production's LHS bound to the result
    register; possibly a converted odd register or a CSE's location).
    Because non-terminal tokens are shifted like any others, no separate
    GOTO table exists.

    "If the specification of the code generator is correct, then the code
    generator cannot emit incorrect instruction sequences.  Instead it
    will stop and signal an error." — a [Parse_error] result carries the
    state and offending token.

    The driver is generic over its action source: [`Comb] (the default)
    probes the comb-packed table carried in {!Tables.t} via
    {!Compress.action_code}; [`Flat] indexes the uncompressed
    [action array array].  Both run the same skeleton; on well-formed IF
    they take identical actions (default reductions only ever replace
    error entries, so they can delay — never lose — error detection).

    {b Hot path memory discipline.}  The inner loop works on {e prepared}
    tokens ({!ptoken}): the input stream is resolved in one pass at parse
    start — each token's [sym] string interned to its {!Grammar.sym} id,
    the kind/class coercions applied and the value discipline checked
    once — so a shift costs two array writes and an integer table probe:
    no string hashing, no record allocation.  The emission routine trades
    in the same representation, so reduction-prefixed tokens re-enter the
    stream already interned. *)

type dispatch = Flat | Comb | Hybrid

(** A prepared IF token: the grammar symbol id (interned once, at stream
    preparation or by the emitter) and the coerced attribute value.  The
    inner loop never touches a symbol {e name}. *)
type ptoken = { psym : Grammar.sym; pvalue : Ifl.Value.t }

let ptok ?(value = Ifl.Value.Unit) sym = { psym = sym; pvalue = value }

type error = {
  position : int;
      (** index into the {e original} input of the offending token (the
          next original token still unconsumed when the parse blocked).
          Reduction-prefixed tokens do not advance it, so Flat and Comb
          dispatch agree on it even when default reductions delay the
          detection. *)
  state : int;
  token : Ifl.Token.t option;  (** [None] at end of input *)
  msg : string;
  expected : string list;
      (** symbols with an action in the blocked state, capped at 13
          entries during construction (the printer shows 12) *)
  bogus_reductions : int;
      (** reductions taken since the last {e original} input token was
          consumed: under Comb dispatch, how far default reductions
          (and the synthetic shifts they interleave) ran past the point
          where Flat dispatch would have stopped *)
}

let pp_error ppf e =
  Fmt.pf ppf "code generation blocked at input token %d%a in state %d: %s"
    e.position
    (Fmt.option (fun ppf t -> Fmt.pf ppf " (%a)" Ifl.Token.pp t))
    e.token e.state e.msg;
  if e.bogus_reductions > 0 then
    Fmt.pf ppf " (after %d speculative reduction%s)" e.bogus_reductions
      (if e.bogus_reductions = 1 then "" else "s");
  match e.expected with
  | [] -> ()
  | xs ->
      (* one traversal: [expected] is capped at 13 during construction,
         so more than 12 entries means "...and more" *)
      let rec take n = function
        | [] -> []
        | _ :: _ when n = 0 -> [ "..." ]
        | x :: tl -> x :: take (n - 1) tl
      in
      Fmt.pf ppf "@.expected one of: %s" (String.concat ", " (take 12 xs))

type outcome = {
  reductions : int;
  shifts : int;
  max_stack : int;
}

(* observability counters, flushed once per parse from the local
   statistics the hot loop already keeps (never bumped per token) *)
let m_parses = Metrics.sum "driver.parses"
let m_shifts = Metrics.sum "driver.shifts"
let m_reductions = Metrics.sum "driver.reductions"
let m_errors = Metrics.sum "driver.errors"
let m_delayed = Metrics.sum "driver.delayed_error_runs"
let m_max_stack = Metrics.high_water "driver.max_stack"
let m_prepared = Metrics.sum "driver.prepared_tokens"

(* A growable stack kept as an array plus a fill pointer; the hot path
   is push/pop at the top, plus the occasional in-place [remap] sweep
   over the live prefix. *)

let grow arr n ~dummy =
  let cap = Array.length arr in
  if n <= cap then arr
  else begin
    let narr = Array.make (max n (2 * cap)) dummy in
    Array.blit arr 0 narr 0 cap;
    narr
  end

(* Delayed error detection (comb dispatch with default reductions) can
   take a bounded run of bogus reductions before blocking; this cap turns
   a hypothetical reduction livelock on malformed IF into a clean parse
   error instead of a hang. *)
let max_reductions_between_shifts = 100_000

(* the stack-bottom dummy; never examined by the action lookup *)
let bottom = { psym = min_int; pvalue = Ifl.Value.Unit }

(** [parse ?dispatch tables ~reduce input] runs the table-driven parse.

    [reduce ~prod ~rhs ~remap] is the code emission routine: [rhs] holds
    the popped translation-stack tokens; [remap] lets the emitter rewrite
    register bindings on the live stack and pending input (needed when a
    [need] directive transfers a busy register); the returned tokens are
    prefixed to the input (first element consumed first) and must carry
    interned symbol ids. *)
let parse ?(dispatch = Comb) ?(profile : Cogprof.t option) (tables : Tables.t)
    ~(reduce :
       prod:int ->
       rhs:ptoken array ->
       remap:((ptoken -> ptoken) -> unit) ->
       ptoken list) (input : Ifl.Token.t list) : (outcome, error) result =
  let g = tables.Tables.grammar in
  let pt = tables.Tables.parse in
  let n_syms = Grammar.n_syms g in
  (* the action source, as encoded entries (Compress encoding); the comb
     and hybrid paths read the packed int directly, the flat path encodes
     the variant (all allocation-free) *)
  let lookup : int -> int -> int =
    match dispatch with
    | Comb ->
        let c = tables.Tables.compressed in
        Compress.dispatcher c
    | Hybrid ->
        (* the profile-specialized layout when the bundle carries one;
           otherwise the comb table (same answers, just no hot rows) *)
        let c =
          match tables.Tables.hybrid with
          | Some h -> h
          | None -> tables.Tables.compressed
        in
        Compress.dispatcher c
    | Flat ->
        let actions = pt.Parse_table.actions in
        fun state sym -> Compress.encode_action actions.(state).(sym)
  in
  (* profile capture wraps the resolved dispatcher, so the common
     no-profile parse pays nothing for it *)
  let lookup =
    match profile with
    | None -> lookup
    | Some pr ->
        fun state sym ->
          Cogprof.visit pr state;
          lookup state sym
  in
  (* -- stream preparation ------------------------------------------------
     Tokens that fail interning or the value discipline become negative
     [psym] indices into [bad]; the parse only reports them when the
     skeleton actually reaches them, exactly as the per-step checks did. *)
  let bad : (Ifl.Token.t * string) list ref = ref [] in
  let n_bad = ref 0 in
  let bad_ptok tok msg =
    bad := (tok, msg) :: !bad;
    incr n_bad;
    { psym = - !n_bad; pvalue = tok.Ifl.Token.value }
  in
  let bad_entry k = List.nth !bad (!n_bad - 1 - k) in
  (* shaper convenience: integer-valued tokens are coerced to the kind
     the grammar symbol declares (register binding, label, CSE number,
     condition mask); then the value discipline is checked: terminals
     must carry the declared value kind, register non-terminals a
     register.  Applied once per token, at preparation. *)
  (* returns the coerced value plus the discipline violation, if any (the
     error report carries the coerced token, as the per-step checks did) *)
  let coerce_check sym (value : Ifl.Value.t) : Ifl.Value.t * string option =
    let value =
      match (Tables.class_of tables sym, value) with
      | ( Some (Symtab.Gpr | Symtab.Pair | Symtab.Fpr | Symtab.Fpair),
          Ifl.Value.Int n ) ->
          Ifl.Value.Reg n
      | _ -> (
          match (Tables.kind_of tables sym, value) with
          | Some Symtab.Klabel, Ifl.Value.Int n -> Ifl.Value.Label n
          | Some Symtab.Kcse, Ifl.Value.Int n -> Ifl.Value.Cse n
          | Some Symtab.Kcond, Ifl.Value.Int n -> Ifl.Value.Cond n
          | _ -> value)
    in
    let kind_ok =
      match (Tables.kind_of tables sym, value) with
      | Some Symtab.Kint, (Ifl.Value.Int _ | Ifl.Value.Unit) -> true
      | Some Symtab.Klabel, Ifl.Value.Label _ -> true
      | Some Symtab.Kcse, Ifl.Value.Cse _ -> true
      | Some Symtab.Kcond, Ifl.Value.Cond _ -> true
      | Some _, _ -> false
      | None, _ -> true
    in
    let class_ok =
      (* the binding must also name a real machine register of the
         class: the allocator's banks are 16 general and 8 floating
         registers, and pair classes cover a partner register too *)
      match (Tables.class_of tables sym, value) with
      | Some Symtab.Gpr, Ifl.Value.Reg r -> r >= 0 && r <= 15
      | Some Symtab.Pair, Ifl.Value.Reg r -> r >= 0 && r <= 14
      | Some Symtab.Fpr, Ifl.Value.Reg r -> r >= 0 && r <= 7
      | Some Symtab.Fpair, Ifl.Value.Reg r -> r >= 0 && r <= 5
      (* a register payload on a class-less symbol is still released
         into the general bank at reduction time, so it must be a real
         register number *)
      | (Some (Symtab.Cc | Symtab.Noclass) | None), Ifl.Value.Reg r ->
          r >= 0 && r <= 15
      | Some (Symtab.Cc | Symtab.Noclass), _ -> true
      | Some _, _ -> false
      | None, _ -> true
    in
    if not kind_ok then
      (value, Some "token value does not match the terminal's declared kind")
    else if not class_ok then
      ( value,
        Some
          (match value with
          | Ifl.Value.Reg _ -> "register binding out of machine range"
          | _ -> "register non-terminal token without a register binding") )
    else (value, None)
  in
  let prepare (tok : Ifl.Token.t) : ptoken =
    match Grammar.sym g tok.Ifl.Token.sym with
    | None -> bad_ptok tok "symbol is not part of the machine grammar"
    | Some sym -> (
        match coerce_check sym tok.Ifl.Token.value with
        | v, None -> { psym = sym; pvalue = v }
        | v, Some msg -> bad_ptok { tok with Ifl.Token.value = v } msg)
  in
  (* the original stream, prepared in input order in a single pass; the
     cursor below is also the reported error [position] *)
  let orig = ref (Array.make 64 bottom) in
  let n_orig = ref 0 in
  let push_orig p =
    if !n_orig = Array.length !orig then
      orig := grow !orig (!n_orig + 1) ~dummy:bottom;
    !orig.(!n_orig) <- p;
    incr n_orig
  in
  List.iter (fun tok -> push_orig (prepare tok)) input;
  push_orig { psym = g.Grammar.eof; pvalue = Ifl.Value.Unit };
  let cursor = ref 0 in
  (* reduction-prefixed tokens, a stack with the next token on top;
     consuming an original requires this to be empty, so the reported
     position indexes the caller's input, not the mutated stream *)
  let pre = ref (Array.make 64 bottom) in
  let pre_n = ref 0 in
  let push_pre p =
    if !pre_n = Array.length !pre then pre := grow !pre (!pre_n + 1) ~dummy:bottom;
    !pre.(!pre_n) <- p;
    incr pre_n
  in
  (* prefixed tokens arrive interned but still get the one-time coercion
     and discipline check (no hashing; emitters normally push well-formed
     register bindings, so this is two array reads per token) *)
  let prepare_prefixed (p : ptoken) : ptoken =
    if p.psym < 0 || p.psym >= n_syms then
      bad_ptok
        { Ifl.Token.sym = "<uninterned>"; value = p.pvalue }
        "symbol is not part of the machine grammar"
    else
      match coerce_check p.psym p.pvalue with
      | v, None -> if v == p.pvalue then p else { p with pvalue = v }
      | v, Some msg ->
          bad_ptok { Ifl.Token.sym = Grammar.name g p.psym; value = v } msg
  in
  (* the translation/parse stack: parallel state/token arrays *)
  let states = ref (Array.make 64 0) in
  let toks = ref (Array.make 64 bottom) in
  let sp = ref 0 in
  let push state tok =
    if !sp = Array.length !states then begin
      states := grow !states (!sp + 1) ~dummy:0;
      toks := grow !toks (!sp + 1) ~dummy:bottom
    end;
    !states.(!sp) <- state;
    !toks.(!sp) <- tok;
    incr sp
  in
  push pt.Parse_table.automaton.Lr0.start bottom;
  let shifts = ref 0 and reductions = ref 0 and max_stack = ref 1 in
  let reduce_run = ref 0 in
  let flush_metrics ~failed =
    if Metrics.enabled () then begin
      Metrics.add m_parses 1;
      Metrics.add m_prepared !n_orig;
      Metrics.add m_shifts !shifts;
      Metrics.add m_reductions !reductions;
      Metrics.peak m_max_stack !max_stack;
      if failed then begin
        Metrics.add m_errors 1;
        if !reduce_run > 0 then Metrics.add m_delayed 1
      end
    end
  in
  let remap f =
    for i = 0 to !sp - 1 do
      !toks.(i) <- f !toks.(i)
    done;
    for i = 0 to !pre_n - 1 do
      !pre.(i) <- f !pre.(i)
    done;
    for i = !cursor to !n_orig - 1 do
      !orig.(i) <- f !orig.(i)
    done
  in
  let fail state token msg =
    (* cap the expected-symbols list during construction: the printer
       shows at most 12, so anything past 13 is never observable *)
    let expected =
      let acc = ref [] and count = ref 0 and s = ref 0 in
      while !count < 13 && !s < n_syms do
        if
          Parse_table.action pt state !s <> Parse_table.Error
          && g.Grammar.in_if.(!s)
        then begin
          acc := Grammar.name g !s :: !acc;
          incr count
        end;
        incr s
      done;
      List.rev !acc
    in
    flush_metrics ~failed:true;
    Trace.instant "driver.error"
      ~args:[ ("state", string_of_int state); ("position", string_of_int !cursor) ];
    Error
      {
        position = !cursor;
        state;
        token;
        msg;
        expected;
        bogus_reductions = !reduce_run;
      }
  in
  let rec loop () =
    let state = !states.(!sp - 1) in
    if !pre_n = 0 && !cursor >= !n_orig then
      fail state None "input exhausted without accept"
    else
      let from_pre = !pre_n > 0 in
      let tok = if from_pre then !pre.(!pre_n - 1) else !orig.(!cursor) in
      if tok.psym < 0 then
        let t, msg = bad_entry (-tok.psym - 1) in
        fail state (Some t) msg
      else
        (* encoded entry: 0 error, 1 accept, even shift, odd reduce *)
        let v = lookup state tok.psym in
        if v = 0 then
          fail state
            (Some { Ifl.Token.sym = Grammar.name g tok.psym; value = tok.pvalue })
            "no action (invalid IF for this machine grammar)"
        else if v = 1 then begin
          flush_metrics ~failed:false;
          Ok { reductions = !reductions; shifts = !shifts; max_stack = !max_stack }
        end
        else if v land 1 = 0 then begin
          (* shift: two array writes, no allocation *)
          push ((v - 2) / 2) tok;
          if from_pre then decr pre_n
          else begin
            (* an original input token, not a reduction-prefixed one;
               consuming it also ends any speculative reduction run
               (synthetic LHS shifts interleave default-reduction runs,
               so resetting on every shift would undercount the
               speculation) *)
            incr cursor;
            reduce_run := 0
          end;
          incr shifts;
          if !sp > !max_stack then max_stack := !sp;
          loop ()
        end
        else begin
          (* reduce *)
          let p = (v - 3) / 2 in
          (match profile with None -> () | Some pr -> Cogprof.fire pr p);
          incr reductions;
          incr reduce_run;
          if !reduce_run > max_reductions_between_shifts then
            fail state
              (Some { Ifl.Token.sym = Grammar.name g tok.psym; value = tok.pvalue })
              "reduction livelock (invalid IF)"
          else begin
            let prod = Grammar.prod g p in
            let n = Array.length prod.Grammar.rhs in
            if n > !sp - 1 then
              (* only reachable through delayed error detection *)
              fail state
                (Some { Ifl.Token.sym = Grammar.name g tok.psym; value = tok.pvalue })
                "translation stack underflow (invalid IF)"
            else begin
              let base = !sp - n in
              let toks_arr = !toks in
              let rhs = Array.init n (fun i -> toks_arr.(base + i)) in
              sp := base;
              let prefixed =
                if Tables.is_user_prod tables p then
                  reduce ~prod:p ~rhs ~remap
                else
                  (* augmentation production: prefix the bare LHS *)
                  [ { psym = prod.Grammar.lhs; pvalue = Ifl.Value.Unit } ]
              in
              (* first element of [prefixed] is consumed first *)
              List.iter
                (fun p -> push_pre (prepare_prefixed p))
                (List.rev prefixed);
              loop ()
            end
          end
        end
  in
  loop ()
