(** Typed symbol table for the specification.

    "This allows CoGG to build a symbol table which contains the type of
    each identifier used, enabling the table constructor to type check the
    use of each identifier" (paper section 2). *)

type reg_class = Gpr | Pair | Fpr | Fpair | Cc | Noclass

let reg_class_of_string = function
  | "gpr" | "register" -> Some Gpr
  | "pair" | "double" -> Some Pair
  | "fpr" | "real" -> Some Fpr
  | "fpair" | "quad" -> Some Fpair
  | "cc" | "condition" -> Some Cc
  | "none" -> Some Noclass
  | _ -> None

let pp_reg_class ppf c =
  Fmt.string ppf
    (match c with
    | Gpr -> "gpr"
    | Pair -> "pair"
    | Fpr -> "fpr"
    | Fpair -> "fpair"
    | Cc -> "cc"
    | Noclass -> "none")

(** Value kind a terminal's token must carry (checked by the driver). *)
type value_kind = Kint | Klabel | Kcse | Kcond

let value_kind_of_string = function
  | "displacement" | "length" | "count" | "shift" | "value" | "element"
  | "error" | "stmt" | "int" ->
      Some Kint
  | "label" -> Some Klabel
  | "cse" -> Some Kcse
  | "condition" -> Some Kcond
  | _ -> None

let pp_value_kind ppf k =
  Fmt.string ppf
    (match k with
    | Kint -> "int"
    | Klabel -> "label"
    | Kcse -> "cse"
    | Kcond -> "condition")

type info =
  | Nonterminal of reg_class
  | Terminal of value_kind
  | Operator
  | Opcode
  | Constant of int
  | Semantic

let pp_info ppf = function
  | Nonterminal c -> Fmt.pf ppf "non-terminal (%a)" pp_reg_class c
  | Terminal k -> Fmt.pf ppf "terminal (%a)" pp_value_kind k
  | Operator -> Fmt.string ppf "operator"
  | Opcode -> Fmt.string ppf "opcode"
  | Constant v -> Fmt.pf ppf "constant (= %d)" v
  | Semantic -> Fmt.string ppf "semantic operator"

type t = {
  table : (string, info) Hashtbl.t;
  nonterminals : (string * reg_class) list;
  terminals : (string * value_kind) list;
  operators : string list;
  opcodes : string list;
  constants : (string * int) list;
  semantics : string list;
}

type error = { line : int; msg : string }

let pp_error ppf (e : error) = Fmt.pf ppf "spec:%d: %s" e.line e.msg

exception Fail of error

let fail line fmt = Fmt.kstr (fun msg -> raise (Fail { line; msg })) fmt

let find t name = Hashtbl.find_opt t.table name

(** Counts for the paper's Table 1. *)
let n_declared t =
  List.length t.nonterminals + List.length t.terminals
  + List.length t.operators + List.length t.opcodes
  + List.length t.constants + List.length t.semantics

(* -- per-production scopes ---------------------------------------------------

   The slice of the symbol table one production can observe: its LHS and
   RHS symbols, its template operator names, and every identifier its
   operand atoms mention.  Scopes compose by union — the table relevant
   to a set of productions is exactly the union of their scopes (the
   extended-symbol-table view of Nazari et al.) — which is what lets the
   incremental builder hash each production against its scope alone: an
   edit to a declaration invalidates only the productions whose scopes
   contain it, never the whole table. *)

let scope_names (p : Spec_ast.production) : string list =
  let acc = ref [] in
  let add name = acc := name :: !acc in
  let add_ssym (s : Spec_ast.ssym) = add s.Spec_ast.base in
  let add_atom = function
    | Spec_ast.Asym s -> add_ssym s
    | Spec_ast.Anum _ -> ()
  in
  add_ssym p.Spec_ast.p_lhs;
  List.iter add_ssym p.Spec_ast.p_rhs;
  List.iter
    (fun (tm : Spec_ast.template) ->
      (* opcodes and semantic operators are declared lowercased *)
      add (String.lowercase_ascii tm.Spec_ast.t_op);
      List.iter
        (fun (o : Spec_ast.operand) ->
          add_atom o.Spec_ast.o_base;
          List.iter add_atom o.Spec_ast.o_subs)
        tm.Spec_ast.t_operands)
    p.Spec_ast.p_templates;
  List.sort_uniq String.compare !acc

let scope_of_production (t : t) (p : Spec_ast.production) :
    (string * info option) list =
  List.map (fun n -> (n, find t n)) (scope_names p)

(** The union of several productions' scopes, deduplicated: the symbol
    table a sub-specification of exactly those productions would read. *)
let scope_union (t : t) (ps : Spec_ast.production list) :
    (string * info option) list =
  List.sort_uniq compare (List.concat_map (scope_of_production t) ps)

let of_spec ?(target = Machine.Targets.default) (spec : Spec_ast.t) :
    (t, error) result =
  let table = Hashtbl.create 256 in
  let declare line name info =
    match Hashtbl.find_opt table name with
    | Some prev ->
        fail line "%s is already declared as %s" name (Fmt.str "%a" pp_info prev)
    | None -> Hashtbl.replace table name info
  in
  try
    let nonterminals =
      List.map
        (fun (d : Spec_ast.decl) ->
          let cls =
            match d.d_value with
            | Dnone -> Gpr
            | Dkind k -> (
                match reg_class_of_string k with
                | Some c -> c
                | None -> fail d.d_line "unknown register class %S for %s" k d.d_name)
            | Dnum _ ->
                fail d.d_line "non-terminal %s cannot have a numeric value" d.d_name
          in
          declare d.d_line d.d_name (Nonterminal cls);
          (d.d_name, cls))
        spec.nonterminals
    in
    let terminals =
      List.map
        (fun (d : Spec_ast.decl) ->
          let kind =
            match d.d_value with
            | Dnone -> Kint
            | Dkind k -> (
                match value_kind_of_string k with
                | Some v -> v
                | None -> fail d.d_line "unknown value kind %S for %s" k d.d_name)
            | Dnum _ ->
                fail d.d_line "terminal %s cannot have a numeric value" d.d_name
          in
          declare d.d_line d.d_name (Terminal kind);
          (d.d_name, kind))
        spec.terminals
    in
    let operators =
      List.map
        (fun (d : Spec_ast.decl) ->
          (match d.d_value with
          | Spec_ast.Dnone -> ()
          | _ -> fail d.d_line "operator %s cannot have a value" d.d_name);
          declare d.d_line d.d_name Operator;
          d.d_name)
        spec.operators
    in
    let opcodes =
      List.map
        (fun (d : Spec_ast.decl) ->
          (match d.d_value with
          | Spec_ast.Dnone -> ()
          | _ -> fail d.d_line "opcode %s cannot have a value" d.d_name);
          let name = String.lowercase_ascii d.d_name in
          if not (target.Machine.Target.is_mnemonic name) then
            fail d.d_line "opcode %s is not a known %s instruction" d.d_name
              target.Machine.Target.name;
          declare d.d_line name Opcode;
          name)
        spec.opcodes
    in
    let constants, semantics =
      List.fold_left
        (fun (cs, ss) (d : Spec_ast.decl) ->
          match d.d_value with
          | Spec_ast.Dnum v ->
              declare d.d_line d.d_name (Constant v);
              ((d.d_name, v) :: cs, ss)
          | Spec_ast.Dnone ->
              let name = String.lowercase_ascii d.d_name in
              if not (Semops.is_semantic name) then
                fail d.d_line
                  "constant %s has no value and is not a known semantic operator"
                  d.d_name;
              declare d.d_line name Semantic;
              (cs, name :: ss)
          | Spec_ast.Dkind k ->
              fail d.d_line "constant %s: expected a number, got %S" d.d_name k)
        ([], []) spec.constants
    in
    Ok
      {
        table;
        nonterminals;
        terminals;
        operators;
        opcodes;
        constants = List.rev constants;
        semantics = List.rev semantics;
      }
  with Fail e -> Error e
