(** CoGG's top level: specification text -> driving tables.

    [build] performs the whole pipeline: parse the specification, build
    the typed symbol table, construct the grammar and its LR automaton,
    resolve conflicts with the Graham-Glanville policy, and compile
    every template.  Errors carry specification line numbers. *)

type error = { line : int; msg : string }

val pp_error : Format.formatter -> error -> unit

val grammar_of_spec :
  Symtab.t -> Spec_ast.t -> (Grammar.t, error list) result
(** Build the augmented machine grammar from a checked specification. *)

val build :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  Spec_ast.t ->
  (Tables.t, error list) result
(** Build the complete table bundle.  [mode] selects SLR(1) (the
    default, as in the paper) or LALR(1) lookaheads.  [pool] parallelizes
    lookahead computation, the per-state action-table fill, table
    compression prep and template compilation; the resulting bundle is
    byte-identical at any worker count.  [profile] additionally builds
    the profile-specialized hybrid table ({!Compress.specialize}) into
    [Tables.hybrid]; without it the bundle carries none.  [target]
    selects the machine substrate the spec's opcodes and template shapes
    are checked against (default: the Amdahl 470); it is recorded in
    [Tables.target] and drives emission, loading and simulation. *)

type incr_stats = {
  spliced_tables : bool;
  templates_reused : int;
  templates_recompiled : int;
}
(** What an incremental rebuild actually recomputed: [spliced_tables]
    means the LR(0) automaton, action table, conflict log and comb
    packing came from the previous build wholesale (the grammar shape
    and symbol ids were unchanged); the template counters split the
    user productions into hash-matched reuses and fresh compiles. *)

val pp_incr_stats : Format.formatter -> incr_stats -> unit

val build_incremental :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  previous:Tables.t ->
  Spec_ast.t ->
  (Tables.t * incr_stats, error list) result
(** Rebuild the bundle for an edited spec, recomputing only the
    artifacts downstream of changed per-production content hashes
    ({!Spec_hash}) and splicing everything else in from [previous] — a
    build of an earlier revision of the same spec (same target, same
    lookahead mode; anything else falls back to a full {!build}).
    Splice rules: stable declaration structure transfers hash-matched
    compiled templates (rebound to their new production ids); an
    unchanged grammar shape additionally transfers the automaton,
    action rows, conflicts and comb packing; the hybrid table transfers
    only on an identical profile digest.  The result is byte-identical
    to a from-scratch build of the same spec at any worker count —
    enforced by the randomized edit oracle in the test suite. *)

val build_incremental_string :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  previous:Tables.t ->
  string ->
  (Tables.t * incr_stats, error list) result

val build_string :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  string ->
  (Tables.t, error list) result

val build_file :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  string ->
  (Tables.t, error list) result
