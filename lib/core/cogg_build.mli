(** CoGG's top level: specification text -> driving tables.

    [build] performs the whole pipeline: parse the specification, build
    the typed symbol table, construct the grammar and its LR automaton,
    resolve conflicts with the Graham-Glanville policy, and compile
    every template.  Errors carry specification line numbers. *)

type error = { line : int; msg : string }

val pp_error : Format.formatter -> error -> unit

val grammar_of_spec :
  Symtab.t -> Spec_ast.t -> (Grammar.t, error list) result
(** Build the augmented machine grammar from a checked specification. *)

val build :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  Spec_ast.t ->
  (Tables.t, error list) result
(** Build the complete table bundle.  [mode] selects SLR(1) (the
    default, as in the paper) or LALR(1) lookaheads.  [pool] parallelizes
    lookahead computation, the per-state action-table fill, table
    compression prep and template compilation; the resulting bundle is
    byte-identical at any worker count.  [profile] additionally builds
    the profile-specialized hybrid table ({!Compress.specialize}) into
    [Tables.hybrid]; without it the bundle carries none.  [target]
    selects the machine substrate the spec's opcodes and template shapes
    are checked against (default: the Amdahl 470); it is recorded in
    [Tables.target] and drives emission, loading and simulation. *)

val build_string :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  string ->
  (Tables.t, error list) result

val build_file :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  string ->
  (Tables.t, error list) result
