(** The Loader Record Generator (paper sections 3 and 4.2).

    After all IF for a module has been processed, label references and
    branch instructions are resolved in a two-phase traversal of the
    dictionary and the object module's TEXT records are constructed.

    Branch targets are addressed off the code-base register, whose 12-bit
    displacement reaches only the first 4096-byte page.  A branch whose
    target lies beyond needs the long form: an additional load
    establishing addressability of the target's page (paper 4.2), here a
    load of the target offset from a literal pool placed at the head of
    the module (inside page 0 by construction):

    - short branch (4 bytes):   [bc mask,target(x,code_base)]
    - long branch (8 bytes):    [l idx,pool_k(code_base)]
                                [bc mask,0(idx,code_base)]
    - long branch, indexed (10):[l idx,pool_k(code_base)]
                                [ar idx,x]
                                [bc mask,0(idx,code_base)]
    - short case load (4):      [l reg,table(reg,code_base)]
    - long case load (10):      [l idx,pool_k(code_base)]
                                [ar idx,reg]
                                [l reg,0(idx,code_base)]

    Since lengthening a branch can push other targets across the page
    boundary (and grow the pool), sizing iterates to a fixpoint — the
    classical span-dependent-instruction algorithm the paper cites
    (Robertson; Leverett & Szymanski). *)

type resolved = {
  code : Bytes.t;
  entry : int;  (** module-relative entry offset (after the literal pool) *)
  labels : (Code_buffer.label * int) list;
  n_sites : int;
  n_long : int;
  pool_words : int;
  iterations : int;
}

exception Resolve_error of string

let err fmt = Fmt.kstr (fun s -> raise (Resolve_error s)) fmt

(* observability counters, flushed once per successful resolution *)
let m_resolutions = Metrics.sum "loader.resolutions"
let m_passes = Metrics.sum "loader.sizing_passes"
let m_sites = Metrics.sum "loader.branch_sites"
let m_long = Metrics.sum "loader.long_branches"
let m_short = Metrics.sum "loader.short_branches"
let m_pool_words = Metrics.sum "loader.pool_words"

let short_size = function
  | Code_buffer.Branch_site _ -> 4
  | Code_buffer.Case_site _ -> 4
  | Code_buffer.Fixed i -> Machine.Insn.size i
  | Code_buffer.Label_def _ -> 0
  | Code_buffer.Word_lit _ | Code_buffer.Word_label _ -> 4

let long_size = function
  | Code_buffer.Branch_site { x; _ } -> if x = 0 then 8 else 10
  | Code_buffer.Case_site _ -> 10
  | it -> short_size it

let resolve ?(code_base = Machine.Runtime.code_base) (items : Code_buffer.item list)
    : resolved =
  let items = Array.of_list items in
  let n = Array.length items in
  let is_long = Array.make n false in
  (* site index -> pool slot, assigned in item order for determinism *)
  let iterations = ref 0 in
  let labels : (Code_buffer.label, int) Hashtbl.t = Hashtbl.create 64 in
  let offsets = Array.make n 0 in
  let n_long = ref 0 in
  let changed = ref true in
  while !changed do
    incr iterations;
    if !iterations > n + 8 then err "span-dependent sizing did not converge";
    changed := false;
    n_long := 0;
    Array.iteri (fun i it ->
        if is_long.(i) then
          match it with
          | Code_buffer.Branch_site _ | Code_buffer.Case_site _ -> incr n_long
          | _ -> ()) items;
    let pool_bytes = 4 * !n_long in
    if pool_bytes > 4096 - 4 then
      err "literal pool overflow: %d long branch sites" !n_long;
    (* place items *)
    Hashtbl.reset labels;
    let pos = ref pool_bytes in
    Array.iteri
      (fun i it ->
        offsets.(i) <- !pos;
        (match it with
        | Code_buffer.Label_def l ->
            if Hashtbl.mem labels l then
              err "label %s defined twice" (Fmt.str "%a" Code_buffer.pp_label l);
            Hashtbl.replace labels l !pos
        | _ -> ());
        pos := !pos + (if is_long.(i) then long_size it else short_size it))
      items;
    (* widen sites whose target is out of short range *)
    Array.iteri
      (fun i it ->
        match it with
        | Code_buffer.Branch_site { lbl; _ } | Code_buffer.Case_site { lbl; _ }
          -> (
            match Hashtbl.find_opt labels lbl with
            | None ->
                err "undefined label %s" (Fmt.str "%a" Code_buffer.pp_label lbl)
            | Some target ->
                if target > 4095 && not is_long.(i) then begin
                  is_long.(i) <- true;
                  changed := true
                end)
        | _ -> ())
      items
  done;
  (* pool slot assignment *)
  let pool_slot = Array.make n (-1) in
  let next_slot = ref 0 in
  Array.iteri
    (fun i it ->
      match it with
      | (Code_buffer.Branch_site _ | Code_buffer.Case_site _) when is_long.(i)
        ->
          pool_slot.(i) <- !next_slot;
          incr next_slot
      | _ -> ())
    items;
  let pool_bytes = 4 * !next_slot in
  let total =
    Array.fold_left ( + ) pool_bytes
      (Array.mapi
         (fun i it -> if is_long.(i) then long_size it else short_size it)
         items)
  in
  let code = Bytes.make total '\000' in
  let put_insn pos i =
    let b = Machine.Encode.encode i in
    Bytes.blit b 0 code pos (Bytes.length b);
    pos + Bytes.length b
  in
  let target lbl = Hashtbl.find labels lbl in
  Array.iteri
    (fun i it ->
      let pos = offsets.(i) in
      match it with
      | Code_buffer.Fixed ins -> ignore (put_insn pos ins)
      | Code_buffer.Label_def _ -> ()
      | Code_buffer.Word_lit v -> Bytes.set_int32_be code pos (Int32.of_int v)
      | Code_buffer.Word_label l ->
          Bytes.set_int32_be code pos (Int32.of_int (target l))
      | Code_buffer.Branch_site { mask; lbl; idx; x } ->
          let t = target lbl in
          if not is_long.(i) then
            ignore
              (put_insn pos
                 (Machine.Insn.Rx { op = "bc"; r1 = mask; d2 = t; x2 = x; b2 = code_base }))
          else begin
            let slot = pool_slot.(i) in
            Bytes.set_int32_be code (4 * slot) (Int32.of_int t);
            let pos =
              put_insn pos
                (Machine.Insn.Rx
                   { op = "l"; r1 = idx; d2 = 4 * slot; x2 = 0; b2 = code_base })
            in
            let pos =
              if x = 0 then pos
              else put_insn pos (Machine.Insn.Rr { op = "ar"; r1 = idx; r2 = x })
            in
            ignore
              (put_insn pos
                 (Machine.Insn.Rx
                    { op = "bc"; r1 = mask; d2 = 0; x2 = idx; b2 = code_base }))
          end
      | Code_buffer.Case_site { reg; lbl; idx } ->
          let t = target lbl in
          if not is_long.(i) then
            ignore
              (put_insn pos
                 (Machine.Insn.Rx { op = "l"; r1 = reg; d2 = t; x2 = reg; b2 = code_base }))
          else begin
            let slot = pool_slot.(i) in
            Bytes.set_int32_be code (4 * slot) (Int32.of_int t);
            let pos =
              put_insn pos
                (Machine.Insn.Rx
                   { op = "l"; r1 = idx; d2 = 4 * slot; x2 = 0; b2 = code_base })
            in
            let pos =
              put_insn pos (Machine.Insn.Rr { op = "ar"; r1 = idx; r2 = reg })
            in
            ignore
              (put_insn pos
                 (Machine.Insn.Rx
                    { op = "l"; r1 = reg; d2 = 0; x2 = idx; b2 = code_base }))
          end)
    items;
  let n_sites =
    Array.fold_left
      (fun a it ->
        match it with
        | Code_buffer.Branch_site _ | Code_buffer.Case_site _ -> a + 1
        | _ -> a)
      0 items
  in
  if Metrics.enabled () then begin
    Metrics.add m_resolutions 1;
    Metrics.add m_passes !iterations;
    Metrics.add m_sites n_sites;
    Metrics.add m_long !next_slot;
    Metrics.add m_short (n_sites - !next_slot);
    Metrics.add m_pool_words !next_slot
  end;
  {
    code;
    entry = pool_bytes;
    labels = Hashtbl.fold (fun l o acc -> (l, o) :: acc) labels [];
    n_sites;
    n_long = !next_slot;
    pool_words = !next_slot;
    iterations = !iterations;
  }

(** Resolve and wrap into an object module. *)
let to_objmod ?(name = "MAIN") ?code_base (items : Code_buffer.item list) :
    (Machine.Objmod.t * resolved, string) result =
  match resolve ?code_base items with
  | r -> Ok (Machine.Objmod.of_code ~name ~entry:r.entry r.code, r)
  | exception Resolve_error m -> Error m
  | exception Machine.Encode.Encode_error m -> Error m
