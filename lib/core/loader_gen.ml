(** The Loader Record Generator (paper sections 3 and 4.2).

    After all IF for a module has been processed, label references and
    branch instructions are resolved in a two-phase traversal of the
    dictionary and the object module's TEXT records are constructed.

    Branch targets are addressed off the code-base register, whose 12-bit
    displacement reaches only the first 4096-byte page.  A branch whose
    target lies beyond needs the long form: an additional load
    establishing addressability of the target's page (paper 4.2), here a
    load of the target offset from a literal pool placed at the head of
    the module (inside page 0 by construction):

    - short branch (4 bytes):   [bc mask,target(x,code_base)]
    - long branch (8 bytes):    [l idx,pool_k(code_base)]
                                [bc mask,0(idx,code_base)]
    - long branch, indexed (10):[l idx,pool_k(code_base)]
                                [ar idx,x]
                                [bc mask,0(idx,code_base)]
    - short case load (4):      [l reg,table(reg,code_base)]
    - long case load (10):      [l idx,pool_k(code_base)]
                                [ar idx,reg]
                                [l reg,0(idx,code_base)]

    Since lengthening a branch can push other targets across the page
    boundary (and grow the pool), sizing iterates to a fixpoint — the
    classical span-dependent-instruction algorithm the paper cites
    (Robertson; Leverett & Szymanski).

    The fixpoint is incremental: labels are interned to dense ids and
    sites resolved to those ids {e once}, so each sizing pass is two
    array sweeps (placement, widening) over precomputed size tables; the
    long-site count is bumped at widening instead of rescanned; and the
    final emission encodes every instruction directly into the result
    buffer ({!Machine.Encode.encode_into}) — no dictionary rebuilds, no
    per-instruction byte-buffer allocation. *)

type resolved = {
  code : Bytes.t;
  entry : int;  (** module-relative entry offset (after the literal pool) *)
  labels : (Code_buffer.label * int) list;
  n_sites : int;
  n_long : int;
  pool_words : int;
  iterations : int;
}

exception Resolve_error of string

let err fmt = Fmt.kstr (fun s -> raise (Resolve_error s)) fmt

(* observability counters, flushed once per successful resolution *)
let m_resolutions = Metrics.sum "loader.resolutions"
let m_passes = Metrics.sum "loader.sizing_passes"
let m_sites = Metrics.sum "loader.branch_sites"
let m_long = Metrics.sum "loader.long_branches"
let m_short = Metrics.sum "loader.short_branches"
let m_pool_words = Metrics.sum "loader.pool_words"

let short_size = function
  | Code_buffer.Branch_site _ -> 4
  | Code_buffer.Case_site _ -> 4
  | Code_buffer.Fixed i -> Machine.Insn.size i
  | Code_buffer.Label_def _ -> 0
  | Code_buffer.Word_lit _ | Code_buffer.Word_label _ -> 4

let long_size = function
  | Code_buffer.Branch_site { x; _ } -> if x = 0 then 8 else 10
  | Code_buffer.Case_site _ -> 10
  | it -> short_size it

(* pc-relative model (RISC-32): every site has exactly one width, so the
   "short" and "long" tables coincide and the fixpoint converges in one
   pass with an empty pool.  A case load expands to the three-instruction
   sequence [addi reg,reg,table; add reg,reg,code_base; lw reg,0(reg)]. *)
let pc_rel_size = function
  | Code_buffer.Branch_site _ -> 4
  | Code_buffer.Case_site _ -> 12
  | it -> short_size it

let resolve ?(code_base = Machine.Runtime.code_base)
    ?(target = Machine.Targets.default) (buf : Code_buffer.t) : resolved =
  let span_dependent =
    target.Machine.Target.site_model = Machine.Target.Span_dependent
  in
  let target_name = target.Machine.Target.name in
  let items = Code_buffer.contents buf in
  let n = Array.length items in
  (* -- one-time analysis: label interning and site resolution ------------ *)
  (* labels get dense ids in definition order; [lid_of] is built once and
     only the offset array is refreshed per sizing pass *)
  let lid_of : (Code_buffer.label, int) Hashtbl.t = Hashtbl.create 64 in
  let n_labels = ref 0 in
  Array.iter
    (fun it ->
      match it with
      | Code_buffer.Label_def l ->
          if Hashtbl.mem lid_of l then
            err "label %s defined twice" (Fmt.str "%a" Code_buffer.pp_label l);
          Hashtbl.replace lid_of l !n_labels;
          incr n_labels
      | _ -> ())
    items;
  let lbl_offset = Array.make (max 1 !n_labels) 0 in
  (* per item: its own label id (Label_def) or its target's (sites and
     label words); -1 otherwise.  Undefined targets are diagnosed here,
     before any sizing. *)
  let lid = Array.make (max 1 n) (-1) in
  let n_sites = ref 0 in
  let find_lid l =
    match Hashtbl.find_opt lid_of l with
    | Some i -> i
    | None -> err "undefined label %s" (Fmt.str "%a" Code_buffer.pp_label l)
  in
  Array.iteri
    (fun i it ->
      match it with
      | Code_buffer.Label_def l -> lid.(i) <- find_lid l
      | Code_buffer.Branch_site { lbl; _ } | Code_buffer.Case_site { lbl; _ } ->
          lid.(i) <- find_lid lbl;
          incr n_sites
      | Code_buffer.Word_label l -> lid.(i) <- find_lid l
      | Code_buffer.Fixed _ | Code_buffer.Word_lit _ -> ())
    items;
  let sites = Array.make (max 1 !n_sites) 0 in
  let k = ref 0 in
  Array.iteri
    (fun i it ->
      match it with
      | Code_buffer.Branch_site _ | Code_buffer.Case_site _ ->
          sites.(!k) <- i;
          incr k
      | _ -> ())
    items;
  let short_sizes =
    Array.map (if span_dependent then short_size else pc_rel_size) items
  in
  let long_sizes =
    Array.map (if span_dependent then long_size else pc_rel_size) items
  in
  (* -- sizing fixpoint --------------------------------------------------- *)
  let is_long = Array.make (max 1 n) false in
  let n_long = ref 0 in
  let offsets = Array.make (max 1 n) 0 in
  let total = ref 0 in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed do
    incr iterations;
    if !iterations > n + 8 then err "span-dependent sizing did not converge";
    changed := false;
    let pool_bytes = 4 * !n_long in
    if pool_bytes > 4096 - 4 then
      err "literal pool overflow: %d long branch sites" !n_long;
    (* place items *)
    let pos = ref pool_bytes in
    for i = 0 to n - 1 do
      offsets.(i) <- !pos;
      (match items.(i) with
      | Code_buffer.Label_def _ -> lbl_offset.(lid.(i)) <- !pos
      | _ -> ());
      pos := !pos + (if is_long.(i) then long_sizes.(i) else short_sizes.(i))
    done;
    total := !pos;
    (* widen sites whose target is out of short range; widening is
       monotone, so the long count only ever grows.  Pc-relative targets
       have a single width: nothing to widen, the loop exits after one
       placement pass. *)
    if span_dependent then
      for s = 0 to !n_sites - 1 do
        let i = sites.(s) in
        if (not is_long.(i)) && lbl_offset.(lid.(i)) > 4095 then begin
          is_long.(i) <- true;
          incr n_long;
          changed := true
        end
      done
  done;
  (* -- pool slot assignment (site order, for determinism) ---------------- *)
  let pool_slot = Array.make (max 1 n) (-1) in
  let next_slot = ref 0 in
  for s = 0 to !n_sites - 1 do
    let i = sites.(s) in
    if is_long.(i) then begin
      pool_slot.(i) <- !next_slot;
      incr next_slot
    end
  done;
  let pool_bytes = 4 * !next_slot in
  (* -- emission: encode straight into the result image ------------------- *)
  let code = Bytes.make !total '\000' in
  let put_insn pos i = Machine.Encode.encode_into i code pos in
  let target i = lbl_offset.(lid.(i)) in
  Array.iteri
    (fun i it ->
      let pos = offsets.(i) in
      match it with
      | Code_buffer.Fixed ins -> ignore (put_insn pos ins)
      | Code_buffer.Label_def _ -> ()
      | Code_buffer.Word_lit v -> Bytes.set_int32_be code pos (Int32.of_int v)
      | Code_buffer.Word_label _ ->
          Bytes.set_int32_be code pos (Int32.of_int (target i))
      | Code_buffer.Branch_site { mask; lbl = _; idx = _; x } when not span_dependent ->
          let t = target i in
          let rel = t - pos in
          if x <> 0 then
            err "indexed branch not supported on pc-relative target %s"
              target_name
          else if rel < -32768 || rel > 32767 then
            err "pc-relative branch out of range: %d bytes" rel
          else ignore (put_insn pos (Machine.Insn.Bcc { mask; rel }))
      | Code_buffer.Case_site { reg; lbl = _; idx = _ } when not span_dependent
        ->
          let t = target i in
          if t < -32768 || t > 32767 then
            err "case table offset out of immediate range: %d" t
          else begin
            let pos =
              put_insn pos
                (Machine.Insn.Ri { op = "addi"; rd = reg; rs = reg; imm = t })
            in
            let pos =
              put_insn pos
                (Machine.Insn.R3
                   { op = "add"; rd = reg; rs1 = reg; rs2 = code_base })
            in
            ignore
              (put_insn pos (Machine.Insn.Mem { op = "lw"; rd = reg; dsp = 0; rb = reg }))
          end
      | Code_buffer.Branch_site { mask; lbl = _; idx; x } ->
          let t = target i in
          if not is_long.(i) then
            ignore
              (put_insn pos
                 (Machine.Insn.Rx { op = "bc"; r1 = mask; d2 = t; x2 = x; b2 = code_base }))
          else begin
            let slot = pool_slot.(i) in
            Bytes.set_int32_be code (4 * slot) (Int32.of_int t);
            let pos =
              put_insn pos
                (Machine.Insn.Rx
                   { op = "l"; r1 = idx; d2 = 4 * slot; x2 = 0; b2 = code_base })
            in
            let pos =
              if x = 0 then pos
              else put_insn pos (Machine.Insn.Rr { op = "ar"; r1 = idx; r2 = x })
            in
            ignore
              (put_insn pos
                 (Machine.Insn.Rx
                    { op = "bc"; r1 = mask; d2 = 0; x2 = idx; b2 = code_base }))
          end
      | Code_buffer.Case_site { reg; lbl = _; idx } ->
          let t = target i in
          if not is_long.(i) then
            ignore
              (put_insn pos
                 (Machine.Insn.Rx { op = "l"; r1 = reg; d2 = t; x2 = reg; b2 = code_base }))
          else begin
            let slot = pool_slot.(i) in
            Bytes.set_int32_be code (4 * slot) (Int32.of_int t);
            let pos =
              put_insn pos
                (Machine.Insn.Rx
                   { op = "l"; r1 = idx; d2 = 4 * slot; x2 = 0; b2 = code_base })
            in
            let pos =
              put_insn pos (Machine.Insn.Rr { op = "ar"; r1 = idx; r2 = reg })
            in
            ignore
              (put_insn pos
                 (Machine.Insn.Rx
                    { op = "l"; r1 = reg; d2 = 0; x2 = idx; b2 = code_base }))
          end)
    items;
  if Metrics.enabled () then begin
    Metrics.add m_resolutions 1;
    Metrics.add m_passes !iterations;
    Metrics.add m_sites !n_sites;
    Metrics.add m_long !next_slot;
    Metrics.add m_short (!n_sites - !next_slot);
    Metrics.add m_pool_words !next_slot
  end;
  {
    code;
    entry = pool_bytes;
    labels = Hashtbl.fold (fun l i acc -> (l, lbl_offset.(i)) :: acc) lid_of [];
    n_sites = !n_sites;
    n_long = !next_slot;
    pool_words = !next_slot;
    iterations = !iterations;
  }

(** Resolve and wrap into an object module. *)
let to_objmod ?(name = "MAIN") ?code_base ?target (buf : Code_buffer.t) :
    (Machine.Objmod.t * resolved, string) result =
  match resolve ?code_base ?target buf with
  | r -> Ok (Machine.Objmod.of_code ~name ~entry:r.entry r.code, r)
  | exception Resolve_error m -> Error m
  | exception Machine.Encode.Encode_error m -> Error m
