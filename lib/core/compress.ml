(** Parse-table compression.

    Two classical techniques, composable (the paper's "compressed" table,
    Table 2, notes its tables are "by no means minimally compressed"):

    - default reductions: the most common reduce action of a row becomes
      the row default, removing those entries from the row (error
      detection is delayed by at most a few reductions, never lost);
    - row-displacement ("comb") packing: the remaining sparse rows are
      overlaid into a single value array with a check array.

    Plus one profile-guided layout ({!specialize}): the hottest states by
    measured visit count get dense flat rows ([hot_value], probed in O(1)
    with no check), the cold tail stays comb-packed, and default
    reductions are chosen by measured production frequency instead of
    static cell counts — Samuelsson's example-based table specialization
    applied to Bird's code-generator tables.

    Entry encoding (16-bit): 0 = error, 1 = accept, 2+2k = shift k,
    3+2k = reduce k. *)

type method_ =
  | No_compression
  | Defaults_only
  | Comb_only
  | Defaults_and_comb
  | Hybrid
      (** profile-specialized: hot states dense in [hot_value], cold
          states comb-packed with frequency-chosen defaults *)

let encode_action : Parse_table.action -> int = function
  | Error -> 0
  | Accept -> 1
  | Shift s -> 2 + (2 * s)
  | Reduce p -> 3 + (2 * p)

let decode_action (v : int) : Parse_table.action =
  if v = 0 then Error
  else if v = 1 then Accept
  else if v mod 2 = 0 then Shift ((v - 2) / 2)
  else Reduce ((v - 3) / 2)

type t = {
  n_states : int;
  n_syms : int;
  method_ : method_;
  row_index : int array; (* state -> shared row id *)
  defaults : int array; (* per-row default entry (encoded) *)
  offsets : int array; (* per-row displacement into value/check *)
  value : int array;
  check : int array; (* owning column symbol + 1, 0 = free *)
  hot_index : int array;
      (* state -> offset of its dense row in hot_value, or -1; empty
         unless method_ = Hybrid *)
  hot_value : int array; (* dense rows, n_syms entries each, hottest first *)
  size_bytes : int;
}

(** Size in bytes of the uncompressed table: one 16-bit entry per
    (state, symbol) pair. *)
let uncompressed_bytes (pt : Parse_table.t) =
  Parse_table.n_states pt * Grammar.n_syms pt.Parse_table.grammar * 2

(* Default selection.  The candidates are the reduce actions present in
   the row (shifts and errors are never defaulted: a defaulted shift
   would consume input wrongly).  [weight] ranks candidates first — by
   measured production frequency under {!specialize}, constant 0
   otherwise — then the static cell count, then the smaller encoding.
   The tie chain is a strict total order, so the choice is independent
   of hash iteration order, and a uniform profile (all weights equal)
   picks exactly what the unprofiled path picks. *)
let row_default ?(weight = fun _ -> 0) method_ (row : Parse_table.action array)
    : int =
  match method_ with
  | No_compression | Comb_only -> 0
  | Defaults_only | Defaults_and_comb | Hybrid ->
      let counts = Hashtbl.create 8 in
      Array.iter
        (fun a ->
          match a with
          | Parse_table.Reduce _ ->
              let v = encode_action a in
              Hashtbl.replace counts v
                (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
          | _ -> ())
        row;
      let best = ref 0 and best_key = ref (min_int, min_int, min_int) in
      Hashtbl.iter
        (fun v c ->
          let key = (weight ((v - 3) / 2), c, -v) in
          if key > !best_key then begin
            best_key := key;
            best := v
          end)
        counts;
      !best

(* Per-state (default, significant entries) extraction — the
   n_states x n_syms sweep, each state independent, mapped over the
   pool; results land by state index, so the outcome is worker-count
   invariant. *)
let extract_rows ?pool ?weight method_ (pt : Parse_table.t) :
    (int * (int * int) list) array =
  Pool.maybe pool
    (fun row ->
      let d = row_default ?weight method_ row in
      let entries = ref [] in
      Array.iteri
        (fun sym a ->
          let v = encode_action a in
          if v <> d && v <> 0 then entries := (sym, v) :: !entries)
        row;
      (d, List.rev !entries))
    pt.Parse_table.actions

(* Row sharing: map distinct (default, entries) values to row ids;
   returns the state->row map and the distinct rows in first-seen
   order. *)
let share_rows (state_rows : (int * (int * int) list) array) :
    int array * (int * (int * int) list) array =
  let row_ids : (int * (int * int) list, int) Hashtbl.t = Hashtbl.create 64 in
  let row_index = Array.make (Array.length state_rows) 0 in
  let distinct = ref [] in
  let n_rows = ref 0 in
  Array.iteri
    (fun s row ->
      match Hashtbl.find_opt row_ids row with
      | Some id -> row_index.(s) <- id
      | None ->
          let id = !n_rows in
          incr n_rows;
          Hashtbl.replace row_ids row id;
          distinct := row :: !distinct;
          row_index.(s) <- id)
    state_rows;
  (row_index, Array.of_list (List.rev !distinct))

(* First-fit row displacement over the rows named by [order] (every
   other row gets the past-the-end offset: all probes miss into the
   default).  The check array stores the *column symbol* (one byte),
   which is sound because packed rows always take distinct offsets: a
   position p can only satisfy check[p] = sym with p = offset + sym for
   the single row that owns it.

   The scan is kept near-linear in the packed size: a monotone
   [min_free] cursor (slots only ever fill, never free) lets each row
   start probing at the first offset that could possibly place its
   lowest column on a free slot, and both the taken-offset set and the
   candidate probe run over plain arrays with no per-probe allocation.

   Per-row packing prep — the entry array and the column bitmask the
   first-fit probe walks — is pure per row and maps over the pool
   (chunks of rows, merged by row id).  The placement loop itself stays
   sequential: each row's offset depends on the occupancy left by every
   earlier row, and byte-identical tables at any worker count are a
   hard requirement. *)
let pack_rows ?pool ~(n_rows : int)
    ~(entries_of : (int * int) list array) ~(order : int array) () :
    int array * int array * int array =
  let prepped =
    Pool.maybe pool
      (fun entry_list ->
        match entry_list with
        | [] -> None
        | l ->
            let entries = Array.of_list l in
            let ne = Array.length entries in
            let s0 = fst entries.(0) in
            (* the row's columns as a bit mask over [0, s_max] *)
            let s_max = fst entries.(ne - 1) in
            let mwords = (s_max lsr 5) + 1 in
            let mask = Array.make mwords 0 in
            Array.iter
              (fun (s, _) ->
                mask.(s lsr 5) <- mask.(s lsr 5) lor (1 lsl (s land 31)))
              entries;
            Some (entries, s0, mwords, mask))
      entries_of
  in
  let cap = ref (max 64 (n_rows * 4)) in
  let value = ref (Array.make !cap 0) in
  let check = ref (Array.make !cap 0) in
  let used = ref 0 in
  let taken = ref (Bytes.make !cap '\000') in
  let ensure n =
    if n > !cap then begin
      let ncap = max n (!cap * 2) in
      let nv = Array.make ncap 0 and nc = Array.make ncap 0 in
      Array.blit !value 0 nv 0 !cap;
      Array.blit !check 0 nc 0 !cap;
      value := nv;
      check := nc;
      cap := ncap
    end
  in
  let offsets = Array.make n_rows (-1) in
  let min_free = ref 0 in
  (* occupancy bitset mirroring the check array: candidate probing
     walks a few KB of bits (L1-resident) instead of re-reading the
     much larger check array for every candidate offset.  32-bit
     words inside native ints keep every index computation a shift
     or mask and leave headroom for the cross-word window splice. *)
  let bbits = 32 in
  let bmask = (1 lsl bbits) - 1 in
  let occ = ref (Array.make ((!cap lsr 5) + 2) 0) in
  let occ_set p =
    let i = p lsr 5 in
    if i >= Array.length !occ then begin
      let narr = Array.make (max (i + 1) (2 * Array.length !occ)) 0 in
      Array.blit !occ 0 narr 0 (Array.length !occ);
      occ := narr
    end;
    !occ.(i) <- !occ.(i) lor (1 lsl (p land 31))
  in
  Array.iter
    (fun rid ->
      match prepped.(rid) with
      | None -> ()
      | Some (entries, s0, mwords, mask) ->
          (* advance past the filled prefix: every slot below
             [min_free] is occupied, so no offset can place the first
             (lowest) column there *)
          while !min_free < !cap && !check.(!min_free) <> 0 do
            incr min_free
          done;
          let occw = !occ in
          let nocc = Array.length occw in
          let fits off =
            (off >= Bytes.length !taken || Bytes.get !taken off = '\000')
            &&
            let ok = ref true and w = ref 0 in
            while !ok && !w < mwords do
              let g = off + (!w lsl 5) in
              let i = g lsr 5 and r = g land 31 in
              let w0 = if i < nocc then occw.(i) else 0 in
              let window =
                if r = 0 then w0
                else
                  let w1 = if i + 1 < nocc then occw.(i + 1) else 0 in
                  (w0 lsr r) lor ((w1 lsl (bbits - r)) land bmask)
              in
              if window land mask.(!w) <> 0 then ok := false;
              incr w
            done;
            !ok
          in
          let off = ref (max 0 (!min_free - s0)) in
          while not (fits !off) do
            incr off
          done;
          if !off >= Bytes.length !taken then begin
            let nb =
              Bytes.make (max (!off + 1) (2 * Bytes.length !taken)) '\000'
            in
            Bytes.blit !taken 0 nb 0 (Bytes.length !taken);
            taken := nb
          end;
          Bytes.set !taken !off '\001';
          offsets.(rid) <- !off;
          Array.iter
            (fun (sym, v) ->
              let p = !off + sym in
              ensure (p + 1);
              !value.(p) <- v;
              !check.(p) <- sym + 1;
              occ_set p;
              if p + 1 > !used then used := p + 1)
            entries)
    order;
  (* unpacked rows (empty, or excluded from [order]) point past the
     packed area: every probe misses *)
  Array.iteri (fun rid off -> if off < 0 then offsets.(rid) <- !used) offsets;
  (offsets, Array.sub !value 0 !used, Array.sub !check 0 !used)

let compress ?pool ?(method_ = Defaults_and_comb) (pt : Parse_table.t) : t =
  let n_states = Parse_table.n_states pt in
  let n_syms = Grammar.n_syms pt.Parse_table.grammar in
  let state_rows = extract_rows ?pool method_ pt in
  match method_ with
  | Hybrid ->
      invalid_arg "Compress.compress: Hybrid requires a profile (specialize)"
  | No_compression | Defaults_only ->
      (* dense layout, one row per state (no sharing: the point of this
         method is the flat table the paper calls "uncompressed") *)
      let value = Array.make (n_states * n_syms) 0 in
      let check = Array.make (n_states * n_syms) 0 in
      let row_index = Array.init n_states Fun.id in
      let defaults = Array.map (fun (d, _) -> d) state_rows in
      Array.iteri
        (fun s (_, entries) ->
          List.iter
            (fun (sym, v) ->
              value.((s * n_syms) + sym) <- v;
              check.((s * n_syms) + sym) <- s + 1)
            entries)
        state_rows;
      let offsets = Array.init n_states (fun s -> s * n_syms) in
      let size_bytes =
        (* dense layout stores only the value array plus defaults *)
        (n_states * n_syms * 2)
        + match method_ with Defaults_only -> n_states * 2 | _ -> 0
      in
      { n_states; n_syms; method_; row_index; defaults; offsets; value; check;
        hot_index = [||]; hot_value = [||]; size_bytes }
  | Comb_only | Defaults_and_comb ->
      let row_index, rows = share_rows state_rows in
      let n_rows = Array.length rows in
      let defaults = Array.map fst rows in
      let entries_of = Array.map snd rows in
      let row_len = Array.map List.length entries_of in
      let order = Array.init n_rows (fun i -> i) in
      (* densest first; ties broken by row id for a strict total order,
         so the packing sequence is fully determined by the input *)
      Array.sort
        (fun (a : int) b ->
          if row_len.(a) <> row_len.(b) then Int.compare row_len.(b) row_len.(a)
          else Int.compare a b)
        order;
      let offsets, value, check =
        pack_rows ?pool ~n_rows ~entries_of ~order ()
      in
      let used = Array.length value in
      let size_bytes =
        (used * 2) (* value: 16-bit actions *)
        + used (* check: 8-bit symbol ids *)
        + (n_rows * 2) (* offsets *)
        + (n_states * 2) (* state -> row mapping *)
        + match method_ with Defaults_and_comb -> n_rows * 2 | _ -> 0
      in
      { n_states; n_syms; method_; row_index; defaults; offsets; value; check;
        hot_index = [||]; hot_value = [||]; size_bytes }

(* -- profile-guided specialization -------------------------------------------- *)

(** Hot set size: how many of the most-visited states get dense flat
    rows.  48 rows of ~2·n_syms bytes keeps the hybrid table within
    ~1.2x of the comb-packed size on the amdahl470 grammar while
    covering the overwhelming share of dispatches on measured
    workloads; override per call with [?hot_k]. *)
let default_hot_k = 48

let specialize ?pool ?hot_k ?size_budget ~(profile : Cogprof.t)
    (pt : Parse_table.t) : t =
  let n_states = Parse_table.n_states pt in
  let n_syms = Grammar.n_syms pt.Parse_table.grammar in
  let visits s =
    if s < Array.length profile.Cogprof.state_visits then
      profile.Cogprof.state_visits.(s)
    else 0
  in
  let fires p =
    if p < Array.length profile.Cogprof.prod_fires then
      profile.Cogprof.prod_fires.(p)
    else 0
  in
  (* defaults by measured production frequency; a uniform profile makes
     every weight equal, so the choice degrades to the static one *)
  let state_rows = extract_rows ?pool ~weight:fires Hybrid pt in
  let row_index, rows = share_rows state_rows in
  let n_rows = Array.length rows in
  let defaults = Array.map fst rows in
  let entries_of = Array.map snd rows in
  (* the hot set: top-k states by visit count (visited states only);
     ties broken by state id so the layout is fully determined *)
  let by_heat = Array.init n_states Fun.id in
  Array.sort
    (fun a b ->
      if visits a <> visits b then Int.compare (visits b) (visits a)
      else Int.compare a b)
    by_heat;
  let live_max =
    let rec live i =
      if i < n_states && visits by_heat.(i) > 0 then live (i + 1) else i
    in
    live 0
  in
  let row_len = Array.map List.length entries_of in
  (* one complete layout at a given hot-state count; everything above
     (row extraction, sharing, heat order) is shared across candidates *)
  let layout (k : int) : t =
    let k = min k live_max in
    let hot_index = Array.make n_states (-1) in
    let hot_value = Array.make (k * n_syms) 0 in
    for slot = 0 to k - 1 do
      let s = by_heat.(slot) in
      let d, entries = state_rows.(s) in
      (* the dense row materializes exactly what the comb probe answers:
         significant entries explicit, everything else the row default *)
      let base = slot * n_syms in
      Array.fill hot_value base n_syms d;
      List.iter (fun (sym, v) -> hot_value.(base + sym) <- v) entries;
      hot_index.(s) <- base
    done;
    (* comb-pack only the rows some cold state still probes; rows owned
       exclusively by hot states are served from hot_value and take no
       comb space.  Row heat = summed visits of the cold states probing
       it; packing order is densest-and-hottest-first. *)
    let cold_heat = Array.make n_rows (-1) in
    Array.iteri
      (fun s rid ->
        if hot_index.(s) < 0 then
          cold_heat.(rid) <- max 0 cold_heat.(rid) + visits s)
      row_index;
    let packable =
      Array.init n_rows Fun.id
      |> Array.to_list
      |> List.filter (fun rid -> cold_heat.(rid) >= 0 && row_len.(rid) > 0)
      |> Array.of_list
    in
    Array.sort
      (fun (a : int) b ->
        if row_len.(a) <> row_len.(b) then Int.compare row_len.(b) row_len.(a)
        else if cold_heat.(a) <> cold_heat.(b) then
          Int.compare cold_heat.(b) cold_heat.(a)
        else Int.compare a b)
      packable;
    let offsets, value, check =
      pack_rows ?pool ~n_rows ~entries_of ~order:packable ()
    in
    let used = Array.length value in
    let size_bytes =
      (used * 2) (* value: 16-bit actions *)
      + used (* check: 8-bit symbol ids *)
      + (n_rows * 2) (* offsets *)
      + (n_states * 2) (* state -> row mapping *)
      + (n_rows * 2) (* defaults *)
      + (n_states * 2) (* hot_index *)
      + (k * n_syms * 2) (* dense hot rows *)
    in
    { n_states; n_syms; method_ = Hybrid; row_index; defaults; offsets; value;
      check; hot_index; hot_value; size_bytes }
  in
  match (hot_k, size_budget) with
  | Some k, _ -> layout (min k n_states)
  | None, None -> layout (min default_hot_k n_states)
  | None, Some budget ->
      (* adaptive: the largest hot-state count whose laid-out size fits
         the budget.  size(k) grows by ~2·n_syms bytes per promoted
         state minus whatever comb space exclusively-owned rows free, so
         it is monotone enough for a binary search; the result is always
         within budget when even k=0 is (k=0 is comb packing plus two
         empty side arrays), and fully deterministic — the probe
         sequence depends only on the table, profile and budget. *)
      let floor = layout 0 in
      if floor.size_bytes > budget || live_max = 0 then floor
      else begin
        let ceiling = layout live_max in
        if ceiling.size_bytes <= budget then ceiling
        else begin
          let lo = ref 0 and hi = ref live_max and best = ref floor in
          while !hi - !lo > 1 do
            let mid = (!lo + !hi) / 2 in
            let cand = layout mid in
            if cand.size_bytes <= budget then begin
              lo := mid;
              best := cand
            end
            else hi := mid
          done;
          !best
        end
      end

(** O(1) probe returning the raw encoded entry: row_index -> offset ->
    value/check, falling back to the row default on a check miss; hot
    states of a hybrid table are served from their dense row in one
    indexed read.  This is the runtime dispatch path {!Driver.parse}
    runs on, so it avoids allocating a {!Parse_table.action} per
    lookup. *)
let action_code (c : t) (state : int) (sym : int) : int =
  let comb_probe () =
    let rid = c.row_index.(state) in
    let p = c.offsets.(rid) + sym in
    if p >= 0 && p < Array.length c.check && c.check.(p) = sym + 1 then
      c.value.(p)
    else c.defaults.(rid)
  in
  match c.method_ with
  | Comb_only | Defaults_and_comb -> comb_probe ()
  | Hybrid ->
      let h = c.hot_index.(state) in
      if h >= 0 then c.hot_value.(h + sym) else comb_probe ()
  | No_compression | Defaults_only ->
      let rid = c.row_index.(state) in
      let p = c.offsets.(rid) + sym in
      if p >= 0 && p < Array.length c.check && c.check.(p) = state + 1 then
        c.value.(p)
      else c.defaults.(rid)

(** Specialized probe for the driver's inner loop: the table's arrays and
    the method dispatch are resolved once, outside the per-lookup path.
    Equivalent to [action_code c]. *)
let dispatcher (c : t) : int -> int -> int =
  let row_index = c.row_index
  and offsets = c.offsets
  and value = c.value
  and check = c.check
  and defaults = c.defaults in
  let ncheck = Array.length check in
  match c.method_ with
  | Comb_only | Defaults_and_comb ->
      (* p >= 0 always: offsets and symbol ids are non-negative *)
      fun state sym ->
        let rid = row_index.(state) in
        let p = offsets.(rid) + sym in
        if p < ncheck && check.(p) = sym + 1 then value.(p) else defaults.(rid)
  | Hybrid ->
      let hot_index = c.hot_index and hot_value = c.hot_value in
      fun state sym ->
        let h = hot_index.(state) in
        if h >= 0 then hot_value.(h + sym)
        else
          let rid = row_index.(state) in
          let p = offsets.(rid) + sym in
          if p < ncheck && check.(p) = sym + 1 then value.(p)
          else defaults.(rid)
  | No_compression | Defaults_only -> fun state sym -> action_code c state sym

(** Decoded variant of {!action_code}. *)
let action (c : t) (state : int) (sym : int) : Parse_table.action =
  decode_action (action_code c state sym)

(** Table lookup through the compressed representation. *)
let lookup (c : t) ~(state : int) ~(sym : int) : Parse_table.action =
  action c state sym

(** Check that a compressed table reproduces the original exactly, modulo
    default reductions replacing errors (which only delay error
    detection).  Returns the number of entries where an error was replaced
    by a default reduction. *)
let verify (c : t) (pt : Parse_table.t) : (int, string) result =
  let softened = ref 0 in
  let bad = ref None in
  Array.iteri
    (fun state row ->
      Array.iteri
        (fun sym a ->
          let got = lookup c ~state ~sym in
          if got <> a then
            match (a, got) with
            | Parse_table.Error, Parse_table.Reduce _ -> incr softened
            | _ ->
                if !bad = None then
                  bad := Some (Fmt.str "state %d sym %d mismatch" state sym))
        row)
    pt.Parse_table.actions;
  match !bad with Some m -> Error m | None -> Ok !softened
