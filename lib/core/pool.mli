(** A Domain-based worker pool for data-parallel table construction and
    batch compilation.

    The pool owns [size - 1] long-lived worker domains; the caller's own
    domain participates in every parallel region, so a pool of size 1
    spawns nothing and runs everything inline.  Work is distributed by
    chunked index claiming over an atomic cursor, which keeps the
    per-element overhead at one fetch-and-add per chunk and makes the
    result array's element order independent of scheduling: [map] always
    returns results positioned by input index, so parallel output is
    deterministic whenever [f] itself is. *)

type t

exception Worker_failed of int
(** A worker finished a parallel region without placing a result and
    without reporting an exception (an abnormally terminated domain);
    carries the index of the abandoned input.  A registered
    [Printexc] printer renders it descriptively. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] total workers
    (including the calling domain); defaults to
    [Domain.recommended_domain_count ()].  Clamped to [1, 128]. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] applies [f] to every element, in parallel, and
    returns the results in input order.  If any application raises, the
    remaining chunks are abandoned, every worker is joined back to an
    idle state, and the first exception observed is re-raised in the
    caller (exception-safe join: the pool remains usable). *)

val maybe : t option -> ('a -> 'b) -> 'a array -> 'b array
(** [maybe pool f arr] is [map] when a pool is supplied and a plain
    sequential [Array.map] otherwise — the sequential fallback every
    [?pool] entry point shares. *)

val shutdown : t -> unit
(** Join and tear down the worker domains.  Idempotent; the pool must be
    idle (no [map] in flight). *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val run_parallel : t -> (int -> unit) array -> unit
(** [run_parallel pool thunks] runs every thunk (passed its own index)
    across the pool; a bare fork-join for heterogeneous work such as
    concurrent-store tests.  Same exception behaviour as [map]. *)
