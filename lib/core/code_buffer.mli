(** The code buffer filled by the code emission routine.

    Most entries are finished machine instructions; branch and case-table
    sites stay symbolic ("while parsing the IF, label locations and
    branch instructions are kept in a dictionary", paper section 3)
    until the Loader Record Generator resolves them.

    Backed by a growable array with a cached instruction count: appends
    are O(1), [n_instructions] is O(1), and consumers read items in
    place. *)

(** Labels: [User] labels come from the IF ([label_def lbl.n]);
    [Internal] labels are invented by the code emitter for [skip]
    targets, so the shaper never has to allocate them (paper 4.2). *)
type label = User of int | Internal of int

val pp_label : Format.formatter -> label -> unit

type item =
  | Fixed of Machine.Insn.t
  | Branch_site of { mask : int; lbl : label; idx : int; x : int }
      (** conditional branch to [lbl]; [idx] is the register reserved for
          the long form; [x] an optional extra index register (0 = none) *)
  | Case_site of { reg : int; lbl : label; idx : int }
      (** load of the branch-table word at [lbl] indexed by [reg] *)
  | Label_def of label
  | Word_lit of int  (** literal data word in the instruction stream *)
  | Word_label of label  (** data word holding a label's offset *)

type t

val create : unit -> t
val add : t -> item -> unit
val length : t -> int

val get : t -> int -> item
(** [get t i] is the [i]th appended item; raises [Invalid_argument]
    outside [0..length-1]. *)

val contents : t -> item array
(** The appended items in order, as a fresh array. *)

val items : t -> item list
(** The appended items in order, as a list (prefer {!contents} or
    {!iter} on hot paths). *)

val iter : (item -> unit) -> t -> unit

val n_instructions : t -> int
(** Count of machine instructions (sites count as one); O(1), cached on
    append. *)

val pp_item : Format.formatter -> item -> unit

val pp : Format.formatter -> t -> unit
(** Assembly-style listing in the manner of the paper's Appendix 1. *)

val to_listing : t -> string
