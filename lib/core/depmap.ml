(** Dependency map from productions to the build artifacts they reach.

    For each user production: the LR(0) states whose closures carry one
    of its items (the states its grammar signature shapes), the states
    whose action rows reduce by it (where its lookahead sets landed),
    and the comb rows those states map to under row sharing.  This is
    the downstream footprint an edit to that production can touch; the
    incremental builder's splice rule — any grammar-shape change
    rebuilds the whole automaton and comb — follows from the fact that
    comb packing is a global first-fit, so [rows_of_prod] is reported
    for explanation and auditing, not partial repacking. *)

type t = {
  n_user_prods : int;
  states_of_prod : int array array;
      (** production -> LR(0) state ids whose closure contains one of
          its items, ascending *)
  reduce_states_of_prod : int array array;
      (** production -> state ids whose action row reduces by it
          (i.e. where its lookahead set placed a reduction), ascending *)
  rows_of_prod : int array array;
      (** production -> distinct comb row ids reached by either state
          set, ascending; empty when built without a compressed table *)
}

let sorted_dedup (l : int list) : int array =
  let a = Array.of_list (List.sort_uniq Int.compare l) in
  a

(* A bundle reloaded from disk carries a skeletal automaton (empty
   closures — the driver never reads items); rebuild the real one from
   the grammar in that case, which is deterministic and cheap relative
   to any reporting use. *)
let real_automaton (pt : Parse_table.t) : Lr0.t =
  let auto = pt.Parse_table.automaton in
  let skeletal =
    Array.length auto.Lr0.states = 0
    || Array.for_all
         (fun st -> Array.length st.Lr0.closure = 0)
         auto.Lr0.states
  in
  if skeletal then Lr0.build pt.Parse_table.grammar else auto

let build ?(compressed : Compress.t option) ~(n_user_prods : int)
    (pt : Parse_table.t) : t =
  let auto = real_automaton pt in
  let states_acc = Array.make n_user_prods [] in
  Array.iter
    (fun (st : Lr0.state) ->
      (* one state can hold several items of the same production
         (different dots); dedup via sort_uniq at the end *)
      Array.iter
        (fun item ->
          let p = Lr0.item_prod item in
          if p < n_user_prods then
            states_acc.(p) <- st.Lr0.id :: states_acc.(p))
        st.Lr0.closure)
    auto.Lr0.states;
  let reduce_acc = Array.make n_user_prods [] in
  Array.iteri
    (fun state row ->
      Array.iter
        (fun (a : Parse_table.action) ->
          match a with
          | Parse_table.Reduce p when p < n_user_prods ->
              (match reduce_acc.(p) with
              | s :: _ when s = state -> ()
              | _ -> reduce_acc.(p) <- state :: reduce_acc.(p))
          | _ -> ())
        row)
    pt.Parse_table.actions;
  let states_of_prod = Array.map sorted_dedup states_acc in
  let reduce_states_of_prod = Array.map sorted_dedup reduce_acc in
  let rows_of_prod =
    match compressed with
    | None -> Array.make n_user_prods [||]
    | Some c ->
        let row_of s =
          if s >= 0 && s < Array.length c.Compress.row_index then
            Some c.Compress.row_index.(s)
          else None
        in
        Array.init n_user_prods (fun p ->
            sorted_dedup
              (List.filter_map row_of
                 (Array.to_list states_of_prod.(p)
                 @ Array.to_list reduce_states_of_prod.(p))))
  in
  { n_user_prods; states_of_prod; reduce_states_of_prod; rows_of_prod }

(** The union footprint of a set of changed productions: how many
    distinct states and comb rows their edits can reach. *)
let affected (t : t) (prods : int list) : int array * int array =
  let states = ref [] and rows = ref [] in
  List.iter
    (fun p ->
      if p >= 0 && p < t.n_user_prods then begin
        states :=
          Array.to_list t.states_of_prod.(p)
          @ Array.to_list t.reduce_states_of_prod.(p)
          @ !states;
        rows := Array.to_list t.rows_of_prod.(p) @ !rows
      end)
    prods;
  (sorted_dedup !states, sorted_dedup !rows)

let pp_prod ppf (t : t) (p : int) =
  if p >= 0 && p < t.n_user_prods then
    Fmt.pf ppf "%d state%s, %d reduce site%s, %d comb row%s"
      (Array.length t.states_of_prod.(p))
      (if Array.length t.states_of_prod.(p) = 1 then "" else "s")
      (Array.length t.reduce_states_of_prod.(p))
      (if Array.length t.reduce_states_of_prod.(p) = 1 then "" else "s")
      (Array.length t.rows_of_prod.(p))
      (if Array.length t.rows_of_prod.(p) = 1 then "" else "s")
