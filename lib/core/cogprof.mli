(** Execution profiles of the generated code generator: per-LR-state
    dispatch counts and per-production reduction counts, captured by
    {!Driver.parse} and consumed by {!Compress.specialize}.

    A collector is allocated per capture run by the caller (no toplevel
    accumulation state; never shared between domains).  The on-disk
    form is a versioned, canonical, line-oriented text file — mergeable
    across runs and stable enough to check into the repository. *)

type t = {
  state_visits : int array;  (** per LR state: action lookups taken *)
  prod_fires : int array;  (** per production: reductions taken *)
}

val version : int
(** On-disk format version; {!of_string} rejects any other. *)

val create : n_states:int -> n_prods:int -> t
(** A zeroed collector for a bundle of the given dimensions. *)

val uniform : n_states:int -> n_prods:int -> t
(** Every state and production weighted 1: specializing with it is
    dispatch-equivalent to not specializing. *)

val n_states : t -> int
val n_prods : t -> int

val compatible : t -> n_states:int -> n_prods:int -> bool
(** Whether the profile's dimensions match a table bundle's; a mismatch
    means it was captured against a different specification. *)

val visit : t -> int -> unit
(** Record one action lookup from a state (bounds-guarded no-op when out
    of range). *)

val fire : t -> int -> unit
(** Record one reduction of a production (bounds-guarded). *)

val total_visits : t -> int
val total_fires : t -> int
val is_empty : t -> bool

val merge : t -> t -> (t, string) result
(** Sum two same-shape profiles into a new one; profiles of different
    dimensions do not merge. *)

val hot_set : k:int -> t -> int list
(** The top-[k] states by visit count (visited states only), hottest
    first, ties by state id — the set {!Compress.specialize} would
    promote to dense rows at that [k]. *)

val hot_overlap : k:int -> t -> t -> float
(** Jaccard similarity of two profiles' [k]-element hot sets: 1.0 when
    identical (or both empty).  The drift signal behind
    [bench profile --check] and the [pasc compile --specialize]
    staleness warning. *)

val to_string : t -> string
(** Canonical serialization (sorted, zero-suppressed). *)

val of_string : string -> (t, string) result
(** Parse {!to_string} output; rejects version mismatches, malformed
    lines and out-of-range indices. *)

val digest : t -> string
(** Content digest of the canonical serialization; {!Tables_cache} mixes
    it into the bundle key so stale specializations never load. *)

val save : string -> t -> (unit, string) result
val load : string -> (t, string) result
val pp : Format.formatter -> t -> unit
