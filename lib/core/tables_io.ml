(** Binary serialization of the generated code generator's tables.

    This is what "the object modules for the tables" (paper Table 2)
    means here: the template array and the parse table have concrete
    binary representations whose sizes the benchmark reports in
    4096-byte pages.  The format round-trips: [read (write t)]
    reconstructs a bundle that drives code generation identically. *)

(* -- primitive writers ------------------------------------------------------ *)

let w_i32 b v = Buffer.add_int32_be b (Int32.of_int v)

let w_str b s =
  w_i32 b (String.length s);
  Buffer.add_string b s

let w_list b f xs =
  w_i32 b (List.length xs);
  List.iter (f b) xs

let w_arr b f xs =
  w_i32 b (Array.length xs);
  Array.iter (f b) xs

type reader = { buf : string; mutable pos : int }

exception Corrupt of string

let r_i32 r =
  if r.pos + 4 > String.length r.buf then raise (Corrupt "truncated");
  let v = Int32.to_int (String.get_int32_be r.buf r.pos) in
  r.pos <- r.pos + 4;
  v

let r_str r =
  let n = r_i32 r in
  if r.pos + n > String.length r.buf then raise (Corrupt "truncated string");
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r f =
  let n = r_i32 r in
  List.init n (fun _ -> f r)

let r_arr r f =
  let n = r_i32 r in
  Array.init n (fun _ -> f r)

(* -- template encoding ------------------------------------------------------- *)

let rec w_src b : Template.src -> unit = function
  | Template.Stack k -> w_i32 b 0; w_i32 b k
  | Template.Alloc i -> w_i32 b 1; w_i32 b i
  | Template.Phys r -> w_i32 b 2; w_i32 b r
  | Template.Lit n -> w_i32 b 3; w_i32 b n
  | Template.Plus (s, n) -> w_i32 b 4; w_src b s; w_i32 b n

let rec r_src r : Template.src =
  match r_i32 r with
  | 0 -> Template.Stack (r_i32 r)
  | 1 -> Template.Alloc (r_i32 r)
  | 2 -> Template.Phys (r_i32 r)
  | 3 -> Template.Lit (r_i32 r)
  | 4 ->
      let s = r_src r in
      Template.Plus (s, r_i32 r)
  | k -> raise (Corrupt (Fmt.str "bad src tag %d" k))

let w_operand b (o : Template.operand) =
  w_src b o.Template.base;
  w_list b w_src o.Template.subs

let r_operand r : Template.operand =
  let base = r_src r in
  { Template.base; subs = r_list r r_src }

let w_opt b f = function
  | None -> w_i32 b 0
  | Some x ->
      w_i32 b 1;
      f b x

let r_opt r f = match r_i32 r with 0 -> None | _ -> Some (f r)

let w_step b : Template.step -> unit = function
  | Template.Instr { mnem; ops } ->
      w_i32 b 0; w_str b mnem; w_list b w_operand ops
  | Template.Modifies s -> w_i32 b 1; w_src b s
  | Template.Ignore_lhs -> w_i32 b 2
  | Template.Label_location s -> w_i32 b 3; w_src b s
  | Template.Label_ptr s -> w_i32 b 4; w_src b s
  | Template.Branch { cond; lbl; idx } ->
      w_i32 b 5; w_src b cond; w_src b lbl; w_src b idx
  | Template.Branch_indexed { cond; lbl; idx; index } ->
      w_i32 b 6; w_src b cond; w_src b lbl; w_src b idx; w_src b index
  | Template.Skip { cond; dist; idx } ->
      w_i32 b 7; w_src b cond; w_src b dist; w_src b idx
  | Template.Case_load { reg; lbl; idx } ->
      w_i32 b 8; w_src b reg; w_src b lbl; w_src b idx
  | Template.Push { sym; value } -> w_i32 b 9; w_i32 b sym; w_src b value
  | Template.Ibm_length s -> w_i32 b 10; w_src b s
  | Template.Stmt_record s -> w_i32 b 11; w_src b s
  | Template.List_request s -> w_i32 b 12; w_src b s
  | Template.Abort s -> w_i32 b 13; w_src b s
  | Template.Common { ty; fp; cse; cnt; reg; dsp; base } ->
      w_i32 b 14;
      w_opt b (fun b v -> w_i32 b v) ty;
      w_i32 b (if fp then 1 else 0);
      w_src b cse; w_src b cnt; w_src b reg; w_src b dsp; w_src b base
  | Template.Find_common { cse; fp; push_sym } ->
      w_i32 b 15; w_src b cse; w_i32 b (if fp then 1 else 0); w_i32 b push_sym

let r_step r : Template.step =
  match r_i32 r with
  | 0 ->
      let mnem = r_str r in
      Template.Instr { mnem; ops = r_list r r_operand }
  | 1 -> Template.Modifies (r_src r)
  | 2 -> Template.Ignore_lhs
  | 3 -> Template.Label_location (r_src r)
  | 4 -> Template.Label_ptr (r_src r)
  | 5 ->
      let cond = r_src r in
      let lbl = r_src r in
      Template.Branch { cond; lbl; idx = r_src r }
  | 6 ->
      let cond = r_src r in
      let lbl = r_src r in
      let idx = r_src r in
      Template.Branch_indexed { cond; lbl; idx; index = r_src r }
  | 7 ->
      let cond = r_src r in
      let dist = r_src r in
      Template.Skip { cond; dist; idx = r_src r }
  | 8 ->
      let reg = r_src r in
      let lbl = r_src r in
      Template.Case_load { reg; lbl; idx = r_src r }
  | 9 ->
      let sym = r_i32 r in
      Template.Push { sym; value = r_src r }
  | 10 -> Template.Ibm_length (r_src r)
  | 11 -> Template.Stmt_record (r_src r)
  | 12 -> Template.List_request (r_src r)
  | 13 -> Template.Abort (r_src r)
  | 14 ->
      let ty = r_opt r r_i32 in
      let fp = r_i32 r <> 0 in
      let cse = r_src r in
      let cnt = r_src r in
      let reg = r_src r in
      let dsp = r_src r in
      Template.Common { ty; fp; cse; cnt; reg; dsp; base = r_src r }
  | 15 ->
      let cse = r_src r in
      let fp = r_i32 r <> 0 in
      Template.Find_common { cse; fp; push_sym = r_i32 r }
  | k -> raise (Corrupt (Fmt.str "bad step tag %d" k))

(* reg classes as small ints *)
let class_code : Symtab.reg_class -> int = function
  | Symtab.Gpr -> 0
  | Symtab.Pair -> 1
  | Symtab.Fpr -> 2
  | Symtab.Fpair -> 3
  | Symtab.Cc -> 4
  | Symtab.Noclass -> 5

let class_of_code = function
  | 0 -> Symtab.Gpr
  | 1 -> Symtab.Pair
  | 2 -> Symtab.Fpr
  | 3 -> Symtab.Fpair
  | 4 -> Symtab.Cc
  | 5 -> Symtab.Noclass
  | k -> raise (Corrupt (Fmt.str "bad class code %d" k))


(** Serialize the template array alone (Table 2, entry i). *)
let template_array_bytes (t : Tables.t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "CGT1";
  w_arr b
    (fun b c ->
      match c with
      | None -> w_i32 b 0
      | Some (c : Template.compiled) ->
          w_i32 b 1;
          w_i32 b c.Template.c_prod;
          w_arr b
            (fun b (a : Template.alloc_req) ->
              w_i32 b (class_code a.Template.a_class);
              w_str b a.Template.a_name;
              w_i32 b a.Template.a_idx)
            c.Template.c_allocs;
          w_arr b
            (fun b (n : Template.need_req) ->
              w_i32 b (class_code n.Template.n_class);
              w_i32 b n.Template.n_reg)
            c.Template.c_needs;
          w_arr b w_step c.Template.c_steps;
          w_opt b
            (fun b (p : Template.push) ->
              w_i32 b p.Template.push_sym;
              w_src b p.Template.push_src)
            c.Template.c_push)
    t.Tables.compiled;
  Buffer.contents b

let r_template_array (r : reader) : Template.compiled option array =
  if
    r.pos + 4 > String.length r.buf
    || String.sub r.buf r.pos 4 <> "CGT1"
  then raise (Corrupt "bad template array magic");
  r.pos <- r.pos + 4;
  r_arr r (fun r ->
      match r_i32 r with
      | 0 -> None
      | _ ->
          let c_prod = r_i32 r in
          let c_allocs =
            r_arr r (fun r ->
                let a_class = class_of_code (r_i32 r) in
                let a_name = r_str r in
                { Template.a_class; a_name; a_idx = r_i32 r })
          in
          let c_needs =
            r_arr r (fun r ->
                let n_class = class_of_code (r_i32 r) in
                { Template.n_class; n_reg = r_i32 r })
          in
          let c_steps = r_arr r r_step in
          let c_push =
            r_opt r (fun r ->
                let push_sym = r_i32 r in
                { Template.push_sym; push_src = r_src r })
          in
          Some { Template.c_prod; c_allocs; c_needs; c_steps; c_push })

let read_template_array (s : string) : Template.compiled option array =
  r_template_array { buf = s; pos = 0 }

(** Serialize a compressed parse table (Table 2, entries ii/iii). *)
let parse_table_bytes (c : Compress.t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "CGP1";
  w_i32 b c.Compress.n_states;
  w_i32 b c.Compress.n_syms;
  (* 16-bit cells, as the size accounting assumes *)
  let w_u16s arr =
    w_i32 b (Array.length arr);
    Array.iter
      (fun v ->
        Buffer.add_uint16_be b (v land 0xFFFF))
      arr
  in
  w_u16s c.Compress.defaults;
  w_i32 b (Array.length c.Compress.offsets);
  Array.iter (fun v -> w_i32 b v) c.Compress.offsets;
  w_u16s c.Compress.value;
  w_u16s c.Compress.check;
  Buffer.contents b

(** Table 2 size accounting, in bytes. *)
type sizes = {
  template_array : int;
  compressed_table : int;
  uncompressed_table : int;
}

let sizes (t : Tables.t) : sizes =
  (* the bundle already carries the comb-packed form; no need to re-pack *)
  let compressed = t.Tables.compressed in
  {
    template_array = String.length (template_array_bytes t);
    compressed_table = compressed.Compress.size_bytes;
    uncompressed_table = Compress.uncompressed_bytes t.Tables.parse;
  }

let pages bytes = Float.of_int bytes /. 4096.0

(* -- whole-bundle serialization ----------------------------------------------- *)

(* The complete generated code generator as one artifact: grammar, type
   information, parse table and templates.  A bundle written by [write]
   and reloaded with [read] drives code generation identically — this is
   the "tables" product CoGG ships to the compiler (paper section 2). *)

let w_action b (a : Parse_table.action) = w_i32 b (Compress.encode_action a)
let r_action r : Parse_table.action = Compress.decode_action (r_i32 r)

let kind_code : Symtab.value_kind -> int = function
  | Symtab.Kint -> 0
  | Symtab.Klabel -> 1
  | Symtab.Kcse -> 2
  | Symtab.Kcond -> 3

let kind_of_kcode = function
  | 0 -> Symtab.Kint
  | 1 -> Symtab.Klabel
  | 2 -> Symtab.Kcse
  | 3 -> Symtab.Kcond
  | k -> raise (Corrupt (Fmt.str "bad kind code %d" k))

let method_code : Compress.method_ -> int = function
  | Compress.No_compression -> 0
  | Compress.Defaults_only -> 1
  | Compress.Comb_only -> 2
  | Compress.Defaults_and_comb -> 3
  | Compress.Hybrid -> 4

let method_of_code = function
  | 0 -> Compress.No_compression
  | 1 -> Compress.Defaults_only
  | 2 -> Compress.Comb_only
  | 3 -> Compress.Defaults_and_comb
  | 4 -> Compress.Hybrid
  | k -> raise (Corrupt (Fmt.str "bad compression method %d" k))

let w_int_arr b arr = w_arr b (fun b v -> w_i32 b v) arr
let r_int_arr r = r_arr r r_i32

(* The comb-packed dispatch table rides in the bundle so a cache hit
   skips row-displacement packing as well as LR construction. *)
let w_compress b (c : Compress.t) =
  w_i32 b c.Compress.n_states;
  w_i32 b c.Compress.n_syms;
  w_i32 b (method_code c.Compress.method_);
  w_int_arr b c.Compress.row_index;
  w_int_arr b c.Compress.defaults;
  w_int_arr b c.Compress.offsets;
  w_int_arr b c.Compress.value;
  w_int_arr b c.Compress.check;
  w_int_arr b c.Compress.hot_index;
  w_int_arr b c.Compress.hot_value;
  w_i32 b c.Compress.size_bytes

let r_compress r : Compress.t =
  let n_states = r_i32 r in
  let n_syms = r_i32 r in
  let method_ = method_of_code (r_i32 r) in
  let row_index = r_int_arr r in
  let defaults = r_int_arr r in
  let offsets = r_int_arr r in
  let value = r_int_arr r in
  let check = r_int_arr r in
  let hot_index = r_int_arr r in
  let hot_value = r_int_arr r in
  let size_bytes = r_i32 r in
  (* structural sanity so a corrupt entry surfaces as [Corrupt], never as
     an out-of-bounds probe at dispatch time *)
  let n_rows = Array.length defaults in
  if
    Array.length row_index <> n_states
    || Array.length offsets <> n_rows
    || Array.length value <> Array.length check
    || Array.exists (fun rid -> rid < 0 || rid >= n_rows) row_index
  then raise (Corrupt "inconsistent compressed table");
  (match method_ with
  | Compress.Hybrid ->
      if
        Array.length hot_index <> n_states
        || Array.length hot_value mod max 1 n_syms <> 0
        || Array.exists
             (fun h ->
               h <> -1 && (h < 0 || h + n_syms > Array.length hot_value))
             hot_index
      then raise (Corrupt "inconsistent hybrid hot rows")
  | _ ->
      if Array.length hot_index <> 0 || Array.length hot_value <> 0 then
        raise (Corrupt "hot rows on a non-hybrid table"));
  { Compress.n_states; n_syms; method_; row_index; defaults; offsets; value;
    check; hot_index; hot_value; size_bytes }

let w_conflict b (c : Parse_table.conflict) =
  w_i32 b c.Parse_table.c_state;
  w_i32 b c.Parse_table.c_sym;
  w_i32 b (match c.Parse_table.c_kind with `Shift_reduce -> 0 | `Reduce_reduce -> 1);
  w_action b c.Parse_table.c_chosen;
  w_action b c.Parse_table.c_dropped

let r_conflict r : Parse_table.conflict =
  let c_state = r_i32 r in
  let c_sym = r_i32 r in
  let c_kind =
    match r_i32 r with
    | 0 -> `Shift_reduce
    | 1 -> `Reduce_reduce
    | k -> raise (Corrupt (Fmt.str "bad conflict kind %d" k))
  in
  let c_chosen = r_action r in
  { Parse_table.c_state; c_sym; c_kind; c_chosen; c_dropped = r_action r }

(* v5 appendix: the incremental-rebuild metadata (per-production content
   hashes, declaration/shape digests, lookahead mode, profile digest)
   rides in the bundle behind its own magic, so a cached entry is a
   complete partial build: a later process can diff an edited spec
   against it and splice (Cogg_build.build_incremental) without ever
   having seen the original spec text. *)
let appendix_magic = "CGI5"

let mode_code : Lookahead.mode -> int = function
  | Lookahead.Slr -> 0
  | Lookahead.Lalr -> 1

let mode_of_code = function
  | 0 -> Lookahead.Slr
  | 1 -> Lookahead.Lalr
  | k -> raise (Corrupt (Fmt.str "bad lookahead mode %d" k))

(** Serialize a complete table bundle (format v5). *)
let write (t : Tables.t) : string =
  let b = Buffer.create (1 lsl 16) in
  Buffer.add_string b "CGB5";
  (* target; resolved through the registry on read *)
  w_str b t.Tables.target.Machine.Target.name;
  (* grammar *)
  let g = t.Tables.grammar in
  w_arr b w_str g.Grammar.names;
  w_arr b (fun b x -> w_i32 b (if x then 1 else 0)) g.Grammar.is_nonterminal;
  w_arr b (fun b x -> w_i32 b (if x then 1 else 0)) g.Grammar.in_if;
  w_arr b
    (fun b (p : Grammar.prod) ->
      w_i32 b p.Grammar.lhs;
      w_arr b (fun b s -> w_i32 b s) p.Grammar.rhs;
      w_i32 b p.Grammar.line)
    g.Grammar.prods;
  w_i32 b g.Grammar.goal;
  w_i32 b g.Grammar.lambda;
  w_i32 b g.Grammar.stmts;
  w_i32 b g.Grammar.eof;
  (* symbol table lists (enough to rebuild Symtab.t) *)
  let st = t.Tables.symtab in
  w_list b
    (fun b (n, c) ->
      w_str b n;
      w_i32 b (class_code c))
    st.Symtab.nonterminals;
  w_list b
    (fun b (n, k) ->
      w_str b n;
      w_i32 b (kind_code k))
    st.Symtab.terminals;
  w_list b w_str st.Symtab.operators;
  w_list b w_str st.Symtab.opcodes;
  w_list b
    (fun b (n, v) ->
      w_str b n;
      w_i32 b v)
    st.Symtab.constants;
  w_list b w_str st.Symtab.semantics;
  (* parse table: dense actions *)
  w_i32 b (Parse_table.n_states t.Tables.parse);
  Array.iter (fun row -> w_arr b w_action row) t.Tables.parse.Parse_table.actions;
  w_i32 b t.Tables.parse.Parse_table.automaton.Lr0.start;
  w_list b w_conflict t.Tables.parse.Parse_table.conflicts;
  w_compress b t.Tables.compressed;
  (* the profile-specialized hybrid table, when the bundle carries one *)
  w_opt b w_compress t.Tables.hybrid;
  (* templates and type info *)
  Buffer.add_string b (template_array_bytes t);
  w_i32 b t.Tables.n_user_prods;
  w_arr b
    (fun b c ->
      w_opt b (fun b c -> w_i32 b (class_code c)) c)
    t.Tables.class_of;
  w_arr b
    (fun b k -> w_opt b (fun b k -> w_i32 b (kind_code k)) k)
    t.Tables.kind_of;
  (* incremental appendix *)
  Buffer.add_string b appendix_magic;
  w_i32 b (mode_code t.Tables.parse.Parse_table.mode);
  w_str b t.Tables.hashes.Spec_hash.decls;
  w_str b t.Tables.hashes.Spec_hash.shape;
  w_arr b w_str t.Tables.hashes.Spec_hash.prods;
  w_opt b w_str t.Tables.profile_digest;
  Buffer.contents b

(** Reload a bundle written by {!write}.  The embedded LR(0) automaton is
    not stored: a placeholder with only the start state is rebuilt, which
    is all the driver needs (it reads actions, never items). *)
let read (s : string) : Tables.t =
  if String.length s < 4 || String.sub s 0 4 <> "CGB5" then
    raise
      (Corrupt
         (if String.length s >= 4 && String.sub s 0 3 = "CGB" then
            Fmt.str "stale bundle format %s (want CGB5)" (String.sub s 0 4)
          else "bad bundle magic"));
  let r = { buf = s; pos = 4 } in
  let target_name = r_str r in
  let target =
    match Machine.Targets.find target_name with
    | Some t -> t
    | None -> raise (Corrupt (Fmt.str "unknown target %S" target_name))
  in
  let names = r_arr r r_str in
  let is_nonterminal = r_arr r (fun r -> r_i32 r <> 0) in
  let in_if = r_arr r (fun r -> r_i32 r <> 0) in
  let prods =
    r_arr r (fun r ->
        let lhs = r_i32 r in
        let rhs = r_arr r r_i32 in
        let line = r_i32 r in
        { Grammar.id = 0; lhs; rhs; line })
    |> Array.mapi (fun id p -> { p with Grammar.id })
  in
  let goal = r_i32 r in
  let lambda = r_i32 r in
  let stmts = r_i32 r in
  let eof = r_i32 r in
  let index = Hashtbl.create (Array.length names) in
  Array.iteri (fun i n -> Hashtbl.replace index n i) names;
  let by_lhs = Array.make (Array.length names) [] in
  Array.iter
    (fun (p : Grammar.prod) ->
      by_lhs.(p.Grammar.lhs) <- p.Grammar.id :: by_lhs.(p.Grammar.lhs))
    prods;
  Array.iteri (fun i l -> by_lhs.(i) <- List.rev l) by_lhs;
  let grammar =
    {
      Grammar.names;
      index;
      is_nonterminal;
      in_if;
      prods;
      by_lhs;
      goal;
      lambda;
      stmts;
      eof;
    }
  in
  (* symbol table *)
  let nonterminals =
    r_list r (fun r ->
        let n = r_str r in
        (n, class_of_code (r_i32 r)))
  in
  let terminals =
    r_list r (fun r ->
        let n = r_str r in
        (n, kind_of_kcode (r_i32 r)))
  in
  let operators = r_list r r_str in
  let opcodes = r_list r r_str in
  let constants =
    r_list r (fun r ->
        let n = r_str r in
        (n, r_i32 r))
  in
  let semantics = r_list r r_str in
  let table = Hashtbl.create 256 in
  List.iter (fun (n, c) -> Hashtbl.replace table n (Symtab.Nonterminal c)) nonterminals;
  List.iter (fun (n, k) -> Hashtbl.replace table n (Symtab.Terminal k)) terminals;
  List.iter (fun n -> Hashtbl.replace table n Symtab.Operator) operators;
  List.iter (fun n -> Hashtbl.replace table n Symtab.Opcode) opcodes;
  List.iter (fun (n, v) -> Hashtbl.replace table n (Symtab.Constant v)) constants;
  List.iter (fun n -> Hashtbl.replace table n Symtab.Semantic) semantics;
  let symtab =
    { Symtab.table; nonterminals; terminals; operators; opcodes; constants;
      semantics }
  in
  (* parse table *)
  let n_states = r_i32 r in
  let actions = Array.init n_states (fun _ -> r_arr r r_action) in
  let start = r_i32 r in
  let conflicts = r_list r r_conflict in
  let compressed = r_compress r in
  let hybrid = r_opt r r_compress in
  let automaton =
    (* a skeletal automaton: the driver only needs the start state id *)
    {
      Lr0.grammar;
      states =
        Array.init n_states (fun id ->
            { Lr0.id; kernel = [||]; closure = [||]; transitions = [] });
      start;
    }
  in
  (* templates and type info *)
  let compiled = r_template_array r in
  let n_user_prods = r_i32 r in
  let class_of = r_arr r (fun r -> r_opt r (fun r -> class_of_code (r_i32 r))) in
  let kind_of = r_arr r (fun r -> r_opt r (fun r -> kind_of_kcode (r_i32 r))) in
  (* incremental appendix *)
  if
    r.pos + 4 > String.length r.buf
    || String.sub r.buf r.pos 4 <> appendix_magic
  then raise (Corrupt "missing incremental appendix");
  r.pos <- r.pos + 4;
  let mode = mode_of_code (r_i32 r) in
  let decls = r_str r in
  let shape = r_str r in
  let prod_hashes = r_arr r r_str in
  if Array.length prod_hashes <> n_user_prods then
    raise (Corrupt "production hash count does not match the bundle");
  let profile_digest = r_opt r r_str in
  let parse = { Parse_table.grammar; automaton; mode; actions; conflicts } in
  {
    Tables.target;
    grammar;
    symtab;
    parse;
    compressed;
    hybrid;
    compiled;
    n_user_prods;
    class_of;
    kind_of;
    hashes = { Spec_hash.decls; shape; prods = prod_hashes };
    profile_digest;
  }
