(** Dependency map from user productions to the build artifacts they
    reach: LR(0) states carrying their items, states whose action rows
    reduce by them (their lookahead landing sites), and the comb rows
    those states share.  Reporting and auditing substrate for the
    incremental builder (DESIGN.md §12) and for [coggc check]. *)

type t = {
  n_user_prods : int;
  states_of_prod : int array array;
  reduce_states_of_prod : int array array;
  rows_of_prod : int array array;
}

val build : ?compressed:Compress.t -> n_user_prods:int -> Parse_table.t -> t
(** Build the map.  A skeletal automaton (a bundle reloaded from disk)
    is transparently replaced by a fresh {!Lr0.build} over the same
    grammar.  Without [?compressed], [rows_of_prod] is all-empty. *)

val affected : t -> int list -> int array * int array
(** [(states, rows)] reached by any production in the list, each sorted
    and deduplicated. *)

val pp_prod : Format.formatter -> t -> int -> unit
(** One-line footprint summary for a production. *)
