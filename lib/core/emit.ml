(** The code emission routine (paper section 3):

    {v
    begin
      remove current production from the parse stack.
      allocate all requested registers.
      for all associated templates do begin
        fill in required values
        if template requires semantic intervention
          then case intervention code of ... end
          else append instruction to code buffer
      end
      prefix LHS to input stream.
    end
    v} *)

exception Emit_error of string

let err fmt = Fmt.kstr (fun s -> raise (Emit_error s)) fmt

(* observability counters (flushed once per compile by Codegen from the
   per-compile statistics; never bumped per emitted instruction) *)
let m_pressure_failures = Metrics.sum "regalloc.pressure_failures"
let m_allocs = Metrics.sum "regalloc.allocs"
let m_evictions = Metrics.sum "regalloc.evictions"
let m_transfers = Metrics.sum "regalloc.transfers"
let m_gp_peak = Metrics.high_water "regalloc.busy_peak.gp"
let m_fp_peak = Metrics.high_water "regalloc.busy_peak.fp"
let m_cse_hits = Metrics.sum "cse.residence_hits"
let m_cse_reloads = Metrics.sum "cse.reloads"
let m_cse_invalidations = Metrics.sum "cse.invalidations"

type t = {
  tables : Tables.t;
  regs : Regalloc.t;
  cse : Cse.t;
  buf : Code_buffer.t;
  reload_dsp : Grammar.sym;
      (** terminal used when reloading a CSE, interned at creation
          ([-1] when the configured name is not in the grammar — pushing
          it then fails at the driver, like any uninterned symbol) *)
  reload_reg : Grammar.sym;  (** register non-terminal for CSE reloads *)
  mutable next_internal : int;
  (* open [skip]s: remaining instruction count until the internal label *)
  mutable open_skips : (int ref * Code_buffer.label) list;
  mutable stmt_records : (int * int) list;  (** stmt number -> insn index *)
  mutable list_requests : int list;
  explain : bool;
      (** record, per code-buffer item, the production (and directives)
          responsible for it — the [--explain] sink *)
  mutable cur_origin : string;  (** annotation for the reduction in progress *)
  mutable origins : string list;  (** one entry per buffer item, reversed *)
  (* per-compile CSE residence counters, flushed to Metrics by Codegen *)
  mutable cse_hits : int;
  mutable cse_reloads : int;
  mutable cse_invalidations : int;
}

let create ?(strategy = Regalloc.Lru) ?(reload_dsp = "dsp") ?(reload_reg = "r")
    ?(explain = false) (tables : Tables.t) : t =
  let intern n =
    match Grammar.sym tables.Tables.grammar n with Some s -> s | None -> -1
  in
  {
    tables;
    regs = Regalloc.create ~strategy ();
    cse = Cse.create ();
    buf = Code_buffer.create ();
    reload_dsp = intern reload_dsp;
    reload_reg = intern reload_reg;
    next_internal = 0;
    open_skips = [];
    stmt_records = [];
    list_requests = [];
    explain;
    cur_origin = "(no production)";
    origins = [];
    cse_hits = 0;
    cse_reloads = 0;
    cse_invalidations = 0;
  }

let items t = Code_buffer.items t.buf
let stats t = t.regs.Regalloc.stats

(* flush the per-compile statistics into the process-wide counters; one
   enabled check per compile, nothing on the per-instruction path *)
let flush_metrics t =
  if Metrics.enabled () then begin
    let s = t.regs.Regalloc.stats in
    Metrics.add m_allocs s.Regalloc.n_allocs;
    Metrics.add m_evictions s.Regalloc.n_evictions;
    Metrics.add m_transfers s.Regalloc.n_transfers;
    Metrics.peak m_gp_peak s.Regalloc.gp_peak;
    Metrics.peak m_fp_peak s.Regalloc.fp_peak;
    Metrics.add m_cse_hits t.cse_hits;
    Metrics.add m_cse_reloads t.cse_reloads;
    Metrics.add m_cse_invalidations t.cse_invalidations
  end

(* -- appending with skip bookkeeping -------------------------------------- *)

let record_origin t note =
  if t.explain then
    t.origins <-
      (match note with
      | None -> t.cur_origin
      | Some n -> t.cur_origin ^ " — " ^ n)
      :: t.origins

let append_instruction ?note t item =
  Code_buffer.add t.buf item;
  record_origin t note;
  let still_open = ref [] in
  List.iter
    (fun (count, lbl) ->
      decr count;
      if !count <= 0 then begin
        Code_buffer.add t.buf (Code_buffer.Label_def lbl);
        record_origin t (Some "skip target")
      end
      else still_open := (count, lbl) :: !still_open)
    t.open_skips;
  t.open_skips <- List.rev !still_open

let append_data ?note t item =
  Code_buffer.add t.buf item;
  record_origin t note

(* -- banks and classes ----------------------------------------------------- *)

let class_of_src t (c : Template.compiled) (rhs_syms : Grammar.sym array)
    (s : Template.src) : Symtab.reg_class =
  let rec go = function
    | Template.Alloc i -> c.Template.c_allocs.(i).Template.a_class
    | Template.Phys r -> (
        match
          Array.find_opt (fun (n : Template.need_req) -> n.n_reg = r)
            c.Template.c_needs
        with
        | Some n -> n.Template.n_class
        | None -> Symtab.Gpr)
    | Template.Stack k -> (
        match Tables.class_of t.tables rhs_syms.(k) with
        | Some cls -> cls
        | None -> Symtab.Gpr)
    | Template.Plus (s, _) -> go s
    | Template.Lit _ -> Symtab.Gpr
  in
  go s

let bank_of_sym t sym : Regalloc.bank =
  match Tables.bank_of t.tables sym with
  | Some b -> b
  | None -> Regalloc.Gp

(* -- target hooks ----------------------------------------------------------- *)

let target t = t.tables.Tables.target

(* -- CSE helpers ----------------------------------------------------------- *)

(* save an evicted CSE register to its temporary *)
let save_cse t (ev : Regalloc.evicted) =
  match Cse.find t.cse ev.Regalloc.ev_cse with
  | None -> err "evicted register bound to unknown CSE %d" ev.Regalloc.ev_cse
  | Some entry ->
      append_instruction t
        ~note:(Fmt.str "spill: save CSE %d to its temporary" entry.Cse.id)
        (Code_buffer.Fixed
           ((target t).Machine.Target.spill_store ~fp:entry.Cse.fp
              ~reg:ev.Regalloc.ev_reg ~dsp:entry.Cse.temp_dsp
              ~base:entry.Cse.temp_base));
      Cse.to_memory t.cse entry.Cse.id

(* -- instruction building --------------------------------------------------- *)

let build_insn t (mnem : string) (vals : (int * int list) list) :
    Machine.Insn.t =
  (* vals: per operand, (base value, sub values); shape checking happened
     at table-construction time against the same target *)
  match (target t).Machine.Target.build_insn ~mnem vals with
  | Ok i -> i
  | Error m -> err "%s" m

(* -- the reduction --------------------------------------------------------- *)

(** Code emission for one reduction.  Matches {!Driver.parse}'s [reduce]
    callback signature: the popped tokens arrive already interned, and
    every token pushed back carries its grammar id directly — the
    emission path never touches a symbol name. *)
let reduce (t : t) ~(prod : int) ~(rhs : Driver.ptoken array)
    ~(remap : (Driver.ptoken -> Driver.ptoken) -> unit) : Driver.ptoken list =
  let g = t.tables.Tables.grammar in
  let p = Grammar.prod g prod in
  let rhs_syms = Array.map (fun (tok : Driver.ptoken) -> tok.Driver.psym) rhs in
  let c =
    match Tables.compiled t.tables prod with
    | Some c -> c
    | None -> err "no compiled templates for production %d" prod
  in
  (* the production responsible for everything this reduction emits; also
     the context attached to any register-pressure failure below *)
  let prod_desc =
    lazy (Fmt.str "production %d (%s)" prod (Grammar.prod_to_string g p))
  in
  if t.explain then begin
    let dirs =
      Array.to_list
        (Array.map
           (fun (r : Template.alloc_req) ->
             Fmt.str "using %a" Symtab.pp_reg_class r.Template.a_class)
           c.Template.c_allocs)
      @ Array.to_list
          (Array.map
             (fun (r : Template.need_req) -> Fmt.str "need r%d" r.Template.n_reg)
             c.Template.c_needs)
    in
    t.cur_origin <-
      Fmt.str "p%d %s%s" prod (Grammar.prod_to_string g p)
        (match dirs with
        | [] -> ""
        | ds -> "  [" ^ String.concat "; " ds ^ "]")
  end;
  (* allocation with diagnosable failure: re-raise Pressure enriched with
     the directive and production that triggered the exhaustion *)
  let alloc_for ~directive cls =
    match Regalloc.alloc t.regs cls with
    | res -> res
    | exception Regalloc.Pressure m ->
        let m =
          Fmt.str "%s — while serving '%s' of %s" m directive
            (Lazy.force prod_desc)
        in
        Trace.instant "regalloc.pressure" ~args:[ ("detail", m) ];
        Metrics.add m_pressure_failures 1;
        raise (Regalloc.Pressure m)
  in
  Regalloc.begin_reduction t.regs;
  (* 1. allocate all requested registers *)
  let allocs =
    Array.map
      (fun (req : Template.alloc_req) ->
        let reg, evicted =
          alloc_for
            ~directive:
              (Fmt.str "using %a" Symtab.pp_reg_class req.Template.a_class)
            req.Template.a_class
        in
        Option.iter (save_cse t) evicted;
        reg)
      c.Template.c_allocs
  in
  Array.iter
    (fun (req : Template.need_req) ->
      match Regalloc.need t.regs req.Template.n_class req.Template.n_reg with
      | Error m ->
          let m =
            Fmt.str "%s — while serving 'need r%d' (%a) of %s" m
              req.Template.n_reg Symtab.pp_reg_class req.Template.n_class
              (Lazy.force prod_desc)
          in
          Trace.instant "regalloc.pressure" ~args:[ ("detail", m) ];
          Metrics.add m_pressure_failures 1;
          err "%s" m
      | Ok (transfer, evicted) ->
          Option.iter (save_cse t) evicted;
          Option.iter
            (fun (tr : Regalloc.transfer) ->
              (* move the old contents and rebind the translation stack *)
              let bank = Regalloc.bank_of_class req.Template.n_class in
              append_instruction t
                ~note:
                  (Fmt.str "need r%d: transfer old contents to r%d"
                     tr.Regalloc.tr_from tr.Regalloc.tr_to)
                (Code_buffer.Fixed
                   ((target t).Machine.Target.reg_move
                      ~fp:(bank = Regalloc.Fp) ~dst:tr.Regalloc.tr_to
                      ~src:tr.Regalloc.tr_from));
              remap (fun (tok : Driver.ptoken) ->
                  match tok.Driver.pvalue with
                  | Ifl.Value.Reg r
                    when r = tr.Regalloc.tr_from
                         && tok.Driver.psym >= 0
                         && bank_of_sym t tok.Driver.psym = bank ->
                      { tok with Driver.pvalue = Ifl.Value.Reg tr.Regalloc.tr_to }
                  | _ -> tok);
              Hashtbl.iter
                (fun _ (e : Cse.entry) ->
                  match e.Cse.residence with
                  | Cse.In_reg r when r = tr.Regalloc.tr_from ->
                      e.Cse.residence <- Cse.In_reg tr.Regalloc.tr_to
                  | _ -> ())
                t.cse.Cse.entries)
            transfer)
    c.Template.c_needs;
  (* 2. fill in required values *)
  let rec eval (s : Template.src) : int =
    match s with
    | Template.Stack k -> (
        match rhs.(k).Driver.pvalue with
        | Ifl.Value.Unit -> err "template references valueless RHS slot %d" k
        | v -> Ifl.Value.to_int v)
    | Template.Alloc i -> allocs.(i)
    | Template.Phys r -> r
    | Template.Lit n -> n
    | Template.Plus (s, k) -> eval s + k
  in
  let pushed = ref [] (* tokens to prefix, reversed *) in
  let push_token sym reg =
    pushed := Driver.ptok ~value:(Ifl.Value.Reg reg) sym :: !pushed
  in
  (* 3. interpret the template sequence *)
  Array.iter
    (fun (step : Template.step) ->
      match step with
      | Template.Instr { mnem; ops } ->
          let vals =
            List.map
              (fun (o : Template.operand) ->
                (eval o.Template.base, List.map eval o.Template.subs))
              ops
          in
          append_instruction t (Code_buffer.Fixed (build_insn t mnem vals))
      | Template.Modifies src ->
          let cls = class_of_src t c rhs_syms src in
          let bank = Regalloc.bank_of_class cls in
          (* Copy-on-write: the template is about to destroy the register
             in place.  If other live references exist (another RHS slot
             aliases it through a CSE, or the register still holds a CSE
             with pending uses), the production's own operand moves to a
             fresh register first. *)
          (match src with
          | Template.Stack k ->
              let r = eval src in
              let claims = ref 0 in
              Array.iteri
                (fun i (tok : Driver.ptoken) ->
                  match tok.Driver.pvalue with
                  | Ifl.Value.Reg r'
                    when r' = r
                         && Option.map Regalloc.bank_of_class
                              (Tables.class_of t.tables rhs_syms.(i))
                            = Some bank ->
                      incr claims
                  | _ -> ())
                rhs;
              if
                Regalloc.is_busy t.regs bank r
                && Regalloc.use_count t.regs bank r > !claims
              then begin
                let fresh, evicted =
                  alloc_for ~directive:"modifies (copy-on-write)" cls
                in
                Option.iter (save_cse t) evicted;
                append_instruction t ~note:"modifies: copy-on-write of a shared register"
                  (Code_buffer.Fixed
                     ((target t).Machine.Target.reg_move
                        ~fp:(bank = Regalloc.Fp) ~dst:fresh ~src:r));
                rhs.(k) <-
                  { rhs.(k) with Driver.pvalue = Ifl.Value.Reg fresh };
                Regalloc.release t.regs bank r
              end
          | _ -> ());
          let r = eval src in
          Option.iter
            (fun cse_id ->
              match Cse.find t.cse cse_id with
              | Some entry when entry.Cse.remaining > 0 ->
                  (* save the CSE before the register is clobbered; its
                     remaining uses will reload from the temporary, so
                     their share of the use count is dropped *)
                  t.cse_invalidations <- t.cse_invalidations + 1;
                  append_instruction t
                    ~note:(Fmt.str "modifies: save CSE %d before clobber" cse_id)
                    (Code_buffer.Fixed
                       ((target t).Machine.Target.spill_store ~fp:entry.Cse.fp
                          ~reg:r ~dsp:entry.Cse.temp_dsp
                          ~base:entry.Cse.temp_base));
                  Cse.to_memory t.cse cse_id;
                  Regalloc.drop_cse_shares t.regs bank r
              | Some _ ->
                  t.cse_invalidations <- t.cse_invalidations + 1;
                  Cse.to_memory t.cse cse_id
              | None -> ())
            (Regalloc.touch t.regs bank r)
      | Template.Ignore_lhs -> ()
      | Template.Label_location src ->
          append_data t (Code_buffer.Label_def (Code_buffer.User (eval src)))
      | Template.Label_ptr src ->
          append_data t (Code_buffer.Word_label (Code_buffer.User (eval src)))
      | Template.Branch { cond; lbl; idx } ->
          append_instruction t
            (Code_buffer.Branch_site
               {
                 mask = eval cond;
                 lbl = Code_buffer.User (eval lbl);
                 idx = eval idx;
                 x = 0;
               })
      | Template.Branch_indexed { cond; lbl; idx; index } ->
          append_instruction t
            (Code_buffer.Branch_site
               {
                 mask = eval cond;
                 lbl = Code_buffer.User (eval lbl);
                 idx = eval idx;
                 x = eval index;
               })
      | Template.Skip { cond; dist; idx } ->
          let lbl = Code_buffer.Internal t.next_internal in
          t.next_internal <- t.next_internal + 1;
          let d = eval dist in
          append_instruction t
            (Code_buffer.Branch_site
               { mask = eval cond; lbl; idx = eval idx; x = 0 });
          if d - 1 <= 0 then append_data t (Code_buffer.Label_def lbl)
          else t.open_skips <- (ref (d - 1), lbl) :: t.open_skips
      | Template.Case_load { reg; lbl; idx } ->
          append_instruction t
            (Code_buffer.Case_site
               { reg = eval reg; lbl = Code_buffer.User (eval lbl); idx = eval idx })
      | Template.Push { sym; value } -> push_token sym (eval value)
      | Template.Ibm_length src ->
          let v = eval src in
          if v < 1 || v > 256 then
            err "IBM_length: %d outside the machine's 1..256 range" v
      | Template.Stmt_record src ->
          t.stmt_records <-
            (eval src, Code_buffer.n_instructions t.buf) :: t.stmt_records
      | Template.List_request src -> t.list_requests <- eval src :: t.list_requests
      | Template.Abort src ->
          List.iter
            (fun i -> append_instruction t (Code_buffer.Fixed i))
            ((target t).Machine.Target.abort_insns ~errno:(eval src))
      | Template.Common { ty; fp; cse; cnt; reg; dsp; base } ->
          let id = eval cse and count = eval cnt and r = eval reg in
          Cse.define t.cse ~id ~ty ~fp ~count ~reg:r ~temp_dsp:(eval dsp)
            ~temp_base:(eval base);
          let bank = if fp then Regalloc.Fp else Regalloc.Gp in
          Regalloc.retain ~count t.regs bank r;
          Regalloc.bind_cse ~shares:count t.regs bank r id
      | Template.Find_common { cse; fp = _; push_sym } -> (
          let id = eval cse in
          match Cse.find t.cse id with
          | None -> err "find_common: CSE %d was never defined" id
          | Some entry ->
              Cse.consume t.cse id;
              (match entry.Cse.residence with
              | Cse.In_reg r ->
                  (* the reserved share becomes the stack reference the
                     push below retains *)
                  t.cse_hits <- t.cse_hits + 1;
                  Regalloc.consume_cse_share t.regs
                    (if entry.Cse.fp then Regalloc.Fp else Regalloc.Gp)
                    r;
                  push_token push_sym r
              | Cse.In_mem -> (
                  t.cse_reloads <- t.cse_reloads + 1;
                  match entry.Cse.ty with
                  | None ->
                      err "find_common: CSE %d has no reload type operator" id
                  | Some ty ->
                      (* prefix the address of the temporary; the ordinary
                         load productions bring it back *)
                      pushed :=
                        Driver.ptok ~value:(Ifl.Value.Reg entry.Cse.temp_base)
                          t.reload_reg
                        :: Driver.ptok ~value:(Ifl.Value.Int entry.Cse.temp_dsp)
                             t.reload_dsp
                        :: Driver.ptok ty
                        :: !pushed))))
    c.Template.c_steps;
  (* 4. prefix LHS to input stream *)
  (match c.Template.c_push with
  | Some { push_sym; push_src } -> push_token push_sym (eval push_src)
  | None ->
      if p.Grammar.lhs = g.Grammar.lambda then
        pushed := Driver.ptok g.Grammar.lambda :: !pushed);
  let result = List.rev !pushed in
  (* 5. liveness: retain pushed registers, then release consumed RHS
     occurrences and the scratch allocations *)
  List.iter
    (fun (tok : Driver.ptoken) ->
      match tok.Driver.pvalue with
      | Ifl.Value.Reg r when tok.Driver.psym >= 0 ->
          Regalloc.retain t.regs (bank_of_sym t tok.Driver.psym) r
      | _ -> ())
    result;
  Array.iteri
    (fun k (tok : Driver.ptoken) ->
      match tok.Driver.pvalue with
      | Ifl.Value.Reg r -> Regalloc.release t.regs (bank_of_sym t rhs_syms.(k)) r
      | _ -> ())
    rhs;
  Array.iteri
    (fun i (req : Template.alloc_req) ->
      let bank = Regalloc.bank_of_class req.Template.a_class in
      List.iter
        (fun r -> Regalloc.release t.regs bank r)
        (Regalloc.covered req.Template.a_class allocs.(i)))
    c.Template.c_allocs;
  Array.iter
    (fun (req : Template.need_req) ->
      Regalloc.release t.regs
        (Regalloc.bank_of_class req.Template.n_class)
        req.Template.n_reg)
    c.Template.c_needs;
  result

(** Finish the module: resolve labels and branches and emit loader
    records. *)
let finish ?(name = "MAIN") (t : t) :
    (Machine.Objmod.t * Loader_gen.resolved, string) result =
  if t.open_skips <> [] then Error "unterminated skip at end of module"
  else Loader_gen.to_objmod ~name ~target:(target t) t.buf

let listing (t : t) = Code_buffer.to_listing t.buf

(** The listing with every item annotated with the production (and its
    [using]/[need] directives) whose reduction emitted it — the paper's
    syntax-directed translation made visible.  Meaningful only on an
    emitter created with [~explain:true]. *)
let explanation (t : t) : string =
  let items = Code_buffer.items t.buf in
  let origins = List.rev t.origins in
  let b = Buffer.create 4096 in
  let rec go items origins =
    match (items, origins) with
    | [], _ -> ()
    | item :: items, origin :: origins ->
        Buffer.add_string b
          (Fmt.str "%-44s ; %s" (Fmt.str "%a" Code_buffer.pp_item item) origin);
        Buffer.add_char b '\n';
        go items origins
    | item :: items, [] ->
        (* unreachable when explain was on from creation; stay total *)
        Buffer.add_string b (Fmt.str "%a" Code_buffer.pp_item item);
        Buffer.add_char b '\n';
        go items []
  in
  go items origins;
  Buffer.contents b
