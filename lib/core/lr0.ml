(** LR(0) automaton construction.

    States are canonical sets of kernel items; closures are computed on
    demand.  Items are packed into ints: [(prod lsl DOT_BITS) lor dot].

    The frontier search is sequential (each new state can seed further
    states), so construction speed lives and dies on its constant
    factors: the kernel index is a hash table specialized to item arrays
    (FNV-1a over the packed ints, monomorphic equality — no polymorphic
    [compare]/[Hashtbl.hash] walks), the closure's visited set is a byte
    table indexed by packed item, and the per-state grouping structures
    are hoisted out of the work loop and reset between states instead of
    reallocated. *)

let dot_bits = 5
let max_rhs = (1 lsl dot_bits) - 1

type item = int

let item ~prod ~dot : item = (prod lsl dot_bits) lor dot
let item_prod (i : item) = i lsr dot_bits
let item_dot (i : item) = i land max_rhs

type state = {
  id : int;
  kernel : item array; (* sorted *)
  mutable closure : item array; (* kernel + nonkernel, sorted *)
  mutable transitions : (Grammar.sym * int) list; (* symbol -> state id *)
}

type t = {
  grammar : Grammar.t;
  states : state array;
  start : int;
}

let n_states t = Array.length t.states

let pp_item g ppf (i : item) =
  let p = Grammar.prod g (item_prod i) in
  let dot = item_dot i in
  Fmt.pf ppf "%s ::=" (Grammar.name g p.lhs);
  Array.iteri
    (fun k s ->
      if k = dot then Fmt.pf ppf " .";
      Fmt.pf ppf " %s" (Grammar.name g s))
    p.rhs;
  if dot = Array.length p.rhs then Fmt.pf ppf " ."

(* Kernels are small sorted int arrays; hash and compare them directly
   rather than through the polymorphic primitives (which dominate the
   frontier loop's profile on grammars with hundreds of states). *)
module Kernel_tbl = Hashtbl.Make (struct
  type t = item array

  let equal (a : item array) (b : item array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash (a : item array) =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor a.(i)) * 0x01000193 land 0x3fffffff
    done;
    !h
end)

let sort_items (a : item array) =
  Array.sort (fun (x : int) y -> Int.compare x y) a

(** Closure of an item set: a dot before non-terminal N adds N's
    productions with the dot at the start.  [seen] is a caller-provided
    byte table of size [n_prods lsl dot_bits]; it is used and wiped
    within the call. *)
let closure_into (g : Grammar.t) ~(seen : Bytes.t) (kernel : item array) :
    item array =
  let acc = ref [] in
  let count = ref 0 in
  let rec add i =
    if Bytes.unsafe_get seen i = '\000' then begin
      Bytes.unsafe_set seen i '\001';
      acc := i :: !acc;
      incr count;
      let p = Grammar.prod g (item_prod i) in
      let dot = item_dot i in
      if dot < Array.length p.rhs then
        let s = p.rhs.(dot) in
        if g.Grammar.is_nonterminal.(s) then
          List.iter
            (fun pid -> add (item ~prod:pid ~dot:0))
            g.Grammar.by_lhs.(s)
    end
  in
  Array.iter add kernel;
  let a = Array.make !count 0 in
  List.iteri
    (fun k i ->
      a.(!count - 1 - k) <- i;
      Bytes.unsafe_set seen i '\000')
    !acc;
  sort_items a;
  a

(** Standalone closure (tests, diagnostics): allocates its own table. *)
let closure (g : Grammar.t) (kernel : item array) : item array =
  closure_into g ~seen:(Bytes.make (Grammar.n_prods g lsl dot_bits) '\000') kernel

let build (g : Grammar.t) : t =
  if
    Array.exists
      (fun (p : Grammar.prod) -> Array.length p.rhs > max_rhs)
      g.Grammar.prods
  then invalid_arg "Lr0.build: production RHS too long";
  let goal_prod =
    match g.Grammar.by_lhs.(g.Grammar.goal) with
    | [ p ] -> p
    | _ -> invalid_arg "Lr0.build: goal must have exactly one production"
  in
  let states = ref [] in
  let n = ref 0 in
  let index : int Kernel_tbl.t = Kernel_tbl.create 256 in
  let worklist = Queue.create () in
  let get_state kernel =
    match Kernel_tbl.find_opt index kernel with
    | Some id -> id
    | None ->
        let id = !n in
        incr n;
        let st = { id; kernel; closure = [||]; transitions = [] } in
        Kernel_tbl.replace index kernel id;
        states := st :: !states;
        Queue.add st worklist;
        id
  in
  let start = get_state [| item ~prod:goal_prod ~dot:0 |] in
  (* hoisted per-state scratch: the closure's visited bytes, and the
     grouping of advanceable items by the symbol after the dot (an array
     indexed by symbol plus the list of symbols actually touched) *)
  let seen = Bytes.make (Grammar.n_prods g lsl dot_bits) '\000' in
  let n_syms = Grammar.n_syms g in
  let by_sym : item list array = Array.make n_syms [] in
  let touched = ref [] in
  while not (Queue.is_empty worklist) do
    let st = Queue.pop worklist in
    let cl = closure_into g ~seen st.kernel in
    st.closure <- cl;
    Array.iter
      (fun i ->
        let p = Grammar.prod g (item_prod i) in
        let dot = item_dot i in
        if dot < Array.length p.rhs then begin
          let s = p.rhs.(dot) in
          if by_sym.(s) = [] then touched := s :: !touched;
          by_sym.(s) <- item ~prod:(item_prod i) ~dot:(dot + 1) :: by_sym.(s)
        end)
      cl;
    let syms = Array.of_list !touched in
    Array.sort (fun (a : int) b -> Int.compare a b) syms;
    let trans =
      Array.to_list
        (Array.map
           (fun s ->
             let kernel = Array.of_list by_sym.(s) in
             by_sym.(s) <- [];
             sort_items kernel;
             (s, get_state kernel))
           syms)
    in
    touched := [];
    (* transitions are already in symbol order: deterministic tables *)
    st.transitions <- trans
  done;
  let arr = Array.make !n (List.hd !states) in
  List.iter (fun st -> arr.(st.id) <- st) !states;
  { grammar = g; states = arr; start }

(** Final (reducible) items of a state's closure. *)
let reducible (g : Grammar.t) (st : state) : item list =
  Array.to_list st.closure
  |> List.filter (fun i ->
         let p = Grammar.prod g (item_prod i) in
         item_dot i = Array.length p.rhs)

let goto (st : state) (s : Grammar.sym) : int option =
  List.assoc_opt s st.transitions
