(** The code generator's register allocation routine (paper section 4.1).

    - [using] allocates any register of a class; [need] obtains a specific
      register, transferring its current contents to another register of
      the class if busy (the caller emits the [lr] and rebinds the
      translation stack).
    - Allocation is least-recently-used by a global usage index bumped at
      every reduction, "in an attempt to reduce operand contention in the
      pipeline"; round-robin and first-free strategies exist for the
      ablation benchmark.
    - Registers carry use counts: consuming an RHS occurrence decrements,
      pushing a result increments; a count of zero frees the register.
    - A register holding a common subexpression can be evicted (the caller
      stores it to the CSE's temporary); a register holding a live
      intermediate result cannot, and exhausting the pool on live values
      raises [Pressure]. *)

type bank = Gp | Fp

let bank_of_class : Symtab.reg_class -> bank = function
  | Symtab.Fpr | Symtab.Fpair -> Fp
  | Symtab.Gpr | Symtab.Pair | Symtab.Cc | Symtab.Noclass -> Gp

type strategy = Lru | Round_robin | First_free

let strategy_name = function
  | Lru -> "lru"
  | Round_robin -> "round-robin"
  | First_free -> "first-free"

type config = {
  gpr_pool : int list;
  pair_pool : int list;  (** even members; the odd partner is implied *)
  fpr_pool : int list;
  fpair_pool : int list;  (** quad pairs: f and f+2 *)
}

(** Pool matching the project's register conventions (r13 frame, r10 PSA,
    r12 code base, r0 zero, r14/r15 linkage via [need]). *)
let default_config =
  {
    gpr_pool = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 11 ];
    pair_pool = [ 2; 4; 6; 8 ];
    fpr_pool = [ 0; 2; 4; 6 ];
    fpair_pool = [ 0; 4 ];
  }

type reg = {
  mutable busy : bool;
  mutable use_count : int;
  mutable usage_index : int;
  mutable cse : int option;  (** CSE whose value this register holds *)
  mutable cse_shares : int;
      (** how much of [use_count] is reserved for future CSE uses; the
          rest are live translation-stack references *)
}

type stats = {
  mutable n_allocs : int;
  mutable n_evictions : int;
  mutable n_transfers : int;
  mutable reuse_distances : int list;
      (** usage-index distance at allocation: the pipeline-contention proxy *)
  mutable gp_peak : int;  (** most general registers ever busy at once *)
  mutable fp_peak : int;  (** most floating registers ever busy at once *)
}

type t = {
  config : config;
  strategy : strategy;
  gprs : reg array;
  fprs : reg array;
  mutable global_index : int;
  mutable cursor : int;
  stats : stats;
}

exception Pressure of string

let create ?(config = default_config) ?(strategy = Lru) () =
  let mk n = Array.init n (fun _ ->
      { busy = false; use_count = 0; usage_index = 0; cse = None;
        cse_shares = 0 })
  in
  {
    config;
    strategy;
    gprs = mk 16;
    fprs = mk 8;
    global_index = 0;
    cursor = 0;
    stats =
      {
        n_allocs = 0;
        n_evictions = 0;
        n_transfers = 0;
        reuse_distances = [];
        gp_peak = 0;
        fp_peak = 0;
      };
  }

let regs t = function Gp -> t.gprs | Fp -> t.fprs

let pool t = function
  | Symtab.Gpr -> t.config.gpr_pool
  | Symtab.Pair -> t.config.pair_pool
  | Symtab.Fpr -> t.config.fpr_pool
  | Symtab.Fpair -> t.config.fpair_pool
  | Symtab.Cc | Symtab.Noclass -> []

(* registers covered by an allocation of class [cls] rooted at [r] *)
let covered cls r =
  match cls with
  | Symtab.Pair -> [ r; r + 1 ]
  | Symtab.Fpair -> [ r; r + 2 ]
  | _ -> [ r ]

let in_any_pool t bank r =
  match bank with
  | Fp -> List.mem r t.config.fpr_pool || List.mem r t.config.fpair_pool
          || List.mem (r - 2) t.config.fpair_pool
  | Gp ->
      List.mem r t.config.gpr_pool
      || List.mem r t.config.pair_pool
      || List.exists (fun e -> r = e + 1) t.config.pair_pool

(** Bump the global usage index; called once per reduction. *)
let begin_reduction t = t.global_index <- t.global_index + 1

let free_for t bank cls r =
  List.for_all (fun i -> not (regs t bank).(i).busy) (covered cls r)

(* candidate members of [cls]'s pool that are currently free *)
let free_members t cls =
  let bank = bank_of_class cls in
  List.filter (free_for t bank cls) (pool t cls)

let pick t cls candidates =
  let bank = bank_of_class cls in
  match candidates with
  | [] -> None
  | cs -> (
      match t.strategy with
      | First_free -> Some (List.hd cs)
      | Round_robin ->
          let n = List.length cs in
          let c = List.nth cs (t.cursor mod n) in
          t.cursor <- t.cursor + 1;
          Some c
      | Lru ->
          Some
            (List.fold_left
               (fun best r ->
                 let idx =
                   List.fold_left
                     (fun m i -> max m (regs t bank).(i).usage_index)
                     0 (covered cls r)
                 in
                 match best with
                 | Some (_, bidx) when bidx <= idx -> best
                 | _ -> Some (r, idx))
               None cs
            |> Option.get |> fst))

(* raise the bank's pressure high-water mark to the current busy count *)
let note_peak t bank =
  let n = ref 0 in
  Array.iter (fun st -> if st.busy then incr n) (regs t bank);
  match bank with
  | Gp -> if !n > t.stats.gp_peak then t.stats.gp_peak <- !n
  | Fp -> if !n > t.stats.fp_peak then t.stats.fp_peak <- !n

let mark_allocated t cls r =
  let bank = bank_of_class cls in
  List.iter
    (fun i ->
      let st = (regs t bank).(i) in
      t.stats.reuse_distances <-
        (t.global_index - st.usage_index) :: t.stats.reuse_distances;
      st.busy <- true;
      st.use_count <- 1;
      st.usage_index <- t.global_index;
      st.cse <- None;
      st.cse_shares <- 0)
    (covered cls r);
  t.stats.n_allocs <- t.stats.n_allocs + 1;
  note_peak t bank

type evicted = { ev_cse : int; ev_reg : int }

(** [alloc t cls] returns an allocated register (the even one for pairs)
    and, when the pool was full, the CSE-bound register that was evicted
    to make room — the caller must store that register to the CSE's
    temporary before using the allocation. *)
let alloc t (cls : Symtab.reg_class) : int * evicted option =
  match cls with
  | Symtab.Cc -> (0, None) (* the machine condition code: always available *)
  | Symtab.Noclass -> (0, None)
  | _ -> (
      (* single-register requests prefer registers that do not break up a
         fully free even/odd pair, so multiplies and divides can still
         find one (Fpr requests likewise protect quad pairs) *)
      let free = free_members t cls in
      let candidates =
        let protect pair_pool step pcls =
          let free_pairs =
            List.filter (fun e -> free_for t (bank_of_class cls) pcls e) pair_pool
          in
          (* only protect pairs once they become scarce, so simple
             programs still see the natural r1, r2, ... ordering *)
          if List.length free_pairs > 2 then free
          else
            let breaking r =
              List.exists (fun e -> r = e || r = e + step) free_pairs
            in
            let preserving = List.filter (fun r -> not (breaking r)) free in
            if preserving <> [] then preserving else free
        in
        match cls with
        | Symtab.Gpr -> protect t.config.pair_pool 1 Symtab.Pair
        | Symtab.Fpr -> protect t.config.fpair_pool 2 Symtab.Fpair
        | _ -> free
      in
      match pick t cls candidates with
      | Some r ->
          mark_allocated t cls r;
          (r, None)
      | None -> (
          (* evict the least-recently-used CSE-bound register in the pool *)
          let bank = bank_of_class cls in
          let evictable r =
            List.for_all
              (fun i ->
                let st = (regs t bank).(i) in
                (not st.busy)
                || (st.cse <> None && st.use_count <= st.cse_shares))
              (covered cls r)
            && List.exists
                 (fun i -> (regs t bank).(i).cse <> None)
                 (covered cls r)
          in
          match pick t cls (List.filter evictable (pool t cls)) with
          | None ->
              (* diagnosable exhaustion: name the class, its pool, and
                 what each member is holding (use counts, CSE bindings) *)
              let members =
                List.sort_uniq compare
                  (List.concat_map (covered cls) (pool t cls))
              in
              let holding =
                List.filter_map
                  (fun i ->
                    let st = (regs t bank).(i) in
                    if not st.busy then None
                    else
                      Some
                        (Fmt.str "r%d:uses=%d%s" i st.use_count
                           (match st.cse with
                           | Some c -> Fmt.str "[cse %d]" c
                           | None -> "")))
                  members
              in
              raise
                (Pressure
                   (Fmt.str
                      "no %a register available: pool {%s} holds only live \
                       values (%s)"
                      Symtab.pp_reg_class cls
                      (String.concat " "
                         (List.map (fun r -> "r" ^ string_of_int r) (pool t cls)))
                      (String.concat ", " holding)))
          | Some r ->
              let ev =
                List.find_map
                  (fun i ->
                    let st = (regs t bank).(i) in
                    Option.map (fun c -> { ev_cse = c; ev_reg = i }) st.cse)
                  (covered cls r)
                |> Option.get
              in
              List.iter
                (fun i ->
                  let st = (regs t bank).(i) in
                  st.busy <- false;
                  st.use_count <- 0;
                  st.cse <- None;
                  st.cse_shares <- 0)
                (covered cls r);
              t.stats.n_evictions <- t.stats.n_evictions + 1;
              mark_allocated t cls r;
              (r, Some ev)))

type transfer = { tr_from : int; tr_to : int }

(** [need t cls r] secures the specific register [r].  If busy, its
    contents move to a freshly allocated register of the class; the caller
    emits [lr to,from] and rebinds stack/CSE state. *)
let need t (cls : Symtab.reg_class) (r : int) :
    (transfer option * evicted option, string) result =
  let bank = bank_of_class cls in
  let st = (regs t bank).(r) in
  if not st.busy then begin
    st.busy <- true;
    st.use_count <- 1;
    st.usage_index <- t.global_index;
    st.cse <- None;
    st.cse_shares <- 0;
    note_peak t bank;
    Ok (None, None)
  end
  else
    match alloc t (if cls = Symtab.Pair then Symtab.Gpr else cls) with
    | dst, ev ->
        let d = (regs t bank).(dst) in
        d.use_count <- st.use_count;
        d.cse <- st.cse;
        d.cse_shares <- st.cse_shares;
        st.busy <- true;
        st.use_count <- 1;
        st.usage_index <- t.global_index;
        st.cse <- None;
        st.cse_shares <- 0;
        t.stats.n_transfers <- t.stats.n_transfers + 1;
        Ok (Some { tr_from = r; tr_to = dst }, ev)
    | exception Pressure m -> Error m

(** Increment the use count (a result token referencing the register was
    pushed, or a CSE declared [cnt] future uses).  Dedicated registers
    (never allocated, hence never busy) are unaffected. *)
let retain ?(count = 1) t bank r =
  let st = (regs t bank).(r) in
  if st.busy then st.use_count <- st.use_count + count

(** Decrement the use count; at zero the register is freed.  Covers both
    pool registers and [need]-obtained linkage registers; dedicated base
    registers are never busy, so this is a no-op for them. *)
let release t bank r =
  let st = (regs t bank).(r) in
  if st.busy then begin
    st.use_count <- st.use_count - 1;
    if st.use_count <= 0 then begin
      st.busy <- false;
      st.use_count <- 0;
      st.cse <- None;
      st.cse_shares <- 0
    end
  end

(** One reserved CSE use materializes (a [find_common] found the value in
    the register): the share converts into the stack reference the caller
    is about to push, so counts are left unchanged here beyond the share
    bookkeeping. *)
let consume_cse_share t bank r =
  let st = (regs t bank).(r) in
  if st.busy && st.cse_shares > 0 then begin
    st.cse_shares <- st.cse_shares - 1;
    st.use_count <- st.use_count - 1
  end

(** The register lost its CSE copy ([modifies]): drop all reserved
    shares — the remaining uses reload from the temporary. *)
let drop_cse_shares t bank r =
  let st = (regs t bank).(r) in
  if st.busy && st.cse_shares > 0 then begin
    st.use_count <- st.use_count - st.cse_shares;
    st.cse_shares <- 0;
    if st.use_count <= 0 then begin
      st.busy <- false;
      st.use_count <- 0;
      st.cse <- None
    end
  end

(** [modifies]: the register's contents changed — refresh its LRU stamp
    and report (and clear) any CSE binding so the caller can save it. *)
let touch t bank r : int option =
  let st = (regs t bank).(r) in
  st.usage_index <- t.global_index;
  let c = st.cse in
  st.cse <- None;
  c

let bind_cse ?(shares = 0) t bank r cse =
  if in_any_pool t bank r then begin
    (regs t bank).(r).cse <- Some cse;
    (regs t bank).(r).cse_shares <- shares
  end

(** Clear a CSE binding without touching liveness (e.g. after eviction). *)
let unbind_cse t bank r =
  if in_any_pool t bank r then (regs t bank).(r).cse <- None

let is_busy t bank r = (regs t bank).(r).busy
let use_count t bank r = (regs t bank).(r).use_count

(** All currently busy pool registers (diagnostics / invariant tests). *)
let busy_list t bank =
  let out = ref [] in
  Array.iteri
    (fun i st -> if st.busy && in_any_pool t bank i then out := i :: !out)
    (regs t bank);
  List.rev !out
