(** The generated code generator, assembled: tables + skeletal parser +
    code emission + loader record generation, end to end. *)

type result_t = {
  objmod : Machine.Objmod.t;
  resolved : Loader_gen.resolved;
  listing : string;
  outcome : Driver.outcome;
  alloc_stats : Regalloc.stats;
  n_items : int;
  explanation : string option;
      (** with [~explain:true]: the listing annotated per instruction
          with the production and directives that emitted it *)
}

let m_compiles = Metrics.sum "codegen.compiles"

type error =
  | Parse_error of Driver.error
  | Emit_failure of string
  | Resolve_failure of string

let pp_error ppf = function
  | Parse_error e -> Driver.pp_error ppf e
  | Emit_failure m -> Fmt.pf ppf "code emission failed: %s" m
  | Resolve_failure m -> Fmt.pf ppf "loader record generation failed: %s" m

(** Generate code for a linearized IF program. *)
let generate ?(name = "MAIN") ?(strategy = Regalloc.Lru) ?dispatch ?profile
    ?reload_dsp ?reload_reg ?(explain = false) ?on_reduce (tables : Tables.t)
    (input : Ifl.Token.t list) : (result_t, error) result =
  let emitter = Emit.create ~strategy ?reload_dsp ?reload_reg ~explain tables in
  let reduce =
    match on_reduce with
    | None -> Emit.reduce emitter
    | Some f ->
        fun ~prod ~rhs ~remap ->
          f prod;
          Emit.reduce emitter ~prod ~rhs ~remap
  in
  let result =
    match Driver.parse ?dispatch ?profile tables ~reduce input with
    | Error e -> Error (Parse_error e)
    | exception Emit.Emit_error m -> Error (Emit_failure m)
    | exception Regalloc.Pressure m -> Error (Emit_failure m)
    | Ok outcome -> (
        match Emit.finish ~name emitter with
        | Error m -> Error (Resolve_failure m)
        | Ok (objmod, resolved) ->
            Ok
              {
                objmod;
                resolved;
                listing = Emit.listing emitter;
                outcome;
                alloc_stats = Emit.stats emitter;
                n_items = Code_buffer.length emitter.Emit.buf;
                explanation =
                  (if explain then Some (Emit.explanation emitter) else None);
              })
  in
  Metrics.add m_compiles 1;
  Emit.flush_metrics emitter;
  result

(** Convenience: parse the textual IF syntax and generate. *)
let generate_string ?name ?strategy ?dispatch ?profile ?reload_dsp ?reload_reg
    ?explain tables text : (result_t, string) result =
  match Ifl.Reader.program_of_string text with
  | Error m -> Error m
  | Ok tokens -> (
      match
        generate ?name ?strategy ?dispatch ?profile ?reload_dsp ?reload_reg
          ?explain tables tokens
      with
      | Ok r -> Ok r
      | Error e -> Error (Fmt.str "%a" pp_error e))
