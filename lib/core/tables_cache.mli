(** On-disk cache of built table bundles, keyed by a content digest of the
    specification (plus lookahead mode and serialization-format version).

    A hit loads the {!Tables_io} bundle and skips LR construction
    entirely; a miss builds with {!Cogg_build} and stores the result.
    Corrupt, truncated or stale entries always fall back to a rebuild,
    never an error.  Entries live in [$COGG_CACHE_DIR], else
    [$XDG_CACHE_HOME/cogg], else [_cache/] under the working directory. *)

type origin = Cache_hit | Built | Built_incremental of Cogg_build.incr_stats
(** [Built_incremental] is a miss answered by splicing the previous
    build of the same lineage ({!Cogg_build.build_incremental}); the
    stored bytes are identical to a scratch build, only cheaper. *)

val pp_origin : Format.formatter -> origin -> unit

type stats = { hits : int; misses : int; evictions : int }

val stats : unit -> stats
(** A snapshot of the process-wide hit/miss/eviction counters
    (observability for tests and CLIs); the counters themselves are
    atomics, safe to bump from any domain. *)

val default_max_entries : int
(** The entry-count cap {!prune} enforces when neither [?max_entries]
    nor [$COGG_CACHE_MAX_ENTRIES] overrides it. *)

val prune : ?cache_dir:string -> ?max_entries:int -> unit -> int
(** Enforce the size cap on a cache directory: when it holds more than
    [max_entries] (default [$COGG_CACHE_MAX_ENTRIES], else
    {!default_max_entries}) bundle entries, delete the excess
    oldest-first by modification time (ties by name, so the victim set
    is deterministic).  Returns the number deleted.  Best effort and
    race-tolerant — concurrently removed files are skipped, errors are
    swallowed.  Every successful [store] runs this automatically, so a
    long-lived daemon's cache directory stays bounded. *)

val key :
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  mode:Lookahead.mode ->
  string ->
  string
(** Digest a specification text into its cache key.  When [profile] is
    given (a profile-specialized build), its {!Cogprof.digest} is mixed
    in, so a stale specialization can never hit.  The [target]'s name
    (default: the Amdahl 470) is part of the key, so the same spec text
    checked against two machines never shares an entry. *)

val entry_path :
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  ?cache_dir:string ->
  string ->
  string
(** [entry_path spec_text] is the cache file a given specification text
    maps to (whether or not it exists yet). *)

val lineage_path :
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  ?cache_dir:string ->
  unit ->
  string
(** The pointer file naming the newest entry of a (mode, target,
    profile) lineage — everything in the key except the spec text.  A
    miss follows it to the previous partial build and rebuilds
    incrementally; it is refreshed on every hit and store.  Setting
    [COGG_NO_INCREMENTAL=1] makes misses ignore it (scratch builds). *)

val build_text :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  ?cache_dir:string ->
  string ->
  (Tables.t * origin, Cogg_build.error list) result
(** Tables for a specification given as text, through the cache.
    [pool] parallelizes the build on a miss; the stored bundle is
    byte-identical at any worker count.  [profile] builds (and caches) a
    bundle carrying the profile-specialized hybrid table.  [target]
    selects the machine substrate the spec is checked against. *)

val build_file :
  ?pool:Pool.t ->
  ?mode:Lookahead.mode ->
  ?profile:Cogprof.t ->
  ?target:Machine.Target.t ->
  ?cache_dir:string ->
  string ->
  (Tables.t * origin, Cogg_build.error list) result
(** Tables for a specification file, through the cache.  The key covers
    the file's contents, so an edited spec is a clean miss. *)
