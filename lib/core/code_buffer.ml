(** The code buffer filled by the code emission routine.

    Most entries are finished machine instructions; branch and case-table
    sites stay symbolic ("while parsing the IF, label locations and branch
    instructions are kept in a dictionary", paper section 3) until the
    Loader Record Generator resolves them.

    The buffer is a growable array with a cached instruction count, so
    appending is two writes and every consumer (the loader's sizing
    passes, [stmt_record] bookkeeping, the listing) reads the items in
    place — no list reversal, no counting traversals. *)

(** Labels: [User] labels come from the IF ([label_def lbl.n]); [Internal]
    labels are invented by the code emitter for [skip] targets, so the
    shaper never has to allocate them (paper section 4.2). *)
type label = User of int | Internal of int

let pp_label ppf = function
  | User n -> Fmt.pf ppf "L%d" n
  | Internal n -> Fmt.pf ppf ".%d" n

type item =
  | Fixed of Machine.Insn.t
  | Branch_site of { mask : int; lbl : label; idx : int; x : int }
      (** conditional branch to [lbl]; [idx] is the register reserved for
          the long form; [x] an optional extra index register (0 = none) *)
  | Case_site of { reg : int; lbl : label; idx : int }
      (** load of branch-table word at [lbl] indexed by [reg] *)
  | Label_def of label
  | Word_lit of int  (** literal data word in the instruction stream *)
  | Word_label of label  (** data word holding a label's offset *)

(* a harmless placeholder for unfilled array slots *)
let dummy_item = Word_lit 0

type t = {
  mutable arr : item array;
  mutable n : int;
  mutable n_insns : int;  (** cached machine-instruction count *)
}

let create () = { arr = Array.make 64 dummy_item; n = 0; n_insns = 0 }

let add t item =
  if t.n = Array.length t.arr then begin
    let narr = Array.make (2 * t.n) dummy_item in
    Array.blit t.arr 0 narr 0 t.n;
    t.arr <- narr
  end;
  t.arr.(t.n) <- item;
  t.n <- t.n + 1;
  match item with
  | Fixed _ | Branch_site _ | Case_site _ -> t.n_insns <- t.n_insns + 1
  | Label_def _ | Word_lit _ | Word_label _ -> ()

let length t = t.n
let get t i = if i < 0 || i >= t.n then invalid_arg "Code_buffer.get" else t.arr.(i)

let contents t = Array.sub t.arr 0 t.n

let items t = Array.to_list (contents t)

let iter f t =
  for i = 0 to t.n - 1 do
    f t.arr.(i)
  done

(** Count of machine instructions (sites count as one); O(1), maintained
    on append. *)
let n_instructions t = t.n_insns

let pp_item ppf = function
  | Fixed i -> Fmt.pf ppf "      %a" Machine.Insn.pp i
  | Branch_site { mask; lbl; x; _ } ->
      if x = 0 then Fmt.pf ppf "      bc    %d,%a" mask pp_label lbl
      else Fmt.pf ppf "      bc    %d,%a(r%d)" mask pp_label lbl x
  | Case_site { reg; lbl; _ } ->
      Fmt.pf ppf "      l     r%d,%a(r%d)" reg pp_label lbl reg
  | Label_def l -> Fmt.pf ppf "%a:" pp_label l
  | Word_lit v -> Fmt.pf ppf "      dc    f'%d'" v
  | Word_label l -> Fmt.pf ppf "      dc    a(%a)" pp_label l

(* Buffer-based rendering, byte-identical to [pp_item]: the listing is
   produced once per compile and feeds the determinism fingerprint, so
   it bypasses the [Format] machinery (boxes, format-string
   interpretation) which otherwise dominates compile time. *)
let render_label b = function
  | User n ->
      Buffer.add_char b 'L';
      Buffer.add_string b (string_of_int n)
  | Internal n ->
      Buffer.add_char b '.';
      Buffer.add_string b (string_of_int n)

let render_item b = function
  | Fixed i ->
      Buffer.add_string b "      ";
      Machine.Insn.render b i
  | Branch_site { mask; lbl; x; _ } ->
      Buffer.add_string b "      bc    ";
      Buffer.add_string b (string_of_int mask);
      Buffer.add_char b ',';
      render_label b lbl;
      if x <> 0 then begin
        Buffer.add_string b "(r";
        Buffer.add_string b (string_of_int x);
        Buffer.add_char b ')'
      end
  | Case_site { reg; lbl; _ } ->
      Buffer.add_string b "      l     r";
      Buffer.add_string b (string_of_int reg);
      Buffer.add_char b ',';
      render_label b lbl;
      Buffer.add_string b "(r";
      Buffer.add_string b (string_of_int reg);
      Buffer.add_char b ')'
  | Label_def l ->
      render_label b l;
      Buffer.add_char b ':'
  | Word_lit v ->
      Buffer.add_string b "      dc    f'";
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b '\''
  | Word_label l ->
      Buffer.add_string b "      dc    a(";
      render_label b l;
      Buffer.add_char b ')'

(** Assembly-style listing in the manner of the paper's Appendix 1. *)
let to_listing t =
  let b = Buffer.create (24 * (t.n + 1)) in
  for i = 0 to t.n - 1 do
    if i > 0 then Buffer.add_char b '\n';
    render_item b t.arr.(i)
  done;
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_listing t)
