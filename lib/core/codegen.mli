(** The generated code generator, assembled: tables + skeletal parser +
    code emission + loader record generation, end to end. *)

type result_t = {
  objmod : Machine.Objmod.t;  (** loader records for the module *)
  resolved : Loader_gen.resolved;  (** final code image and label map *)
  listing : string;  (** assembly-style listing (Appendix-1 format) *)
  outcome : Driver.outcome;  (** parse statistics *)
  alloc_stats : Regalloc.stats;  (** register allocation statistics *)
  n_items : int;  (** code-buffer entries before resolution *)
  explanation : string option;
      (** with [~explain:true]: the listing annotated per instruction
          with the production and directives that emitted it *)
}

type error =
  | Parse_error of Driver.error
      (** the IF is not in the machine grammar's language *)
  | Emit_failure of string  (** a semantic operator failed at emission *)
  | Resolve_failure of string  (** label/branch resolution failed *)

val pp_error : Format.formatter -> error -> unit

val generate :
  ?name:string ->
  ?strategy:Regalloc.strategy ->
  ?dispatch:Driver.dispatch ->
  ?profile:Cogprof.t ->
  ?reload_dsp:string ->
  ?reload_reg:string ->
  ?explain:bool ->
  ?on_reduce:(int -> unit) ->
  Tables.t ->
  Ifl.Token.t list ->
  (result_t, error) result
(** Generate code for a linearized IF program.  [strategy] selects the
    register allocation policy (default LRU); [dispatch] the parse-table
    representation the driver probes (default comb); [profile] a
    {!Cogprof} collector the parse records state visits and production
    fires into (profile capture for {!Compress.specialize});
    [reload_dsp]/[reload_reg] name the terminals used when a common
    subexpression is reloaded from its temporary (defaults ["dsp"]/["r"]);
    [explain] (default false) additionally records, per emitted item, the
    production and directives responsible, surfaced as [explanation];
    [on_reduce] is called with each production id as it fires, before
    emission (the production-coverage hook). *)

val generate_string :
  ?name:string ->
  ?strategy:Regalloc.strategy ->
  ?dispatch:Driver.dispatch ->
  ?profile:Cogprof.t ->
  ?reload_dsp:string ->
  ?reload_reg:string ->
  ?explain:bool ->
  Tables.t ->
  string ->
  (result_t, string) result
(** Convenience: parse the textual IF syntax and generate. *)
