(** On-disk cache of built table bundles.

    LR construction over the full amdahl470 specification dominates every
    [pasc]/[coggc] invocation, yet its result depends only on the
    specification text and the lookahead mode.  The cache keys an entry on
    a digest of (format version, mode, spec text) and stores the
    {!Tables_io} serialization, so a second run on an unchanged spec skips
    {!Cogg_build.build} entirely and a modified spec simply hashes to a
    different entry.  Corrupt or truncated entries are indistinguishable
    from misses: the tables are rebuilt and the entry rewritten, never
    surfaced as an error. *)

(* Bumping this invalidates every existing entry; it must change whenever
   the Tables_io bundle format does, or when table construction starts
   producing different (still correct) bytes — v7: bundles carry the
   incremental appendix (CGB5: per-production content hashes, lookahead
   mode, profile digest), and a per-lineage pointer file lets a miss on
   an edited spec locate the previous build and splice instead of
   rebuilding from scratch. *)
let format_version = 7

type origin = Cache_hit | Built | Built_incremental of Cogg_build.incr_stats

let pp_origin ppf = function
  | Cache_hit -> Fmt.string ppf "cache hit"
  | Built -> Fmt.string ppf "built from spec"
  | Built_incremental st ->
      Fmt.pf ppf "incrementally rebuilt (%a)" Cogg_build.pp_incr_stats st

type stats = { hits : int; misses : int; evictions : int }

(* domain-safe observability counters; the process-lifetime Atomics feed
   [stats] unconditionally, and the same increments are folded into the
   Metrics aggregate when that subsystem is enabled *)
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let eviction_count = Atomic.make 0

let stats () =
  {
    hits = Atomic.get hit_count;
    misses = Atomic.get miss_count;
    evictions = Atomic.get eviction_count;
  }

let m_hits = Metrics.sum "tables_cache.hits"
let m_misses = Metrics.sum "tables_cache.misses"
let m_evictions = Metrics.sum "tables_cache.evictions"

let src = Logs.Src.create "cogg.tables-cache" ~doc:"CoGG table cache"

module Log = (val Logs.src_log src : Logs.LOG)

let default_dir () =
  match Sys.getenv_opt "COGG_CACHE_DIR" with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "cogg"
      | _ -> "_cache")

let mode_tag : Lookahead.mode -> string = function
  | Lookahead.Slr -> "slr"
  | Lookahead.Lalr -> "lalr"

let key ?(profile : Cogprof.t option)
    ?(target = Machine.Targets.default) ~(mode : Lookahead.mode)
    (spec_text : string) : string =
  (* the profile digest is part of the key: a bundle specialized against
     one workload must never serve as a hit for another (or for an
     unspecialized build).  Likewise the target name: the same spec text
     checked against two machines yields different bundles. *)
  let profile_tag =
    match profile with None -> "" | Some p -> ":" ^ Cogprof.digest p
  in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "cogg-tables-v%d:%s:%s%s:%s" format_version
          (mode_tag mode) target.Machine.Target.name profile_tag spec_text))

(** Cache file an unchanged spec would hit; exposed so tests (and curious
    users) can inspect or corrupt the entry. *)
let entry_path ?(mode = Lookahead.Slr) ?profile ?target ?cache_dir
    (spec_text : string) : string =
  let dir = match cache_dir with Some d -> d | None -> default_dir () in
  Filename.concat dir ("cogg-" ^ key ?profile ?target ~mode spec_text ^ ".cgt")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Best effort, atomic via rename: a half-written entry must never be
   observable (a concurrent reader would treat it as corrupt and rebuild,
   but there is no reason to risk it).  The temp name embeds the pid, the
   domain id and a per-process counter, so two concurrent builders — two
   processes racing on a shared cache dir, or two domains of one pool —
   can never open the same temp file and publish each other's
   half-written bytes through the rename. *)
let tmp_counter = Atomic.make 0

(* Size cap: a long-lived daemon rebuilding tables against rotating
   profiles (every distinct profile digest is a distinct entry) must not
   grow the cache directory without bound.  Entries are evicted
   oldest-first by modification time (the entry just written was just
   touched, so it is always the newest); ties break by file name so the
   victim set is deterministic.  Everything is best effort — a
   concurrently deleted file is simply skipped. *)
let default_max_entries = 64

let max_entries_default () =
  match Sys.getenv_opt "COGG_CACHE_MAX_ENTRIES" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default_max_entries)
  | None -> default_max_entries

let is_entry name =
  String.length name > 9
  && String.sub name 0 5 = "cogg-"
  && Filename.check_suffix name ".cgt"

let prune ?cache_dir ?max_entries () : int =
  let dir = match cache_dir with Some d -> d | None -> default_dir () in
  let cap = match max_entries with Some n -> max 1 n | None -> max_entries_default () in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let entries =
        Array.to_list names
        |> List.filter_map (fun name ->
               if not (is_entry name) then None
               else
                 let path = Filename.concat dir name in
                 match Unix.stat path with
                 | st -> Some (st.Unix.st_mtime, name, path)
                 | exception Unix.Unix_error _ -> None)
      in
      let n = List.length entries in
      if n <= cap then 0
      else begin
        let oldest_first =
          List.sort
            (fun (ma, na, _) (mb, nb, _) ->
              match Float.compare ma mb with
              | 0 -> String.compare na nb
              | c -> c)
            entries
        in
        let victims = List.filteri (fun i _ -> i < n - cap) oldest_first in
        List.fold_left
          (fun removed (_, _, path) ->
            match Sys.remove path with
            | () ->
                Atomic.incr eviction_count;
                Metrics.add m_evictions 1;
                Log.info (fun f -> f "evicted %s (cache over %d entries)" path cap);
                removed + 1
            | exception Sys_error _ -> removed)
          0 victims
      end

let write_atomic path bytes =
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.%d.%d.%d.tmp" path (Unix.getpid ())
      (Domain.self () :> int)
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  output_string oc bytes;
  close_out oc;
  Sys.rename tmp path

let store path bytes =
  try
    write_atomic path bytes;
    (* the cap covers the directory the entry landed in, which may be a
       caller-supplied cache_dir rather than the default *)
    ignore (prune ~cache_dir:(Filename.dirname path) ())
  with Sys_error m -> Log.warn (fun f -> f "cannot store cache entry: %s" m)

(* -- lineage pointers --------------------------------------------------------

   Entries are keyed by the spec text, so an edited spec is a clean miss
   — by design, but it also severs the edited spec from the build of its
   previous revision, which is precisely what an incremental rebuild
   wants to splice from.  The bridge is one pointer file per lineage
   (format version x mode x target x profile digest, everything in the
   key except the text): it names the newest entry stored for that
   lineage.  On a miss, the pointer locates the previous partial build;
   the pointer itself is a hint — stale, pruned-away or corrupt targets
   simply degrade to a scratch build. *)

let lineage_path ?(mode = Lookahead.Slr) ?(profile : Cogprof.t option)
    ?(target = Machine.Targets.default) ?cache_dir () : string =
  let dir = match cache_dir with Some d -> d | None -> default_dir () in
  let profile_tag =
    match profile with None -> "" | Some p -> ":" ^ Cogprof.digest p
  in
  let tag =
    Printf.sprintf "cogg-lineage-v%d:%s:%s%s" format_version (mode_tag mode)
      target.Machine.Target.name profile_tag
  in
  Filename.concat dir ("cogg-" ^ Digest.to_hex (Digest.string tag) ^ ".ptr")

let read_lineage (lpath : string) : string option =
  if not (Sys.file_exists lpath) then None
  else
    match read_file lpath with
    | name when is_entry (String.trim name) -> Some (String.trim name)
    | _ -> None
    | exception Sys_error _ -> None

let store_lineage (lpath : string) (entry_name : string) =
  match read_lineage lpath with
  | Some name when name = entry_name -> ()
  | _ -> (
      try write_atomic lpath entry_name
      with Sys_error m ->
        Log.warn (fun f -> f "cannot store lineage pointer: %s" m))

let incremental_enabled () =
  match Sys.getenv_opt "COGG_NO_INCREMENTAL" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let load path : Tables.t option =
  if not (Sys.file_exists path) then None
  else
    match Tables_io.read (read_file path) with
    | t -> Some t
    | exception Tables_io.Corrupt m ->
        Log.info (fun f -> f "discarding corrupt entry %s (%s)" path m);
        None
    | exception Sys_error m ->
        Log.info (fun f -> f "cannot read entry %s (%s)" path m);
        None

(** [build_text ?mode ?cache_dir text] returns the tables for a
    specification given as text, via the cache.  On a miss, the lineage
    pointer is consulted for the previous build of the same (mode,
    target, profile) line: when one loads, the rebuild is incremental —
    {!Cogg_build.build_incremental} splices every artifact the edit
    left untouched — and still byte-identical to a scratch build, so
    the stored entry is the same either way. *)
let build_text ?pool ?(mode = Lookahead.Slr) ?profile ?target ?cache_dir
    (text : string) : (Tables.t * origin, Cogg_build.error list) result =
  let path = entry_path ~mode ?profile ?target ?cache_dir text in
  let lpath = lineage_path ~mode ?profile ?target ?cache_dir () in
  match load path with
  | Some t ->
      Atomic.incr hit_count;
      Metrics.add m_hits 1;
      (* keep the lineage pointing at the newest build, so the *next*
         edit diffs against this revision *)
      store_lineage lpath (Filename.basename path);
      Log.info (fun f -> f "hit %s" path);
      Ok (t, Cache_hit)
  | None -> (
      Atomic.incr miss_count;
      Metrics.add m_misses 1;
      let previous =
        if not (incremental_enabled ()) then None
        else
          match read_lineage lpath with
          | Some name when name <> Filename.basename path ->
              load (Filename.concat (Filename.dirname path) name)
          | _ -> None
      in
      let built =
        match previous with
        | Some prev ->
            Cogg_build.build_incremental_string ?pool ~mode ?profile ?target
              ~previous:prev text
        | None ->
            Result.map
              (fun t ->
                (t, Cogg_build.
                     {
                       spliced_tables = false;
                       templates_reused = 0;
                       templates_recompiled = 0;
                     }))
              (Cogg_build.build_string ?pool ~mode ?profile ?target text)
      in
      match built with
      | Error es -> Error es
      | Ok (t, st) ->
          store path (Tables_io.write t);
          store_lineage lpath (Filename.basename path);
          let origin =
            if
              st.Cogg_build.spliced_tables
              || st.Cogg_build.templates_reused > 0
            then Built_incremental st
            else Built
          in
          Log.info (fun f -> f "miss; %a: %s" pp_origin origin path);
          Ok (t, origin))

(** [build_file ?mode ?cache_dir path] is {!build_text} over the file's
    contents: the digest covers the text, so editing the spec in place is
    a clean miss, not a stale hit. *)
let build_file ?pool ?mode ?profile ?target ?cache_dir (path : string) :
    (Tables.t * origin, Cogg_build.error list) result =
  match read_file path with
  | text -> build_text ?pool ?mode ?profile ?target ?cache_dir text
  | exception Sys_error m -> Error [ { Cogg_build.line = 0; msg = m } ]
