(** On-disk cache of built table bundles.

    LR construction over the full amdahl470 specification dominates every
    [pasc]/[coggc] invocation, yet its result depends only on the
    specification text and the lookahead mode.  The cache keys an entry on
    a digest of (format version, mode, spec text) and stores the
    {!Tables_io} serialization, so a second run on an unchanged spec skips
    {!Cogg_build.build} entirely and a modified spec simply hashes to a
    different entry.  Corrupt or truncated entries are indistinguishable
    from misses: the tables are rebuilt and the entry rewritten, never
    surfaced as an error. *)

(* Bumping this invalidates every existing entry; it must change whenever
   the Tables_io bundle format does, or when table construction starts
   producing different (still correct) bytes — v6: bundles carry the
   target name (CGB4) and the key covers the target, so the same spec
   text checked against two machines never shares an entry. *)
let format_version = 6

type origin = Cache_hit | Built

let pp_origin ppf = function
  | Cache_hit -> Fmt.string ppf "cache hit"
  | Built -> Fmt.string ppf "built from spec"

type stats = { hits : int; misses : int; evictions : int }

(* domain-safe observability counters; the process-lifetime Atomics feed
   [stats] unconditionally, and the same increments are folded into the
   Metrics aggregate when that subsystem is enabled *)
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let eviction_count = Atomic.make 0

let stats () =
  {
    hits = Atomic.get hit_count;
    misses = Atomic.get miss_count;
    evictions = Atomic.get eviction_count;
  }

let m_hits = Metrics.sum "tables_cache.hits"
let m_misses = Metrics.sum "tables_cache.misses"
let m_evictions = Metrics.sum "tables_cache.evictions"

let src = Logs.Src.create "cogg.tables-cache" ~doc:"CoGG table cache"

module Log = (val Logs.src_log src : Logs.LOG)

let default_dir () =
  match Sys.getenv_opt "COGG_CACHE_DIR" with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "cogg"
      | _ -> "_cache")

let mode_tag : Lookahead.mode -> string = function
  | Lookahead.Slr -> "slr"
  | Lookahead.Lalr -> "lalr"

let key ?(profile : Cogprof.t option)
    ?(target = Machine.Targets.default) ~(mode : Lookahead.mode)
    (spec_text : string) : string =
  (* the profile digest is part of the key: a bundle specialized against
     one workload must never serve as a hit for another (or for an
     unspecialized build).  Likewise the target name: the same spec text
     checked against two machines yields different bundles. *)
  let profile_tag =
    match profile with None -> "" | Some p -> ":" ^ Cogprof.digest p
  in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "cogg-tables-v%d:%s:%s%s:%s" format_version
          (mode_tag mode) target.Machine.Target.name profile_tag spec_text))

(** Cache file an unchanged spec would hit; exposed so tests (and curious
    users) can inspect or corrupt the entry. *)
let entry_path ?(mode = Lookahead.Slr) ?profile ?target ?cache_dir
    (spec_text : string) : string =
  let dir = match cache_dir with Some d -> d | None -> default_dir () in
  Filename.concat dir ("cogg-" ^ key ?profile ?target ~mode spec_text ^ ".cgt")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Best effort, atomic via rename: a half-written entry must never be
   observable (a concurrent reader would treat it as corrupt and rebuild,
   but there is no reason to risk it).  The temp name embeds the pid, the
   domain id and a per-process counter, so two concurrent builders — two
   processes racing on a shared cache dir, or two domains of one pool —
   can never open the same temp file and publish each other's
   half-written bytes through the rename. *)
let tmp_counter = Atomic.make 0

(* Size cap: a long-lived daemon rebuilding tables against rotating
   profiles (every distinct profile digest is a distinct entry) must not
   grow the cache directory without bound.  Entries are evicted
   oldest-first by modification time (the entry just written was just
   touched, so it is always the newest); ties break by file name so the
   victim set is deterministic.  Everything is best effort — a
   concurrently deleted file is simply skipped. *)
let default_max_entries = 64

let max_entries_default () =
  match Sys.getenv_opt "COGG_CACHE_MAX_ENTRIES" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default_max_entries)
  | None -> default_max_entries

let is_entry name =
  String.length name > 9
  && String.sub name 0 5 = "cogg-"
  && Filename.check_suffix name ".cgt"

let prune ?cache_dir ?max_entries () : int =
  let dir = match cache_dir with Some d -> d | None -> default_dir () in
  let cap = match max_entries with Some n -> max 1 n | None -> max_entries_default () in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let entries =
        Array.to_list names
        |> List.filter_map (fun name ->
               if not (is_entry name) then None
               else
                 let path = Filename.concat dir name in
                 match Unix.stat path with
                 | st -> Some (st.Unix.st_mtime, name, path)
                 | exception Unix.Unix_error _ -> None)
      in
      let n = List.length entries in
      if n <= cap then 0
      else begin
        let oldest_first =
          List.sort
            (fun (ma, na, _) (mb, nb, _) ->
              match Float.compare ma mb with
              | 0 -> String.compare na nb
              | c -> c)
            entries
        in
        let victims = List.filteri (fun i _ -> i < n - cap) oldest_first in
        List.fold_left
          (fun removed (_, _, path) ->
            match Sys.remove path with
            | () ->
                Atomic.incr eviction_count;
                Metrics.add m_evictions 1;
                Log.info (fun f -> f "evicted %s (cache over %d entries)" path cap);
                removed + 1
            | exception Sys_error _ -> removed)
          0 victims
      end

let store path bytes =
  try
    mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.%d.%d.%d.tmp" path (Unix.getpid ())
        (Domain.self () :> int)
        (Atomic.fetch_and_add tmp_counter 1)
    in
    let oc = open_out_bin tmp in
    output_string oc bytes;
    close_out oc;
    Sys.rename tmp path;
    (* the cap covers the directory the entry landed in, which may be a
       caller-supplied cache_dir rather than the default *)
    ignore (prune ~cache_dir:(Filename.dirname path) ())
  with Sys_error m -> Log.warn (fun f -> f "cannot store cache entry: %s" m)

let load path : Tables.t option =
  if not (Sys.file_exists path) then None
  else
    match Tables_io.read (read_file path) with
    | t -> Some t
    | exception Tables_io.Corrupt m ->
        Log.info (fun f -> f "discarding corrupt entry %s (%s)" path m);
        None
    | exception Sys_error m ->
        Log.info (fun f -> f "cannot read entry %s (%s)" path m);
        None

(** [build_text ?mode ?cache_dir text] returns the tables for a
    specification given as text, via the cache. *)
let build_text ?pool ?(mode = Lookahead.Slr) ?profile ?target ?cache_dir
    (text : string) : (Tables.t * origin, Cogg_build.error list) result =
  let path = entry_path ~mode ?profile ?target ?cache_dir text in
  match load path with
  | Some t ->
      Atomic.incr hit_count;
      Metrics.add m_hits 1;
      Log.info (fun f -> f "hit %s" path);
      Ok (t, Cache_hit)
  | None -> (
      Atomic.incr miss_count;
      Metrics.add m_misses 1;
      match Cogg_build.build_string ?pool ~mode ?profile ?target text with
      | Error es -> Error es
      | Ok t ->
          store path (Tables_io.write t);
          Log.info (fun f -> f "miss; built and stored %s" path);
          Ok (t, Built))

(** [build_file ?mode ?cache_dir path] is {!build_text} over the file's
    contents: the digest covers the text, so editing the spec in place is
    a clean miss, not a stale hit. *)
let build_file ?pool ?mode ?profile ?target ?cache_dir (path : string) :
    (Tables.t * origin, Cogg_build.error list) result =
  match read_file path with
  | text -> build_text ?pool ?mode ?profile ?target ?cache_dir text
  | exception Sys_error m -> Error [ { Cogg_build.line = 0; msg = m } ]
