(* pasc — the mini-Pascal compiler driving the CoGG-generated code
   generator (or the hand-written baseline), targeting the simulated
   Amdahl 470. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let or_die = function
  | Ok x -> x
  | Error m ->
      Fmt.epr "%s@." m;
      exit 1

let src_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SOURCE" ~doc:"mini-Pascal source file")

let spec_arg =
  Arg.(
    value
    & opt file "specs/amdahl470.cgg"
    & info [ "spec" ] ~docv:"SPEC" ~doc:"Code generator specification")

(* Built tables are cached on disk keyed by the spec's content digest, so
   repeat runs skip LR construction entirely. *)
let load_tables ~no_cache spec_path =
  if no_cache then
    match Cogg.Cogg_build.build_file spec_path with
    | Ok t -> t
    | Error es ->
        or_die (Error (Fmt.str "%a" (Fmt.list Cogg.Cogg_build.pp_error) es))
  else
    match Cogg.Tables_cache.build_file spec_path with
    | Ok (t, origin) ->
        if Sys.getenv_opt "COGG_CACHE_VERBOSE" <> None then
          Fmt.epr "[tables-cache] %s: %a@." spec_path Cogg.Tables_cache.pp_origin
            origin;
        t
    | Error es ->
        or_die (Error (Fmt.str "%a" (Fmt.list Cogg.Cogg_build.pp_error) es))

let pp_value ppf = function
  | Pascal.Interp.Vint n -> Fmt.int ppf n
  | Pascal.Interp.Vbool b -> Fmt.bool ppf b
  | Pascal.Interp.Vchar c -> Fmt.pf ppf "%C" c
  | Pascal.Interp.Vreal f -> Fmt.float ppf f
  | _ -> Fmt.string ppf "<aggregate>"

let compile_cmd =
  let run spec_path src_path no_cse no_cache checks baseline show_if
      show_listing run_it verify =
    let src = read_file src_path in
    if baseline then begin
      let c = or_die (Pipeline.compile_baseline ~checks src) in
      if show_listing then Fmt.pr "%s@." c.Pipeline.b_gen.Baseline.listing;
      if run_it then begin
        let x = or_die (Pipeline.execute_baseline c) in
        List.iter (fun v -> Fmt.pr "%d@." v) x.Pipeline.written_ints;
        List.iter (fun v -> Fmt.pr "%g@." v) x.Pipeline.written_reals;
        match x.Pipeline.outcome.Machine.Runtime.aborted with
        | Some m -> Fmt.epr "aborted: %s@." m
        | None -> ()
      end
    end
    else begin
      let tables = load_tables ~no_cache spec_path in
      let c = or_die (Pipeline.compile ~cse:(not no_cse) ~checks tables src) in
      if show_if then
        List.iter
          (fun tok -> Fmt.pr "%a " Ifl.Token.pp tok)
          c.Pipeline.tokens;
      if show_if then Fmt.pr "@.";
      if show_listing then Fmt.pr "%s@." c.Pipeline.gen.Cogg.Codegen.listing;
      if verify then begin
        let v = or_die (Pipeline.verify ~cse:(not no_cse) ~checks tables src) in
        if v.Pipeline.agreed then Fmt.pr "verified: machine = interpreter@."
        else begin
          Fmt.epr "MISMATCH: %a@." Fmt.(list string) v.Pipeline.mismatches;
          exit 1
        end
      end;
      if run_it then begin
        let x = or_die (Pipeline.execute c) in
        List.iter (fun v -> Fmt.pr "%d@." v) x.Pipeline.written_ints;
        List.iter (fun v -> Fmt.pr "%g@." v) x.Pipeline.written_reals;
        match x.Pipeline.outcome.Machine.Runtime.aborted with
        | Some m -> Fmt.epr "aborted: %s@." m
        | None -> ()
      end
    end
  in
  let flag names doc = Arg.(value & flag & info names ~doc) in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile (and optionally run) a program")
    Term.(
      const run $ spec_arg $ src_arg
      $ flag [ "no-cse" ] "Disable the common-subexpression optimizer"
      $ flag [ "no-cache" ] "Rebuild the driving tables instead of using the on-disk cache"
      $ flag [ "checks" ] "Emit subscript checking code"
      $ flag [ "baseline" ] "Use the hand-written code generator"
      $ flag [ "dump-if" ] "Print the linearized intermediate form"
      $ flag [ "listing"; "S" ] "Print the generated assembly listing"
      $ flag [ "run" ] "Execute on the simulator and print write output"
      $ flag [ "verify" ] "Check the machine against the reference interpreter")

let interp_cmd =
  let run src_path =
    let src = read_file src_path in
    let checked = or_die (Pascal.Sema.front_end src) in
    match Pascal.Interp.run checked with
    | Error e -> or_die (Error (Fmt.str "%a" Pascal.Interp.pp_error e))
    | Ok r ->
        List.iter (fun v -> Fmt.pr "%a@." pp_value v) r.Pascal.Interp.written
  in
  Cmd.v (Cmd.info "interp" ~doc:"Run the reference interpreter")
    Term.(const run $ src_arg)

let () =
  let info =
    Cmd.info "pasc" ~version:"1.0"
      ~doc:"mini-Pascal compiler over the CoGG table-driven code generator"
  in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; interp_cmd ]))
