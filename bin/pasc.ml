(* pasc — the mini-Pascal compiler driving the CoGG-generated code
   generator (or the hand-written baseline), targeting the simulated
   Amdahl 470. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let or_die = function
  | Ok x -> x
  | Error m ->
      Fmt.epr "%s@." m;
      exit 1

let src_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SOURCE" ~doc:"mini-Pascal source file")

let srcs_arg =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"SOURCE" ~doc:"mini-Pascal source file(s)")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Compile the batch on $(docv) domains over one shared table \
           bundle (0 = one per core).  The default, $(b,-j 1), is the \
           fully sequential path; parallel output is byte-identical to \
           it.")

(* --spec defaults to the selected target's own spec file, so
   `--target risc32` alone does the right thing; naming both pins the
   spec explicitly (e.g. checking an experimental spec against a
   substrate). *)
let spec_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"SPEC"
        ~doc:
          "Code generator specification (default: the $(b,--target)'s own \
           spec file)")

let target_arg =
  Arg.(
    value
    & opt
        (enum
           (List.map
              (fun n -> (n, Machine.Targets.find_exn n))
              Machine.Targets.names))
        Machine.Targets.default
    & info [ "target" ] ~docv:"TARGET"
        ~doc:
          (Fmt.str
             "Machine to generate code for (and simulate): %s.  Selects \
              the spec, the instruction substrate and the simulator; the \
              default is $(b,%s)."
             (String.concat " or "
                (List.map (fun n -> "$(b," ^ n ^ ")") Machine.Targets.names))
             Machine.Targets.default.Machine.Target.name))

let spec_for target spec_opt =
  match spec_opt with
  | Some p -> p
  | None -> target.Machine.Target.spec_file

(* Built tables are cached on disk keyed by the spec's content digest
   (plus the target name, plus the profile digest for specialized
   builds), so repeat runs skip LR construction entirely; on a miss, the
   pool (if any) parallelizes the build itself. *)
let load_tables ?pool ?profile ?target ~no_cache spec_path =
  if no_cache then
    match Cogg.Cogg_build.build_file ?pool ?profile ?target spec_path with
    | Ok t -> t
    | Error es ->
        or_die (Error (Fmt.str "%a" (Fmt.list Cogg.Cogg_build.pp_error) es))
  else
    match Cogg.Tables_cache.build_file ?pool ?profile ?target spec_path with
    | Ok (t, origin) ->
        if Sys.getenv_opt "COGG_CACHE_VERBOSE" <> None then
          Fmt.epr "[tables-cache] %s: %a@." spec_path Cogg.Tables_cache.pp_origin
            origin;
        t
    | Error es ->
        or_die (Error (Fmt.str "%a" (Fmt.list Cogg.Cogg_build.pp_error) es))

(* Write a captured profile, merging into an existing same-shape profile
   at the path (repeated capture runs accumulate); a mismatched or
   unreadable existing file is overwritten with the fresh capture. *)
let write_profile path (pr : Cogg.Cogprof.t) =
  let merged =
    match Cogg.Cogprof.load path with
    | Ok old -> (
        match Cogg.Cogprof.merge old pr with
        | Ok m -> m
        | Error m ->
            Fmt.epr "%s: %s; overwriting@." path m;
            pr)
    | Error _ -> pr
  in
  match Cogg.Cogprof.save path merged with
  | Ok () -> Fmt.epr "wrote %s (%a)@." path Cogg.Cogprof.pp merged
  | Error m -> or_die (Error (Fmt.str "cannot write profile %s: %s" path m))

let new_collector (tables : Cogg.Tables.t) =
  Cogg.Cogprof.create
    ~n_states:(Cogg.Parse_table.n_states tables.Cogg.Tables.parse)
    ~n_prods:(Cogg.Grammar.n_prods tables.Cogg.Tables.grammar)

let pp_value ppf = function
  | Pascal.Interp.Vint n -> Fmt.int ppf n
  | Pascal.Interp.Vbool b -> Fmt.bool ppf b
  | Pascal.Interp.Vchar c -> Fmt.pf ppf "%C" c
  | Pascal.Interp.Vreal f -> Fmt.float ppf f
  | _ -> Fmt.string ppf "<aggregate>"

let run_executed (x : Pipeline.executed) =
  List.iter (fun v -> Fmt.pr "%d@." v) x.Pipeline.written_ints;
  List.iter (fun v -> Fmt.pr "%g@." v) x.Pipeline.written_reals;
  match x.Pipeline.outcome.Machine.Runtime.aborted with
  | Some m -> Fmt.epr "aborted: %s@." m
  | None -> ()

let compile_cmd =
  let run target spec_opt src_paths jobs no_cse no_cache checks baseline
      show_if show_listing run_it verify stats trace explain profile_out
      specialize dispatch_opt =
    let spec_path = spec_for target spec_opt in
    if baseline && target.Machine.Target.name <> Machine.Targets.default.Machine.Target.name
    then
      or_die
        (Error
           "--baseline is the hand-written Amdahl 470 comparator; it has no \
            other backends");
    let many = List.length src_paths > 1 in
    let header path = if many then Fmt.pr "==> %s <==@." path in
    (* observability: enable before the tables load so cache hits/misses
       and the table-build phase are captured too *)
    if stats || trace <> None then Cogg.Metrics.set_enabled true;
    if trace <> None then Cogg.Trace.set_enabled true;
    let report_observability () =
      if stats then begin
        Fmt.pr "@.== observability counters ==@.";
        Fmt.pr "%a" Cogg.Metrics.pp_table (Cogg.Metrics.snapshot ())
      end;
      match trace with
      | None -> ()
      | Some path ->
          Cogg.Trace.write_json path;
          Fmt.epr "wrote %s (%d trace events)@." path
            (Cogg.Trace.event_count ())
    in
    if baseline then begin
      (* the hand-written comparator has no table bundle to share; batches
         simply loop *)
      if explain then
        Fmt.epr
          "--explain requires the table-driven generator (no productions to \
           attribute in the baseline); ignoring@.";
      List.iter
        (fun src_path ->
          let src = read_file src_path in
          header src_path;
          let c = or_die (Pipeline.compile_baseline ~checks src) in
          if show_listing then Fmt.pr "%s@." c.Pipeline.b_gen.Baseline.listing;
          if run_it then run_executed (or_die (Pipeline.execute_baseline c)))
        src_paths;
      report_observability ()
    end
    else begin
      (* the parallel engine: one shared table bundle, per-program work
         fanned out over the pool; -j 1 (the default) passes no pool and
         takes the sequential path *)
      let domains =
        if jobs = 0 then Domain.recommended_domain_count () else jobs
      in
      let with_pool f =
        if domains <= 1 then f None
        else Cogg.Pool.with_pool ~domains (fun p -> f (Some p))
      in
      with_pool @@ fun pool ->
      let spec_profile =
        Option.map (fun p -> or_die (Cogg.Cogprof.load p)) specialize
      in
      let tables =
        load_tables ?pool ?profile:spec_profile ~target ~no_cache spec_path
      in
      (match spec_profile with
      | Some p
        when not
               (Cogg.Cogprof.compatible p
                  ~n_states:(Cogg.Parse_table.n_states tables.Cogg.Tables.parse)
                  ~n_prods:(Cogg.Grammar.n_prods tables.Cogg.Tables.grammar)) ->
          Fmt.epr
            "warning: profile %s was captured against different tables (%d \
             states/%d prods); specialization will be ineffective@."
            (Option.get specialize) (Cogg.Cogprof.n_states p)
            (Cogg.Cogprof.n_prods p)
      | _ -> ());
      (* dispatch defaults to hybrid for a specialized bundle, comb
         otherwise *)
      let dispatch =
        match dispatch_opt with
        | Some d -> d
        | None ->
            if tables.Cogg.Tables.hybrid <> None then Cogg.Driver.Hybrid
            else Cogg.Driver.Comb
      in
      let batch =
        Array.of_list
          (List.map
             (fun p -> { Pipeline.Batch.name = p; source = read_file p })
             src_paths)
      in
      let collector = Option.map (fun _ -> new_collector tables) profile_out in
      let results =
        Cogg.Trace.with_span ~cat:"batch" "batch" (fun () ->
            match collector with
            | Some pr ->
                (* profile capture runs the batch sequentially: the
                   collector is plain mutable state, one per run, never
                   shared with pool domains *)
                Array.map
                  (fun j ->
                    Pipeline.compile ~cse:(not no_cse) ~checks ~dispatch
                      ~profile:pr ~explain tables j.Pipeline.Batch.source)
                  batch
            | None ->
                Pipeline.Batch.compile_all ?pool ~cse:(not no_cse) ~checks
                  ~dispatch ~explain tables batch)
      in
      (match (profile_out, collector) with
      | Some path, Some pr -> write_profile path pr
      | _ -> ());
      (* profile drift: when specializing against a stored profile while
         also capturing a fresh one, compare the hot sets the two would
         promote — a low overlap means the stored profile no longer
         matches this workload and the specialization is stale *)
      (match (spec_profile, collector) with
      | Some stored, Some fresh when not (Cogg.Cogprof.is_empty fresh) ->
          let k = Cogg.Compress.default_hot_k in
          let overlap = Cogg.Cogprof.hot_overlap ~k stored fresh in
          if overlap < 0.5 then
            Fmt.epr
              "warning: profile %s looks stale for this workload (hot-set \
               overlap %.2f at k=%d); re-capture with --profile-out and \
               refresh it@."
              (Option.get specialize) overlap k
      | _ -> ());
      (* reporting stays sequential and in input order: batch output must
         be byte-identical to compiling the files one by one *)
      let failed = ref false in
      Array.iteri
        (fun i result ->
          let path = batch.(i).Pipeline.Batch.name in
          match result with
          | Error m ->
              Fmt.epr "%s%s@." (if many then path ^ ": " else "") m;
              failed := true
          | Ok c ->
              header path;
              if show_if then begin
                List.iter
                  (fun tok -> Fmt.pr "%a " Ifl.Token.pp tok)
                  c.Pipeline.tokens;
                Fmt.pr "@."
              end;
              if show_listing then
                Fmt.pr "%s@." c.Pipeline.gen.Cogg.Codegen.listing;
              if explain then
                Option.iter (Fmt.pr "%s@.")
                  c.Pipeline.gen.Cogg.Codegen.explanation;
              if verify then begin
                let v =
                  or_die
                    (Pipeline.verify ~cse:(not no_cse) ~checks tables
                       batch.(i).Pipeline.Batch.source)
                in
                if v.Pipeline.agreed then
                  Fmt.pr "verified: machine = interpreter@."
                else begin
                  Fmt.epr "MISMATCH: %a@." Fmt.(list string)
                    v.Pipeline.mismatches;
                  failed := true
                end
              end;
              if run_it then run_executed (or_die (Pipeline.execute c)))
        results;
      report_observability ();
      if !failed then exit 1
    end
  in
  let flag names doc = Arg.(value & flag & info names ~doc) in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file covering the whole batch \
             (per-phase spans per program, all domains), loadable in \
             about:tracing or Perfetto.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile (and optionally run) programs")
    Term.(
      const run $ target_arg $ spec_arg $ srcs_arg $ jobs_arg
      $ flag [ "no-cse" ] "Disable the common-subexpression optimizer"
      $ flag [ "no-cache" ] "Rebuild the driving tables instead of using the on-disk cache"
      $ flag [ "checks" ] "Emit subscript checking code"
      $ flag [ "baseline" ] "Use the hand-written code generator"
      $ flag [ "dump-if" ] "Print the linearized intermediate form"
      $ flag [ "listing"; "S" ] "Print the generated assembly listing"
      $ flag [ "run" ] "Execute on the simulator and print write output"
      $ flag [ "verify" ] "Check the machine against the reference interpreter"
      $ flag [ "stats" ]
          "Print the aggregate observability counters (driver, register \
           allocator, CSE, loader, table cache, per-phase times) after the \
           batch"
      $ trace_arg
      $ flag [ "explain" ]
          "Annotate every emitted instruction with the production and \
           directives responsible for it (table-driven generators only)"
      $ Arg.(
          value
          & opt (some string) None
          & info [ "profile-out" ] ~docv:"FILE"
              ~doc:
                "Capture an execution profile (per-state dispatch counts, \
                 per-production reduction counts) over the batch and write \
                 it to $(docv), merging into an existing same-shape \
                 profile; the batch runs sequentially while capturing.  \
                 Feed the file back with $(b,--specialize).")
      $ Arg.(
          value
          & opt ~vopt:(Some "bench/default.cogprof") (some string) None
          & info [ "specialize" ] ~docv:"FILE"
              ~doc:
                "Build profile-specialized tables from the $(b,.cogprof) \
                 profile in $(docv) (default $(b,bench/default.cogprof)): \
                 the hottest states get flat O(1) dispatch rows, the cold \
                 tail stays comb-packed, and default reductions follow \
                 measured frequency.  Implies $(b,--dispatch hybrid) \
                 unless overridden.")
      $ Arg.(
          value
          & opt
              (some
                 (enum
                    [
                      ("flat", Cogg.Driver.Flat);
                      ("comb", Cogg.Driver.Comb);
                      ("hybrid", Cogg.Driver.Hybrid);
                    ]))
              None
          & info [ "dispatch" ] ~docv:"D"
              ~doc:
                "Parse-table dispatch the driver probes: $(b,comb) \
                 (packed, the default), $(b,flat) (uncompressed), or \
                 $(b,hybrid) (profile-specialized; needs \
                 $(b,--specialize), otherwise identical to comb)."))

let rec find_up ?(depth = 6) dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up ~depth:(depth - 1) (Filename.dirname dir) rel

(* The real-program bank doubles as a distillation candidate source. *)
let read_program_dir dir : Fuzz.Runner.corpus_entry list =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.filter_map (fun f ->
         let kind =
           if Filename.check_suffix f ".pas" then Some "pascal"
           else if Filename.check_suffix f ".ifl" then Some "if"
           else None
         in
         Option.map
           (fun e_kind ->
             {
               Fuzz.Runner.e_name = Filename.remove_extension f;
               e_kind;
               e_text = read_file (Filename.concat dir f);
             })
           kind)

let write_corpus_entry dir index (e : Fuzz.Runner.corpus_entry) : string =
  let ext = if e.Fuzz.Runner.e_kind = "pascal" then "pas" else "ifl" in
  let path =
    Filename.concat dir (Fmt.str "%02d-%s.%s" index e.Fuzz.Runner.e_name ext)
  in
  let oc = open_out path in
  let header = Fmt.str "distilled corpus seed: %s" e.Fuzz.Runner.e_name in
  output_string oc
    (if ext = "pas" then "{ " ^ header ^ " }\n" else "* " ^ header ^ "\n");
  output_string oc e.Fuzz.Runner.e_text;
  output_string oc "\n";
  close_out oc;
  path

let fuzz_cmd =
  let run target spec_opt seed count start profile minimize malformed jobs
      corpus profile_out cross guided shards minutes replay distill =
    let spec_path = spec_for target spec_opt in
    let profile =
      Option.map (fun s -> or_die (Fuzz.Profile.of_string s)) profile
    in
    let tables = load_tables ~target ~no_cache:false spec_path in
    let cross_tables =
      (* --cross TARGET: every case additionally compiles and runs under
         the second backend and the two machines' observable outputs are
         compared (the cross-backend differential oracle) *)
      Option.map
        (fun (t : Machine.Target.t) ->
          load_tables ~target:t ~no_cache:false t.Machine.Target.spec_file)
        cross
    in
    let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
    match (replay, distill) with
    | Some line, _ -> begin
        (* --replay SEED:INDEX[:m1.m2...]: reconstruct the exact input
           from its lineage and re-run the oracles on it *)
        match Fuzz.Runner.replay tables ?cross:cross_tables line with
        | Error m -> or_die (Error m)
        | Ok (input, verdicts) ->
            Fmt.pr "replay %s (%s input):@.%s@." (String.trim line)
              (match input with
              | Fuzz.Runner.Pascal_src _ -> "pascal"
              | Fuzz.Runner.If_stream _ -> "if")
              (Fuzz.Runner.render_input input);
            let bad = ref false in
            List.iter
              (fun (name, st) ->
                Fmt.pr "%s: %a@." name Fuzz.Oracle.pp_status st;
                if Fuzz.Oracle.is_finding st then bad := true)
              verdicts;
            if !bad then exit 1
      end
    | None, Some dir ->
        (* --distill DIR: greedy minimal seed set covering every
           production any candidate can reach.  Candidates: the standard
           workload programs, the coverage pins, the real-program bank,
           the fixed-seed fuzz slice, and a guided run's kept pool. *)
        let real =
          match find_up (Sys.getcwd ()) "examples/programs" with
          | Some d -> read_program_dir d
          | None -> []
        in
        let greport =
          Fuzz.Runner.run_guided tables
            {
              Fuzz.Runner.default_guided with
              Fuzz.Runner.g_seed = seed;
              g_budget = max count 512;
              g_shards = shards;
              g_jobs = jobs;
              g_log = (fun m -> Fmt.epr "%s@." m);
            }
        in
        let cands =
          List.map
            (fun (name, src) ->
              { Fuzz.Runner.e_name = name; e_kind = "pascal"; e_text = src })
            Pipeline.Programs.all
          @ Fuzz.Runner.pinned_entries @ real
          @ Fuzz.Runner.generated_entries ~seed ~pascal_count:72 ~if_count:24
          @ Fuzz.Runner.kept_entries greport
        in
        let selected, universe = Fuzz.Runner.distill_corpus tables cands in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i e ->
            Fmt.epr "wrote %s@." (write_corpus_entry dir (i + 1) e))
          selected;
        Fmt.pr
          "distilled %d candidates to %d seeds covering all %d reachable \
           productions@."
          (List.length cands) (List.length selected) universe
    | None, None when guided ->
        (* --guided: the coverage-guided scheduler; --minutes M keeps
           draining mutation batches until the wall clock expires *)
        let stop =
          Option.map
            (fun m ->
              let deadline = Unix.gettimeofday () +. (m *. 60.) in
              fun () -> Unix.gettimeofday () >= deadline)
            minutes
        in
        let budget = if minutes = None then count else max_int in
        let r =
          Fuzz.Runner.run_guided tables
            {
              Fuzz.Runner.default_guided with
              Fuzz.Runner.g_seed = seed;
              g_budget = budget;
              g_shards = shards;
              g_jobs = jobs;
              g_oracles = true;
              g_cross = cross_tables;
              g_stop = stop;
              g_log = (fun m -> Fmt.epr "%s@." m);
            }
        in
        Fmt.pr
          "guided fuzz: seed %d, %d cases: %d kept seeds, %d productions, %d \
           bigrams, %d findings@."
          seed r.Fuzz.Runner.g_cases
          (List.length r.Fuzz.Runner.g_kept)
          (Fuzz.Covmap.prods_covered r.Fuzz.Runner.g_covmap)
          (Fuzz.Covmap.bigrams_covered r.Fuzz.Runner.g_covmap)
          (List.length r.Fuzz.Runner.g_findings);
        List.iter
          (fun (k : Fuzz.Runner.kept) ->
            Fmt.pr "kept %s (+%d features)@."
              (Fuzz.Runner.replay_line k.Fuzz.Runner.k_lineage)
              k.Fuzz.Runner.k_gain)
          r.Fuzz.Runner.g_kept;
        List.iter
          (fun (f : Fuzz.Runner.guided_finding) ->
            Fmt.pr
              "finding: %s oracle %s: %a@.  input:@.%s@.  replay: pasc fuzz \
               --spec %s --replay %s@."
              (Fuzz.Runner.replay_line f.Fuzz.Runner.gf_lineage)
              f.Fuzz.Runner.gf_oracle Fuzz.Oracle.pp_status
              f.Fuzz.Runner.gf_status f.Fuzz.Runner.gf_repro spec_path
              (Fuzz.Runner.replay_line f.Fuzz.Runner.gf_lineage))
          r.Fuzz.Runner.g_findings;
        (match corpus with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            List.iteri
              (fun i e ->
                Fmt.epr "wrote %s@." (write_corpus_entry dir (i + 1) e))
              (Fuzz.Runner.kept_entries r));
        if r.Fuzz.Runner.g_findings <> [] then exit 1
    | None, None ->
    let collector = Option.map (fun _ -> new_collector tables) profile_out in
    let cfg =
      {
        Fuzz.Runner.seed;
        count;
        start;
        profile;
        minimize;
        malformed;
        jobs;
        spec = Some spec_path;
        cache_dir =
          Some (Filename.concat (Filename.get_temp_dir_name ()) "pasc-fuzz-cache");
        log = (fun m -> Fmt.epr "%s@." m);
        collect = collector;
        cross = cross_tables;
      }
    in
    let report = Fuzz.Runner.run tables cfg in
    (match (profile_out, collector) with
    | Some path, Some pr -> write_profile path pr
    | _ -> ());
    Fmt.pr "%a@." Fuzz.Runner.pp_report report;
    List.iter
      (fun (f : Fuzz.Runner.finding) ->
        Fmt.pr "finding: case %d oracle %s: %a@.  %s:@.%s@.  replay: pasc fuzz --spec %s --seed %d --start %d --count 1%s%s@."
          f.Fuzz.Runner.f_index f.Fuzz.Runner.f_oracle Fuzz.Oracle.pp_status
          f.Fuzz.Runner.f_status
          (if f.Fuzz.Runner.f_minimized then "minimized input" else "input")
          f.Fuzz.Runner.f_repro spec_path seed f.Fuzz.Runner.f_index
          (if malformed then " --malformed" else "")
          (match profile with
          | Some p -> " --profile " ^ Fuzz.Profile.to_string p
          | None -> ""))
      report.Fuzz.Runner.r_findings;
    (match corpus with
    | None -> ()
    | Some dir ->
        List.iter (Fmt.epr "wrote %s@.") (Fuzz.Runner.write_corpus dir report));
    if report.Fuzz.Runner.r_findings <> [] then exit 1
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Master seed")
  in
  let count_arg =
    Arg.(
      value & opt int 64
      & info [ "count" ] ~docv:"N" ~doc:"Number of cases to run")
  in
  let start_arg =
    Arg.(
      value & opt int 0
      & info [ "start" ] ~docv:"I"
          ~doc:
            "First case index (a finding replays with $(b,--start) set to \
             its case index and $(b,--count 1))")
  in
  let profile_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"P"
          ~doc:
            "Pin the generation profile (ints|bools|arrays|branches|mixed); \
             default rotates through all of them")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Write a reproducer file per finding into $(docv)")
  in
  let flag names doc = Arg.(value & flag & info names ~doc) in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the pipeline: random programs through the \
          interpreter-vs-machine, comb-vs-flat and determinism oracles")
    Term.(
      const run $ target_arg $ spec_arg $ seed_arg $ count_arg $ start_arg
      $ profile_arg
      $ flag [ "minimize" ] "Shrink failing inputs before reporting"
      $ flag [ "malformed" ]
          "Mutate IF streams and check that every failure is a structured \
           error (totality sweep)"
      $ jobs_arg $ corpus_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "profile-out" ] ~docv:"FILE"
              ~doc:
                "Additionally compile every case's (pre-mutation) input \
                 with profile capture on and write the accumulated \
                 $(b,.cogprof) to $(docv) (merging into an existing \
                 same-shape profile) — the fuzz-corpus half of the \
                 default specialization profile.")
      $ Arg.(
          value
          & opt
              (some
                 (enum
                    (List.map
                       (fun n -> (n, Machine.Targets.find_exn n))
                       Machine.Targets.names)))
              None
          & info [ "cross" ] ~docv:"TARGET"
              ~doc:
                "Cross-backend differential oracle: compile and run every \
                 Pascal case under $(docv)'s backend as well and compare \
                 the two machines' observable outputs.")
      $ flag [ "guided" ]
          "Coverage-guided mode: keep and mutate inputs that discover new \
           production (bigram) coverage; every kept seed prints its \
           (seed, index, mutation-path) lineage for $(b,--replay)"
      $ Arg.(
          value & opt int 8
          & info [ "shards" ] ~docv:"S"
              ~doc:
                "Logical shards in guided mode: each shard owns an \
                 independent RNG stream for scheduling decisions, so the \
                 run is deterministic for a fixed (seed, shard count) at \
                 any $(b,-j) worker count")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "minutes" ] ~docv:"M"
              ~doc:
                "Long-run guided mode: keep draining mutation batches \
                 across the pool until $(docv) minutes of wall clock have \
                 passed (overrides $(b,--count))")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "replay" ] ~docv:"LINEAGE"
              ~doc:
                "Reproduce a guided-mode input from its printed lineage \
                 ($(b,SEED:INDEX) or $(b,SEED:INDEX:m1.m2...)), print it, \
                 and re-run the oracles on it")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "distill" ] ~docv:"DIR"
              ~doc:
                "Corpus distillation: compute a greedy-minimal seed set \
                 covering every production any candidate reaches (standard \
                 programs, the real-program bank, a fixed-seed fuzz slice \
                 and a guided run's kept pool) and write it to $(docv)"))

(* -- the compile service ------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/pascd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let serve_cmd =
  let run target spec_opt socket jobs queue_capacity cache_capacity verify
      no_self_check specialize =
    let spec_path = spec_for target spec_opt in
    let domains =
      if jobs = 0 then Domain.recommended_domain_count () else jobs
    in
    let with_pool f =
      if domains <= 1 then f None
      else Cogg.Pool.with_pool ~domains (fun p -> f (Some p))
    in
    with_pool @@ fun pool ->
    let profile =
      Option.map (fun p -> or_die (Cogg.Cogprof.load p)) specialize
    in
    let tables = load_tables ?pool ?profile ~target ~no_cache:false spec_path in
    (* the table bundle's own cache key doubles as its identity in every
       result-cache key, so results can never outlive the spec (or the
       profile, or the target) they were compiled under *)
    let table_key =
      Cogg.Tables_cache.key ?profile ~target ~mode:Cogg.Lookahead.Slr
        (read_file spec_path)
    in
    let server =
      or_die
        (Serve.Server.create ?pool ~queue_capacity
           ~cache_capacity ~verify ~self_check:(not no_self_check) ~table_key
           ~socket_path:socket tables)
    in
    Fmt.epr "pascd: serving %s [%s] on %s (%d domain%s)@." spec_path
      target.Machine.Target.name socket domains
      (if domains = 1 then "" else "s");
    Serve.Server.run server;
    Fmt.epr "pascd: %s@."
      (String.concat ", "
         (String.split_on_char '\n' (Serve.Server.stats_text server)
         |> List.filter (fun l -> l <> "")))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent compile daemon: load the tables once, serve \
          compile requests over a Unix-domain socket, cache results by \
          content digest")
    Term.(
      const run $ target_arg $ spec_arg $ socket_arg $ jobs_arg
      $ Arg.(
          value & opt int 64
          & info [ "queue" ] ~docv:"N"
              ~doc:
                "Pending-compile queue capacity; requests beyond it are \
                 answered $(b,Overloaded) immediately (admission control)")
      $ Arg.(
          value & opt int 256
          & info [ "cache" ] ~docv:"N"
              ~doc:"Result cache capacity (entries, FIFO-evicted per shard)")
      $ Arg.(
          value
          & opt
              (enum
                 [
                   ("once", Serve.Server.Verify_once);
                   ("never", Serve.Server.Verify_never);
                   ("always", Serve.Server.Verify_always);
                 ])
              Serve.Server.Verify_once
          & info [ "verify" ] ~docv:"MODE"
              ~doc:
                "Determinism gate on cache hits: $(b,once) (first hit per \
                 entry recompiles and compares; the default), $(b,always), \
                 or $(b,never)")
      $ Arg.(
          value & flag
          & info [ "no-self-check" ]
              ~doc:
                "Skip the startup determinism self-check (the oracle run \
                 that gates the cache's correctness premise)")
      $ Arg.(
          value
          & opt ~vopt:(Some "bench/default.cogprof") (some string) None
          & info [ "specialize" ] ~docv:"FILE"
              ~doc:"Serve profile-specialized tables (see $(b,compile))"))

let client_cmd =
  let run socket srcs show_listing do_stats do_ping do_shutdown pause_ms =
    let c = or_die (Serve.Client.connect socket) in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    if do_ping then begin
      or_die (Serve.Client.ping c);
      Fmt.pr "pong@."
    end;
    (match pause_ms with
    | Some ms -> or_die (Serve.Client.pause c ms)
    | None -> ());
    let failed = ref false in
    if srcs <> [] then begin
      let sources = Array.of_list (List.map read_file srcs) in
      (* honor the daemon's backoff hint: one bounded retry turns a
         transient queue overflow into a served batch *)
      let replies = or_die (Serve.Client.compile_batch c ~retry:true sources) in
      let many = List.length srcs > 1 in
      Array.iteri
        (fun i reply ->
          let path = List.nth srcs i in
          match reply with
          | Serve.Wire.Compiled { cached; outcome = Ok (listing, code); _ } ->
              if many then Fmt.pr "==> %s <==@." path;
              Fmt.epr "%s: ok (%d bytes%s)@." path (String.length code)
                (if cached then ", cached" else "");
              if show_listing then Fmt.pr "%s@." listing
          | Serve.Wire.Compiled { outcome = Error m; _ } ->
              Fmt.epr "%s: %s@." path m;
              failed := true
          | Serve.Wire.Overloaded { retry_after_ms; _ } ->
              Fmt.epr "%s: daemon overloaded (retry in ~%d ms)@." path
                retry_after_ms;
              failed := true
          | _ ->
              Fmt.epr "%s: unexpected reply@." path;
              failed := true)
        replies
    end;
    if do_stats then Fmt.pr "%s" (or_die (Serve.Client.stats c));
    if do_shutdown then or_die (Serve.Client.shutdown c);
    if !failed then exit 1
  in
  let flag names doc = Arg.(value & flag & info names ~doc) in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running pascd daemon: compile sources through it, query \
          its counters, or shut it down")
    Term.(
      const run $ socket_arg
      $ Arg.(
          value & pos_all file []
          & info [] ~docv:"SOURCE" ~doc:"mini-Pascal source file(s)")
      $ flag [ "listing"; "S" ] "Print the returned assembly listing"
      $ flag [ "stats" ] "Print the daemon's counters"
      $ flag [ "ping" ] "Liveness probe"
      $ flag [ "shutdown" ] "Ask the daemon to drain and exit"
      $ Arg.(
          value
          & opt (some int) None
          & info [ "pause" ] ~docv:"MS"
              ~doc:
                "Suspend the daemon's compile-queue draining for $(docv) \
                 milliseconds (testing hook for the backpressure path)"))

let interp_cmd =
  let run src_path =
    let src = read_file src_path in
    let checked = or_die (Pascal.Sema.front_end src) in
    match Pascal.Interp.run checked with
    | Error e -> or_die (Error (Fmt.str "%a" Pascal.Interp.pp_error e))
    | Ok r ->
        List.iter (fun v -> Fmt.pr "%a@." pp_value v) r.Pascal.Interp.written
  in
  Cmd.v (Cmd.info "interp" ~doc:"Run the reference interpreter")
    Term.(const run $ src_arg)

let () =
  let info =
    Cmd.info "pasc" ~version:"1.0"
      ~doc:"mini-Pascal compiler over the CoGG table-driven code generator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; interp_cmd; fuzz_cmd; serve_cmd; client_cmd ]))
