(* coggc — the code generator generator's command line.

   Subcommands:
     check SPEC           build the tables, report conflicts and errors
     stats SPEC           print the Table-1 statistics
     sizes SPEC           print the Table-2 artifact sizes
     gen SPEC IF-FILE     generate code for a linearized-IF program
     conflicts SPEC       list every resolved parsing conflict *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* a .cgt file is a serialized table bundle; anything else is a
   specification compiled through the content-hashed table cache (repeat
   invocations on an unchanged spec skip LR construction) *)
let load_tables ?(mode = Cogg.Lookahead.Slr) ?target path =
  if Filename.check_suffix path ".cgt" then
    (* the bundle names its own target; --target is only a build input *)
    match Cogg.Tables_io.read (read_file path) with
    | t -> Ok t
    | exception Cogg.Tables_io.Corrupt m ->
        Error (Fmt.str "%s: corrupt table bundle (%s)" path m)
  else
    match Cogg.Tables_cache.build_file ~mode ?target path with
    | Ok (t, origin) ->
        if Sys.getenv_opt "COGG_CACHE_VERBOSE" <> None then
          Fmt.epr "[tables-cache] %s: %a@." path Cogg.Tables_cache.pp_origin
            origin;
        Ok t
    | Error es ->
        Error (Fmt.str "%a" (Fmt.list ~sep:Fmt.cut Cogg.Cogg_build.pp_error) es)

let load_spec path =
  match Cogg.Spec_parse.of_file path with
  | Ok s -> Ok s
  | Error e -> Error (Fmt.str "%a" Cogg.Spec_parse.pp_error e)

let spec_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SPEC" ~doc:"Code generator specification (.cgg)")

let mode_conv =
  Arg.enum [ ("slr", Cogg.Lookahead.Slr); ("lalr", Cogg.Lookahead.Lalr) ]

let mode_arg =
  Arg.(
    value & opt mode_conv Cogg.Lookahead.Slr
    & info [ "mode" ] ~docv:"MODE" ~doc:"Lookahead construction: slr or lalr")

let target_arg =
  Arg.(
    value
    & opt
        (enum
           (List.map
              (fun n -> (n, Machine.Targets.find_exn n))
              Machine.Targets.names))
        Machine.Targets.default
    & info [ "target" ] ~docv:"TARGET"
        ~doc:
          (Fmt.str
             "Machine substrate the specification's opcodes are checked \
              against: %s (default $(b,%s))"
             (String.concat " or "
                (List.map (fun n -> "$(b," ^ n ^ ")") Machine.Targets.names))
             Machine.Targets.default.Machine.Target.name))

let or_die = function
  | Ok x -> x
  | Error m ->
      Fmt.epr "%s@." m;
      exit 1

let rec find_up ?(depth = 6) dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up ~depth:(depth - 1) (Filename.dirname dir) rel

(* Dead-template report: productions whose rendered form never appears
   in the coverage baseline never fire under the whole checked-in
   corpus — their templates are untested weight in the table.  The
   Depmap footprint says how much automaton each one is entangled with
   (what an edit to it would dirty in an incremental rebuild). *)
let report_dead_templates (t : Cogg.Tables.t) (baseline : string) =
  let covered = Hashtbl.create 256 in
  let ic = open_in baseline in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then Hashtbl.replace covered line ()
     done
   with End_of_file -> close_in ic);
  let g = t.Cogg.Tables.grammar in
  let dm =
    Cogg.Depmap.build ~compressed:t.Cogg.Tables.compressed
      ~n_user_prods:t.Cogg.Tables.n_user_prods t.Cogg.Tables.parse
  in
  let dead = ref [] in
  for p = t.Cogg.Tables.n_user_prods - 1 downto 0 do
    let render = Cogg.Grammar.prod_to_string g (Cogg.Grammar.prod g p) in
    if not (Hashtbl.mem covered render) then dead := (p, render) :: !dead
  done;
  (* sorted by rendered form (then id), so the report is stable under
     production renumbering and diffable across spec edits *)
  let dead =
    List.sort
      (fun (p1, r1) (p2, r2) ->
        match String.compare r1 r2 with 0 -> compare p1 p2 | c -> c)
      !dead
  in
  match dead with
  | [] ->
      Fmt.pr "  every template fires in the coverage corpus (%s)@."
        (Filename.basename baseline)
  | dead ->
      Fmt.pr "  %d of %d templates never fire in the coverage corpus:@."
        (List.length dead) t.Cogg.Tables.n_user_prods;
      List.iter
        (fun (p, render) ->
          Fmt.pr "    %s  [%a]@." render (fun ppf -> Cogg.Depmap.pp_prod ppf dm) p)
        dead

let check_cmd =
  let run mode target spec_path dead_baseline =
    let t = or_die (load_tables ~mode ~target spec_path) in
    let conflicts = Cogg.Tables.conflicts t in
    let sr, rr =
      List.partition
        (fun c -> c.Cogg.Parse_table.c_kind = `Shift_reduce)
        conflicts
    in
    Fmt.pr "%s: OK@." spec_path;
    Fmt.pr "  %d productions, %d states@." t.Cogg.Tables.n_user_prods
      (Cogg.Parse_table.n_states t.Cogg.Tables.parse);
    Fmt.pr
      "  %d shift/reduce and %d reduce/reduce conflicts resolved (Graham-Glanville policy)@."
      (List.length sr) (List.length rr);
    match dead_baseline with
    | None -> ()
    | Some "" -> (
        match find_up (Sys.getcwd ()) "test/coverage_baseline.txt" with
        | Some p -> report_dead_templates t p
        | None ->
            or_die
              (Error
                 "cannot locate test/coverage_baseline.txt (pass \
                  --dead-templates=FILE explicitly)"))
    | Some p -> report_dead_templates t p
  in
  let dead_arg =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "dead-templates" ] ~docv:"BASELINE"
          ~doc:
            "Report productions whose templates never fire in the coverage \
             corpus recorded in $(docv) (default: locate \
             test/coverage_baseline.txt upward from the working directory), \
             with each one's automaton footprint")
  in
  Cmd.v (Cmd.info "check" ~doc:"Build a specification and report conflicts")
    Term.(const run $ mode_arg $ target_arg $ spec_arg $ dead_arg)

let stats_cmd =
  let run mode target spec_path =
    let spec = or_die (load_spec spec_path) in
    let t = or_die (load_tables ~mode ~target spec_path) in
    Fmt.pr "%a" Cogg.Stats.pp_table1 (Cogg.Stats.table1 spec t)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print the paper's Table-1 statistics")
    Term.(const run $ mode_arg $ target_arg $ spec_arg)

let sizes_cmd =
  let run mode target spec_path =
    let t = or_die (load_tables ~mode ~target spec_path) in
    let s = Cogg.Tables_io.sizes t in
    let row label bytes =
      Fmt.pr "%-28s %8d bytes  %6.1f pages@." label bytes
        (Cogg.Tables_io.pages bytes)
    in
    row "template array" s.Cogg.Tables_io.template_array;
    row "compressed parse table" s.Cogg.Tables_io.compressed_table;
    row "uncompressed parse table" s.Cogg.Tables_io.uncompressed_table
  in
  Cmd.v (Cmd.info "sizes" ~doc:"Print the Table-2 artifact sizes")
    Term.(const run $ mode_arg $ target_arg $ spec_arg)

let conflicts_cmd =
  let run mode target spec_path limit =
    let t = or_die (load_tables ~mode ~target spec_path) in
    let g = t.Cogg.Tables.grammar in
    List.iteri
      (fun i c ->
        if i < limit then Fmt.pr "%a@." (Cogg.Parse_table.pp_conflict g) c)
      (Cogg.Tables.conflicts t)
  in
  let limit =
    Arg.(
      value & opt int 50
      & info [ "limit"; "n" ] ~docv:"N" ~doc:"Show at most N conflicts")
  in
  Cmd.v (Cmd.info "conflicts" ~doc:"List resolved parsing conflicts")
    Term.(const run $ mode_arg $ target_arg $ spec_arg $ limit)

let tables_cmd =
  let run mode target spec_path out =
    let t = or_die (load_tables ~mode ~target spec_path) in
    let bytes = Cogg.Tables_io.write t in
    let oc = open_out_bin out in
    output_string oc bytes;
    close_out oc;
    Fmt.pr "wrote %d bytes of driving tables to %s@." (String.length bytes) out
  in
  let out =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT.cgt" ~doc:"Output table bundle")
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Compile a specification into a loadable table bundle (.cgt)")
    Term.(const run $ mode_arg $ target_arg $ spec_arg $ out)

let gen_cmd =
  let run mode target spec_path if_path run_it =
    let t = or_die (load_tables ~mode ~target spec_path) in
    let text = read_file if_path in
    match Cogg.Codegen.generate_string t text with
    | Error m -> or_die (Error m)
    | Ok r ->
        Fmt.pr "* generated %d bytes (%d branch sites, %d long)@."
          (Bytes.length r.Cogg.Codegen.resolved.Cogg.Loader_gen.code)
          r.Cogg.Codegen.resolved.Cogg.Loader_gen.n_sites
          r.Cogg.Codegen.resolved.Cogg.Loader_gen.n_long;
        Fmt.pr "%s@." r.Cogg.Codegen.listing;
        Fmt.pr "* object module:@.%s@."
          (Machine.Objmod.to_string r.Cogg.Codegen.objmod);
        if run_it then begin
          let tgt = t.Cogg.Tables.target in
          match tgt.Machine.Target.boot r.Cogg.Codegen.objmod with
          | Error m -> or_die (Error m)
          | Ok (sim, entry) -> (
              match tgt.Machine.Target.run sim ~entry with
              | Error m -> or_die (Error m)
              | Ok out ->
                  Fmt.pr "* executed %d instructions%a@."
                    out.Machine.Runtime.steps
                    Fmt.(
                      option (fun ppf m -> Fmt.pf ppf " (aborted: %s)" m))
                    out.Machine.Runtime.aborted)
        end
  in
  let if_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"IF-FILE" ~doc:"Linearized intermediate-form program")
  in
  let run_flag =
    Arg.(
      value & flag
      & info [ "run" ] ~doc:"Execute on the target's simulator")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate code for an IF program")
    Term.(const run $ mode_arg $ target_arg $ spec_arg $ if_arg $ run_flag)

let () =
  let info =
    Cmd.info "coggc" ~version:"1.0"
      ~doc:"CoGG: a code generator generator for table driven code generators"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; stats_cmd; sizes_cmd; conflicts_cmd; tables_cmd; gen_cmd ]))
